#!/usr/bin/env python
"""Optimal sensor placement — the "outer-loop" problem of the paper's
Remark 1: greedily choose sensor locations maximizing expected
information gain (KL divergence prior→posterior), re-assembling the
data-space Hessian with FFT matvecs at every candidate evaluation.

This is where the mixed-precision speedup compounds: thousands of F/F*
actions per placement decision.

Run:  python examples/sensor_placement.py
"""

import numpy as np

from repro.inverse import GaussianPrior, Grid1D, AdvectionDiffusion1D
from repro.inverse.oed import greedy_sensor_placement

# Contaminant transport: advection-diffusion with rightward flow.
grid = Grid1D(32)
system = AdvectionDiffusion1D(grid, dt=0.02, kappa=0.02, velocity=0.8)
nt = 24
prior = GaussianPrior(grid.n, nt, gamma=2e-3, delta=6.0)
noise_std = 0.02

# Candidate sensor sites spread over the domain.
candidates = [2, 6, 10, 14, 18, 22, 26, 30]
print(f"greedy OED: choose 3 of {len(candidates)} candidate sites "
      f"(Nm={grid.n}, Nt={nt})\n")

for config in ("ddddd", "dssdd"):
    result = greedy_sensor_placement(
        system,
        candidates,
        n_select=3,
        nt=nt,
        prior=prior,
        noise_std=noise_std,
        config=config,
    )
    sites = [round(float(grid.points[i]), 3) for i in result.selected]
    print(f"config {config}:")
    print(f"  selected sites x = {sites} (indices {result.selected})")
    print(f"  EIG after each pick: {[round(g, 4) for g in result.gains]}")
    print(f"  candidate evaluations: {result.evaluations}, "
          f"FFT matvec actions: {result.matvec_count} "
          f"(carried by {result.matmat_count} blocked passes)\n")

print("Both precision configurations must select the same sensors: the")
print("1e-7-level matvec error is far below the information-gain gaps.")
print("With flow to the right, informative sensors sit downstream of the")
print("prior mass — exactly what the greedy picks show.")
