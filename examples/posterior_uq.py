#!/usr/bin/env python
"""Posterior uncertainty quantification with low-rank Hessian methods.

Completes the Bayesian picture of the paper's application (Sections 2.2
and the UQ workflow of its references [21, 22]): after the MAP point,
quantify uncertainty via a randomized low-rank eigendecomposition of the
prior-preconditioned Hessian — every Hessian action is one F plus one F*
FFTMatvec, so the mixed-precision configuration applies end to end.

Run:  python examples/posterior_uq.py
"""

import numpy as np

from repro.inverse import (
    GaussianPrior,
    Grid1D,
    HeatEquation1D,
    LinearBayesianProblem,
    LowRankPosterior,
    ObservationOperator,
    P2OMap,
)

rng = np.random.default_rng(21)

# Heat-source inversion with 4 sensors on 32 grid points, 40 steps.
grid = Grid1D(32)
system = HeatEquation1D(grid, dt=0.02, kappa=0.1)
nt = 40
sensor_idx = [grid.nearest_index(x) for x in (0.2, 0.4, 0.6, 0.8)]
obs = ObservationOperator(grid.n, sensor_idx)
p2o = P2OMap(system, obs, nt)
prior = GaussianPrior(grid.n, nt, gamma=3e-3, delta=6.0)
problem = LinearBayesianProblem(p2o, prior, noise_std=0.01)

print(f"problem: Nt={nt}, Nd={obs.nd}, Nm={grid.n} "
      f"({nt * grid.n} unknowns, {nt * obs.nd} data)")

# --- low-rank posterior, double vs mixed precision -------------------------
for config in ("ddddd", "dssdd"):
    post = LowRankPosterior.compute(
        problem, rank=30, config=config, rng=np.random.default_rng(0)
    )
    print(f"\nconfig {config}: rank {post.rank}, "
          f"{post.hessian_actions} Hessian actions "
          f"(= {2 * post.hessian_actions} FFT matvecs)")
    lam = post.eigenvalues
    print(f"  leading eigenvalues: {np.array2string(lam[:5], precision=1)}")
    print(f"  eigenvalue decay lam_1/lam_30: {lam[0] / max(lam[-1], 1e-30):.1e}")
    print(f"  expected information gain: {post.information_gain():.2f} nats")

# --- where did the data reduce uncertainty? --------------------------------
post = LowRankPosterior.compute(problem, rank=30, rng=np.random.default_rng(0))
prior_var = prior.variance_diag()
post_var = post.pointwise_variance()
reduction = (1.0 - post_var / prior_var).mean(axis=0)  # avg over time

print("\nvariance reduction along the domain (sensors marked *):")
bar_width = 40
for i in range(0, grid.n, 2):
    mark = "*" if i in sensor_idx or i + 1 in sensor_idx else " "
    bar = "#" * int(bar_width * reduction[i])
    print(f"  x={grid.points[i]:.2f} {mark} |{bar:<{bar_width}}| "
          f"{reduction[i] * 100:5.1f}%")

# --- posterior samples vs prior samples -------------------------------------
s_rng = np.random.default_rng(5)
prior_spread = np.std([prior.sample(s_rng) for _ in range(50)])
post_spread = np.std([post.sample(s_rng) for _ in range(50)])
print(f"\nsample std: prior {prior_spread:.3f} -> posterior {post_spread:.3f}")
print("the data shrink uncertainty exactly in the observed directions.")
