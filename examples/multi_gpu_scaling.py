#!/usr/bin/env python
"""Multi-GPU FFTMatvec with communication-aware partitioning (Section
4.2.2 / Figure 4), on the simulated Frontier network.

Runs the real SPMD engine (every rank's numerics actually execute) on a
reduced per-rank problem, compares grid shapes, and prints the modeled
paper-scale scaling table.

Run:  python examples/multi_gpu_scaling.py
"""

import numpy as np

from repro import BlockTriangularToeplitz, ParallelFFTMatvec
from repro.comm import (
    FRONTIER_NETWORK,
    ProcessGrid,
    communication_aware_partition,
    matvec_comm_cost,
    published_frontier_rows,
)
from repro.perf.scaling import matvec_time_at_scale, paper_config_for, scaling_sweep
from repro.util.dtypes import fill_low_mantissa

rng = np.random.default_rng(11)

# --- a real SPMD run on 16 simulated GPUs ---------------------------------
p = 16
nt, nd, nm = 32, 8, 16 * p
matrix = BlockTriangularToeplitz.random(nt, nd, nm, rng=rng, decay=0.05)
m = fill_low_mantissa(rng.standard_normal((nt, nm)))

print(f"=== SPMD run: {p} simulated GPUs, Nt={nt}, Nd={nd}, Nm={nm} ===")
for pr in (1, 4):
    grid = ProcessGrid(pr, p // pr, net=FRONTIER_NETWORK)
    engine = ParallelFFTMatvec(matrix, grid)
    d = engine.matvec(m, config="ddddd")
    d_mixed = engine.matvec(m, config="dssdd")
    err = np.linalg.norm(d_mixed - d) / np.linalg.norm(d)
    # single-GPU cross-check
    from repro import FFTMatvec
    d_ref = FFTMatvec(matrix).matvec(m)
    agree = np.linalg.norm(d - d_ref) / np.linalg.norm(d_ref)
    print(f"grid {pr}x{p // pr}: matches single-GPU to {agree:.1e}; "
          f"mixed-precision rel err {err:.2e}")

# --- blocked multi-RHS across the grid -------------------------------------
print("\n=== blocked grid matmat: k RHS, one broadcast/reduce per chunk ===")
k = 8
grid = ProcessGrid(4, 4, net=FRONTIER_NETWORK)
engine = ParallelFFTMatvec(matrix, grid)
M = rng.standard_normal((nt, nm, k))
b0 = grid.col_comm(0).op_counts["bcast"]
t0 = grid.clock.now
D = engine.matmat(M, config="ddddd")
t_blocked = grid.clock.now - t0
bcasts = grid.col_comm(0).op_counts["bcast"] - b0
t0 = grid.clock.now
for j in range(k):
    engine.matvec(M[:, :, j], config="ddddd")
t_looped = grid.clock.now - t0
print(f"k={k}: {bcasts} timed broadcast (vs {k} looped); modeled "
      f"{t_looped * 1e3:.3f} ms -> {t_blocked * 1e3:.3f} ms "
      f"({t_looped / t_blocked:.1f}x)")

# --- event timeline: overlap the chunk broadcasts with compute ---------------
print("\n=== event-timeline schedule: prefetch broadcasts behind compute ===")
from repro.comm.partition import skewed_extents
from repro.gpu.specs import MI250X_GCD

grid = ProcessGrid(2, 2, net=FRONTIER_NETWORK)
engine = ParallelFFTMatvec(matrix, grid, spec=MI250X_GCD, max_block_k=2)
t0 = grid.clock.now
D_serial = engine.matmat(M, config="ddddd", overlap=False)
t_serial = grid.clock.now - t0
t0 = grid.clock.now
D_overlap = engine.matmat(M, config="ddddd", overlap=True)
t_overlap = grid.clock.now - t0
assert np.array_equal(D_overlap, D_serial)  # scheduling never touches numerics
print(f"k={k} in chunks of 2 on 2x2: serial {t_serial * 1e3:.3f} ms -> "
      f"overlapped {t_overlap * 1e3:.3f} ms ({t_serial / t_overlap:.2f}x, "
      f"bitwise-identical results)")

# per-rank skew: an irregular sensor partition gates every collective
grid_skew = ProcessGrid(2, 2, net=FRONTIER_NETWORK)
engine_skew = ParallelFFTMatvec(
    matrix, grid_skew, spec=MI250X_GCD, max_block_k=2,
    row_ranges=skewed_extents(nd, 2, skew=0.5),
)
t0 = grid_skew.clock.now
engine_skew.matmat(M, config="ddddd")
t_skew = grid_skew.clock.now - t0
print(f"irregular partition (rank 0 owns {skewed_extents(nd, 2, 0.5)[0][1]}"
      f"/{nd} sensors): {t_skew * 1e3:.3f} ms "
      f"({t_skew / t_overlap:.2f}x the balanced overlapped time)")

# --- measure -> rebalance: search the skew back out --------------------------
print("\n=== skew-searching partitioner: measure -> rebalance loop ===")
from repro.comm import measure_rebalance_loop, recovered_skew_fraction

nt_b, nd_b, nm_b, k_b = 192, 16, 384, 8
big = BlockTriangularToeplitz.random(nt_b, nd_b, nm_b, rng=rng, decay=0.05)
D_b = rng.standard_normal((nt_b, nd_b, k_b))
skew_cols = skewed_extents(nm_b, 2, skew=0.5)


def make_engine(col_ranges=None):
    g = ProcessGrid(2, 2, net=FRONTIER_NETWORK)
    return ParallelFFTMatvec(big, g, spec=MI250X_GCD, max_block_k=4,
                             col_ranges=col_ranges)


def adjoint_wall(col_ranges=None):
    eng = make_engine(col_ranges)
    t0 = eng.grid.clock.now
    eng.rmatmat(D_b, overlap=False)
    return eng.grid.clock.now - t0


t_balanced = adjoint_wall()
t_skewed = adjoint_wall(skew_cols)
loop = measure_rebalance_loop(
    make_engine, lambda eng: eng.rmatmat(D_b, overlap=False),
    axis="col", initial=skew_cols, min_part=2,
)
t_searched = adjoint_wall(loop.extents)
rec = recovered_skew_fraction(t_skewed, t_searched, t_balanced)
print(f"2x2 grid, k={k_b}: balanced {t_balanced * 1e3:.4f} ms, skewed "
      f"{t_skewed * 1e3:.4f} ms")
state = "converged" if loop.converged else "round cap hit"
print(f"searched {loop.extents} in {loop.rounds} measure-rebalance round(s) "
      f"({state}): {t_searched * 1e3:.4f} ms ({rec * 100:.0f}% of the injected "
      f"skew recovered, numerics bitwise-unchanged)")

# --- communication-aware partitioning at paper scale ------------------------
print("\n=== communication-aware partitioning (model, paper scale) ===")
for gpus in (512, 1024, 4096):
    nm_global = 5000 * gpus
    pr_model, pc_model = communication_aware_partition(nm_global, 100, 1000, gpus)
    pr_paper = published_frontier_rows(gpus)
    cost_model = matvec_comm_cost(nm_global, 100, 1000, pr_model, gpus // pr_model)
    cost_naive = matvec_comm_cost(nm_global, 100, 1000, 1, gpus)
    print(f"p={gpus:5d}: model picks {pr_model:2d} rows "
          f"(paper used {pr_paper:2d}); comm {cost_model * 1e3:7.2f} ms vs "
          f"{cost_naive * 1e3:7.2f} ms for a 1-row grid "
          f"({cost_naive / cost_model:.1f}x)")

# --- the Figure-4 sweep -----------------------------------------------------
print("\n=== modeled weak scaling, Nm = 5000p (Figure 4) ===")
print(f"{'GPUs':>6} {'grid':>9} {'config':>7} {'double':>10} {'mixed':>10} "
      f"{'speedup':>8} {'overlap/vec':>12} {'ovl x':>6}")
for pt in scaling_sweep():
    print(f"{pt.p:6d} {pt.pr:4d}x{pt.pc:<4d} {pt.config:>7} "
          f"{pt.time_double * 1e3:8.2f}ms {pt.time_mixed * 1e3:8.2f}ms "
          f"{pt.speedup:8.3f} {pt.time_mixed_overlap * 1e3:10.2f}ms "
          f"{pt.overlap_speedup:6.3f}")

# The same sweep with a 1.5x-skewed partition injected, and the
# time_*_balanced columns the partitioner recovers at 64-4096 GPUs.
print("\n=== recovered skew at scale (skew=0.5 injected, then searched) ===")
print(f"{'GPUs':>6} {'skewed/vec':>11} {'balanced/vec':>13} {'recovered x':>12}")
for pt in scaling_sweep(gpu_counts=(64, 256, 1024, 4096), skew=0.5):
    print(f"{pt.p:6d} {pt.time_mixed_overlap * 1e3:9.2f}ms "
          f"{pt.time_mixed_balanced * 1e3:11.2f}ms {pt.balance_speedup:12.3f}")

t = matvec_time_at_scale(4096, 16, paper_config_for(4096))
params = 5000 * 4096 * 1000
print(f"\nat 4096 GPUs: a matvec with {params / 1e9:.1f} billion parameters "
      f"completes in {t['total'] * 1e3:.1f} ms (modeled; paper: ~110 ms)")
