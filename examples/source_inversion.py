#!/usr/bin/env python
"""Bayesian source inversion for a 1-D heat equation (the paper's
application context, Section 2): infer a space-time heat source from a
handful of noisy point sensors, with the p2o map applied via FFTMatvec.

Demonstrates that the mixed-precision matvec configuration leaves the
MAP estimate essentially unchanged while (on real hardware) nearly
doubling the matvec throughput.

Run:  python examples/source_inversion.py
"""

import numpy as np

from repro.gpu import SimulatedDevice
from repro.inverse import (
    GaussianPrior,
    Grid1D,
    HeatEquation1D,
    LinearBayesianProblem,
    ObservationOperator,
    P2OMap,
)

rng = np.random.default_rng(7)

# --- forward model: heat equation on 48 grid points, 64 time steps -------
grid = Grid1D(48)
system = HeatEquation1D(grid, dt=0.02, kappa=0.08)
nt = 64

# 5 sensors (Nd << Nm: the short-and-wide regime of the paper).
sensor_x = [0.15, 0.3, 0.5, 0.7, 0.85]
obs = ObservationOperator(grid.n, [grid.nearest_index(x) for x in sensor_x])
p2o = P2OMap(system, obs, nt, device=SimulatedDevice("MI250X"))
print(f"p2o map: Nt={nt}, Nd={obs.nd}, Nm={grid.n} "
      f"(matrix {p2o.matrix.shape[0]}x{p2o.matrix.shape[1]})")

# --- ground truth: a smooth localized source pulse ------------------------
x = grid.points
t = np.arange(nt) * system.dt
m_true = (
    np.exp(-((x[None, :] - 0.4) ** 2) / 0.01)
    * np.exp(-((t[:, None] - 0.35) ** 2) / 0.02)
)

# --- synthetic data with 1% noise ------------------------------------------
d_clean = p2o.apply(m_true)
noise_std = 0.01 * float(np.abs(d_clean).max())
d_obs = d_clean + noise_std * rng.standard_normal(d_clean.shape)
print(f"data: {d_obs.shape}, noise std {noise_std:.3e}")

# --- MAP estimation, double vs mixed precision -----------------------------
prior = GaussianPrior(grid.n, nt, gamma=3e-3, delta=8.0)
problem = LinearBayesianProblem(p2o, prior, noise_std)

for config in ("ddddd", "dssdd"):
    result = problem.solve_map(d_obs, config=config, tol=1e-8, maxiter=400)
    rel = np.linalg.norm(result.m_map - m_true) / np.linalg.norm(m_true)
    print(
        f"config {config}: CG iters={result.cg.iterations:3d} "
        f"converged={result.cg.converged}  misfit={result.misfit:9.2f}  "
        f"recovery rel err={rel:.3f}"
    )

# The two MAP estimates should agree far below the noise level.
map_d = problem.solve_map(d_obs, config="ddddd").m_map
map_s = problem.solve_map(d_obs, config="dssdd").m_map
diff = np.linalg.norm(map_d - map_s) / np.linalg.norm(map_d)
print(f"\nMAP(double) vs MAP(dssdd): rel diff = {diff:.2e} "
      f"(noise-to-signal ~ {noise_std / np.abs(d_clean).max():.0e})")
