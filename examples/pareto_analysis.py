#!/usr/bin/env python
"""The paper's Pareto-front analysis (Section 3.2 / Figure 3): sweep all
32 mixed-precision configurations, measure (time, error) for each, and
select the optimum under a 1e-7 relative error tolerance.

Run:  python examples/pareto_analysis.py
"""

import numpy as np

from repro import BlockTriangularToeplitz, FFTMatvec, SimulatedDevice
from repro.core.pareto import optimal_config, pareto_front, pareto_table, sweep_configs
from repro.gpu.specs import MI300X
from repro.perf.phase_model import modeled_timing

rng = np.random.default_rng(3)
matrix = BlockTriangularToeplitz.random(nt=48, nd=6, nm=64, rng=rng, decay=0.08)
engine = FFTMatvec(matrix, device=SimulatedDevice("MI300X"))

# Errors are measured numerically on this engine; times come from the
# phase model at the paper's size (Nm=5000, Nd=100, Nt=1000) so the
# selection sees the paper's phase weights (SBGEMV ~92% of runtime).
print("sweeping all 32 precision configurations (F matvec, MI300X model)...\n")
points = sweep_configs(
    engine,
    rng=rng,
    time_model=lambda cfg: modeled_timing(5000, 100, 1000, cfg, MI300X).total,
)

TOL = 1e-7
print(pareto_table(points, tolerance=TOL))

front = pareto_front(points)
print(f"\nPareto front ({len(front)} configurations):")
for p in front:
    print(f"  {p.config}  time={p.time * 1e3:8.4f} ms  err={p.error:.2e}")

best = optimal_config(points, TOL)
print(f"\noptimal under tolerance {TOL:g}: {best.config} "
      f"({(best.speedup - 1) * 100:.0f}% speedup, err {best.error:.2e})")
print("paper's published optimum for the F matvec: dssdd")

# The adjoint direction: the paper reports SBGEMV+IFFT single (ddssd).
print("\nsweeping the F* direction...")
adj_points = sweep_configs(
    engine,
    adjoint=True,
    rng=rng,
    time_model=lambda cfg: modeled_timing(
        5000, 100, 1000, cfg, MI300X, adjoint=True
    ).total,
)
best_adj = optimal_config(adj_points, TOL)
print(f"optimal F* config: {best_adj.config} "
      f"({(best_adj.speedup - 1) * 100:.0f}% speedup, err {best_adj.error:.2e})")
print("paper's published optimum for the F* matvec: ddssd")
