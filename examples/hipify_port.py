#!/usr/bin/env python
"""Performance portability via hipify on-the-fly (paper Section 3.1).

Maintains a single CUDA source for an FFTMatvec-style kernel set, then:

1. builds it for an NVIDIA target (no translation),
2. builds it for an AMD target (hipified at compile time),
3. shows the cuTENSOR-permutation problem: translation fails with
   "Not Supported" until a custom kernel override is registered —
   mirroring how the real application replaced cuTENSOR v2 permutation
   with a custom GPU kernel,
4. edits a source and rebuilds, demonstrating that only the modified
   file is re-hipified (content-hash caching, like the CMake setup).

Run:  python examples/hipify_port.py
"""

from repro.gpu.specs import A100, MI300X
from repro.hip import OnTheFlyBuildSystem, UnsupportedAPIError, hipify_perl

MATVEC_CU = """\
#include <cuda_runtime.h>
#include <cublas_v2.h>
#include <cufft.h>
#include <nccl.h>

void fft_phase(cufftHandle plan, cufftDoubleReal* in, cufftDoubleComplex* out) {
    cufftExecD2Z(plan, in, out);
}

void sbgemv_phase(cublasHandle_t h, const cuDoubleComplex* A,
                  const cuDoubleComplex* x, cuDoubleComplex* y) {
    cublasZgemvStridedBatched(h, CUBLAS_OP_N, 100, 5000,
                              nullptr, A, 100, 500000,
                              x, 1, 5000, nullptr, y, 1, 100, 1001);
}

void reduce_phase(double* buf, size_t n, ncclComm_t comm, cudaStream_t s) {
    ncclAllReduce(buf, buf, n, ncclDouble, ncclSum, comm, s);
    cudaStreamSynchronize(s);
}
"""

SETUP_CU = """\
#include <cuda_runtime.h>
#include <cutensor.h>

void setup_permute(double* in, double* out) {
    cutensorPermute(in, out);   // cuTENSOR v2: no hipTensor counterpart yet
    cudaDeviceSynchronize();
}
"""

print("=== 1. direct translation of the matvec source ===")
result = hipify_perl(MATVEC_CU, filename="matvec.cu")
print(f"replacements by family: {result.stats.by_family}")
print("translated snippet:")
print("\n".join(result.source.splitlines()[:8]))

print("\n=== 2. build for NVIDIA (CUDA as-is) and AMD (hipified) ===")
build = OnTheFlyBuildSystem(hipify_enabled=True)
build.add_source("matvec.cu", MATVEC_CU)
exe_nv = build.build(A100)
print(f"NVIDIA build ok: arch={exe_nv.arch}, sources={exe_nv.sources}")
exe_amd = build.build(MI300X)
print(f"AMD build ok:    arch={exe_amd.arch} "
      f"(hipify invocations so far: {build.hipify_invocations})")

print("\n=== 3. the cuTENSOR permutation problem ===")
build.add_source("setup.cu", SETUP_CU)
try:
    build.build(MI300X)
except UnsupportedAPIError as exc:
    print(f"build failed as expected: {exc}")

print("\nregistering the custom permutation kernel (the paper's fix)...")
build_fixed = OnTheFlyBuildSystem(
    hipify_enabled=True,
    custom_overrides={"cutensorPermute": "fftmatvec_permute_kernel"},
)
build_fixed.add_source("matvec.cu", MATVEC_CU)
build_fixed.add_source("setup.cu", SETUP_CU)
exe = build_fixed.build(MI300X)
print("AMD build now succeeds; setup.cu contains:")
print("\n".join(exe.translated["setup.cu"].splitlines()[:6]))

print("\n=== 4. incremental re-hipification on source change ===")
before = build_fixed.cache_info()
build_fixed.update_source("matvec.cu", MATVEC_CU + "\n// tuned block size\n")
build_fixed.build(MI300X)
after = build_fixed.cache_info()
print(f"hipify invocations: {before['hipify_invocations']} -> "
      f"{after['hipify_invocations']} (only the edited file re-translated)")
