#!/usr/bin/env python
"""Quickstart: build a block-triangular Toeplitz matrix, run F and F*
matvecs in mixed precision on a simulated MI300X, and inspect timings.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import BlockTriangularToeplitz, FFTMatvec, SimulatedDevice

rng = np.random.default_rng(42)

# A modest problem: 64 time steps, 6 sensors, 80 spatial parameters.
# Only the first block column (64 blocks of 6x80) is ever stored.
matrix = BlockTriangularToeplitz.random(nt=64, nd=6, nm=80, rng=rng, decay=0.03)
print(matrix)
print(f"  stored:        {matrix.storage_bytes / 1e3:.1f} kB (first block column)")
print(f"  dense would be {matrix.dense_bytes / 1e6:.1f} MB")

# Attach a simulated GPU to get modeled per-phase timings.
engine = FFTMatvec(matrix, device=SimulatedDevice("MI300X"))

m = rng.standard_normal((matrix.nt, matrix.nm))

# Baseline double-precision matvec, validated against the O(Nt^2) reference.
d = engine.matvec(m, config="ddddd")
ref = matrix.matvec_reference(m)
print(f"\nF matvec vs dense reference: rel err = "
      f"{np.linalg.norm(d - ref) / np.linalg.norm(ref):.2e}")
print("\n".join(engine.last_timing.lines()))

# The paper's optimal mixed configuration: FFT + SBGEMV in single.
d_mixed = engine.matvec(m, config="dssdd")
err = np.linalg.norm(d_mixed - d) / np.linalg.norm(d)
print(f"\nmixed 'dssdd' vs double: rel err = {err:.2e}")
print("\n".join(engine.last_timing.lines()))

# Adjoint matvec + the <Fm, d> == <m, F*d> consistency check.
dv = rng.standard_normal((matrix.nt, matrix.nd))
m_adj = engine.rmatvec(dv, config="ddddd")
lhs, rhs = np.vdot(d, dv), np.vdot(m, m_adj)
print(f"\nadjoint dot-test: <Fm,d>={lhs:.6f}  <m,F*d>={rhs:.6f}")
