#!/usr/bin/env python
"""Quickstart: build a block-triangular Toeplitz matrix, run F and F*
matvecs in mixed precision on a simulated MI300X, inspect timings, and
rebalance a skewed process grid from measured per-rank clocks.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import BlockTriangularToeplitz, FFTMatvec, SimulatedDevice

rng = np.random.default_rng(42)

# A modest problem: 64 time steps, 6 sensors, 80 spatial parameters.
# Only the first block column (64 blocks of 6x80) is ever stored.
matrix = BlockTriangularToeplitz.random(nt=64, nd=6, nm=80, rng=rng, decay=0.03)
print(matrix)
print(f"  stored:        {matrix.storage_bytes / 1e3:.1f} kB (first block column)")
print(f"  dense would be {matrix.dense_bytes / 1e6:.1f} MB")

# Attach a simulated GPU to get modeled per-phase timings.
engine = FFTMatvec(matrix, device=SimulatedDevice("MI300X"))

m = rng.standard_normal((matrix.nt, matrix.nm))

# Baseline double-precision matvec, validated against the O(Nt^2) reference.
d = engine.matvec(m, config="ddddd")
ref = matrix.matvec_reference(m)
print(f"\nF matvec vs dense reference: rel err = "
      f"{np.linalg.norm(d - ref) / np.linalg.norm(ref):.2e}")
print("\n".join(engine.last_timing.lines()))

# The paper's optimal mixed configuration: FFT + SBGEMV in single.
d_mixed = engine.matvec(m, config="dssdd")
err = np.linalg.norm(d_mixed - d) / np.linalg.norm(d)
print(f"\nmixed 'dssdd' vs double: rel err = {err:.2e}")
print("\n".join(engine.last_timing.lines()))

# Adjoint matvec + the <Fm, d> == <m, F*d> consistency check.
dv = rng.standard_normal((matrix.nt, matrix.nd))
m_adj = engine.rmatvec(dv, config="ddddd")
lhs, rhs = np.vdot(d, dv), np.vdot(m, m_adj)
print(f"\nadjoint dot-test: <Fm,d>={lhs:.6f}  <m,F*d>={rhs:.6f}")

# --- measure -> rebalance: remove the skew an irregular partition charges ---
# Distribute a bigger problem over a simulated 2x2 grid with a skewed
# parameter partition, measure per-rank compute on the private clocks,
# and let the partitioner search the skew back out.
from repro.comm import ProcessGrid, measure_rebalance_loop, skewed_extents
from repro.comm.netmodel import FRONTIER_NETWORK
from repro.core.parallel import ParallelFFTMatvec

nt, nd, nm, k = 192, 16, 384, 8
big = BlockTriangularToeplitz.random(nt, nd, nm, rng=rng, decay=0.05)
D = rng.standard_normal((nt, nd, k))
skewed = skewed_extents(nm, 2, skew=0.5)  # rank column 0 owns 1.5x its share


def make_engine(col_ranges=None):
    grid = ProcessGrid(2, 2, net=FRONTIER_NETWORK)
    return ParallelFFTMatvec(big, grid, spec="MI250X", max_block_k=4,
                             col_ranges=col_ranges)


def modeled_wall(col_ranges=None):
    eng = make_engine(col_ranges)
    t0 = eng.grid.clock.now
    eng.rmatmat(D, overlap=False)
    return eng.grid.clock.now - t0


t_skewed = modeled_wall(skewed)
result = measure_rebalance_loop(
    make_engine, lambda eng: eng.rmatmat(D, overlap=False),
    axis="col", initial=skewed, min_part=2,
)
t_rebalanced = modeled_wall(result.extents)
state = "converged" if result.converged else "round cap hit"
print(f"\nskewed 2x2 grid (column 0 owns {skewed[0][1]}/{nm} parameters):")
print(f"  modeled wall before rebalance: {t_skewed * 1e6:8.2f} us")
print(f"  searched col_ranges {result.extents} in {result.rounds} round(s), {state}")
print(f"  modeled wall after  rebalance: {t_rebalanced * 1e6:8.2f} us "
      f"({t_skewed / t_rebalanced:.3f}x, numerics bitwise-unchanged)")
