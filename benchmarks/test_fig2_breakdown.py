"""Figure 2 bench: single-GPU matvec runtime breakdown on three GPUs.

Regenerates the per-phase breakdown table at the paper's size
(Nm=5000, Nd=100, Nt=1000, modeled) and times the real five-phase
pipeline numerics at a reduced size on the simulated device.
"""

import numpy as np
import pytest

from repro.core.matvec import FFTMatvec
from repro.core.toeplitz import BlockTriangularToeplitz
from repro.figures.fig2 import figure2
from repro.gpu.device import SimulatedDevice
from repro.gpu.specs import MI250X_GCD, MI300X, MI355X


class TestFigure2:
    def test_regenerate_figure2(self, benchmark):
        entries, text = benchmark(figure2)
        print("\n" + text)
        f_times = {e.gpu: e.total_ms for e in entries if e.direction == "F"}
        # paper facts: SBGEMV ~92%+, total time follows peak bandwidth
        assert all(e.sbgemv_fraction > 0.9 for e in entries)
        assert f_times["MI250X (Single GCD)"] > f_times["MI300X"] > f_times["MI355X"]

    @pytest.mark.parametrize(
        "spec", [MI250X_GCD, MI300X, MI355X], ids=lambda s: s.arch
    )
    def test_numeric_forward_pipeline(self, benchmark, rng, spec):
        matrix = BlockTriangularToeplitz.random(64, 8, 128, rng=rng, decay=0.02)
        engine = FFTMatvec(matrix, device=SimulatedDevice(spec))
        m = rng.standard_normal((64, 128))
        d = benchmark(engine.matvec, m)
        assert d.shape == (64, 8)
        print(f"\n{spec.name} modeled phases (reduced size): "
              + ", ".join(f"{k}={v * 1e6:.1f}us"
                          for k, v in engine.last_timing.phases.items()))

    def test_numeric_adjoint_pipeline(self, benchmark, rng):
        matrix = BlockTriangularToeplitz.random(64, 8, 128, rng=rng, decay=0.02)
        engine = FFTMatvec(matrix, device=SimulatedDevice(MI300X))
        d = rng.standard_normal((64, 8))
        m = benchmark(engine.rmatvec, d)
        assert m.shape == (64, 128)

    def test_unoptimized_kernel_ablation(self, benchmark):
        # Section 3.1.1's before/after: F* with and without the kernel
        from repro.perf.phase_model import modeled_timing

        def ablation():
            rows = []
            for spec in (MI250X_GCD, MI300X, MI355X):
                t_opt = modeled_timing(5000, 100, 1000, "ddddd", spec,
                                       adjoint=True).total
                t_base = modeled_timing(5000, 100, 1000, "ddddd", spec,
                                        adjoint=True,
                                        use_optimized_sbgemv=False).total
                rows.append((spec.name, t_base * 1e3, t_opt * 1e3, t_base / t_opt))
            return rows

        rows = benchmark(ablation)
        print("\nF* matvec: original rocBLAS kernel vs optimized kernel")
        for name, t_base, t_opt, speedup in rows:
            print(f"  {name:22s} {t_base:7.3f} ms -> {t_opt:7.3f} ms "
                  f"({speedup:.2f}x)")
        assert all(r[3] > 1.2 for r in rows)
