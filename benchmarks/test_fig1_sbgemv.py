"""Figure 1 bench: (conjugate) transpose SBGEMV, rocBLAS vs optimized.

Regenerates the paper's rocblas-bench comparison (17 shape/datatype
combinations on MI300X, batch 100) and times the real batched-GEMV
numerics of the headline short-and-wide case.
"""

import numpy as np
import pytest

from repro.blas.bench import RocblasBench, make_fig1_yaml
from repro.blas.gemv_kernels import OptimizedSBGEMV, RocblasSBGEMV
from repro.blas.types import BlasDatatype, GemvProblem, Operation
from repro.figures.fig1 import FIG1_DATATYPES, FIG1_SIZES, figure1
from repro.gpu.specs import MI300X


class TestFigure1:
    def test_regenerate_figure1(self, benchmark):
        rows, text = benchmark(figure1)
        print("\n" + text)
        # headline facts: optimized kernel never loses; biggest win on
        # the most skewed, lightest-datatype shape
        assert all(r.speedup >= 0.99 for r in rows)
        best = max(rows, key=lambda r: r.speedup)
        assert (best.datatype, best.m, best.n) == ("s", 128, 4096)

    def test_rocblas_bench_yaml_workflow(self, benchmark):
        # the artifact's workflow: one YAML config, two builds, compare
        def run():
            yaml_text = make_fig1_yaml(
                FIG1_SIZES["z"], ["z"]
            )
            old = RocblasBench(MI300X, build="rocblas").run_yaml(yaml_text)
            new = RocblasBench(MI300X, build="optimized").run_yaml(yaml_text)
            return RocblasBench.comparison_table(old, new)

        table = benchmark(run)
        print("\n" + table)
        assert "speedup" in table

    @pytest.mark.parametrize("dt", FIG1_DATATYPES)
    def test_numeric_sbgemv_transpose(self, benchmark, rng, dt):
        # real numerics of one short-and-wide transposed SBGEMV per dtype
        datatype = BlasDatatype.parse(dt)
        op = Operation.C if datatype.is_complex else Operation.T
        m, n, batch = 128, 1024, 16
        problem = GemvProblem(m=m, n=n, batch=batch, datatype=datatype, operation=op)
        if datatype.is_complex:
            A = (rng.standard_normal((batch, m, n))
                 + 1j * rng.standard_normal((batch, m, n))).astype(datatype.dtype)
            x = (rng.standard_normal((batch, m))
                 + 1j * rng.standard_normal((batch, m))).astype(datatype.dtype)
        else:
            A = rng.standard_normal((batch, m, n)).astype(datatype.dtype)
            x = rng.standard_normal((batch, m)).astype(datatype.dtype)
        kernel = OptimizedSBGEMV()
        y = benchmark(kernel.run, A, x, problem)
        assert y.shape == (batch, n)

    def test_transition_point_derivation(self, benchmark):
        # deriving the dispatcher's per-dtype transition points (the
        # "benchmarking results used to set the kernel transition points")
        from repro.blas.dispatch import SBGEMVDispatcher

        def derive():
            disp = SBGEMVDispatcher(MI300X)
            return {
                dt.value: disp.transition_point(
                    dt, Operation.C if dt.is_complex else Operation.T
                )
                for dt in BlasDatatype
            }

        points = benchmark(derive)
        print(f"\nkernel transition points (max m where optimized wins): {points}")
        assert all(v >= 128 for v in points.values())
