"""Fault-tolerance bench: recovery overhead and bitwise replay.

The ISSUE-9 acceptance benchmark, three claims in one artifact:

* a mid-``matmat`` rank failure recovered onto the ``N - 1`` survivors
  returns **bitwise-identical** results (pairwise reduction), replaying
  at most the one lost chunk — recovery overhead **<= 25%** of the
  apply's work (one chunk of at least four),
* block CG resumed from its latest checkpoint replays only the
  remaining iterations — bitwise equal to the uninterrupted solve while
  skipping the majority of the work,
* the Young/Daly model prices the same story at fleet scale
  (``recovery_cost_model``).

Emits ``BENCH_fault.json`` so CI's chaos smoke step can assert the
bitwise guarantee and the overhead bound at tiny sizes
(``REPRO_BENCH_TINY=1``).
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.comm.fault import FailureSchedule
from repro.core.elastic import ElasticEngine
from repro.core.parallel import ParallelFFTMatvec
from repro.core.toeplitz import BlockTriangularToeplitz
from repro.comm.grid import ProcessGrid
from repro.inverse.cg import BlockCGState, block_conjugate_gradient
from repro.perf.phase_model import recovery_cost_model
from repro.util.checkpoint import CheckpointStore, state_fingerprint

TINY = bool(os.environ.get("REPRO_BENCH_TINY"))
NT, ND, NM = (16, 8, 48) if TINY else (32, 16, 192)
K, MBK = 16, 2  # 8 chunks: one replayed chunk is 12.5% of the work
RANKS = 4

# Replayed-work bound (the deterministic claim): one lost chunk out of
# eight.  The measured wall also pays the grid rebuild, which at bench
# sizes is comparable to a chunk apply — so the wall bound is looser,
# and looser again at TINY where rebuild cost dominates everything.
WORK_OVERHEAD_BOUND = 0.25
WALL_OVERHEAD_BOUND = 1.5 if TINY else 1.0

ARTIFACT = Path(__file__).parent / "BENCH_fault.json"


def make_problem():
    rng = np.random.default_rng(909)
    matrix = BlockTriangularToeplitz.random(NT, ND, NM, rng=rng, decay=0.05)
    block = rng.standard_normal((NT, NM, K))
    return matrix, block


class TestFaultBench:
    def test_recovery_overhead_with_artifact(self):
        matrix, block = make_problem()

        # Ground truth: the plain 2x2 pairwise grid, no elastic layer.
        ref = ParallelFFTMatvec(
            matrix, ProcessGrid(2, 2), reduction="pairwise"
        ).matmat(block)

        t0 = time.perf_counter()
        baseline = ElasticEngine(matrix, RANKS, max_block_k=MBK)
        out_base = baseline.matmat(block)
        t_base = time.perf_counter() - t0

        t0 = time.perf_counter()
        faulty = ElasticEngine(
            matrix,
            RANKS,
            max_block_k=MBK,
            failures=FailureSchedule(kills=[(11, 2)]),
        )
        out_fault = faulty.matmat(block)
        t_fault = time.perf_counter() - t0

        assert np.array_equal(out_base, ref)
        assert np.array_equal(out_fault, ref), "recovered result not bitwise"
        assert faulty.report.failures == 1
        assert faulty.n_ranks == RANKS - 1

        n_chunks = -(-K // MBK)
        work_overhead = faulty.report.chunks_replayed / n_chunks
        wall_overhead = t_fault / t_base - 1.0
        assert 0.0 < work_overhead <= WORK_OVERHEAD_BOUND
        assert wall_overhead <= WALL_OVERHEAD_BOUND

        # CG resume: lose the solve after ~2/3 of its iterations, resume
        # from the store, and pay only the remaining third.
        rng = np.random.default_rng(910)
        A = rng.standard_normal((NM, NM))
        A = A @ A.T + NM * np.eye(NM)
        rhs = rng.standard_normal((NM, 4))
        op = lambda X: A @ X  # noqa: E731 - bench-local operator

        t0 = time.perf_counter()
        states = []
        full = block_conjugate_gradient(
            op, rhs, tol=1e-10, checkpoint_every=1, checkpoint=states.append
        )
        t_full = time.perf_counter() - t0
        assert full.all_converged

        store = CheckpointStore()
        fp = state_fingerprint(A, rhs, 1e-10)
        cut = states[(2 * len(states)) // 3]
        store.save("bcg", cut.to_arrays(), fingerprint=fp, step=cut.iteration)
        t0 = time.perf_counter()
        restored = BlockCGState.from_arrays(
            store.load("bcg", expect_fingerprint=fp).arrays
        )
        resumed = block_conjugate_gradient(op, rhs, tol=1e-10, resume=restored)
        t_resume = time.perf_counter() - t0
        assert np.array_equal(resumed.X, full.X), "resumed CG not bitwise"
        iters_saved = cut.iteration / full.iterations
        assert iters_saved > 0.5  # the cut skipped most of the work

        # Fleet-scale pricing of the same mechanics.
        year = 365.0 * 24 * 3600.0
        model = recovery_cost_model(
            3600.0, year / 512, checkpoint_s=0.5, restart_s=5.0
        )

        print(
            f"\nelastic {RANKS}->{faulty.n_ranks} ranks: "
            f"{faulty.report.chunks_replayed}/{n_chunks} chunks replayed "
            f"({work_overhead * 100:.1f}% work, wall {t_base * 1e3:.1f} -> "
            f"{t_fault * 1e3:.1f} ms); CG resume at iter {cut.iteration}/"
            f"{full.iterations} saved {iters_saved * 100:.0f}% of "
            f"iterations; modeled 512-GPU slowdown {model['slowdown']:.4f}"
        )

        ARTIFACT.write_text(json.dumps({
            "bench": "fault",
            "tiny": TINY,
            "shape": {"nt": NT, "nd": ND, "nm": NM, "k": K, "max_block_k": MBK},
            "ranks_before": RANKS,
            "ranks_after": faulty.n_ranks,
            "failures_injected": faulty.report.failures,
            "chunks_total": n_chunks,
            "chunks_replayed": faulty.report.chunks_replayed,
            "recovery_overhead_fraction": work_overhead,
            "recovery_overhead_bound": WORK_OVERHEAD_BOUND,
            "wall_baseline_s": t_base,
            "wall_with_failure_s": t_fault,
            "wall_overhead_fraction": wall_overhead,
            "wall_overhead_bound": WALL_OVERHEAD_BOUND,
            "recovered_bitwise": True,
            "cg_iterations": full.iterations,
            "cg_resume_iteration": cut.iteration,
            "cg_resume_bitwise": True,
            "cg_wall_full_s": t_full,
            "cg_wall_resume_s": t_resume,
            "modeled_slowdown_512gpu": model["slowdown"],
        }, indent=2) + "\n")
        data = json.loads(ARTIFACT.read_text())
        assert data["recovered_bitwise"] and data["cg_resume_bitwise"]
        assert (
            data["recovery_overhead_fraction"]
            <= data["recovery_overhead_bound"]
        )
