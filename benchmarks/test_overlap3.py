"""Three-stream fused schedule bench: host/device/network concurrent.

The ISSUE-8 tentpole acceptance: fusing the host stream (per-vector
source generation + result saving) into the grid chunk schedule must

* leave the numerics **bitwise-identical** to the host-free engine —
  the host stream only moves charged time,
* charge a wall **strictly below** the two-stream schedule plus the
  serial host total at every scale, and reproduce that serial charge
  exactly with ``overlap_host=False`` (the PR 3 accounting),
* beat the two-stream + serial-host model at all of 64–4096 GPUs in
  the at-scale model, strictly at 4096.

Emits ``BENCH_overlap3.json`` for CI's tiny smoke
(``REPRO_BENCH_TINY=1``).
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.comm.grid import ProcessGrid
from repro.comm.netmodel import FRONTIER_NETWORK
from repro.core.parallel import ParallelFFTMatvec
from repro.core.toeplitz import BlockTriangularToeplitz
from repro.gpu.specs import MI300X
from repro.perf.scaling import blocked_matvec_time_at_scale, paper_config_for
from repro.util.timing import HostModel

TINY = bool(os.environ.get("REPRO_BENCH_TINY"))
NT, ND, NM = (16, 8, 48) if TINY else (48, 64, 384)
PR, PC, K, MBK = 2, 2, 16, 4

HOST = HostModel(gen_time=50e-6, save_time=100e-6)
SCALE_PS = (64, 256, 1024, 4096)
SCALE_ROWS = {64: 1, 256: 2, 1024: 8, 4096: 16}

ARTIFACT = Path(__file__).parent / "BENCH_overlap3.json"


def make_engine(**kw):
    kw.setdefault("max_block_k", MBK)
    rng = np.random.default_rng(1234)
    matrix = BlockTriangularToeplitz.random(NT, ND, NM, rng=rng, decay=0.05)
    grid = ProcessGrid(PR, PC, net=FRONTIER_NETWORK)
    eng = ParallelFFTMatvec(matrix, grid, spec=MI300X, **kw)
    block = rng.standard_normal((NT, NM, K))
    return eng, grid, block


class TestOverlap3Bench:
    def test_engine_fused_schedule_with_artifact(self):
        base, grid0, block = make_engine()
        t0 = grid0.clock.now
        out_base = base.matmat(block)
        wall2 = grid0.clock.now - t0

        host_total = K * HOST.per_vector

        two, grid2, _ = make_engine(host=HOST, overlap_host=False)
        t0 = grid2.clock.now
        out_two = two.matmat(block)
        wall_two = grid2.clock.now - t0

        fused, grid3, _ = make_engine(host=HOST)
        t0 = grid3.clock.now
        out_fused = fused.matmat(block)
        wall3 = grid3.clock.now - t0

        # Bitwise numerics; exact serial charge; strict fused win.
        assert np.array_equal(out_two, out_base)
        assert np.array_equal(out_fused, out_base)
        assert wall_two == pytest.approx(wall2 + host_total, abs=1e-12)
        assert wall3 < wall_two
        assert wall3 >= wall2

        # At-scale model: fused three-stream vs two-stream + serial host.
        scale_rows = []
        for p in SCALE_PS:
            cfg = paper_config_for(p)
            t = blocked_matvec_time_at_scale(
                p, SCALE_ROWS[p], cfg, k=K, max_block_k=MBK, host=HOST
            )
            assert t["overlapped3"] <= t["two_stream_host"], p
            scale_rows.append({
                "p": p,
                "config": str(cfg),
                "two_stream_host_s": t["two_stream_host"],
                "overlapped3_s": t["overlapped3"],
                "hidden_host_s": t["hidden_host"],
                "speedup": t["two_stream_host"] / t["overlapped3"],
            })
        assert scale_rows[-1]["overlapped3_s"] < scale_rows[-1]["two_stream_host_s"]

        hidden = wall_two - wall3
        print(f"\ngrid {PR}x{PC}, k={K}, host {HOST.per_vector * 1e6:.0f} us/vec:")
        print(
            f"  engine: two-stream+host {wall_two * 1e3:.3f} ms -> fused "
            f"{wall3 * 1e3:.3f} ms ({wall_two / wall3:.3f}x, "
            f"{hidden * 1e6:.1f} us hidden)"
        )
        for row in scale_rows:
            print(
                f"  model p={row['p']:>4} ({row['config']}): "
                f"{row['two_stream_host_s'] * 1e3:.3f} ms -> "
                f"{row['overlapped3_s'] * 1e3:.3f} ms ({row['speedup']:.3f}x)"
            )

        ARTIFACT.write_text(json.dumps({
            "bench": "overlap3",
            "grid": f"{PR}x{PC}",
            "shape": {"nt": NT, "nd": ND, "nm": NM, "k": K, "max_block_k": MBK},
            "host": {"gen_time_s": HOST.gen_time, "save_time_s": HOST.save_time},
            "engine_two_stream_s": wall2,
            "engine_two_stream_host_s": wall_two,
            "engine_overlap3_s": wall3,
            "engine_hidden_host_s": hidden,
            "engine_speedup": wall_two / wall3,
            "serial_host_charge_exact": True,
            "bitwise_identical": True,
            "at_scale": scale_rows,
        }, indent=2) + "\n")
        data = json.loads(ARTIFACT.read_text())
        assert data["engine_speedup"] > 1.0
        assert all(row["speedup"] >= 1.0 for row in data["at_scale"])
        assert data["at_scale"][-1]["speedup"] > 1.0

    def test_fused_pairwise_keeps_bitwise_guarantee(self):
        # The two tentpole halves compose: pairwise + fused host is
        # bitwise the single-device pairwise result.
        from repro.core.matvec import FFTMatvec

        eng, _, block = make_engine(reduction="pairwise", host=HOST)
        rng = np.random.default_rng(1234)
        matrix = BlockTriangularToeplitz.random(NT, ND, NM, rng=rng, decay=0.05)
        ref = FFTMatvec(matrix, reduction="pairwise").matmat(block)
        assert np.array_equal(eng.matmat(block), ref)

    def test_host_charge_invariant_to_chunking(self):
        # The host stream charges per vector: total host seconds must
        # not depend on max_block_k.
        for mbk in (2, 8):
            eng, _, block = make_engine(host=HOST, max_block_k=mbk)
            eng.matmat(block)
            assert eng.last_timing.phases["host"] == pytest.approx(
                K * HOST.per_vector, abs=1e-15
            )
