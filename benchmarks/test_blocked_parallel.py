"""Blocked grid matmat bench: batched collectives across the 2-D grid.

The acceptance benchmark for the distributed blocked path: at ``k = 16``
on a 2x2 grid, ``ParallelFFTMatvec.matmat`` must

* perform exactly **one** column-broadcast and **one** row-reduce per
  chunk (vs 16 each when looping ``matvec``) — asserted on the timed
  communicators' operation counters,
* be at least **3x faster in modeled time** (simulated device compute +
  tree-collective cost) than the looped grid matvec,
* match the looped per-rank numerics (bitwise for single-column chunks,
  to 1e-12 for wide GEMM panels, whose BLAS column accumulation differs
  from a GEMV's at rounding level).

It also reports real wall-clock for both paths and emits a
``BENCH_parallel_blocked.json`` artifact next to this file so the
timing/JSON plumbing is exercised by CI's benchmark smoke step.
``REPRO_BENCH_TINY=1`` shrinks the problem so that smoke step stays
cheap.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.comm.grid import ProcessGrid
from repro.comm.netmodel import FRONTIER_NETWORK
from repro.core.matvec import FFTMatvec
from repro.core.parallel import ParallelFFTMatvec
from repro.core.precision import PrecisionConfig
from repro.core.toeplitz import BlockTriangularToeplitz
from repro.gpu.specs import MI300X

TINY = bool(os.environ.get("REPRO_BENCH_TINY"))
# Phase-3-dominated shape (wide parameter blocks) so the matrix-reuse
# win shows up in wall-clock, scaled down under REPRO_BENCH_TINY.
NT, ND, NM = (16, 8, 48) if TINY else (48, 64, 384)
PR, PC, K = 2, 2, 16

ARTIFACT = Path(__file__).parent / "BENCH_parallel_blocked.json"


def make_engine(spec=MI300X):
    rng = np.random.default_rng(1234)
    matrix = BlockTriangularToeplitz.random(NT, ND, NM, rng=rng, decay=0.05)
    grid = ProcessGrid(PR, PC, net=FRONTIER_NETWORK)
    eng = ParallelFFTMatvec(matrix, grid, spec=spec)
    block = rng.standard_normal((NT, NM, K))
    return eng, grid, matrix, block


def _best_of(fn, reps: int = 3) -> float:
    """Min wall-clock over a few repetitions (noise-tolerant timing)."""
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


class TestBlockedGridSpeedup:
    def test_collectives_numerics_and_speedup_with_artifact(self):
        eng, grid, matrix, block = make_engine()
        col0, row0 = grid.col_comm(0), grid.row_comm(0)

        # --- counters + modeled time from one run of each path (the
        # simulated clock is deterministic; wall-clock is timed apart).
        bcasts0, reduces0 = col0.op_counts["bcast"], row0.op_counts["reduce"]
        t0 = grid.clock.now
        blocked = eng.matmat(block)
        modeled_blocked = grid.clock.now - t0
        bcasts_blocked = col0.op_counts["bcast"] - bcasts0
        reduces_blocked = row0.op_counts["reduce"] - reduces0
        assert bcasts_blocked == 1  # one chunk -> one timed broadcast
        assert reduces_blocked == 1

        bcasts0, reduces0 = col0.op_counts["bcast"], row0.op_counts["reduce"]
        t0 = grid.clock.now
        looped = np.stack(
            [eng.matvec(block[:, :, j]) for j in range(K)], axis=-1
        )
        modeled_looped = grid.clock.now - t0
        assert col0.op_counts["bcast"] - bcasts0 == K
        assert row0.op_counts["reduce"] - reduces0 == K

        # --- wall-clock: best of 3 per path so one scheduler stall on a
        # shared runner cannot flip the ratio.
        wall_blocked = _best_of(lambda: eng.matmat(block))
        wall_looped = _best_of(
            lambda: [eng.matvec(block[:, :, j]) for j in range(K)]
        )

        # --- identical numerics (GEMM panel rounding only) and speedups.
        assert np.abs(blocked - looped).max() < 1e-12
        modeled_speedup = modeled_looped / modeled_blocked
        wall_speedup = wall_looped / wall_blocked
        print(
            f"\ngrid {PR}x{PC}, k={K}: modeled {modeled_looped * 1e3:.3f} ms"
            f" -> {modeled_blocked * 1e3:.3f} ms ({modeled_speedup:.2f}x),"
            f" wall {wall_looped * 1e3:.1f} ms -> {wall_blocked * 1e3:.1f} ms"
            f" ({wall_speedup:.2f}x)"
        )
        assert modeled_speedup >= 3.0
        # The in-process SPMD simulation runs ranks sequentially, which
        # dilutes (but must not erase) the real-time win; CI runners
        # compress it further.
        floor = 1.05 if (TINY or os.environ.get("CI")) else 1.3
        assert wall_speedup >= floor

        ARTIFACT.write_text(json.dumps({
            "bench": "parallel_blocked",
            "grid": f"{PR}x{PC}",
            "shape": {"nt": NT, "nd": ND, "nm": NM, "k": K},
            "modeled_looped_s": modeled_looped,
            "modeled_blocked_s": modeled_blocked,
            "modeled_speedup": modeled_speedup,
            "wall_looped_s": wall_looped,
            "wall_blocked_s": wall_blocked,
            "wall_speedup": wall_speedup,
            "timed_bcasts_blocked": bcasts_blocked,
            "timed_reduces_blocked": reduces_blocked,
            "timed_bcasts_looped": K,
            "timed_reduces_looped": K,
        }, indent=2) + "\n")
        assert json.loads(ARTIFACT.read_text())["modeled_speedup"] >= 3.0

    def test_chunked_collective_count(self):
        eng, grid, _, block = make_engine(spec=None)
        col0, row0 = grid.col_comm(0), grid.row_comm(0)
        for max_block_k, chunks in ((4, 4), (6, 3), (16, 1)):
            b0, r0 = col0.op_counts["bcast"], row0.op_counts["reduce"]
            eng.matmat(block, max_block_k=max_block_k)
            assert col0.op_counts["bcast"] - b0 == chunks
            assert row0.op_counts["reduce"] - r0 == chunks

    def test_per_rank_partials_match_local_engine_bitwise(self):
        # The collective layer must add nothing: each rank's blocked
        # partial equals FFTMatvec.matmat on its local sub-block exactly.
        eng, grid, matrix, block = make_engine(spec=None)
        r0, r1 = eng._row_ranges[0]
        c0, c1 = eng._col_ranges[1]
        local = FFTMatvec(BlockTriangularToeplitz(
            matrix.blocks[:, r0:r1, c0:c1]
        ))
        expected = local.matmat(block[:, c0:c1, :])
        got = eng.engines[(0, 1)]._pipeline_block(
            block[:, c0:c1, :], PrecisionConfig.parse("ddddd"), adjoint=False
        )
        assert np.array_equal(got, expected)

    def test_adjoint_blocked_matches_looped(self):
        eng, grid, _, _ = make_engine(spec=None)
        rng = np.random.default_rng(9)
        data = rng.standard_normal((NT, ND, K))
        blocked = eng.rmatmat(data)
        looped = np.stack(
            [eng.rmatvec(data[:, :, j]) for j in range(K)], axis=-1
        )
        assert np.abs(blocked - looped).max() < 1e-12


class TestBlockedGridBench:
    def test_benchmark_grid_matmat(self, benchmark):
        eng, _, _, block = make_engine(spec=None)
        eng.matmat(block[:, :, :2])  # warm plans
        result = benchmark.pedantic(
            lambda: eng.matmat(block), rounds=3, iterations=1
        )
        assert result.shape == (NT, ND, K)
