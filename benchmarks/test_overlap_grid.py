"""Overlapped grid matmat bench: prefetch broadcasts behind compute.

The acceptance benchmark for the event-timeline schedule: at ``k = 16``
on a 2x2 grid, ``ParallelFFTMatvec.matmat`` with ``overlap=True`` must

* return **bitwise-identical** results to the serial (``overlap=False``)
  schedule — the timeline decides what time costs, never what is
  computed,
* charge **strictly less modeled time** than the serial schedule
  (compute covers the prefetched chunk broadcasts; only chunk 0's
  broadcast and the last reduce stay exposed),
* report the overlapped wall in ``last_timing.wall`` while the phase
  sum still accounts for every second of work charged.

It emits a ``BENCH_overlap_grid.json`` artifact next to this file so
CI's benchmark smoke step can assert the overlap win survives at tiny
sizes (``REPRO_BENCH_TINY=1``).
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.comm.grid import ProcessGrid
from repro.comm.netmodel import FRONTIER_NETWORK
from repro.comm.partition import skewed_extents
from repro.core.parallel import ParallelFFTMatvec
from repro.core.toeplitz import BlockTriangularToeplitz
from repro.gpu.specs import MI300X

TINY = bool(os.environ.get("REPRO_BENCH_TINY"))
NT, ND, NM = (16, 8, 48) if TINY else (48, 64, 384)
PR, PC, K, MBK = 2, 2, 16, 4

ARTIFACT = Path(__file__).parent / "BENCH_overlap_grid.json"


def make_engine(**kw):
    rng = np.random.default_rng(1234)
    matrix = BlockTriangularToeplitz.random(NT, ND, NM, rng=rng, decay=0.05)
    grid = ProcessGrid(PR, PC, net=FRONTIER_NETWORK)
    eng = ParallelFFTMatvec(matrix, grid, spec=MI300X, max_block_k=MBK, **kw)
    block = rng.standard_normal((NT, NM, K))
    return eng, grid, matrix, block


class TestOverlapGridBench:
    def test_overlap_vs_serial_with_artifact(self):
        eng, grid, _, block = make_engine()

        t0 = grid.clock.now
        serial = eng.matmat(block, overlap=False)
        t_serial = grid.clock.now - t0

        t0 = grid.clock.now
        overlapped = eng.matmat(block, overlap=True)
        t_overlap = grid.clock.now - t0
        wall = eng.last_timing.wall
        work = eng.last_timing.total

        # Bitwise-identical numerics, strictly lower modeled time.
        assert np.array_equal(overlapped, serial)
        assert t_overlap < t_serial
        assert wall == pytest.approx(t_overlap)
        assert work > t_overlap  # overlap hides charged work

        # Skew rider: an irregular partition of the same problem charges
        # more wall time than the balanced one.
        eng_skew, grid_skew, _, _ = (
            lambda r: make_engine(row_ranges=r)
        )(skewed_extents(ND, PR, skew=0.5))
        t0 = grid_skew.clock.now
        eng_skew.matmat(block, overlap=True)
        t_skew = grid_skew.clock.now - t0
        assert t_skew > t_overlap

        hidden = t_serial - t_overlap
        print(
            f"\ngrid {PR}x{PC}, k={K}, chunks of {MBK}: serial "
            f"{t_serial * 1e3:.3f} ms -> overlapped {t_overlap * 1e3:.3f} ms "
            f"({t_serial / t_overlap:.3f}x, {hidden * 1e6:.1f} us hidden); "
            f"skewed partition {t_skew * 1e3:.3f} ms"
        )

        ARTIFACT.write_text(json.dumps({
            "bench": "overlap_grid",
            "grid": f"{PR}x{PC}",
            "shape": {"nt": NT, "nd": ND, "nm": NM, "k": K, "max_block_k": MBK},
            "modeled_serial_s": t_serial,
            "modeled_overlapped_s": t_overlap,
            "modeled_skewed_s": t_skew,
            "hidden_s": hidden,
            "overlap_speedup": t_serial / t_overlap,
            "skew_penalty": t_skew / t_overlap,
            "bitwise_identical": True,
        }, indent=2) + "\n")
        data = json.loads(ARTIFACT.read_text())
        assert data["overlap_speedup"] > 1.0
        assert data["skew_penalty"] > 1.0

    def test_counters_identical_between_schedules(self):
        # The overlap is pure scheduling: collective counts and payload
        # bytes must not change.
        eng, grid, _, block = make_engine()
        col0, row0 = grid.col_comm(0), grid.row_comm(0)
        stats = {}
        for mode in (False, True):
            col0.reset_op_counts()
            row0.reset_op_counts()
            eng.matmat(block, overlap=mode)
            stats[mode] = (
                col0.op_counts["bcast"],
                row0.op_counts["reduce"],
                col0.op_bytes["bcast"],
                row0.op_bytes["reduce"],
            )
        assert stats[False] == stats[True]
        assert stats[True][0] == K // MBK  # one bcast per chunk
