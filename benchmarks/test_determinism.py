"""Determinism bench: pairwise reduction is bitwise at any partition.

The ISSUE-8 acceptance benchmark: at ``k = 16`` on a 2x2 grid with
``reduction="pairwise"``, the blocked apply must

* return **bitwise-identical** results across at least three distinct
  column partitions — including one with a width-1 part (``min_part=1``,
  which fast-mode rebalancing had to forbid),
* match the single-device pairwise engine bitwise (the grid adds no
  regrouping),
* charge a modeled overhead over the fast reduction of **at most 15%**
  on the blocked apply — the determinism tax the paper's fleet pays for
  run-to-run reproducibility.

Emits ``BENCH_determinism.json`` so CI's smoke step can assert the
bitwise guarantee and the overhead bound at tiny sizes
(``REPRO_BENCH_TINY=1``).
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.comm.grid import ProcessGrid
from repro.comm.netmodel import FRONTIER_NETWORK
from repro.core.matvec import FFTMatvec
from repro.core.parallel import ParallelFFTMatvec
from repro.core.toeplitz import BlockTriangularToeplitz
from repro.gpu.specs import MI300X

TINY = bool(os.environ.get("REPRO_BENCH_TINY"))
NT, ND, NM = (16, 8, 48) if TINY else (32, 32, 192)
PR, PC, K, MBK = 2, 2, 16, 4

ARTIFACT = Path(__file__).parent / "BENCH_determinism.json"


def partitions():
    """Three distinct column partitions, one with a width-1 part."""
    third = NM // 3
    return [
        None,  # the even split
        [(0, third), (third, NM)],
        [(0, 1), (1, NM)],  # width-1: legal only under pairwise
    ]


def make_problem():
    rng = np.random.default_rng(77)
    matrix = BlockTriangularToeplitz.random(NT, ND, NM, rng=rng, decay=0.05)
    block = rng.standard_normal((NT, NM, K))
    return matrix, block


def make_engine(matrix, reduction="pairwise", **kw):
    grid = ProcessGrid(PR, PC, net=FRONTIER_NETWORK)
    return (
        ParallelFFTMatvec(
            matrix, grid, spec=MI300X, max_block_k=MBK,
            reduction=reduction, **kw
        ),
        grid,
    )


class TestDeterminismBench:
    def test_bitwise_across_partitions_with_artifact(self):
        matrix, block = make_problem()
        single = FFTMatvec(matrix, reduction="pairwise").matmat(block)

        outputs, walls = [], []
        for cols in partitions():
            eng, grid = make_engine(matrix, col_ranges=cols)
            t0 = grid.clock.now
            out = eng.matmat(block)
            walls.append(grid.clock.now - t0)
            outputs.append(out)
        for out in outputs:
            assert np.array_equal(out, single)

        # Determinism tax, both schedules on the same even partition:
        # the serial walls compare pure charged work (the tax is always
        # positive there); the overlapped walls are what a caller
        # actually pays — the double-buffered schedule can hide part or
        # all of the slower reduce behind compute.
        def wall(reduction, overlap):
            eng, grid = make_engine(matrix, reduction=reduction)
            t0 = grid.clock.now
            out = eng.matmat(block, overlap=overlap)
            return grid.clock.now - t0, out

        t_fast_serial, out_fast = wall("fast", overlap=False)
        t_pw_serial, _ = wall("pairwise", overlap=False)
        t_fast, _ = wall("fast", overlap=True)
        t_pairwise = walls[0]
        overhead_serial = t_pw_serial / t_fast_serial - 1.0
        overhead = t_pairwise / t_fast - 1.0
        assert 0.0 < overhead_serial <= 0.15
        assert overhead <= 0.15
        # Sanity on the fast path itself: close, but a different grouping.
        rel = np.linalg.norm(out_fast - single) / np.linalg.norm(single)
        assert rel < 1e-12

        print(
            f"\ngrid {PR}x{PC}, k={K}: pairwise bitwise across "
            f"{len(outputs)} partitions (incl. width-1); serial "
            f"{t_fast_serial * 1e3:.3f} -> {t_pw_serial * 1e3:.3f} ms "
            f"({overhead_serial * 100:.2f}% tax), overlapped "
            f"{t_fast * 1e3:.3f} -> {t_pairwise * 1e3:.3f} ms "
            f"({overhead * 100:.2f}%)"
        )

        ARTIFACT.write_text(json.dumps({
            "bench": "determinism",
            "grid": f"{PR}x{PC}",
            "shape": {"nt": NT, "nd": ND, "nm": NM, "k": K, "max_block_k": MBK},
            "partitions_checked": len(outputs),
            "includes_width_one_part": True,
            "bitwise_across_partitions": True,
            "bitwise_vs_single_device": True,
            "modeled_fast_serial_s": t_fast_serial,
            "modeled_pairwise_serial_s": t_pw_serial,
            "overhead_fraction_serial": overhead_serial,
            "modeled_fast_s": t_fast,
            "modeled_pairwise_s": t_pairwise,
            "overhead_fraction": overhead,
            "overhead_bound": 0.15,
        }, indent=2) + "\n")
        data = json.loads(ARTIFACT.read_text())
        assert data["bitwise_across_partitions"]
        assert data["overhead_fraction"] <= data["overhead_bound"]
        assert data["overhead_fraction_serial"] <= data["overhead_bound"]

    def test_fast_mode_regroups_where_pairwise_does_not(self):
        # The control: under the fast reduction, repartitioning is
        # allowed to (and at these sizes does) move bits — the pairwise
        # guarantee is not vacuous.
        matrix, block = make_problem()
        outs = []
        for cols in (None, [(0, NM // 3), (NM // 3, NM)]):
            eng, _ = make_engine(matrix, reduction="fast", col_ranges=cols)
            outs.append(eng.matmat(block))
        rel = np.linalg.norm(outs[0] - outs[1]) / np.linalg.norm(outs[0])
        assert rel < 1e-12  # still correct
        # No bitwise assertion either way for fast mode: that is the point.

    def test_adjoint_bitwise_across_partitions(self):
        matrix, _ = make_problem()
        rng = np.random.default_rng(78)
        D = rng.standard_normal((NT, ND, K))
        single = FFTMatvec(matrix, reduction="pairwise").rmatmat(D)
        for cols in partitions():
            eng, _ = make_engine(matrix, col_ranges=cols)
            assert np.array_equal(eng.rmatmat(D), single)
