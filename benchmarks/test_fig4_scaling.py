"""Figure 4 bench: mixed-precision scaling from 8 to 4,096 GPUs.

Regenerates the weak-scaling speedup/error series: times from the
calibrated scaling model at paper sizes (Nm = 5000p), errors *measured*
by running the real SPMD engine at every GPU count (up to 4,096 actual
in-process ranks with a proportionally reduced local problem).
"""

import numpy as np
import pytest

from repro.comm.partition import (
    communication_aware_partition,
    matvec_comm_cost,
    published_frontier_rows,
)
from repro.figures.fig4 import figure4, measured_scaling_error
from repro.perf.scaling import matvec_time_at_scale, scaling_sweep


class TestFigure4:
    def test_regenerate_figure4(self, benchmark):
        rows, text = benchmark.pedantic(
            lambda: figure4(max_error_ranks=4096), rounds=1, iterations=1
        )
        print("\n" + text)
        speedups = [r.point.speedup for r in rows]
        errors = [r.measured_error for r in rows if r.measured_error is not None]
        # paper facts: speedup > 1 everywhere, declines at scale;
        # measured error stays under 1e-6 and grows past 512 GPUs
        assert all(s > 1.0 for s in speedups)
        assert speedups[0] > speedups[-1]
        assert all(e < 1e-6 for e in errors)
        assert errors[-1] > errors[0]

    def test_spmd_error_measurement_4096_ranks(self, benchmark):
        err = benchmark.pedantic(
            measured_scaling_error, args=(4096,), rounds=1, iterations=1
        )
        print(f"\nmeasured rel. error at 4096 simulated ranks: {err:.3e}")
        assert 1e-9 < err < 1e-6

    def test_partitioning_ablation(self, benchmark):
        # communication-aware partitioning vs naive 1-row grid (paper:
        # >3x at 4,096 GPUs)
        def ablation():
            rows = []
            for p in (512, 1024, 2048, 4096):
                naive = matvec_time_at_scale(p, 1, "ddddd")["total"]
                pub = matvec_time_at_scale(
                    p, published_frontier_rows(p), "ddddd"
                )["total"]
                pr_model, _ = communication_aware_partition(5000 * p, 100, 1000, p)
                model = matvec_time_at_scale(p, pr_model, "ddddd")["total"]
                rows.append((p, naive, pub, model, pr_model))
            return rows

        rows = benchmark(ablation)
        print("\npartitioning ablation (double precision totals):")
        print(f"{'GPUs':>6} {'1-row':>10} {'published':>10} {'model-opt':>10} {'model pr':>9}")
        for p, naive, pub, model, pr in rows:
            print(f"{p:6d} {naive * 1e3:8.2f}ms {pub * 1e3:8.2f}ms "
                  f"{model * 1e3:8.2f}ms {pr:9d}")
        p4096 = rows[-1]
        assert p4096[1] > 3 * p4096[2]  # published grid >3x better
        assert p4096[3] <= p4096[2] * 1.0001  # model-opt at least as good

    def test_20billion_parameter_matvec(self, benchmark):
        # paper: >20B parameters in ~0.11 s on 4,096 GPUs
        t = benchmark(
            lambda: matvec_time_at_scale(4096, 16, "dssds")["total"]
        )
        params = 5000 * 4096 * 1000
        print(f"\n{params / 1e9:.1f}B-parameter matvec on 4096 GPUs: "
              f"{t * 1e3:.1f} ms modeled (paper: ~110 ms)")
        assert 5e-3 < t < 0.5

    def test_comm_precision_ablation(self, benchmark):
        # dssds halves the Phase-5 reduce volume: matters little because
        # the communication is latency-bound (the paper's observation)
        def ablation():
            out = {}
            for cfg in ("dssdd", "dssds"):
                out[cfg] = matvec_time_at_scale(4096, 16, cfg)["total"]
            return out

        res = benchmark(ablation)
        print(f"\ncomm-precision ablation at 4096 GPUs: {res}")
        assert abs(res["dssdd"] - res["dssds"]) / res["dssdd"] < 0.10
