"""Figure 3 bench: Pareto-front analysis of the 32 precision configs.

Regenerates the double-vs-optimal-mixed comparison (times modeled at
paper scale, errors measured numerically) and times the full 32-config
numeric sweep.
"""

import numpy as np
import pytest

from repro.core.matvec import FFTMatvec
from repro.core.pareto import optimal_config, pareto_front, pareto_table, sweep_configs
from repro.core.toeplitz import BlockTriangularToeplitz
from repro.figures.fig3 import PAPER_OPTIMAL_ADJ, PAPER_OPTIMAL_F, figure3
from repro.gpu.device import SimulatedDevice
from repro.gpu.specs import MI300X
from repro.perf.phase_model import modeled_timing

TOL = 1e-7


class TestFigure3:
    def test_regenerate_figure3(self, benchmark):
        entries, text = benchmark(figure3)
        print("\n" + text)
        for e in entries:
            pct = (e.speedup - 1) * 100
            if "MI355X" in e.gpu:
                assert 20 < pct < 60  # paper: ~40% on CDNA4
            else:
                assert 65 < pct < 100  # paper: 70-95% on CDNA2/3
            assert e.measured_error < TOL

    def test_full_32_config_sweep(self, benchmark, rng):
        matrix = BlockTriangularToeplitz.random(64, 8, 96, rng=rng, decay=0.05)
        engine = FFTMatvec(matrix, device=SimulatedDevice(MI300X))
        time_model = lambda c: modeled_timing(5000, 100, 1000, c, MI300X).total

        points = benchmark(sweep_configs, engine, time_model=time_model)
        print("\n" + pareto_table(points, tolerance=TOL))
        best = optimal_config(points, TOL)
        print(f"\nselected optimum: {best.config} (paper: {PAPER_OPTIMAL_F})")
        assert str(best.config) == PAPER_OPTIMAL_F

    def test_adjoint_sweep(self, benchmark, rng):
        matrix = BlockTriangularToeplitz.random(64, 8, 96, rng=rng, decay=0.05)
        engine = FFTMatvec(matrix, device=SimulatedDevice(MI300X))
        time_model = lambda c: modeled_timing(
            5000, 100, 1000, c, MI300X, adjoint=True
        ).total
        points = benchmark(
            sweep_configs, engine, adjoint=True, time_model=time_model
        )
        best = optimal_config(points, TOL)
        print(f"\nF* optimum: {best.config} (paper: {PAPER_OPTIMAL_ADJ})")
        assert str(best.config) == PAPER_OPTIMAL_ADJ

    def test_front_structure(self, benchmark, rng):
        # the Pareto front must run from all-double (exact, slow) to
        # heavily-single (fast, less accurate)
        matrix = BlockTriangularToeplitz.random(48, 6, 64, rng=rng, decay=0.05)
        engine = FFTMatvec(matrix, device=SimulatedDevice(MI300X))
        time_model = lambda c: modeled_timing(5000, 100, 1000, c, MI300X).total
        points = sweep_configs(engine, time_model=time_model)
        front = benchmark(pareto_front, points)
        assert any(p.config.is_all_double for p in front)
        assert front[0].time < front[-1].time
        assert front[0].error > front[-1].error

    def test_mantissa_fill_matters_ablation(self, benchmark, rng):
        # Section 4.2.1: without the mantissa-filled init, single-
        # precision memory phases commit zero error and bias the analysis
        matrix = BlockTriangularToeplitz.random(32, 4, 32, rng=rng)
        engine = FFTMatvec(matrix, device=SimulatedDevice(MI300X))

        def measure_pad_error(fill):
            m = rng.standard_normal((32, 32))
            if fill:
                from repro.util.dtypes import fill_low_mantissa

                m = fill_low_mantissa(m)
            else:
                m = m.astype(np.float32).astype(np.float64)
            return engine.relative_error("sdddd", m)

        err_filled = benchmark(measure_pad_error, True)
        err_plain = measure_pad_error(False)
        print(f"\npad-in-single error: filled-init {err_filled:.2e}, "
              f"float32-representable init {err_plain:.2e}")
        assert err_plain == 0.0 and err_filled > 0.0
