"""Silent-data-corruption bench: detection campaign and modeled overhead.

The ISSUE-10 acceptance benchmark, four claims in one artifact:

* a seeded **bit-flip campaign** over device buffers and collective
  payloads is detected at **100%** — every injected exponent flip
  surfaces as a typed ``SilentCorruption`` and is repaired by
  recomputing only the corrupted chunk,
* a clean run with every check armed raises **zero** detections
  (no false positives) and is **bitwise-identical** to the unchecked
  pairwise run — verification only reads,
* every repaired run is **bitwise-identical** to the clean result with
  **zero grid rebuilds** (the flip lives in a transient buffer, so the
  chunk recompute fully absorbs it),
* the modeled checksum tax (ABFT column checksums + Parseval energy,
  :func:`~repro.perf.phase_model.checksum_overhead_model`) stays under
  **15%** of the blocked apply at the paper's per-GPU extents.

Emits ``BENCH_sdc.json`` so CI's chaos smoke step can assert the
detection rate and the overhead bound at tiny sizes
(``REPRO_BENCH_TINY=1``).
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.comm.fault import CorruptionSchedule
from repro.comm.grid import ProcessGrid
from repro.core.elastic import ElasticEngine
from repro.core.parallel import ParallelFFTMatvec
from repro.core.toeplitz import BlockTriangularToeplitz
from repro.perf.scaling import scaling_sweep

TINY = bool(os.environ.get("REPRO_BENCH_TINY"))
NT, ND, NM = (16, 8, 48) if TINY else (32, 16, 192)
K, MBK = 16, 2  # 8 chunks: recomputing one is 12.5% of the work
RANKS = 4
N_TRIALS = 8 if TINY else 16

# The ISSUE bound: modeled ABFT + Parseval cost on the blocked apply at
# the paper's per-GPU extents (5000 columns/GCD, Figure-4 scale).  The
# bench-execution shape above is far smaller than a production panel,
# so its modeled fraction is reported but not bounded.
OVERHEAD_BOUND = 0.15

ARTIFACT = Path(__file__).parent / "BENCH_sdc.json"


def make_problem():
    rng = np.random.default_rng(909)
    matrix = BlockTriangularToeplitz.random(NT, ND, NM, rng=rng, decay=0.05)
    block = rng.standard_normal((NT, NM, K))
    return matrix, block


class TestSDCBench:
    def test_detection_campaign_with_artifact(self):
        matrix, block = make_problem()

        # Ground truth: the plain 2x2 pairwise grid, no checks at all.
        ref = ParallelFFTMatvec(
            matrix, ProcessGrid(2, 2), reduction="pairwise"
        ).matmat(block)

        t0 = time.perf_counter()
        plain = ElasticEngine(matrix, RANKS, reduction="pairwise")
        out_plain = plain.matmat(block, max_block_k=MBK)
        t_plain = time.perf_counter() - t0
        assert np.array_equal(out_plain, ref)

        # Armed clean run: the no-false-positive claim.  The probe
        # schedule injects nothing but counts every corruptible event,
        # which doubles as the campaign's event horizon.
        probe = CorruptionSchedule()
        t0 = time.perf_counter()
        armed = ElasticEngine(
            matrix, RANKS, reduction="pairwise", corruptions=probe
        )
        out_armed = armed.matmat(block, max_block_k=MBK)
        t_armed = time.perf_counter() - t0
        clean_bitwise = bool(np.array_equal(out_armed, ref))
        assert clean_bitwise, "armed clean run not bitwise"
        false_positives = armed.report.corruptions
        assert false_positives == 0
        horizon = probe.calls
        assert horizon > 0

        # The campaign: one seeded exponent flip per trial, anywhere in
        # the event stream (FFT/SBGEMM/IFFT device buffers, bcast and
        # reduce payloads), on any rank.
        detected = 0
        injected = 0
        recompute_bitwise = True
        chunks_recomputed = 0
        rebuilds = 0
        t0 = time.perf_counter()
        for trial in range(N_TRIALS):
            sched = CorruptionSchedule.seeded(
                1000 + trial, RANKS, n_flips=1, horizon=horizon
            )
            eng = ElasticEngine(
                matrix, RANKS, reduction="pairwise", corruptions=sched
            )
            out = eng.matmat(block, max_block_k=MBK)
            injected += len(sched.injected)
            if eng.report.corruptions >= 1:
                detected += 1
            recompute_bitwise &= bool(np.array_equal(out, ref))
            chunks_recomputed += eng.report.chunks_recomputed
            rebuilds += eng.report.rebuilds
        t_campaign = time.perf_counter() - t0

        assert injected == N_TRIALS, "a trial failed to inject its flip"
        detection_rate = detected / N_TRIALS
        assert detection_rate == 1.0, f"missed {N_TRIALS - detected} flips"
        assert recompute_bitwise, "a repaired run was not bitwise"
        assert chunks_recomputed >= N_TRIALS
        assert rebuilds == 0, "SDC repair must not rebuild the grid"

        # Modeled checksum tax at the paper's Figure-4 extents (the
        # ISSUE bound) and, informationally, at the bench shape.
        (point,) = scaling_sweep(gpu_counts=(512,), checksums=True)
        overhead_paper = point.checksum_overhead
        coverage_paper = point.sdc_coverage
        assert 0.0 < overhead_paper <= OVERHEAD_BOUND

        print(
            f"\nsdc campaign: {detected}/{N_TRIALS} flips detected over a "
            f"{horizon}-event horizon ({chunks_recomputed} chunk "
            f"recomputes, {rebuilds} rebuilds, bitwise={recompute_bitwise}); "
            f"armed clean apply {t_plain * 1e3:.1f} -> {t_armed * 1e3:.1f} "
            f"ms; modeled paper-scale checksum tax "
            f"{overhead_paper * 100:.2f}% covering "
            f"{coverage_paper * 100:.1f}% of the apply"
        )

        ARTIFACT.write_text(json.dumps({
            "bench": "sdc",
            "tiny": TINY,
            "shape": {"nt": NT, "nd": ND, "nm": NM, "k": K, "max_block_k": MBK},
            "ranks": RANKS,
            "trials": N_TRIALS,
            "event_horizon": horizon,
            "flips_injected": injected,
            "flips_detected": detected,
            "detection_rate": detection_rate,
            "false_positives": false_positives,
            "clean_bitwise_identical": clean_bitwise,
            "recompute_bitwise_identical": recompute_bitwise,
            "chunks_recomputed": chunks_recomputed,
            "rebuilds": rebuilds,
            "wall_plain_s": t_plain,
            "wall_armed_clean_s": t_armed,
            "wall_campaign_s": t_campaign,
            "checksum_overhead_fraction": overhead_paper,
            "checksum_overhead_bound": OVERHEAD_BOUND,
            "coverage": coverage_paper,
            "paper_scale_gpus": point.p,
        }, indent=2) + "\n")
        data = json.loads(ARTIFACT.read_text())
        assert data["detection_rate"] == 1.0
        assert data["false_positives"] == 0
        assert data["clean_bitwise_identical"]
        assert data["recompute_bitwise_identical"]
        assert (
            data["checksum_overhead_fraction"]
            <= data["checksum_overhead_bound"]
        )
