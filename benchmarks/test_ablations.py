"""Design-choice ablation benches (the ablations DESIGN.md calls out).

Not paper figures, but quantified justifications for the engine's
design decisions: fused casts, tree collectives, the dispatcher's
transition points, and grid-layout placement.
"""

import numpy as np
import pytest

from repro.blas.dispatch import SBGEMVDispatcher
from repro.blas.gemv_kernels import OptimizedSBGEMV, RocblasSBGEMV
from repro.blas.types import BlasDatatype, GemvProblem, Operation
from repro.comm.collectives import ring_allreduce_time, tree_collective_time
from repro.comm.netmodel import FRONTIER_NETWORK
from repro.gpu.specs import MI250X_GCD, MI300X
from repro.perf.ablations import cast_boundaries, fused_vs_unfused
from repro.util.tables import render_table


class TestFusedCasts:
    def test_fused_casts_ablation(self, benchmark):
        # Section 3.2: casts fuse with adjacent memory ops "to reduce
        # kernel launch latencies"
        def ablation():
            rows = []
            for cfg in ("dssdd", "dssds", "sssss", "dsdsd"):
                fused, unfused, ncasts = fused_vs_unfused(
                    5000, 100, 1000, cfg, MI250X_GCD
                )
                rows.append((cfg, ncasts, fused, unfused, unfused / fused))
            return rows

        rows = benchmark(ablation)
        print("\n" + render_table(
            ["config", "casts", "fused (ms)", "unfused (ms)", "ratio"],
            [[c, n, f"{f * 1e3:.3f}", f"{u * 1e3:.3f}", f"{r:.3f}"]
             for c, n, f, u, r in rows],
            title="Fused vs standalone cast kernels (MI250X, paper size)",
        ))
        for _, ncasts, fused, unfused, _ in rows:
            assert unfused > fused
            assert ncasts >= 2

    def test_cast_boundaries_structure(self, benchmark):
        bounds = benchmark(cast_boundaries, "dssdd")
        # dssdd: double->single entering fft, single->double entering ifft
        assert ("pad", "fft") in bounds and ("sbgemv", "ifft") in bounds


class TestCollectiveAlgorithm:
    def test_tree_vs_ring_ablation(self, benchmark):
        # FFTMatvec's reductions are latency-bound: trees win at scale
        def ablation():
            rows = []
            for p in (64, 512, 4096):
                tree = tree_collective_time(p, 8e5, FRONTIER_NETWORK)
                ring = ring_allreduce_time(p, 8e5, FRONTIER_NETWORK)
                rows.append((p, tree, ring, ring / tree))
            return rows

        rows = benchmark(ablation)
        print("\ntree vs ring for the 0.8 MB Phase-5 reduction:")
        for p, tree, ring, ratio in rows:
            print(f"  p={p:5d}: tree {tree * 1e3:9.3f} ms, "
                  f"ring {ring * 1e3:9.3f} ms ({ratio:.0f}x)")
        assert all(r[1] < r[2] for r in rows)


class TestDispatcherTransitions:
    def test_transition_points_are_load_bearing(self, benchmark):
        # forcing either kernel everywhere must never beat the dispatcher
        disp = SBGEMVDispatcher(MI300X)
        shapes = [(64, 4096), (128, 4096), (512, 512), (2048, 2048), (4096, 8192)]

        def ablation():
            worst_roc, worst_opt = 1.0, 1.0
            for m, n in shapes:
                p = GemvProblem(m=m, n=n, batch=100,
                                datatype=BlasDatatype.S, operation=Operation.T)
                t_disp = disp.select(p).modeled_time(p, MI300X)
                t_roc = RocblasSBGEMV().modeled_time(p, MI300X)
                t_opt = OptimizedSBGEMV().modeled_time(p, MI300X)
                worst_roc = max(worst_roc, t_roc / t_disp)
                worst_opt = max(worst_opt, t_opt / t_disp)
            return worst_roc, worst_opt

        worst_roc, worst_opt = benchmark(ablation)
        print(f"\nforcing rocBLAS everywhere: up to {worst_roc:.2f}x slower; "
              f"forcing optimized everywhere: up to {worst_opt:.2f}x slower")
        assert worst_roc > 1.5  # the optimized kernel matters
