"""Benchmark-suite configuration.

Every ``test_fig*`` bench regenerates one paper table/figure: it prints
the figure's rows (model/measured vs paper) and uses pytest-benchmark to
time the *numeric* workload that underlies it, so `pytest benchmarks/
--benchmark-only` both exercises the real computation and emits the
reproduction tables.
"""

import numpy as np
import pytest


@pytest.fixture
def rng():
    return np.random.default_rng(2024)
