"""Per-backend engine bench: simulated + real wall-clock per backend.

Runs the same :class:`FFTMatvec` workload (one matvec and one ``k = 8``
blocked matmat) on every *available* backend — numpy always, torch and
CuPy when their probes pass — and emits ``BENCH_backend.json`` with, per
backend:

* ``simulated_matvec_s`` / ``simulated_matmat_s`` — the modeled device
  time from the simulated clock.  Backend choice must not move these:
  kernels charge time from problem sizes, never array contents, so the
  bench asserts every backend's simulated columns match numpy's exactly.
* ``wall_matvec_s`` / ``wall_matmat_s`` — real host wall-clock
  (``time.perf_counter`` around the apply), which *does* vary by
  backend: that is the number a CuPy/torch run is trying to improve.
* ``rel_err_*`` — parity against the numpy reference results.

``REPRO_BENCH_TINY=1`` shrinks the problem for the CI smoke, which
asserts the schema and the numpy row only.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.backend import available_backends, resolve_backend
from repro.core.matvec import FFTMatvec
from repro.core.toeplitz import BlockTriangularToeplitz
from repro.gpu.device import SimulatedDevice
from repro.gpu.specs import MI300X

TINY = bool(os.environ.get("REPRO_BENCH_TINY"))
NT, ND, NM = (16, 4, 24) if TINY else (128, 12, 256)
K = 8
REPS = 2 if TINY else 5

ARTIFACT = Path(__file__).parent / "BENCH_backend.json"


def _build(backend_name: str) -> FFTMatvec:
    rng = np.random.default_rng(42)
    matrix = BlockTriangularToeplitz.random(NT, ND, NM, rng=rng, decay=0.05)
    return FFTMatvec(
        matrix,
        device=SimulatedDevice(MI300X),
        workspace=True,
        backend=resolve_backend(backend_name),
    )


def _rel_err(a, b) -> float:
    return float(np.linalg.norm(np.asarray(a) - b) / np.linalg.norm(b))


def _bench_backend(name: str, m: np.ndarray, M: np.ndarray) -> dict:
    engine = _build(name)
    be = engine.backend

    # Warmup (also the parity measurement) outside the timed loop.
    d_vec = be.from_device(engine.matvec(m))
    sim_matvec = engine.last_timing.total
    d_blk = be.from_device(engine.matmat(M))
    sim_matmat = engine.last_timing.total

    t0 = time.perf_counter()
    for _ in range(REPS):
        engine.matvec(m)
    be.synchronize()
    wall_matvec = (time.perf_counter() - t0) / REPS

    t0 = time.perf_counter()
    for _ in range(REPS):
        engine.matmat(M)
    be.synchronize()
    wall_matmat = (time.perf_counter() - t0) / REPS

    return {
        "backend": name,
        "is_device": bool(be.is_device),
        "simulated_matvec_s": sim_matvec,
        "simulated_matmat_s": sim_matmat,
        "wall_matvec_s": wall_matvec,
        "wall_matmat_s": wall_matmat,
        "_d_vec": d_vec,
        "_d_blk": d_blk,
    }


class TestBackendBench:
    def test_backends_with_artifact(self):
        rng = np.random.default_rng(7)
        m = rng.standard_normal((NT, NM))
        M = rng.standard_normal((NT, NM, K))

        probes = available_backends()
        rows = [_bench_backend("numpy", m, M)]
        for name, (ok, _reason) in probes.items():
            if name != "numpy" and ok:
                rows.append(_bench_backend(name, m, M))

        ref_vec, ref_blk = rows[0]["_d_vec"], rows[0]["_d_blk"]
        for row in rows:
            row["rel_err_matvec"] = _rel_err(row.pop("_d_vec"), ref_vec)
            row["rel_err_matmat"] = _rel_err(row.pop("_d_blk"), ref_blk)

        for row in rows:
            print(
                f"\n{row['backend']:>6}: simulated matvec "
                f"{row['simulated_matvec_s'] * 1e3:.3f} ms / wall "
                f"{row['wall_matvec_s'] * 1e3:.3f} ms; matmat simulated "
                f"{row['simulated_matmat_s'] * 1e3:.3f} ms / wall "
                f"{row['wall_matmat_s'] * 1e3:.3f} ms "
                f"(rel err {row['rel_err_matmat']:.2e})"
            )

        ARTIFACT.write_text(json.dumps({
            "bench": "backend",
            "tiny": TINY,
            "shape": {"nt": NT, "nd": ND, "nm": NM, "k": K},
            "reps": REPS,
            "probes": {n: {"available": ok, "reason": r}
                       for n, (ok, r) in probes.items()},
            "backends": rows,
        }, indent=2) + "\n")

        data = json.loads(ARTIFACT.read_text())
        names = [r["backend"] for r in data["backends"]]
        assert names[0] == "numpy"
        sim_ref = (rows[0]["simulated_matvec_s"], rows[0]["simulated_matmat_s"])
        for row in data["backends"]:
            # Simulated time is backend-invariant; parity is tolerance-
            # tiered (double everywhere -> a few ulps across FFT libs).
            assert row["simulated_matvec_s"] == sim_ref[0]
            assert row["simulated_matmat_s"] == sim_ref[1]
            assert row["rel_err_matvec"] < 1e-10
            assert row["rel_err_matmat"] < 1e-10
            assert row["wall_matvec_s"] > 0 and row["wall_matmat_s"] > 0
