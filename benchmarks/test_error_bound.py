"""Eq. (6) bench: the error bound vs measured errors, per phase.

Regenerates the error-analysis picture of Section 3.2.1: for every
single-phase-lowered configuration, the measured relative error and the
per-phase bound contributions, confirming the SBGEMV term dominates.
"""

import numpy as np
import pytest

from repro.core.error_model import phase_error_terms, relative_error_bound
from repro.core.matvec import FFTMatvec
from repro.core.precision import PrecisionConfig
from repro.core.toeplitz import BlockTriangularToeplitz
from repro.util.dtypes import fill_low_mantissa
from repro.util.tables import render_table


class TestErrorBound:
    def test_bound_vs_measured_all_configs(self, benchmark, rng):
        nt, nd, nm = 64, 4, 48
        matrix = BlockTriangularToeplitz.random(nt, nd, nm, rng=rng, decay=0.05)
        engine = FFTMatvec(matrix)
        kappa = matrix.condition_number_hat()
        m = fill_low_mantissa(rng.standard_normal((nt, nm)))

        def sweep():
            ref = engine.matvec(m, config="ddddd")
            rows = []
            for cfg in PrecisionConfig.all_configs():
                out = engine.matvec(m, config=cfg)
                measured = float(
                    np.linalg.norm(out - ref) / np.linalg.norm(ref)
                )
                bound = relative_error_bound(cfg, nt=nt, nm=nm, nd=nd, kappa=kappa)
                rows.append((str(cfg), measured, bound))
            return rows

        rows = benchmark(sweep)
        table = render_table(
            ["config", "measured", "bound", "ok"],
            [
                [c, f"{m_:.2e}", f"{b:.2e}", "y" if m_ <= b else "VIOLATED"]
                for c, m_, b in rows
            ],
            title=f"Eq. (6) bound vs measured (kappa={kappa:.1f})",
        )
        print("\n" + table)
        assert all(m_ <= b for _, m_, b in rows)

    def test_sbgemv_term_dominates(self, benchmark):
        terms = benchmark(
            phase_error_terms, "sssss", 1000, 5000, 100
        )
        print("\nper-phase bound contributions (paper size, sssss): "
              + ", ".join(f"{k}={v:.2e}" for k, v in terms.items()))
        assert terms["sbgemv"] == max(terms.values())

    def test_error_vs_grid_shape(self, benchmark):
        # the Figure-4 discussion: larger pr grows n_m (more SBGEMV
        # error), smaller pc shrinks the reduction term
        def shape_study():
            out = []
            for pr in (1, 8, 16):
                terms = phase_error_terms(
                    "dssds", 1000, 5000 * 4096, 100, pr=pr, pc=4096 // pr
                )
                out.append((pr, terms["sbgemv"], terms["unpad"]))
            return out

        rows = benchmark(shape_study)
        print("\ngrid-shape error terms at 4096 GPUs:")
        for pr, sb, up in rows:
            print(f"  pr={pr:2d}: sbgemv={sb:.2e} reduce={up:.2e}")
        assert rows[-1][1] > rows[0][1]  # sbgemv term grows with pr
        assert rows[-1][2] < rows[0][2]  # reduce term shrinks with pc
