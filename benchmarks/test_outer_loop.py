"""Remark-1 benches: the "outer-loop" workloads that motivate the paper.

A single matvec takes milliseconds; the payoff of mixed precision is in
workloads that take millions of them — dense data-space Hessian
assembly, optimal sensor placement, posterior UQ.  These benches run
those workloads end to end (real numerics at laptop scale) and model the
time the mixed configuration saves at paper scale.
"""

import numpy as np
import pytest

from repro.core.matvec import FFTMatvec
from repro.core.pipeline import HostModel, OverlappedMatvecRunner
from repro.core.toeplitz import BlockTriangularToeplitz
from repro.gpu.device import SimulatedDevice
from repro.gpu.specs import MI250X_GCD, MI300X
from repro.inverse import (
    GaussianPrior,
    Grid1D,
    HeatEquation1D,
    LinearBayesianProblem,
    LowRankPosterior,
    ObservationOperator,
    P2OMap,
)
from repro.inverse.refinement import solve_map_with_refinement
from repro.perf.memory_model import min_gpus_for_problem
from repro.perf.phase_model import modeled_timing


@pytest.fixture(scope="module")
def bayes_problem():
    grid = Grid1D(24)
    system = HeatEquation1D(grid, dt=0.04, kappa=0.2)
    obs = ObservationOperator(grid.n, [4, 12, 19])
    p2o = P2OMap(system, obs, nt=16)
    prior = GaussianPrior(24, 16, gamma=5e-3, delta=4.0)
    return LinearBayesianProblem(p2o, prior, noise_std=0.05)


class TestHessianAssembly:
    def test_dense_hessian_with_overlap(self, benchmark, rng):
        # Section 4.2.2: dense-operator assembly overlaps matvecs with
        # host vector generation/saving
        matrix = BlockTriangularToeplitz.random(32, 4, 64, rng=rng, decay=0.05)
        engine = FFTMatvec(matrix, device=SimulatedDevice(MI250X_GCD))
        runner = OverlappedMatvecRunner(engine, HostModel(20e-6, 50e-6))

        def assemble():
            return runner.assemble_columns(list(range(32)), adjoint=True)

        cols, report = benchmark(assemble)
        print(f"\n{report.n_vectors} adjoint matvecs: device "
              f"{report.device_time * 1e3:.2f} ms, host {report.host_time * 1e3:.2f} ms;"
              f" serial {report.serial_total * 1e3:.2f} ms -> overlapped "
              f"{report.overlapped_total * 1e3:.2f} ms "
              f"({report.overlap_speedup:.2f}x)")
        assert report.overlap_speedup > 1.0
        assert cols.shape == (32 * 64, 32)

    def test_remark1_scale_projection(self, benchmark):
        # the paper's O(1e5) matvecs for a sensor-placement Hessian:
        # project the mixed-precision saving at paper scale
        def project():
            n_matvecs = 2 * 100 * 1000  # Nd * Nt actions of F and F*
            t_double = modeled_timing(5000, 100, 1000, "ddddd", MI250X_GCD).total
            t_mixed = modeled_timing(5000, 100, 1000, "dssdd", MI250X_GCD).total
            return n_matvecs * t_double, n_matvecs * t_mixed

        t_d, t_m = benchmark(project)
        print(f"\nre-assembling one dense data-space Hessian "
              f"(2*Nd*Nt = 200k matvecs): {t_d / 60:.1f} min double -> "
              f"{t_m / 60:.1f} min mixed ({t_d / t_m:.2f}x)")
        assert t_d / t_m > 1.5  # the Remark-1 payoff


class TestPosteriorUQ:
    def test_lowrank_posterior(self, benchmark, bayes_problem):
        post = benchmark.pedantic(
            LowRankPosterior.compute,
            args=(bayes_problem, 16),
            kwargs={"rng": np.random.default_rng(0)},
            rounds=1,
            iterations=1,
        )
        print(f"\nrank-16 posterior: {post.hessian_actions} Hessian actions, "
              f"EIG {post.information_gain():.2f} nats, "
              f"lam_1={post.eigenvalues[0]:.2f}")
        assert post.information_gain() > 0
        var = post.pointwise_variance()
        assert np.all(var > 0)


class TestIterativeRefinement:
    def test_refinement_vs_double_cg(self, benchmark, bayes_problem, rng):
        d = rng.standard_normal((16, 3))

        def solve():
            return solve_map_with_refinement(
                bayes_problem, d, inner_config="dssdd", tol=1e-10
            )

        res = benchmark(solve)
        print(f"\nrefinement: {res.outer_iterations} outer, "
              f"{res.inner_iterations_total} mixed-precision inner iters, "
              f"final residual {res.final_relative_residual:.1e}")
        assert res.converged


class TestCapacityPlanning:
    def test_billion_parameter_sizing(self, benchmark):
        # Section 4.2.2's capacity discussion across GPU generations
        def size():
            out = {}
            for spec in (MI250X_GCD, MI300X):
                out[spec.name] = min_gpus_for_problem(
                    1_000_000, 600, 1000, spec
                )
            return out

        counts = benchmark(size)
        print(f"\nGPUs needed for the 1B-parameter problem of [21]: {counts}")
        assert counts["MI300X"] < counts["MI250X (Single GCD)"]
