"""Workspace-arena hot path bench: allocation-free repeated applies.

The acceptance benchmark for the arena: on repeated ``k = 16`` blocked
applies the workspace-backed engine must

* be **>= 1.3x** faster in wall-clock than the allocate-per-call
  reference at full size (the reference's per-phase buffers sit above
  glibc's adaptive mmap-threshold cap, so every apply pays fresh
  page-faulted maps — exactly the churn the production code avoids with
  persistent device buffers),
* allocate **zero** new arena buffers after the one-apply warmup
  (steady state), with the caller-supplied ``out=`` keeping even the
  result buffer reused,
* return **bitwise-identical** results to the reference on both the
  single-device engine and a 2x2 grid.

It emits ``BENCH_workspace.json`` next to this file.  CI's tiny smoke
(``REPRO_BENCH_TINY=1``) asserts the schema, the bitwise identity and
zero steady-state growth only — tiny buffers sit below the mmap
threshold where a warm heap hides the allocation cost, so the wall
ratio is only enforced at full size.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.comm.grid import ProcessGrid
from repro.comm.netmodel import FRONTIER_NETWORK
from repro.core.matvec import FFTMatvec
from repro.core.parallel import ParallelFFTMatvec
from repro.core.toeplitz import BlockTriangularToeplitz
from repro.gpu.specs import MI300X

TINY = bool(os.environ.get("REPRO_BENCH_TINY"))
# Full size: the pad/reorder buffers are ~50 MB — above glibc's adaptive
# mmap-threshold cap (32 MB), so the reference path's allocation churn
# is physical, not a cold-heap artifact.
NT, ND, NM = (16, 8, 48) if TINY else (256, 24, 768)
K = 16
APPLIES = 3 if TINY else 8
REPS = 1 if TINY else 3

ARTIFACT = Path(__file__).parent / "BENCH_workspace.json"


def build(workspace: bool) -> FFTMatvec:
    rng = np.random.default_rng(42)
    matrix = BlockTriangularToeplitz.random(NT, ND, NM, rng=rng, decay=0.05)
    return FFTMatvec(matrix, workspace=workspace)


def time_applies(engine: FFTMatvec, B: np.ndarray, out=None) -> float:
    """Best-of-REPS mean seconds per blocked apply (post-warmup)."""
    best = float("inf")
    for _ in range(REPS):
        t0 = time.perf_counter()
        for _ in range(APPLIES):
            if out is None:
                engine.matmat(B)
            else:
                engine.matmat(B, out=out)
        best = min(best, (time.perf_counter() - t0) / APPLIES)
    return best


class TestWorkspaceBench:
    def test_arena_vs_reference_with_artifact(self):
        rng = np.random.default_rng(7)
        B = rng.standard_normal((NT, NM, K))

        ref = build(workspace=False)
        arena = build(workspace=True)

        # Bitwise identity (also the warmup apply for both engines).
        ref_out = ref.matmat(B)
        arena_first = arena.matmat(B)
        bitwise = bool(np.array_equal(ref_out, arena_first))
        assert bitwise

        # Steady state: zero arena growth across the timed applies, and
        # out= keeps even the result buffer out of the allocator.
        frozen_allocs = arena.workspace.alloc_count
        out = np.empty((NT, ND, K))
        t_ref = time_applies(ref, B)
        t_arena = time_applies(arena, B, out=out)
        steady_allocs = arena.workspace.alloc_count - frozen_allocs
        assert steady_allocs == 0
        assert np.array_equal(out, ref_out)

        speedup = t_ref / t_arena

        # Grid rider: same contract on a 2x2 grid (bitwise + zero
        # growth); the wall bar is carried by the single-device numbers.
        g_ref, g_arena = (
            ParallelFFTMatvec(
                BlockTriangularToeplitz.random(
                    NT, ND, NM, rng=np.random.default_rng(42), decay=0.05
                ),
                ProcessGrid(2, 2, net=FRONTIER_NETWORK),
                spec=MI300X,
                max_block_k=K // 2,
                workspace=ws,
            )
            for ws in (False, True)
        )
        grid_ref_out = g_ref.matmat(B)
        grid_bitwise = bool(np.array_equal(grid_ref_out, g_arena.matmat(B)))
        assert grid_bitwise
        grid_frozen = g_arena.workspace.alloc_count + sum(
            e.workspace.alloc_count for e in g_arena.engines.values()
        )
        g_out = np.empty((NT, ND, K))
        for _ in range(3):
            g_arena.matmat(B, out=g_out)
        grid_steady = (
            g_arena.workspace.alloc_count
            + sum(e.workspace.alloc_count for e in g_arena.engines.values())
            - grid_frozen
        )
        assert grid_steady == 0
        assert np.array_equal(g_out, grid_ref_out)
        grid_report = g_arena.workspace_report()

        print(
            f"\nk={K} blocked applies at ({NT}, {ND}, {NM}): reference "
            f"{t_ref * 1e3:.1f} ms/apply -> arena {t_arena * 1e3:.1f} ms/apply "
            f"({speedup:.3f}x), {steady_allocs} steady-state arena allocations; "
            f"arena {arena.workspace.nbytes / 1e6:.1f} MB in "
            f"{arena.workspace.buffer_count} buffers"
        )

        ARTIFACT.write_text(json.dumps({
            "bench": "workspace",
            "tiny": TINY,
            "shape": {"nt": NT, "nd": ND, "nm": NM, "k": K},
            "applies": APPLIES,
            "wall_reference_s": t_ref,
            "wall_arena_s": t_arena,
            "speedup": speedup,
            "steady_state_allocations": steady_allocs,
            "bitwise_identical": bitwise,
            "arena": {
                "buffers": arena.workspace.buffer_count,
                "nbytes": arena.workspace.nbytes,
                "alloc_count": arena.workspace.alloc_count,
                "cast_noops_counted": arena.cast_noop_count,
            },
            "grid": {
                "grid": "2x2",
                "bitwise_identical": grid_bitwise,
                "steady_state_allocations": grid_steady,
                "grid_arena_bytes": grid_report["grid_arena_bytes"],
                "total_arena_bytes": grid_report["total_arena_bytes"],
            },
        }, indent=2) + "\n")

        data = json.loads(ARTIFACT.read_text())
        assert data["bitwise_identical"]
        assert data["steady_state_allocations"] == 0
        assert data["grid"]["bitwise_identical"]
        if not TINY:
            # The acceptance bar: >= 1.3x wall-clock on repeated k=16
            # blocked applies (tiny sizes only exercise the plumbing).
            assert data["speedup"] >= 1.3, data

    def test_device_footprint_registered(self):
        # The modeled device peak is exactly the arena's registered
        # footprint — peak bytes as a first-class report field.
        from repro.gpu.device import SimulatedDevice

        dev = SimulatedDevice(MI300X)
        rng = np.random.default_rng(42)
        matrix = BlockTriangularToeplitz.random(
            NT // 2 or 8, ND, NM // 4 or 8, rng=rng, decay=0.05
        )
        eng = FFTMatvec(matrix, device=dev, workspace=True)
        eng.matmat(rng.standard_normal((matrix.nt, matrix.nm, K)))
        assert dev.allocator.peak == eng.workspace.registered_bytes > 0
