"""Micro-benches of the substrates: FFT plans, reorders, collectives,
hipify throughput — the pieces every figure builds on."""

import numpy as np
import pytest

from repro.comm.collectives import tree_reduce_arrays
from repro.core.phases import pad_to_soti, unpad_from_soti
from repro.core.reorder import soti_to_tosi
from repro.fft.plan import FFTPlan, FFTType
from repro.fft.radix import fft_auto, fft_radix2
from repro.hip.hipify import hipify_perl
from repro.util.dtypes import Precision


class TestFFTMicro:
    @pytest.mark.parametrize("prec", ["d", "s"])
    def test_batched_rfft(self, benchmark, rng, prec):
        t = FFTType.D2Z if prec == "d" else FFTType.R2C
        plan = FFTPlan(2048, 64, t)
        x = rng.standard_normal((64, 2048)).astype(
            np.float64 if prec == "d" else np.float32
        )
        out = benchmark(plan.execute, x)
        assert out.shape == (64, 1025)

    def test_radix2_vs_pocketfft(self, benchmark, rng):
        x = rng.standard_normal((16, 1024)) + 1j * rng.standard_normal((16, 1024))
        out = benchmark(fft_radix2, x)
        np.testing.assert_allclose(out, np.fft.fft(x, axis=1), rtol=1e-9, atol=1e-9)

    def test_bluestein_odd_length(self, benchmark, rng):
        x = rng.standard_normal((4, 1000)) + 0j
        out = benchmark(fft_auto, x)
        np.testing.assert_allclose(out, np.fft.fft(x, axis=1), rtol=1e-8, atol=1e-8)


class TestMemoryOpsMicro:
    def test_pad(self, benchmark, rng):
        v = rng.standard_normal((512, 256))
        out = benchmark(pad_to_soti, v, Precision.SINGLE)
        assert out.shape == (256, 1024)

    def test_unpad(self, benchmark, rng):
        v = rng.standard_normal((256, 1024))
        out = benchmark(unpad_from_soti, v, 512, Precision.DOUBLE)
        assert out.shape == (512, 256)

    def test_reorder_with_fused_cast(self, benchmark, rng):
        v = (rng.standard_normal((513, 256))
             + 1j * rng.standard_normal((513, 256)))
        out = benchmark(soti_to_tosi, v, Precision.SINGLE)
        assert out.dtype == np.complex64


class TestCommMicro:
    @pytest.mark.parametrize("p", [16, 256])
    def test_tree_reduce(self, benchmark, rng, p):
        arrays = [rng.standard_normal(4096) for _ in range(p)]
        out = benchmark(tree_reduce_arrays, arrays, Precision.SINGLE)
        assert out.shape == (4096,)


class TestHipifyMicro:
    def test_translation_throughput(self, benchmark):
        source = "\n".join(
            [
                "#include <cuda_runtime.h>",
                "#include <cublas_v2.h>",
            ]
            + [
                f"void k{i}(double* p) {{ cudaMalloc((void**)&p, {i}); "
                f"cudaMemcpyAsync(p, p, {i}, cudaMemcpyDeviceToDevice, 0); "
                "cudaFree(p); }"
                for i in range(200)
            ]
        )
        result = benchmark(hipify_perl, source)
        assert result.stats.total >= 600
