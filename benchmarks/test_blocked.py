"""Blocked multi-RHS matvec bench: one pipeline pass for k vectors.

The acceptance benchmark for the SBGEMM path: at ``k = 16`` right-hand
sides, ``FFTMatvec.matmat`` must beat 16 sequential ``matvec`` calls by
at least 3x in *modeled device time* and in *real wall-clock*, while
matching the looped results to 1e-12 at the all-double configuration.

The shape mirrors FFTMatvec's Phase-3 regime (short-wide per-frequency
blocks, Nd << Nm) where the spectrum dominates the traffic — the matrix
is read once per GEMM instead of once per GEMV, which is where the
blocked path's speedup lives.
"""

import os
import time

import numpy as np
import pytest

from repro.core.matvec import FFTMatvec
from repro.core.toeplitz import BlockTriangularToeplitz
from repro.gpu.device import SimulatedDevice
from repro.gpu.specs import MI300X

# Shape choice: Phase 3 must dominate (the regime the paper optimizes —
# wide parameter blocks, many sensors), so the matrix-reuse win of the
# GEMM shows up in wall-clock and not just in the device model.
NT, ND, NM, K = 64, 384, 2048, 16


@pytest.fixture(scope="module")
def problem(rng=None):
    rng = np.random.default_rng(1234)
    matrix = BlockTriangularToeplitz.random(NT, ND, NM, rng=rng, decay=0.02)
    block = rng.standard_normal((NT, NM, K))
    return matrix, block


class TestBlockedSpeedup:
    def test_modeled_device_time_3x(self, problem):
        matrix, block = problem
        engine = FFTMatvec(matrix, device=SimulatedDevice(MI300X))
        clock = engine.device.clock

        t0 = clock.now
        blocked = engine.matmat(block)
        t_blocked = clock.now - t0

        t0 = clock.now
        looped = np.stack(
            [engine.matvec(block[:, :, j]) for j in range(K)], axis=-1
        )
        t_looped = clock.now - t0

        speedup = t_looped / t_blocked
        print(f"\nmodeled device time, k={K}: looped {t_looped * 1e3:.3f} ms "
              f"-> blocked {t_blocked * 1e3:.3f} ms ({speedup:.2f}x)")
        assert np.abs(blocked - looped).max() < 1e-12
        assert speedup >= 3.0

    def test_wall_clock_3x(self, problem):
        matrix, block = problem
        engine = FFTMatvec(matrix)  # no device: pure numerics wall-clock

        # Warm both paths (FFT plan construction, dispatch tables).
        engine.matmat(block[:, :, :2])
        engine.matvec(block[:, :, 0])

        best_blocked = min(
            _timeit(lambda: engine.matmat(block)) for _ in range(3)
        )
        best_looped = min(
            _timeit(
                lambda: [engine.matvec(block[:, :, j]) for j in range(K)]
            )
            for _ in range(3)
        )
        speedup = best_looped / best_blocked
        print(f"\nwall-clock, k={K}: looped {best_looped * 1e3:.1f} ms -> "
              f"blocked {best_blocked * 1e3:.1f} ms ({speedup:.2f}x)")
        # Shared CI runners (2 vCPUs, noisy neighbours, varying BLAS
        # threading) compress real-time ratios; hold the full 3x bar on
        # real hardware and a contention-tolerant floor in CI.
        floor = 1.5 if os.environ.get("CI") else 3.0
        assert speedup >= floor

    def test_blocked_matches_looped_1e12(self, problem):
        matrix, block = problem
        engine = FFTMatvec(matrix)
        blocked = engine.matmat(block, config="ddddd")
        for j in range(K):
            looped = engine.matvec(block[:, :, j], config="ddddd")
            assert np.abs(blocked[:, :, j] - looped).max() < 1e-12

    def test_adjoint_blocked_speedup(self, problem):
        matrix, _ = problem
        rng = np.random.default_rng(99)
        data = rng.standard_normal((NT, ND, K))
        engine = FFTMatvec(matrix, device=SimulatedDevice(MI300X))
        clock = engine.device.clock

        t0 = clock.now
        blocked = engine.rmatmat(data)
        t_blocked = clock.now - t0
        t0 = clock.now
        looped = np.stack(
            [engine.rmatvec(data[:, :, j]) for j in range(K)], axis=-1
        )
        t_looped = clock.now - t0
        print(f"\nadjoint modeled, k={K}: {t_looped / t_blocked:.2f}x")
        assert np.abs(blocked - looped).max() < 1e-12
        assert t_looped / t_blocked >= 3.0

    def test_phase_breakdown_shows_sbgemv_win(self, problem):
        matrix, block = problem
        engine = FFTMatvec(matrix, device=SimulatedDevice(MI300X))
        engine.matmat(block)
        blocked_phases = dict(engine.last_timing.phases)
        engine.matvec(block[:, :, 0])
        looped_phases = {p: K * t for p, t in engine.last_timing.phases.items()}
        print("\nphase breakdown (ms), blocked vs k looped:")
        for p in ("pad", "fft", "sbgemv", "ifft", "unpad"):
            print(f"  {p:7s} {blocked_phases[p] * 1e3:8.3f} "
                  f"{looped_phases[p] * 1e3:8.3f}")
        # Phase 3 carries the big win (matrix read once, not k times)...
        assert looped_phases["sbgemv"] / blocked_phases["sbgemv"] > 4.0
        # ...and no phase regresses versus the looped path.
        for p in blocked_phases:
            assert blocked_phases[p] <= looped_phases[p] * 1.01


def _timeit(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


class TestBlockedBench:
    def test_benchmark_blocked_matmat(self, benchmark, problem):
        matrix, block = problem
        engine = FFTMatvec(matrix)
        engine.matmat(block[:, :, :2])  # warm plans
        result = benchmark.pedantic(
            lambda: engine.matmat(block), rounds=3, iterations=1
        )
        assert result.shape == (NT, ND, K)
