"""Skew-searching partitioner bench: measure → rebalance → recover.

The acceptance benchmark for the cost-model-driven ``col_ranges`` search:
on a 2x2 grid with ``skewed_extents(skew=0.5)`` injected on the parameter
axis, the measure→rebalance loop
(:func:`repro.comm.balance.measure_rebalance_loop`) must

* recover **>= 80%** of the modeled skew the irregular partition injects
  (measured on serial-schedule walls, where per-rank compute skew moves
  the wall one-for-one at every collective),
* keep the adjoint matmat numerics **bitwise-identical** across the
  balanced, skewed and searched partitions — the column partition only
  regroups output parameters, never any floating-point accumulation,
* converge: the final search round returns the partition it measured
  under (per-rank charged seconds have equalized).

It emits ``BENCH_balance_grid.json`` next to this file; CI's tiny-size
smoke step (``REPRO_BENCH_TINY=1``) re-checks the schema and the bitwise
fact at sizes where launch overhead dominates and full recovery is not
expected.
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.comm.balance import (
    measure_rebalance_loop,
    recovered_skew_fraction,
)
from repro.comm.grid import ProcessGrid
from repro.comm.netmodel import FRONTIER_NETWORK
from repro.comm.partition import check_extents, skewed_extents
from repro.core.parallel import ParallelFFTMatvec
from repro.core.toeplitz import BlockTriangularToeplitz
from repro.gpu.specs import MI250X_GCD

TINY = bool(os.environ.get("REPRO_BENCH_TINY"))
# Full size is chosen so per-phase traffic, not launch overhead, carries
# the per-rank charge — the regime where a 1.5x column share is ~1.3x
# compute and the measured loop can win it back.
NT, ND, NM = (64, 8, 192) if TINY else (256, 32, 768)
PR, PC, K, MBK = 2, 2, 16, 8
SKEW = 0.5

ARTIFACT = Path(__file__).parent / "BENCH_balance_grid.json"


class TestBalanceGridBench:
    def test_rebalance_recovers_injected_skew(self):
        rng = np.random.default_rng(1234)
        matrix = BlockTriangularToeplitz.random(NT, ND, NM, rng=rng, decay=0.05)
        D = rng.standard_normal((NT, ND, K))

        def make_engine(col_ranges=None):
            grid = ProcessGrid(PR, PC, net=FRONTIER_NETWORK)
            return ParallelFFTMatvec(
                matrix, grid, spec=MI250X_GCD, max_block_k=MBK,
                col_ranges=col_ranges,
            )

        def timed_rmatmat(eng):
            t0 = eng.grid.clock.now
            M = eng.rmatmat(D, overlap=False)
            return eng.grid.clock.now - t0, M

        eng_bal = make_engine()
        t_bal, M_bal = timed_rmatmat(eng_bal)

        skew_cols = skewed_extents(NM, PC, SKEW)
        eng_skew = make_engine(skew_cols)
        t_skew, M_skew = timed_rmatmat(eng_skew)
        assert t_skew > t_bal  # the irregular partition charges real skew
        assert np.array_equal(M_skew, M_bal)  # ... but never moves numerics

        # The tentpole loop: measure per-rank clocks, search, repeat
        # until the charged skew converges.
        res = measure_rebalance_loop(
            make_engine,
            lambda eng: eng.rmatmat(D, overlap=False),
            axis="col",
            initial=skew_cols,
            max_rounds=8,
        )
        check_extents(res.extents, NM, PC, "searched col_ranges")
        for step in res.history:
            check_extents(step.extents, NM, PC, "candidate col_ranges")

        eng_reb = make_engine(res.extents)
        t_reb, M_reb = timed_rmatmat(eng_reb)
        assert np.array_equal(M_reb, M_bal)  # bitwise under the searched partition

        recovered = recovered_skew_fraction(t_skew, t_reb, t_bal)
        if not TINY:
            assert res.converged
            assert recovered >= 0.8, (t_skew, t_reb, t_bal)
        assert recovered >= 0.0
        assert t_reb <= t_skew * (1 + 1e-12)

        print(
            f"\ngrid {PR}x{PC}, k={K}, skew={SKEW} on {NM} columns: balanced "
            f"{t_bal * 1e3:.4f} ms, skewed {t_skew * 1e3:.4f} ms, searched "
            f"{res.extents} -> {t_reb * 1e3:.4f} ms "
            f"({recovered * 100:.1f}% of injected skew recovered in "
            f"{res.rounds} measure-rebalance rounds)"
        )

        ARTIFACT.write_text(json.dumps({
            "bench": "balance_grid",
            "grid": f"{PR}x{PC}",
            "shape": {"nt": NT, "nd": ND, "nm": NM, "k": K, "max_block_k": MBK},
            "skew": SKEW,
            "modeled_balanced_s": t_bal,
            "modeled_skewed_s": t_skew,
            "modeled_rebalanced_s": t_reb,
            "searched_col_ranges": [list(e) for e in res.extents],
            "rounds": res.rounds,
            "converged": res.converged,
            "recovered_skew_fraction": recovered,
            "bitwise_identical": True,
        }, indent=2) + "\n")
        data = json.loads(ARTIFACT.read_text())
        assert data["bitwise_identical"]
        assert data["recovered_skew_fraction"] == pytest.approx(recovered)

    def test_heterogeneous_grid_balances_before_any_measurement(self):
        # Analytic path: grid column 0 owns slow MI250X GCDs, column 1
        # fast MI300Xs.  Per-rank specs with differing throughput seed
        # the search without running anything; the searched partition
        # gives the fast column more parameters and beats the even split
        # on the charged wall, bitwise-identically.
        from repro.comm.balance import analytic_unit_costs, balance_extents, linear_cost
        from repro.gpu.specs import MI300X

        rng = np.random.default_rng(7)
        nt, nd, nm, k = (48, 24, 96, 8) if TINY else (128, 16, 256, 8)
        matrix = BlockTriangularToeplitz.random(nt, nd, nm, rng=rng, decay=0.05)
        D = rng.standard_normal((nt, nd, k))
        specs = {
            (0, 0): MI250X_GCD, (1, 0): MI250X_GCD,
            (0, 1): MI300X, (1, 1): MI300X,
        }

        def run(col_ranges=None):
            grid = ProcessGrid(2, 2, net=FRONTIER_NETWORK)
            eng = ParallelFFTMatvec(
                matrix, grid, spec=specs, max_block_k=k, col_ranges=col_ranges
            )
            t0 = grid.clock.now
            M = eng.rmatmat(D, overlap=False)
            return grid.clock.now - t0, M

        t_even, M_even = run()
        units = analytic_unit_costs(specs, 2, 2, axis="col")
        assert units[0] > units[1]  # the MI250X column costs more per column
        res = balance_extents(nm, 2, linear_cost(units), min_part=2, what="col_ranges")
        w0, w1 = (stop - start for start, stop in res.extents)
        assert w1 > w0  # the fast column takes the larger share
        t_searched, M_searched = run(res.extents)
        assert np.array_equal(M_searched, M_even)
        assert t_searched < t_even
