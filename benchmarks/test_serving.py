"""Serving bench: cross-request coalescing vs serve-one under load.

The acceptance benchmark for the multi-tenant service
(:mod:`repro.serve`): identical Poisson request traces — a mix of
matvec / rmatvec applies and regularized least-squares solves from
several tenants — are replayed through a coalescing
:class:`~repro.serve.service.SolverService` and a ``max_block_k=1``
baseline.  At full size the coalesced service must

* deliver **>= 2x** the serve-one throughput at the highest arrival
  rate (concurrent applies share blocked pipeline passes; concurrent
  solves run as one block CG, one blocked Hessian pass per iteration
  for the whole batch),
* return apply results **bitwise-identical** to sequential engine
  applies and solve results within the CG tolerance (block CG is
  tolerance-equivalent, not bitwise — see ``docs/SERVING.md``),
* shed nothing (no overload/tenant rejections at these rates), and
* keep the engine cache inside its :class:`DeviceAllocator` byte
  budget (the allocator refuses over-budget admission by construction,
  so this asserts the accounting stayed wired up).

It emits ``BENCH_serving.json`` next to this file.  CI's tiny smoke
(``REPRO_BENCH_TINY=1``) runs a shrunken trace and asserts the schema,
the correctness gates and that coalescing still beats serve-one — the
2x floor is only enforced at full size, where per-request work is big
enough for the ratio to be stable.
"""

import json
import os
from pathlib import Path

from repro.serve.bench import run_serving_benchmark

TINY = bool(os.environ.get("REPRO_BENCH_TINY"))
NT, ND, NM = (16, 8, 48) if TINY else (64, 24, 96)
RATES = (200.0, 2000.0) if TINY else (50.0, 2000.0)
N_REQUESTS = 96 if TINY else 240
SPEEDUP_FLOOR = 1.05 if TINY else 2.0

ARTIFACT = Path(__file__).parent / "BENCH_serving.json"


class TestServingBench:
    def test_coalescing_vs_serve_one_with_artifact(self):
        artifact = run_serving_benchmark(
            nt=NT, nd=ND, nm=NM, rates=RATES, n_requests=N_REQUESTS
        )

        # Schema spot checks (documented in docs/BENCHMARKS.md).
        assert artifact["bench"] == "serving"
        assert artifact["shape"] == {"nt": NT, "nd": ND, "nm": NM}
        assert len(artifact["rates"]) == len(RATES)
        for row in artifact["rates"]:
            for side in ("coalesced", "serve_one"):
                stats = row[side]
                assert stats["completed"] == N_REQUESTS
                assert stats["rejected"] == 0
                assert stats["throughput_rps"] > 0
            coalesced = row["coalesced"]
            # Coalescing must be invisible in the results: applies
            # bitwise, solves within the (slack-adjusted) CG tolerance.
            assert coalesced["bitwise_identical"] is True
            assert coalesced["solves_within_tol"] is True
            # The coalescer must actually coalesce at the high rate.
            if row["rate_rps"] == max(RATES):
                assert coalesced["mean_batch"] > 1.5
                assert row["speedup"] >= SPEEDUP_FLOOR, (
                    f"coalesced speedup {row['speedup']:.2f}x at "
                    f"{row['rate_rps']:.0f} rps is below the "
                    f"{SPEEDUP_FLOOR}x floor"
                )

        cache = artifact["cache"]
        assert cache["within_budget"] is True
        assert cache["peak_bytes"] <= cache["budget_bytes"]

        ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")
        assert ARTIFACT.exists()
