"""repro — a Python reproduction of the FFTMatvec system.

Reproduces "Mixed-Precision Performance Portability of FFT-Based
GPU-Accelerated Algorithms for Block-Triangular Toeplitz Matrices"
(SC Workshops '25): the five-phase FFT-based matvec for block
lower-triangular Toeplitz matrices, its dynamic mixed-precision
framework and Pareto analysis, the hipify-on-the-fly portability
workflow, the optimized rocBLAS transpose SBGEMV kernel, and the
multi-GPU scaling study — all on simulated GPU / network substrates
(see DESIGN.md for the substitution table).

Quickstart
----------
>>> import numpy as np
>>> from repro import BlockTriangularToeplitz, FFTMatvec
>>> F = BlockTriangularToeplitz.random(nt=32, nd=4, nm=16,
...                                    rng=np.random.default_rng(0))
>>> engine = FFTMatvec(F)
>>> m = np.random.default_rng(1).standard_normal((32, 16))
>>> d = engine.matvec(m, config="dssdd")           # mixed precision
>>> ref = F.matvec_reference(m)                    # O(Nt^2) check
>>> bool(np.linalg.norm(d - ref) / np.linalg.norm(ref) < 1e-4)
True
"""

from repro.core import (
    BlockTriangularToeplitz,
    FFTMatvec,
    ParallelFFTMatvec,
    PrecisionConfig,
    pareto_front,
    optimal_config,
    sweep_configs,
)
from repro.gpu import SimulatedDevice, get_gpu, list_gpus
from repro.util import Precision

__version__ = "1.0.0"

__all__ = [
    "BlockTriangularToeplitz",
    "FFTMatvec",
    "ParallelFFTMatvec",
    "PrecisionConfig",
    "Precision",
    "pareto_front",
    "optimal_config",
    "sweep_configs",
    "SimulatedDevice",
    "get_gpu",
    "list_gpus",
    "__version__",
]
