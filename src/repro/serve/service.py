"""Multi-tenant async solver service: cross-request coalescing front end.

The blocked multi-RHS pipeline (PR 1/2) makes ``k`` matvecs against one
operator cost one pad / batched-FFT / Phase-3 / IFFT / unpad pass.  This
module turns that into a *serving* win: an asyncio
:class:`SolverService` accepts per-tenant ``matvec`` / ``rmatvec`` /
``solve`` requests, groups in-flight requests that share an operator
fingerprint (plus kind, precision config and resolved determinism
mode), and flushes each group as
one blocked apply — on ``max_block_k`` queued columns or a micro-batch
window timeout, whichever first — then scatters per-request result
columns back to their futures.

**Determinism.**  Coalescing must not change anyone's answer: by
default flushes run the engines' ``deterministic=True`` blocked path,
whose column ``j`` is *bitwise* what a sequential ``matvec`` of request
``j`` returns (see :meth:`repro.core.matvec.FFTMatvec.matmat`).  A
request therefore cannot observe whether it shared a batch.  Requests
may override the mode per call (``deterministic=False`` buys the fast
blocked GEMM); the resolved mode is part of the coalescing key, so a
deterministic request can never be flushed through a fast-mode pass —
the same separation the engines' ``geometry_key`` enforces for
``reduction="pairwise"`` engine instances in the
:class:`~repro.serve.cache.EngineCache`.  ``solve``
requests coalesce at the CG level — each iteration applies the
Gauss-Newton Hessian to all k systems in one blocked pass — and are
tolerance-equivalent (same stopping rule per column), not bitwise.

**Backpressure and fairness.**  The queue is bounded: past
``max_pending`` in-flight requests new submissions are load-shed with
:class:`ServiceOverloadedError`; a per-tenant inflight cap rejects
monopolizing tenants with :class:`TenantThrottledError`.  When a flush
has more candidates than ``max_block_k``, columns are picked by
weighted fair queuing — the tenant with the smallest
``served / weight`` virtual time goes first, FIFO within a tenant — so
a weight-2 tenant gets twice the columns of a weight-1 tenant under
contention and nobody starves.

**Engine residency.**  Engines are built lazily through an
:class:`~repro.serve.cache.EngineCache` under a device byte budget;
every flush trues up the engine's footprint (arenas and spectrum caches
grow lazily) so LRU eviction sees honest numbers.  All engine work runs
on one executor thread, which serializes applies per arena — the
:class:`~repro.util.workspace.Workspace` re-entrancy guard would raise
otherwise — while the event loop stays free to accept requests.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.matvec import FFTMatvec
from repro.comm.fault import RankFailure, SilentCorruption
from repro.core.operator import ForwardOperator, GaussNewtonHessian, IdentityOperator
from repro.core.precision import PrecisionConfig
from repro.core.toeplitz import BlockTriangularToeplitz
from repro.serve.cache import EngineCache, operator_fingerprint
from repro.util.validation import ReproError

__all__ = [
    "ServeError",
    "ServiceClosedError",
    "ServiceOverloadedError",
    "TenantThrottledError",
    "DeadlineExpiredError",
    "UnknownOperatorError",
    "SolveOptions",
    "ServiceStats",
    "SolverService",
]


class ServeError(ReproError):
    """Base class for serving-layer failures."""


class ServiceClosedError(ServeError):
    """Submission after :meth:`SolverService.close`."""


class ServiceOverloadedError(ServeError):
    """Load shed: the bounded request queue is full."""


class TenantThrottledError(ServeError):
    """A tenant exceeded its per-tenant max-inflight cap."""


class DeadlineExpiredError(ServeError):
    """A request's ``deadline_s`` elapsed before its flush ran."""


class UnknownOperatorError(ServeError):
    """A request referenced an operator handle that was never registered."""


@dataclass(frozen=True)
class SolveOptions:
    """Parameters of a ``solve`` request (part of its coalescing group).

    A solve minimizes ``||F m - d||^2 / noise_std^2 + ridge * ||m||^2``
    by CG on the regularized Gauss-Newton normal equations.  Requests
    only coalesce when *all* of these match — mixing tolerances inside
    one block CG would change stopping behaviour.
    """

    noise_std: float = 1.0
    ridge: float = 1e-8
    tol: float = 1e-8
    maxiter: int = 200


@dataclass
class ServiceStats:
    """Cumulative service counters (see :meth:`SolverService.stats`)."""

    submitted: int = 0  # accepted requests
    completed: int = 0  # futures resolved with a result
    failed: int = 0  # futures resolved with an exception
    rejected_overload: int = 0  # load-shed at the bounded queue
    rejected_tenant: int = 0  # per-tenant inflight cap hits
    flushes: int = 0  # blocked applies issued (engine passes)
    coalesced_requests: int = 0  # requests that shared a flush (batch >= 2)
    max_batch: int = 0  # widest flush seen
    batched_columns: int = 0  # total request columns across flushes
    rank_failures: int = 0  # flushes whose engine died mid-pass
    flush_retries: int = 0  # retry passes issued after an engine death
    budget_exhausted: int = 0  # requests failed by the tenant failure budget
    deadline_expired: int = 0  # requests dropped because their deadline passed
    sdc_detections: int = 0  # flushes that tripped a silent-corruption check
    sdc_rebuilds: int = 0  # engine evictions forced by repeat-offender tenants
    latencies_s: List[float] = field(default_factory=list)  # per request

    @property
    def mean_batch(self) -> float:
        """Average flush width (request columns per engine pass)."""
        return self.batched_columns / self.flushes if self.flushes else 0.0


@dataclass
class _Request:
    """One queued request: payload plus its completion future."""

    tenant: str
    payload: np.ndarray
    future: "asyncio.Future[np.ndarray]"
    t_submit: float
    seq: int
    deadline: Optional[float] = None  # absolute perf_counter time, or None


# A coalescing group: requests here may share one blocked apply.  The
# resolved determinism mode is part of the key: a request that asked for
# the bitwise path must never ride a fast-mode flush (and vice versa),
# whatever the service default is.
_GroupKey = Tuple[str, str, str, bool, Optional[SolveOptions]]


class SolverService:
    """Asyncio front end coalescing tenant requests into blocked applies.

    Parameters
    ----------
    cache:
        The :class:`EngineCache` engines are built into (and evicted
        from, under its byte budget).
    max_block_k:
        Flush a group as soon as this many columns are queued; also the
        widest blocked apply ever issued.  ``1`` disables coalescing —
        the serve-one baseline with identical asyncio overhead.
    window:
        Micro-batch window in seconds: a group flushes at most this long
        after its oldest queued request arrived, full or not.
    max_pending:
        Bound on queued-but-unflushed requests across all groups; past
        it submissions raise :class:`ServiceOverloadedError`.
    max_inflight_per_tenant:
        Per-tenant cap on submitted-but-unfinished requests (None = no
        cap); past it submissions raise :class:`TenantThrottledError`.
    tenant_weights:
        Weighted-fair-queuing weights (default 1.0).  Under contention a
        tenant's share of flush columns is proportional to its weight.
    deterministic:
        Default flush mode: run through the engines' bitwise per-column
        Phase 3 (default ``True``).  ``False`` uses the faster blocked
        GEMM whose columns match sequential applies only to rounding.
        Every request can override per call; requests only coalesce
        with requests that *resolved* to the same mode.
    sdc_escalation_threshold:
        A tenant whose flushes trip this many silent-corruption
        detections is treated as a repeat offender: the flush's engine
        is evicted so the retry rebuilds it from scratch (counted in
        ``sdc_rebuilds``).  Below the threshold a detection just retries
        on the same engine — the corrupted buffer was transient.
    """

    def __init__(
        self,
        cache: EngineCache,
        max_block_k: int = 16,
        window: float = 0.002,
        max_pending: int = 256,
        max_inflight_per_tenant: Optional[int] = None,
        tenant_weights: Optional[Dict[str, float]] = None,
        deterministic: bool = True,
        max_flush_retries: int = 2,
        retry_backoff_s: float = 0.0,
        tenant_failure_budget: Optional[int] = None,
        sdc_escalation_threshold: int = 2,
    ) -> None:
        if max_block_k < 1:
            raise ReproError(f"max_block_k must be >= 1, got {max_block_k}")
        if window < 0:
            raise ReproError(f"window must be >= 0, got {window}")
        if max_pending < 1:
            raise ReproError(f"max_pending must be >= 1, got {max_pending}")
        if max_flush_retries < 0:
            raise ReproError(
                f"max_flush_retries must be >= 0, got {max_flush_retries}"
            )
        if retry_backoff_s < 0:
            raise ReproError(
                f"retry_backoff_s must be >= 0, got {retry_backoff_s}"
            )
        if tenant_failure_budget is not None and tenant_failure_budget < 0:
            raise ReproError(
                "tenant_failure_budget must be >= 0, got "
                f"{tenant_failure_budget}"
            )
        if sdc_escalation_threshold < 1:
            raise ReproError(
                "sdc_escalation_threshold must be >= 1, got "
                f"{sdc_escalation_threshold}"
            )
        for tenant, w in (tenant_weights or {}).items():
            if w <= 0:
                raise ReproError(f"tenant {tenant!r} weight must be > 0, got {w}")
        self.cache = cache
        self.max_block_k = int(max_block_k)
        self.window = float(window)
        self.max_pending = int(max_pending)
        self.max_inflight_per_tenant = max_inflight_per_tenant
        self.tenant_weights = dict(tenant_weights or {})
        self.deterministic = bool(deterministic)
        self.max_flush_retries = int(max_flush_retries)
        self.retry_backoff_s = float(retry_backoff_s)
        self.tenant_failure_budget = tenant_failure_budget
        self.sdc_escalation_threshold = int(sdc_escalation_threshold)
        self._tenant_failures: Dict[str, int] = {}
        self._tenant_sdc: Dict[str, int] = {}

        self._builders: Dict[str, Callable[[], Any]] = {}
        self._shapes: Dict[str, Tuple[int, int, int]] = {}
        self._groups: Dict[_GroupKey, Deque[_Request]] = {}
        self._timers: Dict[_GroupKey, "asyncio.TimerHandle"] = {}
        self._pending_total = 0
        self._tenant_inflight: Dict[str, int] = {}
        self._served: Dict[str, float] = {}  # WFQ virtual time per tenant
        self._seq = 0
        self._closed = False
        self._flushing: "set[_GroupKey]" = set()
        self._flush_tasks: "set[asyncio.Task]" = set()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="solver-service"
        )
        self._stats = ServiceStats()

    # -- registration ---------------------------------------------------------
    def register(
        self,
        matrix: Union[BlockTriangularToeplitz, np.ndarray],
        builder: Optional[Callable[[], Any]] = None,
        name: Optional[str] = None,
    ) -> str:
        """Register an operator; returns its handle (the coalescing key).

        ``matrix`` is fingerprinted (content + shape) so re-registering
        the same operator — any tenant, any time — yields the same
        handle and its requests coalesce.  ``builder`` constructs the
        engine on first use (cache miss); the default builds a
        single-device :class:`FFTMatvec` with a private workspace arena.
        Builders **must** enable a workspace per engine — the arena is
        what the cache budget meters and what keeps concurrent tenants'
        applies from sharing buffers.  ``name`` prefixes the handle for
        readable logs; it does not affect grouping semantics beyond
        being part of the handle string.
        """
        mat = (
            matrix
            if isinstance(matrix, BlockTriangularToeplitz)
            else BlockTriangularToeplitz(np.asarray(matrix))
        )
        digest = operator_fingerprint(mat)
        prefix = name if name is not None else "op"
        handle = f"{prefix}-{mat.nt}x{mat.nd}x{mat.nm}-{digest}"
        if builder is None:
            def builder(m=mat):  # noqa: E306 - default engine builder
                return FFTMatvec(m, workspace=True)

        self._builders[handle] = builder
        self._shapes[handle] = (mat.nt, mat.nd, mat.nm)
        return handle

    # -- public request API ---------------------------------------------------
    async def matvec(
        self,
        handle: str,
        m: np.ndarray,
        config: Union[str, PrecisionConfig] = "ddddd",
        tenant: str = "default",
        deterministic: Optional[bool] = None,
        deadline_s: Optional[float] = None,
    ) -> np.ndarray:
        """``d = F m`` for one tenant; may share a blocked pass with
        concurrent requests on the same handle/config and resolved
        determinism mode (bitwise-identical to an uncoalesced apply in
        deterministic mode).  ``deterministic`` overrides the service
        default for this request only.  ``deadline_s`` is a per-request
        latency budget: a request still queued (or awaiting a retry)
        when it expires is dropped from its coalescing group and fails
        with :class:`DeadlineExpiredError` instead of riding a flush
        whose result nobody wants."""
        nt, nd, nm = self._shape(handle)
        payload = self._as_block(m, (nt, nm), "matvec input")
        return await self._submit(
            "matvec", handle, payload, config, tenant, None, deterministic,
            deadline_s,
        )

    async def rmatvec(
        self,
        handle: str,
        d: np.ndarray,
        config: Union[str, PrecisionConfig] = "ddddd",
        tenant: str = "default",
        deterministic: Optional[bool] = None,
        deadline_s: Optional[float] = None,
    ) -> np.ndarray:
        """``m = F* d`` for one tenant (adjoint of :meth:`matvec`, same
        coalescing, bitwise guarantees and per-request ``deterministic``
        / ``deadline_s`` semantics)."""
        nt, nd, nm = self._shape(handle)
        payload = self._as_block(d, (nt, nd), "rmatvec input")
        return await self._submit(
            "rmatvec", handle, payload, config, tenant, None, deterministic,
            deadline_s,
        )

    async def solve(
        self,
        handle: str,
        d: np.ndarray,
        config: Union[str, PrecisionConfig] = "ddddd",
        tenant: str = "default",
        options: Optional[SolveOptions] = None,
        deterministic: Optional[bool] = None,
        deadline_s: Optional[float] = None,
    ) -> np.ndarray:
        """Regularized least-squares solve for one tenant.

        Returns the CG solution of ``(F* F / s^2 + ridge I) m = F* d /
        s^2`` with ``s = options.noise_std``.  Concurrent solves sharing
        handle, config and options run as one *block* CG — every
        iteration costs one blocked Hessian pass for all k systems
        instead of k — with per-column stopping, so results match a solo
        solve to tolerance (not bitwise; see the module docstring).
        """
        nt, nd, nm = self._shape(handle)
        payload = self._as_block(d, (nt, nd), "solve input")
        opts = options if options is not None else SolveOptions()
        return await self._submit(
            "solve", handle, payload, config, tenant, opts, deterministic,
            deadline_s,
        )

    # -- lifecycle ------------------------------------------------------------
    async def drain(self) -> None:
        """Flush every queued group now and wait for in-flight work."""
        for gkey in list(self._groups.keys()):
            self._cancel_timer(gkey)
            self._spawn_flush(gkey)
        while self._flush_tasks:
            await asyncio.gather(*list(self._flush_tasks), return_exceptions=True)

    async def close(self) -> None:
        """Drain outstanding requests, then refuse new ones and shut
        down the executor.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        await self.drain()
        self._executor.shutdown(wait=True)

    async def __aenter__(self) -> "SolverService":
        """``async with SolverService(...)`` support."""
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        """Close on context exit."""
        await self.close()

    def stats(self) -> ServiceStats:
        """The live cumulative counters (not a copy)."""
        return self._stats

    def tenant_failures(self) -> Dict[str, int]:
        """Rank failures charged to each tenant so far (a copy)."""
        return dict(self._tenant_failures)

    def tenant_sdc_detections(self) -> Dict[str, int]:
        """Silent-corruption detections charged per tenant (a copy)."""
        return dict(self._tenant_sdc)

    # -- submission internals -------------------------------------------------
    def _shape(self, handle: str) -> Tuple[int, int, int]:
        if handle not in self._shapes:
            raise UnknownOperatorError(f"operator handle {handle!r} not registered")
        return self._shapes[handle]

    @staticmethod
    def _as_block(v: np.ndarray, shape: Tuple[int, int], what: str) -> np.ndarray:
        a = np.asarray(v, dtype=np.float64)
        if a.ndim == 1 and a.size == shape[0] * shape[1]:
            a = a.reshape(shape)
        if a.shape != shape:
            raise ReproError(f"{what} must be shaped {shape}, got {a.shape}")
        return np.ascontiguousarray(a)

    async def _submit(
        self,
        kind: str,
        handle: str,
        payload: np.ndarray,
        config: Union[str, PrecisionConfig],
        tenant: str,
        options: Optional[SolveOptions],
        deterministic: Optional[bool] = None,
        deadline_s: Optional[float] = None,
    ) -> np.ndarray:
        if deadline_s is not None and deadline_s <= 0:
            raise ReproError(f"deadline_s must be > 0, got {deadline_s}")
        if self._closed:
            raise ServiceClosedError("service is closed")
        if handle not in self._builders:
            raise UnknownOperatorError(f"operator handle {handle!r} not registered")
        if self._pending_total >= self.max_pending:
            self._stats.rejected_overload += 1
            raise ServiceOverloadedError(
                f"queue full ({self._pending_total} pending >= "
                f"max_pending={self.max_pending})"
            )
        cap = self.max_inflight_per_tenant
        if cap is not None and self._tenant_inflight.get(tenant, 0) >= cap:
            self._stats.rejected_tenant += 1
            raise TenantThrottledError(
                f"tenant {tenant!r} has {self._tenant_inflight[tenant]} requests "
                f"in flight (cap {cap})"
            )

        loop = asyncio.get_running_loop()
        fut: "asyncio.Future[np.ndarray]" = loop.create_future()
        self._seq += 1
        t_submit = time.perf_counter()
        req = _Request(
            tenant=tenant,
            payload=payload,
            future=fut,
            t_submit=t_submit,
            seq=self._seq,
            deadline=None if deadline_s is None else t_submit + deadline_s,
        )
        det = self.deterministic if deterministic is None else bool(deterministic)
        gkey: _GroupKey = (
            handle, kind, str(PrecisionConfig.parse(config)), det, options
        )
        group = self._groups.setdefault(gkey, deque())
        group.append(req)
        self._pending_total += 1
        self._tenant_inflight[tenant] = self._tenant_inflight.get(tenant, 0) + 1
        self._stats.submitted += 1

        if gkey in self._flushing:
            # A pass is already on the engine for this group: let the
            # batch keep forming — the completing flush re-dispatches
            # immediately, so width adapts to the backlog under load.
            pass
        elif len(group) >= self.max_block_k:
            self._cancel_timer(gkey)
            self._spawn_flush(gkey)
        elif gkey not in self._timers:
            self._timers[gkey] = loop.call_later(
                self.window, self._on_window, gkey
            )
        try:
            return await fut
        finally:
            self._tenant_inflight[tenant] -= 1
            if self._tenant_inflight[tenant] <= 0:
                del self._tenant_inflight[tenant]

    def _on_window(self, gkey: _GroupKey) -> None:
        """Window-timeout callback: flush whatever the group holds."""
        self._timers.pop(gkey, None)
        self._spawn_flush(gkey)

    def _cancel_timer(self, gkey: _GroupKey) -> None:
        timer = self._timers.pop(gkey, None)
        if timer is not None:
            timer.cancel()

    def _spawn_flush(self, gkey: _GroupKey) -> None:
        task = asyncio.get_running_loop().create_task(self._flush(gkey))
        self._flush_tasks.add(task)
        task.add_done_callback(self._flush_tasks.discard)

    # -- fair selection -------------------------------------------------------
    def _weight(self, tenant: str) -> float:
        return float(self.tenant_weights.get(tenant, 1.0))

    def _select(self, group: Deque[_Request]) -> List[_Request]:
        """Pick up to ``max_block_k`` requests by weighted fair queuing.

        Tenants are charged virtual time ``1 / weight`` per selected
        column; the tenant with the least virtual time picks next (FIFO
        within a tenant, submit order breaking ties).  Uncontended
        groups take everything that fits, oldest first.
        """
        take: List[_Request] = []
        if len(group) <= self.max_block_k:
            take.extend(group)
            group.clear()
            for req in take:
                self._served[req.tenant] = (
                    self._served.get(req.tenant, 0.0) + 1.0 / self._weight(req.tenant)
                )
            return take
        by_tenant: Dict[str, Deque[_Request]] = {}
        for req in group:
            by_tenant.setdefault(req.tenant, deque()).append(req)
        while len(take) < self.max_block_k and by_tenant:
            tenant = min(
                by_tenant,
                key=lambda t: (self._served.get(t, 0.0), by_tenant[t][0].seq),
            )
            req = by_tenant[tenant].popleft()
            if not by_tenant[tenant]:
                del by_tenant[tenant]
            self._served[tenant] = (
                self._served.get(tenant, 0.0) + 1.0 / self._weight(tenant)
            )
            take.append(req)
        taken = {id(r) for r in take}
        remaining = [r for r in group if id(r) not in taken]
        group.clear()
        group.extend(remaining)
        return take

    # -- flushing -------------------------------------------------------------
    def _drop_expired(self, batch: List[_Request]) -> List[_Request]:
        """Fail requests whose deadline passed; return the live rest.

        Runs right before the engine pass (and before every retry pass)
        so an expired request never occupies a flush column — its
        tenant already stopped waiting for the answer.
        """
        now = time.perf_counter()
        live: List[_Request] = []
        for req in batch:
            if req.deadline is not None and now > req.deadline:
                self._stats.deadline_expired += 1
                self._stats.failed += 1
                if not req.future.done():
                    req.future.set_exception(
                        DeadlineExpiredError(
                            f"request from tenant {req.tenant!r} exceeded its "
                            f"{req.deadline - req.t_submit:.3g}s deadline "
                            "before its flush ran"
                        )
                    )
            else:
                live.append(req)
        return live

    async def _flush(self, gkey: _GroupKey) -> None:
        if gkey in self._flushing:
            return  # the in-flight pass re-dispatches on completion
        group = self._groups.get(gkey)
        if not group:
            self._groups.pop(gkey, None)
            return
        self._cancel_timer(gkey)
        batch = self._select(group)
        if not group:
            del self._groups[gkey]
        self._pending_total -= len(batch)
        self._flushing.add(gkey)
        loop = asyncio.get_running_loop()
        attempt = 0
        try:
            while batch:
                batch = self._drop_expired(batch)
                if not batch:
                    break
                try:
                    columns = await loop.run_in_executor(
                        self._executor, self._execute, gkey, batch
                    )
                except RankFailure as exc:
                    # A rank died under this batch's engine.  The engine's
                    # grid is gone — evict it so the retry rebuilds a fresh
                    # (possibly reshaped) one through the builder, then
                    # charge each tenant's failure budget and retry the
                    # survivors with exponential backoff.
                    self._stats.rank_failures += 1
                    self.cache.evict(gkey[0])
                    attempt += 1
                    survivors: List[_Request] = []
                    for req in batch:
                        n = self._tenant_failures.get(req.tenant, 0) + 1
                        self._tenant_failures[req.tenant] = n
                        if (
                            self.tenant_failure_budget is not None
                            and n > self.tenant_failure_budget
                        ):
                            self._stats.budget_exhausted += 1
                            self._stats.failed += 1
                            if not req.future.done():
                                req.future.set_exception(exc)
                        else:
                            survivors.append(req)
                    batch = survivors
                    if not batch:
                        break
                    if attempt > self.max_flush_retries:
                        for req in batch:
                            if not req.future.done():
                                req.future.set_exception(exc)
                        self._stats.failed += len(batch)
                        break
                    self._stats.flush_retries += 1
                    if self.retry_backoff_s > 0:
                        await asyncio.sleep(
                            self.retry_backoff_s * (2 ** (attempt - 1))
                        )
                    continue
                except SilentCorruption as exc:
                    # A checksum tripped under this batch.  The engine
                    # itself is fine — the flip lived in a transient
                    # buffer — so by default just retry the pass on the
                    # same engine.  Tenants whose flushes keep tripping
                    # checks are escalated: past the threshold the
                    # engine is evicted and rebuilt from scratch, in
                    # case the corruption is resident (spectra, arenas).
                    self._stats.sdc_detections += 1
                    attempt += 1
                    escalate = False
                    for req in batch:
                        n = self._tenant_sdc.get(req.tenant, 0) + 1
                        self._tenant_sdc[req.tenant] = n
                        if n >= self.sdc_escalation_threshold:
                            escalate = True
                    if escalate and gkey[0] in self.cache:
                        self.cache.evict(gkey[0])
                        self._stats.sdc_rebuilds += 1
                    if attempt > self.max_flush_retries:
                        for req in batch:
                            if not req.future.done():
                                req.future.set_exception(exc)
                        self._stats.failed += len(batch)
                        break
                    self._stats.flush_retries += 1
                    if self.retry_backoff_s > 0:
                        await asyncio.sleep(
                            self.retry_backoff_s * (2 ** (attempt - 1))
                        )
                    continue
                except Exception as exc:  # noqa: BLE001 - fan the failure out
                    for req in batch:
                        if not req.future.done():
                            req.future.set_exception(exc)
                    self._stats.failed += len(batch)
                    break
                else:
                    t_done = time.perf_counter()
                    k = len(batch)
                    self._stats.flushes += 1
                    self._stats.batched_columns += k
                    self._stats.max_batch = max(self._stats.max_batch, k)
                    if k >= 2:
                        self._stats.coalesced_requests += k
                    for req, col in zip(batch, columns):
                        self._stats.latencies_s.append(t_done - req.t_submit)
                        self._stats.completed += 1
                        if not req.future.done():
                            req.future.set_result(col)
                    break
        finally:
            self._flushing.discard(gkey)
            if self._groups.get(gkey):
                # Requests accumulated while the pass ran (or past
                # max_block_k): dispatch again without waiting for a
                # window — adaptive batching under load.
                self._spawn_flush(gkey)

    # -- engine execution (runs on the executor thread) -----------------------
    def _execute(
        self, gkey: _GroupKey, batch: List[_Request]
    ) -> List[np.ndarray]:
        handle, kind, config, deterministic, options = gkey
        engine = self.cache.get(handle, builder=self._builders[handle])
        try:
            if kind == "solve":
                assert options is not None
                results = self._execute_solve(
                    engine, batch, config, options, deterministic
                )
            else:
                results = self._execute_apply(
                    engine, kind, batch, config, deterministic
                )
        finally:
            # Arenas and spectrum caches grow lazily; keep the budget
            # charge honest after every pass.
            if handle in self.cache:
                self.cache.update_footprint(handle)
        return results

    def _execute_apply(
        self,
        engine,
        kind: str,
        batch: List[_Request],
        config: str,
        deterministic: bool,
    ) -> List[np.ndarray]:
        """Run one (possibly coalesced) matvec/rmatvec flush in the
        group's resolved determinism mode."""
        k = len(batch)
        apply_one = engine.matvec if kind == "matvec" else engine.rmatvec
        if k == 1:
            return [apply_one(batch[0].payload, config=config)]
        nt = engine.nt
        nx = batch[0].payload.shape[1]
        block = np.empty((nt, nx, k))
        for j, req in enumerate(batch):
            block[:, :, j] = req.payload
        apply_block = engine.matmat if kind == "matvec" else engine.rmatmat
        out = apply_block(block, config=config, deterministic=deterministic)
        return [np.ascontiguousarray(out[:, :, j]) for j in range(k)]

    def _execute_solve(
        self,
        engine,
        batch: List[_Request],
        config: str,
        options: SolveOptions,
        deterministic: bool,
    ) -> List[np.ndarray]:
        """Run one (possibly block-)CG solve flush."""
        from repro.inverse.cg import block_conjugate_gradient, conjugate_gradient

        forward = ForwardOperator(engine, config=config)
        reg = (
            options.ridge * IdentityOperator(forward.in_shape)
            if options.ridge > 0
            else None
        )
        hess = GaussNewtonHessian(forward, noise_std=options.noise_std, reg=reg)
        inv_var = 1.0 / options.noise_std**2
        if len(batch) == 1:
            rhs = engine.rmatvec(batch[0].payload, config=config) * inv_var
            res = conjugate_gradient(
                hess.apply, rhs, tol=options.tol, maxiter=options.maxiter
            )
            return [res.x]
        k = len(batch)
        nt, nd = batch[0].payload.shape
        d_block = np.empty((nt, nd, k))
        for j, req in enumerate(batch):
            d_block[:, :, j] = req.payload
        rhs = (
            engine.rmatmat(d_block, config=config, deterministic=deterministic)
            * inv_var
        )
        res = block_conjugate_gradient(
            hess.apply_block, rhs, tol=options.tol, maxiter=options.maxiter
        )
        return [np.ascontiguousarray(res.X[:, :, j]) for j in range(k)]
