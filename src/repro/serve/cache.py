"""Byte-budgeted LRU cache of solver engines for the serving layer.

A long-lived solver service sees many distinct operators — different
tenants' problems, different geometries — but only a bounded slice of
device memory to keep them resident.  Each cached engine is expensive in
exactly the ways the repo already models: the precomputed spectrum
``F_hat`` (per cached precision), the FFT-plan dictionary, and the
workspace arena the allocation-free pipeline writes into.  This module
provides:

* :func:`operator_fingerprint` — a stable content+geometry digest of a
  :class:`~repro.core.toeplitz.BlockTriangularToeplitz`, the key the
  coalescer groups requests under (engines with equal fingerprints
  compute identical answers, so their requests may share a blocked
  pipeline pass).  Anything that changes an engine's *numerics* must be
  keyed separately: the engines' ``geometry_key()`` carries the
  ``reduction`` mode, so a ``reduction="pairwise"`` engine never
  aliases a fast one in the cache, and the service keys each request's
  resolved determinism mode into its coalescing group;
* :func:`engine_footprint` — the modeled resident bytes of a built
  engine (spectrum copies + arenas, grid-wide for the parallel engine);
* :class:`EngineCache` — an LRU of built engines charged against a
  :class:`~repro.gpu.memory.DeviceAllocator` constructed with a
  ``capacity`` equal to the byte budget.  Admission *allocates* the
  engine's footprint; when the allocator refuses, least-recently-used
  entries are evicted (arenas released, registration freed) until the
  new engine fits.  The allocator enforces the budget by construction —
  ``in_use`` can never exceed it — and ``peak`` records the high-water
  mark the service actually reached.

The cache is deliberately synchronous and unlocked: the service runs
all engine work on one executor thread, which is also what keeps each
engine's workspace arena single-writer (see
:meth:`repro.util.workspace.Workspace.begin_apply`).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Union

import numpy as np

from repro.core.elastic import ElasticEngine
from repro.core.matvec import FFTMatvec
from repro.core.parallel import ParallelFFTMatvec
from repro.core.toeplitz import BlockTriangularToeplitz
from repro.gpu.memory import Allocation, DeviceAllocator, OutOfMemoryError
from repro.gpu.specs import GPUSpec, get_gpu
from repro.util.validation import ReproError

__all__ = [
    "operator_fingerprint",
    "engine_footprint",
    "CacheStats",
    "EngineCache",
]

Engine = Union[FFTMatvec, ParallelFFTMatvec, ElasticEngine]


def operator_fingerprint(
    matrix: Union[BlockTriangularToeplitz, np.ndarray],
    extra: Tuple = (),
) -> str:
    """Stable hex digest of an operator's kernel content and geometry.

    Hashes the block-Toeplitz kernel's shape and bytes (SHA-1, first 16
    hex chars) plus any ``extra`` geometry the caller wants folded in
    (e.g. an engine :meth:`~repro.core.matvec.FFTMatvec.geometry_key`).
    Two operators with equal fingerprints produce bitwise-equal engine
    results, which is what licenses the coalescer to batch their
    requests together.
    """
    mat = (
        matrix
        if isinstance(matrix, BlockTriangularToeplitz)
        else BlockTriangularToeplitz(np.asarray(matrix))
    )
    blocks = np.ascontiguousarray(mat.blocks, dtype=np.float64)
    h = hashlib.sha1()
    h.update(repr(blocks.shape).encode())
    h.update(blocks.tobytes())
    if extra:
        h.update(repr(tuple(extra)).encode())
    return h.hexdigest()[:16]


def _single_engine_bytes(engine: FFTMatvec) -> int:
    """Resident bytes of one single-device engine (spectra + arena)."""
    be = engine.backend
    total = int(engine._fhat_host.nbytes)
    for cached in engine._fhat.values():
        total += int(be.nbytes(cached))
    for cached in engine._fhat_conj.values():
        total += int(be.nbytes(cached))
    if engine.workspace is not None:
        total += int(engine.workspace.nbytes)
    return total


def engine_footprint(engine: Engine) -> int:
    """Modeled resident bytes of a built engine.

    Counts what eviction would actually reclaim: the host spectrum, the
    per-precision backend spectrum copies (plain and conjugated), and
    the workspace arena(s).  For :class:`ParallelFFTMatvec` this sums
    every rank engine plus the grid-level staging arena — the cache
    budget covers the whole simulated machine's share, matching
    :meth:`~repro.core.parallel.ParallelFFTMatvec.workspace_report`.
    """
    if isinstance(engine, ElasticEngine):
        # Measure the *current* grid engine — after a recovery reshape
        # the footprint is the survivors', not the original grid's.
        return engine_footprint(engine.engine)
    if isinstance(engine, ParallelFFTMatvec):
        total = sum(_single_engine_bytes(e) for e in engine.engines.values())
        if engine.workspace is not None:
            total += int(engine.workspace.nbytes)
        return total
    return _single_engine_bytes(engine)


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time cache counters (see :meth:`EngineCache.stats`)."""

    entries: int  # engines currently resident
    hits: int  # get() calls served from the cache
    misses: int  # get() calls that built an engine
    evictions: int  # engines dropped (LRU pressure or explicit)
    stale_evictions: int  # engines dropped because their grid reshaped
    budget_bytes: int  # the configured byte budget (allocator capacity)
    in_use_bytes: int  # bytes currently charged against the budget
    peak_bytes: int  # high-water mark of in_use_bytes


def _engine_geometry(engine: Engine) -> Optional[Tuple]:
    """The engine's geometry key, or None for engines without one."""
    key_fn = getattr(engine, "geometry_key", None)
    if key_fn is None:
        return None
    return key_fn()


@dataclass
class _CacheEntry:
    """A resident engine plus its budget registration."""

    engine: Engine
    alloc: Allocation
    footprint: int  # unrounded bytes (alloc.nbytes is alignment-rounded)
    geometry: Optional[Tuple] = None  # geometry_key() at admission


class EngineCache:
    """LRU engine cache under a :class:`DeviceAllocator` byte budget.

    Parameters
    ----------
    budget_bytes:
        Total resident bytes allowed across all cached engines.  The
        budget is enforced by a private allocator constructed with this
        ``capacity`` — admission that would exceed it either evicts
        least-recently-used engines until it fits or raises
        :class:`~repro.gpu.memory.OutOfMemoryError` (one engine larger
        than the whole budget cannot be admitted at all).
    spec:
        GPU spec (name or :class:`~repro.gpu.specs.GPUSpec`) the budget
        allocator reports under; purely cosmetic for accounting.
    alignment:
        Allocator rounding granularity (bytes).
    """

    def __init__(
        self,
        budget_bytes: int,
        spec: Union[str, GPUSpec] = "MI250X",
        alignment: int = 256,
    ) -> None:
        if budget_bytes <= 0:
            raise ReproError(f"budget_bytes must be positive, got {budget_bytes}")
        self.budget_bytes = int(budget_bytes)
        gspec = get_gpu(spec) if isinstance(spec, str) else spec
        self.allocator = DeviceAllocator(
            gspec, alignment=alignment, capacity=self.budget_bytes
        )
        self._entries: "OrderedDict[str, _CacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.stale_evictions = 0

    # -- admission / lookup ---------------------------------------------------
    def get(
        self, key: str, builder: Optional[Callable[[], Engine]] = None
    ) -> Engine:
        """Return the engine for ``key``, building it on a miss.

        A hit refreshes the entry's LRU position.  A miss calls
        ``builder()`` (raising :class:`ReproError` when none is given),
        measures the new engine's footprint and charges it against the
        budget, evicting least-recently-used entries as needed.

        A hit also re-checks the engine's ``geometry_key()`` against the
        one recorded at admission.  Elastic engines reshape in place
        when a rank dies mid-run, and a reshaped engine must never be
        served as if it still ran the admitted geometry — its per-rank
        shapes, collectives and footprint all changed.  A mismatch
        evicts the stale entry (counted in ``stale_evictions``) and
        rebuilds through ``builder`` as if it were a miss.
        """
        entry = self._entries.get(key)
        if entry is not None:
            geometry = _engine_geometry(entry.engine)
            if geometry != entry.geometry:
                self.stale_evictions += 1
                self.evict(key)
            else:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry.engine
        if builder is None:
            raise ReproError(f"engine {key!r} is not cached and no builder given")
        self.misses += 1
        engine = builder()
        footprint = engine_footprint(engine)
        alloc = self._reserve(footprint, tag=f"engine/{key}")
        self._entries[key] = _CacheEntry(
            engine, alloc, footprint, geometry=_engine_geometry(engine)
        )
        return engine

    def update_footprint(self, key: str) -> int:
        """Re-measure an entry's footprint and true-up its budget charge.

        Engines grow lazily (precision spectrum copies on first use,
        arena buffers on the first apply of a new shape), so the service
        calls this after every flush.  Growth that no longer fits evicts
        LRU peers; if the engine alone exceeds the whole budget it is
        dropped and :class:`OutOfMemoryError` propagates.  Returns the
        new footprint in bytes.
        """
        entry = self._entries.get(key)
        if entry is None:
            raise ReproError(f"engine {key!r} is not cached")
        # An elastic engine that recovered *during* the flush reshaped in
        # place and finished the pass on the new grid; re-record its
        # geometry so the next hit serves it instead of evicting it.
        entry.geometry = _engine_geometry(entry.engine)
        footprint = engine_footprint(entry.engine)
        if footprint == entry.footprint:
            return footprint
        # Delist before releasing the old charge: the eviction loop
        # inside _reserve walks the LRU and must not see (and free a
        # second time) the very entry being re-measured.
        del self._entries[key]
        self.allocator.free(entry.alloc)
        try:
            entry.alloc = self._reserve(footprint, tag=f"engine/{key}")
        except OutOfMemoryError:
            self._release_engine(entry.engine)
            self.evictions += 1
            raise
        entry.footprint = footprint
        self._entries[key] = entry  # re-admitted as most-recently used
        return footprint

    def _reserve(self, nbytes: int, tag: str) -> Allocation:
        """Charge ``nbytes`` against the budget, evicting LRU to fit."""
        while True:
            try:
                return self.allocator.malloc(nbytes, tag=tag)
            except OutOfMemoryError:
                if self.evict_lru() is None:
                    raise

    # -- eviction -------------------------------------------------------------
    @staticmethod
    def _release_engine(engine: Engine) -> None:
        """Free an evicted engine's arenas so the bytes really return."""
        if isinstance(engine, ElasticEngine):
            engine = engine.engine
        if isinstance(engine, ParallelFFTMatvec):
            for rank_engine in engine.engines.values():
                if rank_engine.workspace is not None:
                    rank_engine.workspace.release()
            if engine.workspace is not None:
                engine.workspace.release()
        elif engine.workspace is not None:
            engine.workspace.release()

    def evict_lru(self) -> Optional[str]:
        """Evict the least-recently-used engine; returns its key (or
        None when the cache is already empty)."""
        if not self._entries:
            return None
        key, entry = self._entries.popitem(last=False)
        self.allocator.free(entry.alloc)
        self._release_engine(entry.engine)
        self.evictions += 1
        return key

    def evict(self, key: str) -> None:
        """Evict a specific engine (no-op when absent)."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        self.allocator.free(entry.alloc)
        self._release_engine(entry.engine)
        self.evictions += 1

    def clear(self) -> None:
        """Evict everything (budget returns to fully free)."""
        while self.evict_lru() is not None:
            pass

    # -- introspection --------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        """Membership test without touching LRU order."""
        return key in self._entries

    def __len__(self) -> int:
        """Number of resident engines."""
        return len(self._entries)

    def keys(self) -> Tuple[str, ...]:
        """Resident keys, least- to most-recently used."""
        return tuple(self._entries.keys())

    def stats(self) -> CacheStats:
        """Snapshot of hit/miss/eviction counters and budget usage."""
        return CacheStats(
            entries=len(self._entries),
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            stale_evictions=self.stale_evictions,
            budget_bytes=self.budget_bytes,
            in_use_bytes=self.allocator.in_use,
            peak_bytes=self.allocator.peak,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EngineCache(entries={len(self._entries)}, "
            f"in_use={self.allocator.in_use}/{self.budget_bytes} B)"
        )
