"""Multi-tenant serving layer over the five-phase solver engines.

The ROADMAP's production north star: many independent users issuing
matvec / rmatvec / solve requests against shared operator geometries.
This package provides the asyncio front end
(:class:`~repro.serve.service.SolverService` — bounded queue,
cross-request coalescing into blocked deterministic pipeline passes,
weighted per-tenant fairness, load-shed backpressure), the byte-budgeted
engine residency layer (:class:`~repro.serve.cache.EngineCache` — LRU
over engines + FFT plans + workspace arenas, charged against a
:class:`~repro.gpu.memory.DeviceAllocator` capacity), and the
Poisson-arrival benchmark driver
(:func:`~repro.serve.bench.run_serving_benchmark`).  See
``docs/SERVING.md`` for the architecture and knobs.
"""

from repro.serve.bench import run_serving_benchmark
from repro.serve.cache import (
    CacheStats,
    EngineCache,
    engine_footprint,
    operator_fingerprint,
)
from repro.serve.service import (
    DeadlineExpiredError,
    ServeError,
    ServiceClosedError,
    ServiceOverloadedError,
    ServiceStats,
    SolveOptions,
    SolverService,
    TenantThrottledError,
    UnknownOperatorError,
)

__all__ = [
    "SolverService",
    "SolveOptions",
    "ServiceStats",
    "EngineCache",
    "CacheStats",
    "engine_footprint",
    "operator_fingerprint",
    "run_serving_benchmark",
    "ServeError",
    "ServiceClosedError",
    "ServiceOverloadedError",
    "TenantThrottledError",
    "DeadlineExpiredError",
    "UnknownOperatorError",
]
