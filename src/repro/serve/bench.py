"""Serving benchmark driver: Poisson arrivals, coalesced vs serve-one.

Shared by ``benchmarks/test_serving.py`` (which writes
``BENCH_serving.json``) and the CLI ``--serve-bench`` mode, so both
report the same experiment: a stream of per-tenant matvec / rmatvec /
solve requests with exponential inter-arrival gaps is driven through
two :class:`~repro.serve.service.SolverService` instances over
identical request traces —

* **coalesced** — the real service (``max_block_k > 1``, micro-batch
  window): concurrent applies on one operator share blocked
  deterministic pipeline passes, and concurrent solves run as one block
  CG (one blocked Hessian pass per iteration for all k systems);
* **serve-one** — the same service with ``max_block_k=1``: every
  request pays a full five-phase pass (every solve its own CG), same
  asyncio/executor overhead.

Each run reports wall-clock throughput (completed requests/s), latency
percentiles (p50/p99 from submit to result), mean flush width, and two
correctness gates: every coalesced matvec/rmatvec result is compared
**bitwise** against a sequential reference engine apply (coalescing
applies must be invisible), and every solve's normal-equations relative
residual must meet the CG tolerance (block CG is
tolerance-equivalent, not bitwise — see ``docs/SERVING.md``).  The
cache section records the byte budget, the allocator peak and whether
the budget held (it always does: the allocator refuses over-budget
admission by construction).
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.matvec import FFTMatvec
from repro.core.operator import (
    ForwardOperator,
    GaussNewtonHessian,
    IdentityOperator,
)
from repro.core.toeplitz import BlockTriangularToeplitz
from repro.serve.cache import EngineCache
from repro.serve.service import SolveOptions, SolverService

__all__ = ["run_serving_benchmark"]


def _percentile_ms(latencies: Sequence[float], q: float) -> float:
    """A latency percentile in milliseconds (NaN when empty)."""
    if not latencies:
        return float("nan")
    return float(np.percentile(np.asarray(latencies), q) * 1e3)


def _make_trace(
    rng: np.random.Generator,
    n_requests: int,
    rate: float,
    nt: int,
    nd: int,
    nm: int,
    tenants: int,
    adjoint_fraction: float,
    solve_fraction: float,
) -> List[Tuple[str, str, np.ndarray, float]]:
    """One arrival trace: (kind, tenant, payload, gap-before) per request.

    Arrival gaps are exponential (Poisson process); the request *kinds*
    follow the exact configured fractions via an evenly spread
    deterministic schedule, so the work content of a trace — and with
    it the measured speedup — does not jitter with the seed.
    """
    trace = []
    n_solve = int(round(solve_fraction * n_requests))
    n_adj = int(round(adjoint_fraction * (n_requests - n_solve)))
    kinds = []
    solve_acc = adj_acc = 0.0
    for i in range(n_requests):
        solve_acc += n_solve / max(1, n_requests)
        if solve_acc >= 1.0:
            solve_acc -= 1.0
            kinds.append("solve")
            continue
        adj_acc += n_adj / max(1, n_requests - n_solve)
        if adj_acc >= 1.0:
            adj_acc -= 1.0
            kinds.append("rmatvec")
        else:
            kinds.append("matvec")
    for i, kind in enumerate(kinds):
        payload = rng.standard_normal((nt, nm) if kind == "matvec" else (nt, nd))
        gap = float(rng.exponential(1.0 / rate))
        trace.append((kind, f"tenant{i % tenants}", payload, gap))
    return trace


async def _drive(
    service: SolverService,
    handle: str,
    trace: List[Tuple[str, str, np.ndarray, float]],
    config: str,
) -> Tuple[List[Optional[np.ndarray]], float]:
    """Submit the trace with its Poisson gaps; return results and wall."""
    results: List[Optional[np.ndarray]] = [None] * len(trace)

    ops = {
        "matvec": service.matvec,
        "rmatvec": service.rmatvec,
        "solve": service.solve,
    }

    async def one(i: int, kind: str, tenant: str, payload: np.ndarray) -> None:
        results[i] = await ops[kind](handle, payload, config=config, tenant=tenant)

    # Absolute-deadline pacing: sleeping per-gap would add ~1 ms of
    # scheduler overhead per request and silently cap the offered load
    # near 1 krps regardless of the nominal rate.  Cumulative deadlines
    # let late submissions catch up instead of pushing everything later.
    deadline = 0.0
    t0 = time.perf_counter()
    tasks = []
    loop = asyncio.get_running_loop()
    for i, (kind, tenant, payload, gap) in enumerate(trace):
        deadline += gap
        wait = t0 + deadline - time.perf_counter()
        if wait > 0:
            await asyncio.sleep(wait)
        tasks.append(loop.create_task(one(i, kind, tenant, payload)))
    await asyncio.gather(*tasks)
    await service.drain()
    wall = time.perf_counter() - t0
    return results, wall


def _run_one(
    matrix: BlockTriangularToeplitz,
    trace: List[Tuple[str, str, np.ndarray, float]],
    config: str,
    max_block_k: int,
    window: float,
    budget_bytes: int,
) -> Tuple[Dict[str, object], List[Optional[np.ndarray]], EngineCache]:
    """Drive one service instance over the trace; summarize its stats."""
    cache = EngineCache(budget_bytes)
    service = SolverService(
        cache,
        max_block_k=max_block_k,
        window=window,
        max_pending=len(trace) + 1,
        deterministic=True,
    )
    handle = service.register(matrix)

    async def main() -> Tuple[List[Optional[np.ndarray]], float]:
        async with service:
            return await _drive(service, handle, trace, config)

    results, wall = asyncio.run(main())
    stats = service.stats()
    summary: Dict[str, object] = {
        "completed": stats.completed,
        "throughput_rps": stats.completed / wall if wall > 0 else float("nan"),
        "wall_s": wall,
        "p50_ms": _percentile_ms(stats.latencies_s, 50),
        "p99_ms": _percentile_ms(stats.latencies_s, 99),
        "engine_passes": stats.flushes,
        "mean_batch": stats.mean_batch,
        "max_batch": stats.max_batch,
        "coalesced_requests": stats.coalesced_requests,
        "rejected": stats.rejected_overload + stats.rejected_tenant,
    }
    return summary, results, cache


def run_serving_benchmark(
    nt: int = 64,
    nd: int = 24,
    nm: int = 96,
    rates: Sequence[float] = (50.0, 2000.0),
    n_requests: int = 240,
    tenants: int = 4,
    max_block_k: int = 16,
    window: float = 0.002,
    budget_mb: float = 128.0,
    adjoint_fraction: float = 0.5,
    solve_fraction: float = 0.2,
    config: str = "ddddd",
    seed: int = 0,
    check_results: bool = True,
    reps: int = 3,
) -> Dict[str, object]:
    """Run the coalesced-vs-serve-one comparison; return the artifact dict.

    For every arrival rate, one Poisson trace of ``n_requests``
    matvec/rmatvec/solve requests across ``tenants`` tenants is
    replayed through a coalescing service and a ``max_block_k=1``
    baseline (fresh engine cache each, ``budget_mb`` megabytes).
    ``solve_fraction`` of the requests are regularized least-squares
    solves; the remaining applies split ``adjoint_fraction`` to
    rmatvec.  Each side replays the trace ``reps`` times and reports
    its best run (the usual best-of-reps timing discipline — applied
    to *both* sides, so the ratio measures coalescing, not scheduler
    noise).  With ``check_results`` every coalesced apply is compared
    bitwise (``np.array_equal``) against a sequential apply on an
    independent reference engine, and every solve's normal-equations
    relative residual is checked against the CG tolerance.  The
    returned dict is the ``BENCH_serving.json`` schema documented in
    ``docs/BENCHMARKS.md``.
    """
    rng = np.random.default_rng(seed)
    matrix = BlockTriangularToeplitz.random(nt, nd, nm, rng=rng, decay=0.02)
    budget_bytes = int(budget_mb * 2**20)
    reps = max(1, int(reps))

    reference: Optional[FFTMatvec] = (
        FFTMatvec(matrix, workspace=True) if check_results else None
    )

    def best_of(trace, k):
        best = None
        for _ in range(reps):
            summary, results, cache = _run_one(
                matrix, trace, config, k, window, budget_bytes
            )
            if best is None or summary["throughput_rps"] > best[0]["throughput_rps"]:
                best = (summary, results, cache)
        assert best is not None
        return best

    rate_rows: List[Dict[str, object]] = []
    cache_stats = None
    for rate in rates:
        trace = _make_trace(
            rng,
            n_requests,
            float(rate),
            nt,
            nd,
            nm,
            tenants,
            adjoint_fraction,
            solve_fraction,
        )
        coalesced, c_results, c_cache = best_of(trace, max_block_k)
        serve_one, _s_results, _ = best_of(trace, 1)
        bitwise = None
        solves_ok = None
        max_rel_residual = None
        if reference is not None:
            bitwise, solves_ok, max_rel_residual = _check_results(
                reference, trace, c_results, config
            )
        coalesced["bitwise_identical"] = bitwise
        coalesced["solves_within_tol"] = solves_ok
        coalesced["max_solve_rel_residual"] = max_rel_residual
        thr_c = float(coalesced["throughput_rps"])  # type: ignore[arg-type]
        thr_s = float(serve_one["throughput_rps"])  # type: ignore[arg-type]
        rate_rows.append(
            {
                "rate_rps": float(rate),
                "n_requests": n_requests,
                "coalesced": coalesced,
                "serve_one": serve_one,
                "speedup": thr_c / thr_s if thr_s > 0 else float("nan"),
            }
        )
        cache_stats = c_cache.stats()

    assert cache_stats is not None
    return {
        "bench": "serving",
        "shape": {"nt": nt, "nd": nd, "nm": nm},
        "config": config,
        "tenants": tenants,
        "max_block_k": max_block_k,
        "window_s": window,
        "adjoint_fraction": adjoint_fraction,
        "solve_fraction": solve_fraction,
        "seed": seed,
        "reps": reps,
        "rates": rate_rows,
        "cache": {
            "budget_bytes": cache_stats.budget_bytes,
            "peak_bytes": cache_stats.peak_bytes,
            "in_use_bytes": cache_stats.in_use_bytes,
            "evictions": cache_stats.evictions,
            "within_budget": cache_stats.peak_bytes <= cache_stats.budget_bytes,
        },
    }


def _check_results(
    reference: FFTMatvec,
    trace: List[Tuple[str, str, np.ndarray, float]],
    results: List[Optional[np.ndarray]],
    config: str,
) -> Tuple[bool, bool, float]:
    """Validate a coalesced run: applies bitwise, solves to tolerance."""
    opts = SolveOptions()
    hess = GaussNewtonHessian(
        ForwardOperator(reference, config=config),
        noise_std=opts.noise_std,
        reg=opts.ridge * IdentityOperator((reference.nt, reference.nm)),
    )
    inv_var = 1.0 / opts.noise_std**2
    bitwise = True
    solves_ok = True
    max_rel = 0.0
    for (kind, _tenant, payload, _gap), got in zip(trace, results):
        if got is None:
            bitwise = solves_ok = False
            continue
        if kind == "solve":
            rhs = reference.rmatvec(payload, config=config) * inv_var
            rel = float(
                np.linalg.norm(hess.apply(got) - rhs) / np.linalg.norm(rhs)
            )
            max_rel = max(max_rel, rel)
            # Block CG stops on the *unpreconditioned* recurrence
            # residual; allow a small slack over tol for the true one.
            if rel > 50.0 * opts.tol:
                solves_ok = False
        else:
            ref = (
                reference.matvec(payload, config=config)
                if kind == "matvec"
                else reference.rmatvec(payload, config=config)
            )
            if not np.array_equal(got, ref):
                bitwise = False
    return bitwise, solves_ok, max_rel
