"""GPU architecture registry.

Numbers are public spec-sheet values for the parts the paper uses
(Section 4: peak memory bandwidths 1.6 / 5.3 / 8 TB/s for MI250X GCD /
MI300X / MI355X; memory capacities 64 / 192 / 288 GB).  FLOP peaks are
included for roofline sanity checks even though FFTMatvec is entirely
memory-bound.

The ``sbgemv_peak_fraction`` fields encode the paper's measured
achieved-bandwidth fractions for the (well-tuned) SBGEMV kernels:
~70% of peak on CDNA2/CDNA3, ~35% on CDNA4 where rocBLAS kernel
parameters had not yet been retuned (Section 4.1.2), and a reduced
single-precision fraction on CDNA4 explaining the smaller mixed-precision
speedup observed there (Section 4.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.util.dtypes import Precision
from repro.util.validation import ReproError

__all__ = ["GPUSpec", "get_gpu", "list_gpus", "MI250X_GCD", "MI300X", "MI355X"]


@dataclass(frozen=True)
class GPUSpec:
    """Static description of a GPU architecture used by the cost models.

    Attributes
    ----------
    name:
        Marketing name, e.g. ``"MI300X"``.
    vendor:
        ``"AMD"`` or ``"NVIDIA"`` (drives the hipify build-system toggle).
    arch:
        Compiler arch string (``gfx90a``, ``gfx942``, ``gfx950``, ``sm_80``...).
    generation:
        Microarchitecture family, e.g. ``"CDNA2"``.
    peak_bandwidth:
        Peak HBM bandwidth in bytes/s.
    memory_bytes:
        HBM capacity in bytes.
    peak_flops:
        Peak vector FLOP/s per precision.
    launch_overhead:
        Fixed per-kernel-launch cost in seconds.
    max_grid:
        Maximum grid dimensions (x, y, z).  The y/z limit of 65535 is what
        the paper's custom permutation kernel has to avoid overflowing.
    wavefront:
        Threads per wavefront/warp (64 on CDNA, 32 on NVIDIA).
    lds_bytes:
        Shared-memory (LDS) bytes per CU; CDNA4 doubles it (Section 4.1.2
        notes the increased LDS capacity of MI355X).
    sbgemv_peak_fraction:
        Fraction of peak bandwidth the tuned SBGEMV kernels achieve, per
        precision — the architecture-level calibration knob.
    gemv_n_peak_fraction:
        Optional override for the *non-transpose* GEMV kernel (defaults
        to ``sbgemv_peak_fraction``).  MI300X's non-transpose kernel is
        "extremely well-tuned ... for this problem size" (Section 4.1.2),
        which is why F runs slightly faster than F* there.
    """

    name: str
    vendor: str
    arch: str
    generation: str
    peak_bandwidth: float
    memory_bytes: float
    peak_flops: Dict[Precision, float] = field(default_factory=dict)
    launch_overhead: float = 4.0e-6
    max_grid: Tuple[int, int, int] = (2**31 - 1, 65535, 65535)
    wavefront: int = 64
    lds_bytes: int = 64 * 1024
    sbgemv_peak_fraction: Dict[Precision, float] = field(default_factory=dict)
    gemv_n_peak_fraction: Dict[Precision, float] = field(default_factory=dict)

    def peak_fraction(self, prec: Precision) -> float:
        """Tuned-kernel achieved fraction of peak bandwidth for ``prec``."""
        return self.sbgemv_peak_fraction.get(Precision.parse(prec), 0.7)

    def gemv_n_fraction(self, prec: Precision) -> float:
        """Non-transpose GEMV fraction (falls back to the SBGEMV one)."""
        prec = Precision.parse(prec)
        return self.gemv_n_peak_fraction.get(prec, self.peak_fraction(prec))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.vendor} {self.name} ({self.arch})"


MI250X_GCD = GPUSpec(
    name="MI250X (Single GCD)",
    vendor="AMD",
    arch="gfx90a",
    generation="CDNA2",
    peak_bandwidth=1.6e12,
    memory_bytes=64e9,
    peak_flops={Precision.DOUBLE: 23.9e12, Precision.SINGLE: 23.9e12},
    launch_overhead=5.0e-6,
    wavefront=64,
    lds_bytes=64 * 1024,
    sbgemv_peak_fraction={Precision.DOUBLE: 0.70, Precision.SINGLE: 0.66},
)

MI300X = GPUSpec(
    name="MI300X",
    vendor="AMD",
    arch="gfx942",
    generation="CDNA3",
    peak_bandwidth=5.3e12,
    memory_bytes=192e9,
    peak_flops={Precision.DOUBLE: 81.7e12, Precision.SINGLE: 163.4e12},
    launch_overhead=4.0e-6,
    wavefront=64,
    lds_bytes=64 * 1024,
    sbgemv_peak_fraction={Precision.DOUBLE: 0.70, Precision.SINGLE: 0.64},
    # Section 4.1.2: the non-transpose GEMV is exceptionally well-tuned
    # on CDNA3 for the FFTMatvec shape, making F faster than F*.
    gemv_n_peak_fraction={Precision.DOUBLE: 0.77, Precision.SINGLE: 0.70},
)

MI355X = GPUSpec(
    name="MI355X",
    vendor="AMD",
    arch="gfx950",
    generation="CDNA4",
    peak_bandwidth=8.0e12,
    memory_bytes=288e9,
    peak_flops={Precision.DOUBLE: 78.6e12, Precision.SINGLE: 157.3e12},
    launch_overhead=4.0e-6,
    wavefront=64,
    lds_bytes=160 * 1024,
    # rocBLAS kernels not yet tuned for CDNA4 (Section 4.1.2): the paper
    # reports roughly half the CDNA2/3 fraction of peak, with single
    # precision hit hardest — which is why MI355X shows only a ~40%
    # mixed-precision speedup (vs 70-95% elsewhere) while still edging
    # out MI300X in absolute time per the Fig. 2 bandwidth trend.
    sbgemv_peak_fraction={Precision.DOUBLE: 0.50, Precision.SINGLE: 0.33},
)

A100 = GPUSpec(
    name="A100-SXM4-80GB",
    vendor="NVIDIA",
    arch="sm_80",
    generation="Ampere",
    peak_bandwidth=2.0e12,
    memory_bytes=80e9,
    peak_flops={Precision.DOUBLE: 9.7e12, Precision.SINGLE: 19.5e12},
    launch_overhead=3.5e-6,
    wavefront=32,
    lds_bytes=164 * 1024,
    sbgemv_peak_fraction={Precision.DOUBLE: 0.72, Precision.SINGLE: 0.70},
)

H100 = GPUSpec(
    name="H100-SXM5",
    vendor="NVIDIA",
    arch="sm_90",
    generation="Hopper",
    peak_bandwidth=3.35e12,
    memory_bytes=80e9,
    peak_flops={Precision.DOUBLE: 33.5e12, Precision.SINGLE: 66.9e12},
    launch_overhead=3.0e-6,
    wavefront=32,
    lds_bytes=228 * 1024,
    sbgemv_peak_fraction={Precision.DOUBLE: 0.72, Precision.SINGLE: 0.70},
)

_REGISTRY: Dict[str, GPUSpec] = {}


def _register(spec: GPUSpec, *aliases: str) -> None:
    keys = {spec.name.lower(), spec.arch.lower(), *(a.lower() for a in aliases)}
    for k in keys:
        _REGISTRY[k] = spec


_register(MI250X_GCD, "mi250x", "mi250x-gcd", "frontier")
_register(MI300X, "mi300x")
_register(MI355X, "mi355x")
_register(A100, "a100")
_register(H100, "h100")


def get_gpu(name: str) -> GPUSpec:
    """Look up a GPU spec by name/arch/alias (case-insensitive)."""
    key = str(name).strip().lower()
    if key not in _REGISTRY:
        known = sorted({s.name for s in _REGISTRY.values()})
        raise ReproError(f"unknown GPU {name!r}; known: {known}")
    return _REGISTRY[key]


def list_gpus() -> Tuple[GPUSpec, ...]:
    """All registered specs, deduplicated, in a stable order."""
    seen, out = set(), []
    for spec in _REGISTRY.values():
        if id(spec) not in seen:
            seen.add(id(spec))
            out.append(spec)
    return tuple(sorted(out, key=lambda s: (s.vendor, s.name)))
