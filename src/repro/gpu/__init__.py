"""Simulated GPU substrate.

The paper benchmarks AMD Instinct MI250X / MI300X / MI355X hardware.  We
have no GPUs, so this package provides:

* :mod:`repro.gpu.specs` — an architecture registry (peak bandwidth,
  peak FLOP rates per precision, launch overheads, CDNA generation) for
  the paper's GPUs plus a few NVIDIA parts used in portability tests.
* :mod:`repro.gpu.bandwidth` — achieved-bandwidth models: every FFTMatvec
  phase is memory-bound, so kernel cost = bytes / (efficiency * peak BW)
  + launch overhead, with efficiency curves calibrated to the paper.
* :mod:`repro.gpu.memory` — a device memory allocator that tracks
  capacity (64/192/288 GB) and catches leaks/double frees in tests.
* :mod:`repro.gpu.kernel` — kernel-launch descriptors with grid/block
  geometry validation (max grid dims, the y/z overflow issue that the
  paper's custom permutation kernel works around).
* :mod:`repro.gpu.device` — ties the above to a :class:`SimClock`.
"""

from repro.gpu.specs import GPUSpec, get_gpu, list_gpus, MI250X_GCD, MI300X, MI355X
from repro.gpu.memory import DeviceAllocator, OutOfMemoryError, Allocation
from repro.gpu.kernel import KernelLaunch, LaunchConfigError, Dim3
from repro.gpu.device import SimulatedDevice
from repro.gpu.bandwidth import stream_efficiency, achieved_bandwidth, memcpy_time

__all__ = [
    "GPUSpec",
    "get_gpu",
    "list_gpus",
    "MI250X_GCD",
    "MI300X",
    "MI355X",
    "DeviceAllocator",
    "OutOfMemoryError",
    "Allocation",
    "KernelLaunch",
    "LaunchConfigError",
    "Dim3",
    "SimulatedDevice",
    "stream_efficiency",
    "achieved_bandwidth",
    "memcpy_time",
]
