"""Achieved-bandwidth models for memory-bound kernels.

Every phase of FFTMatvec is memory-bound (paper Section 4.1.2), so the
cost of a kernel is::

    time = launch_overhead + bytes_moved / (efficiency * peak_bandwidth)

The interesting modeling is in ``efficiency``:

* :func:`stream_efficiency` — a saturating curve for simple streaming
  kernels (pad/unpad/cast/reorder): small transfers are launch- and
  occupancy-limited, large transfers approach the STREAM fraction of peak.
* :func:`grid_efficiency` — penalizes kernels that launch many blocks
  with very little work each, the exact pathology of the original rocBLAS
  transpose SBGEMV for short-and-wide matrices (Section 3.1.1: "the
  conjugate transpose kernel launches many gridblocks that each has very
  little work").

These curves are intentionally smooth and monotone so property tests can
assert e.g. that efficiency never exceeds the STREAM fraction and
increases with work per block.
"""

from __future__ import annotations

import math

from repro.gpu.specs import GPUSpec

__all__ = [
    "STREAM_FRACTION",
    "stream_efficiency",
    "grid_efficiency",
    "achieved_bandwidth",
    "memcpy_time",
    "kernel_time",
]

# Fraction of spec-sheet peak a perfectly coalesced streaming kernel
# achieves (STREAM triad style). Common across the modeled architectures.
STREAM_FRACTION = 0.85

# Bytes of in-flight traffic needed to reach half of the saturated
# bandwidth; models how small kernels cannot fill the memory system.
_HALF_SATURATION_BYTES = 4.0e6


def stream_efficiency(bytes_moved: float, spec: GPUSpec) -> float:
    """Efficiency (0..STREAM_FRACTION] of a streaming kernel.

    A rational saturating model: eff = F * b / (b + b_half). Monotone
    increasing in bytes, approaching the STREAM fraction from below.
    """
    if bytes_moved <= 0:
        return STREAM_FRACTION  # zero-byte kernels cost only launch overhead
    b = float(bytes_moved)
    return STREAM_FRACTION * b / (b + _HALF_SATURATION_BYTES)


# A block needs roughly this many bytes of work to hide memory latency;
# below it the SMs/CUs idle between dependent loads.
_BLOCK_WORK_HALF_BYTES = 8.0e3


def grid_efficiency(
    bytes_moved: float,
    blocks: int,
    bytes_per_block: float,
    spec: GPUSpec,
) -> float:
    """Efficiency of a kernel whose grid geometry may starve the device.

    Combines the streaming saturation with a work-per-block factor: blocks
    doing tiny dot products (the rocBLAS transpose SBGEMV pathology) reach
    only a fraction of the achievable bandwidth, no matter the total size.
    """
    base = stream_efficiency(bytes_moved, spec)
    if blocks <= 0:
        return base
    w = max(float(bytes_per_block), 0.0)
    work_factor = w / (w + _BLOCK_WORK_HALF_BYTES)
    # Even degenerate geometry keeps some floor throughput.
    return base * max(work_factor, 0.08)


def achieved_bandwidth(bytes_moved: float, spec: GPUSpec, efficiency: float) -> float:
    """Bandwidth in bytes/s actually achieved given an efficiency."""
    eff = min(max(efficiency, 1e-4), 1.0)
    return eff * spec.peak_bandwidth


def kernel_time(bytes_moved: float, spec: GPUSpec, efficiency: float) -> float:
    """Seconds for a memory-bound kernel: launch + bytes / achieved BW."""
    bw = achieved_bandwidth(bytes_moved, spec, efficiency)
    return spec.launch_overhead + float(bytes_moved) / bw


def memcpy_time(bytes_moved: float, spec: GPUSpec) -> float:
    """Device-to-device copy time (read + write traffic counted)."""
    traffic = 2.0 * float(bytes_moved)
    eff = stream_efficiency(traffic, spec)
    return kernel_time(traffic, spec, eff)


def log2ceil(n: int) -> int:
    """ceil(log2(n)) for n >= 1 (0 for n == 1)."""
    if n < 1:
        raise ValueError(f"log2ceil requires n >= 1, got {n}")
    return int(math.ceil(math.log2(n))) if n > 1 else 0
