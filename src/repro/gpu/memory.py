"""Device memory allocator simulation.

Tracks allocations against the device's HBM capacity so that tests and
examples can verify, e.g., that a 1-billion-parameter problem fits in the
aggregate memory of 640 MI250X GCDs but not 512 (paper Section 4.2.2),
and that the matvec engine frees every temporary it allocates.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional

from repro.gpu.specs import GPUSpec
from repro.util.validation import ReproError

__all__ = ["Allocation", "DeviceAllocator", "OutOfMemoryError"]


class OutOfMemoryError(ReproError):
    """Raised when an allocation exceeds the device's remaining capacity."""


@dataclass(frozen=True)
class Allocation:
    """Handle to a live device allocation."""

    handle: int
    nbytes: int
    tag: str = ""


class DeviceAllocator:
    """Capacity-tracking allocator with leak detection.

    Alignment follows real allocators: requests are rounded up to
    ``alignment`` bytes (256 by default, matching hipMalloc granularity).
    ``capacity`` overrides the spec's HBM size — the serving-layer
    :class:`~repro.serve.cache.EngineCache` uses this to enforce a byte
    budget smaller than (or independent of) any one device.
    """

    def __init__(
        self, spec: GPUSpec, alignment: int = 256, capacity: Optional[int] = None
    ) -> None:
        if alignment <= 0 or (alignment & (alignment - 1)) != 0:
            raise ReproError(f"alignment must be a positive power of two, got {alignment}")
        self.spec = spec
        self.alignment = alignment
        self._capacity = int(spec.memory_bytes if capacity is None else capacity)
        if self._capacity <= 0:
            raise ReproError(f"capacity must be positive, got {self._capacity}")
        self._live: Dict[int, Allocation] = {}
        self._in_use = 0
        self._peak = 0
        self._counter = itertools.count(1)
        self.n_allocs = 0
        self.n_frees = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def in_use(self) -> int:
        """Bytes currently allocated (after alignment rounding)."""
        return self._in_use

    @property
    def peak(self) -> int:
        """High-water mark of bytes in use."""
        return self._peak

    @property
    def free_bytes(self) -> int:
        return self._capacity - self._in_use

    def live_allocations(self) -> tuple:
        """Snapshot of live allocations (for leak reporting in tests)."""
        return tuple(self._live.values())

    def _rounded(self, nbytes: int) -> int:
        if nbytes < 0:
            raise ReproError(f"allocation size must be non-negative, got {nbytes}")
        a = self.alignment
        return ((int(nbytes) + a - 1) // a) * a

    def malloc(self, nbytes: int, tag: str = "") -> Allocation:
        """Allocate ``nbytes`` (rounded up to alignment)."""
        size = self._rounded(nbytes)
        if self._in_use + size > self._capacity:
            raise OutOfMemoryError(
                f"device {self.spec.name}: requested {size} B with "
                f"{self.free_bytes} B free of {self._capacity} B"
            )
        alloc = Allocation(handle=next(self._counter), nbytes=size, tag=tag)
        self._live[alloc.handle] = alloc
        self._in_use += size
        self._peak = max(self._peak, self._in_use)
        self.n_allocs += 1
        return alloc

    def free(self, alloc: Allocation) -> None:
        """Free an allocation; double frees raise."""
        if alloc.handle not in self._live:
            raise ReproError(
                f"double free or foreign allocation (handle={alloc.handle}, tag={alloc.tag!r})"
            )
        del self._live[alloc.handle]
        self._in_use -= alloc.nbytes
        self.n_frees += 1

    def assert_no_leaks(self) -> None:
        """Raise if any allocation is still live (used by tests)."""
        if self._live:
            tags = sorted(a.tag or f"handle{a.handle}" for a in self._live.values())
            raise ReproError(f"leaked device allocations: {tags}")

    def reset(self) -> None:
        """Drop all allocations and statistics."""
        self._live.clear()
        self._in_use = 0
        self._peak = 0
        self.n_allocs = 0
        self.n_frees = 0
