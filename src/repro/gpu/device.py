"""The simulated device: memory + clock + launch accounting.

:class:`SimulatedDevice` is the execution substrate every higher layer
(HIP runtime shim, rocBLAS kernels, FFT plans, matvec engine) runs on.
It owns a :class:`~repro.util.timing.SimClock` and a
:class:`~repro.gpu.memory.DeviceAllocator`, validates kernel geometry,
and converts kernel traffic into simulated time through the bandwidth
model.

Time is charged to the clock directly (serial execution), or — when a
caller supplies a :class:`~repro.util.timing.Stream` via
:meth:`SimulatedDevice.on_stream` — onto that stream's cursor, so a
timeline scheduler can overlap device work with communication or host
routines and realize only the critical path as wall time.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Union

from repro.gpu.bandwidth import kernel_time, memcpy_time, stream_efficiency
from repro.gpu.kernel import KernelLaunch
from repro.gpu.memory import DeviceAllocator
from repro.gpu.specs import GPUSpec, get_gpu
from repro.util.timing import SimClock, Stream

__all__ = ["SimulatedDevice", "LaunchRecord"]


@dataclass(frozen=True)
class LaunchRecord:
    """Bookkeeping entry for one executed kernel launch."""

    name: str
    time: float
    bytes_moved: float
    blocks: int
    phase: str = ""


@dataclass
class DeviceStats:
    """Aggregate counters for a device's lifetime."""

    launches: int = 0
    bytes_moved: float = 0.0
    kernel_seconds: float = 0.0
    per_kernel: Dict[str, float] = field(default_factory=dict)


class SimulatedDevice:
    """A single simulated GPU.

    Parameters
    ----------
    spec:
        A :class:`GPUSpec` or a registry name like ``"MI300X"``.
    clock:
        Optional shared clock (multi-GPU simulations share one clock per
        rank); a fresh clock is created when omitted.
    """

    def __init__(
        self,
        spec: Union[GPUSpec, str],
        clock: Optional[SimClock] = None,
        record_launches: bool = False,
    ) -> None:
        self.spec = get_gpu(spec) if isinstance(spec, str) else spec
        self.clock = clock if clock is not None else SimClock()
        self.allocator = DeviceAllocator(self.spec)
        self.stats = DeviceStats()
        self._record = record_launches
        self.launch_log: List[LaunchRecord] = []
        self.stream: Optional[Stream] = None

    # -- stream routing ---------------------------------------------------
    @contextlib.contextmanager
    def on_stream(self, stream: Optional[Stream]) -> Iterator[None]:
        """Charge all work inside the block onto ``stream``.

        Phase attribution still lands on the clock (streams attribute at
        charge time); only the wall-time accounting moves to the stream,
        to be realized at the owning timeline's next sync.  ``None``
        restores direct clock charging.
        """
        prev = self.stream
        self.stream = stream
        try:
            yield
        finally:
            self.stream = prev

    def _advance(self, seconds: float) -> None:
        if self.stream is not None:
            self.stream.charge(seconds)
        else:
            self.clock.advance(seconds)

    # -- memory ----------------------------------------------------------
    def malloc(self, nbytes: int, tag: str = ""):
        """Allocate device memory (tracked)."""
        return self.allocator.malloc(nbytes, tag=tag)

    def free(self, alloc) -> None:
        """Release a device allocation."""
        self.allocator.free(alloc)

    def memcpy(self, nbytes: int, kind: str = "d2d") -> float:
        """Simulate a copy; host<->device goes over a PCIe/IF link model.

        Returns the simulated duration and advances the clock.
        """
        if kind == "d2d":
            t = memcpy_time(nbytes, self.spec)
        elif kind in ("h2d", "d2h"):
            # Host link: ~64 GB/s (Infinity Fabric / PCIe gen5-ish) + 10us.
            t = 10e-6 + float(nbytes) / 64e9
        else:
            raise ValueError(f"unknown memcpy kind {kind!r}")
        self._advance(t)
        return t

    # -- kernels ---------------------------------------------------------
    def launch(self, kernel: KernelLaunch, phase: str = "") -> float:
        """Validate and execute a kernel launch; returns simulated seconds.

        Cost model: if the kernel provides an ``efficiency_hint`` it is
        used directly; otherwise a streaming efficiency is derived from
        the total traffic.
        """
        kernel.validate(self.spec)
        if kernel.efficiency_hint > 0:
            eff = kernel.efficiency_hint
        else:
            eff = stream_efficiency(kernel.bytes_moved, self.spec)
        t = kernel_time(kernel.bytes_moved, self.spec, eff)
        self._advance(t)
        self.stats.launches += 1
        self.stats.bytes_moved += kernel.bytes_moved
        self.stats.kernel_seconds += t
        self.stats.per_kernel[kernel.name] = (
            self.stats.per_kernel.get(kernel.name, 0.0) + t
        )
        if self._record:
            self.launch_log.append(
                LaunchRecord(
                    name=kernel.name,
                    time=t,
                    bytes_moved=kernel.bytes_moved,
                    blocks=kernel.blocks,
                    phase=phase,
                )
            )
        return t

    # -- introspection ----------------------------------------------------
    def kernel_seconds(self, name: str) -> float:
        """Total simulated seconds spent in kernels with this name."""
        return self.stats.per_kernel.get(name, 0.0)

    def reset_stats(self) -> None:
        """Clear launch counters and the launch log."""
        self.stats = DeviceStats()
        self.launch_log.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimulatedDevice({self.spec.name!r}, t={self.clock.now:.6f}s)"
