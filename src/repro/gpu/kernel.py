"""Kernel-launch descriptors and geometry validation.

A :class:`KernelLaunch` captures what a CUDA/HIP launch specifies: grid
and block dimensions plus the traffic the kernel generates.  The device
validates grid limits — notably the 65535 cap on the y and z dimensions
that the paper's custom permutation kernel must avoid overflowing
(Section 3.1: "a modification ... to avoid overflowing the maximum number
of grid blocks that can be launched in the y and z dimensions").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.gpu.specs import GPUSpec
from repro.util.validation import ReproError

__all__ = ["Dim3", "KernelLaunch", "LaunchConfigError"]


class LaunchConfigError(ReproError):
    """Invalid grid/block geometry for the target device."""


@dataclass(frozen=True)
class Dim3:
    """CUDA-style 3-component dimension."""

    x: int = 1
    y: int = 1
    z: int = 1

    def __post_init__(self) -> None:
        for axis in ("x", "y", "z"):
            v = getattr(self, axis)
            if not isinstance(v, int) or v < 1:
                raise LaunchConfigError(f"Dim3.{axis} must be a positive int, got {v!r}")

    @property
    def total(self) -> int:
        return self.x * self.y * self.z

    def as_tuple(self) -> Tuple[int, int, int]:
        """(x, y, z) as a plain tuple."""
        return (self.x, self.y, self.z)


_MAX_THREADS_PER_BLOCK = 1024


@dataclass(frozen=True)
class KernelLaunch:
    """One kernel launch: name, geometry, and memory traffic.

    ``bytes_read``/``bytes_written`` describe the HBM traffic the kernel
    generates; the device turns them into simulated time via the bandwidth
    model.  ``efficiency_hint`` (optional, 0..1) lets a kernel override the
    default streaming-efficiency estimate — the SBGEMV kernels compute
    their own geometry-aware efficiency.
    """

    name: str
    grid: Dim3
    block: Dim3
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    flops: float = 0.0
    efficiency_hint: float = -1.0

    @property
    def bytes_moved(self) -> float:
        return float(self.bytes_read) + float(self.bytes_written)

    @property
    def blocks(self) -> int:
        return self.grid.total

    def validate(self, spec: GPUSpec) -> None:
        """Check geometry against the device's limits."""
        gx, gy, gz = self.grid.as_tuple()
        mx, my, mz = spec.max_grid
        if gx > mx or gy > my or gz > mz:
            raise LaunchConfigError(
                f"kernel {self.name!r}: grid {self.grid.as_tuple()} exceeds "
                f"device max {spec.max_grid}"
            )
        if self.block.total > _MAX_THREADS_PER_BLOCK:
            raise LaunchConfigError(
                f"kernel {self.name!r}: block {self.block.as_tuple()} has "
                f"{self.block.total} threads > {_MAX_THREADS_PER_BLOCK}"
            )
        if self.block.total % spec.wavefront != 0 and self.block.total >= spec.wavefront:
            # Not an error on real hardware, but always a performance bug in
            # this codebase's kernels; fail fast in simulation.
            raise LaunchConfigError(
                f"kernel {self.name!r}: block size {self.block.total} is not a "
                f"multiple of the wavefront ({spec.wavefront})"
            )
