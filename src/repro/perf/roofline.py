"""Roofline utilities.

The paper measures everything in bandwidth because "the entire
application is memory-bound" (Section 4.1.2).  These helpers make that
claim checkable: each phase's arithmetic intensity (FLOPs per byte of
HBM traffic) sits far below every modeled GPU's machine balance, so the
bandwidth-only cost model is justified.
"""

from __future__ import annotations

import math

from repro.gpu.specs import GPUSpec
from repro.util.dtypes import Precision

__all__ = [
    "arithmetic_intensity",
    "machine_balance",
    "is_memory_bound",
    "roofline_time",
    "sbgemv_intensity",
    "fft_intensity",
]


def arithmetic_intensity(flops: float, bytes_moved: float) -> float:
    """FLOPs per byte of memory traffic."""
    if bytes_moved <= 0:
        raise ValueError(f"bytes_moved must be positive, got {bytes_moved}")
    return flops / bytes_moved


def machine_balance(spec: GPUSpec, precision: Precision) -> float:
    """FLOPs/byte at which the GPU transitions to compute-bound."""
    return spec.peak_flops[Precision.parse(precision)] / spec.peak_bandwidth


def is_memory_bound(intensity: float, spec: GPUSpec, precision: Precision) -> bool:
    """True when a kernel of this intensity is bandwidth-limited."""
    return intensity < machine_balance(spec, precision)


def roofline_time(
    flops: float, bytes_moved: float, spec: GPUSpec, precision: Precision
) -> float:
    """max(compute time, memory time) under peak rates."""
    t_mem = bytes_moved / spec.peak_bandwidth
    t_cmp = flops / spec.peak_flops[Precision.parse(precision)]
    return max(t_mem, t_cmp)


def sbgemv_intensity(m: int, n: int, itemsize: int, is_complex: bool) -> float:
    """Intensity of a batched GEMV: ~2 FLOPs (8 if complex) per element
    read once from HBM."""
    flops_per_elem = 8.0 if is_complex else 2.0
    return arithmetic_intensity(
        flops_per_elem * m * n, float(m) * n * itemsize
    )


def fft_intensity(n: int, itemsize: int) -> float:
    """Intensity of a length-n FFT: 5 n log2 n FLOPs over a few passes."""
    flops = 5.0 * n * math.log2(max(n, 2))
    passes = max(2, math.ceil(math.log2(max(n, 2)) / 4))
    return arithmetic_intensity(flops, passes * n * itemsize)
