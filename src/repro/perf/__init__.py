"""Performance models at paper scale.

The paper's benchmark sizes (Nm=5000, Nd=100, Nt=1000 → an 8 GB
``F_hat``) are too large to execute numerically here, so the figure
benches evaluate the *same cost formulas the engine charges* at full
scale without allocating the arrays:

* :mod:`repro.perf.phase_model` — per-phase modeled times of one F/F*
  matvec for any (Nm, Nd, Nt, precision config, GPU); mirrors the
  engine's kernel charges one-for-one (a test pins them together).
* :mod:`repro.perf.scaling` — the multi-GPU model behind Figure 4:
  compute + broadcast + reduce per GPU count and grid shape, speedups of
  mixed configurations, and the Eq. (6) error trend.
* :mod:`repro.perf.roofline` — arithmetic-intensity sanity checks
  showing every phase is memory-bound (why bandwidth is the metric).
"""

from repro.perf.phase_model import modeled_timing, phase_times, recovery_cost_model
from repro.perf.scaling import ScalingPoint, scaling_sweep, matvec_time_at_scale
from repro.perf.roofline import arithmetic_intensity, is_memory_bound, roofline_time

__all__ = [
    "modeled_timing",
    "phase_times",
    "recovery_cost_model",
    "ScalingPoint",
    "scaling_sweep",
    "matvec_time_at_scale",
    "arithmetic_intensity",
    "is_memory_bound",
    "roofline_time",
]
