"""Device-memory footprint model for FFTMatvec.

Answers the sizing questions in the paper's Section 4.2.2: the dominant
allocation is the precomputed spectrum ``F_hat`` (``(Nt+1) x Nd x Nm``
complex doubles, plus a complex-single copy when any configuration runs
the SBGEMV in single), followed by the padded vector workspaces.  The
paper notes the 1B-parameter inverse problem of [21] used 512 80-GB
GPUs, equivalent to 640 64-GB MI250X GCDs, and that MI300X/MI355X's
larger memories let the same problem fit on fewer devices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Union

from repro.core.precision import PrecisionConfig
from repro.gpu.specs import GPUSpec
from repro.util.dtypes import Precision, complex_dtype, real_dtype
from repro.util.validation import check_positive_int

__all__ = ["MatvecMemoryFootprint", "matvec_memory", "min_gpus_for_problem"]


@dataclass(frozen=True)
class MatvecMemoryFootprint:
    """Bytes by category for one rank's engine."""

    fhat_double: int
    fhat_single: int
    vector_workspaces: int

    @property
    def total(self) -> int:
        return self.fhat_double + self.fhat_single + self.vector_workspaces

    def fits(self, spec: GPUSpec) -> bool:
        """Whether the footprint fits in the device's HBM."""
        return self.total <= spec.memory_bytes


def matvec_memory(
    nm: int,
    nd: int,
    nt: int,
    configs: Union[str, PrecisionConfig, Iterable] = "ddddd",
) -> MatvecMemoryFootprint:
    """Footprint of an engine serving the given configuration(s).

    ``configs`` may be one configuration or an iterable (the dynamic
    framework keeps a single-precision ``F_hat`` copy cached as soon as
    any served configuration runs the SBGEMV in single).
    """
    check_positive_int(nm, "nm")
    check_positive_int(nd, "nd")
    check_positive_int(nt, "nt")
    if isinstance(configs, (str, PrecisionConfig)):
        configs = [configs]
    cfgs = [PrecisionConfig.parse(c) for c in configs]

    n_freq, n_pad = nt + 1, 2 * nt
    z = complex_dtype(Precision.DOUBLE).itemsize
    c = complex_dtype(Precision.SINGLE).itemsize

    fhat_d = n_freq * nd * nm * z
    needs_single = any(cfg.sbgemv is Precision.SINGLE for cfg in cfgs)
    fhat_s = n_freq * nd * nm * c if needs_single else 0

    # Workspaces at the widest precision any config touches them with:
    # padded input (nx_in x 2Nt real), its spectrum (nx_in x (Nt+1)
    # complex), the output spectrum and padded output — for the larger
    # (parameter) side, double-buffered forward/adjoint use.
    r8 = real_dtype(Precision.DOUBLE).itemsize
    nx = max(nm, nd)
    workspaces = nx * n_pad * r8 + 2 * nx * n_freq * z + nx * n_pad * r8
    return MatvecMemoryFootprint(
        fhat_double=fhat_d, fhat_single=fhat_s, vector_workspaces=workspaces
    )


def min_gpus_for_problem(
    nm_global: int,
    nd: int,
    nt: int,
    spec: GPUSpec,
    configs: Union[str, Iterable] = ("ddddd", "dssdd"),
    pr: int = 1,
    utilization: float = 0.9,
) -> int:
    """Smallest GPU count whose aggregate memory holds the problem.

    Each of ``p`` ranks (grid ``pr x p/pr``) stores its
    ``(Nd/pr) x (Nm/pc)`` sub-block spectrum plus workspaces;
    ``utilization`` reserves headroom for the runtime.
    """
    check_positive_int(nm_global, "nm_global")
    if not (0 < utilization <= 1):
        raise ValueError(f"utilization must be in (0,1], got {utilization}")
    budget = spec.memory_bytes * utilization
    p = pr
    while True:
        pc = max(1, p // pr)
        nm_local = -(-nm_global // pc)
        nd_local = max(1, -(-nd // pr))
        fp = matvec_memory(nm_local, nd_local, nt, configs=configs)
        if fp.total <= budget:
            return p
        p *= 2
        if p > 1 << 24:  # pragma: no cover - guard against bad inputs
            raise RuntimeError("problem does not fit on any sane GPU count")
