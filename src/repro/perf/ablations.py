"""Design-choice ablation models.

DESIGN.md calls out the engine's design decisions; this module models
the alternatives so benches can quantify each choice:

* :func:`unfused_cast_penalty` — the paper fuses precision casts into
  adjacent memory operations "to reduce kernel launch latencies
  associated with launching multiple small kernels".  The ablation
  charges each cast as a standalone kernel: one extra read+write pass
  over the vector plus a launch.
* :func:`fused_vs_unfused` — total matvec time with fused vs standalone
  casts for a configuration.
"""

from __future__ import annotations

from typing import Union

from repro.core.precision import PHASE_NAMES, PrecisionConfig
from repro.gpu.bandwidth import kernel_time, stream_efficiency
from repro.gpu.specs import GPUSpec
from repro.perf.phase_model import phase_times
from repro.util.dtypes import Precision, complex_dtype, real_dtype

__all__ = ["cast_boundaries", "unfused_cast_penalty", "fused_vs_unfused"]


def cast_boundaries(config: Union[str, PrecisionConfig]):
    """Phase boundaries where the working precision changes.

    Returns a list of (phase_before, phase_after) pairs; the input and
    output boundaries (double <-> phase 1/5) are included when those
    phases run in single.
    """
    cfg = PrecisionConfig.parse(config)
    seq = [Precision.DOUBLE, *cfg.phases, Precision.DOUBLE]
    names = ["input", *PHASE_NAMES, "output"]
    out = []
    for i in range(len(seq) - 1):
        if seq[i] is not seq[i + 1]:
            out.append((names[i], names[i + 1]))
    return out


def _vector_bytes_at(boundary_after: str, nm: int, nd: int, nt: int,
                     prec: Precision, adjoint: bool) -> float:
    """Size of the vector crossing into a phase, at the cast target."""
    nx_in = nd if adjoint else nm
    nx_out = nm if adjoint else nd
    n_pad, n_freq = 2 * nt, nt + 1
    r = real_dtype(prec).itemsize
    c = complex_dtype(prec).itemsize
    sizes = {
        "pad": nt * nx_in * r,
        "fft": nx_in * n_pad * r,
        "sbgemv": n_freq * nx_in * c,
        "ifft": n_freq * nx_out * c,
        "unpad": nx_out * n_pad * r,
        "output": nt * nx_out * r,
    }
    return float(sizes[boundary_after])


def unfused_cast_penalty(
    nm: int,
    nd: int,
    nt: int,
    config: Union[str, PrecisionConfig],
    spec: GPUSpec,
    adjoint: bool = False,
) -> float:
    """Extra seconds if every precision cast were a standalone kernel."""
    cfg = PrecisionConfig.parse(config)
    penalty = 0.0
    seq = dict(zip(["input", *PHASE_NAMES, "output"],
                   [Precision.DOUBLE, *cfg.phases, Precision.DOUBLE]))
    for _, after in cast_boundaries(cfg):
        target = seq[after]
        nbytes = _vector_bytes_at(after, nm, nd, nt, target, adjoint)
        traffic = 2.0 * nbytes  # read old precision (~same size), write new
        eff = stream_efficiency(traffic, spec) * 0.9
        penalty += kernel_time(traffic, spec, eff)
    return penalty


def fused_vs_unfused(
    nm: int,
    nd: int,
    nt: int,
    config: Union[str, PrecisionConfig],
    spec: GPUSpec,
    adjoint: bool = False,
):
    """(fused_total, unfused_total, n_casts) for one matvec."""
    cfg = PrecisionConfig.parse(config)
    fused = sum(phase_times(nm, nd, nt, cfg, spec, adjoint=adjoint).values())
    casts = cast_boundaries(cfg)
    unfused = fused + unfused_cast_penalty(nm, nd, nt, cfg, spec, adjoint=adjoint)
    return fused, unfused, len(casts)
