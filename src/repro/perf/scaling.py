"""Multi-GPU scaling model (Figure 4).

Weak scaling at the paper's sizes: ``Nm = 5000 * p``, ``Nd = 100``,
``Nt = 1000`` on MI250X GCDs with the Frontier network model.  Per grid
shape ``(pr, pc)``:

* local compute = :func:`repro.perf.phase_model.phase_times` at the
  local block size ``(Nd/pr) x (Nm/pc)`` (invariant total bytes — each
  rank owns ``Nd*Nm/p`` of every Toeplitz block);
* Phase-1 broadcast of the column parameter block (``Nm/pc * Nt`` words
  at Phase 1's precision) over ``pr`` machine-spanning ranks;
* Phase-5 reduction of the row data block (``Nd/pr * Nt`` words at
  Phase 5's precision) over ``pc`` contiguous ranks.

Relative errors at scale are *measured*, not modeled: the Figure-4 bench
runs the real SPMD engine with a proportionally reduced local problem
(4096 actual ranks in-process) and reports the measured error trend; the
Eq. (6) bound is printed alongside for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.comm.collectives import tree_collective_time
from repro.comm.netmodel import FRONTIER_NETWORK, NetworkModel
from repro.comm.partition import published_frontier_rows
from repro.core.precision import PrecisionConfig
from repro.gpu.specs import GPUSpec, MI250X_GCD
from repro.perf.phase_model import phase_times
from repro.util.dtypes import real_dtype
from repro.util.validation import check_positive_int

__all__ = ["ScalingPoint", "matvec_time_at_scale", "scaling_sweep", "paper_config_for"]


def paper_config_for(p: int) -> str:
    """The paper's optimal mixed config per GPU count (artifact appendix):
    ``dssdd`` below 512 GPUs, ``dssds`` at 512 and above."""
    return "dssdd" if p < 512 else "dssds"


def matvec_time_at_scale(
    p: int,
    pr: int,
    config: Union[str, PrecisionConfig],
    nm_per_gpu: int = 5000,
    nd: int = 100,
    nt: int = 1000,
    spec: GPUSpec = MI250X_GCD,
    net: NetworkModel = FRONTIER_NETWORK,
    adjoint: bool = False,
) -> dict:
    """Modeled seconds of one distributed matvec; returns a breakdown.

    Keys: ``compute``, ``bcast``, ``reduce``, ``total``.
    """
    check_positive_int(p, "p")
    check_positive_int(pr, "pr")
    if p % pr != 0:
        raise ValueError(f"pr={pr} must divide p={p}")
    cfg = PrecisionConfig.parse(config)
    pc = p // pr
    nm_global = nm_per_gpu * p
    nm_local = -(-nm_global // pc)
    nd_local = max(1, -(-nd // pr))

    compute = sum(
        phase_times(nm_local, nd_local, nt, cfg, spec, adjoint=adjoint).values()
    )

    # Communication volumes follow the phase precisions (Phase 1 in
    # single halves the broadcast; Phase 5 in single halves the reduce).
    bcast_bytes = nm_local * nt * real_dtype(cfg.pad).itemsize
    reduce_bytes = nd_local * nt * real_dtype(cfg.unpad).itemsize
    if adjoint:
        # F*: broadcast data over rows (pc contiguous), reduce parameters
        # over columns (pr machine-spanning).
        bcast_bytes, reduce_bytes = reduce_bytes, bcast_bytes
        t_bcast = tree_collective_time(pc, bcast_bytes, net, span=pc)
        col_span = (pr - 1) * pc + 1
        t_reduce = tree_collective_time(pr, reduce_bytes, net, span=col_span)
    else:
        col_span = (pr - 1) * pc + 1
        t_bcast = tree_collective_time(pr, bcast_bytes, net, span=col_span)
        t_reduce = tree_collective_time(pc, reduce_bytes, net, span=pc)

    return {
        "compute": compute,
        "bcast": t_bcast,
        "reduce": t_reduce,
        "total": compute + t_bcast + t_reduce,
    }


@dataclass(frozen=True)
class ScalingPoint:
    """One GPU count of the Figure-4 sweep."""

    p: int
    pr: int
    pc: int
    config: str
    time_double: float
    time_mixed: float

    @property
    def speedup(self) -> float:
        return self.time_double / self.time_mixed


def scaling_sweep(
    gpu_counts: Sequence[int] = (8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096),
    nm_per_gpu: int = 5000,
    nd: int = 100,
    nt: int = 1000,
    spec: GPUSpec = MI250X_GCD,
    net: NetworkModel = FRONTIER_NETWORK,
    rows: Optional[Sequence[int]] = None,
) -> list:
    """The Figure-4 time/speedup series over GPU counts.

    ``rows`` overrides the per-count grid-row schedule (defaults to the
    paper's published schedule).
    """
    points = []
    for i, p in enumerate(gpu_counts):
        pr = rows[i] if rows is not None else published_frontier_rows(p)
        cfg = paper_config_for(p)
        t_d = matvec_time_at_scale(
            p, pr, "ddddd", nm_per_gpu, nd, nt, spec=spec, net=net
        )["total"]
        t_m = matvec_time_at_scale(
            p, pr, cfg, nm_per_gpu, nd, nt, spec=spec, net=net
        )["total"]
        points.append(
            ScalingPoint(
                p=p, pr=pr, pc=p // pr, config=cfg, time_double=t_d, time_mixed=t_m
            )
        )
    return points
