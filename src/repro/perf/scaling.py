"""Multi-GPU scaling model (Figure 4).

Weak scaling at the paper's sizes: ``Nm = 5000 * p``, ``Nd = 100``,
``Nt = 1000`` on MI250X GCDs with the Frontier network model.  Per grid
shape ``(pr, pc)``:

* local compute = :func:`repro.perf.phase_model.phase_times` at the
  local block size ``(Nd/pr) x (Nm/pc)`` (invariant total bytes — each
  rank owns ``Nd*Nm/p`` of every Toeplitz block);
* Phase-1 broadcast of the column parameter block (``Nm/pc * Nt`` words
  at Phase 1's precision) over ``pr`` machine-spanning ranks;
* Phase-5 reduction of the row data block (``Nd/pr * Nt`` words at
  Phase 5's precision) over ``pc`` contiguous ranks.

Relative errors at scale are *measured*, not modeled: the Figure-4 bench
runs the real SPMD engine with a proportionally reduced local problem
(4096 actual ranks in-process) and reports the measured error trend; the
Eq. (6) bound is printed alongside for comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.comm.balance import balance_extents, linear_cost
from repro.comm.collectives import tree_collective_time
from repro.comm.netmodel import FRONTIER_NETWORK, NetworkModel
from repro.comm.partition import published_frontier_rows
from repro.core.precision import PrecisionConfig
from repro.gpu.specs import GPUSpec, MI250X_GCD, get_gpu
from repro.perf.phase_model import (
    block_phase_times,
    checksum_overhead_model,
    overlapped_chunk_schedule,
    phase_times,
    recovery_cost_model,
)
from repro.util.blocking import chunk_ranges
from repro.util.dtypes import real_dtype
from repro.util.timing import HostModel
from repro.util.validation import ReproError, check_positive_int

__all__ = [
    "ScalingPoint",
    "matvec_time_at_scale",
    "blocked_matvec_time_at_scale",
    "mixed_fleet_times",
    "scaling_sweep",
    "paper_config_for",
]


def paper_config_for(p: int) -> str:
    """The paper's optimal mixed config per GPU count (artifact appendix):
    ``dssdd`` below 512 GPUs, ``dssds`` at 512 and above."""
    return "dssdd" if p < 512 else "dssds"


def _local_extents(p: int, pr: int, nm_per_gpu: int, nd: int):
    """Shared sizing: (pc, nm_local, nd_local) of the balanced grid split."""
    check_positive_int(p, "p")
    check_positive_int(pr, "pr")
    if p % pr != 0:
        raise ValueError(f"pr={pr} must divide p={p}")
    pc = p // pr
    nm_global = nm_per_gpu * p
    nm_local = -(-nm_global // pc)
    nd_local = max(1, -(-nd // pr))
    return pc, nm_local, nd_local


def _grid_collective_times(
    cfg: PrecisionConfig,
    nm_local: int,
    nd_local: int,
    nt: int,
    pr: int,
    pc: int,
    net: NetworkModel,
    adjoint: bool,
    kc: int = 1,
):
    """Shared comm model: (t_bcast, t_reduce) of one kc-wide chunk.

    Volumes follow the phase precisions (Phase 1 in single halves the
    broadcast; Phase 5 in single halves the reduce) and scale by the
    chunk width; the forward broadcast goes down machine-spanning
    columns and the reduce across contiguous rows, the adjoint swaps
    both the payloads and the topologies.
    """
    bcast_bytes = nm_local * nt * real_dtype(cfg.pad).itemsize * kc
    reduce_bytes = nd_local * nt * real_dtype(cfg.unpad).itemsize * kc
    col_span = (pr - 1) * pc + 1
    if adjoint:
        # F*: broadcast data over rows (pc contiguous), reduce parameters
        # over columns (pr machine-spanning).
        bcast_bytes, reduce_bytes = reduce_bytes, bcast_bytes
        t_bcast = tree_collective_time(pc, bcast_bytes, net, span=pc)
        t_reduce = tree_collective_time(pr, reduce_bytes, net, span=col_span)
    else:
        t_bcast = tree_collective_time(pr, bcast_bytes, net, span=col_span)
        t_reduce = tree_collective_time(pc, reduce_bytes, net, span=pc)
    return t_bcast, t_reduce


def matvec_time_at_scale(
    p: int,
    pr: int,
    config: Union[str, PrecisionConfig],
    nm_per_gpu: int = 5000,
    nd: int = 100,
    nt: int = 1000,
    spec: GPUSpec = MI250X_GCD,
    net: NetworkModel = FRONTIER_NETWORK,
    adjoint: bool = False,
) -> dict:
    """Modeled seconds of one distributed matvec; returns a breakdown.

    Keys: ``compute``, ``bcast``, ``reduce``, ``total``.
    """
    cfg = PrecisionConfig.parse(config)
    pc, nm_local, nd_local = _local_extents(p, pr, nm_per_gpu, nd)
    compute = sum(
        phase_times(nm_local, nd_local, nt, cfg, spec, adjoint=adjoint).values()
    )
    t_bcast, t_reduce = _grid_collective_times(
        cfg, nm_local, nd_local, nt, pr, pc, net, adjoint
    )
    return {
        "compute": compute,
        "bcast": t_bcast,
        "reduce": t_reduce,
        "total": compute + t_bcast + t_reduce,
    }


def blocked_matvec_time_at_scale(
    p: int,
    pr: int,
    config: Union[str, PrecisionConfig],
    k: int = 16,
    max_block_k: Optional[int] = None,
    skew: float = 0.0,
    nm_per_gpu: int = 5000,
    nd: int = 100,
    nt: int = 1000,
    spec: GPUSpec = MI250X_GCD,
    net: NetworkModel = FRONTIER_NETWORK,
    adjoint: bool = False,
    host: Optional[HostModel] = None,
    overlap_host: bool = True,
) -> dict:
    """Modeled seconds of a blocked k-RHS distributed matmat; breakdown.

    The event-timeline counterpart of :func:`matvec_time_at_scale`: per
    chunk of ``max_block_k`` columns the grid pays one broadcast (volume
    scaled by the chunk width, one latency tree) and one reduce, and the
    double-buffered schedule prefetches chunk ``i+1``'s broadcast behind
    chunk ``i``'s compute (:func:`overlapped_chunk_schedule`, honoring
    ``net.overlap_efficiency``).  ``skew`` models an irregular partition:
    the slowest rank owns ``(1 + skew)`` times the balanced local block,
    and — since every collective waits for the slowest rank — its
    per-chunk compute gates the schedule.

    Per-chunk compute is charged through the blocked SBGEMM phase model
    (:func:`~repro.perf.phase_model.block_phase_times` — one pad / one
    batched FFT / one strided-batched GEMM / one inverse FFT / one unpad
    for the whole chunk), not at ``kc`` times the per-vector rate: the
    blocked pipeline amortizes launch overhead and the dominant spectrum
    read, and the engine-consistency test pins the model to what the
    engine actually charges.

    When ``skew > 0`` the skew-searching partitioner
    (:func:`repro.comm.balance.balance_extents`) rebalances the injected
    irregularity on both grid axes, and the ``*_balanced`` keys report
    the schedule on the searched partition — the skew the measure →
    rebalance loop recovers at scale.

    Keys: ``serial``, ``overlapped``, ``hidden``, ``total`` (the
    overlapped wall), ``per_vector`` (total / k), ``serial_per_vector``,
    ``n_chunks``, ``compute``, ``bcast``, ``reduce`` (per-chunk seconds
    of the first chunk), plus ``total_balanced`` /
    ``per_vector_balanced`` — the searched partition's overlapped wall,
    so ``total - total_balanced`` is the modeled skew the search wins
    back (zero when ``skew == 0``; the homogeneous at-scale search
    recovers the ceil-balanced split, so the balanced keys coincide
    with a ``skew=0`` run — *measured* recovery on a real engine is
    what ``benchmarks/test_balance_grid.py`` scores).

    ``host`` adds the third stream: a :class:`~repro.util.timing.HostModel`
    charges per-chunk source generation / result saving, and the fused
    schedule (``overlap_host=True``) runs it concurrently with device
    compute and network — ``gen(i)`` gates ``bcast(i)``, ``save(i)``
    trails ``reduce(i)``, the replay of
    ``ParallelFFTMatvec(host=...)``.  The result then also carries
    ``two_stream_host`` (host charged serially after the two-stream
    schedule — the engine's ``overlap_host=False``), ``overlapped3``
    (the fused wall), ``hidden_host``, and ``per_vector_overlap3``;
    without a host model those keys degenerate to the two-stream values.
    """
    check_positive_int(k, "k")
    if skew < 0:
        raise ReproError(f"skew must be >= 0, got {skew}")
    cfg = PrecisionConfig.parse(config)
    pc, nm_local, nd_local = _local_extents(p, pr, nm_per_gpu, nd)
    nm_global = nm_per_gpu * p
    # Irregular partition: the critical rank's local block is (1+skew)x
    # the balanced share (capped at the global extent).
    nm_slow = min(nm_global, int(math.ceil(nm_local * (1.0 + skew))))
    nd_slow = min(nd, int(math.ceil(nd_local * (1.0 + skew))))

    def schedule_for(nm_rank: int, nd_rank: int) -> dict:
        """Chunk schedule with the critical rank owning the given extents."""
        widths = [j1 - j0 for j0, j1 in chunk_ranges(k, max_block_k)]
        chunk_bcast, chunk_compute, chunk_reduce = [], [], []
        for kc in widths:
            t_bcast, t_reduce = _grid_collective_times(
                cfg, nm_rank, nd_rank, nt, pr, pc, net, adjoint, kc=kc
            )
            chunk_bcast.append(t_bcast)
            chunk_reduce.append(t_reduce)
            chunk_compute.append(
                sum(
                    block_phase_times(
                        nm_rank, nd_rank, nt, kc, cfg, spec, adjoint=adjoint
                    ).values()
                )
            )
        sched = overlapped_chunk_schedule(
            chunk_bcast,
            chunk_compute,
            chunk_reduce,
            overlap_efficiency=net.overlap_efficiency,
            chunk_gen=(
                [kc * host.gen_time for kc in widths] if host is not None else None
            ),
            chunk_save=(
                [kc * host.save_time for kc in widths] if host is not None else None
            ),
            overlap_host=overlap_host,
        )
        sched["n_chunks"] = len(widths)
        sched["compute"] = chunk_compute[0]
        sched["bcast"] = chunk_bcast[0]
        sched["reduce"] = chunk_reduce[0]
        return sched

    sched = schedule_for(nm_slow, nd_slow)
    if skew > 0:
        # Rebalance the injected skew with the real search: uniform unit
        # costs (the at-scale grid is homogeneous), so the searched
        # slowest rank owns the largest remaining extent — the
        # ceil-balanced share, up to integer granularity — whatever the
        # injected skew was.  A grid with more rows than sensors keeps
        # the ceil-clamped row extent (there is nothing to search).
        if pr <= nd:
            row_search = balance_extents(
                nd, pr, linear_cost([1.0] * pr), what="row_ranges"
            )
            nd_bal = max(stop - start for start, stop in row_search.extents)
        else:
            nd_bal = nd_local
        col_search = balance_extents(
            nm_global, pc, linear_cost([1.0] * pc), what="col_ranges"
        )
        nm_bal = max(stop - start for start, stop in col_search.extents)
        sched_bal = (
            sched
            if (nm_bal, nd_bal) == (nm_slow, nd_slow)
            else schedule_for(nm_bal, nd_bal)
        )
    else:
        sched_bal = sched
    return {
        "serial": sched["serial"],
        "overlapped": sched["overlapped"],
        "hidden": sched["hidden"],
        "total": sched["overlapped"],
        "per_vector": sched["overlapped"] / k,
        "serial_per_vector": sched["serial"] / k,
        "n_chunks": sched["n_chunks"],
        "compute": sched["compute"],
        "bcast": sched["bcast"],
        "reduce": sched["reduce"],
        "total_balanced": sched_bal["overlapped"],
        "per_vector_balanced": sched_bal["overlapped"] / k,
        "two_stream_host": sched["two_stream_host"],
        "overlapped3": sched["overlapped3"],
        "hidden_host": sched["hidden_host"],
        "per_vector_overlap3": sched["overlapped3"] / k,
    }


def _fleet_column_specs(pc: int, mix: Sequence) -> list:
    """Resolve a ``[(spec_or_name, fraction), ...]`` mix to per-column specs.

    Columns are assigned to spec groups contiguously by cumulative
    fraction (rounded, every group keeps at least one column) — the
    column-banded fleet a site gets when it extends a homogeneous
    machine with a newer partition.
    """
    if not mix:
        raise ReproError("mix must be non-empty")
    specs, fracs = [], []
    for entry in mix:
        spec, frac = entry
        specs.append(get_gpu(spec) if isinstance(spec, str) else spec)
        f = float(frac)
        if f <= 0:
            raise ReproError(f"mix fraction must be > 0, got {f}")
        fracs.append(f)
    total = sum(fracs)
    if abs(total - 1.0) > 1e-6:
        raise ReproError(f"mix fractions must sum to 1, got {total}")
    if len(specs) > pc:
        raise ReproError(
            f"mix has {len(specs)} groups but the grid only has {pc} columns"
        )
    bounds = [0]
    cum = 0.0
    for f in fracs:
        cum += f
        bounds.append(int(round(cum * pc)))
    for i in range(1, len(bounds)):
        bounds[i] = max(bounds[i], bounds[i - 1] + 1)
    bounds[-1] = pc
    if any(b1 <= b0 for b0, b1 in zip(bounds, bounds[1:])):
        raise ReproError(f"mix fractions leave a group without columns: {mix}")
    col_specs = []
    for g, spec in enumerate(specs):
        col_specs.extend([spec] * (bounds[g + 1] - bounds[g]))
    return col_specs


def mixed_fleet_times(
    p: int,
    pr: int,
    config: Union[str, PrecisionConfig],
    mix: Sequence,
    k: int = 16,
    max_block_k: Optional[int] = None,
    nm_per_gpu: int = 5000,
    nd: int = 100,
    nt: int = 1000,
    net: NetworkModel = FRONTIER_NETWORK,
    adjoint: bool = False,
) -> dict:
    """Heterogeneous-fleet column of the at-scale model.

    ``mix`` is ``[(spec_or_name, fraction), ...]``: the grid's ``pc``
    columns split into contiguous spec groups by fraction, so every rank
    in a column band owns the same device (the usual way a site mixes
    generations).  Two partitions are modeled:

    * **naive** — the even ceil split a homogeneous launcher would use;
      every chunk's compute is gated by the slowest device holding a
      full-size column block, so the whole fleet runs at the worst
      device's pace;
    * **balanced** — ``col_ranges`` searched by
      :func:`~repro.comm.balance.balance_extents` on per-column cost
      slopes measured from the blocked phase model itself (seconds per
      owned parameter, finite-differenced at two extents so per-launch
      constants drop out) *plus* the broadcast slope: the chunk
      broadcast is gated by the largest column payload, so a search
      that ignored comm would fatten the fast columns past the point
      where the broadcast they gate eats the compute win.  When even
      the comm-aware search cannot beat the naive wall (broadcast-bound
      scales), the naive split is kept and ``speedup`` is 1.0.

    Each wall runs the double-buffered chunk schedule with per-chunk
    compute the max over columns of the blocked phase model on that
    column's spec and extent.  Returns ``naive`` / ``balanced`` walls,
    their ``per_vector_*`` forms, ``speedup`` (naive over balanced —
    the Figure-4 mixed-fleet column), the searched ``extents`` and the
    resolved ``groups`` as ``(spec name, column count)`` pairs.
    """
    check_positive_int(k, "k")
    cfg = PrecisionConfig.parse(config)
    pc, _, nd_local = _local_extents(p, pr, nm_per_gpu, nd)
    nm_global = nm_per_gpu * p
    col_specs = _fleet_column_specs(pc, mix)

    def wall_for(extents) -> float:
        lengths = [stop - start for start, stop in extents]
        nm_max = max(lengths)
        widths = [j1 - j0 for j0, j1 in chunk_ranges(k, max_block_k)]
        cb, cc, cr = [], [], []
        for kc in widths:
            t_bcast, t_reduce = _grid_collective_times(
                cfg, nm_max, nd_local, nt, pr, pc, net, adjoint, kc=kc
            )
            cb.append(t_bcast)
            cr.append(t_reduce)
            cc.append(
                max(
                    sum(
                        block_phase_times(
                            ln, nd_local, nt, kc, cfg, sp, adjoint=adjoint
                        ).values()
                    )
                    for ln, sp in zip(lengths, col_specs)
                )
            )
        return overlapped_chunk_schedule(
            cb, cc, cr, overlap_efficiency=net.overlap_efficiency
        )["overlapped"]

    base, rem = divmod(nm_global, pc)
    naive_lengths = [base + (1 if c < rem else 0) for c in range(pc)]
    naive_extents, start = [], 0
    for ln in naive_lengths:
        naive_extents.append((start, start + ln))
        start += ln

    widths = [j1 - j0 for j0, j1 in chunk_ranges(k, max_block_k)]

    def compute_seconds(ln: int, sp: GPUSpec) -> float:
        return sum(
            sum(
                block_phase_times(
                    ln, nd_local, nt, kc, cfg, sp, adjoint=adjoint
                ).values()
            )
            for kc in widths
        )

    def bcast_seconds(ln: int) -> float:
        return sum(
            _grid_collective_times(
                cfg, ln, nd_local, nt, pr, pc, net, adjoint, kc=kc
            )[0]
            for kc in widths
        )

    # Per-element slopes, finite-differenced so per-launch constants
    # cancel (the affine trick of repro.comm.balance applied to the
    # model itself); one slope pair per distinct spec.
    n_hi, n_lo = base + (1 if rem else 0), max(1, base // 2)
    comm_slope = (bcast_seconds(n_hi) - bcast_seconds(n_lo)) / (n_hi - n_lo)
    spec_slope = {}
    for sp in col_specs:
        if sp.name not in spec_slope:
            spec_slope[sp.name] = (
                compute_seconds(n_hi, sp) - compute_seconds(n_lo, sp)
            ) / (n_hi - n_lo)
    units = [spec_slope[sp.name] + comm_slope for sp in col_specs]
    searched = balance_extents(
        nm_global,
        pc,
        linear_cost(units),
        initial=naive_extents,
        what="col_ranges",
    )
    wall_naive = wall_for(naive_extents)
    wall_balanced = wall_for(searched.extents)
    balanced_extents = searched.extents
    if wall_balanced > wall_naive:
        # Broadcast-bound: the largest payload gates every chunk and no
        # repartition can beat the even split — keep it.
        wall_balanced = wall_naive
        balanced_extents = naive_extents
    groups = []
    for sp in col_specs:
        if groups and groups[-1][0] == sp.name:
            groups[-1] = (sp.name, groups[-1][1] + 1)
        else:
            groups.append((sp.name, 1))
    return {
        "naive": wall_naive,
        "balanced": wall_balanced,
        "per_vector_naive": wall_naive / k,
        "per_vector_balanced": wall_balanced / k,
        "speedup": wall_naive / wall_balanced if wall_balanced > 0 else 1.0,
        "extents": balanced_extents,
        "groups": groups,
    }


@dataclass(frozen=True)
class ScalingPoint:
    """One GPU count of the Figure-4 sweep.

    ``time_double`` / ``time_mixed`` are the classic serial per-matvec
    times; ``time_double_overlap`` / ``time_mixed_overlap`` are the
    per-vector times of the double-buffered blocked schedule (k RHS,
    chunk broadcasts prefetched behind compute), and
    ``time_mixed_blocked_serial`` is the *same* blocked chunking charged
    serially — the pair isolates the overlap win from the collective
    batching PR 2 already delivered.  All three are 0.0 when the sweep
    ran without the blocked model.

    ``time_double_balanced`` / ``time_mixed_balanced`` are the same
    overlapped per-vector times after the skew-searching partitioner
    (:mod:`repro.comm.balance`) rebalanced the sweep's injected ``skew``;
    with ``skew=0`` they equal the overlap columns, and
    :attr:`balance_speedup` quantifies the recovered skew.

    ``time_mixed_two_stream_host`` / ``time_mixed_overlap3`` are the
    per-vector times with the sweep's :class:`~repro.util.timing.HostModel`
    charged serially after the two-stream schedule vs fused as the third
    stream; :attr:`host_overlap_speedup` is their ratio.  Both are 0.0
    when the sweep ran without a host model.

    ``system_mtbf_s`` / ``recovery_slowdown`` are the fault-tolerance
    columns: the machine-level mean time between failures at this GPU
    count (per-GPU MTBF divided by ``p`` — more devices, more failures)
    and the expected wall-time inflation of a nominal job under the
    Young/Daly checkpoint model
    (:func:`~repro.perf.phase_model.recovery_cost_model`).  They default
    to 0.0 / 1.0 when the sweep ran without an MTBF.

    ``checksum_overhead`` / ``sdc_coverage`` are the silent-data-
    corruption defense columns
    (:func:`~repro.perf.phase_model.checksum_overhead_model` on the
    local blocked apply at the mixed config): the modeled fractional
    cost of running ABFT + Parseval checks on every apply, and the
    fraction of apply time a detector guards.  Both are 0.0 when the
    sweep ran with ``checksums=False``.
    """

    p: int
    pr: int
    pc: int
    config: str
    time_double: float
    time_mixed: float
    time_double_overlap: float = 0.0
    time_mixed_overlap: float = 0.0
    time_mixed_blocked_serial: float = 0.0
    time_double_balanced: float = 0.0
    time_mixed_balanced: float = 0.0
    time_mixed_two_stream_host: float = 0.0
    time_mixed_overlap3: float = 0.0
    system_mtbf_s: float = 0.0
    recovery_slowdown: float = 1.0
    checksum_overhead: float = 0.0
    sdc_coverage: float = 0.0

    @property
    def speedup(self) -> float:
        return self.time_double / self.time_mixed

    @property
    def overlap_speedup(self) -> float:
        """Blocked-serial per-vector time over the overlapped one.

        Same chunking on both sides, so this is the overlap effect
        alone, not the batching win.
        """
        if self.time_mixed_overlap <= 0.0:
            return 1.0
        return self.time_mixed_blocked_serial / self.time_mixed_overlap

    @property
    def balance_speedup(self) -> float:
        """Skewed overlapped time over the searched-partition time.

        1.0 when the sweep injected no skew (nothing to recover); above
        1.0, the factor the cost-model-driven ``row_ranges``/``col_ranges``
        search wins back at this GPU count.
        """
        if self.time_mixed_balanced <= 0.0:
            return 1.0
        return self.time_mixed_overlap / self.time_mixed_balanced

    @property
    def host_overlap_speedup(self) -> float:
        """Serial-host per-vector time over the three-stream fused one.

        Same chunking and same host charges on both sides, so this is
        the host-fusion effect alone; 1.0 when the sweep carried no
        host model.
        """
        if self.time_mixed_overlap3 <= 0.0:
            return 1.0
        return self.time_mixed_two_stream_host / self.time_mixed_overlap3


def scaling_sweep(
    gpu_counts: Sequence[int] = (8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096),
    nm_per_gpu: int = 5000,
    nd: int = 100,
    nt: int = 1000,
    spec: GPUSpec = MI250X_GCD,
    net: NetworkModel = FRONTIER_NETWORK,
    rows: Optional[Sequence[int]] = None,
    k: int = 16,
    max_block_k: Optional[int] = 4,
    skew: float = 0.0,
    host: Optional[HostModel] = None,
    mtbf_per_gpu_s: Optional[float] = None,
    job_s: float = 3600.0,
    checkpoint_s: float = 0.5,
    restart_s: float = 5.0,
    checksums: bool = False,
) -> list:
    """The Figure-4 time/speedup series over GPU counts.

    ``rows`` overrides the per-count grid-row schedule (defaults to the
    paper's published schedule).  Each point also carries the
    double-buffered blocked per-vector times (``k`` RHS in chunks of
    ``max_block_k``, broadcasts prefetched behind compute, chunk compute
    through the blocked SBGEMM phase model, per-rank ``skew`` honored)
    plus the ``time_*_balanced`` columns: the same schedule after the
    skew-searching partitioner rebalanced the injected skew
    (``balance_speedup`` quantifies the recovery per GPU count).  With a
    ``host`` model the mixed-config point also carries the serial-host
    and three-stream fused per-vector columns
    (``host_overlap_speedup``).

    ``mtbf_per_gpu_s`` turns on the fault-tolerance columns: each point
    gets the system-level MTBF (``mtbf_per_gpu_s / p`` — failures
    multiply with the fleet) and the expected slowdown of a ``job_s``-
    second job under the Young/Daly checkpoint model at that MTBF
    (:func:`~repro.perf.phase_model.recovery_cost_model` with
    ``checkpoint_s`` per snapshot and ``restart_s`` per grid rebuild).
    The slowdown grows with ``p`` even though per-matvec time shrinks —
    the cost of riding an elastic grid at scale.

    ``checksums=True`` adds the SDC-defense columns: the modeled
    fractional cost of ABFT + Parseval checks on the local blocked
    apply and the fraction of apply time they guard
    (:func:`~repro.perf.phase_model.checksum_overhead_model` at the
    mixed config and local extents of each point).
    """
    points = []
    for i, p in enumerate(gpu_counts):
        pr = rows[i] if rows is not None else published_frontier_rows(p)
        cfg = paper_config_for(p)
        t_d = matvec_time_at_scale(
            p, pr, "ddddd", nm_per_gpu, nd, nt, spec=spec, net=net
        )["total"]
        t_m = matvec_time_at_scale(
            p, pr, cfg, nm_per_gpu, nd, nt, spec=spec, net=net
        )["total"]
        blocked_double = blocked_matvec_time_at_scale(
            p, pr, "ddddd", k=k, max_block_k=max_block_k, skew=skew,
            nm_per_gpu=nm_per_gpu, nd=nd, nt=nt, spec=spec, net=net,
        )
        blocked_mixed = blocked_matvec_time_at_scale(
            p, pr, cfg, k=k, max_block_k=max_block_k, skew=skew,
            nm_per_gpu=nm_per_gpu, nd=nd, nt=nt, spec=spec, net=net,
            host=host,
        )
        if checksums:
            _, nm_local, nd_local = _local_extents(p, pr, nm_per_gpu, nd)
            ck = checksum_overhead_model(
                nm_local, nd_local, nt,
                max_block_k if max_block_k is not None else k,
                cfg, spec,
            )
        else:
            ck = None
        points.append(
            ScalingPoint(
                p=p,
                pr=pr,
                pc=p // pr,
                config=cfg,
                time_double=t_d,
                time_mixed=t_m,
                time_double_overlap=blocked_double["per_vector"],
                time_mixed_overlap=blocked_mixed["per_vector"],
                time_mixed_blocked_serial=blocked_mixed["serial_per_vector"],
                time_double_balanced=blocked_double["per_vector_balanced"],
                time_mixed_balanced=blocked_mixed["per_vector_balanced"],
                time_mixed_two_stream_host=(
                    blocked_mixed["two_stream_host"] / k if host is not None else 0.0
                ),
                time_mixed_overlap3=(
                    blocked_mixed["overlapped3"] / k if host is not None else 0.0
                ),
                system_mtbf_s=(
                    mtbf_per_gpu_s / p if mtbf_per_gpu_s is not None else 0.0
                ),
                recovery_slowdown=(
                    recovery_cost_model(
                        job_s,
                        mtbf_per_gpu_s / p,
                        checkpoint_s,
                        restart_s,
                    )["slowdown"]
                    if mtbf_per_gpu_s is not None
                    else 1.0
                ),
                checksum_overhead=ck["fraction"] if ck is not None else 0.0,
                sdc_coverage=ck["coverage"] if ck is not None else 0.0,
            )
        )
    return points
