"""Per-phase matvec cost model at arbitrary problem sizes.

Replicates, kernel for kernel, the time the engine charges when it runs
numerically: one pad kernel, one batched FFT, (reorder + SBGEMV +
reorder), one batched IFFT, one unpad kernel.  A consistency test
(``tests/perf/test_phase_model.py``) runs the real engine on a simulated
device and asserts this model reproduces the charged phase times,
so figure benches can trust it at paper scale.

:func:`overlapped_chunk_schedule` extends the model to the event
timeline: given per-chunk broadcast / compute / reduce costs, it replays
the grid engine's double-buffered schedule (prefetch chunk ``i+1``'s
broadcast behind chunk ``i``'s compute, reduce behind chunk ``i+1``'s
compute) on the same :class:`~repro.util.timing.Timeline` machinery the
engine charges with, so analytic predictions and charged times cannot
drift apart.  With per-chunk host costs (``chunk_gen`` / ``chunk_save``)
it replays the *three*-stream fused schedule — host generation gating
each broadcast, host save trailing each reduce — and reports the fused
wall next to the two-stream-plus-serial-host baseline.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Union

from repro.blas.dispatch import SBGEMVDispatcher
from repro.blas.gemm_kernels import PairwiseSBGEMM
from repro.blas.gemv_kernels import RocblasSBGEMV
from repro.blas.types import BlasDatatype, GemmProblem, GemvProblem, Operation
from repro.core.precision import PrecisionConfig
from repro.fft.plan import _STAGES_PER_PASS
from repro.gpu.bandwidth import kernel_time, stream_efficiency
from repro.gpu.specs import GPUSpec
from repro.util.dtypes import Precision, complex_dtype, real_dtype
from repro.util.timing import Timeline, TimingReport
from repro.util.validation import ReproError, check_positive_int

__all__ = [
    "phase_times",
    "block_phase_times",
    "modeled_timing",
    "fft_traffic_bytes",
    "overlapped_chunk_schedule",
    "recovery_cost_model",
    "checksum_overhead_model",
]

# Energy (Parseval) accumulations ride kernels that already stream the
# checked buffers (pad / FFT / reorder epilogues), so their cost is a
# small tax on those kernels rather than extra HBM passes.
_FUSED_EPILOGUE_TAX = 0.05


def checksum_overhead_model(
    nm: int,
    nd: int,
    nt: int,
    k: int,
    config: Union[str, PrecisionConfig],
    spec: GPUSpec,
    adjoint: bool = False,
    use_optimized_sbgemv: bool = True,
    reduction: str = "fast",
    guard: bool = False,
) -> Dict[str, float]:
    """Modeled cost of the SDC checks on one blocked ``k``-RHS apply.

    Three detector families, costed against the
    :func:`block_phase_times` apply they protect:

    * **Parseval energy** at the FFT/IFFT boundaries: the ``sum(x^2)``
      accumulations fuse into kernels that already traverse the checked
      buffers (pad writes the FFT input, the Phase-3 reorder reads the
      FFT output, and symmetrically for the inverse), so the charge is
      a ``_FUSED_EPILOGUE_TAX`` fraction of the pad/FFT/IFFT/unpad
      kernel times, not extra memory passes.
    * **ABFT column checksums** on the Phase-3 GEMM: the ``e^T op(A)``
      checksum row depends only on the spectrum, so it is computed once
      per engine and amortized to zero across applies; the steady-state
      per-apply cost is one streaming pass over the panel ``B`` (row
      times B) and one over the result ``C`` (column sums), both at the
      SBGEMV precision.
    * **NaN/Inf guard** (``guard=True``, off by default like the
      engines' ``validate="guard"``): one streaming read of the pad and
      unpad outputs.

    Returns ``{"energy_s", "abft_s", "guard_s", "total_s", "apply_s",
    "fraction", "covered_s", "coverage"}`` — ``fraction`` is the
    modeled overhead of the checks (the ISSUE bound asserts it stays
    under 15% on the blocked apply); ``coverage`` is the fraction of
    apply time spent in phases a detector guards (FFT/GEMM/IFFT always;
    pad/unpad only with the guard on).
    """
    check_positive_int(k, "k")
    cfg = PrecisionConfig.parse(config)
    times = block_phase_times(
        nm, nd, nt, k, cfg, spec, adjoint=adjoint,
        use_optimized_sbgemv=use_optimized_sbgemv, reduction=reduction,
    )
    apply_s = sum(times.values())

    energy_s = _FUSED_EPILOGUE_TAX * (
        times["pad"] + times["fft"] + times["ifft"] + times["unpad"]
    )

    n_freq = nt + 1
    out_rows = nm if adjoint else nd
    in_rows = nd if adjoint else nm
    c_sb = complex_dtype(cfg.sbgemv).itemsize
    abft_bytes = float(n_freq * k * (in_rows + out_rows) * c_sb)
    abft_s = kernel_time(
        abft_bytes, spec, stream_efficiency(abft_bytes, spec)
    )

    if guard:
        nx_in = in_rows * k
        nx_out = out_rows * k
        guard_bytes = float(
            nx_in * 2 * nt * real_dtype(cfg.pad).itemsize
            + nx_out * nt * real_dtype(cfg.unpad).itemsize
        )
        guard_s = kernel_time(
            guard_bytes, spec, stream_efficiency(guard_bytes, spec)
        )
    else:
        guard_s = 0.0

    covered_s = times["fft"] + times["sbgemv"] + times["ifft"]
    if guard:
        covered_s += times["pad"] + times["unpad"]
    total_s = energy_s + abft_s + guard_s
    return {
        "energy_s": energy_s,
        "abft_s": abft_s,
        "guard_s": guard_s,
        "total_s": total_s,
        "apply_s": apply_s,
        "fraction": total_s / apply_s if apply_s > 0 else 0.0,
        "covered_s": covered_s,
        "coverage": covered_s / apply_s if apply_s > 0 else 0.0,
    }


def recovery_cost_model(
    work_s: float,
    mtbf_s: float,
    checkpoint_s: float,
    restart_s: float,
    interval_s: Optional[float] = None,
) -> Dict[str, float]:
    """Expected wall time of a checkpointed run under random rank failures.

    The Young/Daly first-order model, applied to the elastic grid: a run
    of ``work_s`` useful seconds checkpoints every ``interval_s`` seconds
    (``checkpoint_s`` per snapshot — e.g. one
    :meth:`~repro.util.checkpoint.CheckpointStore.save` of the block-CG
    state), and each failure costs ``restart_s`` (grid rebuild +
    re-partition + engine reconstruction on the survivors) plus on
    average half an interval of lost work.  Failures arrive at rate
    ``1 / mtbf_s`` (system MTBF — per-device MTBF divided by the device
    count); ``mtbf_s = math.inf`` models a failure-free machine.

    When ``interval_s`` is omitted the Young optimum
    ``sqrt(2 * checkpoint_s * mtbf_s)`` is used (capped at ``work_s`` —
    checkpointing less than once per run is just one final snapshot).

    Returns a dict:

    * ``interval_s`` — the interval actually modeled;
    * ``optimal_interval_s`` — the Young optimum at these costs;
    * ``n_checkpoints`` — snapshots taken (``work_s / interval_s``);
    * ``checkpoint_overhead_s`` — total seconds spent snapshotting;
    * ``expected_failures`` — failures over the protected run;
    * ``rework_s`` — expected lost-work replay (half an interval each);
    * ``restart_overhead_s`` — expected grid-rebuild seconds;
    * ``expected_s`` — expected wall: work + all three overheads;
    * ``slowdown`` — ``expected_s / work_s`` (1.0 on a failure-free
      machine with free checkpoints).
    """
    if work_s <= 0:
        raise ReproError(f"work_s must be > 0, got {work_s}")
    if mtbf_s <= 0:
        raise ReproError(f"mtbf_s must be > 0, got {mtbf_s}")
    if checkpoint_s < 0 or restart_s < 0:
        raise ReproError(
            "checkpoint_s and restart_s must be >= 0, got "
            f"{checkpoint_s} and {restart_s}"
        )
    if math.isinf(mtbf_s):
        optimal = float(work_s)
    else:
        optimal = min(float(work_s), math.sqrt(2.0 * checkpoint_s * mtbf_s))
        optimal = max(optimal, 1e-12) if checkpoint_s > 0 else float(work_s)
    interval = float(interval_s) if interval_s is not None else optimal
    if interval <= 0:
        raise ReproError(f"interval_s must be > 0, got {interval_s}")
    interval = min(interval, float(work_s))
    n_ckpt = work_s / interval
    ckpt_overhead = n_ckpt * checkpoint_s
    protected = work_s + ckpt_overhead
    failures = 0.0 if math.isinf(mtbf_s) else protected / mtbf_s
    rework = failures * (interval / 2.0)
    restart_overhead = failures * restart_s
    expected = protected + rework + restart_overhead
    return {
        "interval_s": interval,
        "optimal_interval_s": optimal,
        "n_checkpoints": n_ckpt,
        "checkpoint_overhead_s": ckpt_overhead,
        "expected_failures": failures,
        "rework_s": rework,
        "restart_overhead_s": restart_overhead,
        "expected_s": expected,
        "slowdown": expected / work_s,
    }


def overlapped_chunk_schedule(
    chunk_bcast: Sequence[float],
    chunk_compute: Sequence[float],
    chunk_reduce: Sequence[float],
    overlap_efficiency: float = 1.0,
    chunk_gen: Optional[Sequence[float]] = None,
    chunk_save: Optional[Sequence[float]] = None,
    overlap_host: bool = True,
) -> Dict[str, float]:
    """Wall times of the serial vs double-buffered grid chunk schedule.

    Mirrors ``ParallelFFTMatvec._matmat_overlapped``: comm stream runs
    ``bcast(0), bcast(1), reduce(0), bcast(2), reduce(1), …``; the
    compute stream waits on each chunk's broadcast event; each reduce
    waits on its chunk's compute event.  ``overlap_efficiency < 1``
    charges the exposed remainder of every *overlapped* collective —
    the prefetched broadcasts and the interior reduces — onto the
    compute stream (link contention), so at efficiency 0 the schedule
    converges back to the serial charge.  Returns ``{"serial",
    "overlapped", "hidden"}`` — ``hidden`` is the saving.

    ``chunk_gen`` / ``chunk_save`` add the host stream of the
    three-stream fused schedule (source generation before each chunk's
    broadcast, result saving after its reduce).  The result then also
    carries ``{"serial3", "two_stream_host", "overlapped3",
    "hidden_host"}``: the all-serial wall, the two-stream schedule with
    the host work charged serially after it (the engine's
    ``overlap_host=False``), the fused three-stream wall replayed with
    the same dependency edges the engine records — ``gen(i)`` gates
    ``bcast(i)``, ``save(i)`` waits on ``reduce(i)``, host in order —
    and their difference.  Without host costs the extra keys degenerate
    (``serial3 == serial``, ``two_stream_host == overlapped3 ==
    overlapped``, ``hidden_host == 0``) so callers can read one schema
    unconditionally; the first three keys are unchanged either way.
    """
    n = len(chunk_compute)
    if not (n == len(chunk_bcast) == len(chunk_reduce)):
        raise ReproError(
            "chunk_bcast, chunk_compute and chunk_reduce must have equal length"
        )
    host_present = chunk_gen is not None or chunk_save is not None
    gen = list(chunk_gen) if chunk_gen is not None else [0.0] * n
    save = list(chunk_save) if chunk_save is not None else [0.0] * n
    if len(gen) != n or len(save) != n:
        raise ReproError(
            "chunk_gen and chunk_save must match the chunk count when given"
        )
    if n == 0:
        return {
            "serial": 0.0,
            "overlapped": 0.0,
            "hidden": 0.0,
            "serial3": 0.0,
            "two_stream_host": 0.0,
            "overlapped3": 0.0,
            "hidden_host": 0.0,
        }
    exposed = max(0.0, min(1.0, 1.0 - overlap_efficiency))

    def replay(with_host: bool) -> float:
        tl = Timeline()
        comm = tl.stream("comm")
        comp = tl.stream("compute")
        host = tl.stream("host") if with_host else None
        if host is not None:
            host.charge(gen[0])
            comm.wait(host.record())
        comm.charge(chunk_bcast[0])
        ev_bcast = comm.record()
        reduce_tax = 0.0  # exposed share of the previous chunk's reduce
        for i in range(n):
            comp.wait(ev_bcast)
            if reduce_tax > 0.0:
                comp.charge(reduce_tax)
            comp.charge(chunk_compute[i])
            if i + 1 < n:
                if host is not None:
                    host.charge(gen[i + 1])
                    comm.wait(host.record())
                comm.charge(chunk_bcast[i + 1])
                ev_bcast = comm.record()
                if exposed > 0.0:
                    comp.charge(exposed * chunk_bcast[i + 1])
            ev_compute = comp.record()
            comm.wait(ev_compute)
            comm.charge(chunk_reduce[i])
            if host is not None:
                host.wait(comm.record())
                host.charge(save[i])
            reduce_tax = exposed * chunk_reduce[i] if i + 1 < n else 0.0
        return tl.sync()

    overlapped = replay(with_host=False)
    serial = float(
        sum(chunk_bcast) + sum(chunk_compute) + sum(chunk_reduce)
    )
    host_total = float(sum(gen) + sum(save))
    two_stream_host = overlapped + host_total
    if host_present and overlap_host:
        overlapped3 = replay(with_host=True)
    else:
        overlapped3 = two_stream_host
    return {
        "serial": serial,
        "overlapped": overlapped,
        "hidden": serial - overlapped,
        "serial3": serial + host_total,
        "two_stream_host": two_stream_host,
        "overlapped3": overlapped3,
        "hidden_host": two_stream_host - overlapped3,
    }


def fft_traffic_bytes(n: int, batch: int, precision: Precision, forward: bool) -> float:
    """HBM traffic of one batched real FFT execution (mirrors FFTPlan)."""
    r = real_dtype(precision).itemsize
    c = complex_dtype(precision).itemsize
    half = n // 2 + 1
    if forward:
        in_b, out_b = n * r, half * c
    else:
        in_b, out_b = half * c, n * r
    passes = max(2, math.ceil(math.log2(max(n, 2)) / _STAGES_PER_PASS))
    return float(batch) * (in_b + out_b) * passes / 2.0


def _reorder_time(
    elems: int, in_itemsize: int, out_itemsize: int, spec: GPUSpec
) -> float:
    traffic = float(elems) * (in_itemsize + out_itemsize)
    eff = stream_efficiency(traffic, spec) * 0.75
    return kernel_time(traffic, spec, eff)


def phase_times(
    nm: int,
    nd: int,
    nt: int,
    config: Union[str, PrecisionConfig],
    spec: GPUSpec,
    adjoint: bool = False,
    use_optimized_sbgemv: bool = True,
    reduction: str = "fast",
) -> Dict[str, float]:
    """Modeled seconds per phase of one local matvec (no communication).

    For the F matvec the FFT batch is ``nm`` (parameter side) and the
    IFFT batch is ``nd``; the adjoint swaps them.  The SBGEMV phase
    includes the two layout reorders, matching both the engine and the
    artifact note that "the SBGEMV time includes the SOTI-to-TOSI and
    TOSI-to-SOTI times".

    The single-vector special case of :func:`block_phase_times` — one
    definition of the per-phase traffic, so the vector and blocked
    models cannot drift apart.
    """
    return block_phase_times(
        nm,
        nd,
        nt,
        1,
        config,
        spec,
        adjoint=adjoint,
        use_optimized_sbgemv=use_optimized_sbgemv,
        reduction=reduction,
    )


def block_phase_times(
    nm: int,
    nd: int,
    nt: int,
    k: int,
    config: Union[str, PrecisionConfig],
    spec: GPUSpec,
    adjoint: bool = False,
    use_optimized_sbgemv: bool = True,
    reduction: str = "fast",
) -> Dict[str, float]:
    """Modeled seconds per phase of one blocked ``k``-RHS pipeline pass.

    The SBGEMM counterpart of :func:`phase_times`, mirroring
    ``FFTMatvec._pipeline_block`` kernel for kernel: the ``k`` columns
    ride the batch axis of pad/FFT/reorder (one launch each, batch
    ``nx * k``), and Phase 3 is one per-frequency strided-batched GEMM
    through the same dispatcher the engine uses.  This replaces the
    conservative "``k`` times the per-vector rate" chunk-compute charge
    — the blocked pipeline amortizes launch overhead and rereads the
    spectrum once instead of ``k`` times, and the scaling sweep should
    see that.  ``k=1`` degenerates to the GEMV dispatch, exactly like
    the engine.  A consistency test pins every phase to the engine's
    charge at ``rel=1e-6``.

    ``reduction="pairwise"`` models the deterministic fixed-tree
    contraction exactly like the engine dispatches it: the Phase-3
    kernel is the :class:`~repro.blas.gemm_kernels.PairwiseSBGEMM`
    wrapper (its determinism tax scales the inner kernel's efficiency),
    and ``k == 1`` does *not* degenerate to the GEMV entry point —
    pairwise single vectors run through the width-1 blocked path.
    """
    check_positive_int(nm, "nm")
    check_positive_int(nd, "nd")
    check_positive_int(nt, "nt")
    check_positive_int(k, "k")
    if reduction not in ("fast", "pairwise"):
        raise ReproError(
            f"reduction must be 'fast' or 'pairwise', got {reduction!r}"
        )
    cfg = PrecisionConfig.parse(config)
    n_pad = 2 * nt
    n_freq = nt + 1
    nx_in = (nd if adjoint else nm) * k  # fused batch of the forward FFT
    nx_out = (nm if adjoint else nd) * k  # fused batch of the inverse FFT

    times: Dict[str, float] = {}

    # Phase 1: one pad kernel over all k vectors (batch = k * space).
    read_b = float(nt * nx_in * 8)
    write_b = float(nx_in * n_pad * real_dtype(cfg.pad).itemsize)
    eff = stream_efficiency(read_b + write_b, spec) * 0.9
    times["pad"] = kernel_time(read_b + write_b, spec, eff)

    # Phase 2: one batched forward FFT, batch = k * space.
    traffic = fft_traffic_bytes(n_pad, nx_in, cfg.fft, forward=True)
    times["fft"] = kernel_time(traffic, spec, stream_efficiency(traffic, spec))

    # Phase 3: reorder in, strided-batched GEMM, reorder out — the
    # reorders carry the fused nx * k columns.
    lo_in = cfg.reorder_precision("fft", "sbgemv")
    lo_out = cfg.reorder_precision("sbgemv", "ifft")
    c_fft = complex_dtype(cfg.fft).itemsize
    c_lo_in = complex_dtype(lo_in).itemsize
    c_sb = complex_dtype(cfg.sbgemv).itemsize
    c_lo_out = complex_dtype(lo_out).itemsize
    t3 = _reorder_time(n_freq * nx_in, c_fft, c_lo_in, spec)

    datatype = (
        BlasDatatype.Z if cfg.sbgemv is Precision.DOUBLE else BlasDatatype.C
    )
    operation = Operation.C if adjoint else Operation.N
    dispatcher = SBGEMVDispatcher(spec)
    if k == 1 and reduction == "fast":
        # The dispatcher degenerates a single-column block to the GEMV
        # entry point; model the same dispatch.  (Pairwise mode skips
        # the degeneration — exactly like `gemm_strided_batched`.)
        gemv = GemvProblem(
            m=nd, n=nm, batch=n_freq, datatype=datatype, operation=operation
        )
        if use_optimized_sbgemv:
            kernel_t = dispatcher.select(gemv).modeled_time(gemv, spec)
        else:
            kernel_t = RocblasSBGEMV().modeled_time(gemv, spec)
    else:
        problem = GemmProblem(
            m=nd, n=nm, k=k, batch=n_freq, datatype=datatype, operation=operation
        )
        if use_optimized_sbgemv:
            kernel = dispatcher.select_gemm(problem, reduction=reduction)
        elif reduction == "pairwise":
            kernel = PairwiseSBGEMM(dispatcher.rocblas_gemm)
        else:
            kernel = dispatcher.rocblas_gemm
        kernel_t = kernel.modeled_time(problem, spec)
    t3 += kernel_t + spec.launch_overhead
    t3 += _reorder_time(n_freq * nx_out, c_sb, c_lo_out, spec)
    times["sbgemv"] = t3

    # Phase 4: one batched inverse FFT, batch = k * space.
    traffic = fft_traffic_bytes(n_pad, nx_out, cfg.ifft, forward=False)
    times["ifft"] = kernel_time(traffic, spec, stream_efficiency(traffic, spec))

    # Phase 5: one unpad kernel over all k vectors.
    read_b = float(nx_out * n_pad * real_dtype(cfg.ifft).itemsize) / 2.0
    write_b = float(nt * nx_out * real_dtype(cfg.unpad).itemsize)
    eff = stream_efficiency(read_b + write_b, spec) * 0.9
    times["unpad"] = kernel_time(read_b + write_b, spec, eff)

    return times


def modeled_timing(
    nm: int,
    nd: int,
    nt: int,
    config: Union[str, PrecisionConfig],
    spec: GPUSpec,
    adjoint: bool = False,
    use_optimized_sbgemv: bool = True,
    reduction: str = "fast",
) -> TimingReport:
    """Phase times wrapped in a :class:`TimingReport`."""
    cfg = PrecisionConfig.parse(config)
    direction = "F*" if adjoint else "F"
    return TimingReport(
        phases=phase_times(
            nm,
            nd,
            nt,
            cfg,
            spec,
            adjoint=adjoint,
            use_optimized_sbgemv=use_optimized_sbgemv,
            reduction=reduction,
        ),
        label=f"{cfg} {direction} {spec.name}",
    )
