"""Per-phase matvec cost model at arbitrary problem sizes.

Replicates, kernel for kernel, the time the engine charges when it runs
numerically: one pad kernel, one batched FFT, (reorder + SBGEMV +
reorder), one batched IFFT, one unpad kernel.  A consistency test
(``tests/perf/test_phase_model.py``) runs the real engine on a simulated
device and asserts this model reproduces the charged phase times,
so figure benches can trust it at paper scale.

:func:`overlapped_chunk_schedule` extends the model to the event
timeline: given per-chunk broadcast / compute / reduce costs, it replays
the grid engine's double-buffered schedule (prefetch chunk ``i+1``'s
broadcast behind chunk ``i``'s compute, reduce behind chunk ``i+1``'s
compute) on the same :class:`~repro.util.timing.Timeline` machinery the
engine charges with, so analytic predictions and charged times cannot
drift apart.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence, Union

from repro.blas.dispatch import SBGEMVDispatcher
from repro.blas.gemv_kernels import RocblasSBGEMV
from repro.blas.types import BlasDatatype, GemvProblem, Operation
from repro.core.precision import PrecisionConfig
from repro.fft.plan import _STAGES_PER_PASS
from repro.gpu.bandwidth import kernel_time, stream_efficiency
from repro.gpu.specs import GPUSpec
from repro.util.dtypes import Precision, complex_dtype, real_dtype
from repro.util.timing import Timeline, TimingReport
from repro.util.validation import ReproError, check_positive_int

__all__ = [
    "phase_times",
    "modeled_timing",
    "fft_traffic_bytes",
    "overlapped_chunk_schedule",
]


def overlapped_chunk_schedule(
    chunk_bcast: Sequence[float],
    chunk_compute: Sequence[float],
    chunk_reduce: Sequence[float],
    overlap_efficiency: float = 1.0,
) -> Dict[str, float]:
    """Wall times of the serial vs double-buffered grid chunk schedule.

    Mirrors ``ParallelFFTMatvec._matmat_overlapped``: comm stream runs
    ``bcast(0), bcast(1), reduce(0), bcast(2), reduce(1), …``; the
    compute stream waits on each chunk's broadcast event; each reduce
    waits on its chunk's compute event.  ``overlap_efficiency < 1``
    charges the exposed remainder of every *overlapped* collective —
    the prefetched broadcasts and the interior reduces — onto the
    compute stream (link contention), so at efficiency 0 the schedule
    converges back to the serial charge.  Returns ``{"serial",
    "overlapped", "hidden"}`` — ``hidden`` is the saving.
    """
    n = len(chunk_compute)
    if not (n == len(chunk_bcast) == len(chunk_reduce)):
        raise ReproError(
            "chunk_bcast, chunk_compute and chunk_reduce must have equal length"
        )
    if n == 0:
        return {"serial": 0.0, "overlapped": 0.0, "hidden": 0.0}
    exposed = max(0.0, min(1.0, 1.0 - overlap_efficiency))
    tl = Timeline()
    comm = tl.stream("comm")
    comp = tl.stream("compute")
    comm.charge(chunk_bcast[0])
    ev_bcast = comm.record()
    reduce_tax = 0.0  # exposed share of the previous chunk's reduce
    for i in range(n):
        comp.wait(ev_bcast)
        if reduce_tax > 0.0:
            comp.charge(reduce_tax)
        comp.charge(chunk_compute[i])
        if i + 1 < n:
            comm.charge(chunk_bcast[i + 1])
            ev_bcast = comm.record()
            if exposed > 0.0:
                comp.charge(exposed * chunk_bcast[i + 1])
        ev_compute = comp.record()
        comm.wait(ev_compute)
        comm.charge(chunk_reduce[i])
        reduce_tax = exposed * chunk_reduce[i] if i + 1 < n else 0.0
    overlapped = tl.sync()
    serial = float(
        sum(chunk_bcast) + sum(chunk_compute) + sum(chunk_reduce)
    )
    return {
        "serial": serial,
        "overlapped": overlapped,
        "hidden": serial - overlapped,
    }


def fft_traffic_bytes(n: int, batch: int, precision: Precision, forward: bool) -> float:
    """HBM traffic of one batched real FFT execution (mirrors FFTPlan)."""
    r = real_dtype(precision).itemsize
    c = complex_dtype(precision).itemsize
    half = n // 2 + 1
    if forward:
        in_b, out_b = n * r, half * c
    else:
        in_b, out_b = half * c, n * r
    passes = max(2, math.ceil(math.log2(max(n, 2)) / _STAGES_PER_PASS))
    return float(batch) * (in_b + out_b) * passes / 2.0


def _reorder_time(
    elems: int, in_itemsize: int, out_itemsize: int, spec: GPUSpec
) -> float:
    traffic = float(elems) * (in_itemsize + out_itemsize)
    eff = stream_efficiency(traffic, spec) * 0.75
    return kernel_time(traffic, spec, eff)


def phase_times(
    nm: int,
    nd: int,
    nt: int,
    config: Union[str, PrecisionConfig],
    spec: GPUSpec,
    adjoint: bool = False,
    use_optimized_sbgemv: bool = True,
) -> Dict[str, float]:
    """Modeled seconds per phase of one local matvec (no communication).

    For the F matvec the FFT batch is ``nm`` (parameter side) and the
    IFFT batch is ``nd``; the adjoint swaps them.  The SBGEMV phase
    includes the two layout reorders, matching both the engine and the
    artifact note that "the SBGEMV time includes the SOTI-to-TOSI and
    TOSI-to-SOTI times".
    """
    check_positive_int(nm, "nm")
    check_positive_int(nd, "nd")
    check_positive_int(nt, "nt")
    cfg = PrecisionConfig.parse(config)
    n_pad = 2 * nt
    n_freq = nt + 1
    nx_in = nd if adjoint else nm  # batch of the forward FFT
    nx_out = nm if adjoint else nd  # batch of the inverse FFT

    times: Dict[str, float] = {}

    # Phase 1: pad kernel reads the double input, writes padded at the
    # phase's precision (cast fused), efficiency = stream * 0.9.
    read_b = float(nt * nx_in * 8)
    write_b = float(nx_in * n_pad * real_dtype(cfg.pad).itemsize)
    eff = stream_efficiency(read_b + write_b, spec) * 0.9
    times["pad"] = kernel_time(read_b + write_b, spec, eff)

    # Phase 2: batched forward FFT.
    traffic = fft_traffic_bytes(n_pad, nx_in, cfg.fft, forward=True)
    times["fft"] = kernel_time(traffic, spec, stream_efficiency(traffic, spec))

    # Phase 3: reorder in, SBGEMV, reorder out.
    lo_in = cfg.reorder_precision("fft", "sbgemv")
    lo_out = cfg.reorder_precision("sbgemv", "ifft")
    c_fft = complex_dtype(cfg.fft).itemsize
    c_lo_in = complex_dtype(lo_in).itemsize
    c_sb = complex_dtype(cfg.sbgemv).itemsize
    c_lo_out = complex_dtype(lo_out).itemsize
    t3 = _reorder_time(n_freq * nx_in, c_fft, c_lo_in, spec)

    datatype = (
        BlasDatatype.Z if cfg.sbgemv is Precision.DOUBLE else BlasDatatype.C
    )
    operation = Operation.C if adjoint else Operation.N
    problem = GemvProblem(
        m=nd, n=nm, batch=n_freq, datatype=datatype, operation=operation
    )
    if use_optimized_sbgemv:
        kernel = SBGEMVDispatcher(spec).select(problem)
    else:
        kernel = RocblasSBGEMV()
    # The engine launches the GEMV through the device (which adds the
    # per-launch overhead on top of the end-to-end calibrated time).
    t3 += kernel.modeled_time(problem, spec) + spec.launch_overhead
    t3 += _reorder_time(n_freq * nx_out, c_sb, c_lo_out, spec)
    times["sbgemv"] = t3

    # Phase 4: batched inverse FFT.
    traffic = fft_traffic_bytes(n_pad, nx_out, cfg.ifft, forward=False)
    times["ifft"] = kernel_time(traffic, spec, stream_efficiency(traffic, spec))

    # Phase 5: unpad reads half the padded vector, writes at its precision.
    read_b = float(nx_out * n_pad * real_dtype(cfg.ifft).itemsize) / 2.0
    write_b = float(nt * nx_out * real_dtype(cfg.unpad).itemsize)
    eff = stream_efficiency(read_b + write_b, spec) * 0.9
    times["unpad"] = kernel_time(read_b + write_b, spec, eff)

    return times


def modeled_timing(
    nm: int,
    nd: int,
    nt: int,
    config: Union[str, PrecisionConfig],
    spec: GPUSpec,
    adjoint: bool = False,
    use_optimized_sbgemv: bool = True,
) -> TimingReport:
    """Phase times wrapped in a :class:`TimingReport`."""
    cfg = PrecisionConfig.parse(config)
    direction = "F*" if adjoint else "F"
    return TimingReport(
        phases=phase_times(
            nm,
            nd,
            nt,
            cfg,
            spec,
            adjoint=adjoint,
            use_optimized_sbgemv=use_optimized_sbgemv,
        ),
        label=f"{cfg} {direction} {spec.name}",
    )
