"""``fft-matvec``: a CLI mirroring the original ``fft_matvec`` executable.

Flags follow the artifact appendix:

* ``-nm / -nd / -Nt`` — problem dimensions;
* ``-prec xxxxx`` — the 5-phase precision configuration (d/s each);
* ``-rand`` — initialize with the mantissa-filled random values used for
  mixed-precision testing;
* ``-raw`` — machine-parseable timing output;
* ``-s <directory>`` — save output vectors (``.npy``) for offline
  comparison of mixed vs double results;
* ``-t`` — run the built-in self test;
* ``-reps N`` — average timings over N repetitions;
* ``-gpu NAME`` — simulated architecture (default MI250X GCD);
* ``-pr / -pc`` — process grid shape (defaults: 1 x p as the paper does
  for small runs); ``-p`` — total simulated GPUs;
* ``--backend`` — array backend (numpy/cupy/torch/auto; default: the
  ``REPRO_BACKEND`` environment variable, else the auto fallback chain);
* ``--serve-bench`` — run the multi-tenant serving benchmark (coalesced
  vs serve-one; see ``docs/SERVING.md``) with ``--rates``,
  ``--requests``, ``--tenants``, ``--window-ms``, ``--budget-mb`` and
  ``--block-k`` knobs, reusing ``-nm/-nd/-Nt/-prec/-seed`` for the
  operator.

Timing output format matches the original: three lines of
setup/total/cleanup, then per-phase times, for the F matvec and then the
F* matvec.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

import numpy as np

from repro.backend import BackendUnavailableError, resolve_backend
from repro.comm.grid import ProcessGrid
from repro.comm.netmodel import FRONTIER_NETWORK
from repro.comm.partition import communication_aware_partition
from repro.core.matvec import FFTMatvec
from repro.core.parallel import ParallelFFTMatvec
from repro.core.precision import PrecisionConfig
from repro.core.toeplitz import BlockTriangularToeplitz
from repro.gpu.device import SimulatedDevice
from repro.gpu.specs import get_gpu
from repro.util.dtypes import fill_low_mantissa
from repro.util.timing import TimingReport

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Argument parser with the original executable's flag set."""
    p = argparse.ArgumentParser(
        prog="fft-matvec",
        description="Simulated FFTMatvec: mixed-precision block-triangular "
        "Toeplitz matvecs (reproduction CLI)",
    )
    p.add_argument("-nm", type=int, default=100, help="spatial parameters Nm")
    p.add_argument("-nd", type=int, default=8, help="sensors Nd")
    p.add_argument("-Nt", dest="nt", type=int, default=64, help="time steps Nt")
    p.add_argument(
        "-prec",
        type=str,
        default="ddddd",
        help="5-phase precision config (d/s per phase), e.g. dssdd",
    )
    p.add_argument("-rand", action="store_true", help="mantissa-filled random init")
    p.add_argument("-raw", action="store_true", help="machine-parseable output")
    p.add_argument("-s", dest="save_dir", type=str, default=None, help="save outputs")
    p.add_argument("-t", dest="selftest", action="store_true", help="self test")
    p.add_argument("-reps", type=int, default=1, help="timing repetitions")
    p.add_argument("-gpu", type=str, default="MI250X", help="simulated GPU")
    p.add_argument("-p", dest="num_gpus", type=int, default=1, help="simulated GPUs")
    p.add_argument("-pr", type=int, default=0, help="grid rows (0 = auto)")
    p.add_argument("-pc", type=int, default=0, help="grid cols (0 = auto)")
    p.add_argument("-seed", type=int, default=0, help="RNG seed")
    p.add_argument(
        "--backend",
        type=str,
        default=None,
        help="array backend: numpy, cupy, torch or auto "
        "(default: $REPRO_BACKEND, else the auto fallback chain)",
    )
    p.add_argument(
        "--pareto",
        type=float,
        default=None,
        metavar="TOL",
        help="sweep all 32 precision configs and report the Pareto "
        "optimum under the given error tolerance (e.g. --pareto 1e-7)",
    )
    p.add_argument(
        "--adjoint",
        action="store_true",
        help="with --pareto: analyze the F* direction instead of F",
    )
    p.add_argument(
        "--serve-bench",
        action="store_true",
        help="run the multi-tenant serving benchmark (coalesced vs "
        "serve-one over Poisson request traces) and print the table",
    )
    p.add_argument(
        "--rates",
        type=str,
        default="50,2000",
        help="with --serve-bench: comma-separated arrival rates (req/s)",
    )
    p.add_argument(
        "--requests",
        type=int,
        default=240,
        help="with --serve-bench: requests per trace",
    )
    p.add_argument(
        "--tenants",
        type=int,
        default=4,
        help="with --serve-bench: number of tenants in the trace",
    )
    p.add_argument(
        "--window-ms",
        type=float,
        default=2.0,
        help="with --serve-bench: micro-batch window (milliseconds)",
    )
    p.add_argument(
        "--budget-mb",
        type=float,
        default=128.0,
        help="with --serve-bench: engine-cache byte budget (MiB)",
    )
    p.add_argument(
        "--block-k",
        type=int,
        default=16,
        help="with --serve-bench: max coalesced columns per flush",
    )
    return p


def _serve_bench_mode(args) -> int:
    """--serve-bench: coalesced vs serve-one throughput comparison."""
    from repro.serve.bench import run_serving_benchmark

    try:
        rates = tuple(float(r) for r in args.rates.split(",") if r.strip())
    except ValueError:
        print(f"error: bad --rates value {args.rates!r}", file=sys.stderr)
        return 2
    if not rates or any(r <= 0 for r in rates):
        print("error: --rates needs positive req/s values", file=sys.stderr)
        return 2
    for name, v in (
        ("-nm", args.nm),
        ("-nd", args.nd),
        ("-Nt", args.nt),
        ("--requests", args.requests),
        ("--tenants", args.tenants),
        ("--block-k", args.block_k),
    ):
        if v <= 0:
            print(f"error: {name} must be positive", file=sys.stderr)
            return 2
    if args.window_ms < 0 or args.budget_mb <= 0:
        print(
            "error: --window-ms must be >= 0 and --budget-mb > 0",
            file=sys.stderr,
        )
        return 2

    artifact = run_serving_benchmark(
        nt=args.nt,
        nd=args.nd,
        nm=args.nm,
        rates=rates,
        n_requests=args.requests,
        tenants=args.tenants,
        max_block_k=args.block_k,
        window=args.window_ms / 1e3,
        budget_mb=args.budget_mb,
        config=args.prec,
        seed=args.seed,
    )
    print(
        f"serving bench  Nm={args.nm} Nd={args.nd} Nt={args.nt} "
        f"prec={args.prec}  tenants={args.tenants} "
        f"block_k={args.block_k} window={args.window_ms:g}ms"
    )
    header = (
        f"{'rate':>8} {'mode':>10} {'thr r/s':>9} {'p50 ms':>8} "
        f"{'p99 ms':>8} {'batch':>6} {'speedup':>8}"
    )
    print(header)
    for row in artifact["rates"]:
        for mode in ("coalesced", "serve_one"):
            stats = row[mode]
            speed = f"{row['speedup']:.2f}x" if mode == "coalesced" else ""
            print(
                f"{row['rate_rps']:>8.0f} {mode:>10} "
                f"{stats['throughput_rps']:>9.1f} {stats['p50_ms']:>8.2f} "
                f"{stats['p99_ms']:>8.2f} {stats['mean_batch']:>6.1f} "
                f"{speed:>8}"
            )
        coalesced = row["coalesced"]
        gates = (
            f"         bitwise={coalesced['bitwise_identical']} "
            f"solves_ok={coalesced['solves_within_tol']} "
            f"rejected={coalesced['rejected']}"
        )
        print(gates)
    cache = artifact["cache"]
    print(
        f"cache: peak {cache['peak_bytes'] / 2**20:.1f} MiB of "
        f"{cache['budget_bytes'] / 2**20:.0f} MiB budget, "
        f"{cache['evictions']} evictions, "
        f"within_budget={cache['within_budget']}"
    )
    return 0


def _pareto_mode(args) -> int:
    """--pareto TOL: the artifact's configuration-selection workflow."""
    from repro.core.pareto import optimal_config, pareto_table, sweep_configs
    from repro.perf.phase_model import modeled_timing

    rng = np.random.default_rng(args.seed)
    matrix = BlockTriangularToeplitz.random(
        args.nt, args.nd, args.nm, rng=rng, decay=0.02
    )
    spec = get_gpu(args.gpu)
    engine = FFTMatvec(matrix, device=SimulatedDevice(spec))
    points = sweep_configs(
        engine,
        adjoint=args.adjoint,
        rng=rng,
        time_model=lambda c: modeled_timing(
            args.nm, args.nd, args.nt, c, spec, adjoint=args.adjoint
        ).total,
    )
    print(pareto_table(points, tolerance=args.pareto))
    try:
        best = optimal_config(points, args.pareto)
    except Exception as exc:
        print(f"no configuration satisfies the tolerance: {exc}", file=sys.stderr)
        return 1
    direction = "F*" if args.adjoint else "F"
    print(
        f"\noptimal {direction} config under {args.pareto:g}: {best.config} "
        f"({(best.speedup - 1) * 100:.0f}% speedup, rel err {best.error:.2e})"
    )
    return 0


def _self_test(args) -> int:
    """-t: verify the FFT matvec against the dense reference."""
    try:
        backend = resolve_backend(args.backend)
    except BackendUnavailableError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rng = np.random.default_rng(args.seed)
    matrix = BlockTriangularToeplitz.random(16, 3, 12, rng=rng)
    engine = FFTMatvec(matrix, backend=backend)
    m = rng.standard_normal((16, 12))
    d = engine.matvec(m)
    ref = matrix.matvec_reference(m)
    fwd = float(np.linalg.norm(d - ref) / np.linalg.norm(ref))
    dv = rng.standard_normal((16, 3))
    mm = engine.rmatvec(dv)
    rref = matrix.rmatvec_reference(dv)
    adj = float(np.linalg.norm(mm - rref) / np.linalg.norm(rref))
    ok = fwd < 1e-12 and adj < 1e-12
    print(f"self test: forward rel err {fwd:.2e}, adjoint rel err {adj:.2e}")
    print("PASS" if ok else "FAIL")
    return 0 if ok else 1


def _print_timing(report: Optional[TimingReport], raw: bool) -> None:
    if report is None:
        print("  (no device attached; timings unavailable)")
        return
    for line in report.lines(raw=raw):
        print(line)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.selftest:
        return _self_test(args)
    if args.serve_bench:
        return _serve_bench_mode(args)
    if args.pareto is not None:
        if args.pareto <= 0:
            print("error: --pareto tolerance must be positive", file=sys.stderr)
            return 2
        for name, v in (("nm", args.nm), ("nd", args.nd), ("Nt", args.nt)):
            if v <= 0:
                print(f"error: -{name} must be positive", file=sys.stderr)
                return 2
        return _pareto_mode(args)

    try:
        cfg = PrecisionConfig.parse(args.prec)
    except Exception as exc:  # argparse-style error reporting
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for name, v in (("nm", args.nm), ("nd", args.nd), ("Nt", args.nt)):
        if v <= 0:
            print(f"error: -{name} must be positive", file=sys.stderr)
            return 2
    if args.reps <= 0:
        print("error: -reps must be positive", file=sys.stderr)
        return 2

    rng = np.random.default_rng(args.seed)
    matrix = BlockTriangularToeplitz.random(
        args.nt, args.nd, args.nm, rng=rng, decay=0.02
    )
    spec = get_gpu(args.gpu)

    m_in = rng.standard_normal((args.nt, args.nm))
    d_in = rng.standard_normal((args.nt, args.nd))
    if args.rand:
        m_in = fill_low_mantissa(m_in)
        d_in = fill_low_mantissa(d_in)

    try:
        backend = resolve_backend(args.backend)
    except BackendUnavailableError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    p = args.num_gpus
    if p > 1:
        pr, pc = args.pr, args.pc
        if pr <= 0 or pc <= 0:
            pr, pc = communication_aware_partition(args.nm, args.nd, args.nt, p)
        grid = ProcessGrid(pr, pc, net=FRONTIER_NETWORK, backend=backend)
        engine = ParallelFFTMatvec(matrix, grid, spec=spec, backend=backend)
        if not args.raw:
            print(f"process grid: {pr} x {pc} ({p} simulated GPUs)")
    else:
        engine = FFTMatvec(
            matrix, device=SimulatedDevice(spec), backend=backend
        )

    if not args.raw:
        print(
            f"FFTMatvec  Nm={args.nm} Nd={args.nd} Nt={args.nt}  "
            f"prec={cfg}  gpu={spec.name}  backend={backend.name}"
        )

    def run_reps(op, vec) -> TimingReport:
        acc: Optional[TimingReport] = None
        for _ in range(args.reps):
            op(vec, config=cfg)
            t = engine.last_timing
            acc = t if acc is None else acc.merged(t)
        assert acc is not None
        return acc.averaged()

    d_out = engine.matvec(m_in, config=cfg)
    fwd_timing = run_reps(engine.matvec, m_in)
    m_out = engine.rmatvec(d_in, config=cfg)
    adj_timing = run_reps(engine.rmatvec, d_in)

    if not args.raw:
        print("-- F matvec --")
    _print_timing(fwd_timing, args.raw)
    if not args.raw:
        print("-- F* matvec --")
    _print_timing(adj_timing, args.raw)

    if args.save_dir:
        os.makedirs(args.save_dir, exist_ok=True)
        np.save(os.path.join(args.save_dir, f"d_{cfg}.npy"), d_out)
        np.save(os.path.join(args.save_dir, f"m_{cfg}.npy"), m_out)
        if not args.raw:
            print(f"saved outputs to {args.save_dir}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    try:
        sys.exit(main())
    except BrokenPipeError:
        # stdout closed early (e.g. piped through `head`); not an error.
        sys.exit(0)
