"""The array-backend protocol: one seam between the engines and numpy.

Every hot-path layer of the five-phase pipeline — the workspace arena,
pad/reorder/unpad kernels, the FFT planner, both BLAS kernel families
and the comm payload staging — performs its array work through a
:class:`Backend` instance instead of calling ``np.*`` directly.  The
backend exposes:

* the raw array namespace (``xp``) and an FFT adapter (``fft``) with
  numpy-style ``rfft/irfft/fft/ifft(a, axis=...)`` signatures;
* allocation (``empty``/``zeros``) and movement (``asarray``,
  ``to_device``/``from_device``, ``copy``/``copyto``);
* compute entry points (``matmul``/``einsum`` with ``out=``,
  ``conjugate``, ``add``, ``multiply``);
* dtype plumbing keyed by **numpy dtypes** (``dtype_of`` maps any
  backend array's dtype back to ``np.dtype``), so the
  :class:`~repro.util.dtypes.Precision` machinery, workspace keys and
  BLAS datatype enums never change;
* a ``synchronize`` hook (device backends flush queued work before
  wall-clock timestamps are read).

The numpy backend implements every operation with the *exact* numpy
call the engines used before this layer existed, so the numpy path is
bitwise-identical to the pre-backend code.  Simulated timing is
unaffected by backend choice: kernels charge modeled time from problem
*sizes*, never from array contents.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

import numpy as np

from repro.util.dtypes import Precision, complex_dtype, real_dtype
from repro.util.validation import ReproError

__all__ = ["Backend", "BackendUnavailableError", "BackendFallbackWarning", "host_empty"]


class BackendUnavailableError(ReproError):
    """An explicitly requested backend cannot run on this host."""


class BackendFallbackWarning(UserWarning):
    """``auto`` resolution skipped unavailable device backends."""


def host_empty(shape, dtype) -> np.ndarray:
    """Uninitialized **host** (numpy) allocation.

    For results handed to callers: engine outputs are always host
    float64 regardless of the compute backend.  Linted hot-path modules
    use this instead of a bare ``np.empty`` so the backend-lint test can
    ban direct numpy allocations there while host-side result buffers
    remain possible.
    """
    return np.empty(shape, dtype=dtype)


class Backend:
    """Abstract array backend.

    Concrete backends (:class:`~repro.backend.numpy_backend.NumpyBackend`,
    :class:`~repro.backend.cupy_backend.CupyBackend`,
    :class:`~repro.backend.torch_backend.TorchBackend`) fill in ``xp``,
    ``fft`` and the per-operation methods.  All dtype *parameters* and
    the :meth:`dtype_of` return value are numpy dtypes — backends
    translate internally, so precision configs, workspace keys and BLAS
    datatypes stay backend-agnostic.
    """

    #: Registry name (``"numpy"``, ``"cupy"``, ``"torch"``).
    name: str = "abstract"
    #: True when arrays live in device memory (host transfers are real).
    is_device: bool = False

    # -- namespaces ----------------------------------------------------------
    @property
    def xp(self) -> Any:
        """The backend's array namespace (numpy-like module)."""
        raise NotImplementedError

    @property
    def fft(self) -> Any:
        """FFT module with numpy-style ``rfft/irfft/fft/ifft(a, axis=)``."""
        raise NotImplementedError

    # -- availability --------------------------------------------------------
    @classmethod
    def probe(cls) -> Tuple[bool, str]:
        """``(available, reason)`` — importable and usable on this host."""
        raise NotImplementedError

    # -- allocation ----------------------------------------------------------
    def empty(self, shape, dtype) -> Any:
        """Uninitialized backend array of ``shape`` and numpy ``dtype``."""
        raise NotImplementedError

    def zeros(self, shape, dtype) -> Any:
        """Zero-filled backend array of ``shape`` and numpy ``dtype``."""
        raise NotImplementedError

    # -- movement ------------------------------------------------------------
    def asarray(self, a) -> Any:
        """Present ``a`` as a backend array (share memory when possible)."""
        raise NotImplementedError

    def to_device(self, a) -> Any:
        """Host array -> backend array (alias of :meth:`asarray` for most)."""
        return self.asarray(a)

    def from_device(self, a) -> np.ndarray:
        """Backend array -> host numpy array (identity for numpy)."""
        raise NotImplementedError

    def copy(self, a) -> Any:
        """A new backend array with the same contents as ``a``."""
        raise NotImplementedError

    def copyto(self, dst, src) -> None:
        """``dst[...] = src`` with same-kind casting (numpy ``copyto``)."""
        raise NotImplementedError

    def astype(self, a, dtype, copy: bool = True) -> Any:
        """Cast; ``copy=False`` returns ``a`` unchanged when dtypes match."""
        raise NotImplementedError

    def ascontiguous(self, a, dtype=None) -> Any:
        """C-contiguous view/copy, optionally casting (ascontiguousarray)."""
        raise NotImplementedError

    # -- compute -------------------------------------------------------------
    def matmul(self, a, b, out=None) -> Any:
        """Batched matrix product ``a @ b`` (optionally into ``out``)."""
        raise NotImplementedError

    def einsum(self, subscripts: str, *operands) -> Any:
        """Einstein-summation contraction over backend arrays."""
        raise NotImplementedError

    def conjugate(self, a, out=None) -> Any:
        """Elementwise complex conjugate (materialized, not lazy)."""
        raise NotImplementedError

    def add(self, a, b, out=None) -> Any:
        """Elementwise ``a + b`` (optionally into ``out``)."""
        raise NotImplementedError

    def multiply(self, a, b, out=None) -> Any:
        """Elementwise ``a * b`` (optionally into ``out``)."""
        raise NotImplementedError

    def transpose(self, a, axes=None) -> Any:
        """Transpose (reverse axes, or permute by ``axes``)."""
        raise NotImplementedError

    def ravel(self, a) -> Any:
        """Flattened view/copy of ``a`` (numpy ``ravel`` semantics)."""
        raise NotImplementedError

    def concatenate(self, arrays) -> Any:
        """Concatenate 1-D payloads along axis 0 (comm gather staging)."""
        raise NotImplementedError

    # -- introspection -------------------------------------------------------
    def dtype_of(self, a) -> np.dtype:
        """The numpy dtype equivalent of a backend array's dtype."""
        raise NotImplementedError

    def nbytes(self, a) -> int:
        """Total bytes of the array's data buffer."""
        raise NotImplementedError

    def size(self, a) -> int:
        """Number of elements."""
        raise NotImplementedError

    def is_contiguous(self, a) -> bool:
        """True when ``a`` is C-contiguous."""
        raise NotImplementedError

    def iscomplex(self, a) -> bool:
        """True when ``a`` has a complex dtype."""
        raise NotImplementedError

    def shares_memory(self, a, b) -> bool:
        """True when ``a`` and ``b`` may share underlying storage."""
        raise NotImplementedError

    # -- sync ----------------------------------------------------------------
    def synchronize(self) -> None:
        """Block until queued device work completes (no-op on host)."""

    # -- derived helpers -----------------------------------------------------
    def cast(self, a, precision: Precision) -> Any:
        """Precision cast preserving real/complexness.

        Returns the input unchanged when already at the target precision
        — the backend generalization of
        :func:`repro.util.dtypes.cast_to`, bitwise-identical to it on
        the numpy backend.
        """
        prec = Precision.parse(precision)
        target = complex_dtype(prec) if self.iscomplex(a) else real_dtype(prec)
        if self.dtype_of(a) == target:
            return a
        return self.astype(a, target, copy=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"
