"""Backend resolution: explicit names, the ``REPRO_BACKEND`` env, and
the ``auto`` fallback chain.

Resolution order for :func:`resolve_backend`:

1. a :class:`Backend` *instance* passes through untouched;
2. an explicit name (``"numpy"``/``"cupy"``/``"torch"``) is probed and
   **raises** :class:`BackendUnavailableError` when the host can't run
   it — naming the install extra — never silently substituting;
3. ``None`` reads the ``REPRO_BACKEND`` environment variable, default
   ``auto``;
4. ``auto`` walks ``cupy → torch → numpy`` and takes the first backend
   whose probe passes, emitting one :class:`BackendFallbackWarning` per
   process when a device backend was skipped.

Instances are cached per name (backends are stateless beyond their
module handles), and only the *engines* and the CLI resolve the
env/auto chain — leaf modules (workspace, kernels, planner, comm)
default to the numpy singleton so library users never trip a device
backend by importing a helper.
"""

from __future__ import annotations

import os
import warnings
from typing import Dict, Optional, Tuple, Type, Union

from repro.backend.base import (
    Backend,
    BackendFallbackWarning,
    BackendUnavailableError,
)

__all__ = [
    "resolve_backend",
    "available_backends",
    "get_default_backend",
    "set_default_backend",
    "reset_backend_state",
    "BACKEND_CHAIN",
]

#: ``auto`` preference order: fastest hardware first, numpy as the floor.
BACKEND_CHAIN: Tuple[str, ...] = ("cupy", "torch", "numpy")

_INSTALL_EXTRA = {"cupy": "pip install .[cupy]", "torch": "pip install .[torch]"}

_instances: Dict[str, Backend] = {}
_default: Optional[Backend] = None
_fallback_warned = False


def _backend_class(name: str) -> Type[Backend]:
    # Imported lazily so that ``import repro.backend`` never touches
    # torch/cupy (absent on most hosts) at import time.
    if name == "numpy":
        from repro.backend.numpy_backend import NumpyBackend

        return NumpyBackend
    if name == "cupy":
        from repro.backend.cupy_backend import CupyBackend

        return CupyBackend
    if name == "torch":
        from repro.backend.torch_backend import TorchBackend

        return TorchBackend
    raise BackendUnavailableError(
        f"unknown backend {name!r}; known backends: {', '.join(BACKEND_CHAIN)}"
    )


def _instance(name: str) -> Backend:
    be = _instances.get(name)
    if be is None:
        be = _backend_class(name)()
        _instances[name] = be
    return be


def available_backends() -> Dict[str, Tuple[bool, str]]:
    """Probe every known backend: ``{name: (available, reason)}``."""
    return {name: _backend_class(name).probe() for name in BACKEND_CHAIN}


def _resolve_auto() -> Backend:
    global _fallback_warned
    skipped = []
    for name in BACKEND_CHAIN:
        ok, reason = _backend_class(name).probe()
        if ok:
            if skipped and not _fallback_warned:
                _fallback_warned = True
                detail = "; ".join(f"{n}: {r}" for n, r in skipped)
                warnings.warn(
                    f"REPRO_BACKEND=auto fell back to {name!r} ({detail})",
                    BackendFallbackWarning,
                    stacklevel=3,
                )
            return _instance(name)
        skipped.append((name, reason))
    # numpy's probe is unconditional; unreachable in practice.
    raise BackendUnavailableError(
        "no array backend available: " + "; ".join(f"{n}: {r}" for n, r in skipped)
    )


def resolve_backend(which: Union[Backend, str, None] = None) -> Backend:
    """Resolve ``which`` to a live :class:`Backend` instance.

    Pass a :class:`Backend` to use it as-is, a name for explicit mode
    (raises :class:`BackendUnavailableError` when unavailable), or
    ``None`` to follow ``REPRO_BACKEND`` (default ``auto``).
    """
    if isinstance(which, Backend):
        return which
    if which is None:
        which = os.environ.get("REPRO_BACKEND", "").strip() or "auto"
    name = str(which).strip().lower()
    if name == "auto":
        return _resolve_auto()
    cls = _backend_class(name)
    ok, reason = cls.probe()
    if not ok:
        hint = _INSTALL_EXTRA.get(name)
        msg = f"backend {name!r} was requested explicitly but is unavailable: {reason}"
        if hint:
            msg += f" (install with `{hint}`)"
        raise BackendUnavailableError(msg)
    return _instance(name)


def get_default_backend() -> Backend:
    """The process-wide default backend (resolved on first use)."""
    global _default
    if _default is None:
        _default = resolve_backend(None)
    return _default


def set_default_backend(which: Union[Backend, str, None]) -> Backend:
    """Override the process-wide default; returns the resolved backend."""
    global _default
    _default = resolve_backend(which)
    return _default


def reset_backend_state() -> None:
    """Forget cached instances, the default, and the one-shot fallback
    warning flag (test isolation helper)."""
    global _default, _fallback_warned
    _instances.clear()
    _default = None
    _fallback_warned = False
