"""CuPy backend: CUDA execution through a numpy-mirroring namespace.

CuPy tracks numpy's API closely enough that nearly every method is the
``cp.*`` spelling of the numpy call — including ``matmul(..., out=)``,
``conjugate(..., out=)``, ``copyto`` and ``ascontiguousarray`` — and
CuPy array dtypes *are* numpy dtypes, so :meth:`dtype_of` needs no
translation table.  The probe requires both an importable ``cupy`` and
at least one visible CUDA device: an installed wheel on a GPU-less host
must not win ``auto`` resolution over numpy.
"""

from __future__ import annotations

import importlib
from typing import Any, Tuple

import numpy as np

from repro.backend.base import Backend

__all__ = ["CupyBackend"]


class CupyBackend(Backend):
    """CUDA execution via CuPy (requires a visible CUDA device)."""

    name = "cupy"
    is_device = True

    def __init__(self) -> None:
        self._cp = importlib.import_module("cupy")

    @property
    def xp(self) -> Any:
        return self._cp

    @property
    def fft(self) -> Any:
        return self._cp.fft

    @classmethod
    def probe(cls) -> Tuple[bool, str]:
        try:
            cp = importlib.import_module("cupy")
        except Exception as exc:
            return False, f"cupy import failed: {exc}"
        try:
            count = int(cp.cuda.runtime.getDeviceCount())
        except Exception as exc:
            return False, f"CUDA runtime unavailable: {exc}"
        if count < 1:
            return False, "cupy importable but no CUDA device visible"
        return True, f"cupy with {count} CUDA device(s)"

    # -- allocation ----------------------------------------------------------
    def empty(self, shape, dtype) -> Any:
        return self._cp.empty(shape, dtype=dtype)

    def zeros(self, shape, dtype) -> Any:
        return self._cp.zeros(shape, dtype=dtype)

    # -- movement ------------------------------------------------------------
    def asarray(self, a) -> Any:
        return self._cp.asarray(a)

    def from_device(self, a) -> np.ndarray:
        if isinstance(a, np.ndarray):
            return a
        return self._cp.asnumpy(a)

    def copy(self, a) -> Any:
        return a.copy()

    def copyto(self, dst, src) -> None:
        self._cp.copyto(dst, self.asarray(src), casting="same_kind")

    def astype(self, a, dtype, copy: bool = True) -> Any:
        return a.astype(dtype, copy=copy)

    def ascontiguous(self, a, dtype=None) -> Any:
        if dtype is None:
            return self._cp.ascontiguousarray(a)
        return self._cp.ascontiguousarray(a, dtype=dtype)

    # -- compute -------------------------------------------------------------
    def matmul(self, a, b, out=None) -> Any:
        if out is None:
            return self._cp.matmul(a, b)
        return self._cp.matmul(a, b, out=out)

    def einsum(self, subscripts: str, *operands) -> Any:
        return self._cp.einsum(subscripts, *operands)

    def conjugate(self, a, out=None) -> Any:
        if out is None:
            return self._cp.conj(a)
        return self._cp.conjugate(a, out=out)

    def add(self, a, b, out=None) -> Any:
        if out is None:
            return a + b
        return self._cp.add(a, b, out=out)

    def multiply(self, a, b, out=None) -> Any:
        if out is None:
            return a * b
        return self._cp.multiply(a, b, out=out)

    def transpose(self, a, axes=None) -> Any:
        if axes is None:
            return a.T
        return a.transpose(axes)

    def ravel(self, a) -> Any:
        return a.ravel()

    def concatenate(self, arrays) -> Any:
        return self._cp.concatenate(arrays)

    # -- introspection -------------------------------------------------------
    def dtype_of(self, a) -> np.dtype:
        if isinstance(a, np.ndarray):
            return a.dtype
        return np.dtype(a.dtype)

    def nbytes(self, a) -> int:
        return int(a.nbytes)

    def size(self, a) -> int:
        return int(a.size)

    def is_contiguous(self, a) -> bool:
        return bool(a.flags["C_CONTIGUOUS"])

    def iscomplex(self, a) -> bool:
        return bool(self._cp.iscomplexobj(a)) if not isinstance(a, np.ndarray) else bool(
            np.iscomplexobj(a)
        )

    def shares_memory(self, a, b) -> bool:
        if isinstance(a, np.ndarray) and isinstance(b, np.ndarray):
            return bool(np.shares_memory(a, b))
        try:
            return bool(self._cp.shares_memory(a, b))
        except Exception:
            return False

    # -- sync ----------------------------------------------------------------
    def synchronize(self) -> None:
        self._cp.cuda.get_current_stream().synchronize()
