"""NumPy backend: the reference implementation, bitwise-stable.

Every method is the *exact* numpy call the hot-path modules made before
the backend layer existed (``np.empty``, ``np.matmul(..., out=)``,
``np.conj``, ``np.copyto(..., casting="same_kind")``, ...), so routing
through this backend changes nothing — not allocation behaviour, not
rounding, not a single bit of any result.  The parity tests assert
exactly that.
"""

from __future__ import annotations

from typing import Any, Tuple

import numpy as np

from repro.backend.base import Backend

__all__ = ["NumpyBackend"]


class NumpyBackend(Backend):
    """Host numpy execution (always available)."""

    name = "numpy"
    is_device = False

    @property
    def xp(self) -> Any:
        return np

    @property
    def fft(self) -> Any:
        return np.fft

    @classmethod
    def probe(cls) -> Tuple[bool, str]:
        return True, "numpy is always available"

    # -- allocation ----------------------------------------------------------
    def empty(self, shape, dtype) -> np.ndarray:
        return np.empty(shape, dtype=dtype)

    def zeros(self, shape, dtype) -> np.ndarray:
        return np.zeros(shape, dtype=dtype)

    # -- movement ------------------------------------------------------------
    def asarray(self, a) -> np.ndarray:
        return np.asarray(a)

    def from_device(self, a) -> np.ndarray:
        return a

    def copy(self, a) -> np.ndarray:
        return a.copy()

    def copyto(self, dst, src) -> None:
        np.copyto(dst, src, casting="same_kind")

    def astype(self, a, dtype, copy: bool = True) -> np.ndarray:
        return a.astype(dtype, copy=copy)

    def ascontiguous(self, a, dtype=None) -> np.ndarray:
        if dtype is None:
            return np.ascontiguousarray(a)
        return np.ascontiguousarray(a, dtype=dtype)

    # -- compute -------------------------------------------------------------
    def matmul(self, a, b, out=None) -> np.ndarray:
        if out is None:
            return np.matmul(a, b)
        return np.matmul(a, b, out=out)

    def einsum(self, subscripts: str, *operands) -> np.ndarray:
        return np.einsum(subscripts, *operands)

    def conjugate(self, a, out=None) -> np.ndarray:
        if out is None:
            return np.conj(a)
        return np.conjugate(a, out=out)

    def add(self, a, b, out=None) -> np.ndarray:
        if out is None:
            return a + b
        return np.add(a, b, out=out)

    def multiply(self, a, b, out=None) -> np.ndarray:
        if out is None:
            return a * b
        return np.multiply(a, b, out=out)

    def transpose(self, a, axes=None) -> np.ndarray:
        if axes is None:
            return a.T
        return a.transpose(axes)

    def ravel(self, a) -> np.ndarray:
        return a.ravel()

    def concatenate(self, arrays) -> np.ndarray:
        return np.concatenate(arrays)

    # -- introspection -------------------------------------------------------
    def dtype_of(self, a) -> np.dtype:
        return np.asarray(a).dtype

    def nbytes(self, a) -> int:
        return int(a.nbytes)

    def size(self, a) -> int:
        return int(a.size)

    def is_contiguous(self, a) -> bool:
        return bool(a.flags["C_CONTIGUOUS"])

    def iscomplex(self, a) -> bool:
        return bool(np.iscomplexobj(a))

    def shares_memory(self, a, b) -> bool:
        return bool(np.shares_memory(a, b))
