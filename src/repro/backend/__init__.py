"""Pluggable array backends for the five-phase pipeline.

See :mod:`repro.backend.base` for the protocol and
:mod:`repro.backend.registry` for the ``REPRO_BACKEND`` fallback chain.
Importing this package never imports torch or cupy — device backend
classes are loaded lazily when named.
"""

from repro.backend.base import (
    Backend,
    BackendFallbackWarning,
    BackendUnavailableError,
    host_empty,
)
from repro.backend.numpy_backend import NumpyBackend
from repro.backend.registry import (
    BACKEND_CHAIN,
    available_backends,
    get_default_backend,
    reset_backend_state,
    resolve_backend,
    set_default_backend,
)

__all__ = [
    "Backend",
    "BackendFallbackWarning",
    "BackendUnavailableError",
    "BACKEND_CHAIN",
    "NumpyBackend",
    "available_backends",
    "get_default_backend",
    "host_empty",
    "reset_backend_state",
    "resolve_backend",
    "set_default_backend",
]
