"""PyTorch backend: CPU or CUDA execution behind the Backend protocol.

Torch's API differs from numpy's in exactly the places the adapter
papers over:

* ``torch.fft.*`` takes ``dim=`` where numpy takes ``axis=`` (and
  ``irfft`` takes ``n=`` like numpy — only the axis keyword differs);
* ``torch.conj`` returns a lazy *view* with a conjugate bit set;
  kernels that hand the result to ``matmul``/slice-assignment need the
  materialized bytes, so the backend uses ``conj_physical``;
* ``torch.matmul(out=)`` refuses some non-contiguous ``out`` views that
  numpy accepts (the GEMV kernels write through ``out[:, :, None]``
  style views), so ``matmul`` falls back to compute-then-``copy_``;
* permutations use ``Tensor.permute``, not ``transpose(axes)``.

Dtypes cross the boundary as numpy dtypes (:meth:`dtype_of` maps
``torch.float32`` and friends back), so the precision lattice and
workspace keys never see a torch dtype.  CPU tensors share memory with
numpy arrays in both directions (``as_tensor`` / ``Tensor.numpy``).
"""

from __future__ import annotations

import importlib
import os
from typing import Any, Tuple

import numpy as np

from repro.backend.base import Backend

__all__ = ["TorchBackend"]

_NP_DTYPES = ("float32", "float64", "complex64", "complex128", "int64", "bool")


class _TorchFFT:
    """numpy-style FFT signatures over ``torch.fft`` (axis -> dim)."""

    def __init__(self, torch_mod) -> None:
        self._fft = torch_mod.fft

    def rfft(self, a, axis: int = -1):
        return self._fft.rfft(a, dim=axis)

    def irfft(self, a, n=None, axis: int = -1):
        return self._fft.irfft(a, n=n, dim=axis)

    def fft(self, a, axis: int = -1):
        return self._fft.fft(a, dim=axis)

    def ifft(self, a, axis: int = -1):
        return self._fft.ifft(a, dim=axis)


class TorchBackend(Backend):
    """PyTorch execution; device picked at construction.

    ``device=None`` selects CUDA when torch sees a GPU, else CPU; the
    ``REPRO_TORCH_DEVICE`` environment variable overrides (e.g. ``cpu``
    to force host execution on a CUDA box, as the CI parity leg does).
    """

    name = "torch"

    def __init__(self, device: Any = None) -> None:
        torch = importlib.import_module("torch")
        self._torch = torch
        if device is None:
            device = os.environ.get("REPRO_TORCH_DEVICE", "").strip() or (
                "cuda" if torch.cuda.is_available() else "cpu"
            )
        self.device = torch.device(device)
        self.is_device = self.device.type != "cpu"
        self._fft_adapter = _TorchFFT(torch)
        self._np2torch = {
            np.dtype(n): getattr(torch, n) for n in _NP_DTYPES if hasattr(torch, n)
        }
        self._torch2np = {t: n for n, t in self._np2torch.items()}

    @property
    def xp(self) -> Any:
        return self._torch

    @property
    def fft(self) -> Any:
        return self._fft_adapter

    @classmethod
    def probe(cls) -> Tuple[bool, str]:
        try:
            importlib.import_module("torch")
        except Exception as exc:  # ImportError or a broken install
            return False, f"torch import failed: {exc}"
        return True, "torch importable"

    # -- dtype plumbing ------------------------------------------------------
    def _map_dtype(self, dtype):
        dt = np.dtype(dtype)
        try:
            return self._np2torch[dt]
        except KeyError:
            raise ValueError(f"dtype {dt} has no torch equivalent") from None

    def dtype_of(self, a) -> np.dtype:
        if isinstance(a, np.ndarray):
            return a.dtype
        if self._torch.is_tensor(a):
            return self._torch2np[a.dtype]
        return np.asarray(a).dtype

    # -- allocation ----------------------------------------------------------
    def empty(self, shape, dtype) -> Any:
        return self._torch.empty(
            tuple(int(s) for s in shape), dtype=self._map_dtype(dtype), device=self.device
        )

    def zeros(self, shape, dtype) -> Any:
        return self._torch.zeros(
            tuple(int(s) for s in shape), dtype=self._map_dtype(dtype), device=self.device
        )

    # -- movement ------------------------------------------------------------
    def asarray(self, a) -> Any:
        if self._torch.is_tensor(a):
            return a if a.device == self.device else a.to(self.device)
        return self._torch.as_tensor(np.asarray(a), device=self.device)

    def from_device(self, a) -> np.ndarray:
        if isinstance(a, np.ndarray):
            return a
        return a.detach().cpu().numpy()

    def copy(self, a) -> Any:
        return a.clone()

    def copyto(self, dst, src) -> None:
        dst.copy_(self.asarray(src))

    def astype(self, a, dtype, copy: bool = True) -> Any:
        td = self._map_dtype(dtype)
        if a.dtype == td:
            return a.clone() if copy else a
        return a.to(td)

    def ascontiguous(self, a, dtype=None) -> Any:
        t = self.asarray(a)
        if dtype is not None:
            t = self.astype(t, dtype, copy=False)
        return t.contiguous()

    # -- compute -------------------------------------------------------------
    def matmul(self, a, b, out=None) -> Any:
        if out is None:
            return self._torch.matmul(a, b)
        try:
            return self._torch.matmul(a, b, out=out)
        except RuntimeError:
            # torch rejects some non-contiguous out views numpy accepts.
            out.copy_(self._torch.matmul(a, b))
            return out

    def einsum(self, subscripts: str, *operands) -> Any:
        return self._torch.einsum(subscripts, *operands)

    def conjugate(self, a, out=None) -> Any:
        if out is None:
            return self._torch.conj_physical(a)
        return self._torch.conj_physical(a, out=out)

    def add(self, a, b, out=None) -> Any:
        if out is None:
            return self._torch.add(a, b)
        return self._torch.add(a, b, out=out)

    def multiply(self, a, b, out=None) -> Any:
        if not self._torch.is_tensor(b):
            b = self._torch.as_tensor(np.asarray(b), device=self.device)
        if out is None:
            return self._torch.mul(a, b)
        return self._torch.mul(a, b, out=out)

    def transpose(self, a, axes=None) -> Any:
        if axes is None:
            axes = tuple(range(a.ndim))[::-1]
        return a.permute(*axes)

    def ravel(self, a) -> Any:
        return self.asarray(a).reshape(-1)

    def concatenate(self, arrays) -> Any:
        return self._torch.cat([self.asarray(a) for a in arrays])

    # -- introspection -------------------------------------------------------
    def nbytes(self, a) -> int:
        if isinstance(a, np.ndarray):
            return int(a.nbytes)
        return int(a.element_size() * a.nelement())

    def size(self, a) -> int:
        if isinstance(a, np.ndarray):
            return int(a.size)
        return int(a.nelement())

    def is_contiguous(self, a) -> bool:
        if isinstance(a, np.ndarray):
            return bool(a.flags["C_CONTIGUOUS"])
        return bool(a.is_contiguous())

    def iscomplex(self, a) -> bool:
        if self._torch.is_tensor(a):
            return bool(a.dtype.is_complex)
        return bool(np.iscomplexobj(a))

    def shares_memory(self, a, b) -> bool:
        if isinstance(a, np.ndarray) and isinstance(b, np.ndarray):
            return bool(np.shares_memory(a, b))
        if self._torch.is_tensor(a) and self._torch.is_tensor(b):
            if a.nelement() == 0 or b.nelement() == 0:
                return False
            if a.device != b.device:
                return False
            a0, b0 = a.storage_offset(), b.storage_offset()
            # Conservative overlap check on the underlying storages.
            same = a.untyped_storage().data_ptr() == b.untyped_storage().data_ptr()
            return bool(same)
        return False

    # -- sync ----------------------------------------------------------------
    def synchronize(self) -> None:
        if self.device.type == "cuda":
            self._torch.cuda.synchronize(self.device)
