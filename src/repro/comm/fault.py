"""Seeded fault injection for the simulated communicator.

The production fleet loses ranks: node reboots, ECC faults, wall-time
eviction.  In the simulation every rank lives in one process, so "a rank
dies" is modeled at the point where a real job would first observe it —
a collective that never completes.  :class:`FailureSchedule` decides, at
every collective a :class:`~repro.comm.simcomm.SimCommunicator` runs,
whether a scheduled failure fires there; when it does the communicator
raises :class:`RankFailure` naming the victim rank, the collective kind
and the global collective index.

Two scheduling modes share one object:

* **Explicit** — ``FailureSchedule(kills=[(index, rank), ...])``: kill
  ``rank`` at the ``index``-th collective (0-based, counted across every
  communicator the schedule is installed on: world, row, column and the
  engines' silent clones, in the deterministic order the SPMD loop runs
  them).  This is what targeted tests use to hit a specific chunk.
* **Seeded** — :meth:`FailureSchedule.seeded`: draw ``n_failures``
  distinct kill points uniformly from the first ``horizon`` collectives
  with ``numpy``'s seeded generator.  Chaos tests print the seed; any
  failure reproduces by rerunning with the same seed.

Each kill fires **once** — replaying the lost work on a rebuilt grid
re-counts collectives past the kill point without retriggering it, and
a multi-kill schedule keeps firing its remaining kills on the rebuilt
engines (cascading failures are just more entries).  The counter is
shared by design: one schedule installed on a whole grid sees the same
deterministic collective sequence the run performs, which is what makes
a printed seed sufficient to reproduce a chaos failure.

:class:`CorruptionSchedule` is the *fail-silent* sibling: instead of
killing a rank it flips one bit in a device buffer or collective
payload at a scheduled event, exactly the way :class:`FailureSchedule`
schedules kills (same explicit/seeded modes, same shared event counter,
same fire-once semantics so chunk replays run clean).  The schedule
itself never raises — the component that fired the event performs the
flip (:func:`repro.util.checksum.flip_bit`), and the *detection* layer
(payload digests, ABFT column checksums, Parseval energy checks) raises
the typed :class:`SilentCorruption`, re-exported here from
:mod:`repro.util.checksum` together with :class:`NumericalHealthError`
(the ``validate="guard"`` NaN/Inf boundary check).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.util.checksum import NumericalHealthError, SilentCorruption
from repro.util.validation import ReproError, check_positive_int

__all__ = [
    "RankFailure",
    "FailureSchedule",
    "SilentCorruption",
    "NumericalHealthError",
    "CorruptionSchedule",
]


class RankFailure(ReproError):
    """A simulated rank died at a collective.

    Carries what the recovery layer needs: the victim ``rank`` (world
    numbering of the grid the schedule was installed on), the collective
    ``op`` it died in, the global ``collective_index`` at which it fired
    and the ``comm_name`` of the communicator that observed it.
    """

    def __init__(
        self, rank: int, op: str, collective_index: int, comm_name: str = "world"
    ) -> None:
        self.rank = int(rank)
        self.op = str(op)
        self.collective_index = int(collective_index)
        self.comm_name = str(comm_name)
        super().__init__(
            f"rank {rank} failed during {op!r} "
            f"(collective #{collective_index} on {comm_name})"
        )


class FailureSchedule:
    """Deterministic schedule of rank kills, counted over collectives.

    Parameters
    ----------
    kills:
        Sequence of ``(collective_index, rank)`` pairs.  Indices are
        0-based positions in the stream of collectives observed by every
        communicator this schedule is installed on; each entry fires at
        most once.
    seed:
        Recorded provenance (set by :meth:`seeded`); chaos fixtures
        print it so a failing scenario can be replayed exactly.
    """

    def __init__(
        self,
        kills: Sequence[Tuple[int, int]] = (),
        seed: Optional[int] = None,
    ) -> None:
        self._pending = {}
        for index, rank in kills:
            index = int(index)
            rank = int(rank)
            if index < 0:
                raise ReproError(f"collective index must be >= 0, got {index}")
            if rank < 0:
                raise ReproError(f"rank must be >= 0, got {rank}")
            if index in self._pending:
                raise ReproError(
                    f"duplicate kill at collective index {index}; one victim "
                    "per collective (schedule more collectives for cascades)"
                )
            self._pending[index] = rank
        self.seed = seed
        self.calls = 0  # collectives observed so far, across installs
        self.fired: List[RankFailure] = []

    @classmethod
    def seeded(
        cls,
        seed: int,
        size: int,
        n_failures: int = 1,
        horizon: int = 32,
        first: int = 0,
    ) -> "FailureSchedule":
        """Draw ``n_failures`` kill points from a seeded generator.

        Kill indices are distinct draws from ``[first, first + horizon)``
        and victims are uniform over ``range(size)``.  Same
        ``(seed, size, n_failures, horizon, first)`` → same schedule.
        """
        check_positive_int(size, "size")
        check_positive_int(horizon, "horizon")
        if n_failures < 1:
            raise ReproError(f"n_failures must be >= 1, got {n_failures}")
        if n_failures > horizon:
            raise ReproError(
                f"cannot place {n_failures} failures in a horizon of {horizon}"
            )
        rng = np.random.default_rng(seed)
        indices = rng.choice(horizon, size=n_failures, replace=False) + first
        ranks = rng.integers(0, size, size=n_failures)
        kills = sorted(
            (int(i), int(r)) for i, r in zip(indices, ranks)
        )
        return cls(kills=kills, seed=int(seed))

    @property
    def pending(self) -> Tuple[Tuple[int, int], ...]:
        """Remaining ``(collective_index, rank)`` kills, ascending."""
        return tuple(sorted(self._pending.items()))

    @property
    def exhausted(self) -> bool:
        """True once every scheduled kill has fired."""
        return not self._pending

    def on_collective(self, op: str, comm_name: str = "world") -> None:
        """Advance the collective counter; raise if a kill is due here.

        Called by :class:`~repro.comm.simcomm.SimCommunicator` at the
        top of every collective.  The kill is consumed *before* raising
        so that replaying the lost work does not immediately re-fire.
        """
        index = self.calls
        self.calls += 1
        rank = self._pending.pop(index, None)
        if rank is not None:
            failure = RankFailure(rank, op, index, comm_name)
            self.fired.append(failure)
            raise failure

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FailureSchedule(pending={self.pending}, fired={len(self.fired)}, "
            f"calls={self.calls}, seed={self.seed})"
        )


class CorruptionSchedule:
    """Deterministic schedule of single-bit flips, counted over events.

    The fail-silent counterpart of :class:`FailureSchedule`.  Events are
    the points the engines declare corruptible: every ``bcast`` /
    ``reduce`` / ``reduce_segments`` on a communicator the schedule is
    installed on, and every FFT / SBGEMM / IFFT stage of an engine it is
    installed on — counted in the deterministic order the SPMD loop runs
    them, shared across installs.  When an event's index is scheduled,
    :meth:`on_event` *consumes* the entry and returns the target rank;
    the firing component then flips one bit of the affected buffer
    (:func:`repro.util.checksum.flip_bit` at :meth:`element_index`, bit
    :attr:`bit`) — silently, exactly like real SDC.  Detection is the
    checksum layer's job; a consumed event never re-fires, so the chunk
    recomputation an :class:`~repro.core.elastic.ElasticEngine` runs
    after detection is clean (and bitwise-exact under
    ``reduction="pairwise"``).

    Parameters
    ----------
    flips:
        ``(event_index, rank)`` pairs: flip a bit of ``rank``'s buffer
        at the ``index``-th event.  Device-site events belong to exactly
        one engine, which flips its own buffer regardless of the rank
        value (the rank still labels the draw for seeded schedules).
    seed:
        Seeds the element-position generator and records provenance.
    bit:
        Bit to flip (default 62, the float64 exponent MSB — the induced
        delta is never small; clamped per-dtype by ``flip_bit``).
    """

    def __init__(
        self,
        flips: Sequence[Tuple[int, int]] = (),
        seed: Optional[int] = None,
        bit: int = 62,
    ) -> None:
        self._pending = {}
        for index, rank in flips:
            index = int(index)
            rank = int(rank)
            if index < 0:
                raise ReproError(f"event index must be >= 0, got {index}")
            if rank < 0:
                raise ReproError(f"rank must be >= 0, got {rank}")
            if index in self._pending:
                raise ReproError(
                    f"duplicate flip at event index {index}; one flip per "
                    "event (schedule more events for multi-flip campaigns)"
                )
            self._pending[index] = rank
        self.seed = seed
        self.bit = int(bit)
        self.calls = 0  # events observed so far, across installs
        self.injected: List[Tuple[int, int, str, str]] = []
        self._rng = np.random.default_rng(seed)

    @classmethod
    def seeded(
        cls,
        seed: int,
        size: int,
        n_flips: int = 1,
        horizon: int = 32,
        first: int = 0,
        bit: int = 62,
    ) -> "CorruptionSchedule":
        """Draw ``n_flips`` flip points from a seeded generator.

        Same contract as :meth:`FailureSchedule.seeded`: event indices
        are distinct draws from ``[first, first + horizon)``, target
        ranks uniform over ``range(size)``, and the same arguments
        always produce the same schedule.
        """
        check_positive_int(size, "size")
        check_positive_int(horizon, "horizon")
        if n_flips < 1:
            raise ReproError(f"n_flips must be >= 1, got {n_flips}")
        if n_flips > horizon:
            raise ReproError(
                f"cannot place {n_flips} flips in a horizon of {horizon}"
            )
        rng = np.random.default_rng(seed)
        indices = rng.choice(horizon, size=n_flips, replace=False) + first
        ranks = rng.integers(0, size, size=n_flips)
        flips = sorted((int(i), int(r)) for i, r in zip(indices, ranks))
        return cls(flips=flips, seed=int(seed), bit=bit)

    @property
    def pending(self) -> Tuple[Tuple[int, int], ...]:
        """Remaining ``(event_index, rank)`` flips, ascending."""
        return tuple(sorted(self._pending.items()))

    @property
    def exhausted(self) -> bool:
        """True once every scheduled flip has been injected."""
        return not self._pending

    def on_event(self, op: str, where: str = "") -> Optional[int]:
        """Advance the event counter; return the target rank if a flip
        is due here, else None.

        The entry is consumed *before* the caller injects, so replaying
        the corrupted work observes a clean schedule.  The injection is
        recorded in :attr:`injected` as
        ``(event_index, rank, op, where)``.
        """
        index = self.calls
        self.calls += 1
        rank = self._pending.pop(index, None)
        if rank is None:
            return None
        self.injected.append((index, int(rank), str(op), str(where)))
        return int(rank)

    def element_index(self, size: int) -> int:
        """Seeded flat position of the next flip within a buffer."""
        check_positive_int(size, "size")
        return int(self._rng.integers(0, size))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CorruptionSchedule(pending={self.pending}, "
            f"injected={len(self.injected)}, calls={self.calls}, "
            f"seed={self.seed}, bit={self.bit})"
        )
