"""Seeded fault injection for the simulated communicator.

The production fleet loses ranks: node reboots, ECC faults, wall-time
eviction.  In the simulation every rank lives in one process, so "a rank
dies" is modeled at the point where a real job would first observe it —
a collective that never completes.  :class:`FailureSchedule` decides, at
every collective a :class:`~repro.comm.simcomm.SimCommunicator` runs,
whether a scheduled failure fires there; when it does the communicator
raises :class:`RankFailure` naming the victim rank, the collective kind
and the global collective index.

Two scheduling modes share one object:

* **Explicit** — ``FailureSchedule(kills=[(index, rank), ...])``: kill
  ``rank`` at the ``index``-th collective (0-based, counted across every
  communicator the schedule is installed on: world, row, column and the
  engines' silent clones, in the deterministic order the SPMD loop runs
  them).  This is what targeted tests use to hit a specific chunk.
* **Seeded** — :meth:`FailureSchedule.seeded`: draw ``n_failures``
  distinct kill points uniformly from the first ``horizon`` collectives
  with ``numpy``'s seeded generator.  Chaos tests print the seed; any
  failure reproduces by rerunning with the same seed.

Each kill fires **once** — replaying the lost work on a rebuilt grid
re-counts collectives past the kill point without retriggering it, and
a multi-kill schedule keeps firing its remaining kills on the rebuilt
engines (cascading failures are just more entries).  The counter is
shared by design: one schedule installed on a whole grid sees the same
deterministic collective sequence the run performs, which is what makes
a printed seed sufficient to reproduce a chaos failure.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.util.validation import ReproError, check_positive_int

__all__ = ["RankFailure", "FailureSchedule"]


class RankFailure(ReproError):
    """A simulated rank died at a collective.

    Carries what the recovery layer needs: the victim ``rank`` (world
    numbering of the grid the schedule was installed on), the collective
    ``op`` it died in, the global ``collective_index`` at which it fired
    and the ``comm_name`` of the communicator that observed it.
    """

    def __init__(
        self, rank: int, op: str, collective_index: int, comm_name: str = "world"
    ) -> None:
        self.rank = int(rank)
        self.op = str(op)
        self.collective_index = int(collective_index)
        self.comm_name = str(comm_name)
        super().__init__(
            f"rank {rank} failed during {op!r} "
            f"(collective #{collective_index} on {comm_name})"
        )


class FailureSchedule:
    """Deterministic schedule of rank kills, counted over collectives.

    Parameters
    ----------
    kills:
        Sequence of ``(collective_index, rank)`` pairs.  Indices are
        0-based positions in the stream of collectives observed by every
        communicator this schedule is installed on; each entry fires at
        most once.
    seed:
        Recorded provenance (set by :meth:`seeded`); chaos fixtures
        print it so a failing scenario can be replayed exactly.
    """

    def __init__(
        self,
        kills: Sequence[Tuple[int, int]] = (),
        seed: Optional[int] = None,
    ) -> None:
        self._pending = {}
        for index, rank in kills:
            index = int(index)
            rank = int(rank)
            if index < 0:
                raise ReproError(f"collective index must be >= 0, got {index}")
            if rank < 0:
                raise ReproError(f"rank must be >= 0, got {rank}")
            if index in self._pending:
                raise ReproError(
                    f"duplicate kill at collective index {index}; one victim "
                    "per collective (schedule more collectives for cascades)"
                )
            self._pending[index] = rank
        self.seed = seed
        self.calls = 0  # collectives observed so far, across installs
        self.fired: List[RankFailure] = []

    @classmethod
    def seeded(
        cls,
        seed: int,
        size: int,
        n_failures: int = 1,
        horizon: int = 32,
        first: int = 0,
    ) -> "FailureSchedule":
        """Draw ``n_failures`` kill points from a seeded generator.

        Kill indices are distinct draws from ``[first, first + horizon)``
        and victims are uniform over ``range(size)``.  Same
        ``(seed, size, n_failures, horizon, first)`` → same schedule.
        """
        check_positive_int(size, "size")
        check_positive_int(horizon, "horizon")
        if n_failures < 1:
            raise ReproError(f"n_failures must be >= 1, got {n_failures}")
        if n_failures > horizon:
            raise ReproError(
                f"cannot place {n_failures} failures in a horizon of {horizon}"
            )
        rng = np.random.default_rng(seed)
        indices = rng.choice(horizon, size=n_failures, replace=False) + first
        ranks = rng.integers(0, size, size=n_failures)
        kills = sorted(
            (int(i), int(r)) for i, r in zip(indices, ranks)
        )
        return cls(kills=kills, seed=int(seed))

    @property
    def pending(self) -> Tuple[Tuple[int, int], ...]:
        """Remaining ``(collective_index, rank)`` kills, ascending."""
        return tuple(sorted(self._pending.items()))

    @property
    def exhausted(self) -> bool:
        """True once every scheduled kill has fired."""
        return not self._pending

    def on_collective(self, op: str, comm_name: str = "world") -> None:
        """Advance the collective counter; raise if a kill is due here.

        Called by :class:`~repro.comm.simcomm.SimCommunicator` at the
        top of every collective.  The kill is consumed *before* raising
        so that replaying the lost work does not immediately re-fire.
        """
        index = self.calls
        self.calls += 1
        rank = self._pending.pop(index, None)
        if rank is not None:
            failure = RankFailure(rank, op, index, comm_name)
            self.fired.append(failure)
            raise failure

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FailureSchedule(pending={self.pending}, fired={len(self.fired)}, "
            f"calls={self.calls}, seed={self.seed})"
        )
