"""Skew-searching load balancer for ``row_ranges`` / ``col_ranges``.

The event-timeline engine (:class:`~repro.core.parallel.ParallelFFTMatvec`)
charges per-rank compute on private clocks and takes the max over ranks
at every collective, so an irregular partition — or a heterogeneous grid
where ranks own devices of differing throughput — charges genuine skew:
the slowest rank gates the wall.  This module closes the loop and
*removes* that skew: given a per-part cost model it **searches** the 1-D
block partition minimizing the modeled max-over-parts cost.

The search is deterministic and two-staged, the classic
measure-then-rebalance loop of workflow-coupled simulators:

1. **weighted-split seed** — part lengths proportional to the inverse
   per-element cost (a fast rank gets more rows), with cost-aware
   rounding so the integer lengths sum to ``n`` without handing the
   leftover elements to expensive parts;
2. **greedy boundary-shift descent** — every interior boundary is tried
   one element left and one element right; the single shift that most
   reduces the max-over-parts objective is committed, and the loop
   repeats until no shift improves it (convergence) or the round cap is
   hit.  The seed and every committed candidate are validated with
   :func:`~repro.comm.partition.check_extents`, so each partition the
   search walks through satisfies the engine's contract.

Cost models come from two sources:

* **analytic** — :func:`analytic_unit_costs` derives per-part seconds
  per element from per-rank :class:`~repro.gpu.specs.GPUSpec` throughput
  (a heterogeneous grid balances before any measurement exists);
* **measured** — :func:`measured_unit_costs` divides the per-rank
  compute seconds harvested from the engine's private clocks
  (:meth:`~repro.core.parallel.ParallelFFTMatvec.rank_compute_report`)
  by the current extents, turning PR 3's skew *diagnostic* into the
  input of the rebalance.

:func:`rebalance_rows` / :func:`rebalance_cols` wire both sources to a
live engine; :func:`recovered_skew_fraction` scores how much of the
injected skew a searched partition wins back (the acceptance metric of
``benchmarks/test_balance_grid.py``).

Only modeled *time* moves: repartitioning the searched axis never
regroups a floating-point accumulation (the contraction and reduction
grouping live on the *other* axis), so the forward pipeline is
bitwise-invariant under row repartitions and the adjoint pipeline under
column repartitions.  Repartitioning the *contraction* axis does
regroup the sum in the engines' default ``reduction="fast"`` mode — the
vendor kernels accumulate per local panel and the grid reduce is
indexed by rank — but ``reduction="pairwise"``
(:class:`~repro.core.parallel.ParallelFFTMatvec`) pins the whole
distributed contraction to one fixed tree over *global* element
indices, making results bitwise identical for **any** partition the
search produces, including width-1 parts.  The historical
``min_part=2`` escape hatch (keep every part non-degenerate so the
vendor BLAS never switches to a width-1 kernel) remains available for
fast-mode runs, but the default ``min_part=1`` searches the full
partition space: in pairwise mode there is no reproducibility reason to
exclude single-element parts.

:func:`balance_grid` extends the 1-D search to the joint row x col
problem — alternating axis passes against a per-rank unit-cost model
(rank compute ~ ``unit(r, c) * nd_r * nm_c``) to a fixed point — and
:func:`affine_part_costs` upgrades the measured cost model from linear
to affine (``cost = a + b * n``, per-rank constants separated from the
per-element slope) using two measurement rounds under different
partitions; :func:`measure_rebalance_loop` accepts
``cost_model="affine"`` to use it, which stops the single-pass
under-correction the linear model needs extra rounds to walk off.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.comm.partition import check_extents
from repro.gpu.specs import GPUSpec
from repro.util.dtypes import Precision
from repro.util.validation import ReproError, check_positive_int

__all__ = [
    "BalanceResult",
    "GridBalanceResult",
    "MeasureRebalanceResult",
    "balance_extents",
    "balance_grid",
    "linear_cost",
    "affine_cost",
    "analytic_unit_costs",
    "measured_unit_costs",
    "affine_part_costs",
    "rebalance_rows",
    "rebalance_cols",
    "measure_rebalance_loop",
    "recovered_skew_fraction",
]

# Part-cost callable: (part_index, part_length) -> modeled seconds.
PartCost = Callable[[int, int], float]


@dataclass(frozen=True)
class BalanceResult:
    """Outcome of one partition search.

    Attributes
    ----------
    extents:
        The searched partition — contiguous ``(start, stop)`` per part,
        valid under :func:`~repro.comm.partition.check_extents`.
    modeled_max:
        Max-over-parts modeled seconds of ``extents`` (the objective).
    modeled_costs:
        Per-part modeled seconds of ``extents``.
    seed_max:
        Objective of the weighted-split seed, before descent.
    initial_max:
        Objective of the partition the caller started from (equals
        ``seed_max`` when no initial partition was supplied).
    rounds:
        Boundary-shift rounds the descent ran.
    candidates_checked:
        Total candidate partitions validated and evaluated.
    converged:
        True when the descent stopped because no single boundary shift
        improved the objective (False only if the round cap was hit).
    """

    extents: List[Tuple[int, int]]
    modeled_max: float
    modeled_costs: List[float]
    seed_max: float
    initial_max: float
    rounds: int
    candidates_checked: int
    converged: bool

    @property
    def modeled_skew(self) -> float:
        """Max-over-mean of the searched partition's modeled costs."""
        mean = sum(self.modeled_costs) / len(self.modeled_costs)
        return self.modeled_max / mean if mean > 0 else 1.0

    @property
    def improvement(self) -> float:
        """``initial_max / modeled_max`` — the searched speedup."""
        return self.initial_max / self.modeled_max if self.modeled_max > 0 else 1.0


def linear_cost(unit_costs: Sequence[float]) -> PartCost:
    """Part-cost callable for a linear model: ``cost = unit * length``.

    ``unit_costs[i]`` is part ``i``'s modeled seconds per owned element —
    the output of :func:`analytic_unit_costs` or
    :func:`measured_unit_costs`.
    """
    units = [float(u) for u in unit_costs]
    if not units:
        raise ReproError("unit_costs must be non-empty")
    for i, u in enumerate(units):
        if u <= 0:
            raise ReproError(f"unit_costs[{i}] must be > 0, got {u}")

    def cost(part: int, length: int) -> float:
        return units[part] * length

    return cost


def affine_cost(
    constants: Sequence[float], unit_costs: Sequence[float]
) -> PartCost:
    """Part-cost callable for an affine model: ``cost = a + b * length``.

    ``constants[i]`` (seconds, >= 0) captures part ``i``'s
    extent-independent charges — kernel launch overheads and the phases
    batched over the *other* grid axis — and ``unit_costs[i]`` (> 0) the
    per-element slope.  The constants do not move when the boundary
    does, which is exactly why a linear fit to a measurement that
    includes them under-corrects; see :func:`affine_part_costs`.
    """
    a = [float(x) for x in constants]
    b = [float(x) for x in unit_costs]
    if not a or len(a) != len(b):
        raise ReproError(
            f"constants and unit_costs must be equal-length and non-empty, "
            f"got {len(a)} and {len(b)}"
        )
    for i, x in enumerate(a):
        if x < 0:
            raise ReproError(f"constants[{i}] must be >= 0, got {x}")
    for i, x in enumerate(b):
        if x <= 0:
            raise ReproError(f"unit_costs[{i}] must be > 0, got {x}")

    def cost(part: int, length: int) -> float:
        return a[part] + b[part] * length

    return cost


def _lengths(extents: Sequence[Tuple[int, int]]) -> List[int]:
    return [stop - start for start, stop in extents]


def _extents_from_lengths(lengths: Sequence[int]) -> List[Tuple[int, int]]:
    out, start = [], 0
    for ln in lengths:
        out.append((start, start + ln))
        start += ln
    return out


def _weighted_seed(
    n: int, parts: int, part_cost: PartCost, min_part: int
) -> List[int]:
    """Integer part lengths ~ inverse per-element cost, cost-aware rounding.

    Every part keeps at least ``min_part`` elements; the deterministic
    remainder distribution (cheapest-to-grow takes leftovers, costliest
    sheds excess, ties to the lower index) makes the whole search
    reproducible.
    """
    inv = []
    for i in range(parts):
        u = part_cost(i, 1)
        if u <= 0:
            raise ReproError(f"part {i} has non-positive unit cost {u}")
        inv.append(1.0 / u)
    total_inv = sum(inv)
    raw = [n * w / total_inv for w in inv]
    lengths = [max(min_part, int(f)) for f in raw]
    # Cost-aware top-up / trim to land exactly on n: each leftover
    # element goes to the part whose cost grows least by taking it, and
    # each excess element leaves the currently most expensive part.
    # (Largest-remainder would hand leftovers to high-cost parts and
    # seed the descent inside a plateau it cannot escape.)
    while sum(lengths) < n:
        j = min(
            range(parts), key=lambda i: (part_cost(i, lengths[i] + 1), i)
        )
        lengths[j] += 1
    while sum(lengths) > n:
        j = max(
            (i for i in range(parts) if lengths[i] > min_part),
            key=lambda i: (part_cost(i, lengths[i]), -i),
        )
        lengths[j] -= 1
    return lengths


def balance_extents(
    n: int,
    parts: int,
    part_cost: PartCost,
    initial: Optional[Sequence[Tuple[int, int]]] = None,
    max_rounds: Optional[int] = None,
    min_part: int = 1,
    what: str = "extents",
) -> BalanceResult:
    """Search a 1-D block partition minimizing the max-over-parts cost.

    Parameters
    ----------
    n, parts:
        Elements to split and number of contiguous parts.
    part_cost:
        ``(part_index, part_length) -> modeled seconds`` — the per-rank
        cost model the objective is evaluated on.  Linear models come
        from :func:`linear_cost`; any callable monotone in ``length``
        works (the descent only compares objective values).
    initial:
        Optional partition to score as the starting point (e.g. the
        skewed partition currently charged by the engine);
        ``initial_max`` in the result records its objective.  The search
        itself always starts from the weighted-split seed.
    max_rounds:
        Cap on descent rounds (default ``4 * n + 16`` — far beyond what
        any monotone objective needs; ``converged=False`` flags a hit).
    min_part:
        Smallest part length the search may produce (default 1 — any
        valid partition, which ``reduction="pairwise"`` engines accept
        with bitwise-identical results).  Pass 2 to keep every part
        non-degenerate when balancing a fast-mode contraction axis
        (width-1 BLAS panels may round differently there).
    what:
        Label used in validation error messages.

    Returns a :class:`BalanceResult`; ``result.extents`` passes
    :func:`~repro.comm.partition.check_extents` by construction, as does
    the seed and every candidate the descent committed along the walk.
    The descent accepts only strict improvements, so the result is a
    local optimum of the max-over-parts objective — exact for linear
    costs from a cost-aware seed, and within integer granularity of the
    optimum in practice; a plateau of equal-max partitions can in
    principle pin it above the global optimum for adversarial cost
    functions at very small ``n``.
    """
    check_positive_int(n, "n")
    check_positive_int(parts, "parts")
    check_positive_int(min_part, "min_part")
    if parts * min_part > n:
        raise ReproError(
            f"cannot split {n} elements into {parts} parts of >= {min_part}"
        )
    if max_rounds is None:
        max_rounds = 4 * n + 16

    def objective(lengths: Sequence[int]) -> Tuple[float, List[float]]:
        costs = [part_cost(i, ln) for i, ln in enumerate(lengths)]
        return max(costs), costs

    candidates_checked = 0

    def validated(lengths: Sequence[int]) -> List[Tuple[int, int]]:
        nonlocal candidates_checked
        candidates_checked += 1
        return check_extents(_extents_from_lengths(lengths), n, parts, what=what)

    initial_max = None
    if initial is not None:
        init = check_extents(initial, n, parts, what=f"initial {what}")
        initial_max, _ = objective(_lengths(init))

    lengths = _weighted_seed(n, parts, part_cost, min_part)
    validated(lengths)
    best_max, best_costs = objective(lengths)
    seed_max = best_max

    rounds = 0
    converged = False
    while rounds < max_rounds:
        rounds += 1
        # Try every interior boundary one element in each direction; the
        # move is "shrink one side, grow the other", so only the two
        # adjacent parts' costs change — the rest of the objective is the
        # largest untouched cost, found in O(1) from the top three (at
        # most two indices are excluded per candidate).
        top3 = heapq.nlargest(3, ((c, i) for i, c in enumerate(best_costs)))
        best_move: Optional[Tuple[float, int, int]] = None  # (new_max, boundary, delta)
        for b in range(parts - 1):
            for delta in (-1, +1):  # +1: grow the left part; -1: shrink it
                new_left = lengths[b] + delta
                new_right = lengths[b + 1] - delta
                if new_left < min_part or new_right < min_part:
                    continue
                others = next(
                    (c for c, i in top3 if i != b and i != b + 1), 0.0
                )
                new_max = max(
                    others, part_cost(b, new_left), part_cost(b + 1, new_right)
                )
                if new_max < best_max and (
                    best_move is None or new_max < best_move[0]
                ):
                    best_move = (new_max, b, delta)
        if best_move is None:
            converged = True
            break
        _, b, delta = best_move
        lengths[b] += delta
        lengths[b + 1] -= delta
        # Each accepted candidate must satisfy the engine's partition
        # contract; rejected probes can only differ by one in-range
        # boundary, so validating the committed ones covers the walk.
        validated(lengths)
        best_max, best_costs = objective(lengths)

    extents = validated(lengths)
    if initial_max is None:
        initial_max = seed_max
    return BalanceResult(
        extents=extents,
        modeled_max=best_max,
        modeled_costs=best_costs,
        seed_max=seed_max,
        initial_max=initial_max,
        rounds=rounds,
        candidates_checked=candidates_checked,
        converged=converged,
    )


def analytic_unit_costs(
    specs: Dict[Tuple[int, int], GPUSpec],
    pr: int,
    pc: int,
    axis: str = "row",
    precision: Precision = Precision.DOUBLE,
) -> List[float]:
    """Per-part seconds-per-element from per-rank device throughput.

    The compute phases are memory-bound, so a rank's cost per owned
    element scales with the inverse of its *achieved* bandwidth —
    ``peak_bandwidth * sbgemv_peak_fraction`` at the given precision (the
    SBGEMV/SBGEMM phase dominates; see ``perf/phase_model``).  Ranks in
    the same grid row (column) run concurrently, so a part's unit cost is
    the max over the other grid axis: the slowest device in the row
    gates it.

    ``axis="row"`` returns ``pr`` per-row costs, ``axis="col"`` returns
    ``pc`` per-column costs.  Values are *relative* seconds — the search
    objective only ever compares them, so the absolute scale cancels.
    """
    check_positive_int(pr, "pr")
    check_positive_int(pc, "pc")
    if axis not in ("row", "col"):
        raise ReproError(f"axis must be 'row' or 'col', got {axis!r}")
    prec = Precision.parse(precision)
    missing = [
        (r, c) for r in range(pr) for c in range(pc) if (r, c) not in specs
    ]
    if missing:
        raise ReproError(f"specs missing ranks {missing} of a {pr}x{pc} grid")

    def unit(r: int, c: int) -> float:
        spec = specs[(r, c)]
        return 1.0 / (spec.peak_bandwidth * spec.peak_fraction(prec))

    if axis == "row":
        return [max(unit(r, c) for c in range(pc)) for r in range(pr)]
    return [max(unit(r, c) for r in range(pr)) for c in range(pc)]


def measured_unit_costs(
    report: Dict[Tuple[int, int], float],
    ranges: Sequence[Tuple[int, int]],
    pr: int,
    pc: int,
    axis: str = "row",
) -> List[float]:
    """Per-part seconds-per-element from measured per-rank compute time.

    ``report`` is the engine's
    :meth:`~repro.core.parallel.ParallelFFTMatvec.rank_compute_report`
    (seconds charged on each rank's private clock); ``ranges`` is the
    partition of the searched axis *under which it was measured*
    (``row_ranges`` for ``axis="row"``).  Each rank's unit cost is its
    measured seconds divided by the elements it owned; the part cost is
    the max over the concurrent grid axis.
    """
    if axis not in ("row", "col"):
        raise ReproError(f"axis must be 'row' or 'col', got {axis!r}")
    parts = pr if axis == "row" else pc
    if len(ranges) != parts:
        raise ReproError(
            f"ranges has {len(ranges)} parts, expected {parts} for axis={axis!r}"
        )
    if not report:
        raise ReproError(
            "empty rank report — run the engine with a GPU spec so per-rank "
            "clocks measure compute (ParallelFFTMatvec(spec=...))"
        )
    units: List[float] = []
    for i in range(parts):
        start, stop = ranges[i]
        owned = stop - start
        if owned <= 0:
            raise ReproError(f"ranges[{i}] is empty ({start}, {stop})")
        concurrent = (
            [(i, c) for c in range(pc)] if axis == "row" else [(r, i) for r in range(pr)]
        )
        seconds = []
        for rank in concurrent:
            if rank not in report:
                raise ReproError(f"rank report missing rank {rank}")
            seconds.append(report[rank])
        slowest = max(seconds)
        if slowest <= 0:
            raise ReproError(
                f"rank(s) {concurrent} report zero compute seconds — run at "
                "least one matvec/matmat before rebalancing"
            )
        units.append(slowest / owned)
    return units


def _part_seconds(
    report: Dict[Tuple[int, int], float],
    ranges: Sequence[Tuple[int, int]],
    pr: int,
    pc: int,
    axis: str,
) -> List[Tuple[float, int]]:
    """Per-part ``(max-over-concurrent seconds, owned length)`` pairs."""
    units = measured_unit_costs(report, ranges, pr, pc, axis=axis)
    lengths = _lengths(ranges)
    return [(u * ln, ln) for u, ln in zip(units, lengths)]


def affine_part_costs(
    report_a: Dict[Tuple[int, int], float],
    ranges_a: Sequence[Tuple[int, int]],
    report_b: Dict[Tuple[int, int], float],
    ranges_b: Sequence[Tuple[int, int]],
    pr: int,
    pc: int,
    axis: str = "col",
) -> PartCost:
    """Fit an affine cost model ``cost_i = a_i + b_i * n`` per part.

    Two measurement rounds under *different* partitions of the searched
    axis pin down both coefficients: the slope is the finite difference
    ``b = (c1 - c2) / (n1 - n2)`` and the constant ``a = c1 - b * n1``
    is the part's extent-independent charge (launch overheads, the
    phases batched over the other grid axis).  A single-round linear fit
    folds that constant into the slope and under-corrects — the
    measure→rebalance loop then needs extra rounds to walk the boundary
    the rest of the way; with the affine model one search lands on it.

    Parts whose extent did not change between the rounds (or whose
    finite-difference slope/constant comes out non-positive — possible
    at small extents where the measurement is not affine-monotone) fall
    back to the conservative linear model, using the larger of the two
    rounds' per-element costs so the fallback never undersells a part.

    ``report_a``/``ranges_a`` and ``report_b``/``ranges_b`` are
    :meth:`~repro.core.parallel.ParallelFFTMatvec.rank_compute_report`
    dictionaries with the partitions they were measured under (same
    workload both rounds).  Returns a :data:`PartCost` for
    :func:`balance_extents`.
    """
    pa = _part_seconds(report_a, ranges_a, pr, pc, axis)
    pb = _part_seconds(report_b, ranges_b, pr, pc, axis)
    constants: List[float] = []
    slopes: List[float] = []
    for (c1, n1), (c2, n2) in zip(pa, pb):
        linear = max(c1 / n1, c2 / n2)
        if n1 == n2:
            constants.append(0.0)
            slopes.append(linear)
            continue
        b = (c1 - c2) / (n1 - n2)
        a = c1 - b * n1
        if b <= 0 or a < 0:
            constants.append(0.0)
            slopes.append(linear)
        else:
            constants.append(a)
            slopes.append(b)
    return affine_cost(constants, slopes)


def rebalance_rows(
    engine, max_rounds: Optional[int] = None, min_part: int = 1
) -> BalanceResult:
    """Search new ``row_ranges`` for a live engine from measured clocks.

    Harvests :meth:`~repro.core.parallel.ParallelFFTMatvec.rank_compute_report`,
    derives per-row unit costs under the engine's current partition, and
    searches the sensor axis.  Feed ``result.extents`` back as
    ``row_ranges`` of a new :class:`~repro.core.parallel.ParallelFFTMatvec`
    — the forward matvec/matmat numerics are bitwise-unchanged; only the
    charged wall time moves.
    """
    report = engine.rank_compute_report()
    units = measured_unit_costs(
        report, engine.row_ranges, engine.grid.pr, engine.grid.pc, axis="row"
    )
    return balance_extents(
        engine.nd,
        engine.grid.pr,
        linear_cost(units),
        initial=engine.row_ranges,
        max_rounds=max_rounds,
        min_part=min_part,
        what="row_ranges",
    )


def rebalance_cols(
    engine, max_rounds: Optional[int] = None, min_part: int = 1
) -> BalanceResult:
    """Search new ``col_ranges`` for a live engine from measured clocks.

    The parameter-axis counterpart of :func:`rebalance_rows` (the axis
    whose repartition leaves the *adjoint* pipeline bitwise-unchanged).
    """
    report = engine.rank_compute_report()
    units = measured_unit_costs(
        report, engine.col_ranges, engine.grid.pr, engine.grid.pc, axis="col"
    )
    return balance_extents(
        engine.nm,
        engine.grid.pc,
        linear_cost(units),
        initial=engine.col_ranges,
        max_rounds=max_rounds,
        min_part=min_part,
        what="col_ranges",
    )


@dataclass(frozen=True)
class GridBalanceResult:
    """Outcome of the joint row x col partition search.

    Attributes
    ----------
    row_extents, col_extents:
        The searched 2-D block partition, each axis valid under
        :func:`~repro.comm.partition.check_extents`.
    modeled_max:
        Max-over-ranks ``unit(r, c) * nd_r * nm_c`` of the searched
        partition — the objective the alternation minimizes.
    initial_max:
        The same objective on the starting partition.
    rank_costs:
        Modeled per-rank seconds of the searched partition, keyed
        ``(r, c)``.
    passes:
        Alternating row→col passes executed.
    history:
        Per-pass ``(row BalanceResult, col BalanceResult)`` pairs.
    converged:
        True when a pass changed neither axis (joint fixed point) or
        revisited an earlier state (a +-1 boundary cycle); False only
        when ``max_passes`` ran out first.
    """

    row_extents: List[Tuple[int, int]]
    col_extents: List[Tuple[int, int]]
    modeled_max: float
    initial_max: float
    rank_costs: Dict[Tuple[int, int], float]
    passes: int
    history: List[Tuple[BalanceResult, BalanceResult]]
    converged: bool

    @property
    def improvement(self) -> float:
        """``initial_max / modeled_max`` — the searched joint speedup."""
        return self.initial_max / self.modeled_max if self.modeled_max > 0 else 1.0


def _even_lengths(n: int, parts: int) -> List[int]:
    base, rem = divmod(n, parts)
    return [base + (1 if i < rem else 0) for i in range(parts)]


def balance_grid(
    nd: int,
    nm: int,
    pr: int,
    pc: int,
    unit_cost: Callable[[int, int], float],
    row_initial: Optional[Sequence[Tuple[int, int]]] = None,
    col_initial: Optional[Sequence[Tuple[int, int]]] = None,
    max_passes: int = 8,
    min_part: int = 1,
) -> GridBalanceResult:
    """Jointly search ``row_ranges`` x ``col_ranges`` on a 2-D cost model.

    Rank ``(r, c)`` owns an ``nd_r x nm_c`` tile and its modeled compute
    is ``unit_cost(r, c) * nd_r * nm_c`` — the memory-bound phases scale
    with the tile area.  The two axes couple through the max: moving a
    row boundary changes which *column* widths matter on the slowest
    row, so 1-D passes in isolation can each look converged while the
    joint objective is not.  This search alternates: balance the rows
    against per-row unit costs ``max_c unit(r, c) * nm_c`` frozen at the
    current columns, then the columns against ``max_r unit(r, c) * nd_r``
    frozen at the *new* rows, repeating until a full pass moves neither
    axis.  Each 1-D pass is a :func:`balance_extents` search, so every
    partition the alternation walks through satisfies the engine's
    contract, and the objective is non-increasing across passes (each
    pass minimizes the same max with the other axis held fixed).

    ``unit_cost(r, c)`` gives rank ``(r, c)``'s seconds per owned cell —
    from device specs (``1 / (bandwidth * peak_fraction)``, the
    heterogeneous-fleet case) or measurements.  ``row_initial`` /
    ``col_initial`` default to the even split :class:`ProcessGrid`
    would produce.  ``min_part=1`` is safe for pairwise-mode engines on
    both axes (see the module docstring).
    """
    check_positive_int(nd, "nd")
    check_positive_int(nm, "nm")
    check_positive_int(pr, "pr")
    check_positive_int(pc, "pc")
    check_positive_int(max_passes, "max_passes")
    check_positive_int(min_part, "min_part")
    if pr * min_part > nd or pc * min_part > nm:
        raise ReproError(
            f"cannot split {nd}x{nm} over a {pr}x{pc} grid with parts >= {min_part}"
        )
    units: Dict[Tuple[int, int], float] = {}
    for r in range(pr):
        for c in range(pc):
            u = float(unit_cost(r, c))
            if u <= 0:
                raise ReproError(f"unit_cost({r}, {c}) must be > 0, got {u}")
            units[(r, c)] = u

    rows = (
        check_extents(row_initial, nd, pr, what="row_initial")
        if row_initial is not None
        else _extents_from_lengths(_even_lengths(nd, pr))
    )
    cols = (
        check_extents(col_initial, nm, pc, what="col_initial")
        if col_initial is not None
        else _extents_from_lengths(_even_lengths(nm, pc))
    )

    def rank_costs(
        row_ext: Sequence[Tuple[int, int]], col_ext: Sequence[Tuple[int, int]]
    ) -> Dict[Tuple[int, int], float]:
        rl, cl = _lengths(row_ext), _lengths(col_ext)
        return {
            (r, c): units[(r, c)] * rl[r] * cl[c]
            for r in range(pr)
            for c in range(pc)
        }

    initial_max = max(rank_costs(rows, cols).values())
    history: List[Tuple[BalanceResult, BalanceResult]] = []
    seen = {(tuple(map(tuple, rows)), tuple(map(tuple, cols)))}
    converged = False
    for _ in range(max_passes):
        col_len = _lengths(cols)
        row_units = [
            max(units[(r, c)] * col_len[c] for c in range(pc)) for r in range(pr)
        ]
        row_res = balance_extents(
            nd,
            pr,
            linear_cost(row_units),
            initial=rows,
            min_part=min_part,
            what="row_ranges",
        )
        row_len = _lengths(row_res.extents)
        col_units = [
            max(units[(r, c)] * row_len[r] for r in range(pr)) for c in range(pc)
        ]
        col_res = balance_extents(
            nm,
            pc,
            linear_cost(col_units),
            initial=cols,
            min_part=min_part,
            what="col_ranges",
        )
        history.append((row_res, col_res))
        moved = row_res.extents != rows or col_res.extents != cols
        rows, cols = row_res.extents, col_res.extents
        state = (tuple(map(tuple, rows)), tuple(map(tuple, cols)))
        if not moved or state in seen:
            converged = True
            break
        seen.add(state)
    costs = rank_costs(rows, cols)
    return GridBalanceResult(
        row_extents=rows,
        col_extents=cols,
        modeled_max=max(costs.values()),
        initial_max=initial_max,
        rank_costs=costs,
        passes=len(history),
        history=history,
        converged=converged,
    )


@dataclass(frozen=True)
class MeasureRebalanceResult:
    """Outcome of the iterated measure→rebalance loop.

    Attributes
    ----------
    extents:
        The best partition the loop *measured* — the one whose
        max-over-ranks compute seconds (the quantity every collective
        waits on) were smallest.  Near the optimum a linear unit-cost
        model can flap a boundary by +-1 between rounds; returning the
        measured argmin makes the loop immune to ending on the worse
        side of the flap.
    rounds:
        Measurement rounds executed (engine builds + workload runs).
    history:
        Per-round :class:`BalanceResult` objects, in order.
    converged:
        True when a round's search returned the partition it measured
        under, or revisited a previously measured partition (a +-1
        boundary cycle) — either way the charged skew has stopped
        improving.  False only when ``max_rounds`` ran out first.
    """

    extents: List[Tuple[int, int]]
    rounds: int
    history: List[BalanceResult]
    converged: bool


def _rebalance_state_arrays(
    current: Optional[List[Tuple[int, int]]],
    visited: Dict[Tuple[Tuple[int, int], ...], float],
    prev_round: Optional[Tuple[Dict[Tuple[int, int], float], Tuple]],
) -> Dict[str, "np.ndarray"]:
    """Flatten one rebalance round boundary into checkpoint arrays."""
    import numpy as np

    arrays: Dict[str, np.ndarray] = {}
    if current is not None:
        arrays["current"] = np.asarray(current, dtype=np.int64)
    keys = list(visited.keys())
    arrays["visited_keys"] = (
        np.asarray(keys, dtype=np.int64)
        if keys
        else np.zeros((0, 0, 2), dtype=np.int64)
    )
    arrays["visited_vals"] = np.asarray(
        [visited[k] for k in keys], dtype=np.float64
    )
    if prev_round is not None:
        report, under = prev_round
        coords = sorted(report.keys())
        arrays["prev_report_coords"] = np.asarray(coords, dtype=np.int64)
        arrays["prev_report_vals"] = np.asarray(
            [report[c] for c in coords], dtype=np.float64
        )
        arrays["prev_under"] = np.asarray(under, dtype=np.int64)
    return arrays


def _rebalance_state_from_arrays(arrays: Dict[str, "np.ndarray"]):
    """Inverse of :func:`_rebalance_state_arrays`."""
    current = None
    if "current" in arrays:
        current = [tuple(int(v) for v in row) for row in arrays["current"]]
    visited: Dict[Tuple[Tuple[int, int], ...], float] = {}
    keys, vals = arrays["visited_keys"], arrays["visited_vals"]
    for i in range(len(vals)):
        part = tuple(tuple(int(v) for v in row) for row in keys[i])
        visited[part] = float(vals[i])
    prev_round = None
    if "prev_under" in arrays:
        coords = arrays["prev_report_coords"]
        rvals = arrays["prev_report_vals"]
        report = {
            (int(coords[i][0]), int(coords[i][1])): float(rvals[i])
            for i in range(len(rvals))
        }
        under = tuple(
            tuple(int(v) for v in row) for row in arrays["prev_under"]
        )
        prev_round = (report, under)
    return current, visited, prev_round


def measure_rebalance_loop(
    make_engine: Callable[[Optional[Sequence[Tuple[int, int]]]], object],
    run_workload: Callable[[object], object],
    axis: str = "col",
    initial: Optional[Sequence[Tuple[int, int]]] = None,
    max_rounds: int = 12,
    min_part: int = 1,
    rtol: float = 0.02,
    cost_model: str = "linear",
    store=None,
    checkpoint_key: str = "rebalance",
    fingerprint: Optional[str] = None,
    resume: bool = False,
) -> MeasureRebalanceResult:
    """Iterate measure → search until the charged skew converges.

    One :func:`rebalance_rows` / :func:`rebalance_cols` pass assumes the
    per-rank compute is *linear* in the owned extent; the real pipeline
    also carries per-rank constants (launch overheads, the phases batched
    over the other axis), so a single pass under-corrects.  This loop
    closes the feedback: each round builds a fresh engine on the current
    partition (``make_engine(extents)``), charges its private clocks with
    the caller's workload (``run_workload(engine)``), and searches again
    from the new measurements.  The fixed point — the search returning
    the very partition it measured under — is exactly charged-skew
    equality: every grid part's measured seconds per owned element times
    its extent agree, so the max-over-ranks collective charge cannot be
    improved by any single boundary shift.

    Parameters
    ----------
    make_engine:
        Builds a :class:`~repro.core.parallel.ParallelFFTMatvec` (with
        per-rank specs) from a partition of the searched axis; called
        with ``initial`` (possibly None = the engine's balanced default)
        on round 0.
    run_workload:
        Runs the representative workload on the engine (e.g. one blocked
        ``rmatmat``); its return value is ignored — only the per-rank
        clock charges matter.
    axis:
        ``"col"`` searches ``col_ranges`` (parameter axis — the adjoint
        pipeline is bitwise-invariant under it), ``"row"`` searches
        ``row_ranges`` (sensor axis — forward-invariant).
    initial:
        Partition to start from (e.g. a skewed one under study).
    max_rounds:
        Measurement-round cap; ``converged=False`` flags a hit.
    min_part:
        Smallest part length any round may produce (see
        :func:`balance_extents`; 2 guarantees bitwise-reproducible
        numerics across every partition the loop visits).
    rtol:
        Relative convergence tolerance: a round whose search predicts
        less than ``rtol`` improvement over the partition it just
        measured ends the loop (the remaining skew is within the cost
        model's resolution — near the optimum a linear model only flaps
        boundaries by +-1).  0 disables the tolerance and requires an
        exact fixed point or revisit.
    cost_model:
        ``"linear"`` (default) searches each round on the measured
        per-element costs alone.  ``"affine"`` fits
        :func:`affine_part_costs` from the current round and the
        previous one as soon as two rounds under different partitions
        exist, separating per-rank constants from the per-element slope
        — the loop then stops under-correcting and typically converges
        in fewer measurement rounds (round 0 necessarily runs linear).
    store / checkpoint_key / fingerprint / resume:
        With a :class:`~repro.util.checkpoint.CheckpointStore` the loop
        snapshots its search state (current partition, every measured
        partition's wall, the previous round's report for the affine
        fit) after each measurement round — each round costs an engine
        build plus a full workload run, the expensive state here.
        ``resume=True`` restores the latest snapshot (validated against
        ``fingerprint``) and runs only the remaining rounds; ``history``
        then holds post-resume rounds while ``rounds`` counts the total.
    """
    from repro.util.checkpoint import CheckpointError
    if axis not in ("row", "col"):
        raise ReproError(f"axis must be 'row' or 'col', got {axis!r}")
    if cost_model not in ("linear", "affine"):
        raise ReproError(
            f"cost_model must be 'linear' or 'affine', got {cost_model!r}"
        )
    check_positive_int(max_rounds, "max_rounds")
    rebalance = rebalance_cols if axis == "col" else rebalance_rows
    current = list(initial) if initial is not None else None
    history: List[BalanceResult] = []
    # Measured max-over-ranks compute seconds per visited partition —
    # comparable across rounds because every round builds a fresh engine
    # and runs the same workload.
    visited: Dict[Tuple[Tuple[int, int], ...], float] = {}
    converged = False
    prev_round: Optional[Tuple[Dict[Tuple[int, int], float], Tuple]] = None
    rounds_done = 0
    fp = fingerprint if fingerprint is not None else "unkeyed"
    if store is not None and resume and checkpoint_key in store:
        snap = store.load(
            checkpoint_key,
            expect_fingerprint=fingerprint if fingerprint is not None else None,
        )
        if snap.meta.get("axis") != axis or snap.meta.get("cost_model") != cost_model:
            raise CheckpointError(
                f"checkpoint {checkpoint_key!r} ran axis="
                f"{snap.meta.get('axis')!r}/cost_model="
                f"{snap.meta.get('cost_model')!r}, caller wants "
                f"axis={axis!r}/cost_model={cost_model!r}"
            )
        current, visited, prev_round = _rebalance_state_from_arrays(snap.arrays)
        rounds_done = int(snap.meta["rounds_done"])
    for _ in range(rounds_done, max_rounds):
        engine = make_engine(current)
        run_workload(engine)
        measured_under = tuple(
            tuple(e)
            for e in (engine.col_ranges if axis == "col" else engine.row_ranges)
        )
        report = engine.rank_compute_report()
        measured_max = max(report.values())
        prev = visited.get(measured_under)
        if prev is None or measured_max < prev:
            visited[measured_under] = measured_max
        if (
            cost_model == "affine"
            and prev_round is not None
            and prev_round[1] != measured_under
        ):
            cost = affine_part_costs(
                prev_round[0],
                list(prev_round[1]),
                report,
                list(measured_under),
                engine.grid.pr,
                engine.grid.pc,
                axis=axis,
            )
            res = balance_extents(
                engine.nm if axis == "col" else engine.nd,
                engine.grid.pc if axis == "col" else engine.grid.pr,
                cost,
                initial=list(measured_under),
                min_part=min_part,
                what="col_ranges" if axis == "col" else "row_ranges",
            )
        else:
            res = rebalance(engine, min_part=min_part)
        prev_round = (report, measured_under)
        history.append(res)
        searched = tuple(tuple(e) for e in res.extents)
        # res.initial_max scores the partition this round measured under
        # the same unit costs as res.modeled_max, so their ratio is the
        # improvement the search still predicts.
        within_tol = res.modeled_max >= res.initial_max * (1.0 - rtol)
        if searched == measured_under or searched in visited or within_tol:
            # Fixed point, a revisit (+-1 boundary flap near the
            # optimum), or sub-tolerance predicted gain: the charged
            # skew has converged.
            rounds_done += 1
            converged = True
            break
        current = res.extents
        rounds_done += 1
        if store is not None:
            store.save(
                checkpoint_key,
                _rebalance_state_arrays(current, visited, prev_round),
                fingerprint=fp,
                meta={
                    "rounds_done": rounds_done,
                    "axis": axis,
                    "cost_model": cost_model,
                },
            )
    if not visited:
        raise CheckpointError(
            f"rebalance checkpoint {checkpoint_key!r} resumed at round "
            f"{rounds_done} with max_rounds={max_rounds}: no measurements"
        )
    best = min(visited, key=lambda part: (visited[part], part))
    return MeasureRebalanceResult(
        extents=[tuple(e) for e in best],
        rounds=rounds_done,
        history=history,
        converged=converged,
    )


def recovered_skew_fraction(
    skewed_wall: float, rebalanced_wall: float, balanced_wall: float
) -> float:
    """Fraction of the injected skew a searched partition won back.

    ``(skewed - rebalanced) / (skewed - balanced)``: 1.0 means the
    search fully recovered the balanced wall, 0.0 means it bought
    nothing.  Values above 1 (the search beat the nominal balanced
    split, possible on heterogeneous grids) are reported as-is.
    """
    injected = skewed_wall - balanced_wall
    if injected <= 0:
        return 1.0
    return (skewed_wall - rebalanced_wall) / injected
