"""SPMD communicator simulated in-process.

:class:`SimCommunicator` represents a communicator of ``size`` ranks.
Because all ranks live in one Python process, collectives take a list of
per-rank arrays (index = rank) and return per-rank results, mirroring
the upper-case buffer API of mpi4py / the NCCL collectives the hipified
FFTMatvec calls.

Numerics are faithful (tree reduction order, computation in the caller's
dtype); time is charged to an optional shared :class:`SimClock` using the
tree cost model.  Subcommunicators (grid rows/columns) carry a ``span``
describing their placement in the world so the hierarchical network
model can tell a contiguous row from a machine-spanning column.

Collectives are *payload-shape agnostic*: the blocked multi-RHS grid
path broadcasts and tree-reduces whole ``(Nt, nx, k)`` blocks in one
call, so k right-hand sides pay one latency tree (volume scales by k,
latency does not) and the tree-reduction numerics apply elementwise per
column — the ``eps * log2(p)`` accumulation term simply rides along for
every column of the block.  Per-operation call counters
(``op_counts``) let benchmarks assert the batched path really collapses
k collectives into one.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.comm.collectives import tree_collective_time, tree_reduce_arrays
from repro.comm.netmodel import NetworkModel, SIMPLE_NETWORK
from repro.util.dtypes import Precision
from repro.util.timing import SimClock
from repro.util.validation import ReproError, check_positive_int

__all__ = ["SimCommunicator"]


class SimCommunicator:
    """A simulated communicator over ``size`` ranks.

    Parameters
    ----------
    size:
        Number of ranks.
    net:
        Network model used for timing (default: flat test network).
    clock:
        Shared simulated clock; collectives advance it by the modeled
        time (all ranks are synchronized — collectives are blocking).
    span:
        Consecutive machine ranks this communicator's members are spread
        over (>= size); a world communicator has span == size, a strided
        grid-column subcommunicator spans nearly the whole machine.
    """

    def __init__(
        self,
        size: int,
        net: NetworkModel = SIMPLE_NETWORK,
        clock: Optional[SimClock] = None,
        span: Optional[int] = None,
        name: str = "world",
    ) -> None:
        self.size = check_positive_int(size, "size")
        self.net = net
        self.clock = clock
        self.span = self.size if span is None else max(span, self.size)
        self.name = name
        self.bytes_communicated = 0.0
        self.collective_calls = 0
        self.op_counts: dict = {
            "bcast": 0,
            "reduce": 0,
            "allreduce": 0,
            "allgather": 0,
            "scatter": 0,
            "barrier": 0,
        }

    # -- helpers -----------------------------------------------------------
    def _check_per_rank(self, arrays: Sequence[np.ndarray], what: str) -> List[np.ndarray]:
        if len(arrays) != self.size:
            raise ReproError(
                f"{what}: expected {self.size} per-rank arrays, got {len(arrays)}"
            )
        return [np.asarray(a) for a in arrays]

    def _charge(self, k: int, nbytes: float, phase: str) -> float:
        t = tree_collective_time(k, nbytes, self.net, span=self.span)
        if self.clock is not None:
            with self.clock.phase(phase):
                self.clock.advance(t)
        self.bytes_communicated += nbytes * max(k - 1, 0)
        self.collective_calls += 1
        return t

    # -- collectives ---------------------------------------------------------
    def bcast(self, value: np.ndarray, root: int = 0, phase: str = "comm") -> List[np.ndarray]:
        """Broadcast root's array to all ranks; returns per-rank copies."""
        if not (0 <= root < self.size):
            raise ReproError(f"root {root} out of range for size {self.size}")
        buf = np.asarray(value)
        self.op_counts["bcast"] += 1
        self._charge(self.size, buf.nbytes, phase)
        return [buf.copy() for _ in range(self.size)]

    def reduce(
        self,
        arrays: Sequence[np.ndarray],
        root: int = 0,
        precision: Optional[Precision] = None,
        phase: str = "comm",
    ) -> np.ndarray:
        """Tree-sum per-rank arrays to the root; returns the root's result.

        ``precision`` sets the accumulation precision (the paper's
        mixed-precision framework may run the Phase-5 reduction in
        single precision).
        """
        bufs = self._check_per_rank(arrays, "reduce")
        if not (0 <= root < self.size):
            raise ReproError(f"root {root} out of range for size {self.size}")
        out = tree_reduce_arrays(bufs, precision=precision)
        self.op_counts["reduce"] += 1
        self._charge(self.size, bufs[0].nbytes, phase)
        return out

    def allreduce(
        self,
        arrays: Sequence[np.ndarray],
        precision: Optional[Precision] = None,
        phase: str = "comm",
    ) -> List[np.ndarray]:
        """Reduce + broadcast; every rank receives the identical sum."""
        bufs = self._check_per_rank(arrays, "allreduce")
        out = tree_reduce_arrays(bufs, precision=precision)
        self.op_counts["allreduce"] += 1
        # reduce + bcast trees; charge both.
        self._charge(self.size, bufs[0].nbytes, phase)
        self._charge(self.size, bufs[0].nbytes, phase)
        return [out.copy() for _ in range(self.size)]

    def allgather(self, arrays: Sequence[np.ndarray], phase: str = "comm") -> List[np.ndarray]:
        """Concatenate per-rank arrays; every rank receives the whole."""
        bufs = self._check_per_rank(arrays, "allgather")
        gathered = np.concatenate([b.ravel() for b in bufs])
        self.op_counts["allgather"] += 1
        self._charge(self.size, gathered.nbytes, phase)
        return [gathered.copy() for _ in range(self.size)]

    def scatter(self, chunks: Sequence[np.ndarray], root: int = 0, phase: str = "comm") -> List[np.ndarray]:
        """Distribute root's per-rank chunks."""
        bufs = self._check_per_rank(chunks, "scatter")
        if not (0 <= root < self.size):
            raise ReproError(f"root {root} out of range for size {self.size}")
        self.op_counts["scatter"] += 1
        self._charge(self.size, max(b.nbytes for b in bufs), phase)
        return [b.copy() for b in bufs]

    def barrier(self, phase: str = "comm") -> None:
        """Synchronize (latency-only collective)."""
        self.op_counts["barrier"] += 1
        self._charge(self.size, 0.0, phase)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimCommunicator({self.name!r}, size={self.size}, span={self.span})"
