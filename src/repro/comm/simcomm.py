"""SPMD communicator simulated in-process.

:class:`SimCommunicator` represents a communicator of ``size`` ranks.
Because all ranks live in one Python process, collectives take a list of
per-rank arrays (index = rank) and return per-rank results, mirroring
the upper-case buffer API of mpi4py / the NCCL collectives the hipified
FFTMatvec calls.

Numerics are faithful (tree reduction order, computation in the caller's
dtype); time is charged to an optional shared :class:`SimClock` using the
tree cost model.  Subcommunicators (grid rows/columns) carry a ``span``
describing their placement in the world so the hierarchical network
model can tell a contiguous row from a machine-spanning column.

Collectives are *payload-shape agnostic*: the blocked multi-RHS grid
path broadcasts and tree-reduces whole ``(Nt, nx, k)`` blocks in one
call, so k right-hand sides pay one latency tree (volume scales by k,
latency does not) and the tree-reduction numerics apply elementwise per
column — the ``eps * log2(p)`` accumulation term simply rides along for
every column of the block.  Per-operation call counters (``op_counts``)
and byte totals (``op_bytes``) let benchmarks assert per-stage batching
without rebuilding the communicator (:meth:`reset_op_counts`).

Time is charged to the shared clock directly (blocking collectives), or
— inside an :meth:`SimCommunicator.on_stream` block — onto a timeline
stream, so an overlapped schedule can prefetch a broadcast on its comm
stream while compute proceeds on another.
"""

from __future__ import annotations

import contextlib
from typing import Any, Iterator, List, Optional, Sequence

from repro.backend import Backend, NumpyBackend
from repro.comm.collectives import (
    fixed_tree_reduce_segments,
    tree_collective_time,
    tree_reduce_arrays,
)
from repro.comm.netmodel import NetworkModel, SIMPLE_NETWORK
from repro.util import checksum as _ck
from repro.util.dtypes import Precision
from repro.util.timing import SimClock, Stream
from repro.util.validation import ReproError, check_positive_int
from repro.util.workspace import Workspace

__all__ = ["SimCommunicator"]

_NUMPY = NumpyBackend()


class SimCommunicator:
    """A simulated communicator over ``size`` ranks.

    Parameters
    ----------
    size:
        Number of ranks.
    net:
        Network model used for timing (default: flat test network).
    clock:
        Shared simulated clock; collectives advance it by the modeled
        time (all ranks are synchronized — collectives are blocking).
    span:
        Consecutive machine ranks this communicator's members are spread
        over (>= size); a world communicator has span == size, a strided
        grid-column subcommunicator spans nearly the whole machine.
    backend:
        Array backend the collectives stage payloads with (default
        numpy).  Individual collectives accept a per-call ``backend=``
        override for mixed host/device traffic.
    """

    _OPS = ("bcast", "reduce", "allreduce", "allgather", "scatter", "barrier")

    def __init__(
        self,
        size: int,
        net: NetworkModel = SIMPLE_NETWORK,
        clock: Optional[SimClock] = None,
        span: Optional[int] = None,
        name: str = "world",
        backend: Optional[Backend] = None,
    ) -> None:
        self.size = check_positive_int(size, "size")
        self.net = net
        self.clock = clock
        self.span = self.size if span is None else max(span, self.size)
        self.name = name
        self.backend = backend if backend is not None else _NUMPY
        self.stream: Optional[Stream] = None
        self.bytes_communicated = 0.0
        self.collective_calls = 0
        self.op_counts: dict = {op: 0 for op in self._OPS}
        self.op_bytes: dict = {op: 0.0 for op in self._OPS}
        # Optional fault injection (see repro.comm.fault): consulted at
        # the top of every collective; None means no failures ever.
        self.failures = None
        # Optional fail-silent injection + payload verification: a
        # CorruptionSchedule flips bits in transported payloads, and
        # verify_payloads re-checks every received copy against the
        # sender's digest (on automatically whenever a schedule is
        # installed; settable on its own for defense-only runs).
        self.corruption = None
        self.verify_payloads = False

    # -- fault injection -----------------------------------------------------
    def install_failure_schedule(self, schedule) -> None:
        """Attach a :class:`~repro.comm.fault.FailureSchedule` (or None).

        The schedule's collective counter is shared across every
        communicator it is installed on, so one schedule installed on a
        whole grid observes the run's deterministic collective sequence.
        """
        self.failures = schedule

    def install_corruption_schedule(self, schedule) -> None:
        """Attach a :class:`~repro.comm.fault.CorruptionSchedule` (or None).

        Every ``bcast``/``reduce``/``reduce_segments`` then fires one
        schedule event (shared counter across installs, like the failure
        schedule's); a due event flips one bit of the target rank's
        received copy or reduce contribution *in transport*.  Installing
        a schedule also switches :attr:`verify_payloads` on so the
        flipped payload is caught at receive and raised as
        :class:`~repro.comm.fault.SilentCorruption`; disarming with
        ``None`` switches verification back off.
        """
        self.corruption = schedule
        self.verify_payloads = schedule is not None

    def _maybe_fail(self, op: str) -> None:
        """Raise :class:`~repro.comm.fault.RankFailure` if one is due.

        Runs before the collective's numerics or timing: a dead rank
        means the collective never completes, so nothing is charged and
        no counters move for the op that observed the failure.
        """
        if self.failures is not None:
            self.failures.on_collective(op, self.name)

    def _corruption_target(self, op: str):
        """Fire one corruption event; returns (target_rank, event_index)."""
        if self.corruption is None:
            return None, None
        target = self.corruption.on_event(op, self.name)
        if target is None:
            return None, None
        return target % self.size, self.corruption.calls - 1

    # -- stream routing -----------------------------------------------------
    @contextlib.contextmanager
    def on_stream(self, stream: Optional[Stream]) -> Iterator[None]:
        """Charge collectives inside the block onto a timeline stream.

        The collective's numerics still run eagerly (ranks are simulated
        in-process); only the modeled time rides the stream, letting a
        scheduler overlap it against compute.  Phase attribution happens
        at charge time on the stream's shared clock.  ``None`` restores
        direct clock charging.
        """
        prev = self.stream
        self.stream = stream
        try:
            yield
        finally:
            self.stream = prev

    # -- helpers -----------------------------------------------------------
    def _check_per_rank(
        self, arrays: Sequence[Any], what: str, be: Backend
    ) -> List[Any]:
        if len(arrays) != self.size:
            raise ReproError(
                f"{what}: expected {self.size} per-rank arrays, got {len(arrays)}"
            )
        return [be.asarray(a) for a in arrays]

    def _charge(self, k: int, nbytes: float, phase: str, op: str = "") -> float:
        t = tree_collective_time(k, nbytes, self.net, span=self.span)
        if self.stream is not None:
            self.stream.charge(t, phase=phase)
        elif self.clock is not None:
            with self.clock.phase(phase):
                self.clock.advance(t)
        moved = nbytes * max(k - 1, 0)
        self.bytes_communicated += moved
        self.collective_calls += 1
        if op:
            self.op_bytes[op] += moved
        return t

    def reset_op_counts(self) -> None:
        """Zero the traffic counters (call counts, per-op and total bytes).

        Benchmarks asserting per-stage batching can reset between stages
        instead of rebuilding the communicator (which would also reset
        the shared clock wiring).
        """
        self.bytes_communicated = 0.0
        self.collective_calls = 0
        self.op_counts = {op: 0 for op in self._OPS}
        self.op_bytes = {op: 0.0 for op in self._OPS}

    # -- collectives ---------------------------------------------------------
    def bcast(
        self,
        value: Any,
        root: int = 0,
        phase: str = "comm",
        workspace: Optional[Workspace] = None,
        tag: str = "bcast",
        backend: Optional[Backend] = None,
    ) -> List[Any]:
        """Broadcast root's array to all ranks; returns per-rank copies.

        With a ``workspace`` the per-rank receive buffers are persistent
        arena buffers keyed by ``tag`` and rank — repeated broadcasts of
        the same payload shape (the grid engine's chunk loop) reuse them
        instead of allocating ``size`` fresh copies per call.  Callers
        must have consumed the previous copies for the same tag (the
        usual checkout discipline).
        """
        self._maybe_fail("bcast")
        target, event = self._corruption_target("bcast")
        be = backend if backend is not None else self.backend
        if not (0 <= root < self.size):
            raise ReproError(f"root {root} out of range for size {self.size}")
        buf = be.asarray(value)
        verify = self.verify_payloads or target is not None
        digest = _ck.payload_digest(buf) if verify else None
        self.op_counts["bcast"] += 1
        self._charge(self.size, be.nbytes(buf), phase, op="bcast")
        if workspace is None:
            copies = [be.copy(buf) for _ in range(self.size)]
        else:
            copies = []
            for rank in range(self.size):
                recv = workspace.buffer(
                    f"{tag}/r{rank}", tuple(buf.shape), be.dtype_of(buf)
                )
                be.copyto(recv, buf)
                copies.append(recv)
        if target is not None:
            # The flip happens "on the wire": the sender's digest is
            # honest, the target rank's received copy is not.
            _ck.flip_bit(
                copies[target],
                self.corruption.element_index(2 * int(be.size(buf))),
                bit=self.corruption.bit,
            )
        if verify:
            for rank, recv in enumerate(copies):
                _ck.verify_payload(
                    recv, digest, op="bcast", phase=phase, rank=rank,
                    collective_index=event, comm_name=self.name,
                )
        return copies

    def reduce(
        self,
        arrays: Sequence[Any],
        root: int = 0,
        precision: Optional[Precision] = None,
        phase: str = "comm",
        backend: Optional[Backend] = None,
    ) -> Any:
        """Tree-sum per-rank arrays to the root; returns the root's result.

        ``precision`` sets the accumulation precision (the paper's
        mixed-precision framework may run the Phase-5 reduction in
        single precision).
        """
        self._maybe_fail("reduce")
        target, event = self._corruption_target("reduce")
        be = backend if backend is not None else self.backend
        bufs = self._check_per_rank(arrays, "reduce", be)
        if not (0 <= root < self.size):
            raise ReproError(f"root {root} out of range for size {self.size}")
        verify = self.verify_payloads or target is not None
        digests = [_ck.payload_digest(b) for b in bufs] if verify else None
        if target is not None:
            # Corrupt the target's contribution in transport — on a copy,
            # so the caller's partial buffers stay intact for the replay.
            bufs[target] = be.copy(bufs[target])
            _ck.flip_bit(
                bufs[target],
                self.corruption.element_index(2 * int(be.size(bufs[target]))),
                bit=self.corruption.bit,
            )
        if verify:
            for rank, b in enumerate(bufs):
                _ck.verify_payload(
                    b, digests[rank], op="reduce", phase=phase, rank=rank,
                    collective_index=event, comm_name=self.name,
                )
        out = tree_reduce_arrays(bufs, precision=precision, backend=be)
        self.op_counts["reduce"] += 1
        self._charge(self.size, be.nbytes(bufs[0]), phase, op="reduce")
        return out

    def reduce_segments(
        self,
        segments: Sequence[Any],
        n: int,
        root: int = 0,
        precision: Optional[Precision] = None,
        phase: str = "comm",
        backend: Optional[Backend] = None,
    ) -> Any:
        """Partition-invariant reduce of canonical contraction segments.

        ``segments`` holds one dict per rank, mapping virtual tree
        extents (:func:`repro.util.pairwise.canonical_segments` of the
        rank's contiguous slice of a global axis of length ``n``) to
        partial arrays.  The root receives the fixed-tree merge
        (:func:`repro.comm.collectives.fixed_tree_reduce_segments`) —
        **bitwise identical for any partition**, unlike :meth:`reduce`,
        whose tree is indexed by rank.

        Cost: each rank ships all of its segment partials up the tree,
        so the charged payload is the *largest per-rank total* — the
        slowest contributor gates the collective.  A rank's range
        decomposes into at most ``2*log2(n)`` segments, each a full
        output-part panel, so this reduce moves more bytes than the
        post-IFFT :meth:`reduce` of the fast path; that volume is part
        of the determinism tax the benchmarks report.
        """
        self._maybe_fail("reduce")
        target, event = self._corruption_target("reduce")
        be = backend if backend is not None else self.backend
        if len(segments) != self.size:
            raise ReproError(
                f"reduce_segments: expected {self.size} per-rank segment "
                f"dicts, got {len(segments)}"
            )
        if not (0 <= root < self.size):
            raise ReproError(f"root {root} out of range for size {self.size}")
        verify = self.verify_payloads or target is not None
        digests = [_ck.table_digest(t) for t in segments] if verify else None
        if target is not None:
            # Flip one bit of one of the target's segment panels, on
            # copies so the caller's tables survive for the replay.
            segments = list(segments)
            segments[target] = {
                key: be.copy(be.asarray(a))
                for key, a in segments[target].items()
            }
            _ck.flip_table_bit(
                segments[target],
                self.corruption.element_index(1 << 30),
                bit=self.corruption.bit,
            )
        if verify:
            for rank, table in enumerate(segments):
                _ck.verify_table(
                    table, digests[rank], op="reduce", phase=phase, rank=rank,
                    collective_index=event, comm_name=self.name,
                )
        merged: dict = {}
        for rank, table in enumerate(segments):
            if not table:
                raise ReproError(f"rank {rank} contributed zero segments")
            for key in table:
                if key in merged:
                    raise ReproError(
                        f"segment {key} contributed by more than one rank"
                    )
            merged.update(table)
        out = fixed_tree_reduce_segments(
            merged, n, precision=precision, backend=be
        )
        self.op_counts["reduce"] += 1
        nbytes = max(
            float(sum(be.nbytes(be.asarray(a)) for a in table.values()))
            for table in segments
        )
        self._charge(self.size, nbytes, phase, op="reduce")
        return out

    def allreduce(
        self,
        arrays: Sequence[Any],
        precision: Optional[Precision] = None,
        phase: str = "comm",
        backend: Optional[Backend] = None,
    ) -> List[Any]:
        """Reduce + broadcast; every rank receives the identical sum."""
        self._maybe_fail("allreduce")
        be = backend if backend is not None else self.backend
        bufs = self._check_per_rank(arrays, "allreduce", be)
        out = tree_reduce_arrays(bufs, precision=precision, backend=be)
        self.op_counts["allreduce"] += 1
        # reduce + bcast trees; charge both.
        self._charge(self.size, be.nbytes(bufs[0]), phase, op="allreduce")
        self._charge(self.size, be.nbytes(bufs[0]), phase, op="allreduce")
        return [be.copy(out) for _ in range(self.size)]

    def allgather(
        self,
        arrays: Sequence[Any],
        phase: str = "comm",
        backend: Optional[Backend] = None,
    ) -> List[Any]:
        """Concatenate per-rank arrays; every rank receives the whole."""
        self._maybe_fail("allgather")
        be = backend if backend is not None else self.backend
        bufs = self._check_per_rank(arrays, "allgather", be)
        gathered = be.concatenate([be.ravel(b) for b in bufs])
        self.op_counts["allgather"] += 1
        self._charge(self.size, be.nbytes(gathered), phase, op="allgather")
        return [be.copy(gathered) for _ in range(self.size)]

    def scatter(
        self,
        chunks: Sequence[Any],
        root: int = 0,
        phase: str = "comm",
        backend: Optional[Backend] = None,
    ) -> List[Any]:
        """Distribute root's per-rank chunks."""
        self._maybe_fail("scatter")
        be = backend if backend is not None else self.backend
        bufs = self._check_per_rank(chunks, "scatter", be)
        if not (0 <= root < self.size):
            raise ReproError(f"root {root} out of range for size {self.size}")
        self.op_counts["scatter"] += 1
        self._charge(self.size, max(be.nbytes(b) for b in bufs), phase, op="scatter")
        return [be.copy(b) for b in bufs]

    def barrier(self, phase: str = "comm") -> None:
        """Synchronize (latency-only collective)."""
        self._maybe_fail("barrier")
        self.op_counts["barrier"] += 1
        self._charge(self.size, 0.0, phase, op="barrier")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimCommunicator({self.name!r}, size={self.size}, span={self.span})"
