"""RCCL/NCCL-flavored collective API over the SPMD simulator.

The hipified FFTMatvec calls NCCL functions (RCCL keeps the ``nccl``
names, only the headers change — see :mod:`repro.hip.mappings`).  This
module provides that C-style surface over :class:`SimCommunicator`:
communicators are created from a unique id with ``comm_init_rank``,
collectives take (send, recv, count, datatype, op) style arguments, and
``group_start``/``group_end`` batch calls the way NCCL group semantics
do.  Because all ranks live in one process, each rank's handle records
its contribution and the collective resolves when every rank has
arrived — which also means the tests can verify NCCL's actual contract
(a collective completes only when all ranks call it).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.comm.netmodel import NetworkModel, SIMPLE_NETWORK
from repro.comm.simcomm import SimCommunicator
from repro.util.dtypes import Precision
from repro.util.timing import SimClock
from repro.util.validation import ReproError

__all__ = [
    "NcclDataType",
    "NcclOp",
    "NcclUniqueId",
    "NcclComm",
    "get_unique_id",
    "comm_init_rank",
]


class NcclDataType(enum.Enum):
    """The subset of ncclDataType_t FFTMatvec uses."""

    ncclFloat = np.float32
    ncclDouble = np.float64

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(self.value)

    @property
    def precision(self) -> Precision:
        return (
            Precision.SINGLE if self is NcclDataType.ncclFloat else Precision.DOUBLE
        )


class NcclOp(enum.Enum):
    ncclSum = "sum"
    ncclMax = "max"
    ncclMin = "min"


@dataclass
class NcclUniqueId:
    """Opaque identifier binding ranks into one communicator."""

    nranks: int
    net: NetworkModel = SIMPLE_NETWORK
    clock: Optional[SimClock] = None
    _pending: Dict[str, dict] = field(default_factory=dict)
    _comm: Optional[SimCommunicator] = None
    _ranks: Dict[int, "NcclComm"] = field(default_factory=dict)


def get_unique_id(
    nranks: int,
    net: NetworkModel = SIMPLE_NETWORK,
    clock: Optional[SimClock] = None,
) -> NcclUniqueId:
    """ncclGetUniqueId: create the id the root shares with all ranks."""
    if nranks < 1:
        raise ReproError(f"nranks must be >= 1, got {nranks}")
    return NcclUniqueId(nranks=nranks, net=net, clock=clock)


def comm_init_rank(uid: NcclUniqueId, rank: int) -> "NcclComm":
    """ncclCommInitRank: join the communicator as ``rank``."""
    if not (0 <= rank < uid.nranks):
        raise ReproError(f"rank {rank} out of range for nranks {uid.nranks}")
    if rank in uid._ranks:
        raise ReproError(f"rank {rank} already initialized")
    if uid._comm is None:
        uid._comm = SimCommunicator(
            uid.nranks, net=uid.net, clock=uid.clock, name="nccl"
        )
    comm = NcclComm(uid=uid, rank=rank)
    uid._ranks[rank] = comm
    return comm


class NcclComm:
    """Per-rank communicator handle (ncclComm_t)."""

    def __init__(self, uid: NcclUniqueId, rank: int) -> None:
        self._uid = uid
        self.rank = rank
        self.destroyed = False
        self._group_depth = 0
        self._group_queue: List[tuple] = []

    @property
    def nranks(self) -> int:
        return self._uid.nranks

    def destroy(self) -> None:
        """ncclCommDestroy."""
        if self.destroyed:
            raise ReproError("communicator already destroyed")
        self.destroyed = True
        del self._uid._ranks[self.rank]

    # -- group semantics ------------------------------------------------------
    def group_start(self) -> None:
        """ncclGroupStart: defer collectives until the matching end."""
        self._check_alive()
        self._group_depth += 1

    def group_end(self) -> None:
        """ncclGroupEnd: issue the collectives deferred in this group."""
        self._check_alive()
        if self._group_depth == 0:
            raise ReproError("ncclGroupEnd without ncclGroupStart")
        self._group_depth -= 1
        if self._group_depth == 0:
            queue, self._group_queue = self._group_queue, []
            for op_name, args in queue:
                getattr(self, op_name)(*args)

    def _maybe_defer(self, op_name: str, *args) -> bool:
        if self._group_depth > 0:
            self._group_queue.append((op_name, args))
            return True
        return False

    # -- collectives -----------------------------------------------------------
    def _check_alive(self) -> None:
        if self.destroyed:
            raise ReproError("operation on destroyed communicator")

    def _rendezvous(self, kind: str, payload) -> Optional[list]:
        """Record this rank's arrival; the last rank runs the collective.

        Returns the per-rank payload list when this call completes the
        collective, else None (the results were stored for each rank by
        the completing call).
        """
        slot = self._uid._pending.setdefault(kind, {"contrib": {}, "result": {}})
        if self.rank in slot["contrib"]:
            raise ReproError(
                f"rank {self.rank} called {kind} twice before completion"
            )
        slot["contrib"][self.rank] = payload
        if len(slot["contrib"]) < self.nranks:
            return None
        contributions = [slot["contrib"][r] for r in range(self.nranks)]
        del self._uid._pending[kind]
        return contributions

    def all_reduce(
        self,
        sendbuf: np.ndarray,
        datatype: NcclDataType,
        op: NcclOp = NcclOp.ncclSum,
    ) -> Optional[np.ndarray]:
        """ncclAllReduce.  Returns the reduced array once all ranks have
        called (None for the ranks that arrived early; fetch with
        :meth:`fetch_result`)."""
        self._check_alive()
        if self._maybe_defer("all_reduce", sendbuf, datatype, op):
            return None
        buf = np.ascontiguousarray(sendbuf, dtype=datatype.dtype)
        contributions = self._rendezvous("all_reduce", buf)
        if contributions is None:
            return None
        comm = self._uid._comm
        assert comm is not None
        if op is NcclOp.ncclSum:
            outs = comm.allreduce(contributions, precision=datatype.precision)
        else:
            reducer = np.maximum if op is NcclOp.ncclMax else np.minimum
            total = contributions[0]
            for c in contributions[1:]:
                total = reducer(total, c)
            comm.allreduce(contributions, precision=datatype.precision)  # timing
            outs = [total.copy() for _ in range(self.nranks)]
        for r, handle in self._uid._ranks.items():
            handle._last_result = outs[r]
        return self._uid._ranks[self.rank]._last_result

    def broadcast(
        self, buf: np.ndarray, root: int, datatype: NcclDataType
    ) -> Optional[np.ndarray]:
        """ncclBroadcast."""
        self._check_alive()
        if self._maybe_defer("broadcast", buf, root, datatype):
            return None
        payload = np.ascontiguousarray(buf, dtype=datatype.dtype)
        contributions = self._rendezvous("broadcast", (payload, root))
        if contributions is None:
            return None
        comm = self._uid._comm
        assert comm is not None
        roots = {r for _, r in contributions}
        if len(roots) != 1:
            raise ReproError(f"ranks disagree on broadcast root: {sorted(roots)}")
        root_val = contributions[next(iter(roots))][0]
        outs = comm.bcast(root_val, root=next(iter(roots)))
        for r, handle in self._uid._ranks.items():
            handle._last_result = outs[r]
        return self._uid._ranks[self.rank]._last_result

    def fetch_result(self) -> np.ndarray:
        """Result of the last completed collective for this rank."""
        self._check_alive()
        if not hasattr(self, "_last_result"):
            raise ReproError("no completed collective result available")
        return self._last_result
