"""Simulated multi-GPU communication substrate (NCCL/RCCL work-alike).

FFTMatvec runs on a 2D processor grid ``pr x pc`` using RCCL collectives
on Frontier.  We have one machine and no MPI, so:

* :mod:`repro.comm.netmodel` — a hierarchical alpha-beta network model
  (intra-group vs inter-group latency/bandwidth, congestion growing with
  the number of ranks whose collective spans groups), with Frontier-like
  parameters calibrated to the paper's scaling section.
* :mod:`repro.comm.collectives` — tree-algorithm *numerics*: reductions
  are evaluated pairwise in the configured precision so the floating-
  point error genuinely grows like ``eps * log2(p)`` (the term Eq. (6)
  attributes to Phase 5), plus matching cost formulas.
* :mod:`repro.comm.simcomm` — :class:`SimCommunicator`: an SPMD world of
  ``p`` ranks executed sequentially in-process; bcast/reduce/allreduce/
  allgather over per-rank NumPy arrays, advancing a shared simulated
  clock.
* :mod:`repro.comm.grid` — the 2D process grid with row/column
  subcommunicators (row-major placement: a grid row occupies contiguous
  ranks, as on Frontier with "closest" GPU binding).
* :mod:`repro.comm.partition` — communication-aware partitioning:
  chooses ``(pr, pc)`` by minimizing the modeled matvec communication
  cost; also records the paper's published Frontier schedule (1 row up
  to 512 GPUs, 8 rows for 1024–2048, 16 rows at 4096).
* :mod:`repro.comm.balance` — the skew-searching load balancer: seeds
  ``row_ranges``/``col_ranges`` from inverse per-rank cost (analytic
  device specs or compute seconds measured on the engine's private
  clocks) and descends boundary shifts on the max-over-ranks objective;
  :func:`~repro.comm.balance.measure_rebalance_loop` iterates
  measure → search until the charged skew converges.
"""

from repro.comm.netmodel import NetworkModel, FRONTIER_NETWORK
from repro.comm.collectives import (
    tree_reduce_arrays,
    tree_collective_time,
    ring_allreduce_time,
)
from repro.comm.simcomm import SimCommunicator
from repro.comm.grid import ProcessGrid
from repro.comm.partition import (
    communication_aware_partition,
    published_frontier_rows,
    matvec_comm_cost,
    skewed_extents,
    check_extents,
)
from repro.comm.balance import (
    BalanceResult,
    MeasureRebalanceResult,
    balance_extents,
    linear_cost,
    analytic_unit_costs,
    measured_unit_costs,
    rebalance_rows,
    rebalance_cols,
    measure_rebalance_loop,
    recovered_skew_fraction,
)
from repro.comm.fault import (
    CorruptionSchedule,
    FailureSchedule,
    NumericalHealthError,
    RankFailure,
    SilentCorruption,
)
from repro.comm.rccl import (
    NcclComm,
    NcclDataType,
    NcclOp,
    comm_init_rank,
    get_unique_id,
)

__all__ = [
    "NetworkModel",
    "FRONTIER_NETWORK",
    "tree_reduce_arrays",
    "tree_collective_time",
    "ring_allreduce_time",
    "SimCommunicator",
    "ProcessGrid",
    "communication_aware_partition",
    "published_frontier_rows",
    "matvec_comm_cost",
    "skewed_extents",
    "check_extents",
    "BalanceResult",
    "MeasureRebalanceResult",
    "balance_extents",
    "linear_cost",
    "analytic_unit_costs",
    "measured_unit_costs",
    "rebalance_rows",
    "rebalance_cols",
    "measure_rebalance_loop",
    "recovered_skew_fraction",
    "FailureSchedule",
    "RankFailure",
    "CorruptionSchedule",
    "SilentCorruption",
    "NumericalHealthError",
    "NcclComm",
    "NcclDataType",
    "NcclOp",
    "comm_init_rank",
    "get_unique_id",
]
