"""Communication-aware partitioning (Section 3.7 of the FFTMatvec paper).

Given the problem size, GPU count and network parameters, choose the
processor-grid shape ``(pr, pc)`` minimizing the modeled communication
cost of one F matvec:

* Phase 1 broadcasts each column's local parameter block (``nm * Nt``
  doubles, ``nm = Nm/pc``) down the ``pr`` members of the column — a
  strided, machine-spanning collective;
* Phase 5 reduces each row's local data block (``(Nd/pr) * Nt`` doubles)
  across the ``pc`` contiguous members of the row.

With one row the broadcast vanishes but the reduction spans every rank;
past the network's group size the congested global tree makes multi-row
grids win — the paper reports 1 row through 512 GPUs, 8 rows for
1024–2048, 16 rows at 4096, and a >3x gain from partitioning at 4096.
:func:`published_frontier_rows` records that published schedule;
:func:`communication_aware_partition` computes the model's argmin.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.comm.collectives import tree_collective_time
from repro.comm.netmodel import FRONTIER_NETWORK, NetworkModel
from repro.util.validation import ReproError, check_positive_int

__all__ = [
    "matvec_comm_cost",
    "communication_aware_partition",
    "published_frontier_rows",
    "candidate_rows",
    "skewed_extents",
    "check_extents",
]

_ITEM = 8  # double-precision bytes; comm buffers are FP64 by default


def matvec_comm_cost(
    nm_global: int,
    nd: int,
    nt: int,
    pr: int,
    pc: int,
    net: NetworkModel = FRONTIER_NETWORK,
    itemsize: int = _ITEM,
) -> float:
    """Modeled communication seconds of one F matvec on a pr x pc grid.

    ``nm_global`` is the total spatial parameter count; each grid column
    owns ``ceil(nm_global/pc)`` of it.
    """
    check_positive_int(pr, "pr")
    check_positive_int(pc, "pc")
    p = pr * pc
    nm_local = -(-nm_global // pc)
    nd_local = -(-nd // pr)
    bcast_bytes = nm_local * nt * itemsize
    reduce_bytes = nd_local * nt * itemsize
    # Column broadcast: pr members, strided by pc, spanning ~the machine.
    col_span = (pr - 1) * pc + 1
    t_bcast = tree_collective_time(pr, bcast_bytes, net, span=col_span)
    # Row reduction: pc contiguous members.
    t_reduce = tree_collective_time(pc, reduce_bytes, net, span=pc)
    return t_bcast + t_reduce


def candidate_rows(p: int) -> Tuple[int, ...]:
    """Power-of-two row counts dividing p (the shapes the paper sweeps).

    >>> candidate_rows(8)
    (1, 2, 4, 8)
    >>> candidate_rows(12)
    (1, 2, 4)
    """
    check_positive_int(p, "p")
    out = []
    r = 1
    while r <= p:
        if p % r == 0:
            out.append(r)
        r *= 2
    return tuple(out)


def communication_aware_partition(
    nm_global: int,
    nd: int,
    nt: int,
    p: int,
    net: NetworkModel = FRONTIER_NETWORK,
    rows_to_try: Optional[Iterable[int]] = None,
) -> Tuple[int, int]:
    """Choose (pr, pc) minimizing the modeled matvec communication cost."""
    check_positive_int(p, "p")
    best: Optional[Tuple[float, int]] = None
    for pr in rows_to_try if rows_to_try is not None else candidate_rows(p):
        if p % pr != 0:
            raise ReproError(f"pr={pr} does not divide p={p}")
        pc = p // pr
        cost = matvec_comm_cost(nm_global, nd, nt, pr, pc, net=net)
        if best is None or cost < best[0] or (cost == best[0] and pr < best[1]):
            best = (cost, pr)
    assert best is not None
    return best[1], p // best[1]


def check_extents(
    extents: Sequence[Tuple[int, int]], n: int, parts: int, what: str = "extents"
) -> List[Tuple[int, int]]:
    """Validate a 1-D block partition: contiguous, non-empty, covers [0, n).

    The contract :class:`~repro.core.parallel.ParallelFFTMatvec` requires
    of caller-supplied row/column partitions.  Returns a normalized list
    of ``(start, stop)`` int tuples.

    >>> check_extents([(0, 3), (3, 8)], 8, 2)
    [(0, 3), (3, 8)]
    >>> check_extents([(0, 3), (4, 8)], 8, 2)
    Traceback (most recent call last):
        ...
    repro.util.validation.ReproError: extents: range 1 starts at 4, \
expected 3 (ranges must be contiguous and ordered)
    """
    check_positive_int(n, "n")
    check_positive_int(parts, "parts")
    out: List[Tuple[int, int]] = []
    if len(extents) != parts:
        raise ReproError(f"{what}: expected {parts} ranges, got {len(extents)}")
    cursor = 0
    for i, (start, stop) in enumerate(extents):
        start, stop = int(start), int(stop)
        if start != cursor:
            raise ReproError(
                f"{what}: range {i} starts at {start}, expected {cursor} "
                "(ranges must be contiguous and ordered)"
            )
        if stop <= start:
            raise ReproError(f"{what}: range {i} is empty ({start}, {stop})")
        out.append((start, stop))
        cursor = stop
    if cursor != n:
        raise ReproError(f"{what}: ranges cover [0, {cursor}), expected [0, {n})")
    return out


def skewed_extents(n: int, parts: int, skew: float = 0.5) -> List[Tuple[int, int]]:
    """A deliberately *irregular* 1-D block partition.

    Part 0 owns roughly ``(1 + skew)`` times the balanced share (capped
    so every other part keeps at least one element); the remainder is
    split evenly.  With per-rank charging, the simulator's wall time
    follows the largest part — the skew the balanced `split_extent`
    partition hides.  ``skew=0`` degenerates to the balanced split.

    >>> skewed_extents(8, 2, skew=0.5)
    [(0, 6), (6, 8)]
    >>> skewed_extents(8, 2, skew=0.0)
    [(0, 4), (4, 8)]
    """
    check_positive_int(n, "n")
    check_positive_int(parts, "parts")
    if parts > n:
        raise ReproError(f"cannot split {n} elements into {parts} non-empty parts")
    if skew < 0:
        raise ReproError(f"skew must be >= 0, got {skew}")
    big = int(math.ceil(n / parts * (1.0 + skew)))
    big = max(1, min(big, n - (parts - 1)))
    out: List[Tuple[int, int]] = [(0, big)]
    rest = n - big
    start = big
    if parts > 1:
        base, extra = divmod(rest, parts - 1)
        for p in range(parts - 1):
            stop = start + base + (1 if p < extra else 0)
            out.append((start, stop))
            start = stop
    return check_extents(out, n, parts, what="skewed_extents")


def published_frontier_rows(p: int) -> int:
    """The paper's published Frontier schedule (Section 4.2.2).

    One processor row for <= 512 GPUs, eight rows for 1024 and 2048
    GPUs, sixteen rows for 4096 GPUs.

    >>> [published_frontier_rows(p) for p in (512, 1024, 4096)]
    [1, 8, 16]
    """
    check_positive_int(p, "p")
    if p <= 512:
        return 1
    if p <= 2048:
        return 8 if p % 8 == 0 else 1
    return 16 if p % 16 == 0 else 1
