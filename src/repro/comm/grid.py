"""2D processor grid with row/column subcommunicators.

FFTMatvec distributes the block matrix over a ``pr x pc`` grid: rank
``(r, c)`` owns the ``(Nd/pr) x (Nm/pc)`` sub-block of every Toeplitz
block.  Placement is row-major (rank = r * pc + c), matching Frontier
runs with "closest" GPU binding: a grid *row* occupies ``pc``
consecutive machine ranks (cheap, in-group collectives for the Phase-5
reduction), while a grid *column* strides by ``pc`` and spans the whole
machine (its Phase-1 broadcast pays inter-group costs).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.backend import Backend
from repro.comm.netmodel import NetworkModel, SIMPLE_NETWORK
from repro.comm.simcomm import SimCommunicator
from repro.util.timing import SimClock
from repro.util.validation import ReproError, check_positive_int

__all__ = ["ProcessGrid"]


class ProcessGrid:
    """A ``pr x pc`` process grid over a simulated world communicator."""

    def __init__(
        self,
        pr: int,
        pc: int,
        net: NetworkModel = SIMPLE_NETWORK,
        clock: Optional[SimClock] = None,
        backend: Optional[Backend] = None,
    ) -> None:
        self.pr = check_positive_int(pr, "pr")
        self.pc = check_positive_int(pc, "pc")
        self.size = self.pr * self.pc
        self.net = net
        self.clock = clock if clock is not None else SimClock()
        self.world = SimCommunicator(
            self.size, net=net, clock=self.clock, span=self.size, name="world",
            backend=backend,
        )
        # A row's pc members are contiguous; a column's pr members stride
        # by pc and span (pr-1)*pc + 1 machine ranks.
        self._row_comms = [
            SimCommunicator(
                self.pc, net=net, clock=self.clock, span=self.pc, name=f"row{r}",
                backend=backend,
            )
            for r in range(self.pr)
        ]
        col_span = (self.pr - 1) * self.pc + 1
        self._col_comms = [
            SimCommunicator(
                self.pr, net=net, clock=self.clock, span=col_span, name=f"col{c}",
                backend=backend,
            )
            for c in range(self.pc)
        ]

    # -- fault injection ------------------------------------------------------
    def install_failure_schedule(self, schedule) -> None:
        """Attach one :class:`~repro.comm.fault.FailureSchedule` grid-wide.

        Installs the same schedule object on the world communicator and
        every row/column subcommunicator, so its collective counter sees
        the full deterministic sequence the SPMD loop runs.  Pass
        ``None`` to disarm.
        """
        self.world.install_failure_schedule(schedule)
        for comm in self._row_comms:
            comm.install_failure_schedule(schedule)
        for comm in self._col_comms:
            comm.install_failure_schedule(schedule)

    def install_corruption_schedule(self, schedule) -> None:
        """Attach one :class:`~repro.comm.fault.CorruptionSchedule` grid-wide.

        Same contract as :meth:`install_failure_schedule`: the one
        schedule object goes on the world communicator and every
        row/column subcommunicator (shared event counter), and payload
        verification switches on with it.  Pass ``None`` to disarm.
        """
        self.world.install_corruption_schedule(schedule)
        for comm in self._row_comms:
            comm.install_corruption_schedule(schedule)
        for comm in self._col_comms:
            comm.install_corruption_schedule(schedule)

    def set_payload_verification(self, on: bool) -> None:
        """Toggle receive-side payload digests on every grid communicator.

        Defense without injection: verification alone catches corruption
        from any source; it is also implied by installing a corruption
        schedule.
        """
        self.world.verify_payloads = bool(on)
        for comm in self._row_comms:
            comm.verify_payloads = bool(on)
        for comm in self._col_comms:
            comm.verify_payloads = bool(on)

    # -- rank arithmetic -----------------------------------------------------
    def rank_of(self, row: int, col: int) -> int:
        """World rank of grid coordinates (row-major placement)."""
        if not (0 <= row < self.pr and 0 <= col < self.pc):
            raise ReproError(
                f"coords ({row},{col}) out of range for {self.pr}x{self.pc} grid"
            )
        return row * self.pc + col

    def coords_of(self, rank: int) -> Tuple[int, int]:
        """(row, col) grid coordinates of a world rank."""
        if not (0 <= rank < self.size):
            raise ReproError(f"rank {rank} out of range for size {self.size}")
        return divmod(rank, self.pc)

    def row_comm(self, row: int) -> SimCommunicator:
        """Communicator of grid row ``row`` (pc members, contiguous)."""
        if not (0 <= row < self.pr):
            raise ReproError(f"row {row} out of range")
        return self._row_comms[row]

    def col_comm(self, col: int) -> SimCommunicator:
        """Communicator of grid column ``col`` (pr members, strided)."""
        if not (0 <= col < self.pc):
            raise ReproError(f"col {col} out of range")
        return self._col_comms[col]

    # -- block distribution ----------------------------------------------------
    @staticmethod
    def split_extent(n: int, parts: int) -> List[Tuple[int, int]]:
        """Balanced 1-D block partition: list of (start, stop) per part.

        First ``n % parts`` parts get one extra element, like the original
        code's ceil-based ownership (``nm = ceil(Nm/pc)`` on early ranks).
        """
        check_positive_int(n, "n")
        check_positive_int(parts, "parts")
        base, extra = divmod(n, parts)
        out: List[Tuple[int, int]] = []
        start = 0
        for p in range(parts):
            stop = start + base + (1 if p < extra else 0)
            out.append((start, stop))
            start = stop
        return out

    def local_rows(self, nd: int, row: int) -> Tuple[int, int]:
        """Sensor-range (start, stop) owned by grid row ``row``."""
        return self.split_extent(nd, self.pr)[row]

    def local_cols(self, nm: int, col: int) -> Tuple[int, int]:
        """Parameter-range (start, stop) owned by grid column ``col``."""
        return self.split_extent(nm, self.pc)[col]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessGrid({self.pr}x{self.pc})"
