"""Collective algorithms: tree numerics + cost formulas.

Two concerns live here, deliberately together so tests can check they
stay consistent:

* **Numerics** — :func:`tree_reduce_arrays` reduces a list of per-rank
  arrays pairwise in a binary tree, with every addition performed in the
  requested precision.  This is how RCCL's tree reduction accumulates,
  and it is what makes the measured reduction error grow like
  ``eps * log2(p)`` — the Phase-5 term of the paper's Eq. (6).
* **Cost** — :func:`tree_collective_time` models a tree
  broadcast/reduce over ``k`` ranks whose placement spans ``span``
  consecutive ranks: the top ``log2(groups)`` tree levels cross groups
  (congested, see :class:`~repro.comm.netmodel.NetworkModel`), the rest
  stay inside a group.  Large messages pipeline, so the volume term is
  paid once at the bottleneck link, not per level.
"""

from __future__ import annotations

import math
from typing import Any, List, Optional, Sequence

from repro.backend import Backend, NumpyBackend
from repro.comm.netmodel import NetworkModel
from repro.util.dtypes import Precision
from repro.util.pairwise import fixed_tree_merge
from repro.util.validation import ReproError

__all__ = [
    "tree_reduce_arrays",
    "fixed_tree_reduce_segments",
    "tree_collective_time",
    "ring_allreduce_time",
    "log2_steps",
]

_NUMPY = NumpyBackend()


def log2_steps(k: int) -> int:
    """Number of tree levels for k participants: ceil(log2(k))."""
    if k < 1:
        raise ReproError(f"k must be >= 1, got {k}")
    return int(math.ceil(math.log2(k))) if k > 1 else 0


def tree_reduce_arrays(
    arrays: Sequence[Any],
    precision: Optional[Precision] = None,
    backend: Optional[Backend] = None,
) -> Any:
    """Binary-tree pairwise sum of per-rank arrays.

    All additions are evaluated at ``precision`` (default: the precision
    of the inputs), reproducing the accumulation order of an RCCL tree
    reduction.  The result keeps the computation dtype; the caller casts
    back as its precision configuration dictates.  Contributions may be
    arrays of the given ``backend`` (default numpy); the accumulation
    then stays on that backend.

    The fold — adjacent pairs per level, an odd trailing contribution
    passing through unchanged — is exactly the virtual power-of-two tree
    of :mod:`repro.util.pairwise` applied over the *rank index*.  That
    makes the grouping deterministic for a fixed rank count, but the
    tree is indexed by rank, so changing the partition regroups the sum:
    what lands in rank ``i``'s contribution moves between leaves.  When
    the accumulation must be invariant to the partition itself, reduce
    *canonical segments of the contraction axis* instead with
    :func:`fixed_tree_reduce_segments`, whose tree is indexed by global
    element position.
    """
    be = backend if backend is not None else _NUMPY
    if len(arrays) == 0:
        raise ReproError("cannot reduce zero arrays")
    work: List[Any] = []
    owned: List[bool] = []  # True once a buffer is a reduction temporary
    for a in arrays:
        arr = be.asarray(a)
        if precision is not None:
            cast = be.cast(arr, precision)
            work.append(cast)
            owned.append(cast is not arr)  # cast copies iff it converts
        else:
            work.append(arr)
            owned.append(False)
    shape = tuple(work[0].shape)
    for i, a in enumerate(work):
        if tuple(a.shape) != shape:
            raise ReproError(
                f"rank {i} contribution has shape {tuple(a.shape)}, expected {shape}"
            )
    while len(work) > 1:
        nxt: List[Any] = []
        nxt_owned: List[bool] = []
        for i in range(0, len(work) - 1, 2):
            a, b = work[i], work[i + 1]
            if owned[i]:
                # Accumulate in place into the temporary this level
                # already owns — add(a, b, out=a) rounds exactly like
                # a + b, so the tree numerics are unchanged while the
                # upper levels allocate nothing.
                be.add(a, b, out=a)
                nxt.append(a)
            else:
                nxt.append(be.add(a, b))
            nxt_owned.append(True)
        if len(work) % 2 == 1:
            nxt.append(work[-1])
            nxt_owned.append(owned[-1])
        work, owned = nxt, nxt_owned
    return work[0]


def fixed_tree_reduce_segments(
    segments: Any,
    n: int,
    precision: Optional[Precision] = None,
    backend: Optional[Backend] = None,
) -> Any:
    """Partition-invariant reduction of canonical contraction segments.

    ``segments`` maps virtual tree extents ``(s, e)`` (each rank
    contributes the :func:`repro.util.pairwise.canonical_segments` of
    its contiguous slice of a global axis of length ``n``) to partial
    arrays; ranks' dicts may be merged into one since their keys are
    disjoint.  Every addition performed is an edge of the one virtual
    binary tree over ``[0, n)``, so the result is **bitwise identical
    for any partition** — per-rank tree leaves never move when extents
    change, which is what lifts the ``min_part=2`` caveat in
    :mod:`repro.comm.balance`.  All adds happen at ``precision``
    (default: the dtype the contributions arrive in), mirroring
    :func:`tree_reduce_arrays`' contract.
    """
    be = backend if backend is not None else _NUMPY
    if not segments:
        raise ReproError("cannot reduce zero segments")
    work = {}
    for key, arr in segments.items():
        arr = be.asarray(arr)
        work[key] = be.cast(arr, precision) if precision is not None else arr
    return fixed_tree_merge(work, n, backend=be)


def tree_collective_time(
    k: int,
    nbytes: float,
    net: NetworkModel,
    span: Optional[int] = None,
) -> float:
    """Modeled seconds for a tree broadcast/reduce over ``k`` ranks.

    Parameters
    ----------
    k:
        Number of participating ranks.
    nbytes:
        Message size per rank.
    span:
        Number of consecutive machine ranks the participants are spread
        over (>= k); defaults to ``k`` (contiguous placement).
    """
    if k < 1:
        raise ReproError(f"k must be >= 1, got {k}")
    if nbytes < 0:
        raise ReproError(f"nbytes must be >= 0, got {nbytes}")
    if k == 1:
        return 0.0
    span = k if span is None else max(span, k)
    groups = net.groups_spanned(span)
    steps = log2_steps(k)
    inter_steps = min(steps, log2_steps(groups))
    intra_steps = steps - inter_steps
    t = intra_steps * net.alpha_intra + inter_steps * net.inter_step_latency(k)
    # Pipelined volume: paid once over the slowest link on the path.
    beta = net.beta_inter if inter_steps > 0 else net.beta_intra
    t += nbytes * beta
    return t


def ring_allreduce_time(k: int, nbytes: float, net: NetworkModel) -> float:
    """Ring allreduce: 2(k-1) steps, 2(k-1)/k of the volume per link.

    Used by the ablation benches to compare against the tree model.
    """
    if k < 1:
        raise ReproError(f"k must be >= 1, got {k}")
    if k == 1:
        return 0.0
    steps = 2 * (k - 1)
    volume = 2.0 * (k - 1) / k * nbytes
    groups = net.groups_spanned(k)
    if groups > 1:
        return steps * net.inter_step_latency(k) + volume * net.beta_inter
    return steps * net.alpha_intra + volume * net.beta_intra
