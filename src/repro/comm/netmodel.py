"""Hierarchical alpha-beta network model.

Frontier's interconnect is hierarchical: GPUs within a group (node/rack
neighbourhood) communicate with low latency and high bandwidth; traffic
crossing groups pays higher latency and, crucially, *congestion* that
grows with how many ranks participate in a group-spanning collective —
this is what makes global reductions over thousands of GCDs expensive
and why communication-aware partitioning wins >3x at 4,096 GPUs.

Parameters are calibrated (see ``benchmarks/test_fig4_scaling.py``) so
that the paper's observed facts hold: communication is latency-bound for
FFTMatvec's 0.8–40 MB buffers at 100 GB/s, one processor-grid row is
optimal up to 512 GPUs, multiple rows win beyond, and a 20-billion-
parameter matvec lands around ~0.1 s on 4,096 GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_positive_int

__all__ = ["NetworkModel", "FRONTIER_NETWORK", "SIMPLE_NETWORK"]


@dataclass(frozen=True)
class NetworkModel:
    """Two-level latency/bandwidth model.

    Attributes
    ----------
    alpha_intra:
        Per-message latency within a group (seconds).
    alpha_inter:
        Base per-message latency across groups (seconds).
    beta_intra / beta_inter:
        Inverse bandwidths within/across groups (seconds per byte).
    group_size:
        Ranks per group (512 on our Frontier model: the scale above
        which the paper's grid-row count starts growing).
    congestion_ranks:
        Normalizer for inter-group congestion: an inter-group tree step
        with ``k`` participants is slowed by ``1 + k / congestion_ranks``.
    overlap_efficiency:
        Fraction of a collective's cost that can be hidden behind
        concurrent compute (1.0 = the NIC/RCCL engines run fully
        independently; 0.0 = overlap buys nothing).  The overlapped grid
        schedule charges the exposed remainder,
        ``(1 - overlap_efficiency) * t``, onto the compute stream as a
        contention penalty for every collective it overlaps — the
        prefetched broadcasts and the interior reduces — so at 0.0 the
        schedule converges back to the serial charge.
    """

    alpha_intra: float
    alpha_inter: float
    beta_intra: float
    beta_inter: float
    group_size: int
    congestion_ranks: int
    overlap_efficiency: float = 1.0

    def exposed_fraction(self) -> float:
        """Share of an overlapped collective that still costs compute time."""
        return max(0.0, min(1.0, 1.0 - self.overlap_efficiency))

    def groups_spanned(self, span: int) -> int:
        """Number of groups a contiguous span of ranks touches."""
        check_positive_int(span, "span")
        return max(1, -(-span // self.group_size))

    def inter_step_latency(self, participants: int) -> float:
        """Latency of one inter-group tree step with congestion."""
        return self.alpha_inter * (1.0 + participants / self.congestion_ranks)

    def intra_step_time(self, nbytes: float) -> float:
        """Seconds for one in-group tree step carrying ``nbytes``."""
        return self.alpha_intra + nbytes * self.beta_intra

    def inter_step_time(self, nbytes: float, participants: int) -> float:
        """Seconds for one congested cross-group tree step."""
        return self.inter_step_latency(participants) + nbytes * self.beta_inter


# Calibrated Frontier-like parameters: 100 GB/s NIC bandwidth (the paper's
# number), ~10 us in-group latency, 1.5 ms base cost per machine-spanning
# tree level, congestion normalizer 256 (a 4096-rank global tree step is
# ~17x slower than a 16-participant one). These values reproduce the
# paper's facts: 1-row grids optimal through 512 GPUs, multi-row beyond,
# >3x partitioning win and ~0.1 s matvec time at 4,096 GPUs.
FRONTIER_NETWORK = NetworkModel(
    alpha_intra=10e-6,
    alpha_inter=1.5e-3,
    beta_intra=1.0 / 200e9,
    beta_inter=1.0 / 100e9,
    group_size=512,
    congestion_ranks=256,
)

# A flat, fast network for unit tests (no hierarchy effects).
SIMPLE_NETWORK = NetworkModel(
    alpha_intra=1e-6,
    alpha_inter=1e-6,
    beta_intra=1.0 / 100e9,
    beta_inter=1.0 / 100e9,
    group_size=1 << 30,
    congestion_ranks=1 << 30,
)
