"""FFTMatvec core: the paper's primary contribution.

* :mod:`repro.core.toeplitz` — :class:`BlockTriangularToeplitz`: the
  block lower-triangular Toeplitz matrix ``F`` (only the first block
  column is stored), its dense materialization and reference matvecs.
* :mod:`repro.core.precision` — :class:`PrecisionConfig`: the 5-phase
  mixed-precision configuration (``-prec xxxxx``), all 32 configurations.
* :mod:`repro.core.reorder` — SOTI/TOSI layout conversions (the pure
  memory reorder phases around the SBGEMV).
* :mod:`repro.core.phases` — zero-pad / unpad kernels with fused casts
  and device-time accounting.
* :mod:`repro.core.matvec` — :class:`FFTMatvec`: the five-phase engine
  for F and F* matvecs on one (simulated) GPU.
* :mod:`repro.core.parallel` — :class:`ParallelFFTMatvec`: SPMD
  execution over a 2D process grid with broadcast/reduce collectives.
* :mod:`repro.core.error_model` — the first-order error bound, Eq. (6).
* :mod:`repro.core.pareto` — Pareto-front analysis over the 32 configs.
"""

from repro.core.toeplitz import BlockTriangularToeplitz
from repro.core.precision import PrecisionConfig, PHASE_NAMES
from repro.core.matvec import FFTMatvec
from repro.core.operator import (
    LinearOperator,
    IdentityOperator,
    CallableOperator,
    ForwardOperator,
    AdjointOperator,
    GaussNewtonHessian,
)
from repro.core.parallel import ParallelFFTMatvec
from repro.core.elastic import (
    ElasticEngine,
    FailureEvent,
    RecoveryReport,
    elastic_grid_shape,
)
from repro.core.error_model import relative_error_bound, ErrorModelParams
from repro.core.pareto import ParetoPoint, pareto_front, sweep_configs, optimal_config

__all__ = [
    "BlockTriangularToeplitz",
    "PrecisionConfig",
    "PHASE_NAMES",
    "FFTMatvec",
    "LinearOperator",
    "IdentityOperator",
    "CallableOperator",
    "ForwardOperator",
    "AdjointOperator",
    "GaussNewtonHessian",
    "ParallelFFTMatvec",
    "ElasticEngine",
    "FailureEvent",
    "RecoveryReport",
    "elastic_grid_shape",
    "relative_error_bound",
    "ErrorModelParams",
    "ParetoPoint",
    "pareto_front",
    "sweep_configs",
    "optimal_config",
]
