"""Zero-pad and unpad phase kernels (Phases 1 and 5 minus communication).

Phase 1 takes the time-outer input vector, converts it to the
space-outer (SOTI) layout the batched FFT wants, and appends ``Nt``
zeros to every time series (the circulant embedding).  Phase 5 drops the
padding of the inverse transform's output and converts back to
time-outer layout.  Both are pure memory operations executed in the
phase's configured precision, with any cast fused into the same kernel
(the write side simply uses the target dtype).

Both kernels take an optional :class:`~repro.util.workspace.Workspace`:
with an arena the output is written into a persistent checked-out
buffer instead of a fresh allocation (the pad only re-zeros the padding
half; the data half is fully overwritten), and ``unpad_from_soti`` can
additionally write straight into a caller-supplied ``out`` buffer.  The
values produced are bitwise-identical with the arena on or off — a
direct cast-on-assignment rounds exactly like ``astype``.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.backend import Backend, NumpyBackend
from repro.core.reorder import transpose_into
from repro.gpu.bandwidth import stream_efficiency
from repro.gpu.device import SimulatedDevice
from repro.gpu.kernel import Dim3, KernelLaunch
from repro.util import checksum as _chk
from repro.util.dtypes import Precision, real_dtype
from repro.util.validation import ReproError
from repro.util.workspace import Workspace

__all__ = ["pad_to_soti", "unpad_from_soti"]

_NUMPY = NumpyBackend()


def _charge(
    device: Optional[SimulatedDevice],
    name: str,
    bytes_read: float,
    bytes_written: float,
    out_elems: int,
    phase: str,
) -> None:
    if device is None:
        return
    traffic = bytes_read + bytes_written
    kernel = KernelLaunch(
        name=name,
        grid=Dim3(x=max(1, (out_elems + 255) // 256)),
        block=Dim3(x=256),
        bytes_read=bytes_read,
        bytes_written=bytes_written,
        efficiency_hint=stream_efficiency(traffic, device.spec) * 0.9,
    )
    device.launch(kernel, phase=phase)


def pad_to_soti(
    v: Any,
    precision: Precision,
    device: Optional[SimulatedDevice] = None,
    phase: str = "pad",
    workspace: Optional[Workspace] = None,
    backend: Optional[Backend] = None,
    validate: bool = False,
    rank: Optional[int] = None,
) -> Any:
    """Phase-1 kernel: (Nt, nx) time-outer -> (nx, 2*Nt) padded SOTI.

    The output dtype is the phase's precision — the cast (if any) is
    fused into the pad kernel's writes.  With a ``workspace`` the output
    is a checked-out arena buffer: the data half is fully overwritten
    and only the padding half is re-zeroed, no allocation at steady
    state.  ``validate=True`` runs the numerical-health guard on the
    produced buffer and raises
    :class:`~repro.util.checksum.NumericalHealthError` naming this
    phase (and ``rank`` when supplied) if anything non-finite crossed
    the boundary.
    """
    be = backend if backend is not None else _NUMPY
    a = be.asarray(v)
    if a.ndim != 2:
        raise ReproError(f"pad expects a 2-D (Nt, nx) block vector, got {a.shape}")
    if be.iscomplex(a):
        raise ReproError("pad operates on real time-domain vectors")
    nt, nx = a.shape
    dt = real_dtype(precision)
    if workspace is None:
        out = be.zeros((nx, 2 * nt), dt)
    else:
        # The pad kernel is this buffer's only writer, so the zero
        # padding half written on first use survives every reuse — only
        # a fresh buffer needs the memset.
        out, fresh = workspace.checkout_fresh(phase, (nx, 2 * nt), dt)
        if fresh:
            out[:, nt:] = 0.0
    # Transpose+cast in one logical kernel: each output row is one
    # spatial point's time series followed by Nt zeros (the tiled copy
    # casts on the write side — no staging temporary).
    transpose_into(out[:, :nt], a, be)
    if validate:
        _chk.ensure_finite(be.from_device(out), phase=phase, rank=rank, what="pad output")
    _charge(
        device,
        "pad_zero",
        bytes_read=float(be.nbytes(a)),
        bytes_written=float(be.nbytes(out)),
        out_elems=be.size(out),
        phase=phase,
    )
    return out


def unpad_from_soti(
    v: Any,
    nt: int,
    precision: Precision,
    device: Optional[SimulatedDevice] = None,
    phase: str = "unpad",
    workspace: Optional[Workspace] = None,
    out: Optional[Any] = None,
    backend: Optional[Backend] = None,
    validate: bool = False,
    rank: Optional[int] = None,
) -> Any:
    """Phase-5 kernel: (nx, 2*Nt) padded SOTI -> (Nt, nx) time-outer.

    ``out`` (shape ``(nt, nx)``, dtype of the phase precision) writes the
    result into a caller-owned buffer; ``workspace`` writes into a
    checked-out arena buffer.  Both produce the bytes of the default
    allocate-per-call path.  ``validate=True`` guards the output against
    NaN/Inf exactly like :func:`pad_to_soti`.
    """
    be = backend if backend is not None else _NUMPY
    a = be.asarray(v)
    if a.ndim != 2:
        raise ReproError(f"unpad expects a 2-D (nx, 2*Nt) vector, got {a.shape}")
    if a.shape[1] != 2 * nt:
        raise ReproError(
            f"unpad expects padded length {2 * nt}, got {a.shape[1]}"
        )
    dt = real_dtype(precision)
    if out is not None:
        if tuple(out.shape) != (nt, a.shape[0]) or be.dtype_of(out) != dt:
            raise ReproError(
                f"unpad out buffer must be {(nt, a.shape[0])} {dt}, "
                f"got {tuple(out.shape)} {be.dtype_of(out)}"
            )
        transpose_into(out, a[:, :nt], be)
    elif workspace is not None:
        out = workspace.checkout(phase, (nt, a.shape[0]), dt)
        transpose_into(out, a[:, :nt], be)
    else:
        out = be.astype(be.ascontiguous(be.transpose(a[:, :nt])), dt, copy=False)
    if validate:
        _chk.ensure_finite(
            be.from_device(out), phase=phase, rank=rank, what="unpad output"
        )
    _charge(
        device,
        "unpad",
        bytes_read=float(be.nbytes(a)) / 2.0,  # only the first half is read
        bytes_written=float(be.nbytes(out)),
        out_elems=be.size(out),
        phase=phase,
    )
    return out
