"""Block lower-triangular Toeplitz matrices.

The discrete p2o map of an LTI system is block lower-triangular Toeplitz
(paper Section 2.3): an ``Nt x Nt`` grid of ``Nd x Nm`` blocks where
block ``(i, j)`` equals ``F_{i-j}`` for ``i >= j`` and zero above the
diagonal.  Only the first block column ``F_0 .. F_{Nt-1}`` is stored.

This module holds the *matrix object* and the O(Nt^2) dense/reference
operations used to validate the FFT engine; the fast path lives in
:mod:`repro.core.matvec`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.util.validation import ReproError, check_array, check_positive_int

__all__ = ["BlockTriangularToeplitz"]


class BlockTriangularToeplitz:
    """A block lower-triangular Toeplitz matrix.

    Parameters
    ----------
    blocks:
        Array of shape ``(Nt, Nd, Nm)``: the first block column,
        ``blocks[t] = F_t`` (the impulse response at lag ``t``).

    Notes
    -----
    The matrix it represents has shape ``(Nt*Nd, Nt*Nm)``.  Vectors are
    handled in *time-outer* block layout: parameter vectors are
    ``(Nt, Nm)`` arrays (row ``j`` = ``m_j``), data vectors ``(Nt, Nd)``.
    """

    def __init__(self, blocks: np.ndarray) -> None:
        b = check_array(blocks, "blocks", ndim=3)
        if not np.isrealobj(b):
            raise ReproError("kernel blocks must be real (the p2o map is real)")
        self.blocks = np.ascontiguousarray(b, dtype=np.float64)
        self.nt, self.nd, self.nm = self.blocks.shape

    # -- constructors -------------------------------------------------------
    @classmethod
    def random(
        cls,
        nt: int,
        nd: int,
        nm: int,
        rng: Optional[np.random.Generator] = None,
        decay: float = 0.0,
    ) -> "BlockTriangularToeplitz":
        """Random kernel; ``decay > 0`` damps later lags like a stable LTI
        system's impulse response (``exp(-decay * t)``)."""
        check_positive_int(nt, "nt")
        check_positive_int(nd, "nd")
        check_positive_int(nm, "nm")
        rng = rng if rng is not None else np.random.default_rng()
        blocks = rng.standard_normal((nt, nd, nm))
        if decay > 0:
            blocks *= np.exp(-decay * np.arange(nt))[:, None, None]
        return cls(blocks)

    # -- shapes -----------------------------------------------------------
    @property
    def shape(self):
        """Shape of the dense matrix: (Nt*Nd, Nt*Nm)."""
        return (self.nt * self.nd, self.nt * self.nm)

    @property
    def storage_bytes(self) -> int:
        """Bytes stored (first block column only)."""
        return self.blocks.nbytes

    @property
    def dense_bytes(self) -> int:
        """Bytes a dense representation would need (for the docs/examples)."""
        return self.shape[0] * self.shape[1] * self.blocks.itemsize

    # -- layout helpers -------------------------------------------------------
    def check_input(self, m: np.ndarray) -> np.ndarray:
        """Validate/reshape a parameter vector to (Nt, Nm)."""
        a = np.asarray(m)
        if a.ndim == 1:
            if a.size != self.nt * self.nm:
                raise ReproError(
                    f"flat parameter vector must have {self.nt * self.nm} "
                    f"entries, got {a.size}"
                )
            a = a.reshape(self.nt, self.nm)
        if a.shape != (self.nt, self.nm):
            raise ReproError(
                f"parameter vector must be ({self.nt}, {self.nm}), got {a.shape}"
            )
        return a

    def check_output(self, d: np.ndarray) -> np.ndarray:
        """Validate/reshape a data vector to (Nt, Nd)."""
        a = np.asarray(d)
        if a.ndim == 1:
            if a.size != self.nt * self.nd:
                raise ReproError(
                    f"flat data vector must have {self.nt * self.nd} entries,"
                    f" got {a.size}"
                )
            a = a.reshape(self.nt, self.nd)
        if a.shape != (self.nt, self.nd):
            raise ReproError(
                f"data vector must be ({self.nt}, {self.nd}), got {a.shape}"
            )
        return a

    # -- reference (O(Nt^2)) operations ----------------------------------------
    def dense(self) -> np.ndarray:
        """Materialize the full (Nt*Nd, Nt*Nm) matrix.  Small sizes only."""
        nt, nd, nm = self.nt, self.nd, self.nm
        out = np.zeros((nt * nd, nt * nm))
        for i in range(nt):
            for j in range(i + 1):
                out[i * nd : (i + 1) * nd, j * nm : (j + 1) * nm] = self.blocks[i - j]
        return out

    def matvec_reference(self, m: np.ndarray) -> np.ndarray:
        """Direct block convolution d_i = sum_{j<=i} F_{i-j} m_j."""
        mm = self.check_input(m).astype(np.float64, copy=False)
        # Every row is fully assigned by the einsum below; empty suffices.
        out = np.empty((self.nt, self.nd))
        for i in range(self.nt):
            # d_i = sum_t F_t m_{i-t}
            lags = self.blocks[: i + 1]  # (i+1, Nd, Nm)
            hist = mm[i::-1]  # m_i, m_{i-1}, ..., m_0
            out[i] = np.einsum("tdn,tn->d", lags, hist)
        return out

    def rmatvec_reference(self, d: np.ndarray) -> np.ndarray:
        """Direct adjoint m_j = sum_{i>=j} F_{i-j}^T d_i."""
        dd = self.check_output(d).astype(np.float64, copy=False)
        # Every row is fully assigned by the einsum below; empty suffices.
        out = np.empty((self.nt, self.nm))
        for j in range(self.nt):
            lags = self.blocks[: self.nt - j]  # F_0 .. F_{Nt-1-j}
            future = dd[j:]  # d_j .. d_{Nt-1}
            out[j] = np.einsum("tdn,td->n", lags, future)
        return out

    # -- circulant embedding -----------------------------------------------------
    def padded_kernel(self) -> np.ndarray:
        """Zero-padded kernel of the circulant embedding: (2*Nt, Nd, Nm).

        The block circulant matrix with this first block column agrees
        with ``F`` on the leading (Nt, Nt) block window.
        """
        padded = np.zeros((2 * self.nt, self.nd, self.nm))
        padded[: self.nt] = self.blocks
        return padded

    def spectrum(self) -> np.ndarray:
        """DFT of the padded kernel along lags: shape (Nt+1, Nd, Nm).

        Real input, so the half spectrum suffices (rfft).  This is the
        ``F_hat`` the engine precomputes in double precision at setup.
        The engine folds the 1/(2*Nt) inverse-FFT normalization into it;
        this accessor returns the *unscaled* spectrum.
        """
        return np.fft.rfft(self.padded_kernel(), axis=0)

    def condition_number_hat(self) -> float:
        """max over frequencies of sigma_max(F_hat_k) / min sigma_min.

        The kappa(F_hat) entering the paper's Eq. (6).  Uses the unscaled
        spectrum; kappa is scale-invariant.
        """
        spec = self.spectrum()
        smax = 0.0
        smin = np.inf
        for k in range(spec.shape[0]):
            s = np.linalg.svd(spec[k], compute_uv=False)
            smax = max(smax, float(s[0]))
            smin = min(smin, float(s[-1]))
        if smin == 0.0:
            return np.inf
        return smax / smin

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BlockTriangularToeplitz(Nt={self.nt}, Nd={self.nd}, Nm={self.nm})"
        )
