"""Pareto-front analysis over the 32 mixed-precision configurations.

The paper's workflow (Section 3.2 / artifact appendix): run the baseline
double-precision matvec, run every mixed-precision configuration,
measure each configuration's (time, relative-error-vs-double) point,
compute the Pareto front, and pick the fastest configuration whose error
stays below the application's tolerance (10^-7 in Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.matvec import FFTMatvec
from repro.core.precision import PrecisionConfig
from repro.util.dtypes import fill_low_mantissa
from repro.util.tables import render_table
from repro.util.validation import ReproError

__all__ = ["ParetoPoint", "sweep_configs", "pareto_front", "optimal_config", "pareto_table"]


@dataclass(frozen=True)
class ParetoPoint:
    """One configuration's measured (time, error) with derived speedup."""

    config: PrecisionConfig
    time: float
    error: float
    speedup: float  # vs the all-double baseline

    @property
    def is_baseline(self) -> bool:
        return self.config.is_all_double


def sweep_configs(
    engine: FFTMatvec,
    m: Optional[np.ndarray] = None,
    adjoint: bool = False,
    configs: Optional[Iterable[Union[str, PrecisionConfig]]] = None,
    rng: Optional[np.random.Generator] = None,
    time_model: Optional[Callable[[PrecisionConfig], float]] = None,
) -> List[ParetoPoint]:
    """Measure (time, relative error) for every configuration.

    ``m`` defaults to a random input whose mantissas are filled below the
    float32 field (paper Section 4.2.1's initialization) so single-
    precision memory phases commit genuine error.

    Time per configuration comes from ``time_model(config)`` when given —
    typically :func:`repro.perf.phase_model.modeled_timing` at the paper's
    problem size, so the *selection* reflects paper-scale phase weights
    while the *errors* are real numerics at the engine's size — else from
    the engine's simulated device clock.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    if m is None:
        shape = (engine.nt, engine.nd) if adjoint else (engine.nt, engine.nm)
        m = fill_low_mantissa(rng.standard_normal(shape))
    if engine.device is None and time_model is None:
        raise ReproError(
            "sweep_configs needs an engine with a simulated device or a time_model"
        )

    op: Callable = engine.rmatvec if adjoint else engine.matvec

    def time_of(cfg: PrecisionConfig) -> float:
        if time_model is not None:
            return float(time_model(cfg))
        assert engine.last_timing is not None
        return engine.last_timing.total

    baseline_out = op(m, config="ddddd")
    baseline_time = time_of(PrecisionConfig.all_double())
    base_norm = float(np.linalg.norm(baseline_out))

    points: List[ParetoPoint] = []
    cfg_list = (
        [PrecisionConfig.parse(c) for c in configs]
        if configs is not None
        else list(PrecisionConfig.all_configs())
    )
    for cfg in cfg_list:
        out = op(m, config=cfg)
        t = time_of(cfg)
        if base_norm == 0.0:
            err = float(np.linalg.norm(out - baseline_out))
        else:
            err = float(np.linalg.norm(out - baseline_out)) / base_norm
        points.append(
            ParetoPoint(
                config=cfg, time=t, error=err, speedup=baseline_time / t
            )
        )
    return points


def pareto_front(points: Sequence[ParetoPoint]) -> List[ParetoPoint]:
    """Non-dominated subset: no other point is both faster and more accurate.

    Returned sorted by time ascending (error then descends along the
    front).  Ties are kept only once (first by config string).
    """
    pts = sorted(points, key=lambda p: (p.time, p.error, str(p.config)))
    front: List[ParetoPoint] = []
    best_err = float("inf")
    for p in pts:
        if p.error < best_err:
            front.append(p)
            best_err = p.error
    return sorted(front, key=lambda p: p.time)


def optimal_config(
    points: Sequence[ParetoPoint],
    tolerance: float,
    negligible_speedup: float = 0.02,
) -> ParetoPoint:
    """Fastest configuration with error below the tolerance.

    The paper's selection rule: "for a set error tolerance, choose the
    precision configuration that gives the greatest performance
    improvement while keeping the error below that tolerance" — with its
    Section 4.2.1 refinement that lowering the precision of cheap phases
    is not worth it: "the contribution to overall speedup is negligible
    [while] such computations incur additional error".  Concretely, all
    eligible configurations within ``negligible_speedup`` (relative) of
    the fastest are treated as time-equivalent and the most accurate of
    them wins.
    """
    eligible = [p for p in points if p.error <= tolerance]
    if not eligible:
        raise ReproError(
            f"no configuration satisfies tolerance {tolerance:g}; "
            f"smallest error is {min(p.error for p in points):g}"
        )
    fastest = min(p.time for p in eligible)
    near_fastest = [
        p for p in eligible if p.time <= fastest * (1.0 + negligible_speedup)
    ]
    # Among time-equivalent configurations, keep every phase that doesn't
    # buy speed in double (fewest single phases), then break residual
    # ties by measured error.
    return min(
        near_fastest,
        key=lambda p: (p.config.n_single, p.error, p.time, str(p.config)),
    )


def pareto_table(points: Sequence[ParetoPoint], tolerance: Optional[float] = None) -> str:
    """Human-readable sweep summary, front members marked with '*'."""
    front = {str(p.config) for p in pareto_front(points)}
    rows = []
    for p in sorted(points, key=lambda q: q.time):
        marks = "*" if str(p.config) in front else ""
        if tolerance is not None and p.error <= tolerance:
            marks += " ok"
        rows.append(
            [
                str(p.config),
                f"{p.time * 1e3:.4f}",
                f"{p.speedup:.2f}x",
                f"{p.error:.3e}",
                marks,
            ]
        )
    title = "Mixed-precision sweep"
    if tolerance is not None:
        title += f" (tolerance {tolerance:g})"
    return render_table(
        ["config", "time (ms)", "speedup", "rel. error", "front"], rows, title=title
    )
