"""Composable linear operators over (Nt, nx) block vectors.

Every consumer of the five-phase engine — CG for the MAP solve,
posterior sampling, OED — ultimately applies compositions of F, F* and
regularization terms to block vectors.  This module gives those
compositions a first-class, *blocked* interface:

* :class:`LinearOperator` — the abstract base: ``apply`` acts on one
  ``(Nt, nx)`` block vector, ``apply_block`` on a ``(Nt, nx, k)``
  multi-RHS block.  Subclasses that implement only ``apply`` get a
  column-looped ``apply_block`` for free; subclasses backed by the
  engine's blocked pipeline (:meth:`~repro.core.matvec.FFTMatvec.matmat`)
  override it so all k vectors share one pad / FFT / GEMM / IFFT / unpad
  pass.
* :class:`ForwardOperator` / :class:`AdjointOperator` — F and F* wrapping
  an :class:`~repro.core.matvec.FFTMatvec` at a fixed precision config.
* :class:`GaussNewtonHessian` — ``F* Gn^{-1} F + R``: the MAP/posterior
  Hessian assembled from any forward operator and an optional
  regularization operator (e.g. the prior precision), with a fully
  blocked action.
* Algebra: ``A + B``, ``c * A``, ``A @ B`` build sum / scaled / composed
  operators; :class:`IdentityOperator` and :class:`CallableOperator`
  adapt plain callables (sparse solves, prior actions) into the same
  interface.

Shapes are tuples ``(nt, nx)``; blocks carry the RHS index as a trailing
axis, matching ``matmat``'s convention.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple, Union

import numpy as np

from repro.core.matvec import FFTMatvec
from repro.core.precision import PrecisionConfig
from repro.util.validation import ReproError

__all__ = [
    "LinearOperator",
    "IdentityOperator",
    "CallableOperator",
    "ForwardOperator",
    "AdjointOperator",
    "GaussNewtonHessian",
]

Shape = Tuple[int, int]


class LinearOperator:
    """A linear map between (Nt, nx)-shaped block-vector spaces.

    Parameters
    ----------
    in_shape / out_shape:
        ``(nt, nx)`` of the input and output block vectors.
    """

    def __init__(self, in_shape: Shape, out_shape: Shape) -> None:
        self.in_shape = (int(in_shape[0]), int(in_shape[1]))
        self.out_shape = (int(out_shape[0]), int(out_shape[1]))

    # -- core actions (subclasses implement _apply, may override _apply_block)
    def _apply(self, v: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _apply_block(self, V: np.ndarray) -> np.ndarray:
        # Fallback: loop the columns. Engine-backed operators override
        # this with a single blocked pipeline pass.
        return np.stack(
            [self._apply(V[:, :, j]) for j in range(V.shape[2])], axis=-1
        )

    # -- validated public API ------------------------------------------------
    def _check(self, v: np.ndarray, block: bool) -> np.ndarray:
        a = np.asarray(v, dtype=np.float64)
        want_ndim = 3 if block else 2
        if a.ndim != want_ndim or a.shape[:2] != self.in_shape:
            kind = f"{self.in_shape + ('k',)}" if block else f"{self.in_shape}"
            raise ReproError(
                f"{type(self).__name__} expects input shaped {kind}, "
                f"got {a.shape}"
            )
        return a

    def apply(self, v: np.ndarray) -> np.ndarray:
        """Apply to one ``(nt, nx)`` block vector."""
        return self._apply(self._check(v, block=False))

    def apply_block(self, V: np.ndarray) -> np.ndarray:
        """Apply to a ``(nt, nx, k)`` multi-RHS block."""
        return self._apply_block(self._check(V, block=True))

    def __call__(self, v: np.ndarray) -> np.ndarray:
        """Blocks and vectors both welcome (dispatch on ndim)."""
        a = np.asarray(v)
        return self.apply_block(a) if a.ndim == 3 else self.apply(a)

    # -- adjoint -------------------------------------------------------------
    def adjoint(self) -> "LinearOperator":
        """The adjoint operator, when the subclass defines one."""
        raise ReproError(f"{type(self).__name__} has no adjoint defined")

    @property
    def T(self) -> "LinearOperator":
        """Alias for :meth:`adjoint` (the operators here are real)."""
        return self.adjoint()

    # -- algebra ---------------------------------------------------------------
    def __add__(self, other: "LinearOperator") -> "LinearOperator":
        return _SumOperator(self, other)

    def __mul__(self, scalar: float) -> "LinearOperator":
        return _ScaledOperator(self, float(scalar))

    __rmul__ = __mul__

    def __matmul__(self, other: "LinearOperator") -> "LinearOperator":
        return _ComposedOperator(self, other)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}({self.in_shape} -> {self.out_shape})"
        )


class _SumOperator(LinearOperator):
    def __init__(self, a: LinearOperator, b: LinearOperator) -> None:
        if a.in_shape != b.in_shape or a.out_shape != b.out_shape:
            raise ReproError(
                f"cannot add operators with shapes {a.in_shape}->{a.out_shape} "
                f"and {b.in_shape}->{b.out_shape}"
            )
        super().__init__(a.in_shape, a.out_shape)
        self.a, self.b = a, b

    def _apply(self, v: np.ndarray) -> np.ndarray:
        return self.a._apply(v) + self.b._apply(v)

    def _apply_block(self, V: np.ndarray) -> np.ndarray:
        return self.a._apply_block(V) + self.b._apply_block(V)

    def adjoint(self) -> LinearOperator:
        return _SumOperator(self.a.adjoint(), self.b.adjoint())


class _ScaledOperator(LinearOperator):
    def __init__(self, a: LinearOperator, scalar: float) -> None:
        super().__init__(a.in_shape, a.out_shape)
        self.a, self.scalar = a, scalar

    def _apply(self, v: np.ndarray) -> np.ndarray:
        return self.scalar * self.a._apply(v)

    def _apply_block(self, V: np.ndarray) -> np.ndarray:
        return self.scalar * self.a._apply_block(V)

    def adjoint(self) -> LinearOperator:
        return _ScaledOperator(self.a.adjoint(), self.scalar)


class _ComposedOperator(LinearOperator):
    """``(A @ B)(v) = A(B(v))``."""

    def __init__(self, a: LinearOperator, b: LinearOperator) -> None:
        if b.out_shape != a.in_shape:
            raise ReproError(
                f"cannot compose: inner produces {b.out_shape}, "
                f"outer expects {a.in_shape}"
            )
        super().__init__(b.in_shape, a.out_shape)
        self.a, self.b = a, b

    def _apply(self, v: np.ndarray) -> np.ndarray:
        return self.a._apply(self.b._apply(v))

    def _apply_block(self, V: np.ndarray) -> np.ndarray:
        return self.a._apply_block(self.b._apply_block(V))

    def adjoint(self) -> LinearOperator:
        return _ComposedOperator(self.b.adjoint(), self.a.adjoint())


class IdentityOperator(LinearOperator):
    """The identity on ``(nt, nx)`` block vectors."""

    def __init__(self, shape: Shape) -> None:
        super().__init__(shape, shape)

    def _apply(self, v: np.ndarray) -> np.ndarray:
        return v.copy()

    def _apply_block(self, V: np.ndarray) -> np.ndarray:
        return V.copy()

    def adjoint(self) -> LinearOperator:
        return self


class CallableOperator(LinearOperator):
    """Adapt a plain callable (prior action, sparse solve) to the interface.

    Parameters
    ----------
    fn:
        Maps one (nt, nx_in) array to (nt, nx_out).
    fn_adjoint:
        Optional adjoint callable; enables :meth:`adjoint`.
    fn_block:
        Optional blocked form mapping (nt, nx_in, k) to (nt, nx_out, k);
        columns are looped through ``fn`` when omitted.
    """

    def __init__(
        self,
        in_shape: Shape,
        out_shape: Shape,
        fn: Callable[[np.ndarray], np.ndarray],
        fn_adjoint: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        fn_block: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> None:
        super().__init__(in_shape, out_shape)
        self._fn = fn
        self._fn_adjoint = fn_adjoint
        self._fn_block = fn_block

    def _apply(self, v: np.ndarray) -> np.ndarray:
        return np.asarray(self._fn(v), dtype=np.float64)

    def _apply_block(self, V: np.ndarray) -> np.ndarray:
        if self._fn_block is not None:
            return np.asarray(self._fn_block(V), dtype=np.float64)
        return super()._apply_block(V)

    def adjoint(self) -> LinearOperator:
        if self._fn_adjoint is None:
            raise ReproError("CallableOperator built without an adjoint callable")
        return CallableOperator(
            self.out_shape, self.in_shape, self._fn_adjoint, fn_adjoint=self._fn
        )


class ForwardOperator(LinearOperator):
    """F: parameter blocks (Nt, Nm) -> data blocks (Nt, Nd), engine-backed.

    ``apply`` runs one five-phase matvec; ``apply_block`` runs the
    blocked pipeline (one pass for all k columns) — the whole point of
    the multi-RHS path.
    """

    def __init__(
        self,
        engine: FFTMatvec,
        config: Union[str, PrecisionConfig] = "ddddd",
    ) -> None:
        super().__init__((engine.nt, engine.nm), (engine.nt, engine.nd))
        self.engine = engine
        self.config = PrecisionConfig.parse(config)

    def _apply(self, v: np.ndarray) -> np.ndarray:
        return self.engine.matvec(v, config=self.config)

    def _apply_block(self, V: np.ndarray) -> np.ndarray:
        return self.engine.matmat(V, config=self.config)

    def adjoint(self) -> "AdjointOperator":
        return AdjointOperator(self.engine, self.config)


class AdjointOperator(LinearOperator):
    """F*: data blocks (Nt, Nd) -> parameter blocks (Nt, Nm)."""

    def __init__(
        self,
        engine: FFTMatvec,
        config: Union[str, PrecisionConfig] = "ddddd",
    ) -> None:
        super().__init__((engine.nt, engine.nd), (engine.nt, engine.nm))
        self.engine = engine
        self.config = PrecisionConfig.parse(config)

    def _apply(self, v: np.ndarray) -> np.ndarray:
        return self.engine.rmatvec(v, config=self.config)

    def _apply_block(self, V: np.ndarray) -> np.ndarray:
        return self.engine.rmatmat(V, config=self.config)

    def adjoint(self) -> ForwardOperator:
        return ForwardOperator(self.engine, self.config)


class GaussNewtonHessian(LinearOperator):
    """The (regularized) Gauss-Newton Hessian ``F* Gn^{-1} F + R``.

    Parameters
    ----------
    forward:
        The forward map F (typically a :class:`ForwardOperator`); its
        adjoint provides F*.
    noise_std:
        Noise standard deviation; ``Gn^{-1} = noise_std^{-2} I``.
    reg:
        Optional regularization operator R on parameter blocks (e.g. a
        :class:`CallableOperator` wrapping the prior precision).  With
        ``reg`` SPD the Hessian is SPD and CG/block-CG apply.
    """

    def __init__(
        self,
        forward: LinearOperator,
        noise_std: float = 1.0,
        reg: Optional[LinearOperator] = None,
    ) -> None:
        if noise_std <= 0:
            raise ReproError(f"noise_std must be positive, got {noise_std}")
        if reg is not None and (
            reg.in_shape != forward.in_shape or reg.out_shape != forward.in_shape
        ):
            raise ReproError(
                f"regularization must map {forward.in_shape} to itself, got "
                f"{reg.in_shape} -> {reg.out_shape}"
            )
        super().__init__(forward.in_shape, forward.in_shape)
        self.forward = forward
        self.backward = forward.adjoint()
        self.noise_std = float(noise_std)
        self.reg = reg

    def _apply(self, v: np.ndarray) -> np.ndarray:
        out = self.backward._apply(self.forward._apply(v) / self.noise_std**2)
        if self.reg is not None:
            out = out + self.reg._apply(v)
        return out

    def _apply_block(self, V: np.ndarray) -> np.ndarray:
        out = self.backward._apply_block(
            self.forward._apply_block(V) / self.noise_std**2
        )
        if self.reg is not None:
            out = out + self.reg._apply_block(V)
        return out

    def adjoint(self) -> "GaussNewtonHessian":
        return self  # symmetric by construction
