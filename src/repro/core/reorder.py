"""SOTI/TOSI vector layout conversions.

FFTMatvec keeps block vectors in two layouts:

* **TOSI** — time-outer, space-inner: shape ``(time_or_freq, space)``;
  the layout of the user-facing vectors and of the SBGEMV inputs (one
  contiguous space vector per frequency).
* **SOTI** — space-outer, time-inner: shape ``(space, time)``; the
  layout the batched FFT wants (one contiguous time series per spatial
  point).

The conversions are pure memory operations (transposes).  Per paper
footnote 8 they execute in the lowest precision of the adjacent compute
phases and fuse any required cast into the same kernel — the cast is a
dtype change on the transpose's write side, not an extra pass.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.gpu.bandwidth import stream_efficiency
from repro.gpu.device import SimulatedDevice
from repro.gpu.kernel import Dim3, KernelLaunch
from repro.util.dtypes import Precision, cast_to
from repro.util.validation import ReproError

__all__ = ["tosi_to_soti", "soti_to_tosi", "reorder_bytes"]


def reorder_bytes(arr_shape, in_itemsize: int, out_itemsize: int) -> float:
    """HBM traffic of a fused reorder+cast: read at in-dtype, write at out."""
    n = 1
    for s in arr_shape:
        n *= int(s)
    return float(n) * (in_itemsize + out_itemsize)


def _charge_reorder(
    device: Optional[SimulatedDevice],
    name: str,
    in_arr: np.ndarray,
    out_arr: np.ndarray,
    phase: str,
) -> None:
    if device is None:
        return
    traffic = float(in_arr.nbytes + out_arr.nbytes)
    eff = stream_efficiency(traffic, device.spec)
    # Transposes are less cache-friendly than pure streams; apply the
    # classic ~0.75 factor of a tiled transpose kernel.
    kernel = KernelLaunch(
        name=name,
        grid=Dim3(x=max(1, (out_arr.size + 255) // 256)),
        block=Dim3(x=256),
        bytes_read=float(in_arr.nbytes),
        bytes_written=float(out_arr.nbytes),
        efficiency_hint=eff * 0.75,
    )
    device.launch(kernel, phase=phase)


def tosi_to_soti(
    v: np.ndarray,
    precision: Optional[Precision] = None,
    device: Optional[SimulatedDevice] = None,
    phase: str = "reorder",
) -> np.ndarray:
    """(time, space) -> (space, time), optionally casting (fused)."""
    a = np.asarray(v)
    if a.ndim != 2:
        raise ReproError(f"reorder expects a 2-D block vector, got ndim={a.ndim}")
    out = np.ascontiguousarray(a.T)
    if precision is not None:
        out = cast_to(out, precision)
    _charge_reorder(device, "reorder_tosi_to_soti", a, out, phase)
    return out


def soti_to_tosi(
    v: np.ndarray,
    precision: Optional[Precision] = None,
    device: Optional[SimulatedDevice] = None,
    phase: str = "reorder",
) -> np.ndarray:
    """(space, time) -> (time, space), optionally casting (fused)."""
    a = np.asarray(v)
    if a.ndim != 2:
        raise ReproError(f"reorder expects a 2-D block vector, got ndim={a.ndim}")
    out = np.ascontiguousarray(a.T)
    if precision is not None:
        out = cast_to(out, precision)
    _charge_reorder(device, "reorder_soti_to_tosi", a, out, phase)
    return out
