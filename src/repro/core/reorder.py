"""SOTI/TOSI vector layout conversions.

FFTMatvec keeps block vectors in two layouts:

* **TOSI** — time-outer, space-inner: shape ``(time_or_freq, space)``;
  the layout of the user-facing vectors and of the SBGEMV inputs (one
  contiguous space vector per frequency).
* **SOTI** — space-outer, time-inner: shape ``(space, time)``; the
  layout the batched FFT wants (one contiguous time series per spatial
  point).

The conversions are pure memory operations (transposes).  Per paper
footnote 8 they execute in the lowest precision of the adjacent compute
phases and fuse any required cast into the same kernel — the cast is a
dtype change on the transpose's write side, not an extra pass.

With a :class:`~repro.util.workspace.Workspace` the transposed (and
cast) output is written into a checked-out arena buffer — the fused
write of the real kernel — instead of a fresh
``ascontiguousarray``/``astype`` pair; the values are bitwise-identical
either way.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.backend import Backend, NumpyBackend
from repro.gpu.bandwidth import stream_efficiency
from repro.gpu.device import SimulatedDevice
from repro.gpu.kernel import Dim3, KernelLaunch
from repro.util.dtypes import Precision, complex_dtype, real_dtype
from repro.util.validation import ReproError
from repro.util.workspace import Workspace

__all__ = ["tosi_to_soti", "soti_to_tosi", "reorder_bytes", "transpose_into"]

_NUMPY = NumpyBackend()

# Column-block width for tiled transposes.  Wide blocked vectors (the
# matmat/rmatmat paths fold k request columns into the space axis) make
# a single strided transpose assignment walk far outside the cache; a
# tiled copy of ~block columns at a time keeps the working set resident
# and is several times faster, moving exactly the same bytes.
_TRANSPOSE_BLOCK = 256


def transpose_into(out: Any, a: Any, backend: Optional[Backend] = None) -> Any:
    """``out[...] = a.T`` as a cache-tiled copy (bitwise the same bytes).

    ``a`` is 2-D ``(r, c)``; ``out`` is ``(c, r)`` and may carry a
    different dtype — the cast happens on the write side of each tile,
    exactly as the untiled assignment would round it.  Small operands
    take the single-assignment path; the tiling only matters once the
    operand spills the cache.
    """
    be = backend if backend is not None else _NUMPY
    rows, cols = a.shape[0], a.shape[1]
    if rows <= 4 * _TRANSPOSE_BLOCK and cols <= 4 * _TRANSPOSE_BLOCK:
        out[...] = be.transpose(a)
    elif rows >= cols:
        for i0 in range(0, rows, _TRANSPOSE_BLOCK):
            hi = i0 + _TRANSPOSE_BLOCK
            out[:, i0:hi] = be.transpose(a[i0:hi])
    else:
        for i0 in range(0, cols, _TRANSPOSE_BLOCK):
            hi = i0 + _TRANSPOSE_BLOCK
            out[i0:hi] = be.transpose(a[:, i0:hi])
    return out


def reorder_bytes(arr_shape, in_itemsize: int, out_itemsize: int) -> float:
    """HBM traffic of a fused reorder+cast: read at in-dtype, write at out."""
    n = 1
    for s in arr_shape:
        n *= int(s)
    return float(n) * (in_itemsize + out_itemsize)


def _charge_reorder(
    device: Optional[SimulatedDevice],
    name: str,
    in_bytes: int,
    out_bytes: int,
    out_elems: int,
    phase: str,
) -> None:
    if device is None:
        return
    traffic = float(in_bytes + out_bytes)
    eff = stream_efficiency(traffic, device.spec)
    # Transposes are less cache-friendly than pure streams; apply the
    # classic ~0.75 factor of a tiled transpose kernel.
    kernel = KernelLaunch(
        name=name,
        grid=Dim3(x=max(1, (out_elems + 255) // 256)),
        block=Dim3(x=256),
        bytes_read=float(in_bytes),
        bytes_written=float(out_bytes),
        efficiency_hint=eff * 0.75,
    )
    device.launch(kernel, phase=phase)


def _reorder(
    v: Any,
    precision: Optional[Precision],
    device: Optional[SimulatedDevice],
    phase: str,
    workspace: Optional[Workspace],
    tag: str,
    kernel_name: str,
    backend: Optional[Backend],
) -> Any:
    be = backend if backend is not None else _NUMPY
    a = be.asarray(v)
    if a.ndim != 2:
        raise ReproError(f"reorder expects a 2-D block vector, got ndim={a.ndim}")
    if workspace is not None:
        if precision is None:
            dt = be.dtype_of(a)
        else:
            dt = (
                complex_dtype(precision)
                if be.iscomplex(a)
                else real_dtype(precision)
            )
        out = workspace.checkout(tag, (a.shape[1], a.shape[0]), dt)
        transpose_into(out, a, be)  # fused transpose + cast on the write side
    else:
        out = be.ascontiguous(be.transpose(a))
        if precision is not None:
            out = be.cast(out, precision)
    _charge_reorder(
        device, kernel_name, be.nbytes(a), be.nbytes(out), be.size(out), phase
    )
    return out


def tosi_to_soti(
    v: Any,
    precision: Optional[Precision] = None,
    device: Optional[SimulatedDevice] = None,
    phase: str = "reorder",
    workspace: Optional[Workspace] = None,
    tag: str = "tosi_to_soti",
    backend: Optional[Backend] = None,
) -> Any:
    """(time, space) -> (space, time), optionally casting (fused)."""
    return _reorder(
        v, precision, device, phase, workspace, tag, "reorder_tosi_to_soti", backend
    )


def soti_to_tosi(
    v: Any,
    precision: Optional[Precision] = None,
    device: Optional[SimulatedDevice] = None,
    phase: str = "reorder",
    workspace: Optional[Workspace] = None,
    tag: str = "soti_to_tosi",
    backend: Optional[Backend] = None,
) -> Any:
    """(space, time) -> (time, space), optionally casting (fused)."""
    return _reorder(
        v, precision, device, phase, workspace, tag, "reorder_soti_to_tosi", backend
    )
