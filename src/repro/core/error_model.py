"""First-order error analysis of the mixed-precision matvec (paper Eq. 6).

For the F matvec on a ``pr x pc`` grid::

    ||dv5|| / ||v5|| <= kappa(F_hat) * ( c1*eps1
                         + (cF*eps_d + c2*eps2 + c4*eps4) * log2(Nt)
                         + c3*eps3*n_m + c5*eps5*log2(pc) )

where ``eps_i`` is the machine epsilon of Phase ``i``'s precision,
``n_m = ceil(Nm/pc)`` is the local parameter block (``n_d = ceil(Nd/pr)``
for F*), ``c1`` is zero when Phase 1 runs in double (a pure memory
operation commits no error in its native precision), and the ``c_i`` are
O(1) algorithm-dependent constants.

The constants here are calibrated once against measured errors from the
engine (tests assert the bound actually dominates measurements across
sizes and all 32 configurations) while keeping the *structure* exactly
as published — the structure, not the constants, is the paper's claim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

from repro.core.precision import PrecisionConfig
from repro.util.dtypes import Precision, machine_eps
from repro.util.validation import check_positive_int

__all__ = ["ErrorModelParams", "relative_error_bound", "phase_error_terms"]


@dataclass(frozen=True)
class ErrorModelParams:
    """Algorithm-dependent constants of Eq. (6)."""

    c_setup: float = 4.0  # cF: the double-precision setup FFT of F
    c_pad: float = 1.0  # c1 (only applied when Phase 1 is single)
    c_fft: float = 4.0  # c2
    c_sbgemv: float = 1.0  # c3 (multiplies n_m or n_d)
    c_ifft: float = 4.0  # c4
    c_reduce: float = 1.0  # c5 (multiplies log2 of the reduce width)


DEFAULT_PARAMS = ErrorModelParams()


def phase_error_terms(
    config: Union[str, PrecisionConfig],
    nt: int,
    nm: int,
    nd: int,
    pr: int = 1,
    pc: int = 1,
    adjoint: bool = False,
    params: ErrorModelParams = DEFAULT_PARAMS,
) -> dict:
    """Per-phase contributions to the Eq. (6) bracket (kappa excluded).

    Returns a dict keyed by phase name, so benches can show which phase
    dominates (the paper: "the dominant error term comes from the
    SBGEMV").
    """
    cfg = PrecisionConfig.parse(config)
    check_positive_int(nt, "nt")
    check_positive_int(nm, "nm")
    check_positive_int(nd, "nd")
    check_positive_int(pr, "pr")
    check_positive_int(pc, "pc")

    log_nt = math.log2(float(nt)) if nt > 1 else 1.0
    eps_d = machine_eps(Precision.DOUBLE)

    # Local SBGEMV dot length: n_m for F, n_d for F*.
    if adjoint:
        local_len = -(-nd // pr)
        reduce_width = pr
    else:
        local_len = -(-nm // pc)
        reduce_width = pc
    log_reduce = math.log2(float(reduce_width)) if reduce_width > 1 else 0.0

    e1 = machine_eps(cfg.pad)
    e2 = machine_eps(cfg.fft)
    e3 = machine_eps(cfg.sbgemv)
    e4 = machine_eps(cfg.ifft)
    e5 = machine_eps(cfg.unpad)

    c1 = 0.0 if cfg.pad is Precision.DOUBLE else params.c_pad
    # Phase 5 in single rounds the unpadded output even on one GPU (the
    # same pure-memory rounding as Phase 1), on top of the paper's
    # eps5 * log2(reduce width) accumulation term.
    c5_mem = 0.0 if cfg.unpad is Precision.DOUBLE else params.c_pad
    return {
        "setup": params.c_setup * eps_d * log_nt,
        "pad": c1 * e1,
        "fft": params.c_fft * e2 * log_nt,
        "sbgemv": params.c_sbgemv * e3 * local_len,
        "ifft": params.c_ifft * e4 * log_nt,
        "unpad": c5_mem * e5 + params.c_reduce * e5 * log_reduce,
    }


def relative_error_bound(
    config: Union[str, PrecisionConfig],
    nt: int,
    nm: int,
    nd: int,
    kappa: float = 1.0,
    pr: int = 1,
    pc: int = 1,
    adjoint: bool = False,
    params: ErrorModelParams = DEFAULT_PARAMS,
) -> float:
    """Evaluate Eq. (6): the relative-error bound of one configuration.

    ``kappa`` is the condition number of F_hat
    (:meth:`BlockTriangularToeplitz.condition_number_hat`).
    """
    if kappa < 1.0:
        raise ValueError(f"kappa must be >= 1, got {kappa}")
    terms = phase_error_terms(
        config, nt, nm, nd, pr=pr, pc=pc, adjoint=adjoint, params=params
    )
    return kappa * sum(terms.values())
