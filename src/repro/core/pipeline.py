"""Overlapped matvec pipelines for dense-operator assembly.

Paper Section 4.2.2: FFTMatvec's phases 2-4 depend on the Phase-1
communication, so a *single* matvec cannot overlap communication with
computation — but "when computing many matvecs in sequence and saving
the results to file, the matvec calls can be overlapped with the host
routines that generate input vectors and save output vectors.  This
process is used when computing dense operators" (the data-space Hessian
of [21], which takes ``Nd * Nt`` F/F* actions, O(1e5) at scale).

:class:`OverlappedMatvecRunner` executes a batch of matvecs with real
numerics and charges both schedules on the shared event timeline
(:class:`~repro.util.timing.Timeline`): the device's matvecs ride a
*device stream* (the engine charges its kernels onto it via
``SimulatedDevice.on_stream``), host generate/save routines ride a
*host stream*, and double buffering is expressed as slot barriers —
per slot the device computes matvec ``i`` while the host generates
vector ``i+1`` and saves result ``i-1``, and both streams join before
the next slot (two buffers: neither side can run further ahead).  Wall
time is the timeline's critical path:

* serial:      ``sum_i (gen_i + matvec_i + save_i)``
* overlapped:  ``gen_0 + sum_i max(matvec_i, host_slot_i) + save_last``

The closed-form steady state — ``max(matvec, gen + save)`` per interior
slot — is retained (``PipelineReport.closed_form_total``) as a
cross-check on the timeline schedule; the two agree to rounding.

The *blocked* schedule (:meth:`OverlappedMatvecRunner.run_blocked`)
composes this overlap with the multi-RHS engine path: the device runs
one blocked matmat per chunk of ``max_block_k`` vectors while the host
generates the next chunk's inputs and saves the previous chunk's
results.  Steady-state cost per interior chunk is ``max(matmat_k, k *
(gen + save))`` (boundary chunks drop the missing neighbour's work) —
the device side shrinks by the blocked speedup while the host side is
unchanged, so blocking pushes device-bound batches toward (and
sometimes across) the host-bound regime where the overlap hides
everything but the chunk prologue/epilogue.

On the multi-GPU grid the same :class:`~repro.util.timing.HostModel`
fuses directly into the chunk schedule:
``ParallelFFTMatvec(host=...)`` runs a third *host* stream alongside
the comm and compute streams, so generate/save overlap the collectives
too — see :mod:`repro.core.parallel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro.core.matvec import FFTMatvec
from repro.core.precision import PrecisionConfig
from repro.util.blocking import chunk_ranges, validate_max_block_k
from repro.util.timing import HostModel, Timeline
from repro.util.validation import ReproError

# HostModel lives in repro.util.timing (the grid engine's fused
# three-stream schedule uses it too); re-exported here for the original
# import path.
__all__ = [
    "HostModel",
    "PipelineReport",
    "BlockedPipelineReport",
    "OverlappedMatvecRunner",
]


@dataclass
class PipelineReport:
    """Timing summary of one batch run.

    ``overlapped_total`` is the event-timeline critical path;
    ``closed_form_total`` is the analytic double-buffered steady state
    kept as a cross-check (they agree to rounding).
    """

    n_vectors: int
    device_time: float  # sum of matvec times
    host_time: float  # sum of gen+save times
    serial_total: float
    overlapped_total: float
    closed_form_total: float = 0.0

    @property
    def overlap_speedup(self) -> float:
        return self.serial_total / self.overlapped_total

    @property
    def device_bound(self) -> bool:
        """True when matvecs dominate the steady state (host fully hidden)."""
        return self.device_time >= self.host_time


@dataclass
class BlockedPipelineReport(PipelineReport):
    """Timing summary of a blocked (multi-RHS) batch run.

    ``device_time`` is the sum of blocked matmat times; ``n_vectors``
    counts logical vectors, ``n_blocks`` the pipeline passes that
    carried them.
    """

    n_blocks: int = 0
    max_block_k: Optional[int] = None


class OverlappedMatvecRunner:
    """Run many matvecs with modeled host/device overlap.

    Parameters
    ----------
    engine:
        An :class:`FFTMatvec` with a simulated device (needed for
        per-matvec times).
    host:
        Host-side cost model.
    """

    def __init__(self, engine: FFTMatvec, host: HostModel = HostModel()) -> None:
        if engine.device is None:
            raise ReproError("OverlappedMatvecRunner needs a device-backed engine")
        self.engine = engine
        self.host = host

    def run(
        self,
        inputs: Sequence[np.ndarray],
        config: Union[str, PrecisionConfig] = "ddddd",
        adjoint: bool = False,
        sink: Optional[Callable[[int, np.ndarray], None]] = None,
    ):
        """Apply the matvec to every input; returns (outputs, report).

        ``sink(i, out)`` is called for each result in completion order
        (the "save to file" host routine).
        """
        if len(inputs) == 0:
            raise ReproError("need at least one input vector")
        cfg = PrecisionConfig.parse(config)
        op = self.engine.rmatvec if adjoint else self.engine.matvec

        # Event timeline: device matvecs on one stream, host gen/save on
        # the other, a barrier per double-buffered slot.
        tl = Timeline(self.engine.device.clock)
        host = tl.stream("host")
        dev = tl.stream("device")
        t_start = tl.sync()
        host.charge(self.host.gen_time)  # prologue: generate vector 0
        dev.wait(host.record("gen[0]"))

        outputs: List[np.ndarray] = []
        matvec_times: List[float] = []
        for i, v in enumerate(inputs):
            with self.engine.device.on_stream(dev):
                out = op(v, config=cfg)
            assert self.engine.last_timing is not None
            matvec_times.append(self.engine.last_timing.total)
            # Steady-state host slot: generate i+1 and save i-1 (the
            # classic per-vector model charges gen+save every slot).
            host.charge(self.host.per_vector)
            e_dev, e_host = dev.record(f"matvec[{i}]"), host.record()
            dev.wait(e_host)
            host.wait(e_dev)
            if sink is not None:
                sink(i, out)
            outputs.append(out)
        host.charge(self.host.save_time)  # epilogue: save the last result
        overlapped_total = tl.sync() - t_start

        n = len(inputs)
        device_time = float(sum(matvec_times))
        host_time = n * self.host.per_vector
        serial_total = device_time + host_time
        # Closed-form cross-check: per slot the slower side wins.
        closed_form = (
            self.host.gen_time
            + sum(max(t, self.host.per_vector) for t in matvec_times)
            + self.host.save_time
        )
        report = PipelineReport(
            n_vectors=n,
            device_time=device_time,
            host_time=host_time,
            serial_total=serial_total,
            overlapped_total=overlapped_total,
            closed_form_total=closed_form,
        )
        return outputs, report

    def run_blocked(
        self,
        V: np.ndarray,
        config: Union[str, PrecisionConfig] = "ddddd",
        adjoint: bool = False,
        max_block_k: Optional[int] = None,
        sink: Optional[Callable[[int, np.ndarray], None]] = None,
    ):
        """Apply the blocked matvec to a ``(Nt, nx, k)`` input block.

        The device runs one matmat per chunk of at most ``max_block_k``
        columns (None = all k in one pass); the modeled overlapped
        schedule has the host generate chunk ``i+1`` and save chunk
        ``i-1`` while the device runs chunk ``i`` — steady-state cost
        per interior chunk ``max(matmat_time, k_chunk * (gen + save))``.
        ``sink(j, out)`` is called per logical column in completion
        order.  Returns ``(outputs (Nt, ny, k), report)``.
        """
        cfg = PrecisionConfig.parse(config)
        nx = self.engine.nd if adjoint else self.engine.nm
        ny = self.engine.nm if adjoint else self.engine.nd
        VV = np.asarray(V, dtype=np.float64)
        if VV.ndim != 3 or VV.shape[:2] != (self.engine.nt, nx):
            raise ReproError(
                f"input block must be ({self.engine.nt}, {nx}, k), "
                f"got {VV.shape}"
            )
        op = self.engine.rmatmat if adjoint else self.engine.matmat
        ranges = chunk_ranges(VV.shape[2], validate_max_block_k(max_block_k))
        widths = [j1 - j0 for j0, j1 in ranges]
        n_blocks = len(ranges)

        # Chunk-granular double buffering on the timeline: while the
        # device runs chunk i, the host generates chunk i+1 and saves
        # chunk i-1 (boundary slots drop the missing neighbour, so host
        # work across prologue + slots + epilogue sums to exactly the
        # serial host time and overlap can never lose to serial).
        tl = Timeline(self.engine.device.clock)
        host = tl.stream("host")
        dev = tl.stream("device")
        t_start = tl.sync()
        host.charge(widths[0] * self.host.gen_time)  # prologue: chunk 0
        dev.wait(host.record("gen[0]"))

        out = np.empty((self.engine.nt, ny, VV.shape[2]))
        block_times: List[float] = []
        for i, (j0, j1) in enumerate(ranges):
            with self.engine.device.on_stream(dev):
                res = op(VV[:, :, j0:j1], config=cfg)
            assert self.engine.last_timing is not None
            block_times.append(self.engine.last_timing.total)
            host_slot = 0.0
            if i + 1 < n_blocks:
                host_slot += widths[i + 1] * self.host.gen_time
            if i > 0:
                host_slot += widths[i - 1] * self.host.save_time
            host.charge(host_slot)
            e_dev, e_host = dev.record(f"matmat[{i}]"), host.record()
            dev.wait(e_host)
            host.wait(e_dev)
            if sink is not None:
                for j in range(j0, j1):
                    sink(j, res[:, :, j - j0])
            out[:, :, j0:j1] = res
        host.charge(widths[-1] * self.host.save_time)  # epilogue
        overlapped_total = tl.sync() - t_start

        k = VV.shape[2]
        device_time = float(sum(block_times))
        host_time = k * self.host.per_vector
        serial_total = device_time + host_time
        # Closed-form steady state, kept as a cross-check: for uniform
        # interior slots, max(matmat_k, k_chunk * (gen + save)).
        steady = 0.0
        for i, t in enumerate(block_times):
            host_slot = 0.0
            if i + 1 < n_blocks:
                host_slot += widths[i + 1] * self.host.gen_time
            if i > 0:
                host_slot += widths[i - 1] * self.host.save_time
            steady += max(t, host_slot)
        closed_form = (
            widths[0] * self.host.gen_time
            + steady
            + widths[-1] * self.host.save_time
        )
        report = BlockedPipelineReport(
            n_vectors=k,
            device_time=device_time,
            host_time=host_time,
            serial_total=serial_total,
            overlapped_total=overlapped_total,
            closed_form_total=closed_form,
            n_blocks=len(ranges),
            max_block_k=max_block_k,
        )
        return out, report

    def assemble_columns(
        self,
        unit_indices: Sequence[int],
        config: Union[str, PrecisionConfig] = "ddddd",
        adjoint: bool = True,
    ):
        """Dense-operator assembly: one matvec per unit vector.

        With ``adjoint=True`` this computes columns of F* (rows of F) —
        the building block of the data-space Hessian assembly in [21].
        Returns (matrix with one column per index, report).
        """
        nt = self.engine.nt
        width = self.engine.nd if adjoint else self.engine.nm
        inputs = []
        for idx in unit_indices:
            if not (0 <= idx < nt * width):
                raise ReproError(f"unit index {idx} outside [0, {nt * width})")
            e = np.zeros((nt, width))
            e[idx // width, idx % width] = 1.0
            inputs.append(e)
        outputs, report = self.run(inputs, config=config, adjoint=adjoint)
        cols = np.column_stack([o.ravel() for o in outputs])
        return cols, report

    def assemble_columns_blocked(
        self,
        unit_indices: Sequence[int],
        config: Union[str, PrecisionConfig] = "ddddd",
        adjoint: bool = True,
        max_block_k: Optional[int] = None,
    ):
        """Blocked dense-operator assembly: chunks of unit vectors ride
        one matmat each (the host generates/saves neighbouring chunks in
        the overlapped schedule).  Returns (columns, report) like
        :meth:`assemble_columns`.
        """
        nt = self.engine.nt
        width = self.engine.nd if adjoint else self.engine.nm
        E = np.zeros((nt, width, len(unit_indices)))
        for j, idx in enumerate(unit_indices):
            if not (0 <= idx < nt * width):
                raise ReproError(f"unit index {idx} outside [0, {nt * width})")
            E[idx // width, idx % width, j] = 1.0
        out, report = self.run_blocked(
            E, config=config, adjoint=adjoint, max_block_k=max_block_k
        )
        ny = self.engine.nm if adjoint else self.engine.nd
        return out.reshape(nt * ny, len(unit_indices)), report
