"""Overlapped matvec pipelines for dense-operator assembly.

Paper Section 4.2.2: FFTMatvec's phases 2-4 depend on the Phase-1
communication, so a *single* matvec cannot overlap communication with
computation — but "when computing many matvecs in sequence and saving
the results to file, the matvec calls can be overlapped with the host
routines that generate input vectors and save output vectors.  This
process is used when computing dense operators" (the data-space Hessian
of [21], which takes ``Nd * Nt`` F/F* actions, O(1e5) at scale).

:class:`OverlappedMatvecRunner` executes a batch of matvecs with real
numerics and models the two schedules:

* serial:      sum_i (gen_i + matvec_i + save_i)
* overlapped:  double-buffered — the host generates vector ``i+1`` and
  saves result ``i-1`` while the device computes matvec ``i``; steady-
  state cost per vector is ``max(matvec, gen + save)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro.core.matvec import FFTMatvec
from repro.core.precision import PrecisionConfig
from repro.util.validation import ReproError

__all__ = ["HostModel", "PipelineReport", "OverlappedMatvecRunner"]


@dataclass(frozen=True)
class HostModel:
    """Host-side costs per vector (seconds).

    ``gen_time`` covers producing the next input (RNG / reading a unit
    vector / disk read); ``save_time`` covers writing the result.
    """

    gen_time: float = 50e-6
    save_time: float = 100e-6

    def __post_init__(self) -> None:
        if self.gen_time < 0 or self.save_time < 0:
            raise ReproError("host times must be non-negative")

    @property
    def per_vector(self) -> float:
        return self.gen_time + self.save_time


@dataclass
class PipelineReport:
    """Timing summary of one batch run."""

    n_vectors: int
    device_time: float  # sum of matvec times
    host_time: float  # sum of gen+save times
    serial_total: float
    overlapped_total: float

    @property
    def overlap_speedup(self) -> float:
        return self.serial_total / self.overlapped_total

    @property
    def device_bound(self) -> bool:
        """True when matvecs dominate the steady state (host fully hidden)."""
        return self.device_time >= self.host_time


class OverlappedMatvecRunner:
    """Run many matvecs with modeled host/device overlap.

    Parameters
    ----------
    engine:
        An :class:`FFTMatvec` with a simulated device (needed for
        per-matvec times).
    host:
        Host-side cost model.
    """

    def __init__(self, engine: FFTMatvec, host: HostModel = HostModel()) -> None:
        if engine.device is None:
            raise ReproError("OverlappedMatvecRunner needs a device-backed engine")
        self.engine = engine
        self.host = host

    def run(
        self,
        inputs: Sequence[np.ndarray],
        config: Union[str, PrecisionConfig] = "ddddd",
        adjoint: bool = False,
        sink: Optional[Callable[[int, np.ndarray], None]] = None,
    ):
        """Apply the matvec to every input; returns (outputs, report).

        ``sink(i, out)`` is called for each result in completion order
        (the "save to file" host routine).
        """
        if len(inputs) == 0:
            raise ReproError("need at least one input vector")
        cfg = PrecisionConfig.parse(config)
        op = self.engine.rmatvec if adjoint else self.engine.matvec

        outputs: List[np.ndarray] = []
        matvec_times: List[float] = []
        for i, v in enumerate(inputs):
            out = op(v, config=cfg)
            assert self.engine.last_timing is not None
            matvec_times.append(self.engine.last_timing.total)
            if sink is not None:
                sink(i, out)
            outputs.append(out)

        n = len(inputs)
        device_time = float(sum(matvec_times))
        host_time = n * self.host.per_vector
        serial_total = device_time + host_time
        # Double buffering: prologue generates the first vector, epilogue
        # saves the last; in between each slot costs the slower side.
        steady = sum(
            max(t, self.host.per_vector) for t in matvec_times
        )
        overlapped_total = self.host.gen_time + steady + self.host.save_time
        report = PipelineReport(
            n_vectors=n,
            device_time=device_time,
            host_time=host_time,
            serial_total=serial_total,
            overlapped_total=overlapped_total,
        )
        return outputs, report

    def assemble_columns(
        self,
        unit_indices: Sequence[int],
        config: Union[str, PrecisionConfig] = "ddddd",
        adjoint: bool = True,
    ):
        """Dense-operator assembly: one matvec per unit vector.

        With ``adjoint=True`` this computes columns of F* (rows of F) —
        the building block of the data-space Hessian assembly in [21].
        Returns (matrix with one column per index, report).
        """
        nt = self.engine.nt
        width = self.engine.nd if adjoint else self.engine.nm
        inputs = []
        for idx in unit_indices:
            if not (0 <= idx < nt * width):
                raise ReproError(f"unit index {idx} outside [0, {nt * width})")
            e = np.zeros((nt, width))
            e[idx // width, idx % width] = 1.0
            inputs.append(e)
        outputs, report = self.run(inputs, config=config, adjoint=adjoint)
        cols = np.column_stack([o.ravel() for o in outputs])
        return cols, report
