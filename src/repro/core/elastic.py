"""Elastic fault-tolerant driver over :class:`ParallelFFTMatvec`.

The recovery half of the fault-tolerance story (the serialization half
is :mod:`repro.util.checkpoint`): :class:`ElasticEngine` owns a grid
engine and drives blocked applies **chunk by chunk**, committing each
chunk's columns into the output as it completes.  When a collective
raises :class:`~repro.comm.fault.RankFailure`, completed chunks are
kept, the surviving ``N - 1`` ranks are re-partitioned through
:func:`repro.comm.balance.balance_extents` onto a fresh grid, and only
the lost chunk (plus the not-yet-run remainder) is replayed.

Why the recovered result can claim **bitwise equality** with the
no-failure run: under ``reduction="pairwise"`` (PR 8) every chunk's
result is invariant to the row/column partition *and* to chunking — the
virtual-binary-tree contraction is indexed by global element positions,
not by ranks.  Replaying a chunk on a reshaped ``N - 1``-rank grid
therefore reproduces the exact bits the dead grid would have produced,
and stitching per-chunk results equals the single uninterrupted call.
Under ``reduction="fast"`` recovery still returns a correct result, but
the reduce tree is rank-indexed, so only ``~1e-12`` relative agreement
is guaranteed — the chaos tests assert the strong claim on pairwise
only.

Elasticity is symmetric: :meth:`ElasticEngine.resize` grows (``N + 1``
when a replacement node joins) or shrinks the grid between applies, with
the same bitwise guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.comm.balance import balance_extents, linear_cost
from repro.comm.fault import (
    CorruptionSchedule,
    FailureSchedule,
    RankFailure,
    SilentCorruption,
)
from repro.comm.grid import ProcessGrid
from repro.comm.netmodel import NetworkModel, SIMPLE_NETWORK
from repro.core.parallel import ParallelFFTMatvec
from repro.core.precision import PrecisionConfig
from repro.core.toeplitz import BlockTriangularToeplitz
from repro.util.blocking import (
    check_block,
    check_out_buffer,
    chunk_ranges,
    validate_max_block_k,
)
from repro.util.validation import ReproError, check_positive_int

__all__ = [
    "FailureEvent",
    "CorruptionEvent",
    "RecoveryReport",
    "elastic_grid_shape",
    "ElasticEngine",
]


def elastic_grid_shape(
    n_ranks: int, nd: int, nm: int
) -> Tuple[int, int]:
    """Choose a ``pr x pc`` grid shape for ``n_ranks`` survivors.

    Every factor pair ``pr * pc == n_ranks`` with ``pr <= nd`` and
    ``pc <= nm`` (each rank must own at least one row and one column —
    width-1 parts are legal under the pairwise reduction) is a
    candidate; the closest-to-square pair wins, ties broken toward more
    columns (the Phase-1 broadcast rides the cheaper contiguous axis).
    Raises when no factorization fits the operator extents.
    """
    check_positive_int(n_ranks, "n_ranks")
    best: Optional[Tuple[Tuple[int, int], Tuple[int, int]]] = None
    for pr in range(1, n_ranks + 1):
        if n_ranks % pr:
            continue
        pc = n_ranks // pr
        if pr > nd or pc > nm:
            continue
        score = (abs(pr - pc), -pc)
        if best is None or score < best[0]:
            best = (score, (pr, pc))
    if best is None:
        raise ReproError(
            f"no {n_ranks}-rank grid fits an {nd}x{nm} operator "
            f"(need pr <= {nd} and pc <= {nm} with pr*pc == {n_ranks})"
        )
    return best[1]


@dataclass(frozen=True)
class FailureEvent:
    """One observed rank failure and the reshape that absorbed it."""

    chunk: int  # chunk index that was being computed when the rank died
    rank: int  # victim world rank on the old grid
    op: str  # collective kind the failure surfaced in
    collective_index: int  # global collective counter at the failure
    old_shape: Tuple[int, int]  # (pr, pc) before recovery
    new_shape: Tuple[int, int]  # (pr, pc) after recovery
    old_ranks: int
    new_ranks: int


@dataclass(frozen=True)
class CorruptionEvent:
    """One detected silent-data-corruption and the chunk that absorbed it."""

    chunk: int  # chunk index whose apply tripped a checksum
    check: str  # which detector fired ("abft" / "energy" / "payload")
    phase: str  # pipeline phase or collective the check guarded
    rank: Optional[int]  # rank label carried by the detection, if any
    attempt: int  # how many detections this chunk has seen (1-based)


@dataclass
class RecoveryReport:
    """Cumulative recovery accounting for one :class:`ElasticEngine`."""

    events: List[FailureEvent] = field(default_factory=list)
    corruption_events: List[CorruptionEvent] = field(default_factory=list)
    rebuilds: int = 0  # grids built beyond the first (failures + resizes)
    chunks_applied: int = 0  # chunks committed, incl. replays
    chunks_replayed: int = 0  # chunks replayed after a rank failure
    chunks_recomputed: int = 0  # chunks recomputed after a detected SDC

    @property
    def failures(self) -> int:
        return len(self.events)

    @property
    def corruptions(self) -> int:
        return len(self.corruption_events)


class ElasticEngine:
    """Fault-tolerant, resizable wrapper around the grid engine.

    Parameters
    ----------
    matrix:
        The block-Toeplitz operator (shared by every grid incarnation —
        rebuilding re-slices it, nothing is lost with a dead rank).
    n_ranks:
        Initial world size.  The grid shape is chosen by
        :func:`elastic_grid_shape` unless ``grid_shape`` pins it.
    reduction:
        Passed to :class:`ParallelFFTMatvec`; ``"pairwise"`` (default)
        is what makes recovery bitwise-exact.  ``"fast"`` recovers with
        only ``~1e-12`` relative agreement.
    failures:
        Optional :class:`~repro.comm.fault.FailureSchedule`, installed
        on every grid this engine builds (including recovery rebuilds,
        so multi-kill schedules cascade deterministically).
    corruptions:
        Optional :class:`~repro.comm.fault.CorruptionSchedule`,
        installed the same way.  Armed corruption implies ABFT checks
        inside every rank engine; a detected flip surfaces as
        :class:`~repro.comm.fault.SilentCorruption` and is absorbed by
        recomputing only the corrupted chunk — no grid rebuild, since
        the engine state is untouched (the flip lived in a transient
        buffer) and the consumed schedule entry never re-fires.
    validate:
        Forwarded to :class:`ParallelFFTMatvec`: ``"guard"``,
        ``"abft"``, ``"guard+abft"`` or ``True`` turn on boundary
        checks even with no corruption schedule armed.
    max_corruption_retries:
        Per-chunk cap on SDC recomputations; a chunk that keeps failing
        its checksums past this many retries re-raises the last
        :class:`SilentCorruption` (a persistent mismatch is a real bug,
        not a transient flip).
    min_ranks:
        Recovery floor: a failure that would leave fewer survivors than
        this re-raises :class:`RankFailure` instead of reshaping.
    max_failures:
        Total failures absorbed before giving up (re-raising), a
        backstop against schedules that kill faster than replays finish.
    grid_shape, row_ranges, col_ranges:
        Optional explicit first-build geometry (property tests sweep
        random and width-1 partitions).  Recovery rebuilds always use
        the balanced search — the dead grid's skew is stale information.
    """

    def __init__(
        self,
        matrix: Union[BlockTriangularToeplitz, np.ndarray],
        n_ranks: int,
        *,
        net: NetworkModel = SIMPLE_NETWORK,
        spec=None,
        reduction: str = "pairwise",
        max_block_k: Optional[int] = None,
        overlap: bool = True,
        workspace: Union[None, bool] = None,
        backend=None,
        failures: Optional[FailureSchedule] = None,
        corruptions: Optional[CorruptionSchedule] = None,
        validate: Union[None, bool, str] = None,
        max_corruption_retries: int = 4,
        min_ranks: int = 1,
        max_failures: int = 8,
        grid_shape: Optional[Tuple[int, int]] = None,
        row_ranges: Optional[Sequence[Tuple[int, int]]] = None,
        col_ranges: Optional[Sequence[Tuple[int, int]]] = None,
    ) -> None:
        self.matrix = (
            matrix
            if isinstance(matrix, BlockTriangularToeplitz)
            else BlockTriangularToeplitz(np.asarray(matrix))
        )
        check_positive_int(n_ranks, "n_ranks")
        self.net = net
        self.spec = spec
        self.reduction = reduction
        self.max_block_k = validate_max_block_k(max_block_k)
        self.overlap = bool(overlap)
        self.workspace = workspace
        self.backend = backend
        self.failures = failures
        self.corruptions = corruptions
        self.validate = validate
        self.max_corruption_retries = check_positive_int(
            max_corruption_retries, "max_corruption_retries"
        )
        self.min_ranks = check_positive_int(min_ranks, "min_ranks")
        self.max_failures = check_positive_int(max_failures, "max_failures")
        self.report = RecoveryReport()
        self.engine: Optional[ParallelFFTMatvec] = None
        self.n_ranks = 0
        self._build(
            n_ranks,
            grid_shape=grid_shape,
            row_ranges=row_ranges,
            col_ranges=col_ranges,
        )

    # -- geometry -------------------------------------------------------------
    @property
    def nt(self) -> int:
        return self.matrix.nt

    @property
    def nd(self) -> int:
        return self.matrix.nd

    @property
    def nm(self) -> int:
        return self.matrix.nm

    @property
    def grid(self) -> ProcessGrid:
        return self.engine.grid

    def geometry_key(
        self, config: Union[None, str, PrecisionConfig] = None
    ) -> Tuple:
        """The *current* grid engine's geometry key (see
        :meth:`ParallelFFTMatvec.geometry_key`).  After a recovery
        reshape this key changes — which is exactly how the serving
        cache detects (and evicts) an engine whose grid shrank mid-run.
        """
        return self.engine.geometry_key(config)

    def _balanced_ranges(self, n: int, parts: int) -> List[Tuple[int, int]]:
        """Uniform-cost partition search for a fresh (reshaped) grid.

        Recovery has no trustworthy per-rank measurements for the *new*
        shape (the dead grid's clocks describe different part widths),
        so rebuilds seed the balancer with uniform unit costs — the
        searched optimum is the even split, found through the same
        :func:`~repro.comm.balance.balance_extents` machinery callers
        use to rebalance measured skew later.
        """
        return list(
            balance_extents(
                n, parts, linear_cost([1.0] * parts), what="elastic"
            ).extents
        )

    def _build(
        self,
        n_ranks: int,
        grid_shape: Optional[Tuple[int, int]] = None,
        row_ranges: Optional[Sequence[Tuple[int, int]]] = None,
        col_ranges: Optional[Sequence[Tuple[int, int]]] = None,
    ) -> None:
        if grid_shape is None:
            if row_ranges is not None and col_ranges is not None:
                pr, pc = len(list(row_ranges)), len(list(col_ranges))
            else:
                pr, pc = elastic_grid_shape(n_ranks, self.nd, self.nm)
        else:
            pr, pc = grid_shape
        if pr * pc != n_ranks:
            raise ReproError(
                f"grid shape {pr}x{pc} does not hold {n_ranks} ranks"
            )
        grid = ProcessGrid(pr, pc, net=self.net, backend=None)
        if row_ranges is None:
            row_ranges = self._balanced_ranges(self.nd, pr)
        if col_ranges is None:
            col_ranges = self._balanced_ranges(self.nm, pc)
        # Chunking lives in *this* layer (so a chunk is the replay unit);
        # the inner engine always sees exactly one chunk per call.
        self.engine = ParallelFFTMatvec(
            self.matrix,
            grid,
            spec=self.spec,
            max_block_k=None,
            overlap=self.overlap,
            reduction=self.reduction,
            row_ranges=list(row_ranges),
            col_ranges=list(col_ranges),
            workspace=self.workspace,
            backend=self.backend,
            validate=self.validate,
        )
        if self.failures is not None:
            self.engine.install_failure_schedule(self.failures)
        if self.corruptions is not None:
            self.engine.install_corruption_schedule(self.corruptions)
        if self.n_ranks:
            self.report.rebuilds += 1
        self.n_ranks = n_ranks

    # -- elasticity -----------------------------------------------------------
    def resize(self, n_ranks: int) -> None:
        """Grow or shrink to ``n_ranks`` between applies (N+1 on grow).

        The next apply runs on the new balanced grid; under the pairwise
        reduction its results are bitwise-identical to every other size.
        """
        check_positive_int(n_ranks, "n_ranks")
        if n_ranks == self.n_ranks:
            return
        self._build(n_ranks)

    def install_failure_schedule(self, schedule: Optional[FailureSchedule]) -> None:
        """Swap the failure schedule (installed on the live grid too)."""
        self.failures = schedule
        self.engine.install_failure_schedule(schedule)

    def install_corruption_schedule(
        self, schedule: Optional[CorruptionSchedule]
    ) -> None:
        """Swap the corruption schedule (installed on the live grid too)."""
        self.corruptions = schedule
        self.engine.install_corruption_schedule(schedule)

    def _recover(self, failure: RankFailure, chunk: int) -> None:
        if self.report.failures + 1 > self.max_failures:
            raise failure
        survivors = self.n_ranks - 1
        if survivors < self.min_ranks:
            # Failure budget exhausted: nothing left to reshape onto.
            raise failure
        old_shape = (self.grid.pr, self.grid.pc)
        old_ranks = self.n_ranks
        self._build(survivors)
        self.report.events.append(
            FailureEvent(
                chunk=chunk,
                rank=failure.rank,
                op=failure.op,
                collective_index=failure.collective_index,
                old_shape=old_shape,
                new_shape=(self.grid.pr, self.grid.pc),
                old_ranks=old_ranks,
                new_ranks=survivors,
            )
        )

    # -- applies --------------------------------------------------------------
    def _apply(
        self,
        V: np.ndarray,
        config: Union[str, PrecisionConfig],
        max_block_k: Optional[int],
        adjoint: bool,
        out: Optional[np.ndarray],
        deterministic: bool = False,
    ) -> np.ndarray:
        nx_in = self.nd if adjoint else self.nm
        nx_out = self.nm if adjoint else self.nd
        A = check_block(V, self.nt, nx_in, "elastic input")
        k = A.shape[2]
        mbk = self.max_block_k if max_block_k is None else validate_max_block_k(
            max_block_k
        )
        ranges = chunk_ranges(k, mbk)
        result = check_out_buffer(out, (self.nt, nx_out, k), "out")
        if result is None:
            result = np.empty((self.nt, nx_out, k), dtype=np.float64)

        # Chunk-at-a-time with commit: a failure inside chunk i loses
        # only chunk i — committed columns survive the grid, uncommitted
        # ones replay on the reshaped survivors.  A detected SDC is even
        # cheaper: the flip lived in a transient buffer (committed chunks
        # and the engine's precomputed spectra were never touched), so
        # only chunk i recomputes, on the *same* grid, and under the
        # pairwise reduction the recomputed bits equal the clean run's.
        i = 0
        sdc_retries = 0
        while i < len(ranges):
            j0, j1 = ranges[i]
            apply_fn = self.engine.rmatmat if adjoint else self.engine.matmat
            try:
                chunk_out = apply_fn(
                    A[:, :, j0:j1], config=config, deterministic=deterministic
                )
            except RankFailure as failure:
                self._recover(failure, chunk=i)
                self.report.chunks_replayed += 1
                continue
            except SilentCorruption as sdc:
                if sdc.chunk is None:
                    sdc.chunk = i
                sdc_retries += 1
                self.report.corruption_events.append(
                    CorruptionEvent(
                        chunk=i,
                        check=sdc.check,
                        phase=sdc.phase,
                        rank=sdc.rank,
                        attempt=sdc_retries,
                    )
                )
                if sdc_retries > self.max_corruption_retries:
                    raise
                self.report.chunks_recomputed += 1
                continue
            result[:, :, j0:j1] = chunk_out
            self.report.chunks_applied += 1
            sdc_retries = 0
            i += 1
        return result

    def matmat(
        self,
        M: np.ndarray,
        config: Union[str, PrecisionConfig] = "ddddd",
        max_block_k: Optional[int] = None,
        out: Optional[np.ndarray] = None,
        deterministic: bool = False,
    ) -> np.ndarray:
        """``D = F M`` with transparent rank-failure recovery.

        Identical contract to :meth:`ParallelFFTMatvec.matmat`; under
        ``reduction="pairwise"`` the result is bitwise-identical to the
        no-failure run regardless of how many scheduled failures fired
        mid-apply.
        """
        return self._apply(
            M, config, max_block_k, adjoint=False, out=out,
            deterministic=deterministic,
        )

    def rmatmat(
        self,
        D: np.ndarray,
        config: Union[str, PrecisionConfig] = "ddddd",
        max_block_k: Optional[int] = None,
        out: Optional[np.ndarray] = None,
        deterministic: bool = False,
    ) -> np.ndarray:
        """``M = F* D`` with transparent rank-failure recovery."""
        return self._apply(
            D, config, max_block_k, adjoint=True, out=out,
            deterministic=deterministic,
        )

    def matvec(
        self, m: np.ndarray, config: Union[str, PrecisionConfig] = "ddddd"
    ) -> np.ndarray:
        """Single-vector forward apply (width-1 blocked path)."""
        m2 = np.asarray(m, dtype=np.float64)
        return self.matmat(m2.reshape(self.nt, self.nm, 1), config=config)[..., 0]

    def rmatvec(
        self, d: np.ndarray, config: Union[str, PrecisionConfig] = "ddddd"
    ) -> np.ndarray:
        """Single-vector adjoint apply (width-1 blocked path)."""
        d2 = np.asarray(d, dtype=np.float64)
        return self.rmatmat(d2.reshape(self.nt, self.nd, 1), config=config)[..., 0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ElasticEngine({self.grid.pr}x{self.grid.pc}, "
            f"reduction={self.reduction!r}, failures={self.report.failures})"
        )
