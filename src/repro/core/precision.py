"""The 5-phase mixed-precision configuration (``-prec xxxxx``).

Each of the five matvec phases — (1) broadcast+pad, (2) FFT,
(3) SBGEMV, (4) IFFT, (5) unpad+reduce — computes in single or double
precision, giving 32 configurations.  The original executable takes them
as strings like ``-prec dssdd``; this module parses/formats those and
provides the configuration lattice used by the Pareto analysis.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Tuple, Union

from repro.util.dtypes import Precision, lowest
from repro.util.validation import ReproError

__all__ = ["PHASE_NAMES", "PrecisionConfig"]

PHASE_NAMES: Tuple[str, ...] = ("pad", "fft", "sbgemv", "ifft", "unpad")


@dataclass(frozen=True)
class PrecisionConfig:
    """Per-phase compute precisions of one matvec configuration."""

    pad: Precision
    fft: Precision
    sbgemv: Precision
    ifft: Precision
    unpad: Precision

    # -- constructors -------------------------------------------------------
    @classmethod
    def parse(cls, spec: Union[str, "PrecisionConfig"]) -> "PrecisionConfig":
        """Parse a 5-character string of ``d``/``s`` (e.g. ``"dssdd"``)."""
        if isinstance(spec, PrecisionConfig):
            return spec
        s = str(spec).strip().lower()
        if len(s) != len(PHASE_NAMES):
            raise ReproError(
                f"precision config must have {len(PHASE_NAMES)} characters "
                f"(phases {PHASE_NAMES}), got {spec!r}"
            )
        try:
            return cls(*(Precision.parse(c) for c in s))
        except ValueError as exc:
            raise ReproError(f"invalid precision config {spec!r}: {exc}") from exc

    @classmethod
    def all_double(cls) -> "PrecisionConfig":
        """The baseline configuration, ``"ddddd"``."""
        return cls.parse("ddddd")

    @classmethod
    def all_single(cls) -> "PrecisionConfig":
        return cls.parse("sssss")

    @classmethod
    def all_configs(cls) -> Iterator["PrecisionConfig"]:
        """All 32 configurations, in lexicographic d<s order of the string."""
        for chars in itertools.product("ds", repeat=len(PHASE_NAMES)):
            yield cls.parse("".join(chars))

    # -- accessors -----------------------------------------------------------
    @property
    def phases(self) -> Tuple[Precision, ...]:
        return (self.pad, self.fft, self.sbgemv, self.ifft, self.unpad)

    def phase(self, name: str) -> Precision:
        """Precision of one named phase ('pad', 'fft', ...)."""
        if name not in PHASE_NAMES:
            raise ReproError(f"unknown phase {name!r}; phases are {PHASE_NAMES}")
        return getattr(self, name)

    def __str__(self) -> str:
        return "".join(p.char for p in self.phases)

    @property
    def is_all_double(self) -> bool:
        return all(p is Precision.DOUBLE for p in self.phases)

    @property
    def n_single(self) -> int:
        """Number of single-precision phases (a crude 'aggressiveness')."""
        return sum(p is Precision.SINGLE for p in self.phases)

    # -- derived precisions ------------------------------------------------------
    def reorder_precision(self, before: str, after: str) -> Precision:
        """Precision of a pure memory reorder between two phases.

        Paper footnote 8: intermediate reorderings are "always computed in
        the lowest possible precision given the compute precisions of the
        major phases adjacent to them".
        """
        return lowest(self.phase(before), self.phase(after))

    def adjoint_view(self) -> "PrecisionConfig":
        """The same physical configuration read in the F* direction.

        The adjoint matvec traverses the phases with input/output swapped:
        its Phase 1 pads the *data* vector and its Phase 4 IFFT produces
        the *parameter* vector.  The configuration string indexes the
        algorithmic phases (pad, fft, sbgemv, ifft, unpad) in execution
        order for either direction, so no permutation is needed; this
        helper exists to make that explicit at call sites.
        """
        return self
