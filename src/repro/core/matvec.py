"""The FFTMatvec engine: five-phase F / F* matvecs on one (simulated) GPU.

Algorithm (paper Section 2.4) for ``d = F m``:

1. **pad** — broadcast (trivial on one GPU) and zero-pad the input into
   the circulant embedding, converting to space-outer layout;
2. **fft** — batched real-to-complex FFT of every spatial point's time
   series (length ``2*Nt``, giving ``Nt+1`` frequencies);
3. **sbgemv** — per-frequency block-diagonal matvec
   ``d_hat[k] = F_hat[k] @ m_hat[k]`` as one strided-batched GEMV
   (batch ``Nt+1``), via the rocBLAS dispatcher;
4. **ifft** — batched complex-to-real inverse FFT of the outputs;
5. **unpad** — drop the padding, reduce across the process grid (a
   no-op here; see :mod:`repro.core.parallel`), return to time-outer
   layout.

``F* d`` runs the same pipeline with the conjugate-transpose SBGEMV and
input/output roles swapped.  Every phase computes in the precision its
:class:`~repro.core.precision.PrecisionConfig` assigns; casts are fused
into the adjacent memory operations; inputs and outputs are always
double precision (Section 3.2).  The spectrum ``F_hat`` is precomputed
in double precision at setup, with the ``1/(2*Nt)`` inverse-transform
normalization folded in.

**Blocked multi-RHS path** (:meth:`FFTMatvec.matmat` /
:meth:`FFTMatvec.rmatmat`): ``k`` right-hand sides flow through *one*
pipeline pass — one pad kernel, one batched FFT with batch ``k * space``,
a per-frequency strided-batched **GEMM** (``F_hat[f] @ M_hat[f]`` with
``M_hat[f]`` an ``(Nm, k)`` panel) via the same dispatcher, one inverse
FFT and one unpad.  The spectrum — the dominant Phase-3 traffic — is
read once instead of ``k`` times, and the per-call launch/plan overhead
of the other phases is paid once, which is where block solvers,
posterior sampling and OED sweeps get their speedup.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from repro.backend import Backend, host_empty, resolve_backend
from repro.blas.dispatch import SBGEMVDispatcher
from repro.blas.types import Operation
from repro.core.phases import pad_to_soti, unpad_from_soti
from repro.core.precision import PrecisionConfig
from repro.core.reorder import soti_to_tosi, tosi_to_soti
from repro.core.toeplitz import BlockTriangularToeplitz
from repro.fft.plan import FFTPlan, FFTType
from repro.gpu.device import SimulatedDevice
from repro.util import checksum as _chk
from repro.util.blocking import check_block, check_out_buffer
from repro.util.dtypes import Precision, cast_to, complex_dtype, real_dtype
from repro.util.timing import TimingReport
from repro.util.validation import ReproError
from repro.util.workspace import Workspace

__all__ = ["FFTMatvec"]

_PHASES = ("pad", "fft", "sbgemv", "ifft", "unpad")

_VALIDATE_MODES = ("guard", "abft")


def _parse_validate(validate) -> frozenset:
    """Parse a ``validate=`` spec into its mode set.

    ``None``/``False``/``""`` mean no checks; a string is a
    ``"+"``-separated combination of ``"guard"`` (NaN/Inf at every
    five-phase boundary) and ``"abft"`` (checksum/energy verification of
    the compute phases).  ``True`` enables everything.
    """
    if validate is None or validate is False or validate == "":
        return frozenset()
    if validate is True:
        return frozenset(_VALIDATE_MODES)
    modes = frozenset(t for t in str(validate).split("+") if t)
    bad = modes - set(_VALIDATE_MODES)
    if bad:
        raise ReproError(
            f"unknown validate mode(s) {sorted(bad)}; pick from "
            f"{list(_VALIDATE_MODES)} joined with '+'"
        )
    return modes


class FFTMatvec:
    """FFT-based matvec engine for a block lower-triangular Toeplitz matrix.

    Parameters
    ----------
    matrix:
        A :class:`BlockTriangularToeplitz` or a raw ``(Nt, Nd, Nm)``
        kernel-block array.
    device:
        Optional :class:`SimulatedDevice`; when given, every phase
        charges modeled time to the device clock and ``last_timing``
        holds the per-phase breakdown of the most recent call.
    use_optimized_sbgemv:
        When False, the dispatcher is bypassed and the original rocBLAS
        kernel handles the (conjugate) transpose SBGEMV too — the
        pre-optimization behaviour used in ablation benches.
    workspace:
        ``True`` builds a private :class:`Workspace` arena (registered
        with the device allocator when a device is attached), a
        :class:`Workspace` instance is used as given, ``None``/``False``
        keeps the allocate-per-call reference path.  With an arena every
        phase of the pipeline writes into persistent checked-out
        buffers — numerics are bitwise-identical either way; only the
        allocation behaviour changes.
    backend:
        Array backend for the hot path: a :class:`Backend` instance, a
        name (``"numpy"``/``"cupy"``/``"torch"``, explicit mode — raises
        when unavailable), or ``None`` to follow ``REPRO_BACKEND``
        (default ``auto``: cupy → torch → numpy).  Inputs and outputs
        stay host float64 on every backend.
    reduction:
        ``"fast"`` (default) lets Phase 3 accumulate in whatever order
        the selected BLAS kernel's tiling produces.  ``"pairwise"``
        pins the fixed binary-tree order of :mod:`repro.util.pairwise`
        instead: vector and blocked applies become bitwise-identical at
        any block width (``matvec`` routes through the width-1 blocked
        pipeline), and on the grid engine any contraction-axis
        partition — including width-1 parts — reproduces the same bits.
        Costs the modeled determinism tax of
        :class:`~repro.blas.gemm_kernels.PairwiseSBGEMM`.
    validate:
        SDC defense checks, off by default.  ``"guard"`` runs the
        NaN/Inf numerical-health guard at every five-phase boundary
        (raising :class:`~repro.util.checksum.NumericalHealthError`);
        ``"abft"`` verifies each compute phase algebraically — Parseval
        energy checks after the FFT/IFFT, Huang–Abraham column checksums
        after the SBGEMM panel — raising
        :class:`~repro.util.checksum.SilentCorruption` on mismatch.
        Combine with ``"guard+abft"`` (or ``True``).  Installing a
        :class:`~repro.comm.fault.CorruptionSchedule` implies the
        ``abft`` checks, so every injected flip has a detector armed.
    """

    def __init__(
        self,
        matrix: Union[BlockTriangularToeplitz, np.ndarray],
        device: Optional[SimulatedDevice] = None,
        use_optimized_sbgemv: bool = True,
        workspace: Union[None, bool, Workspace] = None,
        backend: Union[None, str, Backend] = None,
        reduction: str = "fast",
        validate: Union[None, bool, str] = None,
    ) -> None:
        if reduction not in ("fast", "pairwise"):
            raise ReproError(
                f"reduction must be 'fast' or 'pairwise', got {reduction!r}"
            )
        self.reduction = reduction
        self.validate_modes = _parse_validate(validate)
        self.rank_label: Optional[int] = None  # grid rank, set by the owner
        self._corruption = None  # CorruptionSchedule, armed via install_*
        self.sdc_checks = 0  # abft/energy verifications that passed
        self.matrix = (
            matrix
            if isinstance(matrix, BlockTriangularToeplitz)
            else BlockTriangularToeplitz(np.asarray(matrix))
        )
        self.backend = resolve_backend(backend)
        self.device = device
        self.use_optimized_sbgemv = use_optimized_sbgemv
        self.nt = self.matrix.nt
        self.nd = self.matrix.nd
        self.nm = self.matrix.nm
        self.n_pad = 2 * self.nt
        self.n_freq = self.nt + 1

        spec = device.spec if device is not None else None
        self.dispatcher = SBGEMVDispatcher(spec) if spec is not None else None

        # Setup: F_hat in double precision (one-time, not perf-critical),
        # with the 1/(2*Nt) inverse normalization folded in.  The host
        # double copy is authoritative; per-precision backend copies are
        # cached lazily in spectrum().
        self._fhat_host = self._setup_spectrum()
        self._fhat: Dict[Precision, Any] = {}
        self.setup_time = (
            self.device.clock.phase_total("setup") if self.device is not None else 0.0
        )

        self._plans: "OrderedDict[Tuple[str, Precision, int], FFTPlan]" = (
            OrderedDict()
        )
        self.plan_evictions = 0  # plans dropped by the LRU bound
        self.last_timing: Optional[TimingReport] = None
        self.matvec_count = 0
        self.matmat_count = 0
        self.cast_noop_count = 0  # inter-phase casts skipped (equal precisions)
        self._ref_cache: Dict[Tuple[bool, Tuple[int, ...], bytes], np.ndarray] = {}
        self._fhat_conj: Dict[Precision, Any] = {}
        if workspace is True:
            workspace = Workspace(
                allocator=device.allocator if device is not None else None,
                name="fftmatvec",
                backend=self.backend,
            )
        elif workspace is False:
            workspace = None
        elif workspace is not None and workspace.backend.name != self.backend.name:
            raise ReproError(
                f"workspace backend {workspace.backend.name!r} does not match "
                f"engine backend {self.backend.name!r}"
            )
        self.workspace: Optional[Workspace] = workspace

    # -- setup -----------------------------------------------------------------
    def _setup_spectrum(self) -> np.ndarray:
        """Precompute F_hat (always double precision, Section 3.2).

        Follows the real code's data flow: the kernel blocks arrive
        lag-major ``(Nt, Nd, Nm)``; the batched FFT wants lag-contiguous
        ``(Nd, Nm, 2*Nt)``, and the strided-batched GEMV wants
        frequency-major ``(Nt+1, Nd, Nm)`` — two 3-D permutations around
        the FFT.  These are the permutations cuTENSOR performed in the
        original CUDA code and the custom kernel performs after
        hipification (see :mod:`repro.blas.permute`).
        """
        import contextlib

        from repro.blas.permute import permute3d

        ctx = (
            self.device.clock.phase("setup")
            if self.device is not None
            else contextlib.nullcontext()
        )
        with ctx:
            return self._setup_spectrum_inner(permute3d)

    def _setup_spectrum_inner(self, permute3d) -> np.ndarray:
        padded = self.matrix.padded_kernel()  # (2*Nt, Nd, Nm), lag-major
        # (2Nt, Nd, Nm) -> (Nd, Nm, 2Nt): lags contiguous for the FFT.
        lag_inner = permute3d(padded, (1, 2, 0), device=self.device, phase="setup")
        plan = FFTPlan(
            n=self.n_pad,
            batch=self.nd * self.nm,
            fft_type=FFTType.D2Z,
            device=self.device,
        )
        spec = plan.execute(
            lag_inner.reshape(self.nd * self.nm, self.n_pad), phase="setup"
        ).reshape(self.nd, self.nm, self.n_freq)
        # (Nd, Nm, Nt+1) -> (Nt+1, Nd, Nm): frequency-major for SBGEMV.
        freq_major = permute3d(spec, (2, 0, 1), device=self.device, phase="setup")
        scale = 1.0 / float(self.n_pad)  # fold in the IFFT normalization
        return (freq_major * scale).astype(np.complex128)

    def _fhat_double_for_tests(self) -> np.ndarray:
        """The double-precision host spectrum (test hook)."""
        return self._fhat_host

    # -- cached resources ----------------------------------------------------
    def spectrum(self, precision: Precision) -> Any:
        """F_hat at the requested precision on the engine backend
        (single copy cached lazily; identity for numpy double)."""
        precision = Precision.parse(precision)
        if precision not in self._fhat:
            self._fhat[precision] = self.backend.asarray(
                cast_to(self._fhat_host, precision)
            )
        return self._fhat[precision]

    def spectrum_conj(self, precision: Precision) -> Any:
        """The conjugated spectrum at the requested precision, cached.

        The adjoint GEMM applies the conjugated spectrum on every
        iteration; caching the exact bytes a fresh conjugation would
        produce keeps repeated adjoint applies from re-materializing the
        largest array on the hot path, with bitwise-unchanged results.
        """
        precision = Precision.parse(precision)
        if precision not in self._fhat_conj:
            self._fhat_conj[precision] = self.backend.conjugate(
                self.spectrum(precision)
            )
        return self._fhat_conj[precision]

    # Bound on the (kind, precision, batch)-keyed FFT-plan cache.  Under
    # serving load the batch dimension varies with every coalesced block
    # width, so an unbounded dict would grow one plan per (k, precision)
    # ever seen; least-recently-used plans are dropped past this size
    # (per instance — override the attribute to tune).
    plan_cache_size = 32

    def _plan(self, kind: str, precision: Precision, batch: int) -> FFTPlan:
        key = (kind, precision, batch)
        plan = self._plans.get(key)
        if plan is not None:
            self._plans.move_to_end(key)
            return plan
        if kind == "fwd":
            t = FFTType.real_forward(precision)
        else:
            t = FFTType.real_inverse(precision)
        plan = FFTPlan(
            n=self.n_pad,
            batch=batch,
            fft_type=t,
            device=self.device,
            backend=self.backend,
        )
        self._plans[key] = plan
        limit = max(1, int(self.plan_cache_size))
        while len(self._plans) > limit:
            self._plans.popitem(last=False)
            self.plan_evictions += 1
        return plan

    def geometry_key(
        self, config: Union[None, str, PrecisionConfig] = None
    ) -> Tuple:
        """Stable, hashable fingerprint of this engine's geometry.

        Two engines with equal keys run the same five-phase shapes:
        problem extents, padded/frequency lengths, backend name and the
        simulated device (None without one).  ``config`` folds a
        precision configuration into the key for callers that cache per
        config.  The serving layer's coalescer and
        :class:`~repro.serve.cache.EngineCache` group requests by this
        key (plus the kernel-content digest — geometry says nothing
        about the Toeplitz blocks' values).

        The reduction mode is part of the key: a fast-mode and a
        pairwise-mode engine produce different bits for the same
        operator, so the serving layer must never coalesce their
        requests or share a cached engine between them.
        """
        return (
            "FFTMatvec",
            self.nt,
            self.nd,
            self.nm,
            self.n_pad,
            self.n_freq,
            self.backend.name,
            self.device.spec.name if self.device is not None else None,
            self.reduction,
            str(PrecisionConfig.parse(config)) if config is not None else None,
        )

    # -- phase wrappers ------------------------------------------------------
    def _phase_ctx(self, name: str):
        if self.device is not None:
            return self.device.clock.phase(name)
        import contextlib

        return contextlib.nullcontext()

    def _run_sbgemv(
        self, mhat: Any, operation: Operation, precision: Precision
    ) -> Any:
        be = self.backend
        fhat = self.spectrum(precision)
        out = x_conj = None
        if self.workspace is not None:
            out_len = fhat.shape[1] if operation is Operation.N else fhat.shape[2]
            out = self.workspace.checkout(
                "sbgemv_out", (fhat.shape[0], out_len), be.dtype_of(fhat)
            )
            if operation is Operation.C:
                # Stage the adjoint's conj(x) in the arena — bitwise the
                # bytes a fresh conjugation would produce, no per-apply
                # temporary.
                x_conj = self.workspace.checkout(
                    "sbgemv_conj_x", tuple(mhat.shape), be.dtype_of(mhat)
                )
                be.conjugate(mhat, out=x_conj)
        if self.dispatcher is not None:
            if self.use_optimized_sbgemv:
                return self.dispatcher.gemv_strided_batched(
                    fhat,
                    mhat,
                    operation,
                    device=self.device,
                    phase="sbgemv",
                    out=out,
                    x_conj=x_conj,
                    backend=be,
                )
            # Ablation: force the original kernel through the same path.
            from repro.blas.gemv_kernels import RocblasSBGEMV
            from repro.blas.types import BlasDatatype, GemvProblem

            problem = GemvProblem(
                m=self.nd,
                n=self.nm,
                batch=self.n_freq,
                datatype=BlasDatatype.from_dtype(be.dtype_of(fhat)),
                operation=operation,
            )
            return RocblasSBGEMV().run(
                fhat,
                mhat,
                problem,
                device=self.device,
                phase="sbgemv",
                out=out,
                x_conj=x_conj,
                backend=be,
            )
        from repro.blas.gemv_kernels import gemv_strided_batched_reference

        return gemv_strided_batched_reference(
            fhat, mhat, operation, out=out, x_conj=x_conj, backend=be
        )

    def _run_sbgemm(
        self, mhat: Any, operation: Operation, precision: Precision
    ) -> Any:
        """Blocked Phase 3: per-frequency GEMM on a (n_freq, nx, k) panel.

        Honors the engine's ``reduction`` mode: pairwise engines route
        through the fixed-tree kernel at every entry point (including
        the ``k == 1`` panel the GEMV degeneration would otherwise
        claim), so one accumulation order serves the whole engine.
        """
        be = self.backend
        fhat = self.spectrum(precision)
        # The conjugated spectrum is cached for the adjoint (op C): the
        # bytes match a fresh conjugation, so results are bitwise-unchanged.
        a_conj = self.spectrum_conj(precision) if operation is Operation.C else None
        out = None
        if self.workspace is not None:
            out_rows = fhat.shape[1] if operation is Operation.N else fhat.shape[2]
            out = self.workspace.checkout(
                "sbgemm_out",
                (fhat.shape[0], out_rows, mhat.shape[2]),
                be.dtype_of(fhat),
            )
        if self.dispatcher is not None:
            if self.use_optimized_sbgemv:
                return self.dispatcher.gemm_strided_batched(
                    fhat,
                    mhat,
                    operation,
                    device=self.device,
                    phase="sbgemv",
                    out=out,
                    a_conj=a_conj,
                    backend=be,
                    reduction=self.reduction,
                )
            # Ablation: force the vendor GEMM, mirroring the GEMV ablation
            # (wrapped in the fixed-tree order when the engine pins one).
            from repro.blas.gemm_kernels import PairwiseSBGEMM
            from repro.blas.types import BlasDatatype, GemmProblem

            problem = GemmProblem(
                m=self.nd,
                n=self.nm,
                k=mhat.shape[2],
                batch=self.n_freq,
                datatype=BlasDatatype.from_dtype(be.dtype_of(fhat)),
                operation=operation,
            )
            kernel = self.dispatcher.rocblas_gemm
            if self.reduction == "pairwise":
                kernel = PairwiseSBGEMM(kernel)
            return kernel.run(
                fhat,
                mhat,
                problem,
                device=self.device,
                phase="sbgemv",
                out=out,
                a_conj=a_conj,
                backend=be,
            )
        if self.reduction == "pairwise":
            from repro.blas.gemm_kernels import (
                pairwise_gemm_strided_batched_reference,
            )

            return pairwise_gemm_strided_batched_reference(
                fhat, mhat, operation, out=out, a_conj=a_conj, backend=be
            )
        from repro.blas.gemm_kernels import gemm_strided_batched_reference

        return gemm_strided_batched_reference(
            fhat, mhat, operation, out=out, a_conj=a_conj, backend=be
        )

    def _run_sbgemm_pairwise_segments(
        self,
        panel: Any,
        operation: Operation,
        precision: Precision,
        start: int,
        n_global: int,
    ) -> Dict[Tuple[int, int], Any]:
        """Phase 3 for a grid rank in pairwise mode: canonical segments.

        Instead of this rank's full local contraction (whose grouping
        would depend on the local width), compute the partial panel of
        every canonical tree segment of the rank's global range
        ``[start, start + nx)`` within an axis of length ``n_global``.
        The grid engine merges all ranks' segments in frequency domain
        (:func:`repro.comm.collectives.fixed_tree_reduce_segments`), so
        the full contraction is one fixed tree regardless of partition.
        Charges the local pairwise kernel's modeled launch.
        """
        from repro.blas.gemm_kernels import pairwise_segment_values

        be = self.backend
        fhat = self.spectrum(precision)
        a_conj = self.spectrum_conj(precision) if operation is Operation.C else None
        values = pairwise_segment_values(
            fhat, panel, operation, start, n_global, a_conj=a_conj, backend=be
        )
        if self.dispatcher is not None and self.device is not None:
            from repro.blas.types import BlasDatatype, GemmProblem

            problem = GemmProblem(
                m=self.nd,
                n=self.nm,
                k=panel.shape[2],
                batch=self.n_freq,
                datatype=BlasDatatype.from_dtype(be.dtype_of(fhat)),
                operation=operation,
            )
            kernel = self.dispatcher.select_gemm(problem, reduction="pairwise")
            self.dispatcher.dispatch_counts[kernel.name] += 1
            kernel.charge_launch(problem, self.device, phase="sbgemv")
        return values

    def _run_sbgemv_panel(
        self, mhat: Any, operation: Operation, precision: Precision
    ) -> Any:
        """Deterministic blocked Phase 3: k per-frequency GEMVs on a panel.

        ``mhat`` is the ``(n_freq, nx, k)`` panel :meth:`_run_sbgemm`
        would consume; column ``j`` of the result carries **bitwise** the
        bytes :meth:`_run_sbgemv` produces for column ``j`` alone.  The
        blocked GEMM does not have that property — its accumulation
        order over the shared ``nx`` contraction differs from the GEMV's
        — so serving-layer coalescing, which promises results identical
        to sequential applies, routes through this method instead.

        On the numpy backend without a device the k GEMVs run as one
        broadcast-batched matmul over strided per-column views (no
        copies, ~2.5-6x faster than looping Python-side).  With a
        dispatcher attached (or a non-numpy backend) the columns loop
        through :meth:`_run_sbgemv` so the modeled device time honestly
        charges k GEMV launches — the price of determinism the docs
        advertise.
        """
        be = self.backend
        nf, nx, k = mhat.shape
        ny = self.nd if operation is Operation.N else self.nm
        out = None
        if self.workspace is not None:
            out = self.workspace.checkout(
                "det_sbgemv_out", (nf, ny, k), be.dtype_of(mhat)
            )
        if self.dispatcher is not None or be.name != "numpy":
            if out is None:
                out = be.empty((nf, ny, k), be.dtype_of(mhat))
            for j in range(k):
                out[:, :, j] = self._run_sbgemv(mhat[:, :, j], operation, precision)
            return out
        if out is None:
            out = be.empty((nf, ny, k), be.dtype_of(mhat))
        fhat = self.spectrum(precision)
        cols = np.moveaxis(mhat, 2, 0)  # (k, nf, nx) strided view
        out_v = np.moveaxis(out, 2, 0)  # (k, nf, ny) strided view
        if operation is Operation.N:
            # One GEMV per (column, frequency): (1,nf,ny,nx) @ (k,nf,nx,1).
            be.matmul(fhat[None], cols[..., None], out=out_v[..., None])
            return out
        # Adjoint GEMV per column: conj(conj(x)^T A), conjugated in
        # place after the write.  The contraction runs as matrix-vector
        # against the transposed spectrum *view* — same strided gufunc
        # accumulation as the row-vector form (bitwise-identical, the
        # coalescing tests assert it), but measurably faster; a
        # contiguous copy of the transpose would flip numpy into a BLAS
        # path with a different summation order and break the identity.
        if self.workspace is not None:
            x_conj = self.workspace.checkout(
                "det_sbgemv_conj_x", (k, nf, nx), be.dtype_of(mhat)
            )
            be.conjugate(cols, out=x_conj)
        else:
            x_conj = be.conjugate(cols)
        fhat_t = be.transpose(fhat, (0, 2, 1))
        be.matmul(fhat_t[None], x_conj[..., None], out=out_v[..., None])
        be.conjugate(out, out=out)
        return out

    # -- SDC defense: injection sites and algebraic checks ---------------------
    def install_corruption_schedule(
        self, schedule, rank: Optional[int] = None
    ) -> None:
        """Arm (or disarm, with ``None``) seeded device-buffer corruption.

        The schedule's shared event counter advances at this engine's
        FFT / SBGEMM / IFFT stages; when an event index is scheduled,
        the freshly computed stage buffer gets one bit flipped — and the
        abft checks (implied by an armed schedule) are expected to catch
        it immediately after.  ``rank`` labels this engine's position in
        a grid for error messages.
        """
        self._corruption = schedule
        if rank is not None:
            self.rank_label = int(rank)

    @property
    def _abft_on(self) -> bool:
        return "abft" in self.validate_modes or self._corruption is not None

    @property
    def _guard_on(self) -> bool:
        return "guard" in self.validate_modes

    def _corruption_where(self) -> str:
        return (
            "engine" if self.rank_label is None else f"engine_rank{self.rank_label}"
        )

    def _maybe_corrupt(self, buf: Any, stage: str) -> None:
        """Device-site injection: flip one bit of a freshly computed buffer
        if the armed schedule fires at this event."""
        sched = self._corruption
        if sched is None:
            return
        if sched.on_event(stage, self._corruption_where()) is None:
            return
        arr = np.asarray(buf)
        floats = int(arr.size) * (2 if arr.dtype.kind == "c" else 1)
        _chk.flip_bit(arr, sched.element_index(max(1, floats)), bit=sched.bit)

    def _maybe_corrupt_table(self, values: Dict, stage: str) -> None:
        """Injection site for the pairwise path's segment table."""
        sched = self._corruption
        if sched is None:
            return
        if sched.on_event(stage, self._corruption_where()) is None:
            return
        _chk.flip_table_bit(values, sched.element_index(1 << 30), bit=sched.bit)

    def _guard_check(self, arr: Any, phase: str) -> None:
        if self._guard_on:
            _chk.ensure_finite(
                self.backend.from_device(arr), phase=phase, rank=self.rank_label
            )

    def _check_forward_energy(self, x: Any, xhat: Any, plan: FFTPlan) -> None:
        if self._abft_on:
            plan.verify_forward_energy(x, xhat, phase="fft", rank=self.rank_label)
            self.sdc_checks += 1

    def _check_inverse_energy(self, xhat: Any, y: Any, plan: FFTPlan) -> None:
        if self._abft_on:
            plan.verify_inverse_energy(xhat, y, phase="ifft", rank=self.rank_label)
            self.sdc_checks += 1

    def _check_gemm(
        self, panel: Any, result: Any, operation: Operation, precision: Precision
    ) -> None:
        """ABFT column-checksum verification of a Phase-3 panel."""
        if not self._abft_on:
            return
        from repro.blas.gemm_kernels import gemm_checksum_verify

        a_conj = (
            self.spectrum_conj(precision) if operation is Operation.C else None
        )
        gemm_checksum_verify(
            self.spectrum(precision),
            panel,
            operation,
            result,
            a_conj=a_conj,
            backend=self.backend,
            phase="sbgemv",
            rank=self.rank_label,
        )
        self.sdc_checks += 1

    def _check_gemm_segments(
        self,
        panel: Any,
        values: Dict[Tuple[int, int], Any],
        operation: Operation,
        precision: Precision,
    ) -> None:
        """ABFT verification of a rank's canonical-segment partials.

        The segments tile the rank's whole contraction range, so their
        elementwise total must satisfy the same column-checksum identity
        as the undivided local GEMM — one check covers every segment.
        """
        if not self._abft_on:
            return
        from repro.blas.gemm_kernels import gemm_checksum_verify

        total = None
        for key in sorted(values.keys()):
            v = values[key]
            total = v if total is None else total + v
        a_conj = (
            self.spectrum_conj(precision) if operation is Operation.C else None
        )
        gemm_checksum_verify(
            self.spectrum(precision),
            panel,
            operation,
            total,
            a_conj=a_conj,
            backend=self.backend,
            phase="sbgemv",
            rank=self.rank_label,
            context="pairwise segments",
        )
        self.sdc_checks += 1

    # -- the five-phase pipeline -----------------------------------------------
    def _maybe_cast(self, arr: Any, prec: Precision, tag: str) -> Any:
        """Inter-phase cast with the no-op made explicit (and counted).

        Adjacent phases at equal precision skip the cast entirely —
        ``cast_noop_count`` advances instead of a call that relies on
        ``copy=False`` doing nothing.  An actual cast writes into an
        arena buffer when the workspace is active.
        """
        be = self.backend
        target = complex_dtype(prec) if be.iscomplex(arr) else real_dtype(prec)
        if be.dtype_of(arr) == target:
            self.cast_noop_count += 1
            return arr
        if self.workspace is None:
            return be.astype(arr, target, copy=True)
        buf = self.workspace.checkout(tag, tuple(arr.shape), target)
        buf[...] = arr
        return buf

    def _finalize(
        self, res: Any, out: Optional[np.ndarray], detach: bool = True
    ) -> Any:
        """Return the pipeline result as float64.

        ``res`` is the unpad output (possibly an arena buffer, possibly
        already ``out`` itself).  Without a workspace and without ``out``
        this is the historical ``astype(float64, copy=False)``; with a
        workspace the result is *detached* from the arena (copied) so the
        caller can hold it across subsequent applies.  ``detach=False``
        skips that copy for internal callers (the grid engine) that
        consume the result before the next apply on this engine; on a
        device backend the undetached result stays a backend array.

        Caller-facing results (``out`` given, or detached) are always
        host float64, whatever the compute backend.
        """
        be = self.backend
        if out is None:
            if self.workspace is None and not detach:
                return be.astype(res, np.float64, copy=False)
            if self.workspace is None:
                return be.from_device(be.astype(res, np.float64, copy=False))
            if not detach:
                if be.dtype_of(res) == np.float64:
                    return res
                buf = self.workspace.checkout("final64", tuple(res.shape), np.float64)
                buf[...] = res
                return buf
            host = host_empty(tuple(res.shape), np.float64)
            host[...] = be.from_device(res)
            return host
        if be.name == "numpy":
            if res is out or np.shares_memory(res, out):
                return out  # unpad already wrote the caller's buffer
            out[...] = res.reshape(out.shape)
            return out
        out[...] = be.from_device(res).reshape(out.shape)
        return out

    def _unpad_dest(
        self, config: PrecisionConfig, out: Optional[np.ndarray], shape2d
    ) -> Optional[np.ndarray]:
        """Caller ``out`` reshaped as the unpad destination, when the
        unpad precision already produces float64 (no staging needed).

        Only the numpy backend can write the host buffer directly; a
        device backend unpads on device and transfers in _finalize.
        """
        if self.backend.name != "numpy":
            return None
        if out is None or real_dtype(config.unpad) != np.float64:
            return None
        if not out.flags["C_CONTIGUOUS"]:
            return None
        return out.reshape(shape2d)

    def _pipeline(
        self,
        v_in: np.ndarray,
        config: PrecisionConfig,
        adjoint: bool,
        out: Optional[np.ndarray] = None,
        detach: bool = True,
    ) -> np.ndarray:
        """Shared forward/adjoint pipeline.

        Forward: v_in is (Nt, Nm); output (Nt, Nd); SBGEMV op = N.
        Adjoint: v_in is (Nt, Nd); output (Nt, Nm); SBGEMV op = C.
        ``out`` (float64, (Nt, ny)) receives the result in place;
        ``detach=False`` may return an arena buffer (internal callers
        only — it is overwritten by this engine's next apply).
        """
        ws = self.workspace
        if ws is None:
            return self._pipeline_inner(v_in, config, adjoint, out, detach)
        # Apply boundary: cursors reset, and a second apply interleaving
        # on this arena raises instead of aliasing checkout slots.
        ws.begin_apply()
        try:
            return self._pipeline_inner(v_in, config, adjoint, out, detach)
        finally:
            ws.end_apply()

    def _pipeline_inner(
        self,
        v_in: np.ndarray,
        config: PrecisionConfig,
        adjoint: bool,
        out: Optional[np.ndarray],
        detach: bool,
    ) -> np.ndarray:
        """:meth:`_pipeline` body, inside the workspace apply scope."""
        operation = Operation.C if adjoint else Operation.N
        ws = self.workspace

        # Phase 1: broadcast (trivial single-device) + zero-pad, in the
        # phase's precision (cast fused into the pad kernel's writes).
        with self._phase_ctx("pad"):
            x = pad_to_soti(
                v_in,
                config.pad,
                device=self.device,
                phase="pad",
                workspace=ws,
                backend=self.backend,
                validate=self._guard_on,
                rank=self.rank_label,
            )

        # Phase 2: batched forward FFT in its precision.  The input cast
        # (if needed) fuses with the pad's writes in the real code; here
        # it is an explicit no-op when the precisions agree.
        with self._phase_ctx("fft"):
            x = self._maybe_cast(x, config.fft, "cast_fft")
            plan = self._plan("fwd", config.fft, batch=x.shape[0])
            xhat = plan.execute(x, phase="fft", workspace=ws)
            self._maybe_corrupt(xhat, "fft")
            self._check_forward_energy(x, xhat, plan)
            self._guard_check(xhat, "fft")

        # Reorder to frequency-outer layout at the lower adjacent
        # precision, then present to the SBGEMV at its precision.
        reorder_prec = config.reorder_precision("fft", "sbgemv")
        with self._phase_ctx("sbgemv"):
            vhat = soti_to_tosi(
                xhat,
                precision=reorder_prec,
                device=self.device,
                phase="sbgemv",
                workspace=ws,
                tag="fwd_reorder",
                backend=self.backend,
            )
            vhat = self._maybe_cast(vhat, config.sbgemv, "cast_sbgemv")
            if self.backend.dtype_of(vhat) != complex_dtype(config.sbgemv):
                raise ReproError("internal: SBGEMV input precision mismatch")
            yhat = self._run_sbgemv(vhat, operation, config.sbgemv)
            self._maybe_corrupt(yhat, "sbgemm")
            if self._abft_on:
                self._check_gemm(
                    vhat[:, :, None], yhat[:, :, None], operation, config.sbgemv
                )
            self._guard_check(yhat, "sbgemv")
            reorder_prec = config.reorder_precision("sbgemv", "ifft")
            yhat = tosi_to_soti(
                yhat,
                precision=reorder_prec,
                device=self.device,
                phase="sbgemv",
                workspace=ws,
                tag="bwd_reorder",
                backend=self.backend,
            )

        # Phase 4: batched inverse FFT.
        with self._phase_ctx("ifft"):
            yhat = self._maybe_cast(yhat, config.ifft, "cast_ifft")
            plan = self._plan("inv", config.ifft, batch=yhat.shape[0])
            y = plan.inverse(yhat, phase="ifft", workspace=ws)
            self._maybe_corrupt(y, "ifft")
            self._check_inverse_energy(yhat, y, plan)
            self._guard_check(y, "ifft")

        # Phase 5: unpad (+ reduction across the grid in the parallel
        # engine) in its precision, then return to double.  With an
        # arena and a double-precision unpad the kernel writes straight
        # into the caller's buffer.
        with self._phase_ctx("unpad"):
            dest = self._unpad_dest(config, out, (self.nt, y.shape[0]))
            res = unpad_from_soti(
                y,
                self.nt,
                config.unpad,
                device=self.device,
                phase="unpad",
                workspace=None if dest is not None else ws,
                out=dest,
                backend=self.backend,
                validate=self._guard_on,
                rank=self.rank_label,
            )
        return self._finalize(res, out, detach=detach)

    def _pipeline_block(
        self,
        v_in: np.ndarray,
        config: PrecisionConfig,
        adjoint: bool,
        out: Optional[np.ndarray] = None,
        detach: bool = True,
        deterministic: bool = False,
    ) -> np.ndarray:
        """Blocked pipeline: all ``k`` RHS in one pass per phase.

        Forward: v_in is (Nt, Nm, k); output (Nt, Nd, k); GEMM op = N.
        Adjoint: v_in is (Nt, Nd, k); output (Nt, Nm, k); GEMM op = C.
        ``out`` (float64, (Nt, ny, k)) receives the result in place;
        ``detach=False`` may return an arena buffer (internal callers
        only — it is overwritten by this engine's next apply).
        ``deterministic`` swaps the Phase-3 GEMM for the per-column
        batched GEMV (:meth:`_run_sbgemv_panel`), making every column
        bitwise what the vector pipeline returns for it.

        The k columns ride along as an extra inner dimension of the
        "space" axis: pad/FFT/reorder treat ``nx * k`` fused columns (the
        batched kernels are agnostic), and only Phase 3 unflattens them
        into per-frequency (nx, k) panels for the strided-batched GEMM.
        """
        ws = self.workspace
        if ws is None:
            return self._pipeline_block_inner(
                v_in, config, adjoint, out, detach, deterministic
            )
        ws.begin_apply()
        try:
            return self._pipeline_block_inner(
                v_in, config, adjoint, out, detach, deterministic
            )
        finally:
            ws.end_apply()

    def _pipeline_block_inner(
        self,
        v_in: np.ndarray,
        config: PrecisionConfig,
        adjoint: bool,
        out: Optional[np.ndarray],
        detach: bool,
        deterministic: bool,
    ) -> np.ndarray:
        """:meth:`_pipeline_block` body, inside the workspace apply scope."""
        operation = Operation.C if adjoint else Operation.N
        nt, nx, k = v_in.shape
        ny = self.nm if adjoint else self.nd
        ws = self.workspace

        # Phase 1: one pad kernel over all k vectors (batch = k * space).
        with self._phase_ctx("pad"):
            x = pad_to_soti(
                v_in.reshape(nt, nx * k),
                config.pad,
                device=self.device,
                phase="pad",
                workspace=ws,
                backend=self.backend,
                validate=self._guard_on,
                rank=self.rank_label,
            )

        # Phase 2: one batched forward FFT, batch = k * space.
        with self._phase_ctx("fft"):
            x = self._maybe_cast(x, config.fft, "cast_fft")
            plan = self._plan("fwd", config.fft, batch=x.shape[0])
            xhat = plan.execute(x, phase="fft", workspace=ws)
            self._maybe_corrupt(xhat, "fft")
            self._check_forward_energy(x, xhat, plan)
            self._guard_check(xhat, "fft")

        reorder_prec = config.reorder_precision("fft", "sbgemv")
        with self._phase_ctx("sbgemv"):
            vhat = soti_to_tosi(
                xhat,
                precision=reorder_prec,
                device=self.device,
                phase="sbgemv",
                workspace=ws,
                tag="fwd_reorder",
                backend=self.backend,
            )
            vhat = self._maybe_cast(vhat, config.sbgemv, "cast_sbgemv")
            if self.backend.dtype_of(vhat) != complex_dtype(config.sbgemv):
                raise ReproError("internal: SBGEMM input precision mismatch")
            # Phase 3: per-frequency (nx, k) panels through one GEMM —
            # or k batched GEMVs when the caller needs every column
            # bitwise-equal to its sequential apply.
            panel = vhat.reshape(self.n_freq, nx, k)
            if deterministic:
                yhat = self._run_sbgemv_panel(panel, operation, config.sbgemv)
            else:
                yhat = self._run_sbgemm(panel, operation, config.sbgemv)
            self._maybe_corrupt(yhat, "sbgemm")
            self._check_gemm(panel, yhat, operation, config.sbgemv)
            self._guard_check(yhat, "sbgemv")
            reorder_prec = config.reorder_precision("sbgemv", "ifft")
            yhat = tosi_to_soti(
                yhat.reshape(self.n_freq, ny * k),
                precision=reorder_prec,
                device=self.device,
                phase="sbgemv",
                workspace=ws,
                tag="bwd_reorder",
                backend=self.backend,
            )

        # Phase 4: one batched inverse FFT, batch = k * space.
        with self._phase_ctx("ifft"):
            yhat = self._maybe_cast(yhat, config.ifft, "cast_ifft")
            plan = self._plan("inv", config.ifft, batch=yhat.shape[0])
            y = plan.inverse(yhat, phase="ifft", workspace=ws)
            self._maybe_corrupt(y, "ifft")
            self._check_inverse_energy(yhat, y, plan)
            self._guard_check(y, "ifft")

        # Phase 5: one unpad kernel over all k vectors.
        with self._phase_ctx("unpad"):
            dest = self._unpad_dest(config, out, (self.nt, y.shape[0]))
            res = unpad_from_soti(
                y,
                self.nt,
                config.unpad,
                device=self.device,
                phase="unpad",
                workspace=None if dest is not None else ws,
                out=dest,
                backend=self.backend,
                validate=self._guard_on,
                rank=self.rank_label,
            )
        return self._finalize(res.reshape(nt, ny, k), out, detach=detach)

    # -- grid pairwise split: front (phases 1-3) / finish (phases 4-5) ---------
    # The IFFT does not distribute over addition bitwise, so a
    # partition-invariant grid apply must reduce in *frequency domain*
    # (where the contraction lives) and run phases 4-5 exactly once per
    # output part.  Phases 1-2 are per-column batch-independent and the
    # spectrum slices are bitwise slices of the global spectrum
    # (per-(d,m) lag FFTs in _setup_spectrum), which is what makes a
    # rank's front bitwise-equal to the corresponding slice of a
    # single-device front.

    def _pipeline_block_pairwise_segments(
        self,
        v_in: np.ndarray,
        config: PrecisionConfig,
        adjoint: bool,
        start: int,
        n_global: int,
    ) -> Dict[Tuple[int, int], Any]:
        """Front half for one grid rank: pad, FFT, reorder, cast, then
        Phase-3 canonical-segment partials over the rank's global
        contraction range ``[start, start + nx)``.  Segment values are
        fresh arrays (not arena buffers), safe to hold across this
        engine's next apply.
        """
        ws = self.workspace
        if ws is None:
            return self._pairwise_segments_inner(
                v_in, config, adjoint, start, n_global
            )
        ws.begin_apply()
        try:
            return self._pairwise_segments_inner(
                v_in, config, adjoint, start, n_global
            )
        finally:
            ws.end_apply()

    def _pairwise_segments_inner(
        self,
        v_in: np.ndarray,
        config: PrecisionConfig,
        adjoint: bool,
        start: int,
        n_global: int,
    ) -> Dict[Tuple[int, int], Any]:
        operation = Operation.C if adjoint else Operation.N
        nt, nx, k = v_in.shape
        ws = self.workspace

        with self._phase_ctx("pad"):
            x = pad_to_soti(
                v_in.reshape(nt, nx * k),
                config.pad,
                device=self.device,
                phase="pad",
                workspace=ws,
                backend=self.backend,
                validate=self._guard_on,
                rank=self.rank_label,
            )
        with self._phase_ctx("fft"):
            x = self._maybe_cast(x, config.fft, "cast_fft")
            plan = self._plan("fwd", config.fft, batch=x.shape[0])
            xhat = plan.execute(x, phase="fft", workspace=ws)
            self._maybe_corrupt(xhat, "fft")
            self._check_forward_energy(x, xhat, plan)
            self._guard_check(xhat, "fft")
        reorder_prec = config.reorder_precision("fft", "sbgemv")
        with self._phase_ctx("sbgemv"):
            vhat = soti_to_tosi(
                xhat,
                precision=reorder_prec,
                device=self.device,
                phase="sbgemv",
                workspace=ws,
                tag="fwd_reorder",
                backend=self.backend,
            )
            vhat = self._maybe_cast(vhat, config.sbgemv, "cast_sbgemv")
            if self.backend.dtype_of(vhat) != complex_dtype(config.sbgemv):
                raise ReproError("internal: SBGEMM input precision mismatch")
            panel = vhat.reshape(self.n_freq, nx, k)
            values = self._run_sbgemm_pairwise_segments(
                panel, operation, config.sbgemv, start, n_global
            )
            self._maybe_corrupt_table(values, "sbgemm")
            self._check_gemm_segments(panel, values, operation, config.sbgemv)
            return values

    def _pipeline_block_finish(
        self,
        yhat: Any,
        config: PrecisionConfig,
        adjoint: bool,
        out: Optional[np.ndarray] = None,
        detach: bool = True,
    ) -> np.ndarray:
        """Back half: reorder/cast the merged ``(n_freq, ny, k)``
        frequency panel, inverse FFT, unpad, finalize.  Runs once per
        output part on its root rank's engine (``ny`` must match this
        engine's output extent)."""
        ws = self.workspace
        if ws is None:
            return self._pipeline_finish_inner(yhat, config, adjoint, out, detach)
        ws.begin_apply()
        try:
            return self._pipeline_finish_inner(yhat, config, adjoint, out, detach)
        finally:
            ws.end_apply()

    def _pipeline_finish_inner(
        self,
        yhat: Any,
        config: PrecisionConfig,
        adjoint: bool,
        out: Optional[np.ndarray],
        detach: bool,
    ) -> np.ndarray:
        ny = self.nm if adjoint else self.nd
        nf, ny_got, k = yhat.shape
        if (nf, ny_got) != (self.n_freq, ny):
            raise ReproError(
                f"finish panel must be ({self.n_freq}, {ny}, k), "
                f"got {tuple(yhat.shape)}"
            )
        ws = self.workspace
        with self._phase_ctx("sbgemv"):
            reorder_prec = config.reorder_precision("sbgemv", "ifft")
            yhat = tosi_to_soti(
                yhat.reshape(self.n_freq, ny * k),
                precision=reorder_prec,
                device=self.device,
                phase="sbgemv",
                workspace=ws,
                tag="bwd_reorder",
                backend=self.backend,
            )
        with self._phase_ctx("ifft"):
            yhat = self._maybe_cast(yhat, config.ifft, "cast_ifft")
            plan = self._plan("inv", config.ifft, batch=yhat.shape[0])
            y = plan.inverse(yhat, phase="ifft", workspace=ws)
            self._maybe_corrupt(y, "ifft")
            self._check_inverse_energy(yhat, y, plan)
            self._guard_check(y, "ifft")
        with self._phase_ctx("unpad"):
            dest = self._unpad_dest(config, out, (self.nt, y.shape[0]))
            res = unpad_from_soti(
                y,
                self.nt,
                config.unpad,
                device=self.device,
                phase="unpad",
                workspace=None if dest is not None else ws,
                out=dest,
                backend=self.backend,
                validate=self._guard_on,
                rank=self.rank_label,
            )
        return self._finalize(res.reshape(self.nt, ny, k), out, detach=detach)

    # -- public API ----------------------------------------------------------
    def _check_out(self, out: Optional[np.ndarray], shape: Tuple[int, ...]):
        """Validate a caller-supplied output buffer (float64, contiguous)."""
        return check_out_buffer(out, shape)

    def matvec(
        self,
        m: np.ndarray,
        config: Union[str, PrecisionConfig] = "ddddd",
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Compute ``d = F m``.

        ``m`` is a double-precision ``(Nt, Nm)`` array (or flat vector);
        the result is a double-precision ``(Nt, Nd)`` array.  ``out``
        receives the result in a caller-owned buffer — combined with a
        workspace arena, repeated applies are allocation-free.

        In pairwise mode the vector rides the width-1 blocked pipeline:
        the fixed tree makes a lone column accumulate bitwise like the
        same column inside any block, so ``matvec(m)`` ==
        ``matmat(M)[:, :, j]`` exactly whenever ``M[:, :, j] == m``.
        """
        cfg = PrecisionConfig.parse(config)
        mm = self.matrix.check_input(m).astype(np.float64, copy=False)
        out = self._check_out(out, (self.nt, self.nd))
        if self.reduction == "pairwise":
            return self._apply_vector_pairwise(mm, cfg, adjoint=False, out=out)
        return self._timed(
            lambda: self._pipeline(mm, cfg, adjoint=False, out=out), str(cfg)
        )

    def rmatvec(
        self,
        d: np.ndarray,
        config: Union[str, PrecisionConfig] = "ddddd",
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Compute ``m = F* d`` (adjoint/conjugate-transpose matvec)."""
        cfg = PrecisionConfig.parse(config)
        dd = self.matrix.check_output(d).astype(np.float64, copy=False)
        out = self._check_out(out, (self.nt, self.nm))
        if self.reduction == "pairwise":
            return self._apply_vector_pairwise(dd, cfg, adjoint=True, out=out)
        return self._timed(
            lambda: self._pipeline(dd, cfg, adjoint=True, out=out), str(cfg)
        )

    def _apply_vector_pairwise(
        self,
        v_in: np.ndarray,
        cfg: PrecisionConfig,
        adjoint: bool,
        out: Optional[np.ndarray],
    ) -> np.ndarray:
        """Vector apply via the width-1 blocked pipeline (pairwise mode)."""
        res3 = self._timed(
            lambda: self._pipeline_block(v_in[:, :, None], cfg, adjoint=adjoint),
            f"{cfg}[pairwise]",
        )
        if out is not None:
            out[...] = res3[:, :, 0]
            return out
        return res3[:, :, 0]

    # -- blocked multi-RHS API -------------------------------------------------
    def _check_block(self, V: np.ndarray, nx: int, what: str) -> np.ndarray:
        """Validate/reshape a multi-RHS block to (Nt, nx, k)."""
        return check_block(V, self.nt, nx, what)

    def matmat(
        self,
        M: np.ndarray,
        config: Union[str, PrecisionConfig] = "ddddd",
        out: Optional[np.ndarray] = None,
        deterministic: bool = False,
    ) -> np.ndarray:
        """Compute ``D = F M`` for a block of ``k`` parameter vectors.

        ``M`` is ``(Nt, Nm, k)`` (or scipy-style ``(Nt*Nm, k)``); the
        result is ``(Nt, Nd, k)`` with column ``j`` equal to
        ``matvec(M[:, :, j])`` up to rounding.  All k vectors share one
        pad, one batched FFT, one strided-batched GEMM per pass and one
        inverse FFT — see the module docstring.  ``out`` (``(Nt, Nd,
        k)`` float64) receives the result in place.  ``matvec_count``
        advances by ``k`` (logical operator actions); ``matmat_count``
        by one (pipeline passes).

        ``deterministic=True`` makes "up to rounding" exact: Phase 3
        runs one GEMV per column instead of the blocked GEMM, so column
        ``j`` is **bitwise** ``matvec(M[:, :, j])`` — phases 1/2/4/5 are
        batched either way (elementwise kernels and a row-independent
        batched FFT preserve per-column bits).  The serving coalescer
        uses this to batch concurrent tenants without perturbing anyone's
        answer.
        """
        cfg = PrecisionConfig.parse(config)
        mm = self._check_block(M, self.nm, "parameter")
        k = mm.shape[2]
        out = self._check_out(out, (self.nt, self.nd, k))
        res = self._timed(
            lambda: self._pipeline_block(
                mm, cfg, adjoint=False, out=out, deterministic=deterministic
            ),
            f"{cfg}[k={k}{', det' if deterministic else ''}]",
        )
        self.matvec_count += k - 1  # _timed already counted one
        self.matmat_count += 1
        return res

    def rmatmat(
        self,
        D: np.ndarray,
        config: Union[str, PrecisionConfig] = "ddddd",
        out: Optional[np.ndarray] = None,
        deterministic: bool = False,
    ) -> np.ndarray:
        """Compute ``M = F* D`` for a block of ``k`` data vectors.

        ``D`` is ``(Nt, Nd, k)`` (or ``(Nt*Nd, k)``); result
        ``(Nt, Nm, k)``.  The blocked counterpart of :meth:`rmatvec`;
        ``deterministic=True`` makes column ``j`` bitwise
        ``rmatvec(D[:, :, j])``, as in :meth:`matmat`.
        """
        cfg = PrecisionConfig.parse(config)
        dd = self._check_block(D, self.nd, "data")
        k = dd.shape[2]
        out = self._check_out(out, (self.nt, self.nm, k))
        res = self._timed(
            lambda: self._pipeline_block(
                dd, cfg, adjoint=True, out=out, deterministic=deterministic
            ),
            f"{cfg}[k={k}{', det' if deterministic else ''}]",
        )
        self.matvec_count += k - 1
        self.matmat_count += 1
        return res

    def _timed(self, fn, label: str) -> np.ndarray:
        if self.device is None:
            self.matvec_count += 1
            self.last_timing = None
            return fn()
        clock = self.device.clock
        before = {p: clock.phase_total(p) for p in _PHASES}
        out = fn()
        self.last_timing = TimingReport(
            phases={
                p: clock.phase_total(p) - before[p]
                for p in _PHASES
                if clock.phase_total(p) - before[p] > 0
            },
            label=label,
        )
        self.matvec_count += 1
        return out

    # -- convenience -----------------------------------------------------------
    _REF_CACHE_MAX = 16

    def relative_error(
        self,
        config: Union[str, PrecisionConfig],
        m: np.ndarray,
        adjoint: bool = False,
        ref: Optional[np.ndarray] = None,
    ) -> float:
        """Relative L2 error of a config vs the all-double baseline.

        This mirrors the artifact workflow: mixed-precision outputs are
        compared against the saved double-precision output.  The
        ``ddddd`` reference is cached per input (keyed by the input's
        bytes), so config sweeps over the same test vector pay for it
        once instead of doubling every evaluation; pass ``ref`` to
        supply a precomputed reference and skip the cache entirely.
        """
        op = self.rmatvec if adjoint else self.matvec
        if ref is None:
            check = self.matrix.check_output if adjoint else self.matrix.check_input
            mm = np.ascontiguousarray(check(m), dtype=np.float64)
            import hashlib

            key = (adjoint, mm.shape, hashlib.sha1(mm.tobytes()).digest())
            ref = self._ref_cache.get(key)
            if ref is None:
                ref = op(m, config="ddddd")
                if len(self._ref_cache) >= self._REF_CACHE_MAX:
                    self._ref_cache.pop(next(iter(self._ref_cache)))
                self._ref_cache[key] = ref
        val = op(m, config=config)
        denom = float(np.linalg.norm(ref))
        if denom == 0.0:
            return float(np.linalg.norm(val))
        return float(np.linalg.norm(val - ref)) / denom

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        dev = self.device.spec.name if self.device is not None else "no device"
        return f"FFTMatvec(Nt={self.nt}, Nd={self.nd}, Nm={self.nm}, {dev})"
