"""SPMD-simulated multi-GPU FFTMatvec over a 2D process grid.

Rank ``(r, c)`` of a ``pr x pc`` grid owns the ``(Nd_r x Nm_c)``
sub-block of every Toeplitz block: sensors are split across grid rows,
spatial parameters across grid columns.  One F matvec then runs:

1. **pad** — broadcast each column's parameter block down the column's
   ``pr`` ranks (machine-spanning collective; in Phase 1's precision, so
   a single-precision Phase 1 halves the broadcast volume), then
   zero-pad locally;
2-4. local FFT → SBGEMV → IFFT on each rank's sub-block;
5. **unpad** — unpad locally, then *reduce* each row's partial data
   block across the row's ``pc`` contiguous ranks (tree numerics in
   Phase 5's precision — the ``eps5 * log2(pc)`` term of Eq. 6).

The adjoint swaps the roles: broadcast over rows, reduce over columns.

All ranks execute sequentially in-process with genuine per-rank
numerics.  Compute time is charged once (ranks run concurrently and the
partition is balanced, so wall time equals one rank's time); collectives
are charged once per phase through the grid's timed communicators.

Blocked collectives
-------------------
:meth:`ParallelFFTMatvec.matmat` / :meth:`~ParallelFFTMatvec.rmatmat`
move ``k`` right-hand sides through the grid as *blocks*: each chunk of
at most ``max_block_k`` columns pays **one** column-broadcast and
**one** row-reduce (per grid column/row) instead of one per vector, so
the collective count is ``ceil(k / max_block_k)`` rather than ``k``.
The broadcast payload is the whole ``(Nt, nm_c, k_c)`` parameter block
in Phase 1's precision — the volume term of the tree cost scales by
``k_c``, the ``log2`` latency trees are paid once per chunk — and the
Phase-5 tree-reduce sums ``(Nt, nd_r, k_c)`` partial blocks elementwise,
so the ``eps5 * log2(pc)`` accumulation term of Eq. 6 applies per column
exactly as in the vector path.  Per-rank compute routes through
``FFTMatvec``'s blocked pipeline (one pad / batched FFT / per-frequency
SBGEMM / IFFT / unpad for the chunk); ``max_block_k`` bounds the
per-rank workspace (pad buffers scale with ``nx * k_c``) without
changing the numerics.  A chunk of one column degenerates *bitwise* to
the vector path (the SBGEMM dispatcher hands ``k == 1`` panels to the
SBGEMV entry point); wider chunks match it to rounding, since a GEMM's
column accumulation order differs from a GEMV's.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.comm.grid import ProcessGrid
from repro.comm.netmodel import NetworkModel, SIMPLE_NETWORK
from repro.comm.simcomm import SimCommunicator
from repro.core.matvec import FFTMatvec
from repro.core.precision import PrecisionConfig
from repro.core.toeplitz import BlockTriangularToeplitz
from repro.gpu.device import SimulatedDevice
from repro.gpu.specs import GPUSpec
from repro.util.blocking import check_block, chunk_ranges, validate_max_block_k
from repro.util.dtypes import cast_to
from repro.util.timing import TimingReport
from repro.util.validation import ReproError

__all__ = ["ParallelFFTMatvec"]

_PHASES = ("pad", "fft", "sbgemv", "ifft", "unpad")


class ParallelFFTMatvec:
    """Distributed FFTMatvec on a simulated ``pr x pc`` GPU grid.

    Parameters
    ----------
    matrix:
        The *global* block-triangular Toeplitz matrix (or kernel blocks).
    grid:
        Process grid; its clock accumulates both compute and
        communication time.
    spec:
        GPU architecture for the per-rank compute model.  Only rank
        (0,0) charges compute time (ranks are concurrent and balanced);
        every rank computes real numerics.
    max_block_k:
        Default chunk width for the blocked :meth:`matmat` /
        :meth:`rmatmat` path (None = all k columns in one chunk).
        Bounds per-rank workspace; each chunk costs one
        broadcast + one reduce.
    """

    def __init__(
        self,
        matrix: Union[BlockTriangularToeplitz, np.ndarray],
        grid: ProcessGrid,
        spec: Optional[GPUSpec] = None,
        use_optimized_sbgemv: bool = True,
        max_block_k: Optional[int] = None,
    ) -> None:
        self.matrix = (
            matrix
            if isinstance(matrix, BlockTriangularToeplitz)
            else BlockTriangularToeplitz(np.asarray(matrix))
        )
        self.grid = grid
        self.nt = self.matrix.nt
        self.nd = self.matrix.nd
        self.nm = self.matrix.nm
        if grid.pr > self.nd:
            raise ReproError(
                f"grid has {grid.pr} rows but only {self.nd} sensors to split"
            )
        if grid.pc > self.nm:
            raise ReproError(
                f"grid has {grid.pc} columns but only {self.nm} parameters to split"
            )

        self.device = (
            SimulatedDevice(spec, clock=grid.clock) if spec is not None else None
        )
        self._row_ranges = grid.split_extent(self.nd, grid.pr)
        self._col_ranges = grid.split_extent(self.nm, grid.pc)

        # Per-rank engines on the local sub-blocks. Only (0,0) carries
        # the device (single charge for concurrent, balanced compute).
        self.engines: Dict[Tuple[int, int], FFTMatvec] = {}
        for r in range(grid.pr):
            r0, r1 = self._row_ranges[r]
            for c in range(grid.pc):
                c0, c1 = self._col_ranges[c]
                local = self.matrix.blocks[:, r0:r1, c0:c1]
                self.engines[(r, c)] = FFTMatvec(
                    BlockTriangularToeplitz(local),
                    device=self.device if (r, c) == (0, 0) else None,
                    use_optimized_sbgemv=use_optimized_sbgemv,
                )

        # Timed collectives (row 0 / col 0) vs silent clones for the
        # other rows/columns, which run concurrently with the timed ones.
        self._silent_row = SimCommunicator(
            grid.pc, net=grid.net, clock=None, span=grid.pc, name="row_silent"
        )
        col_span = (grid.pr - 1) * grid.pc + 1
        self._silent_col = SimCommunicator(
            grid.pr, net=grid.net, clock=None, span=col_span, name="col_silent"
        )
        self.max_block_k = validate_max_block_k(max_block_k)
        self.last_timing: Optional[TimingReport] = None
        self.matvec_count = 0  # logical operator actions (k per block)
        self.matmat_count = 0  # blocked pipeline passes (one per chunk)

    # -- helpers ------------------------------------------------------------
    def _timed_col(self, c: int) -> SimCommunicator:
        return self.grid.col_comm(0) if c == 0 else self._silent_col

    def _timed_row(self, r: int) -> SimCommunicator:
        return self.grid.row_comm(0) if r == 0 else self._silent_row

    def _snapshot(self) -> Dict[str, float]:
        return {p: self.grid.clock.phase_total(p) for p in _PHASES}

    def _record(self, before: Dict[str, float], label: str) -> None:
        clock = self.grid.clock
        self.last_timing = TimingReport(
            phases={
                p: clock.phase_total(p) - before[p]
                for p in _PHASES
                if clock.phase_total(p) - before[p] > 0
            },
            label=label,
        )

    # -- forward ---------------------------------------------------------------
    def matvec(
        self, m: np.ndarray, config: Union[str, PrecisionConfig] = "ddddd"
    ) -> np.ndarray:
        """Compute ``d = F m`` across the grid; returns the global (Nt, Nd)."""
        cfg = PrecisionConfig.parse(config)
        mm = self.matrix.check_input(m).astype(np.float64, copy=False)
        before = self._snapshot()

        # Phase 1 communication: broadcast each column's parameter block
        # down its pr ranks, in Phase 1's precision (comm volume follows).
        col_blocks: Dict[int, np.ndarray] = {}
        for c in range(self.grid.pc):
            c0, c1 = self._col_ranges[c]
            payload = cast_to(np.ascontiguousarray(mm[:, c0:c1]), cfg.pad)
            with self.grid.clock.phase("pad"):
                copies = self._timed_col(c).bcast(payload, root=0, phase="pad")
            col_blocks[c] = copies[0]

        # Local five-phase pipelines (all ranks; only (0,0) charges time).
        partials: Dict[Tuple[int, int], np.ndarray] = {}
        for r in range(self.grid.pr):
            for c in range(self.grid.pc):
                local_m = np.asarray(col_blocks[c], dtype=np.float64)
                partials[(r, c)] = self.engines[(r, c)]._pipeline(
                    local_m, cfg, adjoint=False
                )

        # Phase 5 communication: tree-reduce each row's partial data
        # block over its pc ranks in Phase 5's precision.
        out = np.zeros((self.nt, self.nd))
        for r in range(self.grid.pr):
            r0, r1 = self._row_ranges[r]
            contribs = [
                cast_to(partials[(r, c)], cfg.unpad) for c in range(self.grid.pc)
            ]
            with self.grid.clock.phase("unpad"):
                reduced = self._timed_row(r).reduce(
                    contribs, root=0, precision=cfg.unpad, phase="unpad"
                )
            out[:, r0:r1] = np.asarray(reduced, dtype=np.float64)

        self._record(before, f"{cfg} F ({self.grid.pr}x{self.grid.pc})")
        self.matvec_count += 1
        return out

    # -- adjoint ------------------------------------------------------------------
    def rmatvec(
        self, d: np.ndarray, config: Union[str, PrecisionConfig] = "ddddd"
    ) -> np.ndarray:
        """Compute ``m = F* d`` across the grid; returns the global (Nt, Nm)."""
        cfg = PrecisionConfig.parse(config)
        dd = self.matrix.check_output(d).astype(np.float64, copy=False)
        before = self._snapshot()

        # Phase 1: broadcast each row's data block across its pc ranks.
        row_blocks: Dict[int, np.ndarray] = {}
        for r in range(self.grid.pr):
            r0, r1 = self._row_ranges[r]
            payload = cast_to(np.ascontiguousarray(dd[:, r0:r1]), cfg.pad)
            with self.grid.clock.phase("pad"):
                copies = self._timed_row(r).bcast(payload, root=0, phase="pad")
            row_blocks[r] = copies[0]

        partials: Dict[Tuple[int, int], np.ndarray] = {}
        for r in range(self.grid.pr):
            for c in range(self.grid.pc):
                local_d = np.asarray(row_blocks[r], dtype=np.float64)
                partials[(r, c)] = self.engines[(r, c)]._pipeline(
                    local_d, cfg, adjoint=True
                )

        # Phase 5: reduce each column's partial parameter block over pr.
        out = np.zeros((self.nt, self.nm))
        for c in range(self.grid.pc):
            c0, c1 = self._col_ranges[c]
            contribs = [
                cast_to(partials[(r, c)], cfg.unpad) for r in range(self.grid.pr)
            ]
            with self.grid.clock.phase("unpad"):
                reduced = self._timed_col(c).reduce(
                    contribs, root=0, precision=cfg.unpad, phase="unpad"
                )
            out[:, c0:c1] = np.asarray(reduced, dtype=np.float64)

        self._record(before, f"{cfg} F* ({self.grid.pr}x{self.grid.pc})")
        self.matvec_count += 1
        return out

    # -- blocked multi-RHS path across the grid ------------------------------
    def _check_block(self, V: np.ndarray, nx: int, what: str) -> np.ndarray:
        """Validate/reshape a multi-RHS block to (Nt, nx, k)."""
        return check_block(V, self.nt, nx, what)

    def _matmat_chunk(
        self, chunk: np.ndarray, cfg: PrecisionConfig, adjoint: bool
    ) -> np.ndarray:
        """One chunk through the grid: one bcast + one reduce per col/row.

        Forward: chunk is (Nt, Nm, kc) -> (Nt, Nd, kc); the parameter
        block is broadcast down each grid column, partial data blocks are
        tree-reduced across each grid row.  Adjoint swaps the roles.
        """
        kc = chunk.shape[2]
        in_ranges = self._row_ranges if adjoint else self._col_ranges
        out_ranges = self._col_ranges if adjoint else self._row_ranges
        in_comm = self._timed_row if adjoint else self._timed_col
        out_comm = self._timed_col if adjoint else self._timed_row
        n_in = self.grid.pr if adjoint else self.grid.pc
        n_out = self.grid.pc if adjoint else self.grid.pr
        ny = self.nm if adjoint else self.nd

        # Phase 1 communication: ONE batched broadcast per grid column
        # (row for the adjoint) carries the whole (Nt, n_local, kc) block
        # in Phase 1's precision — volume scales by kc, the log2 latency
        # tree is paid once for the chunk.
        in_blocks: Dict[int, np.ndarray] = {}
        for i in range(n_in):
            i0, i1 = in_ranges[i]
            payload = cast_to(np.ascontiguousarray(chunk[:, i0:i1, :]), cfg.pad)
            with self.grid.clock.phase("pad"):
                copies = in_comm(i).bcast(payload, root=0, phase="pad")
            in_blocks[i] = copies[0]

        # Per-rank blocked pipelines: one pad / batched FFT / SBGEMM /
        # IFFT / unpad pass for the chunk (all ranks; (0,0) charges time).
        partials: Dict[Tuple[int, int], np.ndarray] = {}
        for r in range(self.grid.pr):
            for c in range(self.grid.pc):
                local = np.asarray(
                    in_blocks[r if adjoint else c], dtype=np.float64
                )
                partials[(r, c)] = self.engines[(r, c)]._pipeline_block(
                    local, cfg, adjoint=adjoint
                )

        # Phase 5 communication: ONE batched tree-reduce per grid row
        # (column for the adjoint); the eps5 * log2 accumulation applies
        # elementwise to every column of the block.
        out = np.zeros((self.nt, ny, kc))
        for o in range(n_out):
            o0, o1 = out_ranges[o]
            if adjoint:
                contribs = [
                    cast_to(partials[(r, o)], cfg.unpad)
                    for r in range(self.grid.pr)
                ]
            else:
                contribs = [
                    cast_to(partials[(o, c)], cfg.unpad)
                    for c in range(self.grid.pc)
                ]
            with self.grid.clock.phase("unpad"):
                reduced = out_comm(o).reduce(
                    contribs, root=0, precision=cfg.unpad, phase="unpad"
                )
            out[:, o0:o1, :] = np.asarray(reduced, dtype=np.float64)
        return out

    def _matmat_impl(
        self,
        V: np.ndarray,
        config: Union[str, PrecisionConfig],
        max_block_k: Optional[int],
        adjoint: bool,
    ) -> np.ndarray:
        cfg = PrecisionConfig.parse(config)
        nx = self.nd if adjoint else self.nm
        VV = self._check_block(V, nx, "data" if adjoint else "parameter")
        k = VV.shape[2]
        if max_block_k is None:
            max_block_k = self.max_block_k
        else:
            max_block_k = validate_max_block_k(max_block_k)
        ranges = chunk_ranges(k, max_block_k)

        before = self._snapshot()
        ny = self.nm if adjoint else self.nd
        out = np.empty((self.nt, ny, k))
        for j0, j1 in ranges:
            out[:, :, j0:j1] = self._matmat_chunk(
                VV[:, :, j0:j1], cfg, adjoint=adjoint
            )
        name = "F*" if adjoint else "F"
        self._record(
            before,
            f"{cfg} {name}[k={k}/{len(ranges)} chunk(s)] "
            f"({self.grid.pr}x{self.grid.pc})",
        )
        self.matvec_count += k
        self.matmat_count += len(ranges)
        return out

    def matmat(
        self,
        M: np.ndarray,
        config: Union[str, PrecisionConfig] = "ddddd",
        max_block_k: Optional[int] = None,
    ) -> np.ndarray:
        """Compute ``D = F M`` for k parameter vectors across the grid.

        ``M`` is ``(Nt, Nm, k)`` (or scipy-style ``(Nt*Nm, k)``); the
        result is ``(Nt, Nd, k)``.  Each chunk of at most ``max_block_k``
        columns (default: the constructor's knob; None = one chunk) pays
        one column-broadcast and one row-reduce — ``ceil(k/max_block_k)``
        collectives total instead of ``k``.  ``matvec_count`` advances by
        ``k`` (logical actions), ``matmat_count`` by the chunk count.
        """
        return self._matmat_impl(M, config, max_block_k, adjoint=False)

    def rmatmat(
        self,
        D: np.ndarray,
        config: Union[str, PrecisionConfig] = "ddddd",
        max_block_k: Optional[int] = None,
    ) -> np.ndarray:
        """Compute ``M = F* D`` for k data vectors across the grid.

        The blocked adjoint: one row-broadcast and one column-reduce per
        chunk (the column reduce crosses machine groups, so batching its
        latency matters most).  See :meth:`matmat`.
        """
        return self._matmat_impl(D, config, max_block_k, adjoint=True)
