"""SPMD-simulated multi-GPU FFTMatvec over a 2D process grid.

Rank ``(r, c)`` of a ``pr x pc`` grid owns the ``(Nd_r x Nm_c)``
sub-block of every Toeplitz block: sensors are split across grid rows,
spatial parameters across grid columns.  One F matvec then runs:

1. **pad** — broadcast each column's parameter block down the column's
   ``pr`` ranks (machine-spanning collective; in Phase 1's precision, so
   a single-precision Phase 1 halves the broadcast volume), then
   zero-pad locally;
2-4. local FFT → SBGEMV → IFFT on each rank's sub-block;
5. **unpad** — unpad locally, then *reduce* each row's partial data
   block across the row's ``pc`` contiguous ranks (tree numerics in
   Phase 5's precision — the ``eps5 * log2(pc)`` term of Eq. 6).

The adjoint swaps the roles: broadcast over rows, reduce over columns.

All ranks execute sequentially in-process with genuine per-rank
numerics, and — unlike the original single-clock model — every rank
carries its own simulated device: per-rank compute time is measured on
per-rank clocks, and the wall time charged between collectives is the
**max over ranks**.  Balanced partitions charge exactly one rank's time
(all ranks tie); irregular partitions (caller-supplied ``row_ranges`` /
``col_ranges``, e.g. :func:`repro.comm.partition.skewed_extents`) charge
genuine skew — the slowest rank gates every collective, exactly as a
blocking collective would on the real machine.

Event-timeline execution (paper Sec. 4.2.2, Figure 4)
-----------------------------------------------------
Timing rides the stream/event model of :mod:`repro.util.timing`.  The
blocked :meth:`ParallelFFTMatvec.matmat` / :meth:`~ParallelFFTMatvec.rmatmat`
run a *double-buffered chunk schedule* over two streams:

* the **comm stream** carries the chunk collectives — and *prefetches*
  chunk ``i+1``'s column-broadcast while chunk ``i`` computes;
* the **compute stream** carries the per-rank (max) five-phase pipeline,
  waiting on the prefetched broadcast's event before starting a chunk;
* each chunk's row-reduce waits on that chunk's compute event, and runs
  on the comm stream concurrently with chunk ``i+1``'s compute.

Wall time is the critical path through this dependency graph, realized
on the grid clock at the final sync: whenever a chunk's compute covers
the next chunk's broadcast, the broadcast costs nothing.  A network
model with ``overlap_efficiency < 1`` charges the exposed remainder of
every prefetched collective onto the compute stream (link contention).
``overlap=False`` (constructor or per-call) charges the classic serial
schedule — broadcast → compute → reduce per chunk, one stream — which
reproduces the pre-timeline charge exactly.  **Numerics are identical
in both modes, bitwise**: the schedule only decides what time costs,
never what is computed.

A third **host stream** fuses the dense-operator-assembly host routines
(:class:`~repro.util.timing.HostModel` — generate inputs, save results)
directly into the chunk schedule: constructed with ``host=...``, each
chunk's generate gates its broadcast and each save waits on its reduce,
so host, device and network run fully concurrently and the wall is the
critical path through all three streams.  ``overlap_host=False`` keeps
the two-stream schedule and charges the host total serially after the
final sync — the composition the two-stream model implied (device/net
schedule + host on top), kept as the baseline the three-stream gain is
measured against.  ``host=None`` (default) charges no host work at all.

Deterministic reduction (``reduction="pairwise"``)
--------------------------------------------------
``reduction="pairwise"`` makes the *entire distributed contraction* one
fixed binary tree over global parameter (sensor, for the adjoint)
indices: each rank computes Phase-3 partial panels for the canonical
tree segments of its slice (:mod:`repro.util.pairwise`), the grid
reduce merges segments in the frequency domain
(:meth:`repro.comm.simcomm.SimCommunicator.reduce_segments`), and the
output part's root rank runs the IFFT/unpad epilogue once on the merged
panel.  Because every addition — intra-rank and inter-rank — is an edge
of one tree indexed by *global element position*, the result is
**bitwise identical for any** ``row_ranges`` / ``col_ranges``
partition, any ``max_block_k``, and equal to the single-device pairwise
engine — which lifts the ``min_part=2`` caveat of
:mod:`repro.comm.balance` (single-element parts are safe).  The fast
mode's per-rank IFFT + rank-indexed tree reduce is the throughput path;
pairwise pays a modeled kernel tax and a larger (complex, per-segment)
reduce payload, benchmarked in ``BENCH_determinism.json``.

Blocked collectives
-------------------
Each chunk of at most ``max_block_k`` columns pays **one**
column-broadcast and **one** row-reduce (per grid column/row) instead of
one per vector, so the collective count is ``ceil(k / max_block_k)``.
The broadcast payload is the whole ``(Nt, nm_c, k_c)`` parameter block
in Phase 1's precision — the volume term of the tree cost scales by
``k_c``, the ``log2`` latency trees are paid once per chunk — and the
Phase-5 tree-reduce sums ``(Nt, nd_r, k_c)`` partial blocks elementwise,
so the ``eps5 * log2(pc)`` accumulation term of Eq. 6 applies per column
exactly as in the vector path.  Per-rank compute routes through
``FFTMatvec``'s blocked pipeline; a chunk of one column degenerates
*bitwise* to the vector path, wider chunks match it to rounding (GEMM
vs GEMV column-accumulation order) — or *bitwise* for every column with
``deterministic=True``, which swaps each rank's Phase-3 GEMM for
per-column batched GEMVs (the serving coalescer's mode).
"""

from __future__ import annotations

import contextlib
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.backend import Backend, resolve_backend
from repro.comm.grid import ProcessGrid
from repro.comm.partition import check_extents
from repro.comm.simcomm import SimCommunicator
from repro.core.matvec import FFTMatvec
from repro.core.precision import PrecisionConfig
from repro.core.toeplitz import BlockTriangularToeplitz
from repro.gpu.device import SimulatedDevice
from repro.gpu.specs import GPUSpec, get_gpu
from repro.util.blocking import (
    check_block,
    check_out_buffer,
    chunk_ranges,
    validate_max_block_k,
)
from repro.util.dtypes import real_dtype
from repro.util.timing import HostModel, SimClock, Stream, Timeline, TimingReport
from repro.util.validation import ReproError
from repro.util.workspace import Workspace

__all__ = ["ParallelFFTMatvec"]

_PHASES = ("pad", "fft", "sbgemv", "ifft", "unpad")
# Phases a grid-level timing report may carry: the five device phases
# plus the host stream's generate/save work.
_REPORT_PHASES = _PHASES + ("host",)

# Per-rank spec inputs the constructor accepts: one spec for the whole
# grid, a mapping keyed by (row, col), or a pr x pc nested sequence.
RankSpecs = Union[
    GPUSpec,
    str,
    Mapping[Tuple[int, int], Union[GPUSpec, str]],
    Sequence[Sequence[Union[GPUSpec, str]]],
]


@contextlib.contextmanager
def _apply_scope(ws: Optional[Workspace]):
    """Bracket a grid-level apply in the arena's re-entrancy guard.

    No-op without a workspace; otherwise cursors reset and a second
    apply interleaving on the grid arena raises :class:`ReproError`
    instead of aliasing staging buffers.
    """
    if ws is None:
        yield
        return
    ws.begin_apply()
    try:
        yield
    finally:
        ws.end_apply()


def _normalize_rank_specs(
    spec: Optional[RankSpecs], pr: int, pc: int
) -> Dict[Tuple[int, int], Optional[GPUSpec]]:
    """Resolve the ``spec`` argument to one (possibly None) spec per rank.

    ``None`` disables timing everywhere; anything else must cover every
    rank of the grid — a partially-instrumented grid would charge
    meaningless maxima.
    """

    def resolve(s: Union[GPUSpec, str]) -> GPUSpec:
        return get_gpu(s) if isinstance(s, str) else s

    ranks = [(r, c) for r in range(pr) for c in range(pc)]
    if spec is None:
        return {rc: None for rc in ranks}
    if isinstance(spec, (GPUSpec, str)):
        one = resolve(spec)
        return {rc: one for rc in ranks}
    if isinstance(spec, Mapping):
        missing = [rc for rc in ranks if rc not in spec]
        if missing:
            raise ReproError(
                f"per-rank spec mapping missing ranks {missing} of a {pr}x{pc} grid"
            )
        return {rc: resolve(spec[rc]) for rc in ranks}
    rows = []
    for row in spec:
        if isinstance(row, (GPUSpec, str)) or not hasattr(row, "__iter__"):
            raise ReproError(
                f"per-rank spec sequence must be nested — {pr} rows of "
                f"{pc} specs — not a flat list"
            )
        rows.append(list(row))
    if len(rows) != pr or any(len(row) != pc for row in rows):
        raise ReproError(
            f"per-rank spec sequence must be {pr} rows of {pc} specs"
        )
    return {(r, c): resolve(rows[r][c]) for r, c in ranks}


class ParallelFFTMatvec:
    """Distributed FFTMatvec on a simulated ``pr x pc`` GPU grid.

    Parameters
    ----------
    matrix:
        The *global* block-triangular Toeplitz matrix (or kernel blocks).
    grid:
        Process grid; its clock accumulates wall time (compute max +
        communication critical path).
    spec:
        GPU architecture(s) for the per-rank compute model.  One
        :class:`GPUSpec` (or registry name) instruments every rank
        identically; a mapping keyed by ``(row, col)`` or a ``pr x pc``
        nested sequence builds a *heterogeneous* grid where ranks own
        devices of differing throughput.  Every rank carries a device on
        its own clock; the wall charge between collectives is the max
        over ranks (per-rank skew is genuine).
        :meth:`rank_compute_report` harvests the per-rank clocks, and
        :func:`repro.comm.balance.rebalance_rows` /
        :func:`~repro.comm.balance.rebalance_cols` search new partitions
        against them.
    max_block_k:
        Default chunk width for the blocked :meth:`matmat` /
        :meth:`rmatmat` path (None = all k columns in one chunk).
        Bounds per-rank workspace; each chunk costs one
        broadcast + one reduce.
    overlap:
        Default schedule for the blocked path: ``True`` prefetches each
        chunk's broadcast on the comm stream while the previous chunk
        computes (double buffering); ``False`` charges the serial
        broadcast → compute → reduce schedule.  Numerics are identical.
    reduction:
        ``"fast"`` (default) — vendor accumulation order per rank, tree
        reduce indexed by rank.  ``"pairwise"`` — the fixed-tree
        deterministic mode: results are bitwise identical for any grid
        partition and any ``max_block_k``, and match the single-device
        pairwise engine (see the module docstring).
    host:
        Optional :class:`~repro.util.timing.HostModel` fusing the
        dense-assembly host routines into the blocked schedule: each
        chunk charges ``k_chunk * gen_time`` before (and gating) its
        broadcast and ``k_chunk * save_time`` after its reduce.  With
        the overlapped schedule these ride a third *host* stream (fully
        concurrent with comm + compute); with ``overlap=False`` or
        ``overlap_host=False`` the host total is charged serially on
        top.  ``None`` charges no host work (the historical behavior).
    overlap_host:
        ``False`` restricts overlap to the two-stream comm/compute
        schedule and charges the host total serially after it — the
        baseline charge the three-stream fusion is measured against.
        Ignored when ``host`` is None.
    row_ranges, col_ranges:
        Optional explicit 1-D partitions of the sensor / parameter
        extents (lists of contiguous ``(start, stop)``, one per grid
        row / column).  Defaults to the balanced ceil-based split; pass
        :func:`repro.comm.partition.skewed_extents` to study skew.
    workspace:
        ``True`` gives every rank engine its own
        :class:`~repro.util.workspace.Workspace` arena (registered with
        the rank device's allocator when instrumented) plus a grid-level
        arena for broadcast payloads, receive buffers and reduce
        staging.  The chunk loop then reuses ping-pong payload buffers
        across chunks instead of re-``ascontiguousarray``-ing each one.
        Numerics are bitwise-identical with the arena on or off.
    backend:
        Array backend every rank engine and comm payload runs on — a
        :class:`~repro.backend.Backend` instance, a registry name
        (``"numpy"``/``"cupy"``/``"torch"``), or None for the
        ``REPRO_BACKEND`` / ``auto`` fallback chain.  Gathered results
        are always host float64 regardless of backend.
    validate:
        SDC defense checks, forwarded to every rank engine (see
        :class:`~repro.core.matvec.FFTMatvec`): ``"guard"`` for NaN/Inf
        boundary guards, ``"abft"`` for checksum/energy verification,
        ``"guard+abft"`` or ``True`` for both.  Any enabled mode also
        switches on receive-side payload digests on every grid
        communicator, so collective payloads are covered end to end.
    """

    def __init__(
        self,
        matrix: Union[BlockTriangularToeplitz, np.ndarray],
        grid: ProcessGrid,
        spec: Optional[RankSpecs] = None,
        use_optimized_sbgemv: bool = True,
        max_block_k: Optional[int] = None,
        overlap: bool = True,
        reduction: str = "fast",
        row_ranges: Optional[Sequence[Tuple[int, int]]] = None,
        col_ranges: Optional[Sequence[Tuple[int, int]]] = None,
        workspace: Union[None, bool] = None,
        backend: Union[None, str, Backend] = None,
        host: Optional[HostModel] = None,
        overlap_host: bool = True,
        validate: Union[None, bool, str] = None,
    ) -> None:
        if reduction not in ("fast", "pairwise"):
            raise ReproError(
                f"reduction must be 'fast' or 'pairwise', got {reduction!r}"
            )
        self.reduction = reduction
        if host is not None and not isinstance(host, HostModel):
            raise ReproError(
                f"host must be a HostModel (or None), got {type(host).__name__}"
            )
        self.host = host
        self.overlap_host = bool(overlap_host)
        self.backend = resolve_backend(backend)
        self.matrix = (
            matrix
            if isinstance(matrix, BlockTriangularToeplitz)
            else BlockTriangularToeplitz(np.asarray(matrix))
        )
        self.grid = grid
        self.nt = self.matrix.nt
        self.nd = self.matrix.nd
        self.nm = self.matrix.nm
        if grid.pr > self.nd:
            raise ReproError(
                f"grid has {grid.pr} rows but only {self.nd} sensors to split"
            )
        if grid.pc > self.nm:
            raise ReproError(
                f"grid has {grid.pc} columns but only {self.nm} parameters to split"
            )

        self._row_ranges = (
            check_extents(row_ranges, self.nd, grid.pr, "row_ranges")
            if row_ranges is not None
            else grid.split_extent(self.nd, grid.pr)
        )
        self._col_ranges = (
            check_extents(col_ranges, self.nm, grid.pc, "col_ranges")
            if col_ranges is not None
            else grid.split_extent(self.nm, grid.pc)
        )

        # Per-rank devices on private clocks: each rank's compute time is
        # measured independently, and collectives take the max (ranks run
        # concurrently; the slowest gates the blocking collective).  A
        # heterogeneous spec gives ranks genuinely different throughput.
        self.rank_specs = _normalize_rank_specs(spec, grid.pr, grid.pc)
        self.devices: Dict[Tuple[int, int], Optional[SimulatedDevice]] = {}
        self.engines: Dict[Tuple[int, int], FFTMatvec] = {}
        if workspace is not None and not isinstance(workspace, bool):
            # A single Workspace instance cannot serve the grid: every
            # rank engine needs its own arena (checkout keys would
            # collide across ranks).  Refuse rather than silently
            # ignoring the caller's instance.
            raise ReproError(
                "ParallelFFTMatvec builds one arena per rank engine plus a "
                "grid arena; pass workspace=True, not a Workspace instance"
            )
        use_workspace = bool(workspace)
        for r in range(grid.pr):
            r0, r1 = self._row_ranges[r]
            for c in range(grid.pc):
                c0, c1 = self._col_ranges[c]
                local = self.matrix.blocks[:, r0:r1, c0:c1]
                rank_spec = self.rank_specs[(r, c)]
                dev = (
                    SimulatedDevice(rank_spec, clock=SimClock())
                    if rank_spec is not None
                    else None
                )
                self.devices[(r, c)] = dev
                engine = FFTMatvec(
                    BlockTriangularToeplitz(local),
                    device=dev,
                    use_optimized_sbgemv=use_optimized_sbgemv,
                    workspace=use_workspace,
                    backend=self.backend,
                    reduction=reduction,
                    validate=validate,
                )
                engine.rank_label = grid.rank_of(r, c)
                self.engines[(r, c)] = engine
        self.validate = validate
        if validate:
            # Any defense mode extends to the wire: verify collective
            # payload digests at every receive, grid-wide (the silent
            # clones are armed below, once constructed).
            grid.set_payload_verification(True)
        # Grid-level arena: broadcast payload staging, per-rank receive
        # buffers and float64 input staging shared by the chunk loop and
        # the vector path (per-rank pipeline buffers live in each
        # engine's own arena).
        self.workspace: Optional[Workspace] = (
            Workspace(name="grid", backend=self.backend) if use_workspace else None
        )
        self.device = self.devices[(0, 0)]
        if spec is not None:
            # One-time spectrum setup happens on every rank concurrently;
            # the grid clock pays the slowest rank's setup once.
            setup = max(
                d.clock.phase_total("setup") for d in self.devices.values()
            )
            with grid.clock.phase("setup"):
                grid.clock.advance(setup)

        # Timed collectives (row 0 / col 0) vs silent clones for the
        # other rows/columns, which run concurrently with the timed ones.
        self._silent_row = SimCommunicator(
            grid.pc, net=grid.net, clock=None, span=grid.pc, name="row_silent",
            backend=self.backend,
        )
        col_span = (grid.pr - 1) * grid.pc + 1
        self._silent_col = SimCommunicator(
            grid.pr, net=grid.net, clock=None, span=col_span, name="col_silent",
            backend=self.backend,
        )
        if validate:
            self._silent_row.verify_payloads = True
            self._silent_col.verify_payloads = True
        # All columns' (rows') collectives run concurrently; the one with
        # the widest payload gates the wall, so that index is the timed
        # one.  Balanced ceil-splits put the extra elements first, making
        # this index 0 — the historical choice — but caller-supplied
        # irregular partitions may put the big part anywhere.
        self._timed_row_idx = max(
            range(grid.pr), key=lambda r: self._row_ranges[r][1] - self._row_ranges[r][0]
        )
        self._timed_col_idx = max(
            range(grid.pc), key=lambda c: self._col_ranges[c][1] - self._col_ranges[c][0]
        )
        self.max_block_k = validate_max_block_k(max_block_k)
        self.overlap = bool(overlap)
        self.last_timing: Optional[TimingReport] = None
        self.matvec_count = 0  # logical operator actions (k per block)
        self.matmat_count = 0  # blocked pipeline passes (one per chunk)

    # -- fault injection ------------------------------------------------------
    def install_failure_schedule(self, schedule) -> None:
        """Attach a :class:`~repro.comm.fault.FailureSchedule` to every
        communicator this engine drives: the grid's world/row/column
        comms *and* the silent clones the untimed rows/columns use, so
        the schedule's collective counter advances through the full
        deterministic SPMD sequence.  Pass ``None`` to disarm.
        """
        self.grid.install_failure_schedule(schedule)
        self._silent_row.install_failure_schedule(schedule)
        self._silent_col.install_failure_schedule(schedule)

    def install_corruption_schedule(self, schedule) -> None:
        """Attach a :class:`~repro.comm.fault.CorruptionSchedule` to the
        whole engine: every grid communicator (and the silent clones)
        counts its collectives as corruption events, and every rank
        engine counts its FFT/SBGEMM/IFFT device stages — one shared
        deterministic event sequence, exactly like
        :meth:`install_failure_schedule`.  Installing also arms payload
        digests and the per-engine abft checks, so every scheduled flip
        has a detector downstream.  Pass ``None`` to disarm injection
        (checks stay as configured by ``validate=``).
        """
        self.grid.install_corruption_schedule(schedule)
        self._silent_row.install_corruption_schedule(schedule)
        self._silent_col.install_corruption_schedule(schedule)
        for (r, c), engine in self.engines.items():
            engine.install_corruption_schedule(
                schedule, rank=self.grid.rank_of(r, c)
            )

    # -- partition introspection ---------------------------------------------
    @property
    def row_ranges(self) -> List[Tuple[int, int]]:
        """The sensor-axis partition: one ``(start, stop)`` per grid row."""
        return list(self._row_ranges)

    @property
    def col_ranges(self) -> List[Tuple[int, int]]:
        """The parameter-axis partition: one ``(start, stop)`` per grid column."""
        return list(self._col_ranges)

    def geometry_key(
        self, config: Union[None, str, PrecisionConfig] = None
    ) -> Tuple:
        """Stable, hashable fingerprint of the distributed geometry.

        Extends :meth:`FFTMatvec.geometry_key` with the grid extents:
        process-grid shape and the exact row/column partitions (two
        engines with equal keys run identical per-rank shapes and
        collectives).  The reduction mode is part of the key — a
        fast-mode and a pairwise-mode grid must never be conflated (the
        serving cache keys engines and coalesced batches on this).
        ``config`` folds a precision configuration in, as on the
        single-device engine.
        """
        specs = tuple(
            (rc, s.name if s is not None else None)
            for rc, s in sorted(self.rank_specs.items())
        )
        return (
            "ParallelFFTMatvec",
            self.nt,
            self.nd,
            self.nm,
            self.backend.name,
            (self.grid.pr, self.grid.pc),
            tuple(self._row_ranges),
            tuple(self._col_ranges),
            specs,
            self.reduction,
            str(PrecisionConfig.parse(config)) if config is not None else None,
        )

    # -- measurement hooks ---------------------------------------------------
    def rank_compute_report(self) -> Dict[Tuple[int, int], float]:
        """Per-rank compute seconds harvested from the private clocks.

        Returns ``{(row, col): seconds}`` — the cumulative five-phase
        compute time each rank's own device has charged (setup excluded).
        On a balanced homogeneous grid all ranks tie; irregular
        partitions or heterogeneous specs show genuine spread, and the
        spread *is* the skew the wall pays at every collective.  This is
        the measured input of :func:`repro.comm.balance.rebalance_rows`
        / :func:`~repro.comm.balance.rebalance_cols`.
        """
        if any(d is None for d in self.devices.values()):
            raise ReproError(
                "rank_compute_report requires per-rank devices — construct "
                "ParallelFFTMatvec with spec=... to measure compute"
            )
        return {
            rc: sum(dev.clock.phase_total(p) for p in _PHASES)
            for rc, dev in self.devices.items()
        }

    def workspace_report(self) -> Dict[str, object]:
        """Arena footprint across the grid (requires ``workspace=True``).

        Returns the grid-level arena's size plus, per rank, the engine
        arena's bytes/buffers and the rank DeviceAllocator's peak — the
        modeled persistent device footprint of the allocation-free hot
        path, a first-class capacity-planning field.
        """
        if self.workspace is None:
            raise ReproError(
                "workspace_report requires the engine to be constructed "
                "with workspace=True"
            )
        ranks: Dict[str, Dict[str, Optional[int]]] = {}
        for rc, engine in self.engines.items():
            ws = engine.workspace
            dev = self.devices[rc]
            assert ws is not None
            ranks[f"{rc[0]},{rc[1]}"] = {
                "arena_bytes": ws.nbytes,
                "arena_buffers": ws.buffer_count,
                "registered_bytes": ws.registered_bytes,
                "allocator_peak_bytes": (
                    dev.allocator.peak if dev is not None else None
                ),
            }
        rank_total = sum(
            e.workspace.nbytes for e in self.engines.values()  # type: ignore[union-attr]
        )
        return {
            "grid_arena_bytes": self.workspace.nbytes,
            "grid_arena_buffers": self.workspace.buffer_count,
            "rank_arenas": ranks,
            "total_arena_bytes": self.workspace.nbytes + rank_total,
        }

    # -- helpers ------------------------------------------------------------
    def _stage_payload(self, block: np.ndarray, prec, tag: str) -> np.ndarray:
        """Contiguous Phase-1 payload at the broadcast precision.

        The reference path re-``ascontiguousarray``s (and casts) per
        call; with the arena the strided block is copied-with-cast into
        a persistent buffer — same bytes, no allocation.
        """
        be = self.backend
        if self.workspace is None:
            return be.cast(be.ascontiguous(be.asarray(block)), prec)
        buf = self.workspace.buffer(tag, tuple(block.shape), real_dtype(prec))
        buf[...] = be.asarray(block)
        return buf

    def _as_input64(self, arr, tag: str):
        """Present a broadcast copy to the rank engines as float64."""
        be = self.backend
        if be.dtype_of(arr) == np.float64:
            return arr
        if self.workspace is None:
            return be.astype(be.asarray(arr), np.float64, copy=False)
        buf = self.workspace.buffer(tag, tuple(arr.shape), np.float64)
        buf[...] = arr
        return buf

    def _timed_col(self, c: int) -> SimCommunicator:
        return self.grid.col_comm(0) if c == self._timed_col_idx else self._silent_col

    def _timed_row(self, r: int) -> SimCommunicator:
        return self.grid.row_comm(0) if r == self._timed_row_idx else self._silent_row

    def _snapshot(self) -> Dict[str, float]:
        return {p: self.grid.clock.phase_total(p) for p in _REPORT_PHASES}

    def _record(
        self, before: Dict[str, float], label: str, wall: Optional[float] = None
    ) -> None:
        clock = self.grid.clock
        self.last_timing = TimingReport(
            phases={
                p: clock.phase_total(p) - before[p]
                for p in _REPORT_PHASES
                if clock.phase_total(p) - before[p] > 0
            },
            label=label,
            wall=wall,
        )

    def _rank_compute(
        self, run_rank: Callable[[int, int, FFTMatvec], np.ndarray]
    ) -> Tuple[Dict[Tuple[int, int], np.ndarray], Dict[str, float]]:
        """Run every rank's local pipeline; return partials + max-rank time.

        Each rank charges its private clock; the returned phase breakdown
        is the *slowest* rank's (per-rank skew — on a balanced partition
        every rank ties and this is exactly one rank's time, matching the
        old single-charge model bitwise).
        """
        partials: Dict[Tuple[int, int], np.ndarray] = {}
        slowest: Optional[Tuple[float, Dict[str, float]]] = None
        for (r, c), engine in self.engines.items():
            dev = self.devices[(r, c)]
            if dev is not None:
                before = {p: dev.clock.phase_total(p) for p in _PHASES}
            partials[(r, c)] = run_rank(r, c, engine)
            if dev is not None:
                deltas = {
                    p: dev.clock.phase_total(p) - before[p] for p in _PHASES
                }
                total = sum(deltas.values())
                if slowest is None or total > slowest[0]:
                    slowest = (total, deltas)
        return partials, (slowest[1] if slowest is not None else {})

    def _charge_compute(
        self, phases: Dict[str, float], stream: Optional[Stream] = None
    ) -> None:
        """Charge a per-phase compute breakdown onto a stream or the clock."""
        clock = self.grid.clock
        for p in _PHASES:
            t = phases.get(p, 0.0)
            if t <= 0:
                continue
            if stream is not None:
                stream.charge(t, phase=p)
            else:
                with clock.phase(p):
                    clock.advance(t)

    # -- forward ---------------------------------------------------------------
    def matvec(
        self, m: np.ndarray, config: Union[str, PrecisionConfig] = "ddddd"
    ) -> np.ndarray:
        """Compute ``d = F m`` across the grid; returns the global (Nt, Nd).

        A single matvec cannot overlap (phases 2–4 depend on the Phase-1
        broadcast), so the serial schedule applies; compute is charged as
        the max over ranks.  In pairwise mode the vector rides the
        width-1 blocked path — the same fixed contraction tree a wide
        panel's columns see, which is what makes blocked == looped
        bitwise.
        """
        if self.reduction == "pairwise":
            mm = self.matrix.check_input(m).astype(np.float64, copy=False)
            return self._matmat_impl(
                mm[:, :, None], config, None, adjoint=False, overlap=False
            )[:, :, 0]
        cfg = PrecisionConfig.parse(config)
        mm = self.matrix.check_input(m).astype(np.float64, copy=False)
        before = self._snapshot()
        with _apply_scope(self.workspace):
            # Phase 1 communication: broadcast each column's parameter
            # block down its pr ranks, in Phase 1's precision (comm
            # volume follows).
            col_blocks: Dict[int, np.ndarray] = {}
            for c in range(self.grid.pc):
                c0, c1 = self._col_ranges[c]
                payload = self._stage_payload(mm[:, c0:c1], cfg.pad, f"pay/c{c}")
                copies = self._timed_col(c).bcast(
                    payload, root=0, phase="pad", workspace=self.workspace,
                    tag=f"recv/c{c}", backend=self.backend,
                )
                col_blocks[c] = self._as_input64(copies[0], f"in64/c{c}")

            # Local five-phase pipelines on every rank; wall = max over
            # ranks.
            partials, compute = self._rank_compute(
                lambda r, c, engine: engine._pipeline(
                    col_blocks[c], cfg, adjoint=False, detach=False
                )
            )
            self._charge_compute(compute)

            # Phase 5 communication: tree-reduce each row's partial data
            # block over its pc ranks in Phase 5's precision.  The gather
            # target is fully overwritten, one row range at a time.
            out = np.empty((self.nt, self.nd))
            for r in range(self.grid.pr):
                r0, r1 = self._row_ranges[r]
                contribs = [
                    self.backend.cast(partials[(r, c)], cfg.unpad)
                    for c in range(self.grid.pc)
                ]
                reduced = self._timed_row(r).reduce(
                    contribs, root=0, precision=cfg.unpad, phase="unpad",
                    backend=self.backend,
                )
                out[:, r0:r1] = self.backend.from_device(reduced)

        self._record(before, f"{cfg} F ({self.grid.pr}x{self.grid.pc})")
        self.matvec_count += 1
        return out

    # -- adjoint ------------------------------------------------------------------
    def rmatvec(
        self, d: np.ndarray, config: Union[str, PrecisionConfig] = "ddddd"
    ) -> np.ndarray:
        """Compute ``m = F* d`` across the grid; returns the global (Nt, Nm)."""
        if self.reduction == "pairwise":
            dd = self.matrix.check_output(d).astype(np.float64, copy=False)
            return self._matmat_impl(
                dd[:, :, None], config, None, adjoint=True, overlap=False
            )[:, :, 0]
        cfg = PrecisionConfig.parse(config)
        dd = self.matrix.check_output(d).astype(np.float64, copy=False)
        before = self._snapshot()
        with _apply_scope(self.workspace):
            # Phase 1: broadcast each row's data block across pc ranks.
            row_blocks: Dict[int, np.ndarray] = {}
            for r in range(self.grid.pr):
                r0, r1 = self._row_ranges[r]
                payload = self._stage_payload(dd[:, r0:r1], cfg.pad, f"pay/r{r}")
                copies = self._timed_row(r).bcast(
                    payload, root=0, phase="pad", workspace=self.workspace,
                    tag=f"recv/r{r}", backend=self.backend,
                )
                row_blocks[r] = self._as_input64(copies[0], f"in64/r{r}")

            partials, compute = self._rank_compute(
                lambda r, c, engine: engine._pipeline(
                    row_blocks[r], cfg, adjoint=True, detach=False
                )
            )
            self._charge_compute(compute)

            # Phase 5: reduce each column's partial parameter block over
            # pr ranks.
            out = np.empty((self.nt, self.nm))
            for c in range(self.grid.pc):
                c0, c1 = self._col_ranges[c]
                contribs = [
                    self.backend.cast(partials[(r, c)], cfg.unpad)
                    for r in range(self.grid.pr)
                ]
                reduced = self._timed_col(c).reduce(
                    contribs, root=0, precision=cfg.unpad, phase="unpad",
                    backend=self.backend,
                )
                out[:, c0:c1] = self.backend.from_device(reduced)

        self._record(before, f"{cfg} F* ({self.grid.pr}x{self.grid.pc})")
        self.matvec_count += 1
        return out

    # -- blocked multi-RHS path across the grid ------------------------------
    def _check_block(self, V: np.ndarray, nx: int, what: str) -> np.ndarray:
        """Validate/reshape a multi-RHS block to (Nt, nx, k)."""
        return check_block(V, self.nt, nx, what)

    def _chunk_bcast(
        self,
        chunk: np.ndarray,
        cfg: PrecisionConfig,
        adjoint: bool,
        stream: Optional[Stream],
        slot: int = 0,
    ) -> Tuple[Dict[int, np.ndarray], float]:
        """Phase 1 communication for one chunk: ONE batched broadcast per
        grid column (row for the adjoint) carries the whole
        ``(Nt, n_local, kc)`` block in Phase 1's precision — volume scales
        by kc, the log2 latency tree is paid once for the chunk.

        With the arena, payload and receive buffers are persistent and
        keyed by ``slot`` — the overlapped schedule ping-pongs between
        two slots (``i % 2``) so the prefetched chunk ``i + 1`` never
        shares buffers with the chunk ``i`` payload still in flight,
        while chunk ``i + 2`` reuses chunk ``i``'s.  Returns the
        per-column (per-row) broadcast copies and the modeled time
        charged (onto ``stream`` when given, else the grid clock).
        """
        in_ranges = self._row_ranges if adjoint else self._col_ranges
        in_comm = self._timed_row if adjoint else self._timed_col
        n_in = self.grid.pr if adjoint else self.grid.pc
        axis = "r" if adjoint else "c"
        t0 = stream.cursor if stream is not None else self.grid.clock.now
        in_blocks: Dict[int, np.ndarray] = {}
        for i in range(n_in):
            i0, i1 = in_ranges[i]
            payload = self._stage_payload(
                chunk[:, i0:i1, :], cfg.pad, f"pay[{slot}]/{axis}{i}"
            )
            cobj = in_comm(i)
            with cobj.on_stream(stream if cobj.clock is not None else None):
                copies = cobj.bcast(
                    payload,
                    root=0,
                    phase="pad",
                    workspace=self.workspace,
                    tag=f"recv[{slot}]/{axis}{i}",
                    backend=self.backend,
                )
            in_blocks[i] = self._as_input64(copies[0], f"in64[{slot}]/{axis}{i}")
        t1 = stream.cursor if stream is not None else self.grid.clock.now
        return in_blocks, t1 - t0

    def _chunk_compute(
        self,
        in_blocks: Dict[int, np.ndarray],
        cfg: PrecisionConfig,
        adjoint: bool,
        stream: Optional[Stream],
        deterministic: bool = False,
    ) -> Dict[Tuple[int, int], np.ndarray]:
        """Per-rank blocked pipelines for one chunk: one pad / batched FFT
        / SBGEMM / IFFT / unpad pass on every rank; the max-rank time is
        charged onto ``stream`` (or the grid clock).  ``deterministic``
        selects each rank's per-column-GEMV Phase 3."""
        partials, compute = self._rank_compute(
            lambda r, c, engine: engine._pipeline_block(
                in_blocks[r if adjoint else c],
                cfg,
                adjoint=adjoint,
                detach=False,
                deterministic=deterministic,
            )
        )
        self._charge_compute(compute, stream=stream)
        return partials

    def _chunk_reduce(
        self,
        partials: Dict[Tuple[int, int], np.ndarray],
        out: np.ndarray,
        cfg: PrecisionConfig,
        adjoint: bool,
        stream: Optional[Stream],
    ) -> None:
        """Phase 5 communication for one chunk: ONE batched tree-reduce
        per grid row (column for the adjoint); the eps5 * log2
        accumulation applies elementwise to every column of the block.
        The reduced rows land directly in ``out`` — the caller's
        ``(Nt, ny, kc)`` output view — with no intermediate gather
        buffer."""
        out_ranges = self._col_ranges if adjoint else self._row_ranges
        out_comm = self._timed_col if adjoint else self._timed_row
        n_out = self.grid.pc if adjoint else self.grid.pr
        for o in range(n_out):
            o0, o1 = out_ranges[o]
            if adjoint:
                contribs = [
                    self.backend.cast(partials[(r, o)], cfg.unpad)
                    for r in range(self.grid.pr)
                ]
            else:
                contribs = [
                    self.backend.cast(partials[(o, c)], cfg.unpad)
                    for c in range(self.grid.pc)
                ]
            cobj = out_comm(o)
            with cobj.on_stream(stream if cobj.clock is not None else None):
                reduced = cobj.reduce(
                    contribs, root=0, precision=cfg.unpad, phase="unpad",
                    backend=self.backend,
                )
            out[:, o0:o1, :] = self.backend.from_device(reduced)

    def _chunk_compute_pairwise(
        self,
        in_blocks: Dict[int, np.ndarray],
        cfg: PrecisionConfig,
        adjoint: bool,
        stream: Optional[Stream],
    ) -> Dict[Tuple[int, int], Dict[Tuple[int, int], np.ndarray]]:
        """Pairwise front half for one chunk: every rank runs pad / FFT /
        reorder and computes Phase-3 partial panels for the canonical
        tree segments of its *global* contraction range.  No IFFT/unpad
        here — the epilogue runs once per output part after the
        frequency-domain segment reduce.  Max-rank time is charged onto
        ``stream`` (or the grid clock)."""
        in_ranges = self._row_ranges if adjoint else self._col_ranges
        n_global = self.nd if adjoint else self.nm
        tables, compute = self._rank_compute(
            lambda r, c, engine: engine._pipeline_block_pairwise_segments(
                in_blocks[r if adjoint else c],
                cfg,
                adjoint=adjoint,
                start=in_ranges[r if adjoint else c][0],
                n_global=n_global,
            )
        )
        self._charge_compute(compute, stream=stream)
        return tables

    def _chunk_reduce_pairwise(
        self,
        tables: Dict[Tuple[int, int], Dict[Tuple[int, int], np.ndarray]],
        out: np.ndarray,
        cfg: PrecisionConfig,
        adjoint: bool,
        stream: Optional[Stream],
    ) -> None:
        """Pairwise Phase 5 for one chunk: ONE frequency-domain segment
        reduce per grid row (column for the adjoint) merges every rank's
        canonical-segment panels through the fixed tree, then the output
        part's root rank runs the IFFT/unpad epilogue once on the merged
        panel.  All root epilogues run concurrently on distinct devices,
        so the max is charged (onto ``stream``, where it overlaps the
        next chunk's front compute like a second device queue)."""
        out_ranges = self._col_ranges if adjoint else self._row_ranges
        out_comm = self._timed_col if adjoint else self._timed_row
        n_out = self.grid.pc if adjoint else self.grid.pr
        n_global = self.nd if adjoint else self.nm
        slowest: Optional[Tuple[float, Dict[str, float]]] = None
        for o in range(n_out):
            o0, o1 = out_ranges[o]
            if adjoint:
                contribs = [tables[(r, o)] for r in range(self.grid.pr)]
                root_rc = (0, o)
            else:
                contribs = [tables[(o, c)] for c in range(self.grid.pc)]
                root_rc = (o, 0)
            cobj = out_comm(o)
            with cobj.on_stream(stream if cobj.clock is not None else None):
                merged = cobj.reduce_segments(
                    contribs, n_global, root=0, phase="unpad",
                    backend=self.backend,
                )
            engine = self.engines[root_rc]
            dev = self.devices[root_rc]
            if dev is not None:
                before = {p: dev.clock.phase_total(p) for p in _PHASES}
            res = engine._pipeline_block_finish(merged, cfg, adjoint=adjoint)
            if dev is not None:
                deltas = {
                    p: dev.clock.phase_total(p) - before[p] for p in _PHASES
                }
                total = sum(deltas.values())
                if slowest is None or total > slowest[0]:
                    slowest = (total, deltas)
            out[:, o0:o1, :] = res
        if slowest is not None:
            self._charge_compute(slowest[1], stream=stream)

    def _matmat_serial(
        self,
        VV: np.ndarray,
        out: np.ndarray,
        ranges: List[Tuple[int, int]],
        cfg: PrecisionConfig,
        adjoint: bool,
        deterministic: bool = False,
    ) -> None:
        """Serial charge: broadcast → compute → reduce per chunk, in
        program order on the grid clock (the pre-timeline model)."""
        pairwise = self.reduction == "pairwise"
        for i, (j0, j1) in enumerate(ranges):
            chunk = VV[:, :, j0:j1]
            in_blocks, _ = self._chunk_bcast(
                chunk, cfg, adjoint, stream=None, slot=i % 2
            )
            if pairwise:
                tables = self._chunk_compute_pairwise(
                    in_blocks, cfg, adjoint, stream=None
                )
                self._chunk_reduce_pairwise(
                    tables, out[:, :, j0:j1], cfg, adjoint, stream=None
                )
                continue
            partials = self._chunk_compute(
                in_blocks, cfg, adjoint, stream=None, deterministic=deterministic
            )
            self._chunk_reduce(
                partials, out[:, :, j0:j1], cfg, adjoint, stream=None
            )

    def _matmat_overlapped(
        self,
        VV: np.ndarray,
        out: np.ndarray,
        ranges: List[Tuple[int, int]],
        cfg: PrecisionConfig,
        adjoint: bool,
        deterministic: bool = False,
        host: Optional[HostModel] = None,
        overlap_host: bool = True,
    ) -> None:
        """Double-buffered chunk schedule on the event timeline.

        Comm stream: bcast(0), bcast(1), reduce(0), bcast(2), reduce(1),
        …, reduce(n-1) — each chunk's broadcast is *prefetched* while the
        previous chunk computes, and each reduce waits on its chunk's
        compute event.  Compute stream: chunk i waits on bcast(i)'s
        event.  Wall time (realized at the final sync) is the critical
        path; the numerics are identical to the serial schedule.

        With a fused ``host`` model a third stream carries the
        dense-assembly host routines: chunk i's generate
        (``k_i * gen_time``) is charged before — and its event gates —
        chunk i's broadcast, and chunk i's save (``k_i * save_time``)
        waits on chunk i's reduce event.  The host stream is in order,
        so generate(i+1) precedes save(i) (the classic double-buffer
        slot) and save(i) precedes generate(i+2) — two buffers, neither
        side runs further ahead.  Host, device and network are then
        fully concurrent; the wall is the max of the three streams'
        critical paths.  ``overlap_host=False`` callers run this
        two-stream schedule unchanged and charge the host total
        serially afterwards (see :meth:`_matmat_impl`).
        """
        pairwise = self.reduction == "pairwise"
        tl = Timeline(self.grid.clock)
        comm_s = tl.stream("comm")
        comp_s = tl.stream("compute")
        host_s = (
            tl.stream("host") if host is not None and overlap_host else None
        )
        widths = [j1 - j0 for j0, j1 in ranges]
        exposed = self.grid.net.exposed_fraction()

        if host_s is not None:
            # Prologue: generate chunk 0's inputs; the broadcast cannot
            # leave before the host has produced them.
            host_s.charge(widths[0] * host.gen_time, phase="host")
            comm_s.wait(host_s.record("gen[0]"))
        in_blocks, _ = self._chunk_bcast(
            VV[:, :, ranges[0][0] : ranges[0][1]], cfg, adjoint, stream=comm_s, slot=0
        )
        ev_bcast = comm_s.record("bcast[0]")
        reduce_tax = 0.0  # exposed share of the previous chunk's reduce
        for i, (j0, j1) in enumerate(ranges):
            comp_s.wait(ev_bcast)
            if reduce_tax > 0.0:
                # Imperfect overlap: the previous chunk's reduce steals
                # link/engine bandwidth from this chunk's compute.
                comp_s.charge(reduce_tax, phase="unpad")
            if pairwise:
                partials = self._chunk_compute_pairwise(
                    in_blocks, cfg, adjoint, stream=comp_s
                )
            else:
                partials = self._chunk_compute(
                    in_blocks, cfg, adjoint, stream=comp_s,
                    deterministic=deterministic,
                )
            if i + 1 < len(ranges):
                n0, n1 = ranges[i + 1]
                if host_s is not None:
                    # Generate chunk i+1 while chunk i computes; the
                    # prefetched broadcast waits on it.
                    host_s.charge(widths[i + 1] * host.gen_time, phase="host")
                    comm_s.wait(host_s.record(f"gen[{i + 1}]"))
                # Prefetch into the other ping-pong slot: chunk i's
                # payload buffers stay live while chunk i+1's broadcast
                # is in flight, exactly as on the real machine.
                in_blocks, t_next = self._chunk_bcast(
                    VV[:, :, n0:n1], cfg, adjoint, stream=comm_s, slot=(i + 1) % 2
                )
                ev_bcast = comm_s.record(f"bcast[{i + 1}]")
                if exposed > 0.0:
                    # ... as does the prefetched broadcast.
                    comp_s.charge(exposed * t_next, phase="pad")
            ev_compute = comp_s.record(f"compute[{i}]")
            comm_s.wait(ev_compute)
            c0 = comm_s.cursor
            if pairwise:
                self._chunk_reduce_pairwise(
                    partials, out[:, :, j0:j1], cfg, adjoint, stream=comm_s
                )
            else:
                self._chunk_reduce(
                    partials, out[:, :, j0:j1], cfg, adjoint, stream=comm_s
                )
            # This reduce overlaps the *next* chunk's compute (if any).
            reduce_tax = (
                exposed * (comm_s.cursor - c0) if i + 1 < len(ranges) else 0.0
            )
            if host_s is not None:
                # Save chunk i's results once its reduce has delivered
                # them; overlaps chunk i+1's compute and collectives.
                host_s.wait(comm_s.record(f"reduce[{i}]"))
                host_s.charge(widths[i] * host.save_time, phase="host")
        tl.sync()

    def _matmat_impl(
        self,
        V: np.ndarray,
        config: Union[str, PrecisionConfig],
        max_block_k: Optional[int],
        adjoint: bool,
        overlap: Optional[bool],
        out: Optional[np.ndarray] = None,
        deterministic: bool = False,
        overlap_host: Optional[bool] = None,
    ) -> np.ndarray:
        cfg = PrecisionConfig.parse(config)
        nx = self.nd if adjoint else self.nm
        VV = self._check_block(V, nx, "data" if adjoint else "parameter")
        k = VV.shape[2]
        if max_block_k is None:
            max_block_k = self.max_block_k
        else:
            max_block_k = validate_max_block_k(max_block_k)
        ranges = chunk_ranges(k, max_block_k)
        use_overlap = self.overlap if overlap is None else bool(overlap)
        host = self.host
        fuse_host = (
            self.overlap_host if overlap_host is None else bool(overlap_host)
        )

        before = self._snapshot()
        t_start = self.grid.clock.now
        ny = self.nm if adjoint else self.nd
        out = check_out_buffer(out, (self.nt, ny, k))
        if out is None:
            out = np.empty((self.nt, ny, k))
        with _apply_scope(self.workspace):
            if use_overlap:
                self._matmat_overlapped(
                    VV, out, ranges, cfg, adjoint, deterministic=deterministic,
                    host=host, overlap_host=fuse_host,
                )
            else:
                self._matmat_serial(
                    VV, out, ranges, cfg, adjoint, deterministic=deterministic
                )
            if host is not None and not (use_overlap and fuse_host):
                # Unfused host charge: the generate/save total rides
                # serially on top of the device/network schedule — the
                # two-stream baseline the three-stream fusion beats.
                with self.grid.clock.phase("host"):
                    self.grid.clock.advance(k * host.per_vector)
        name = "F*" if adjoint else "F"
        sched = "overlap" if use_overlap else "serial"
        if host is not None:
            sched += "+host3" if use_overlap and fuse_host else "+host"
        self._record(
            before,
            f"{cfg} {name}[k={k}/{len(ranges)} chunk(s), {sched}"
            f"{', det' if deterministic else ''}"
            f"{', pairwise' if self.reduction == 'pairwise' else ''}] "
            f"({self.grid.pr}x{self.grid.pc})",
            wall=self.grid.clock.now - t_start,
        )
        self.matvec_count += k
        self.matmat_count += len(ranges)
        return out

    def matmat(
        self,
        M: np.ndarray,
        config: Union[str, PrecisionConfig] = "ddddd",
        max_block_k: Optional[int] = None,
        overlap: Optional[bool] = None,
        out: Optional[np.ndarray] = None,
        deterministic: bool = False,
        overlap_host: Optional[bool] = None,
    ) -> np.ndarray:
        """Compute ``D = F M`` for k parameter vectors across the grid.

        ``M`` is ``(Nt, Nm, k)`` (or scipy-style ``(Nt*Nm, k)``); the
        result is ``(Nt, Nd, k)``.  Each chunk of at most ``max_block_k``
        columns (default: the constructor's knob; None = one chunk) pays
        one column-broadcast and one row-reduce — ``ceil(k/max_block_k)``
        collectives total instead of ``k``.  ``overlap`` selects the
        charged schedule (None = constructor default): the overlapped
        schedule prefetches each chunk's broadcast behind the previous
        chunk's compute, the serial one charges them back to back;
        results are bitwise identical either way.  ``matvec_count``
        advances by ``k`` (logical actions), ``matmat_count`` by the
        chunk count; ``last_timing.wall`` holds the schedule's critical
        path, ``last_timing.phases`` the work charged per phase.
        ``out`` (``(Nt, Nd, k)`` float64, C-contiguous) receives the
        result in place — with ``workspace=True`` repeated applies are
        allocation-free at steady state.  ``deterministic=True`` runs
        every rank's Phase 3 as per-column GEMVs so column ``j`` is
        **bitwise** ``matvec(M[:, :, j])`` (see
        :meth:`FFTMatvec.matmat`); the elementwise tree-reduce already
        preserves per-column bits, so the guarantee survives the grid.
        With ``reduction="pairwise"`` that per-column guarantee holds
        unconditionally *and* the result is bitwise-invariant to the
        grid partition and chunking (``deterministic`` is then
        redundant and ignored).  A constructor-fused ``host`` model
        charges each chunk's generate/save on the third stream;
        ``overlap_host`` (None = constructor default) selects fused vs
        serial host charging per call.
        """
        return self._matmat_impl(
            M, config, max_block_k, adjoint=False, overlap=overlap, out=out,
            deterministic=deterministic, overlap_host=overlap_host,
        )

    def rmatmat(
        self,
        D: np.ndarray,
        config: Union[str, PrecisionConfig] = "ddddd",
        max_block_k: Optional[int] = None,
        overlap: Optional[bool] = None,
        out: Optional[np.ndarray] = None,
        deterministic: bool = False,
        overlap_host: Optional[bool] = None,
    ) -> np.ndarray:
        """Compute ``M = F* D`` for k data vectors across the grid.

        The blocked adjoint: one row-broadcast and one column-reduce per
        chunk (the column reduce crosses machine groups, so hiding its
        latency behind compute matters most).  See :meth:`matmat`,
        including the ``deterministic`` / ``reduction="pairwise"``
        bitwise guarantees and the fused ``host`` stream.
        """
        return self._matmat_impl(
            D, config, max_block_k, adjoint=True, overlap=overlap, out=out,
            deterministic=deterministic, overlap_host=overlap_host,
        )
