"""Posterior uncertainty quantification via low-rank Hessian methods.

For the linear-Gaussian problem the posterior covariance is::

    Gamma_post = Gp^{1/2} (I + Ht)^{-1} Gp^{T/2},
    Ht = Gp^{T/2} F* Gn^{-1} F Gp^{1/2}   (prior-preconditioned Hessian)

``Ht`` typically has rapidly decaying spectrum (the data inform only a
few directions), so a rank-r randomized eigendecomposition
``Ht ~= V diag(lam) V^T`` gives, by Sherman-Morrison-Woodbury::

    Gamma_post = Gp - Gp^{1/2} V diag(lam/(1+lam)) V^T Gp^{T/2}

Each ``Ht`` action costs one F and one F* FFTMatvec — the operation the
paper accelerates — so the precision configuration threads through.
This reproduces the UQ workflow of the paper's references [21, 22]
(posterior variance and expected information gain from the same
eigenvalues used by the OED loop).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.core.precision import PrecisionConfig
from repro.inverse.bayes import LinearBayesianProblem
from repro.util.blocking import chunk_ranges, validate_max_block_k
from repro.util.checkpoint import CheckpointError, CheckpointStore, state_fingerprint
from repro.util.validation import ReproError, check_positive_int

__all__ = ["LowRankPosterior", "randomized_eig"]


def randomized_eig(
    operator,
    n: int,
    rank: int,
    oversample: int = 10,
    power_iters: int = 1,
    rng: Optional[np.random.Generator] = None,
    block_operator=None,
    max_block_k: Optional[int] = None,
    store: Optional[CheckpointStore] = None,
    checkpoint_key: str = "randomized-eig",
    fingerprint: Optional[str] = None,
    resume: bool = False,
):
    """Randomized symmetric eigendecomposition of a PSD operator.

    ``operator`` maps (n,) -> (n,); returns (eigenvalues desc, vectors)
    of the best rank-``rank`` approximation (Halko-Martinsson-Tropp with
    optional power iterations for sharper decay separation).

    ``block_operator``, when given, maps an (n, j) matrix to the (n, j)
    matrix of column-wise operator actions in *one* call; the sketch,
    power iterations and projection then each cost a single blocked
    application (FFTMatvec's multi-RHS pipeline) instead of j vector
    actions.  ``operator`` may be None in that case.

    ``max_block_k`` chunks every blocked application through
    :func:`repro.util.blocking.chunk_ranges` — ``ceil(j / max_block_k)``
    calls of at most ``max_block_k`` columns each — bounding the
    engine-side workspace exactly like the grid engine's knob (None =
    one full-width block, the historical behaviour).  Chunk boundaries
    only regroup GEMM panels, so results match the full-width block to
    rounding.

    With a ``store`` the sketch and every power iteration checkpoint the
    working block ``Y`` (the expensive state — each stage costs one
    blocked Hessian application); ``resume=True`` loads the latest
    snapshot under ``checkpoint_key`` (validated against
    ``fingerprint``) and replays only the remaining stages.  Each stage
    picks up the exact saved bits and runs the same operations, so a
    resumed decomposition equals the uninterrupted one bitwise when the
    operator is deterministic.  The final projection is not separately
    checkpointed — losing it replays one stage from the last snapshot.
    """
    check_positive_int(n, "n")
    check_positive_int(rank, "rank")
    if rank > n:
        raise ReproError(f"rank {rank} exceeds dimension {n}")
    if operator is None and block_operator is None:
        raise ReproError("need operator or block_operator")
    max_block_k = validate_max_block_k(max_block_k)
    rng = rng if rng is not None else np.random.default_rng(0)
    k = min(n, rank + max(oversample, 0))

    if block_operator is not None:
        if max_block_k is None:
            apply_mat = block_operator
        else:
            def apply_mat(M: np.ndarray) -> np.ndarray:
                out = np.empty_like(M, dtype=np.float64)
                for j0, j1 in chunk_ranges(M.shape[1], max_block_k):
                    out[:, j0:j1] = block_operator(M[:, j0:j1])
                return out
    else:
        def apply_mat(M: np.ndarray) -> np.ndarray:
            return np.column_stack([operator(M[:, j]) for j in range(M.shape[1])])

    fp = fingerprint if fingerprint is not None else "unkeyed"
    applies_done = 0
    Y: Optional[np.ndarray] = None
    if store is not None and resume and checkpoint_key in store:
        snap = store.load(
            checkpoint_key,
            expect_fingerprint=fingerprint if fingerprint is not None else None,
        )
        if snap.meta.get("n") != n or snap.meta.get("k") != k:
            raise CheckpointError(
                f"checkpoint {checkpoint_key!r} sketched ({snap.meta.get('n')}, "
                f"{snap.meta.get('k')}), caller wants ({n}, {k})"
            )
        Y = snap.arrays["Y"]
        applies_done = int(snap.meta["applies_done"])

    def _save_stage() -> None:
        if store is not None:
            store.save(
                checkpoint_key,
                {"Y": Y},
                fingerprint=fp,
                meta={"n": n, "k": k, "applies_done": applies_done},
            )

    if applies_done == 0:
        omega = rng.standard_normal((n, k))
        Y = apply_mat(omega)
        applies_done = 1
        _save_stage()
    total_stages = 1 + max(power_iters, 0)
    while applies_done < total_stages:
        Q, _ = np.linalg.qr(Y)
        Y = apply_mat(Q)
        applies_done += 1
        _save_stage()
    Q, _ = np.linalg.qr(Y)
    T = Q.T @ apply_mat(Q)
    T = 0.5 * (T + T.T)
    lam, S = np.linalg.eigh(T)
    order = np.argsort(lam)[::-1][:rank]
    return np.maximum(lam[order], 0.0), Q @ S[:, order]


@dataclass
class LowRankPosterior:
    """Rank-r posterior representation built from FFTMatvec actions.

    Attributes
    ----------
    eigenvalues:
        Eigenvalues of the prior-preconditioned data-misfit Hessian,
        descending, length r.
    eigenvectors:
        Corresponding orthonormal vectors, shape (nt*nm, r), in the
        prior-preconditioned coordinates.
    """

    problem: LinearBayesianProblem
    eigenvalues: np.ndarray
    eigenvectors: np.ndarray
    config: str
    hessian_actions: int

    # -- construction ---------------------------------------------------------
    @classmethod
    def compute(
        cls,
        problem: LinearBayesianProblem,
        rank: int,
        config: Union[str, PrecisionConfig] = "ddddd",
        oversample: int = 10,
        power_iters: int = 1,
        rng: Optional[np.random.Generator] = None,
        blocked: bool = True,
        max_block_k: Optional[int] = None,
        store: Optional[CheckpointStore] = None,
        checkpoint_key: str = "posterior-eig",
        resume: bool = False,
    ) -> "LowRankPosterior":
        """Randomized eigendecomposition of Ht with FFT matvec actions.

        With ``blocked`` (the default) every sketch/power/projection
        stage applies Ht to all probe vectors through *one*
        ``matmat``/``rmatmat`` pipeline pass; ``blocked=False`` keeps
        the historical one-vector-at-a-time path (same numbers, k times
        the pipeline overhead).  ``max_block_k`` chunks each blocked
        stage into ``ceil(width / max_block_k)`` passes to bound the
        engine workspace (matches the grid engine's knob).

        With a ``store`` each eig stage checkpoints under
        ``checkpoint_key``, fingerprinted by the p2o kernel, noise level
        and precision config — resuming against a *different* problem
        raises a typed error instead of silently converging to the wrong
        posterior.  ``resume=True`` continues from the latest snapshot;
        ``hessian_actions`` then counts only the post-resume actions.
        """
        cfg = PrecisionConfig.parse(config)
        nt, nm = problem.p2o.nt, problem.p2o.nm
        n = nt * nm
        counter = {"n": 0}

        def ht_action(v: np.ndarray) -> np.ndarray:
            counter["n"] += 1
            z = v.reshape(nt, nm)
            w = problem.prior.apply_sqrt(z)
            fw = problem.p2o.apply(w, config=cfg) / problem.noise_std**2
            hw = problem.p2o.applyT(fw, config=cfg)
            return problem.prior.apply_sqrt_t(hw).ravel()

        def ht_block_action(M: np.ndarray) -> np.ndarray:
            j = M.shape[1]
            counter["n"] += j
            # Column i of M is the flat (nt, nm) field i, so the (n, j)
            # matrix *is* the (nt, nm, j) block; prior and p2o actions
            # are all single blocked calls.
            W = problem.prior.apply_sqrt_block(M.reshape(nt, nm, j))
            FW = problem.p2o.apply_block(W, config=cfg) / problem.noise_std**2
            HW = problem.p2o.applyT_block(FW, config=cfg)
            return problem.prior.apply_sqrt_t_block(HW).reshape(n, j)

        fingerprint = state_fingerprint(
            problem.p2o.matrix.blocks, float(problem.noise_std), str(cfg)
        )
        lam, V = randomized_eig(
            None if blocked else ht_action,
            n,
            rank,
            oversample=oversample,
            power_iters=power_iters,
            rng=rng,
            block_operator=ht_block_action if blocked else None,
            max_block_k=max_block_k if blocked else None,
            store=store,
            checkpoint_key=checkpoint_key,
            fingerprint=fingerprint,
            resume=resume,
        )
        return cls(
            problem=problem,
            eigenvalues=lam,
            eigenvectors=V,
            config=str(cfg),
            hessian_actions=counter["n"],
        )

    # -- queries ---------------------------------------------------------------
    @property
    def rank(self) -> int:
        return len(self.eigenvalues)

    def information_gain(self) -> float:
        """Expected information gain 0.5 * sum log(1 + lam_i) — the same
        quantity the OED loop maximizes."""
        return 0.5 * float(np.sum(np.log1p(self.eigenvalues)))

    def pointwise_variance(self) -> np.ndarray:
        """Posterior variance field, shape (nt, nm).

        prior variance minus the low-rank correction's diagonal.
        """
        nt, nm = self.problem.p2o.nt, self.problem.p2o.nm
        prior_var = self.problem.prior.variance_diag()
        weights = self.eigenvalues / (1.0 + self.eigenvalues)
        # rows of Gp^{1/2} V: apply the sqrt factor to each eigenvector
        corr = np.zeros(nt * nm)
        for j in range(self.rank):
            col = self.problem.prior.apply_sqrt(
                self.eigenvectors[:, j].reshape(nt, nm)
            ).ravel()
            corr += weights[j] * col**2
        return prior_var - corr.reshape(nt, nm)

    def sample(
        self,
        rng: Optional[np.random.Generator] = None,
        n_samples: Optional[int] = None,
        max_block_k: Optional[int] = None,
    ) -> np.ndarray:
        """Draw zero-mean posterior samples (add the MAP point for full
        posterior draws).

        Uses the exact low-rank square root:
        Gp^{1/2} (I + V diag(1/sqrt(1+lam) - 1) V^T) z  with z ~ N(0, I).

        With ``n_samples=None`` one (nt, nm) draw is returned (historical
        behaviour); with ``n_samples=k`` the k draws are generated as a
        (nt, nm, k) block — the low-rank correction is a matrix-matrix
        product over the draws.  ``max_block_k`` processes the draws in
        chunks of at most that many columns (``ceil(k / max_block_k)``
        correction + prior-sqrt passes), bounding the workspace without
        changing the random stream: all k standard-normal draws are
        generated up front, chunking only regroups the GEMM panels.
        """
        rng = rng if rng is not None else np.random.default_rng()
        nt, nm = self.problem.p2o.nt, self.problem.p2o.nm
        single = n_samples is None
        k = 1 if single else int(n_samples)
        if k < 1:
            raise ReproError(f"n_samples must be >= 1, got {n_samples}")
        max_block_k = validate_max_block_k(max_block_k)
        Z = rng.standard_normal((nt * nm, k))
        scale = 1.0 / np.sqrt(1.0 + self.eigenvalues) - 1.0
        out = np.empty((nt, nm, k))
        for j0, j1 in chunk_ranges(k, max_block_k):
            Zc = Z[:, j0:j1]
            Zc = Zc + self.eigenvectors @ (
                scale[:, None] * (self.eigenvectors.T @ Zc)
            )
            out[:, :, j0:j1] = self.problem.prior.apply_sqrt_block(
                Zc.reshape(nt, nm, j1 - j0)
            )
        return out[:, :, 0] if single else out

    def posterior_covariance_action(self, m: np.ndarray) -> np.ndarray:
        """Gamma_post applied to a (nt, nm) field via the low-rank formula."""
        nt, nm = self.problem.p2o.nt, self.problem.p2o.nm
        a = np.asarray(m, dtype=np.float64)
        if a.shape != (nt, nm):
            raise ReproError(f"field must be ({nt},{nm}), got {a.shape}")
        w = self.problem.prior.apply_sqrt_t(a).ravel()
        weights = self.eigenvalues / (1.0 + self.eigenvalues)
        w = w - self.eigenvectors @ (weights * (self.eigenvectors.T @ w))
        return self.problem.prior.apply_sqrt(w.reshape(nt, nm))
