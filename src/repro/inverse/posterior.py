"""Posterior uncertainty quantification via low-rank Hessian methods.

For the linear-Gaussian problem the posterior covariance is::

    Gamma_post = Gp^{1/2} (I + Ht)^{-1} Gp^{T/2},
    Ht = Gp^{T/2} F* Gn^{-1} F Gp^{1/2}   (prior-preconditioned Hessian)

``Ht`` typically has rapidly decaying spectrum (the data inform only a
few directions), so a rank-r randomized eigendecomposition
``Ht ~= V diag(lam) V^T`` gives, by Sherman-Morrison-Woodbury::

    Gamma_post = Gp - Gp^{1/2} V diag(lam/(1+lam)) V^T Gp^{T/2}

Each ``Ht`` action costs one F and one F* FFTMatvec — the operation the
paper accelerates — so the precision configuration threads through.
This reproduces the UQ workflow of the paper's references [21, 22]
(posterior variance and expected information gain from the same
eigenvalues used by the OED loop).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.core.precision import PrecisionConfig
from repro.inverse.bayes import LinearBayesianProblem
from repro.util.validation import ReproError, check_positive_int

__all__ = ["LowRankPosterior", "randomized_eig"]


def randomized_eig(
    operator,
    n: int,
    rank: int,
    oversample: int = 10,
    power_iters: int = 1,
    rng: Optional[np.random.Generator] = None,
):
    """Randomized symmetric eigendecomposition of a PSD operator.

    ``operator`` maps (n,) -> (n,); returns (eigenvalues desc, vectors)
    of the best rank-``rank`` approximation (Halko-Martinsson-Tropp with
    optional power iterations for sharper decay separation).
    """
    check_positive_int(n, "n")
    check_positive_int(rank, "rank")
    if rank > n:
        raise ReproError(f"rank {rank} exceeds dimension {n}")
    rng = rng if rng is not None else np.random.default_rng(0)
    k = min(n, rank + max(oversample, 0))

    omega = rng.standard_normal((n, k))
    Y = np.column_stack([operator(omega[:, j]) for j in range(k)])
    for _ in range(max(power_iters, 0)):
        Q, _ = np.linalg.qr(Y)
        Y = np.column_stack([operator(Q[:, j]) for j in range(k)])
    Q, _ = np.linalg.qr(Y)
    T = Q.T @ np.column_stack([operator(Q[:, j]) for j in range(k)])
    T = 0.5 * (T + T.T)
    lam, S = np.linalg.eigh(T)
    order = np.argsort(lam)[::-1][:rank]
    return np.maximum(lam[order], 0.0), Q @ S[:, order]


@dataclass
class LowRankPosterior:
    """Rank-r posterior representation built from FFTMatvec actions.

    Attributes
    ----------
    eigenvalues:
        Eigenvalues of the prior-preconditioned data-misfit Hessian,
        descending, length r.
    eigenvectors:
        Corresponding orthonormal vectors, shape (nt*nm, r), in the
        prior-preconditioned coordinates.
    """

    problem: LinearBayesianProblem
    eigenvalues: np.ndarray
    eigenvectors: np.ndarray
    config: str
    hessian_actions: int

    # -- construction ---------------------------------------------------------
    @classmethod
    def compute(
        cls,
        problem: LinearBayesianProblem,
        rank: int,
        config: Union[str, PrecisionConfig] = "ddddd",
        oversample: int = 10,
        power_iters: int = 1,
        rng: Optional[np.random.Generator] = None,
    ) -> "LowRankPosterior":
        """Randomized eigendecomposition of Ht with FFT matvec actions."""
        cfg = PrecisionConfig.parse(config)
        nt, nm = problem.p2o.nt, problem.p2o.nm
        n = nt * nm
        counter = {"n": 0}

        def ht_action(v: np.ndarray) -> np.ndarray:
            counter["n"] += 1
            z = v.reshape(nt, nm)
            w = problem.prior.apply_sqrt(z)
            fw = problem.p2o.apply(w, config=cfg) / problem.noise_std**2
            hw = problem.p2o.applyT(fw, config=cfg)
            return problem.prior.apply_sqrt_t(hw).ravel()

        lam, V = randomized_eig(
            ht_action, n, rank, oversample=oversample,
            power_iters=power_iters, rng=rng,
        )
        return cls(
            problem=problem,
            eigenvalues=lam,
            eigenvectors=V,
            config=str(cfg),
            hessian_actions=counter["n"],
        )

    # -- queries ---------------------------------------------------------------
    @property
    def rank(self) -> int:
        return len(self.eigenvalues)

    def information_gain(self) -> float:
        """Expected information gain 0.5 * sum log(1 + lam_i) — the same
        quantity the OED loop maximizes."""
        return 0.5 * float(np.sum(np.log1p(self.eigenvalues)))

    def pointwise_variance(self) -> np.ndarray:
        """Posterior variance field, shape (nt, nm).

        prior variance minus the low-rank correction's diagonal.
        """
        nt, nm = self.problem.p2o.nt, self.problem.p2o.nm
        prior_var = self.problem.prior.variance_diag()
        weights = self.eigenvalues / (1.0 + self.eigenvalues)
        # rows of Gp^{1/2} V: apply the sqrt factor to each eigenvector
        corr = np.zeros(nt * nm)
        for j in range(self.rank):
            col = self.problem.prior.apply_sqrt(
                self.eigenvectors[:, j].reshape(nt, nm)
            ).ravel()
            corr += weights[j] * col**2
        return prior_var - corr.reshape(nt, nm)

    def sample(self, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Draw a zero-mean posterior sample (add the MAP point for the
        full posterior draw).

        Uses the exact low-rank square root:
        Gp^{1/2} (I + V diag(1/sqrt(1+lam) - 1) V^T) z  with z ~ N(0, I).
        """
        rng = rng if rng is not None else np.random.default_rng()
        nt, nm = self.problem.p2o.nt, self.problem.p2o.nm
        z = rng.standard_normal(nt * nm)
        scale = 1.0 / np.sqrt(1.0 + self.eigenvalues) - 1.0
        z = z + self.eigenvectors @ (scale * (self.eigenvectors.T @ z))
        return self.problem.prior.apply_sqrt(z.reshape(nt, nm))

    def posterior_covariance_action(self, m: np.ndarray) -> np.ndarray:
        """Gamma_post applied to a (nt, nm) field via the low-rank formula."""
        nt, nm = self.problem.p2o.nt, self.problem.p2o.nm
        a = np.asarray(m, dtype=np.float64)
        if a.shape != (nt, nm):
            raise ReproError(f"field must be ({nt},{nm}), got {a.shape}")
        w = self.problem.prior.apply_sqrt_t(a).ravel()
        weights = self.eigenvalues / (1.0 + self.eigenvalues)
        w = w - self.eigenvectors @ (weights * (self.eigenvectors.T @ w))
        return self.problem.prior.apply_sqrt(w.reshape(nt, nm))
