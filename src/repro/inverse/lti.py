"""Linear time-invariant PDE systems (paper Eq. 1).

``du/dt = A u + C m`` on a spatial grid, observed through B.  The
operators are time-invariant, which is the property that makes the
discrete p2o map block-Toeplitz.  Implicit Euler time stepping with a
prefactorized sparse system matrix keeps each step an O(n) solve, so
building impulse responses for the p2o map is cheap.

Two concrete systems cover the paper's motivating applications
(diffusive transport with sources — heat transfer, contaminant
transport):

* :class:`HeatEquation1D` — du/dt = kappa u_xx + m(x, t)
* :class:`AdvectionDiffusion1D` — du/dt = kappa u_xx - v u_x + m(x, t)
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.inverse.mesh import Grid1D
from repro.util.validation import ReproError, check_positive_int

__all__ = ["LTISystem", "HeatEquation1D", "AdvectionDiffusion1D"]


class LTISystem:
    """A discretized LTI system ``u_{k+1} = S (u_k + dt * C m_k)``.

    ``S = (I - dt*A)^{-1}`` is applied via a prefactorized sparse LU.
    Subclasses provide the spatial operator ``A`` (sparse, n x n).

    Parameters
    ----------
    grid:
        Spatial grid (defines n).
    dt:
        Time step (also the observation cadence; one block per step).
    """

    def __init__(self, grid: Grid1D, dt: float) -> None:
        if dt <= 0:
            raise ReproError(f"dt must be positive, got {dt}")
        self.grid = grid
        self.dt = float(dt)
        self.n = grid.n
        A = self.spatial_operator()
        if A.shape != (self.n, self.n):
            raise ReproError(
                f"spatial operator must be ({self.n},{self.n}), got {A.shape}"
            )
        self._A = A.tocsc()
        system = sp.eye(self.n, format="csc") - self.dt * self._A
        self._solve = spla.factorized(system)

    # -- to be provided by subclasses ---------------------------------------
    def spatial_operator(self) -> sp.spmatrix:
        """The sparse operator A of du/dt = A u + C m."""
        raise NotImplementedError

    # -- time stepping ---------------------------------------------------------
    def step(self, u: np.ndarray, source: Optional[np.ndarray] = None) -> np.ndarray:
        """One implicit-Euler step: solve (I - dt A) u_new = u + dt * m."""
        rhs = np.asarray(u, dtype=np.float64)
        if rhs.shape != (self.n,):
            raise ReproError(f"state must have shape ({self.n},), got {rhs.shape}")
        if source is not None:
            s = np.asarray(source, dtype=np.float64)
            if s.shape != (self.n,):
                raise ReproError(
                    f"source must have shape ({self.n},), got {s.shape}"
                )
            rhs = rhs + self.dt * s
        return self._solve(rhs)

    def evolve(
        self,
        nt: int,
        m: Optional[np.ndarray] = None,
        u0: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Run nt steps; returns states (nt, n) AFTER each step.

        ``m`` is the (nt, n) source history (zero if omitted); the source
        at step k acts during step k (zero-order hold).
        """
        check_positive_int(nt, "nt")
        u = (
            np.zeros(self.n)
            if u0 is None
            else np.asarray(u0, dtype=np.float64).copy()
        )
        if u.shape != (self.n,):
            raise ReproError(f"u0 must have shape ({self.n},)")
        if m is not None:
            m = np.asarray(m, dtype=np.float64)
            if m.shape != (nt, self.n):
                raise ReproError(f"m must be ({nt},{self.n}), got {m.shape}")
        out = np.empty((nt, self.n))
        for k in range(nt):
            u = self.step(u, None if m is None else m[k])
            out[k] = u
        return out

    def impulse_response(self, j: int, nt: int) -> np.ndarray:
        """States (nt, n) for a unit impulse source at grid point j, step 0.

        Time invariance means these columns generate the whole p2o map.
        """
        if not (0 <= j < self.n):
            raise ReproError(f"impulse location {j} outside [0,{self.n})")
        src = np.zeros((nt, self.n))
        src[0, j] = 1.0 / self.dt  # unit-mass impulse over one step
        return self.evolve(nt, m=src)


class HeatEquation1D(LTISystem):
    """1-D heat equation with homogeneous Dirichlet boundaries."""

    def __init__(self, grid: Grid1D, dt: float, kappa: float = 1.0) -> None:
        if kappa <= 0:
            raise ReproError(f"kappa must be positive, got {kappa}")
        self.kappa = float(kappa)
        super().__init__(grid, dt)

    def spatial_operator(self) -> sp.spmatrix:
        n, h = self.n, self.grid.h
        lap = sp.diags([1.0, -2.0, 1.0], [-1, 0, 1], shape=(n, n)) / h**2
        return self.kappa * lap


class AdvectionDiffusion1D(LTISystem):
    """1-D advection-diffusion with upwinded transport."""

    def __init__(
        self, grid: Grid1D, dt: float, kappa: float = 0.01, velocity: float = 1.0
    ) -> None:
        if kappa <= 0:
            raise ReproError(f"kappa must be positive, got {kappa}")
        self.kappa = float(kappa)
        self.velocity = float(velocity)
        super().__init__(grid, dt)

    def spatial_operator(self) -> sp.spmatrix:
        n, h = self.n, self.grid.h
        lap = sp.diags([1.0, -2.0, 1.0], [-1, 0, 1], shape=(n, n)) / h**2
        v = self.velocity
        if v >= 0:  # upwind difference against the flow
            adv = sp.diags([-1.0, 1.0], [-1, 0], shape=(n, n)) / h
        else:
            adv = sp.diags([-1.0, 1.0], [0, 1], shape=(n, n)) / h
        return self.kappa * lap - v * adv
