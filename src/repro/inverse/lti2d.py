"""2-D LTI PDE systems.

The paper's motivating applications (tsunami early warning, atmospheric
transport, seismic inversion) live on 2-D/3-D spatial domains; this
module provides the 2-D members of the LTI family on a tensor-product
grid, built with Kronecker-structured sparse operators so the same
implicit-Euler machinery (and therefore the same block-Toeplitz p2o
structure) applies unchanged:

* :class:`HeatEquation2D` — du/dt = kappa (u_xx + u_yy) + m
* :class:`AdvectionDiffusion2D` — adds an upwinded velocity field (vx, vy)

State vectors are flattened in the grid's C-order (x fastest), matching
:class:`~repro.inverse.mesh.Grid2D.flat_index`.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.inverse.lti import LTISystem
from repro.inverse.mesh import Grid2D
from repro.util.validation import ReproError

__all__ = ["HeatEquation2D", "AdvectionDiffusion2D"]


def _lap1d(n: int, h: float) -> sp.spmatrix:
    return sp.diags([1.0, -2.0, 1.0], [-1, 0, 1], shape=(n, n)) / h**2


def _upwind1d(n: int, h: float, v: float) -> sp.spmatrix:
    """First-derivative operator upwinded against velocity v."""
    if v >= 0:
        return sp.diags([-1.0, 1.0], [-1, 0], shape=(n, n)) / h
    return sp.diags([-1.0, 1.0], [0, 1], shape=(n, n)) / h


class _Grid2DSystem(LTISystem):
    """Shared plumbing: adapts LTISystem (built around Grid1D's ``.n``)
    to a Grid2D by duck-typing the grid attribute."""

    def __init__(self, grid: Grid2D, dt: float) -> None:
        if not isinstance(grid, Grid2D):
            raise ReproError("grid must be a Grid2D")
        self.grid2d = grid
        # LTISystem reads grid.n; Grid2D provides it (nx * ny).
        super().__init__(grid, dt)  # type: ignore[arg-type]

    def reshape_state(self, u: np.ndarray) -> np.ndarray:
        """Flat state -> (ny, nx) field for inspection/plotting."""
        a = np.asarray(u)
        if a.shape != (self.n,):
            raise ReproError(f"state must have shape ({self.n},), got {a.shape}")
        return a.reshape(self.grid2d.ny, self.grid2d.nx)


class HeatEquation2D(_Grid2DSystem):
    """2-D heat equation, homogeneous Dirichlet boundaries."""

    def __init__(self, grid: Grid2D, dt: float, kappa: float = 1.0) -> None:
        if kappa <= 0:
            raise ReproError(f"kappa must be positive, got {kappa}")
        self.kappa = float(kappa)
        super().__init__(grid, dt)

    def spatial_operator(self) -> sp.spmatrix:
        g = self.grid2d
        Lx = _lap1d(g.nx, g.hx)
        Ly = _lap1d(g.ny, g.hy)
        # C-order (x fastest): Laplacian = I_y (x) Lx + Ly (x) I_x
        return self.kappa * (
            sp.kron(sp.eye(g.ny), Lx) + sp.kron(Ly, sp.eye(g.nx))
        )


class AdvectionDiffusion2D(_Grid2DSystem):
    """2-D advection-diffusion with a constant velocity field."""

    def __init__(
        self,
        grid: Grid2D,
        dt: float,
        kappa: float = 0.01,
        velocity=(1.0, 0.0),
    ) -> None:
        if kappa <= 0:
            raise ReproError(f"kappa must be positive, got {kappa}")
        self.kappa = float(kappa)
        self.vx, self.vy = float(velocity[0]), float(velocity[1])
        super().__init__(grid, dt)

    def spatial_operator(self) -> sp.spmatrix:
        g = self.grid2d
        lap = sp.kron(sp.eye(g.ny), _lap1d(g.nx, g.hx)) + sp.kron(
            _lap1d(g.ny, g.hy), sp.eye(g.nx)
        )
        adv = self.vx * sp.kron(sp.eye(g.ny), _upwind1d(g.nx, g.hx, self.vx))
        adv = adv + self.vy * sp.kron(_upwind1d(g.ny, g.hy, self.vy), sp.eye(g.nx))
        return self.kappa * lap - adv
