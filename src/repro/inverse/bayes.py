"""The linear Bayesian inverse problem (paper Section 2.2-2.3).

With Gaussian prior and noise and a linear p2o map F, the posterior is
Gaussian with::

    Gamma_post = (F* Gn^{-1} F + Gp^{-1})^{-1}
    m_map      = Gamma_post (F* Gn^{-1} d + Gp^{-1} m_prior)

:class:`LinearBayesianProblem` solves for the MAP point with matrix-free
CG on the Hessian, where each Hessian action costs one F and one F*
FFTMatvec — the operation the whole paper accelerates.  The matvec
precision configuration is a parameter, so examples can demonstrate the
end-to-end effect of the mixed-precision framework on inversion quality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.core.precision import PrecisionConfig
from repro.inverse.cg import (
    BlockCGResult,
    CGResult,
    block_conjugate_gradient,
    conjugate_gradient,
)
from repro.inverse.p2o import P2OMap
from repro.inverse.prior import GaussianPrior
from repro.util.blocking import chunk_ranges, validate_max_block_k
from repro.util.validation import ReproError

__all__ = ["MAPResult", "BlockMAPResult", "LinearBayesianProblem"]


@dataclass
class MAPResult:
    """MAP estimate and solver diagnostics."""

    m_map: np.ndarray
    cg: CGResult
    config: str
    misfit: float  # ||F m_map - d||^2 weighted by Gn^{-1}
    reg: float  # prior term at the MAP point


@dataclass
class BlockMAPResult:
    """MAP estimates for a block of k datasets solved in one block-CG."""

    m_map: np.ndarray  # (nt, nm, k)
    cg: BlockCGResult
    config: str


class LinearBayesianProblem:
    """MAP estimation for ``d = F m + noise`` with Gaussian prior/noise.

    Parameters
    ----------
    p2o:
        The parameter-to-observable map (FFTMatvec-backed).
    prior:
        Gaussian prior over (nt, nm) source fields.
    noise_std:
        Noise standard deviation (Gamma_noise = noise_std^2 I); the
        paper's error-tolerance discussion ties the acceptable
        mixed-precision error to exactly this quantity.
    """

    def __init__(
        self, p2o: P2OMap, prior: GaussianPrior, noise_std: float
    ) -> None:
        if noise_std <= 0:
            raise ReproError(f"noise_std must be positive, got {noise_std}")
        if prior.nm != p2o.nm or prior.nt != p2o.nt:
            raise ReproError(
                f"prior is ({prior.nt},{prior.nm}) but p2o is "
                f"({p2o.nt},{p2o.nm})"
            )
        self.p2o = p2o
        self.prior = prior
        self.noise_std = float(noise_std)

    # -- operators -----------------------------------------------------------
    def hessian_action(
        self, m: np.ndarray, config: Union[str, PrecisionConfig] = "ddddd"
    ) -> np.ndarray:
        """H m = F* Gn^{-1} F m + Gp^{-1} m (two FFT matvecs + sparse solve)."""
        data_term = self.p2o.applyT(
            self.p2o.apply(m, config=config) / self.noise_std**2, config=config
        )
        return data_term + self.prior.apply_inv(m)

    def rhs(
        self, d: np.ndarray, config: Union[str, PrecisionConfig] = "ddddd"
    ) -> np.ndarray:
        """F* Gn^{-1} d + Gp^{-1} m_prior."""
        return self.p2o.applyT(
            np.asarray(d, dtype=np.float64) / self.noise_std**2, config=config
        ) + self.prior.apply_inv(self.prior.mean)

    # -- MAP ----------------------------------------------------------------
    def solve_map(
        self,
        d: np.ndarray,
        config: Union[str, PrecisionConfig] = "ddddd",
        tol: float = 1e-8,
        maxiter: int = 500,
    ) -> MAPResult:
        """Solve the MAP system with CG; all matvecs use ``config``."""
        cfg = PrecisionConfig.parse(config)
        result = conjugate_gradient(
            lambda m: self.hessian_action(m, config=cfg),
            self.rhs(d, config=cfg),
            tol=tol,
            maxiter=maxiter,
        )
        residual = self.p2o.apply(result.x) - np.asarray(d, dtype=np.float64)
        misfit = float(np.sum(residual**2)) / self.noise_std**2
        dm = result.x - self.prior.mean
        reg = float(np.sum(dm * self.prior.apply_inv(dm)))
        return MAPResult(
            m_map=result.x, cg=result, config=str(cfg), misfit=misfit, reg=reg
        )

    # -- blocked multi-RHS MAP ----------------------------------------------
    def hessian_operator(self, config: Union[str, PrecisionConfig] = "ddddd"):
        """The MAP Hessian as a composable :class:`GaussNewtonHessian`.

        Blocked actions route every F / F* through the engine's
        multi-RHS pipeline; the prior precision rides along per column.
        """
        from repro.core.operator import (
            CallableOperator,
            ForwardOperator,
            GaussNewtonHessian,
        )

        nt, nm = self.p2o.nt, self.p2o.nm
        reg = CallableOperator(
            (nt, nm), (nt, nm), self.prior.apply_inv,
            fn_adjoint=self.prior.apply_inv,
            fn_block=self.prior.apply_inv_block,
        )
        return GaussNewtonHessian(
            ForwardOperator(self.p2o.engine, config),
            noise_std=self.noise_std,
            reg=reg,
        )

    def solve_map_block(
        self,
        D: np.ndarray,
        config: Union[str, PrecisionConfig] = "ddddd",
        tol: float = 1e-8,
        maxiter: int = 500,
    ) -> BlockMAPResult:
        """Solve k MAP systems at once with block CG.

        ``D`` is ``(nt, Nd, k)`` — k observed datasets (e.g. posterior
        resampling or OED candidate batches).  Each block-CG iteration
        costs one blocked F and one blocked F* pass instead of k of each.
        """
        cfg = PrecisionConfig.parse(config)
        DD = np.asarray(D, dtype=np.float64)
        if DD.ndim != 3 or DD.shape[:2] != (self.p2o.nt, self.p2o.nd):
            raise ReproError(
                f"data block must be ({self.p2o.nt}, {self.p2o.nd}, k), "
                f"got {DD.shape}"
            )
        hessian = self.hessian_operator(cfg)
        rhs = self.p2o.applyT_block(DD / self.noise_std**2, config=cfg)
        prior_term = self.prior.apply_inv(self.prior.mean)
        rhs = rhs + prior_term[:, :, None]
        result = block_conjugate_gradient(
            hessian.apply_block, rhs, tol=tol, maxiter=maxiter
        )
        return BlockMAPResult(m_map=result.X, cg=result, config=str(cfg))

    # -- data-space Hessian (the OED workhorse) -------------------------------
    def data_space_hessian(
        self,
        config: Union[str, PrecisionConfig] = "ddddd",
        block_k: Optional[int] = None,
    ) -> np.ndarray:
        """Dense H_d = Gn^{-1/2} F Gp F* Gn^{-1/2}, (nt*Nd, nt*Nd).

        Assembled from ``nt * Nd`` F/F* actions — the O(1e5)-matvec
        workload of the paper's Remark 1 that motivates mixed precision.
        The columns are exactly a multi-RHS block, so they run through
        the engine's blocked pipeline in chunks of ``block_k`` unit
        vectors (None = all at once): one blocked F* and one blocked F
        pass per chunk instead of ``2 * nt * Nd`` single matvecs, with
        the prior sandwich applied blockwise.  ``block_k`` bounds the
        pad/FFT workspace for larger sensor counts.  Laptop-scale sizes
        only (the result is dense).
        """
        nt, nd = self.p2o.nt, self.p2o.nd
        n = nt * nd
        H = np.empty((n, n))
        ranges = chunk_ranges(n, validate_max_block_k(block_k))
        # One unit-vector block allocated for the whole sweep (sized for
        # the widest chunk); each pass re-zeros the slice it uses instead
        # of allocating a fresh block per chunk.
        kmax = max(j1 - j0 for j0, j1 in ranges)
        E_full = np.empty((nt, nd, kmax))
        for j0, j1 in ranges:
            E = E_full[:, :, : j1 - j0]
            E[...] = 0.0
            for col in range(j0, j1):
                E[col // nd, col % nd, col - j0] = 1.0 / self.noise_std
            V = self.p2o.applyT_block(E, config=config)
            V = self.prior.apply_block(V)
            W = self.p2o.apply_block(V, config=config) / self.noise_std
            H[:, j0:j1] = W.reshape(n, j1 - j0)
        return H
