"""Matrix-free conjugate gradient, vector and blocked multi-RHS forms.

Used to solve the MAP system ``H m = rhs`` with Hessian actions composed
of FFTMatvec F/F* applications — the "traditional" solution strategy the
paper references ([14]).  Operands are (nt, n) block vectors; the solver
only needs an inner product and an operator callback.

:func:`block_conjugate_gradient` solves ``k`` right-hand sides at once.
The per-column recurrences are the classic CG recurrences, kept
*independent* (no cross-column coupling), so column ``j`` of the block
solve reproduces a vector CG solve of column ``j`` — but every operator
action is one blocked application (e.g. a Gauss-Newton Hessian built on
``FFTMatvec.matmat``), so the k solves share each pipeline pass instead
of re-paying pad/FFT-plan/reorder overhead per vector.  Columns freeze
once converged; the solve runs until all columns converge or ``maxiter``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.util.validation import ReproError

__all__ = [
    "CGResult",
    "conjugate_gradient",
    "BlockCGResult",
    "block_conjugate_gradient",
]


@dataclass
class CGResult:
    """Outcome of a CG solve."""

    x: np.ndarray
    converged: bool
    iterations: int
    residual_norms: List[float] = field(default_factory=list)

    @property
    def final_residual(self) -> float:
        return self.residual_norms[-1] if self.residual_norms else float("nan")


def _dot(a: np.ndarray, b: np.ndarray) -> float:
    return float(np.vdot(a, b).real)


def conjugate_gradient(
    operator: Callable[[np.ndarray], np.ndarray],
    rhs: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-8,
    maxiter: int = 500,
    callback: Optional[Callable[[int, float], None]] = None,
) -> CGResult:
    """Solve ``operator(x) = rhs`` for an SPD operator.

    Converges when ``||r|| <= tol * ||rhs||``.  Raises if the operator
    produces a direction of non-positive curvature (not SPD) — with the
    regularized Hessian that indicates a bug, not a property.
    """
    b = np.asarray(rhs, dtype=np.float64)
    x = np.zeros_like(b) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    if x.shape != b.shape:
        raise ReproError(f"x0 shape {x.shape} != rhs shape {b.shape}")

    r = b - operator(x)
    p = r.copy()
    rs = _dot(r, r)
    bnorm = float(np.linalg.norm(b))
    if bnorm == 0.0:
        return CGResult(x=np.zeros_like(b), converged=True, iterations=0, residual_norms=[0.0])

    norms = [float(np.sqrt(rs))]
    if norms[0] <= tol * bnorm:
        return CGResult(x=x, converged=True, iterations=0, residual_norms=norms)

    for it in range(1, maxiter + 1):
        Ap = operator(p)
        curvature = _dot(p, Ap)
        if curvature <= 0.0:
            raise ReproError(
                f"CG detected non-positive curvature {curvature:g} at iter {it}; "
                "the operator is not SPD"
            )
        alpha = rs / curvature
        x = x + alpha * p
        r = r - alpha * Ap
        rs_new = _dot(r, r)
        norms.append(float(np.sqrt(rs_new)))
        if callback is not None:
            callback(it, norms[-1])
        if norms[-1] <= tol * bnorm:
            return CGResult(x=x, converged=True, iterations=it, residual_norms=norms)
        p = r + (rs_new / rs) * p
        rs = rs_new

    return CGResult(x=x, converged=False, iterations=maxiter, residual_norms=norms)


@dataclass
class BlockCGResult:
    """Outcome of a blocked multi-RHS CG solve."""

    X: np.ndarray
    converged: np.ndarray  # (k,) bool, per column
    iterations: int
    residual_norms: List[np.ndarray] = field(default_factory=list)  # (k,) per iter

    @property
    def all_converged(self) -> bool:
        return bool(np.all(self.converged))

    @property
    def final_residuals(self) -> np.ndarray:
        if not self.residual_norms:
            return np.full(self.converged.shape, np.nan)
        return self.residual_norms[-1]


def _col_dots(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-column inner products over all leading axes: (..., k) -> (k,)."""
    k = a.shape[-1]
    return np.einsum("ij,ij->j", a.reshape(-1, k), b.reshape(-1, k))


def block_conjugate_gradient(
    operator: Callable[[np.ndarray], np.ndarray],
    rhs: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-8,
    maxiter: int = 500,
    callback: Optional[Callable[[int, np.ndarray], None]] = None,
) -> BlockCGResult:
    """Solve ``operator(X) = RHS`` column-wise for an SPD block operator.

    ``rhs`` is ``(..., k)`` (typically ``(nt, n, k)``) and ``operator``
    maps blocks of that shape to blocks of the same shape — pass e.g.
    ``GaussNewtonHessian(...).apply_block`` so each iteration costs one
    blocked pipeline pass for all k systems.  Column ``j`` converges when
    ``||r_j|| <= tol * ||rhs_j||`` and is frozen from then on, so its
    iterate matches what :func:`conjugate_gradient` would return for the
    same column (up to rounding).  Raises on non-positive curvature in
    any active column, as the vector solver does.
    """
    B = np.asarray(rhs, dtype=np.float64)
    if B.ndim < 2:
        raise ReproError(
            f"block CG needs a (..., k) multi-RHS array, got shape {B.shape}"
        )
    k = B.shape[-1]
    X = np.zeros_like(B) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    if X.shape != B.shape:
        raise ReproError(f"x0 shape {X.shape} != rhs shape {B.shape}")

    R = B - operator(X)
    bnorm = np.sqrt(_col_dots(B, B))
    # Zero RHS columns are solved by zeros immediately; reset their
    # iterate AND residual so a nonzero x0 cannot leak a stale residual
    # norm into the report for a column whose true residual is 0.
    zero_rhs = bnorm == 0.0
    X[..., zero_rhs] = 0.0
    R[..., zero_rhs] = 0.0
    P = R.copy()
    rs = _col_dots(R, R)

    norms = [np.sqrt(rs)]
    converged = zero_rhs | (norms[0] <= tol * bnorm)
    if np.all(converged):
        return BlockCGResult(
            X=X, converged=converged, iterations=0, residual_norms=norms
        )
    P[..., converged] = 0.0

    # One scratch block keeps the per-iteration linear algebra
    # allocation-free: for wide blocks the vector updates otherwise cost
    # a noticeable fraction of the shared operator action they amortize.
    scratch = np.empty_like(B)
    for it in range(1, maxiter + 1):
        # Frozen columns keep a zero search direction, so the shared
        # operator action does no stale work on their behalf.
        active = ~converged
        AP = operator(P)
        curvature = _col_dots(P, AP)
        if np.any(curvature[active] <= 0.0):
            bad = float(np.min(curvature[active]))
            raise ReproError(
                f"block CG detected non-positive curvature {bad:g} at iter "
                f"{it}; the operator is not SPD"
            )
        alpha = np.where(active, rs / np.where(active, curvature, 1.0), 0.0)
        np.multiply(P, alpha, out=scratch)
        X += scratch
        np.multiply(AP, alpha, out=scratch)
        R -= scratch
        rs_new = _col_dots(R, R)
        norms.append(np.where(active, np.sqrt(rs_new), norms[-1]))
        if callback is not None:
            callback(it, norms[-1])
        newly_done = active & (norms[-1] <= tol * bnorm)
        converged = converged | newly_done
        if np.all(converged):
            return BlockCGResult(
                X=X, converged=converged, iterations=it, residual_norms=norms
            )
        beta = np.where(
            ~converged, rs_new / np.where(rs > 0, rs, 1.0), 0.0
        )
        # P <- R + beta*P for active columns, zero for frozen ones
        # (beta is already zero there; only the += R needs undoing).
        np.multiply(P, beta, out=P)
        P += R
        P[..., converged] = 0.0
        rs = rs_new

    return BlockCGResult(
        X=X, converged=converged, iterations=maxiter, residual_norms=norms
    )
