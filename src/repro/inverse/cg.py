"""Matrix-free conjugate gradient.

Used to solve the MAP system ``H m = rhs`` with Hessian actions composed
of FFTMatvec F/F* applications — the "traditional" solution strategy the
paper references ([14]).  Operands are (nt, n) block vectors; the solver
only needs an inner product and an operator callback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.util.validation import ReproError

__all__ = ["CGResult", "conjugate_gradient"]


@dataclass
class CGResult:
    """Outcome of a CG solve."""

    x: np.ndarray
    converged: bool
    iterations: int
    residual_norms: List[float] = field(default_factory=list)

    @property
    def final_residual(self) -> float:
        return self.residual_norms[-1] if self.residual_norms else float("nan")


def _dot(a: np.ndarray, b: np.ndarray) -> float:
    return float(np.vdot(a, b).real)


def conjugate_gradient(
    operator: Callable[[np.ndarray], np.ndarray],
    rhs: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-8,
    maxiter: int = 500,
    callback: Optional[Callable[[int, float], None]] = None,
) -> CGResult:
    """Solve ``operator(x) = rhs`` for an SPD operator.

    Converges when ``||r|| <= tol * ||rhs||``.  Raises if the operator
    produces a direction of non-positive curvature (not SPD) — with the
    regularized Hessian that indicates a bug, not a property.
    """
    b = np.asarray(rhs, dtype=np.float64)
    x = np.zeros_like(b) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    if x.shape != b.shape:
        raise ReproError(f"x0 shape {x.shape} != rhs shape {b.shape}")

    r = b - operator(x)
    p = r.copy()
    rs = _dot(r, r)
    bnorm = float(np.linalg.norm(b))
    if bnorm == 0.0:
        return CGResult(x=np.zeros_like(b), converged=True, iterations=0, residual_norms=[0.0])

    norms = [float(np.sqrt(rs))]
    if norms[0] <= tol * bnorm:
        return CGResult(x=x, converged=True, iterations=0, residual_norms=norms)

    for it in range(1, maxiter + 1):
        Ap = operator(p)
        curvature = _dot(p, Ap)
        if curvature <= 0.0:
            raise ReproError(
                f"CG detected non-positive curvature {curvature:g} at iter {it}; "
                "the operator is not SPD"
            )
        alpha = rs / curvature
        x = x + alpha * p
        r = r - alpha * Ap
        rs_new = _dot(r, r)
        norms.append(float(np.sqrt(rs_new)))
        if callback is not None:
            callback(it, norms[-1])
        if norms[-1] <= tol * bnorm:
            return CGResult(x=x, converged=True, iterations=it, residual_norms=norms)
        p = r + (rs_new / rs) * p
        rs = rs_new

    return CGResult(x=x, converged=False, iterations=maxiter, residual_norms=norms)
