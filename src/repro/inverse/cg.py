"""Matrix-free conjugate gradient, vector and blocked multi-RHS forms.

Used to solve the MAP system ``H m = rhs`` with Hessian actions composed
of FFTMatvec F/F* applications — the "traditional" solution strategy the
paper references ([14]).  Operands are (nt, n) block vectors; the solver
only needs an inner product and an operator callback.

:func:`block_conjugate_gradient` solves ``k`` right-hand sides at once.
The per-column recurrences are the classic CG recurrences, kept
*independent* (no cross-column coupling), so column ``j`` of the block
solve reproduces a vector CG solve of column ``j`` — but every operator
action is one blocked application (e.g. a Gauss-Newton Hessian built on
``FFTMatvec.matmat``), so the k solves share each pipeline pass instead
of re-paying pad/FFT-plan/reorder overhead per vector.  Columns freeze
once converged; the solve runs until all columns converge or ``maxiter``.

Both solvers are **resumable**: pass ``checkpoint_every=`` and a
``checkpoint=`` callback to receive a deep-copied :class:`CGState` /
:class:`BlockCGState` at iteration boundaries, and pass one back via
``resume=`` to continue a killed solve.  The CG recurrence is a pure
function of (X, R, P, rs), so a resumed solve replays the exact
floating-point sequence of the uninterrupted one: with a deterministic
operator (``reduction="pairwise"`` on the engines) the resumed result is
**bitwise-identical**, at any interruption boundary.  States round-trip
through :class:`repro.util.checkpoint.CheckpointStore` via
``to_arrays``/``from_arrays``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.util.validation import ReproError

__all__ = [
    "CGBreakdownError",
    "CGResult",
    "CGState",
    "conjugate_gradient",
    "BlockCGResult",
    "BlockCGState",
    "block_conjugate_gradient",
]


class CGBreakdownError(ReproError):
    """CG recurrence breakdown, carrying a restartable state snapshot.

    ``kind`` says what broke: ``"non_spd"`` (non-positive curvature —
    the operator is not SPD), ``"rho_breakdown"`` (a recurrence scalar
    went non-finite, the signature of NaN/Inf leaking out of the
    operator), or ``"stagnation"`` (no residual progress over
    ``stagnation_window`` iterations).  ``state`` is the last *healthy*
    iteration-boundary snapshot (:class:`CGState` /
    :class:`BlockCGState`) — persist it through
    :class:`repro.util.checkpoint.CheckpointStore` and pass it back via
    ``resume=`` to restart (e.g. after rebuilding a corrupted engine)
    without repaying the completed iterations.
    """

    def __init__(self, kind: str, detail: str, state=None) -> None:
        super().__init__(detail)
        self.kind = kind
        self.state = state


@dataclass
class CGResult:
    """Outcome of a CG solve."""

    x: np.ndarray
    converged: bool
    iterations: int
    residual_norms: List[float] = field(default_factory=list)

    @property
    def final_residual(self) -> float:
        return self.residual_norms[-1] if self.residual_norms else float("nan")


def _dot(a: np.ndarray, b: np.ndarray) -> float:
    return float(np.vdot(a, b).real)


@dataclass
class CGState:
    """Exact vector-CG state at an iteration boundary.

    Everything the recurrence reads: restarting from a state and running
    iteration ``iteration + 1`` onward performs the same floating-point
    operations, in the same order, as the uninterrupted solve.
    """

    x: np.ndarray
    r: np.ndarray
    p: np.ndarray
    rs: float
    bnorm: float
    norms: List[float]
    iteration: int

    def copy(self) -> "CGState":
        """Deep copy — resuming never aliases the caller's snapshot."""
        return CGState(
            x=self.x.copy(),
            r=self.r.copy(),
            p=self.p.copy(),
            rs=self.rs,
            bnorm=self.bnorm,
            norms=list(self.norms),
            iteration=self.iteration,
        )

    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Flatten to named arrays for a :class:`CheckpointStore`."""
        return {
            "x": self.x,
            "r": self.r,
            "p": self.p,
            "scalars": np.array([self.rs, self.bnorm], dtype=np.float64),
            "norms": np.asarray(self.norms, dtype=np.float64),
            "iteration": np.array(self.iteration, dtype=np.int64),
        }

    @classmethod
    def from_arrays(cls, arrays: Dict[str, np.ndarray]) -> "CGState":
        """Rebuild from :meth:`to_arrays` output (checkpoint load path)."""
        scalars = np.asarray(arrays["scalars"], dtype=np.float64)
        return cls(
            x=np.asarray(arrays["x"], dtype=np.float64).copy(),
            r=np.asarray(arrays["r"], dtype=np.float64).copy(),
            p=np.asarray(arrays["p"], dtype=np.float64).copy(),
            rs=float(scalars[0]),
            bnorm=float(scalars[1]),
            norms=[float(v) for v in np.asarray(arrays["norms"])],
            iteration=int(np.asarray(arrays["iteration"]).reshape(-1)[0]),
        )


def conjugate_gradient(
    operator: Callable[[np.ndarray], np.ndarray],
    rhs: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-8,
    maxiter: int = 500,
    callback: Optional[Callable[[int, float], None]] = None,
    resume: Optional[CGState] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint: Optional[Callable[[CGState], None]] = None,
    stagnation_window: Optional[int] = None,
) -> CGResult:
    """Solve ``operator(x) = rhs`` for an SPD operator.

    Converges when ``||r|| <= tol * ||rhs||``.  Breakdown — non-positive
    curvature (not SPD; with the regularized Hessian that indicates a
    bug, not a property), a non-finite recurrence scalar, or (when
    ``stagnation_window`` is set) ``stagnation_window`` iterations with
    no residual decrease — raises :class:`CGBreakdownError` carrying the
    last healthy :class:`CGState` for a ``resume=`` restart.

    ``resume=`` continues from a :class:`CGState` (``rhs`` must be the
    same right-hand side; ``x0`` is ignored).  ``checkpoint_every=n``
    hands a copied state to ``checkpoint`` after every n-th iteration.
    """
    b = np.asarray(rhs, dtype=np.float64)
    if checkpoint_every is not None and checkpoint_every < 1:
        raise ReproError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
    if stagnation_window is not None and stagnation_window < 1:
        raise ReproError(
            f"stagnation_window must be >= 1, got {stagnation_window}"
        )
    if resume is not None:
        if resume.x.shape != b.shape:
            raise ReproError(
                f"resume state shape {resume.x.shape} != rhs shape {b.shape}"
            )
        state = resume.copy()
        x, r, p = state.x, state.r, state.p
        rs, bnorm, norms = state.rs, state.bnorm, state.norms
        start = state.iteration
    else:
        x = np.zeros_like(b) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
        if x.shape != b.shape:
            raise ReproError(f"x0 shape {x.shape} != rhs shape {b.shape}")

        r = b - operator(x)
        p = r.copy()
        rs = _dot(r, r)
        bnorm = float(np.linalg.norm(b))
        if bnorm == 0.0:
            return CGResult(
                x=np.zeros_like(b), converged=True, iterations=0, residual_norms=[0.0]
            )

        norms = [float(np.sqrt(rs))]
        start = 0
    if norms[-1] <= tol * bnorm:
        return CGResult(x=x, converged=True, iterations=start, residual_norms=norms)

    def _snapshot(iteration: int) -> CGState:
        # x/r/p are rebound (never mutated in place) each iteration, so
        # at any raise site they still hold the last boundary's values.
        return CGState(
            x=x.copy(), r=r.copy(), p=p.copy(), rs=rs, bnorm=bnorm,
            norms=list(norms), iteration=iteration,
        )

    for it in range(start + 1, maxiter + 1):
        Ap = operator(p)
        curvature = _dot(p, Ap)
        if not np.isfinite(curvature):
            raise CGBreakdownError(
                "rho_breakdown",
                f"CG curvature went non-finite ({curvature:g}) at iter {it}; "
                "the operator returned NaN/Inf",
                state=_snapshot(it - 1),
            )
        if curvature <= 0.0:
            raise CGBreakdownError(
                "non_spd",
                f"CG detected non-positive curvature {curvature:g} at iter {it}; "
                "the operator is not SPD",
                state=_snapshot(it - 1),
            )
        alpha = rs / curvature
        x_prev, r_prev = x, r
        x = x + alpha * p
        r = r - alpha * Ap
        rs_new = _dot(r, r)
        if not np.isfinite(rs_new):
            x, r = x_prev, r_prev  # discard the poisoned update
            raise CGBreakdownError(
                "rho_breakdown",
                f"CG residual norm went non-finite at iter {it}; "
                "the operator returned NaN/Inf",
                state=_snapshot(it - 1),
            )
        norms.append(float(np.sqrt(rs_new)))
        if callback is not None:
            callback(it, norms[-1])
        if norms[-1] <= tol * bnorm:
            return CGResult(x=x, converged=True, iterations=it, residual_norms=norms)
        p = r + (rs_new / rs) * p
        rs = rs_new
        if (
            stagnation_window is not None
            and len(norms) > stagnation_window
            and norms[-1] >= norms[-1 - stagnation_window]
        ):
            raise CGBreakdownError(
                "stagnation",
                f"CG made no residual progress over {stagnation_window} "
                f"iterations (||r|| {norms[-1]:.3e} at iter {it})",
                state=_snapshot(it),
            )
        if (
            checkpoint is not None
            and checkpoint_every is not None
            and it % checkpoint_every == 0
        ):
            checkpoint(_snapshot(it))

    return CGResult(x=x, converged=False, iterations=maxiter, residual_norms=norms)


@dataclass
class BlockCGResult:
    """Outcome of a blocked multi-RHS CG solve."""

    X: np.ndarray
    converged: np.ndarray  # (k,) bool, per column
    iterations: int
    residual_norms: List[np.ndarray] = field(default_factory=list)  # (k,) per iter

    @property
    def all_converged(self) -> bool:
        return bool(np.all(self.converged))

    @property
    def final_residuals(self) -> np.ndarray:
        if not self.residual_norms:
            return np.full(self.converged.shape, np.nan)
        return self.residual_norms[-1]


def _col_dots(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-column inner products over all leading axes: (..., k) -> (k,)."""
    k = a.shape[-1]
    return np.einsum("ij,ij->j", a.reshape(-1, k), b.reshape(-1, k))


@dataclass
class BlockCGState:
    """Exact block-CG state at an iteration boundary (see :class:`CGState`)."""

    X: np.ndarray
    R: np.ndarray
    P: np.ndarray
    rs: np.ndarray  # (k,)
    bnorm: np.ndarray  # (k,)
    converged: np.ndarray  # (k,) bool
    norms: List[np.ndarray]  # (k,) per recorded iteration, incl. iter 0
    iteration: int

    def copy(self) -> "BlockCGState":
        """Deep copy — resuming never aliases the caller's snapshot."""
        return BlockCGState(
            X=self.X.copy(),
            R=self.R.copy(),
            P=self.P.copy(),
            rs=self.rs.copy(),
            bnorm=self.bnorm.copy(),
            converged=self.converged.copy(),
            norms=[n.copy() for n in self.norms],
            iteration=self.iteration,
        )

    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Flatten to named arrays for a :class:`CheckpointStore`."""
        return {
            "X": self.X,
            "R": self.R,
            "P": self.P,
            "rs": self.rs,
            "bnorm": self.bnorm,
            "converged": self.converged,
            "norms": np.stack(self.norms, axis=0),
            "iteration": np.array(self.iteration, dtype=np.int64),
        }

    @classmethod
    def from_arrays(cls, arrays: Dict[str, np.ndarray]) -> "BlockCGState":
        """Rebuild from :meth:`to_arrays` output (checkpoint load path)."""
        norms = np.asarray(arrays["norms"], dtype=np.float64)
        return cls(
            X=np.asarray(arrays["X"], dtype=np.float64).copy(),
            R=np.asarray(arrays["R"], dtype=np.float64).copy(),
            P=np.asarray(arrays["P"], dtype=np.float64).copy(),
            rs=np.asarray(arrays["rs"], dtype=np.float64).copy(),
            bnorm=np.asarray(arrays["bnorm"], dtype=np.float64).copy(),
            converged=np.asarray(arrays["converged"], dtype=bool).copy(),
            norms=[norms[i].copy() for i in range(norms.shape[0])],
            iteration=int(np.asarray(arrays["iteration"]).reshape(-1)[0]),
        )


def block_conjugate_gradient(
    operator: Callable[[np.ndarray], np.ndarray],
    rhs: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-8,
    maxiter: int = 500,
    callback: Optional[Callable[[int, np.ndarray], None]] = None,
    resume: Optional[BlockCGState] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint: Optional[Callable[[BlockCGState], None]] = None,
    stagnation_window: Optional[int] = None,
) -> BlockCGResult:
    """Solve ``operator(X) = RHS`` column-wise for an SPD block operator.

    ``rhs`` is ``(..., k)`` (typically ``(nt, n, k)``) and ``operator``
    maps blocks of that shape to blocks of the same shape — pass e.g.
    ``GaussNewtonHessian(...).apply_block`` so each iteration costs one
    blocked pipeline pass for all k systems.  Column ``j`` converges when
    ``||r_j|| <= tol * ||rhs_j||`` and is frozen from then on, so its
    iterate matches what :func:`conjugate_gradient` would return for the
    same column (up to rounding).  Breakdown in any active column —
    non-positive or non-finite curvature, a non-finite residual, or
    ``stagnation_window`` iterations with no progress in any active
    column — raises :class:`CGBreakdownError` with the last healthy
    :class:`BlockCGState`, as the vector solver does.

    ``resume=`` continues from a :class:`BlockCGState` captured by a
    ``checkpoint=`` callback (see ``checkpoint_every``).  The resumed
    solve is bitwise-identical to the uninterrupted one when the
    operator is deterministic — the initialization (including the
    ``R = B - A X`` residual) is *not* recomputed, the stored residual
    recurrence continues exactly.
    """
    B = np.asarray(rhs, dtype=np.float64)
    if B.ndim < 2:
        raise ReproError(
            f"block CG needs a (..., k) multi-RHS array, got shape {B.shape}"
        )
    if checkpoint_every is not None and checkpoint_every < 1:
        raise ReproError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
    if stagnation_window is not None and stagnation_window < 1:
        raise ReproError(
            f"stagnation_window must be >= 1, got {stagnation_window}"
        )
    k = B.shape[-1]
    if resume is not None:
        if resume.X.shape != B.shape:
            raise ReproError(
                f"resume state shape {resume.X.shape} != rhs shape {B.shape}"
            )
        state = resume.copy()
        X, R, P = state.X, state.R, state.P
        rs, bnorm, converged = state.rs, state.bnorm, state.converged
        norms = state.norms
        start = state.iteration
        if np.all(converged):
            return BlockCGResult(
                X=X, converged=converged, iterations=start, residual_norms=norms
            )
    else:
        X = np.zeros_like(B) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
        if X.shape != B.shape:
            raise ReproError(f"x0 shape {X.shape} != rhs shape {B.shape}")

        R = B - operator(X)
        bnorm = np.sqrt(_col_dots(B, B))
        # Zero RHS columns are solved by zeros immediately; reset their
        # iterate AND residual so a nonzero x0 cannot leak a stale residual
        # norm into the report for a column whose true residual is 0.
        zero_rhs = bnorm == 0.0
        X[..., zero_rhs] = 0.0
        R[..., zero_rhs] = 0.0
        P = R.copy()
        rs = _col_dots(R, R)

        norms = [np.sqrt(rs)]
        converged = zero_rhs | (norms[0] <= tol * bnorm)
        if np.all(converged):
            return BlockCGResult(
                X=X, converged=converged, iterations=0, residual_norms=norms
            )
        P[..., converged] = 0.0
        start = 0

    # One scratch block keeps the per-iteration linear algebra
    # allocation-free: for wide blocks the vector updates otherwise cost
    # a noticeable fraction of the shared operator action they amortize.
    scratch = np.empty_like(B)

    def _snapshot(iteration: int) -> BlockCGState:
        return BlockCGState(
            X=X.copy(), R=R.copy(), P=P.copy(), rs=rs.copy(),
            bnorm=bnorm.copy(), converged=converged.copy(),
            norms=[n.copy() for n in norms], iteration=iteration,
        )

    for it in range(start + 1, maxiter + 1):
        # Frozen columns keep a zero search direction, so the shared
        # operator action does no stale work on their behalf.
        active = ~converged
        AP = operator(P)
        curvature = _col_dots(P, AP)
        if not np.all(np.isfinite(curvature[active])):
            raise CGBreakdownError(
                "rho_breakdown",
                f"block CG curvature went non-finite at iter {it}; "
                "the operator returned NaN/Inf",
                state=_snapshot(it - 1),
            )
        if np.any(curvature[active] <= 0.0):
            bad = float(np.min(curvature[active]))
            raise CGBreakdownError(
                "non_spd",
                f"block CG detected non-positive curvature {bad:g} at iter "
                f"{it}; the operator is not SPD",
                state=_snapshot(it - 1),
            )
        alpha = np.where(active, rs / np.where(active, curvature, 1.0), 0.0)
        np.multiply(P, alpha, out=scratch)
        X += scratch
        np.multiply(AP, alpha, out=scratch)
        R -= scratch
        rs_new = _col_dots(R, R)
        if not np.all(np.isfinite(rs_new[active])):
            # Undo the poisoned in-place update so the snapshot holds
            # the last healthy boundary: scratch still carries AP*alpha
            # (the R update), and P/alpha re-derive the X update.
            R += scratch
            np.multiply(P, alpha, out=scratch)
            X -= scratch
            raise CGBreakdownError(
                "rho_breakdown",
                f"block CG residual norm went non-finite at iter {it}; "
                "the operator returned NaN/Inf",
                state=_snapshot(it - 1),
            )
        norms.append(np.where(active, np.sqrt(rs_new), norms[-1]))
        if callback is not None:
            callback(it, norms[-1])
        newly_done = active & (norms[-1] <= tol * bnorm)
        converged = converged | newly_done
        if np.all(converged):
            return BlockCGResult(
                X=X, converged=converged, iterations=it, residual_norms=norms
            )
        beta = np.where(
            ~converged, rs_new / np.where(rs > 0, rs, 1.0), 0.0
        )
        # P <- R + beta*P for active columns, zero for frozen ones
        # (beta is already zero there; only the += R needs undoing).
        np.multiply(P, beta, out=P)
        P += R
        P[..., converged] = 0.0
        rs = rs_new
        if stagnation_window is not None and len(norms) > stagnation_window:
            still = ~converged
            if np.all(norms[-1][still] >= norms[-1 - stagnation_window][still]):
                raise CGBreakdownError(
                    "stagnation",
                    f"block CG made no residual progress in any active column "
                    f"over {stagnation_window} iterations (iter {it})",
                    state=_snapshot(it),
                )
        if (
            checkpoint is not None
            and checkpoint_every is not None
            and it % checkpoint_every == 0
        ):
            checkpoint(_snapshot(it))

    return BlockCGResult(
        X=X, converged=converged, iterations=maxiter, residual_norms=norms
    )
