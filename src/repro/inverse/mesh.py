"""Structured grids for the LTI PDE substrate."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.util.validation import ReproError, check_positive_int

__all__ = ["Grid1D", "Grid2D"]


@dataclass(frozen=True)
class Grid1D:
    """Uniform 1-D grid on [0, length] with n interior-inclusive points."""

    n: int
    length: float = 1.0

    def __post_init__(self) -> None:
        check_positive_int(self.n, "n")
        if self.length <= 0:
            raise ReproError(f"length must be positive, got {self.length}")

    @property
    def h(self) -> float:
        """Grid spacing."""
        return self.length / (self.n + 1)

    @property
    def points(self) -> np.ndarray:
        """Interior point coordinates (homogeneous Dirichlet boundaries)."""
        return np.linspace(self.h, self.length - self.h, self.n)

    def nearest_index(self, x: float) -> int:
        """Index of the grid point nearest to coordinate x."""
        if not (0.0 <= x <= self.length):
            raise ReproError(f"x={x} outside [0, {self.length}]")
        return int(np.argmin(np.abs(self.points - x)))


@dataclass(frozen=True)
class Grid2D:
    """Uniform 2-D grid on [0, lx] x [0, ly], nx x ny interior points."""

    nx: int
    ny: int
    lx: float = 1.0
    ly: float = 1.0

    def __post_init__(self) -> None:
        check_positive_int(self.nx, "nx")
        check_positive_int(self.ny, "ny")
        if self.lx <= 0 or self.ly <= 0:
            raise ReproError("domain lengths must be positive")

    @property
    def n(self) -> int:
        """Total number of points (the spatial parameter dimension Nm)."""
        return self.nx * self.ny

    @property
    def hx(self) -> float:
        return self.lx / (self.nx + 1)

    @property
    def hy(self) -> float:
        return self.ly / (self.ny + 1)

    @property
    def points(self) -> np.ndarray:
        """(n, 2) coordinates, x fastest (C-order raveling of (ny, nx))."""
        xs = np.linspace(self.hx, self.lx - self.hx, self.nx)
        ys = np.linspace(self.hy, self.ly - self.hy, self.ny)
        xx, yy = np.meshgrid(xs, ys)
        return np.column_stack([xx.ravel(), yy.ravel()])

    def flat_index(self, ix: int, iy: int) -> int:
        """Flat state index of grid point (ix, iy), x fastest."""
        if not (0 <= ix < self.nx and 0 <= iy < self.ny):
            raise ReproError(f"index ({ix},{iy}) outside {self.nx}x{self.ny}")
        return iy * self.nx + ix

    def nearest_index(self, x: float, y: float) -> int:
        """Index of the grid point nearest to coordinates (x, y)."""
        pts = self.points
        return int(np.argmin((pts[:, 0] - x) ** 2 + (pts[:, 1] - y) ** 2))
