"""Gaussian priors for the linear Bayesian inverse problem.

The standard choice for spatiotemporal source inversion is a
Laplacian-like smoothness prior: ``Gamma_prior^{-1} = (delta I - gamma
Laplacian)`` applied independently at each time step (plus an optional
temporal damping), which regularizes the ill-posed inversion (paper
Section 3.2.1 notes regularization mitigates the conditioning of the
data-space Hessian).
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.util.validation import ReproError, check_positive_int

__all__ = ["GaussianPrior"]


class GaussianPrior:
    """Gaussian prior N(m_prior, Gamma_prior) over (nt, nm) source fields.

    ``Gamma_prior^{-1} = delta * I - gamma * Laplacian_1D(space)`` acting
    blockwise in time.  Exposes precision (``apply_inv``), covariance
    (``apply``) and sampling via the prefactorized sparse operators.

    Parameters
    ----------
    nm, nt:
        Spatial/temporal dimensions.
    gamma, delta:
        Smoothness and mass weights (both > 0 keeps the precision SPD).
    mean:
        Optional prior mean (defaults to zero).
    """

    def __init__(
        self,
        nm: int,
        nt: int,
        gamma: float = 1e-2,
        delta: float = 1.0,
        mean: Optional[np.ndarray] = None,
    ) -> None:
        check_positive_int(nm, "nm")
        check_positive_int(nt, "nt")
        if gamma < 0 or delta <= 0:
            raise ReproError("need gamma >= 0 and delta > 0 for an SPD prior")
        self.nm, self.nt = nm, nt
        self.gamma, self.delta = float(gamma), float(delta)
        lap = sp.diags([1.0, -2.0, 1.0], [-1, 0, 1], shape=(nm, nm))
        self._Kinv = (delta * sp.eye(nm) - gamma * lap).tocsc()  # precision
        self._solve_prec = spla.factorized(self._Kinv)
        if mean is None:
            self.mean = np.zeros((nt, nm))
        else:
            m = np.asarray(mean, dtype=np.float64)
            if m.shape != (nt, nm):
                raise ReproError(f"mean must be ({nt},{nm}), got {m.shape}")
            self.mean = m.copy()

    # -- operator actions ----------------------------------------------------
    def _check(self, m: np.ndarray) -> np.ndarray:
        a = np.asarray(m, dtype=np.float64)
        if a.shape != (self.nt, self.nm):
            raise ReproError(f"field must be ({self.nt},{self.nm}), got {a.shape}")
        return a

    def apply_inv(self, m: np.ndarray) -> np.ndarray:
        """Gamma_prior^{-1} m (blockwise in time)."""
        a = self._check(m)
        return (self._Kinv @ a.T).T

    def apply(self, m: np.ndarray) -> np.ndarray:
        """Gamma_prior m."""
        a = self._check(m)
        return np.column_stack([self._solve_prec(a[t]) for t in range(self.nt)]).T

    def apply_sqrt(self, z: np.ndarray) -> np.ndarray:
        """Gamma_prior^{1/2} z via the precision's Cholesky (L L^T = K^-1:
        Gamma^{1/2} = L^{-T}), applied blockwise in time."""
        a = self._check(z)
        L = self._chol()
        return np.linalg.solve(L.T, a.T).T

    def apply_sqrt_t(self, z: np.ndarray) -> np.ndarray:
        """Gamma_prior^{T/2} z = L^{-1} z (the transpose factor)."""
        a = self._check(z)
        L = self._chol()
        return np.linalg.solve(L, a.T).T

    def _chol(self) -> np.ndarray:
        if not hasattr(self, "_chol_cache"):
            self._chol_cache = np.linalg.cholesky(self._Kinv.toarray())
        return self._chol_cache

    # -- blocked multi-RHS actions -------------------------------------------
    # The prior acts independently on each time block's space vector, so a
    # (nt, nm, k) block flattens to one (nm, nt*k) right-hand side and
    # every action is a single sparse product / triangular solve instead
    # of k Python-level column loops (the hot path of blocked Hessian
    # actions, block CG and multi-sample draws).
    def _check_block(self, M: np.ndarray) -> np.ndarray:
        a = np.asarray(M, dtype=np.float64)
        if a.ndim != 3 or a.shape[:2] != (self.nt, self.nm):
            raise ReproError(
                f"field block must be ({self.nt},{self.nm},k), got {a.shape}"
            )
        return a

    def _to_space_rhs(self, a: np.ndarray) -> np.ndarray:
        """(nt, nm, k) -> (nm, nt*k) with space leading for one solve."""
        return a.transpose(1, 0, 2).reshape(self.nm, -1)

    def _from_space_rhs(self, flat: np.ndarray, k: int) -> np.ndarray:
        return flat.reshape(self.nm, self.nt, k).transpose(1, 0, 2)

    def apply_inv_block(self, M: np.ndarray) -> np.ndarray:
        """Gamma_prior^{-1} applied to a (nt, nm, k) block in one product."""
        a = self._check_block(M)
        return self._from_space_rhs(self._Kinv @ self._to_space_rhs(a), a.shape[2])

    def apply_block(self, M: np.ndarray) -> np.ndarray:
        """Gamma_prior applied to a (nt, nm, k) block in one sparse solve."""
        a = self._check_block(M)
        return self._from_space_rhs(
            self._solve_prec(self._to_space_rhs(a)), a.shape[2]
        )

    def apply_sqrt_block(self, Z: np.ndarray) -> np.ndarray:
        """Gamma_prior^{1/2} applied to a (nt, nm, k) block in one solve."""
        a = self._check_block(Z)
        L = self._chol()
        return self._from_space_rhs(
            np.linalg.solve(L.T, self._to_space_rhs(a)), a.shape[2]
        )

    def apply_sqrt_t_block(self, Z: np.ndarray) -> np.ndarray:
        """Gamma_prior^{T/2} applied to a (nt, nm, k) block in one solve."""
        a = self._check_block(Z)
        L = self._chol()
        return self._from_space_rhs(
            np.linalg.solve(L, self._to_space_rhs(a)), a.shape[2]
        )

    def variance_diag(self) -> np.ndarray:
        """Pointwise prior variance, shape (nt, nm) (constant over time)."""
        cov = np.linalg.inv(self._Kinv.toarray())
        return np.tile(np.diag(cov), (self.nt, 1))

    # -- sampling -----------------------------------------------------------
    def sample(self, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Draw from N(mean, Gamma_prior) via the precision's Cholesky.

        Solves ``L^T x = z`` with ``Gamma^{-1} = L L^T`` (dense Cholesky of
        the small spatial block — priors here are laptop-scale).
        """
        rng = rng if rng is not None else np.random.default_rng()
        L = np.linalg.cholesky(self._Kinv.toarray())
        z = rng.standard_normal((self.nt, self.nm))
        x = np.linalg.solve(L.T, z.T).T
        return self.mean + x

    def logdet_prec(self) -> float:
        """log det Gamma_prior^{-1} of one time block (used by the OED
        information-gain formulas)."""
        L = np.linalg.cholesky(self._Kinv.toarray())
        return 2.0 * float(np.sum(np.log(np.diag(L))))
