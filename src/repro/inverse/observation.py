"""Sensor observation operators (the B of paper Eq. 1).

A sensor reads the state at one grid point (optionally a local average
over a small stencil).  ``Nd << Nm`` because "each sensor installation
usually involves some sort of cost" (Section 3.1.1) — exactly the
short-and-wide regime the optimized SBGEMV kernel targets.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.util.validation import ReproError, check_positive_int

__all__ = ["ObservationOperator"]


class ObservationOperator:
    """Pointwise (or locally averaged) observation of the state.

    Parameters
    ----------
    n:
        State dimension.
    indices:
        Grid indices of the sensors (length Nd, unique).
    width:
        Averaging half-width in grid points (0 = pointwise).
    """

    def __init__(self, n: int, indices: Sequence[int], width: int = 0) -> None:
        check_positive_int(n, "n")
        idx = [int(i) for i in indices]
        if len(idx) == 0:
            raise ReproError("at least one sensor is required")
        if len(set(idx)) != len(idx):
            raise ReproError(f"sensor indices must be unique, got {idx}")
        for i in idx:
            if not (0 <= i < n):
                raise ReproError(f"sensor index {i} outside [0,{n})")
        if width < 0:
            raise ReproError(f"width must be >= 0, got {width}")
        self.n = n
        self.indices = tuple(idx)
        self.width = int(width)

    @property
    def nd(self) -> int:
        return len(self.indices)

    def matrix(self) -> np.ndarray:
        """Dense (Nd, n) observation matrix B."""
        B = np.zeros((self.nd, self.n))
        for row, i in enumerate(self.indices):
            lo = max(0, i - self.width)
            hi = min(self.n, i + self.width + 1)
            B[row, lo:hi] = 1.0 / (hi - lo)
        return B

    def observe(self, u: np.ndarray) -> np.ndarray:
        """Apply B to a state (n,) or a history (nt, n)."""
        a = np.asarray(u, dtype=np.float64)
        if a.ndim == 1:
            if a.shape[0] != self.n:
                raise ReproError(f"state must have {self.n} entries")
            return self.matrix() @ a
        if a.ndim == 2 and a.shape[1] == self.n:
            return a @ self.matrix().T
        raise ReproError(f"cannot observe array of shape {a.shape}")

    def adjoint(self, d: np.ndarray) -> np.ndarray:
        """Apply B^T to observations (Nd,) or histories (nt, Nd)."""
        a = np.asarray(d, dtype=np.float64)
        if a.ndim == 1:
            if a.shape[0] != self.nd:
                raise ReproError(f"observation must have {self.nd} entries")
            return self.matrix().T @ a
        if a.ndim == 2 and a.shape[1] == self.nd:
            return a @ self.matrix()
        raise ReproError(f"cannot adjoint-observe array of shape {a.shape}")
