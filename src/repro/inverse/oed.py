"""Optimal experimental design: greedy sensor placement (paper Remark 1).

The expected information gain (EIG) of a linear-Gaussian inverse problem
is the KL divergence from prior to posterior, which has the closed form::

    EIG = 1/2 * log det (I + H_d)

with ``H_d`` the prior-preconditioned data-space Hessian of the
candidate sensor set.  The greedy algorithm adds, one at a time, the
candidate sensor that maximizes the EIG — re-assembling ``H_d`` at every
evaluation, i.e. O(Nd * Nt) F/F* actions per candidate.  This is the
"outer-loop" workload where the mixed-precision matvec speedup
compounds by orders of magnitude.

Two layers of batching keep the loop off the per-column slow paths:

* every candidate Hessian is assembled through the engine's *blocked*
  pipeline (``data_space_hessian(block_k=...)`` — the columns are a
  multi-RHS block, so each chunk is one blocked F* + one blocked F pass
  instead of ``2 * nt * Nd`` single matvecs), and
* the p2o kernel rows of each sensor are computed once in a
  :class:`~repro.inverse.p2o.SensorBlockCache` and shared by every
  candidate set that contains the sensor, instead of re-running the
  impulse solves per candidate per round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.core.precision import PrecisionConfig
from repro.gpu.device import SimulatedDevice
from repro.inverse.bayes import LinearBayesianProblem
from repro.inverse.lti import LTISystem
from repro.inverse.observation import ObservationOperator
from repro.inverse.p2o import P2OMap, SensorBlockCache
from repro.inverse.prior import GaussianPrior
from repro.util.validation import ReproError, check_positive_int

__all__ = ["expected_information_gain", "greedy_sensor_placement", "OEDResult"]


def expected_information_gain(hd: np.ndarray) -> float:
    """EIG = 0.5 * log det (I + H_d) for an SPD data-space Hessian."""
    H = np.asarray(hd, dtype=np.float64)
    if H.ndim != 2 or H.shape[0] != H.shape[1]:
        raise ReproError(f"H_d must be square, got {H.shape}")
    sign, logdet = np.linalg.slogdet(np.eye(H.shape[0]) + 0.5 * (H + H.T))
    if sign <= 0:
        raise ReproError("I + H_d is not positive definite")
    return 0.5 * float(logdet)


@dataclass
class OEDResult:
    """Greedy sensor-placement outcome."""

    selected: List[int]
    gains: List[float] = field(default_factory=list)  # EIG after each pick
    evaluations: int = 0  # number of candidate EIG evaluations
    matvec_count: int = 0  # logical F/F* actions (the Remark-1 cost)
    matmat_count: int = 0  # blocked pipeline passes those actions rode in


def greedy_sensor_placement(
    system: LTISystem,
    candidates: Sequence[int],
    n_select: int,
    nt: int,
    prior: GaussianPrior,
    noise_std: float,
    config: Union[str, PrecisionConfig] = "ddddd",
    device: Optional[SimulatedDevice] = None,
    block_k: Optional[int] = None,
) -> OEDResult:
    """Greedily pick ``n_select`` sensors from ``candidates`` by EIG.

    Every candidate evaluation assembles the tentative sensor set's
    data-space Hessian through the engine's blocked multi-RHS pipeline
    in the given precision configuration — the Remark-1 workflow with
    its columns batched (``block_k`` bounds the chunk width; None runs
    all ``nt * Nd`` columns in one blocked F* / F pass each).  The p2o
    kernel rows are cached per sensor and shared across the candidate
    sets of every round.  Sizes must be laptop-scale (the Hessian is
    dense ``(nt*Nd)^2``).

    ``matvec_count`` still reports logical F/F* actions (comparable
    across blocked and looped runs); ``matmat_count`` reports how many
    blocked pipeline passes actually carried them.
    """
    check_positive_int(n_select, "n_select")
    cands = [int(c) for c in candidates]
    if len(set(cands)) != len(cands):
        raise ReproError("candidate sensor indices must be unique")
    if n_select > len(cands):
        raise ReproError(
            f"cannot select {n_select} sensors from {len(cands)} candidates"
        )
    cfg = PrecisionConfig.parse(config)
    sensor_cache = SensorBlockCache(system, nt)

    selected: List[int] = []
    gains: List[float] = []
    evaluations = 0
    matvecs = 0
    matmats = 0
    remaining = list(cands)

    for _ in range(n_select):
        best_gain, best_idx = -np.inf, None
        for cand in remaining:
            trial = selected + [cand]
            obs = ObservationOperator(system.n, trial)
            p2o = P2OMap(
                system, obs, nt, device=device,
                blocks=sensor_cache.blocks(trial),
            )
            problem = LinearBayesianProblem(p2o, prior, noise_std)
            hd = problem.data_space_hessian(config=cfg, block_k=block_k)
            evaluations += 1
            matvecs += p2o.engine.matvec_count  # one F + one F* per column
            matmats += p2o.engine.matmat_count
            gain = expected_information_gain(hd)
            if gain > best_gain:
                best_gain, best_idx = gain, cand
        assert best_idx is not None
        selected.append(best_idx)
        remaining.remove(best_idx)
        gains.append(best_gain)

    return OEDResult(
        selected=selected,
        gains=gains,
        evaluations=evaluations,
        matvec_count=matvecs,
        matmat_count=matmats,
    )
