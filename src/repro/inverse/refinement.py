"""Mixed-precision iterative refinement for the MAP system.

The paper's introduction frames its contribution within the classical
mixed-precision playbook: "iterative refinement in solving linear
systems [Carson-Higham]" — compute cheap inner solves in low precision,
recover accuracy with high-precision residuals, accepting more (cheaper)
iterations.  This module applies that playbook to the Hessian system
``H m = b`` of the Bayesian MAP problem:

* outer loop: residual ``r = b - H m`` with **double-precision** matvecs;
* inner solve: CG on ``H dm = r`` to loose tolerance with **mixed-
  precision** matvecs (e.g. ``dssdd``, the Pareto optimum);
* update ``m += dm`` in double.

Convergence to double-precision accuracy follows as long as the mixed
matvec is accurate enough for the inner solves to contract — exactly the
error-tolerance reasoning of the paper's Pareto framework.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Union

import numpy as np

from repro.core.precision import PrecisionConfig
from repro.inverse.bayes import LinearBayesianProblem
from repro.inverse.cg import conjugate_gradient
from repro.util.validation import ReproError

__all__ = ["RefinementResult", "solve_map_with_refinement"]


@dataclass
class RefinementResult:
    """Outcome of the iterative-refinement MAP solve."""

    m_map: np.ndarray
    converged: bool
    outer_iterations: int
    inner_iterations_total: int
    residual_norms: List[float] = field(default_factory=list)
    inner_config: str = ""

    @property
    def final_relative_residual(self) -> float:
        return self.residual_norms[-1] if self.residual_norms else float("nan")


def solve_map_with_refinement(
    problem: LinearBayesianProblem,
    d: np.ndarray,
    inner_config: Union[str, PrecisionConfig] = "dssdd",
    tol: float = 1e-10,
    inner_tol: float = 1e-2,
    max_outer: int = 40,
    max_inner: int = 200,
) -> RefinementResult:
    """Solve the MAP normal equations by mixed-precision refinement.

    Parameters
    ----------
    inner_config:
        Precision configuration of the inner CG's matvecs (the cheap
        work); residuals always use ``ddddd``.
    tol:
        Relative residual target in the double-precision norm.
    inner_tol:
        Inner CG relative tolerance per correction solve (loose — the
        outer loop supplies the accuracy).
    """
    if not (0 < inner_tol < 1):
        raise ReproError(f"inner_tol must be in (0,1), got {inner_tol}")
    inner_cfg = PrecisionConfig.parse(inner_config)

    b = problem.rhs(d, config="ddddd")
    bnorm = float(np.linalg.norm(b))
    if bnorm == 0.0:
        return RefinementResult(
            m_map=np.zeros_like(b),
            converged=True,
            outer_iterations=0,
            inner_iterations_total=0,
            residual_norms=[0.0],
            inner_config=str(inner_cfg),
        )

    m = np.zeros_like(b)
    norms: List[float] = []
    inner_total = 0
    prev = np.inf
    for outer in range(1, max_outer + 1):
        # High-precision residual (the refinement step's accuracy source).
        r = b - problem.hessian_action(m, config="ddddd")
        rel = float(np.linalg.norm(r)) / bnorm
        norms.append(rel)
        if rel <= tol:
            return RefinementResult(
                m_map=m,
                converged=True,
                outer_iterations=outer - 1,
                inner_iterations_total=inner_total,
                residual_norms=norms,
                inner_config=str(inner_cfg),
            )
        if rel >= prev * 0.999:
            # stagnation: the inner precision cannot contract further
            break
        prev = rel

        inner = conjugate_gradient(
            lambda v: problem.hessian_action(v, config=inner_cfg),
            r,
            tol=inner_tol,
            maxiter=max_inner,
        )
        inner_total += inner.iterations
        m = m + inner.x

    return RefinementResult(
        m_map=m,
        converged=norms[-1] <= tol,
        outer_iterations=len(norms) - 1,
        inner_iterations_total=inner_total,
        residual_norms=norms,
        inner_config=str(inner_cfg),
    )
