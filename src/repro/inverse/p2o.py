"""Parameter-to-observable map: from the LTI solver to FFTMatvec.

The p2o map F sends the source history ``m`` (nt, Nm) to the observation
history ``d`` (nt, Nd) by solving the PDE and observing.  Time
invariance makes its discrete matrix block lower-triangular Toeplitz,
so only the first block column — the observed impulse responses — is
needed (paper Section 2.4: it can be computed with ``Nd`` adjoint PDE
solves; we build it equivalently from ``Nm`` forward impulse responses
or, when ``Nd < Nm``, from ``Nd`` adjoint solves, matching the paper's
cost argument).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.core.matvec import FFTMatvec
from repro.core.precision import PrecisionConfig
from repro.core.toeplitz import BlockTriangularToeplitz
from repro.gpu.device import SimulatedDevice
from repro.inverse.lti import LTISystem
from repro.inverse.observation import ObservationOperator
from repro.util.validation import ReproError, check_positive_int

__all__ = ["build_p2o_blocks", "P2OMap", "SensorBlockCache"]


def build_p2o_blocks(
    system: LTISystem,
    obs: ObservationOperator,
    nt: int,
    method: str = "auto",
) -> np.ndarray:
    """First block column of the p2o map: blocks[t] = F_t, (nt, Nd, Nm).

    ``F_t[i, j]`` is sensor ``i``'s reading ``t`` steps after a unit
    impulse at parameter point ``j``.

    ``method``:
      * ``"forward"`` — Nm forward impulse solves (one per parameter).
      * ``"adjoint"`` — Nd adjoint solves (one per sensor); for our
        self-adjoint-in-space solvers this runs the same time stepper on
        B^T e_i and reads out all parameter points at once — the cheap
        direction when ``Nd << Nm``.
      * ``"auto"`` — adjoint when Nd < Nm.
    """
    check_positive_int(nt, "nt")
    if obs.n != system.n:
        raise ReproError(
            f"observation operator is over {obs.n} points, system over {system.n}"
        )
    if method == "auto":
        method = "adjoint" if obs.nd < system.n else "forward"
    if method not in ("forward", "adjoint"):
        raise ReproError(f"unknown method {method!r}")

    # Kernel convention: F_t = dt * B * S^{t+1} with S = (I - dt A)^{-1},
    # so that apply() agrees exactly with integrating the PDE under a
    # zero-order-hold source (see apply_via_pde).
    nm, nd = system.n, obs.nd
    blocks = np.empty((nt, nd, nm))
    if method == "forward":
        for j in range(nm):
            states = system.impulse_response(j, nt)  # (nt, n) = S^{t+1} e_j
            blocks[:, :, j] = system.dt * obs.observe(states)
        return blocks

    # Adjoint method: F_t[i, :] = (S^{t+1})^T B^T e_i * dt-normalization.
    solve_T = _factorized_transposed_stepper(system)
    B = obs.matrix()
    for i in range(nd):
        blocks[:, i, :] = _adjoint_kernel_row(solve_T, B[i].copy(), nt, system.dt)
    return blocks


def _factorized_transposed_stepper(system: LTISystem):
    """Factorize the transposed implicit-Euler stepper ``(I - dt A)^T``.

    Implicit Euler's S is symmetric for our diffusion operators when the
    spatial operator is symmetric; for generality we step with the
    transposed operator explicitly.
    """
    import scipy.sparse as sp
    import scipy.sparse.linalg as spla

    system_T = (
        sp.eye(system.n, format="csc") - system.dt * system._A.T.tocsc()
    )
    return spla.factorized(system_T)


def _adjoint_kernel_row(solve_T, w: np.ndarray, nt: int, dt: float) -> np.ndarray:
    """One sensor's kernel row (nt, Nm) from its observation row ``w``.

    The single definition of the adjoint sweep, so cached OED rows and
    ``build_p2o_blocks`` cannot drift apart.
    """
    row = np.empty((nt, w.shape[0]))
    for t in range(nt):
        w = solve_T(w)
        row[t] = dt * w
    return row


class SensorBlockCache:
    """Per-sensor p2o kernel rows, shared across OED candidate sets.

    The greedy OED loop evaluates many overlapping sensor sets per
    round; the p2o kernel row of sensor ``i`` — ``blocks[:, i, :]``,
    i.e. its observed impulse responses — depends only on ``i``, not on
    which other sensors are in the set.  This cache computes each row
    once (one adjoint time-stepping sweep, with the transposed stepper
    factorized a single time) and assembles the ``(nt, Nd, Nm)`` kernel
    of any candidate set by stacking cached rows, turning the
    per-candidate rebuild into a dictionary lookup.
    """

    def __init__(self, system: LTISystem, nt: int) -> None:
        self.system = system
        self.nt = check_positive_int(nt, "nt")
        self._solve_T = _factorized_transposed_stepper(system)
        self._rows: dict = {}

    def row(self, sensor: int, width: int = 0) -> np.ndarray:
        """Kernel row of one sensor: (nt, Nm), computed once per sensor.

        ``width`` mirrors :class:`ObservationOperator`'s averaging
        window (0 = point observation) so cached rows are exactly the
        rows ``build_p2o_blocks`` would produce.
        """
        sensor = int(sensor)
        n = self.system.n
        if not (0 <= sensor < n):
            raise ReproError(f"sensor {sensor} outside [0, {n})")
        key = (sensor, int(width))
        if key not in self._rows:
            w = ObservationOperator(n, [sensor], width=width).matrix()[0]
            self._rows[key] = _adjoint_kernel_row(
                self._solve_T, w, self.nt, self.system.dt
            )
        return self._rows[key]

    def blocks(self, sensors, width: int = 0) -> np.ndarray:
        """Kernel of a sensor set: (nt, len(sensors), Nm) stacked rows."""
        return np.stack([self.row(s, width=width) for s in sensors], axis=1)

    def __len__(self) -> int:
        return len(self._rows)


class P2OMap:
    """The p2o map with both a direct (PDE-solve) and an FFT fast path.

    Wraps the LTI system + observation operator, builds the Toeplitz
    kernel once, and exposes ``apply``/``applyT`` through
    :class:`FFTMatvec` with a selectable precision configuration — this
    is the object the Bayesian solver and the OED loop consume.

    ``blocks`` supplies a precomputed kernel (e.g. assembled from a
    :class:`SensorBlockCache`) and skips the per-construction impulse
    solves — the OED greedy loop rebuilds P2OMaps for overlapping sensor
    sets every round, so recomputing the kernel each time is pure
    double-work.
    """

    def __init__(
        self,
        system: LTISystem,
        obs: ObservationOperator,
        nt: int,
        device: Optional[SimulatedDevice] = None,
        method: str = "auto",
        blocks: Optional[np.ndarray] = None,
    ) -> None:
        self.system = system
        self.obs = obs
        self.nt = check_positive_int(nt, "nt")
        if blocks is None:
            blocks = build_p2o_blocks(system, obs, nt, method=method)
        else:
            blocks = np.asarray(blocks, dtype=np.float64)
            if blocks.shape != (nt, obs.nd, system.n):
                raise ReproError(
                    f"precomputed blocks must be ({nt}, {obs.nd}, "
                    f"{system.n}), got {blocks.shape}"
                )
        self.matrix = BlockTriangularToeplitz(blocks)
        self.engine = FFTMatvec(self.matrix, device=device)

    @property
    def nm(self) -> int:
        return self.system.n

    @property
    def nd(self) -> int:
        return self.obs.nd

    # -- fast path -----------------------------------------------------------
    def apply(
        self, m: np.ndarray, config: Union[str, PrecisionConfig] = "ddddd"
    ) -> np.ndarray:
        """d = F m via the FFT engine."""
        return self.engine.matvec(m, config=config)

    def applyT(
        self, d: np.ndarray, config: Union[str, PrecisionConfig] = "ddddd"
    ) -> np.ndarray:
        """m = F* d via the FFT engine."""
        return self.engine.rmatvec(d, config=config)

    def apply_block(
        self, M: np.ndarray, config: Union[str, PrecisionConfig] = "ddddd"
    ) -> np.ndarray:
        """D = F M for a (nt, Nm, k) block — one blocked pipeline pass."""
        return self.engine.matmat(M, config=config)

    def applyT_block(
        self, D: np.ndarray, config: Union[str, PrecisionConfig] = "ddddd"
    ) -> np.ndarray:
        """M = F* D for a (nt, Nd, k) block — one blocked pipeline pass."""
        return self.engine.rmatmat(D, config=config)

    # -- slow path (validation) --------------------------------------------------
    def apply_via_pde(self, m: np.ndarray) -> np.ndarray:
        """d = F m by actually integrating the PDE (O(nt) solves)."""
        mm = self.matrix.check_input(m)
        states = self.system.evolve(self.nt, m=mm)
        return self.obs.observe(states)
