"""Bayesian inverse-problem substrate (the paper's application context).

The block-triangular Toeplitz structure arises as the discrete
parameter-to-observable (p2o) map of a linear time-invariant dynamical
system (paper Section 2).  This package builds that context end-to-end
at laptop scale:

* :mod:`repro.inverse.mesh` — 1-D/2-D structured grids.
* :mod:`repro.inverse.lti` — LTI PDE solvers (heat / advection-
  diffusion) with implicit time stepping (scipy sparse).
* :mod:`repro.inverse.observation` — sensor observation operators B.
* :mod:`repro.inverse.p2o` — builds the p2o map's first block column
  from impulse responses and hands it to FFTMatvec; verifies the
  time-invariance ⇒ block-Toeplitz property.
* :mod:`repro.inverse.prior` — Gaussian (Laplacian-smoothness) priors.
* :mod:`repro.inverse.cg` — matrix-free conjugate gradient.
* :mod:`repro.inverse.bayes` — the linear Bayesian inverse problem:
  MAP point via CG on the Hessian (F* Γn⁻¹ F + Γpr⁻¹), using FFTMatvec
  actions in a configurable precision.
* :mod:`repro.inverse.oed` — the "outer-loop" problem of Remark 1:
  greedy optimal sensor placement maximizing expected information gain
  (KL divergence), which re-assembles the data-space Hessian and is
  where mixed-precision matvec speedups multiply.
"""

from repro.inverse.mesh import Grid1D, Grid2D
from repro.inverse.lti import HeatEquation1D, AdvectionDiffusion1D, LTISystem
from repro.inverse.observation import ObservationOperator
from repro.inverse.p2o import P2OMap, build_p2o_blocks
from repro.inverse.prior import GaussianPrior
from repro.inverse.cg import (
    conjugate_gradient,
    CGResult,
    block_conjugate_gradient,
    BlockCGResult,
)
from repro.inverse.bayes import LinearBayesianProblem, MAPResult, BlockMAPResult
from repro.inverse.oed import greedy_sensor_placement, expected_information_gain
from repro.inverse.posterior import LowRankPosterior, randomized_eig

__all__ = [
    "Grid1D",
    "Grid2D",
    "HeatEquation1D",
    "AdvectionDiffusion1D",
    "LTISystem",
    "ObservationOperator",
    "P2OMap",
    "build_p2o_blocks",
    "GaussianPrior",
    "conjugate_gradient",
    "CGResult",
    "block_conjugate_gradient",
    "BlockCGResult",
    "LinearBayesianProblem",
    "MAPResult",
    "BlockMAPResult",
    "greedy_sensor_placement",
    "expected_information_gain",
    "LowRankPosterior",
    "randomized_eig",
]
