"""Shared utilities: precision/dtype handling, timing, validation, tables.

These utilities are deliberately free of any dependency on the simulated
GPU or communication substrates so that every other subpackage can import
them without cycles.
"""

from repro.util.dtypes import (
    Precision,
    complex_dtype,
    real_dtype,
    machine_eps,
    lowest,
    highest,
    cast_to,
    fill_low_mantissa,
    dtype_itemsize,
    precision_of,
)
from repro.util.timing import SimClock, Timeline, Stream, Event, TimingReport, PhaseTimer
from repro.util.validation import (
    check_positive_int,
    check_in,
    check_array,
    ReproError,
)
from repro.util.tables import render_table, format_si, format_seconds
from repro.util.checkpoint import (
    CheckpointError,
    CheckpointFingerprintError,
    CheckpointNotFoundError,
    CheckpointSchemaError,
    CheckpointStore,
    Snapshot,
    state_fingerprint,
)

__all__ = [
    "Precision",
    "complex_dtype",
    "real_dtype",
    "machine_eps",
    "lowest",
    "highest",
    "cast_to",
    "fill_low_mantissa",
    "dtype_itemsize",
    "precision_of",
    "SimClock",
    "Timeline",
    "Stream",
    "Event",
    "TimingReport",
    "PhaseTimer",
    "check_positive_int",
    "check_in",
    "check_array",
    "ReproError",
    "render_table",
    "format_si",
    "format_seconds",
    "CheckpointError",
    "CheckpointFingerprintError",
    "CheckpointNotFoundError",
    "CheckpointSchemaError",
    "CheckpointStore",
    "Snapshot",
    "state_fingerprint",
]
