"""Plain-text table rendering for benchmark/figure output.

The benchmark harnesses regenerate each paper table/figure as text rows;
this module provides the shared renderer so every figure prints in a
consistent, diffable format.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = ["render_table", "format_si", "format_seconds", "format_bandwidth"]

_SI_PREFIXES = [
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
]


def format_si(value: float, unit: str = "", digits: int = 3) -> str:
    """Format with SI prefixes: ``format_si(5.3e12, 'B/s') -> '5.30 TB/s'``."""
    if value == 0:
        return f"0 {unit}".strip()
    av = abs(value)
    for scale, prefix in _SI_PREFIXES:
        if av >= scale:
            return f"{value / scale:.{digits}g} {prefix}{unit}".strip()
    return f"{value:.{digits}g} {unit}".strip()


def format_seconds(seconds: float) -> str:
    """Human-scale time: ns/us/ms/s."""
    av = abs(seconds)
    if av >= 1.0:
        return f"{seconds:.3f} s"
    if av >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    if av >= 1e-6:
        return f"{seconds * 1e6:.3f} us"
    return f"{seconds * 1e9:.1f} ns"


def format_bandwidth(bytes_per_s: float) -> str:
    """Bandwidth in GB/s (the unit rocblas-bench reports)."""
    return f"{bytes_per_s / 1e9:.1f} GB/s"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    *,
    title: Optional[str] = None,
    aligns: Optional[Sequence[str]] = None,
) -> str:
    """Render an ASCII table.

    ``aligns`` is a sequence of ``'l'``/``'r'`` per column (default: left
    for the first column, right for the rest, which suits name-then-numbers
    benchmark rows).
    """
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        cells.append([str(c) for c in row])

    ncol = len(headers)
    if aligns is None:
        aligns = ["l"] + ["r"] * (ncol - 1)
    widths = [max(len(r[i]) for r in cells) for i in range(ncol)]

    def fmt_row(row: List[str]) -> str:
        parts = []
        for i, cell in enumerate(row):
            if aligns[i] == "r":
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        return "| " + " | ".join(parts) + " |"

    sep = "|" + "|".join("-" * (w + 2) for w in widths) + "|"
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(cells[0]))
    lines.append(sep)
    lines.extend(fmt_row(r) for r in cells[1:])
    return "\n".join(lines)
