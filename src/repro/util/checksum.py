"""Algorithm-based fault tolerance: checksums, energy checks, bit flips.

Silent data corruption (SDC) — a flipped bit in a device buffer or a
collective payload — produces a wrong answer with no signal, which at
thousand-GPU scale is the failure mode checkpoint/restart cannot see
(PR 9's :class:`~repro.comm.fault.FailureSchedule` handles the loud
fail-stop complement).  This module holds the *math* of the defense
layer; the engines call in from their hot paths:

* **Payload digests** — a (sum, abs-sum) pair computed before a
  collective "sends" and re-verified on every received copy.  A faithful
  copy reproduces the digest bit-for-bit (same summation order over the
  same bytes), so clean runs can never false-positive; any flipped bit
  shifts the sum and is caught at receive
  (:meth:`repro.comm.simcomm.SimCommunicator.bcast` / ``reduce`` /
  ``reduce_segments``).
* **GEMM column checksums** (Huang–Abraham ABFT) — for
  ``C = op(A) @ B``, the column sums of the output panel must equal the
  checksum row ``(e^T op(A)) @ B``.  The checksum row costs one extra
  GEMM row (``1/out_rows`` of the panel work); verification is one
  streaming read of ``C``.  :func:`verify_gemm_checksums` compares the
  two against a magnitude-aware tolerance — any single bit flip whose
  induced error exceeds the accumulated-rounding bound is detected.
* **Parseval energy checks** — an FFT preserves energy:
  ``sum(x^2) == weighted(|X|^2) / n`` for the rfft half-spectrum
  (DC/Nyquist bins weigh 1, interior bins 2).  The engine's inverse is
  *unnormalized* (``out = n * irfft_math(X)``), so the inverse identity
  is ``sum(out^2) == n * weighted(|X|^2)``.  One streaming pass over
  input + output verifies an entire transform.
* **Bit flips** — :func:`flip_bit` is the seeded injector used by
  :class:`~repro.comm.fault.CorruptionSchedule`: it XORs one bit of one
  float (complex buffers are flipped in their real/imag view).  The
  default bit 62 (30 for single precision) is the exponent MSB, so the
  induced delta is never small: ``0 -> 2.0``, ``[1, 2) -> Inf/NaN``,
  ``x < 1`` -> a ``2^1023``-scale value, ``x >= 2`` -> a denormal-scale
  value (delta ``~ x``).  Every such flip sits far above the checksum
  tolerances at the repo's working precisions.

The typed errors live here too: :class:`SilentCorruption` (a check
fired — the buffer is wrong) and :class:`NumericalHealthError` (a
NaN/Inf crossed a five-phase boundary under ``validate="guard"``).
Both are re-exported from :mod:`repro.comm.fault` next to the
schedules that provoke them.

Everything operates on host numpy views (``np.asarray``) — this module
is deliberately *not* on the backend-lint paths, so the linted hot-path
modules delegate their checksum math here.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.util.validation import ReproError

__all__ = [
    "SilentCorruption",
    "NumericalHealthError",
    "payload_digest",
    "verify_payload",
    "table_digest",
    "verify_table",
    "flip_bit",
    "flip_table_bit",
    "gemm_checksum_scale",
    "verify_gemm_checksums",
    "half_spectrum_energy",
    "verify_forward_energy",
    "verify_inverse_energy",
    "ensure_finite",
    "energy_rtol",
    "gemm_rtol",
]


class SilentCorruption(ReproError):
    """A checksum/energy/payload check detected silent data corruption.

    Carries enough context to localize the fault: the ``check`` that
    fired (``"payload"``, ``"abft"``, ``"energy"``), the pipeline
    ``phase``, the ``rank`` whose buffer failed (None when unknown),
    and the ``chunk`` of a blocked apply — assigned by the catcher
    (:class:`~repro.core.elastic.ElasticEngine`) when the engine layer
    below it cannot know the chunk index.
    """

    def __init__(
        self,
        check: str,
        phase: str,
        rank: Optional[int] = None,
        chunk: Optional[int] = None,
        op: str = "",
        collective_index: Optional[int] = None,
        comm_name: str = "",
        detail: str = "",
    ) -> None:
        self.check = check
        self.phase = phase
        self.rank = rank
        self.chunk = chunk
        self.op = op
        self.collective_index = collective_index
        self.comm_name = comm_name
        self.detail = detail
        msg = f"silent data corruption: {check} check failed in phase {phase!r}"
        if rank is not None:
            msg += f" on rank {rank}"
        if op:
            msg += f" during {op!r}"
        if collective_index is not None:
            msg += f" (collective #{collective_index} on {comm_name or 'world'})"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)


class NumericalHealthError(ReproError):
    """A NaN/Inf crossed a five-phase boundary under ``validate="guard"``.

    Names the ``phase`` whose output went non-finite, plus the ``rank``
    and ``chunk`` when the caller knows them.
    """

    def __init__(
        self,
        phase: str,
        rank: Optional[int] = None,
        chunk: Optional[int] = None,
        detail: str = "",
    ) -> None:
        self.phase = phase
        self.rank = rank
        self.chunk = chunk
        self.detail = detail
        msg = f"non-finite values at the {phase!r} phase boundary"
        if rank is not None:
            msg += f" on rank {rank}"
        if chunk is not None:
            msg += f" (chunk {chunk})"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)


# -- tolerances ---------------------------------------------------------------
def _real_eps(dtype) -> float:
    dt = np.dtype(dtype)
    if dt.kind == "c":
        dt = np.dtype(np.float32) if dt.itemsize == 8 else np.dtype(np.float64)
    return float(np.finfo(dt).eps)


def gemm_rtol(dtype, length: int) -> float:
    """Relative ABFT tolerance for a GEMM with contraction length ``length``.

    A generous multiple of the worst-case accumulated rounding of the
    contraction plus the checksum fold itself — loose enough that a
    clean vendor-order or pairwise-order GEMM can never trip it, tight
    enough that an exponent-bit flip always does at the repo's panel
    sizes.
    """
    return 64.0 * max(int(length), 16) * _real_eps(dtype)


def energy_rtol(dtype) -> float:
    """Relative Parseval tolerance per transform precision."""
    return 1e-4 if _real_eps(dtype) > 1e-10 else 1e-9


# -- payload digests ----------------------------------------------------------
def _real_view(a: np.ndarray) -> np.ndarray:
    if a.dtype.kind == "c":
        return a.view(np.float32 if a.dtype.itemsize == 8 else np.float64)
    return a


def payload_digest(arr: Any) -> Tuple[float, float]:
    """(sum, abs-sum) digest of a buffer, computed in float64.

    Deterministic for a fixed buffer (one contiguous summation order),
    so a faithful copy verifies *exactly* — the clean-run false-positive
    rate is structurally zero.
    """
    a = _real_view(np.ascontiguousarray(np.asarray(arr)))
    a64 = a.astype(np.float64, copy=False)
    return float(np.sum(a64)), float(np.sum(np.abs(a64)))


def _same_digest(a: float, b: float) -> bool:
    return a == b or (math.isnan(a) and math.isnan(b))


def verify_payload(
    arr: Any,
    digest: Tuple[float, float],
    *,
    op: str,
    phase: str,
    rank: Optional[int] = None,
    collective_index: Optional[int] = None,
    comm_name: str = "",
) -> None:
    """Raise :class:`SilentCorruption` unless ``arr`` reproduces ``digest``."""
    got = payload_digest(arr)
    if _same_digest(got[0], digest[0]) and _same_digest(got[1], digest[1]):
        return
    raise SilentCorruption(
        check="payload",
        phase=phase,
        rank=rank,
        op=op,
        collective_index=collective_index,
        comm_name=comm_name,
        detail=f"digest {got} != sent {digest}",
    )


def table_digest(table: Dict[Tuple[int, int], Any]) -> Tuple:
    """Digest of a canonical-segment table (the pairwise reduce payload)."""
    return tuple(
        (key, payload_digest(table[key])) for key in sorted(table.keys())
    )


def verify_table(
    table: Dict[Tuple[int, int], Any],
    digest: Tuple,
    *,
    op: str,
    phase: str,
    rank: Optional[int] = None,
    collective_index: Optional[int] = None,
    comm_name: str = "",
) -> None:
    """Per-segment payload verification of a rank's segment table."""
    for key, seg_digest in digest:
        got = payload_digest(table[key])
        if _same_digest(got[0], seg_digest[0]) and _same_digest(
            got[1], seg_digest[1]
        ):
            continue
        raise SilentCorruption(
            check="payload",
            phase=phase,
            rank=rank,
            op=op,
            collective_index=collective_index,
            comm_name=comm_name,
            detail=f"segment {key} digest {got} != sent {seg_digest}",
        )


# -- bit-flip injection -------------------------------------------------------
_UINT = {4: np.uint32, 8: np.uint64}


def flip_bit(arr: Any, index: int, bit: int = 62) -> Tuple[int, float, float]:
    """Flip one bit of one float element of ``arr``, in place.

    Complex buffers are flipped in their real/imag float view; ``index``
    addresses that flat float view (modulo its size) and ``bit`` is
    clamped to the dtype's exponent MSB (62 for 8-byte floats, 30 for
    4-byte).  Returns ``(flat_index, old_value, new_value)`` for
    diagnostics.  The buffer must be C-contiguous — every injection
    site in the engines hands over a freshly produced contiguous
    buffer, and a silent copy here would discard the flip.
    """
    a = np.asarray(arr)
    if a.dtype.kind not in "fc":
        raise ReproError(f"flip_bit expects a float/complex buffer, got {a.dtype}")
    view = _real_view(a)
    if not view.flags["C_CONTIGUOUS"]:
        raise ReproError("flip_bit requires a C-contiguous buffer")
    flat = view.reshape(-1)
    if flat.shape[0] == 0:
        raise ReproError("flip_bit got an empty buffer")
    idx = int(index) % int(flat.shape[0])
    b = min(int(bit), view.dtype.itemsize * 8 - 2)
    old = float(flat[idx])
    u = flat[idx : idx + 1].view(_UINT[view.dtype.itemsize])
    u ^= _UINT[view.dtype.itemsize](1 << b)
    return idx, old, float(flat[idx])


def flip_table_bit(
    table: Dict[Tuple[int, int], Any], index: int, bit: int = 62
) -> Tuple[Tuple[int, int], int]:
    """Flip one bit in one segment of a canonical-segment table, in place.

    The segment is chosen deterministically from ``index`` (sorted key
    order), the element within it from the same index; returns the
    ``(segment_key, flat_index)`` hit.
    """
    keys = sorted(table.keys())
    if not keys:
        raise ReproError("flip_table_bit got an empty segment table")
    key = keys[int(index) % len(keys)]
    flat_idx, _, _ = flip_bit(table[key], index, bit=bit)
    return key, flat_idx


# -- GEMM column checksums (ABFT) ---------------------------------------------
def gemm_checksum_scale(opA: Any, B: Any) -> np.ndarray:
    """Magnitude yardstick for the ABFT tolerance: ``(e^T |op(A)|) |B|``.

    The same contraction the checksum row performs, over absolute
    values — the natural bound on how much rounding the checksum
    comparison can legitimately accumulate.
    """
    a = np.abs(np.asarray(opA)).astype(np.float64, copy=False)
    b = np.abs(np.asarray(B)).astype(np.float64, copy=False)
    return np.matmul(np.sum(a, axis=-2, keepdims=True), b)


def verify_gemm_checksums(
    expected: Any,
    got: Any,
    scale: Any,
    length: int,
    *,
    phase: str = "sbgemv",
    rank: Optional[int] = None,
    context: str = "",
    rtol: Optional[float] = None,
) -> None:
    """Compare a GEMM checksum row against the output panel's column sums.

    ``expected`` is ``(e^T op(A)) @ B``, ``got`` is ``e^T C``, ``scale``
    is the same contraction over magnitudes ``(e^T |op(A)|) @ |B|`` —
    the natural yardstick for accumulated rounding.  ``length`` is the
    contraction length (rows summed per output column *plus* the
    checksum fold).  NaN/Inf anywhere in the comparison counts as a
    failure (``diff <= tol`` is False for NaN), so a flip that poisons
    a column is detected even though its difference is not a number.
    """
    e = np.asarray(expected)
    g = np.asarray(got)
    s = np.abs(np.asarray(scale, dtype=np.float64))
    if rtol is None:
        rtol = gemm_rtol(e.dtype, length)
    tol = rtol * s + float(np.finfo(np.float64).tiny)
    # Inf-Inf / Inf*0 in a poisoned panel yield NaN diffs without
    # tripping numpy warnings; NaN then fails the <= below (detected).
    with np.errstate(over="ignore", invalid="ignore"):
        diff = np.abs(
            e.astype(np.complex128, copy=False)
            - g.astype(np.complex128, copy=False)
        )
    if bool(np.all(np.less_equal(diff, tol))):
        return
    bad = int(np.sum(~np.less_equal(diff, tol)))
    worst = float(np.nanmax(np.where(np.isfinite(diff), diff, np.inf)))
    raise SilentCorruption(
        check="abft",
        phase=phase,
        rank=rank,
        detail=(
            f"{bad} of {diff.size} column checksums off"
            f" (worst |delta| {worst:.3e}, rtol {rtol:.1e})"
            + (f" [{context}]" if context else "")
        ),
    )


# -- Parseval energy checks ---------------------------------------------------
def half_spectrum_energy(X: Any, n: int) -> float:
    """Weighted power of an rfft half-spectrum of transform length ``n``.

    Interior bins appear twice in the full spectrum (Hermitian mirror),
    DC — and Nyquist when ``n`` is even — once; the weighted sum equals
    ``sum(|X_full|^2)`` of the implied full spectrum.
    """
    a = np.asarray(X)
    # A corrupted buffer may hold Inf/NaN; the squares then propagate
    # non-finite energy (which _check_energy treats as a detection)
    # without tripping numpy's warning machinery mid-check.
    with np.errstate(over="ignore", invalid="ignore"):
        p = (
            np.square(a.real.astype(np.float64, copy=False))
            + np.square(a.imag.astype(np.float64, copy=False))
            if a.dtype.kind == "c"
            else np.square(a.astype(np.float64, copy=False))
        )
    total = 2.0 * float(np.sum(p)) - float(np.sum(p[..., 0]))
    if n % 2 == 0:
        total -= float(np.sum(p[..., -1]))
    return total


def _check_energy(
    a: float,
    b: float,
    rtol: float,
    *,
    phase: str,
    rank: Optional[int],
    context: str,
) -> None:
    # A non-finite energy is always a detection: clean transforms of
    # finite data cannot overflow the float64 energy sum, and letting an
    # Inf operand through would inflate the tolerance to Inf (making
    # ``Inf <= Inf`` pass for an overflowed corrupted buffer).
    if math.isfinite(a) and math.isfinite(b):
        tol = rtol * (max(abs(a), abs(b)) + float(np.finfo(np.float64).tiny))
        diff = abs(a - b)
        if diff <= tol:
            return
    else:
        diff = abs(a - b)
    raise SilentCorruption(
        check="energy",
        phase=phase,
        rank=rank,
        detail=(
            f"Parseval mismatch {a:.9e} vs {b:.9e}"
            f" (|delta| {diff:.3e}, rtol {rtol:.1e})"
            + (f" [{context}]" if context else "")
        ),
    )


def verify_forward_energy(
    x: Any,
    X: Any,
    n: int,
    *,
    phase: str = "fft",
    rank: Optional[int] = None,
    context: str = "",
    rtol: Optional[float] = None,
) -> None:
    """Check ``sum(x^2) == weighted(|X|^2) / n`` for a forward rfft."""
    if rtol is None:
        rtol = energy_rtol(np.asarray(X).dtype)
    with np.errstate(over="ignore", invalid="ignore"):
        tx = float(
            np.sum(np.square(np.asarray(x).astype(np.float64, copy=False)))
        )
    _check_energy(
        tx,
        half_spectrum_energy(X, n) / float(n),
        rtol,
        phase=phase,
        rank=rank,
        context=context,
    )


def verify_inverse_energy(
    X: Any,
    out: Any,
    n: int,
    *,
    phase: str = "ifft",
    rank: Optional[int] = None,
    context: str = "",
    rtol: Optional[float] = None,
) -> None:
    """Check ``sum(out^2) == n * weighted(|X|^2)`` — the engine's inverse
    is unnormalized (``out = n * irfft_math(X)``), so the identity picks
    up a factor ``n^2 / n``."""
    if rtol is None:
        rtol = energy_rtol(np.asarray(X).dtype)
    with np.errstate(over="ignore", invalid="ignore"):
        to = float(
            np.sum(np.square(np.asarray(out).astype(np.float64, copy=False)))
        )
    _check_energy(
        half_spectrum_energy(X, n) * float(n),
        to,
        rtol,
        phase=phase,
        rank=rank,
        context=context,
    )


# -- numerical-health guard ---------------------------------------------------
def ensure_finite(
    arr: Any,
    *,
    phase: str,
    rank: Optional[int] = None,
    chunk: Optional[int] = None,
    what: str = "",
) -> None:
    """Raise :class:`NumericalHealthError` if ``arr`` holds NaN/Inf."""
    a = np.asarray(arr)
    finite = np.isfinite(a)
    if bool(np.all(finite)):
        return
    bad = int(a.size - np.sum(finite))
    raise NumericalHealthError(
        phase=phase,
        rank=rank,
        chunk=chunk,
        detail=f"{bad} of {a.size} values non-finite"
        + (f" in {what}" if what else ""),
    )
