"""Chunking helpers for the blocked multi-RHS paths.

Every blocked consumer — the grid engine, dense-operator assembly, the
overlapped pipeline — bounds its per-pass workspace by splitting ``k``
right-hand sides into chunks of at most ``max_block_k`` columns.  The
contract all of them share: chunks are contiguous, ordered, cover
``range(k)`` exactly once, and there are ``ceil(k / max_block_k)`` of
them — which is also the number of collectives / pipeline passes the
chunked path performs.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.util.validation import ReproError, check_positive_int

__all__ = [
    "chunk_ranges",
    "n_chunks",
    "validate_max_block_k",
    "check_block",
    "check_out_buffer",
]


def check_out_buffer(out, shape: tuple, what: str = "out"):
    """Validate a caller-supplied output buffer, or pass through ``None``.

    The single definition of the ``out=`` contract shared by the
    single-device and grid engines: exact ``shape``, float64,
    C-contiguous, writeable.
    """
    if out is None:
        return None
    if out.shape != tuple(shape) or out.dtype != np.float64:
        raise ReproError(
            f"{what} buffer must be {tuple(shape)} float64, "
            f"got {out.shape} {out.dtype}"
        )
    if not out.flags["C_CONTIGUOUS"] or not out.flags["WRITEABLE"]:
        raise ReproError(f"{what} buffer must be C-contiguous and writeable")
    return out


def check_block(V, nt: int, nx: int, what: str) -> np.ndarray:
    """Validate/reshape a multi-RHS block to ``(nt, nx, k)`` float64.

    Accepts the native ``(nt, nx, k)`` layout or scipy-style
    ``(nt*nx, k)`` stacked flat vectors.  The single definition of the
    block-input contract shared by the single-device and grid engines.
    """
    a = np.asarray(V)
    if a.ndim == 2:
        if a.shape[0] != nt * nx:
            raise ReproError(
                f"{what} block matrix must have {nt * nx} rows "
                f"(= Nt * {nx}), got {a.shape[0]}"
            )
        a = a.reshape(nt, nx, a.shape[1])
    if a.ndim != 3 or a.shape[:2] != (nt, nx):
        raise ReproError(
            f"{what} block must be ({nt}, {nx}, k) or "
            f"({nt * nx}, k), got {np.asarray(V).shape}"
        )
    return a.astype(np.float64, copy=False)


def chunk_ranges(k: int, max_block_k: Optional[int] = None) -> List[Tuple[int, int]]:
    """Contiguous ``(start, stop)`` column ranges covering ``range(k)``.

    ``max_block_k=None`` means unbounded: one chunk with all k columns.

    >>> chunk_ranges(10, 4)
    [(0, 4), (4, 8), (8, 10)]
    >>> chunk_ranges(10)
    [(0, 10)]
    >>> chunk_ranges(3, 8)  # cap above k: still one chunk
    [(0, 3)]
    """
    check_positive_int(k, "k")
    if max_block_k is None:
        return [(0, k)]
    check_positive_int(max_block_k, "max_block_k")
    return [(j, min(j + max_block_k, k)) for j in range(0, k, max_block_k)]


def n_chunks(k: int, max_block_k: Optional[int] = None) -> int:
    """Number of chunks ``chunk_ranges`` produces: ``ceil(k / max_block_k)``.

    This is also the number of collectives (and pipeline passes) a
    blocked path pays for ``k`` right-hand sides.

    >>> n_chunks(10, 4)
    3
    >>> n_chunks(10)
    1
    """
    if max_block_k is None:
        check_positive_int(k, "k")
        return 1
    return len(chunk_ranges(k, max_block_k))


def validate_max_block_k(max_block_k: Optional[int]) -> Optional[int]:
    """Validate a chunk-size knob (None = unbounded).

    >>> validate_max_block_k(4)
    4
    >>> validate_max_block_k(None) is None
    True
    """
    if max_block_k is None:
        return None
    if int(max_block_k) != max_block_k or max_block_k < 1:
        raise ReproError(f"max_block_k must be a positive int or None, got {max_block_k}")
    return int(max_block_k)
