"""Fixed-order pairwise (binary-tree) reduction machinery.

Floating-point addition is not associative, so the *grouping* of a sum
is part of its numerical identity.  BLAS kernels accumulate GEMM panels
in whatever order the tiling dictates, and a distributed row-reduce
groups per-rank partial sums by rank — both change bits the moment the
partition (or the RHS block width) changes.  This module pins one
canonical grouping for any contraction axis of length ``n``:

* Leaves are the ``n`` global contraction indices, embedded in a
  *virtual* complete binary tree over ``[0, N)`` with
  ``N = virtual_span(n)`` (the next power of two).  Nodes whose span
  lies entirely at or beyond ``n`` are *absent*; a node with an absent
  right child takes its left child's value unchanged (no addition).
* :func:`canonical_segments` decomposes any contiguous index range into
  the unique maximal set of tree nodes covering it (at most
  ``2*log2(n)`` of them) — the standard segment-tree decomposition.
* :func:`fold_pairwise` evaluates one node's value from its present
  leaves by level-order adjacent pairing with odd-tail passthrough,
  which is provably the same grouping as the virtual tree (an unpaired
  trailing node at any level is exactly a node with an absent right
  sibling).
* :func:`fixed_tree_merge` combines per-segment node values up the tree
  by splitting at virtual midpoints, so *every* addition performed —
  inside segments and across them — is an edge of the one fixed tree.

The consequence the engines build on: however ``[0, n)`` is partitioned
into contiguous ranges, computing each range's canonical segment values
locally and merging them yields the root value **bitwise identical** to
any other partition (including the trivial single-range one).  Adjacent
pairing is also how :func:`repro.comm.collectives.tree_reduce_arrays`
folds per-rank contributions, so the intra-rank and inter-rank trees
compose into a single reduction order.

Everything here is elementwise (``multiply``/``add`` through the
backend seam, never ``matmul``), because a fused multiply-add or a
vendor dot-product kernel would regroup the sum we are pinning down.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.backend import Backend, NumpyBackend
from repro.util.validation import ReproError

__all__ = [
    "virtual_span",
    "canonical_segments",
    "fold_pairwise",
    "fixed_tree_merge",
    "validate_segments",
]

_NUMPY = NumpyBackend()

Segment = Tuple[int, int]


def virtual_span(n: int) -> int:
    """Smallest power of two >= ``n`` (the virtual tree's leaf count)."""
    if n < 1:
        raise ReproError(f"n must be >= 1, got {n}")
    return 1 << (n - 1).bit_length()


def canonical_segments(start: int, stop: int, n: int) -> Tuple[Segment, ...]:
    """Maximal tree nodes tiling the contiguous range ``[start, stop)``.

    Returns virtual extents ``(s, e)`` with ``e - s`` a power of two and
    ``s`` a multiple of ``e - s`` — i.e. genuine nodes of the virtual
    tree over ``[0, virtual_span(n))``.  When ``stop == n`` the trailing
    segment may extend past ``n``: its absent leaves contribute nothing
    (passthrough), so its value still equals the sum over
    ``[s, n)`` — and, crucially, it *is* a tree node, which is what lets
    :func:`fixed_tree_merge` combine segments from different ranks
    without ever splitting one.

    At most ``2 * ceil(log2(n))`` segments are produced, and no two are
    siblings (a sibling pair would have been their parent instead).
    """
    if not 0 <= start < stop <= n:
        raise ReproError(
            f"need 0 <= start < stop <= n, got [{start}, {stop}) with n={n}"
        )
    span = virtual_span(n)
    # Ranges ending at n own the virtual tail: let their last segment
    # round up to a full node.  Interior ranges must stop exactly.
    bound = span if stop >= n else stop
    segments: List[Segment] = []
    cur = start
    while cur < stop:
        size = (cur & -cur) or span  # largest node starting at cur
        while cur + size > bound:
            size //= 2
        segments.append((cur, cur + size))
        cur += size
    return tuple(segments)


def _axis_index(axis: int, sl: Any) -> Tuple[Any, ...]:
    return (slice(None),) * axis + (sl,)


def fold_pairwise(leaves: Any, axis: int = 0, backend: Optional[Backend] = None) -> Any:
    """Reduce ``leaves`` along ``axis`` in fixed level-order pairs.

    Level by level, adjacent pairs are added and an odd trailing node
    passes through unchanged — the grouping of a complete binary tree
    over the next power of two with absent leaves skipped.  Returns the
    root value with ``axis`` removed.  Additions happen in the input
    dtype via ``backend.add`` (elementwise — per-output-element order is
    independent of every other axis, which is what makes blocked and
    looped applies bitwise-identical).
    """
    be = backend if backend is not None else _NUMPY
    count = int(leaves.shape[axis])
    if count < 1:
        raise ReproError(f"cannot fold an empty axis (axis {axis})")
    if count == 1:
        return leaves[_axis_index(axis, 0)]
    # `block` holds this level's nodes stacked along `axis`; `tail` is
    # an optional final node (axis removed) that an earlier odd level
    # left unpaired.  Pairing is positional over block-nodes + tail.
    block: Optional[Any] = leaves
    tail: Optional[Any] = None
    q = count
    while q + (1 if tail is not None else 0) > 1:
        if q == 0:
            break
        if tail is None:
            pairs = q // 2
            summed = be.add(
                block[_axis_index(axis, slice(0, 2 * pairs, 2))],
                block[_axis_index(axis, slice(1, 2 * pairs, 2))],
            )
            tail = block[_axis_index(axis, q - 1)] if q % 2 else None
            block, q = summed, pairs
        elif q % 2 == 0:
            # Even block + tail: block pairs internally, tail stays odd.
            pairs = q // 2
            block = be.add(
                block[_axis_index(axis, slice(0, 2 * pairs, 2))],
                block[_axis_index(axis, slice(1, 2 * pairs, 2))],
            )
            q = pairs
        else:
            # Odd block + tail: the last block node pairs with the tail.
            pairs = (q - 1) // 2
            new_tail = be.add(block[_axis_index(axis, q - 1)], tail)
            if pairs:
                block = be.add(
                    block[_axis_index(axis, slice(0, 2 * pairs, 2))],
                    block[_axis_index(axis, slice(1, 2 * pairs, 2))],
                )
            else:
                block = None
            tail, q = new_tail, pairs
    if q >= 1:
        return block[_axis_index(axis, 0)]
    return tail


def validate_segments(segments: Mapping[Segment, Any], n: int) -> None:
    """Check that segment keys canonically tile ``[0, n)``.

    Every key must be a virtual tree node (power-of-two length, aligned
    start), they must be disjoint, and together they must cover exactly
    ``[0, n)`` (virtual tails past ``n`` allowed only on the last one).
    """
    if not segments:
        raise ReproError("no segments to merge")
    span = virtual_span(n)
    keys = sorted(segments.keys())
    cur = 0
    for s, e in keys:
        size = e - s
        if size < 1 or (size & (size - 1)) or s % size or e > span:
            raise ReproError(f"({s}, {e}) is not a node of the virtual tree [0, {span})")
        if s != cur:
            raise ReproError(
                f"segments must tile [0, {n}) contiguously; gap/overlap at {cur} vs ({s}, {e})"
            )
        cur = e
    # Either the segments end exactly at n, or the last one is a tail
    # node whose present leaves reach n and whose absent leaves extend
    # virtually past it.
    if not (cur == n or keys[-1][0] < n < cur):
        raise ReproError(f"segments cover [0, {cur}), expected [0, {n})")


def fixed_tree_merge(
    segments: Mapping[Segment, Any],
    n: int,
    backend: Optional[Backend] = None,
) -> Any:
    """Combine canonical segment values into the tree's root value.

    ``segments`` maps virtual extents (from :func:`canonical_segments`,
    possibly produced by different ranks over different sub-ranges) to
    their node values.  The merge recurses from the virtual root,
    splitting at node midpoints and skipping absent right children, so
    each addition is a tree edge — the result is bitwise-independent of
    how ``[0, n)`` was partitioned.  Segment values are consumed as-is
    (cast before calling if a reduction precision is required).
    """
    be = backend if backend is not None else _NUMPY
    validate_segments(segments, n)
    span = virtual_span(n)

    def node_value(s: int, e: int) -> Any:
        found = segments.get((s, e))
        if found is not None:
            return found
        mid = (s + e) // 2
        left = node_value(s, mid)
        if mid >= n:
            return left  # absent right child: passthrough, no addition
        return be.add(left, node_value(mid, e))

    return node_value(0, span)
