"""Argument-validation helpers shared across the library.

The substrates raise :class:`ReproError` (or its subclasses) for
user-facing misuse so callers can distinguish library errors from NumPy
internals.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

__all__ = [
    "ReproError",
    "UnsupportedError",
    "check_positive_int",
    "check_in",
    "check_array",
]


class ReproError(Exception):
    """Base class for user-facing errors raised by the repro library."""


class UnsupportedError(ReproError):
    """A requested functionality has no (simulated) backend support.

    Mirrors the "Not Supported" errors that hipify raises for CUDA
    features lacking a HIP counterpart.
    """


def check_positive_int(value, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it as int."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ReproError(f"{name} must be a positive integer, got {value!r}")
    v = int(value)
    if v <= 0:
        raise ReproError(f"{name} must be positive, got {v}")
    return v


def check_in(value, options: Iterable, name: str):
    """Validate membership of ``value`` in ``options``."""
    opts = list(options)
    if value not in opts:
        raise ReproError(f"{name} must be one of {opts}, got {value!r}")
    return value


def check_array(
    arr,
    name: str,
    *,
    ndim: Optional[int] = None,
    shape: Optional[Sequence[Optional[int]]] = None,
    dtypes: Optional[Sequence] = None,
) -> np.ndarray:
    """Validate an ndarray's rank/shape/dtype; returns ``np.asarray(arr)``.

    ``shape`` entries of ``None`` are wildcards.
    """
    a = np.asarray(arr)
    if ndim is not None and a.ndim != ndim:
        raise ReproError(f"{name} must have ndim={ndim}, got ndim={a.ndim}")
    if shape is not None:
        if a.ndim != len(shape):
            raise ReproError(
                f"{name} must have shape {tuple(shape)}, got {a.shape}"
            )
        for i, (want, have) in enumerate(zip(shape, a.shape)):
            if want is not None and want != have:
                raise ReproError(
                    f"{name} axis {i} must have length {want}, got {have}"
                )
    if dtypes is not None:
        allowed = {np.dtype(d) for d in dtypes}
        if a.dtype not in allowed:
            raise ReproError(
                f"{name} dtype must be one of {sorted(str(d) for d in allowed)},"
                f" got {a.dtype}"
            )
    return a
