"""Precision lattice and dtype utilities.

The paper's mixed-precision framework assigns each of the five matvec
phases a compute precision of single (FP32) or double (FP64).  This module
defines the :class:`Precision` enum, the mapping between precisions and
NumPy real/complex dtypes, machine epsilons, and helpers used throughout
the matvec engine:

* :func:`lowest` / :func:`highest` implement the lattice used to pick the
  precision of memory operations between two compute phases (the paper
  performs padding/unpadding/reordering "in the lowest possible precision
  among the compute precisions of adjacent phases").
* :func:`fill_low_mantissa` reproduces the paper's test-vector
  initialization: mantissa bits below double's 52-bit field but above
  single's 23-bit field are forced to one so that casting to FP32 always
  incurs representable error (Section 4.2.1: "setting mantissa bits in
  positions greater than 23 to one").
"""

from __future__ import annotations

import enum
from typing import Union

import numpy as np

__all__ = [
    "Precision",
    "real_dtype",
    "complex_dtype",
    "machine_eps",
    "lowest",
    "highest",
    "cast_to",
    "fill_low_mantissa",
    "dtype_itemsize",
    "precision_of",
]


class Precision(enum.Enum):
    """Compute precision of a phase: single (FP32) or double (FP64)."""

    SINGLE = "s"
    DOUBLE = "d"

    @classmethod
    def parse(cls, token: Union[str, "Precision"]) -> "Precision":
        """Parse ``'s'``/``'d'`` (or ``'single'``/``'double'``) tokens."""
        if isinstance(token, Precision):
            return token
        t = str(token).strip().lower()
        if t in ("s", "single", "fp32", "float32", "f32"):
            return cls.SINGLE
        if t in ("d", "double", "fp64", "float64", "f64"):
            return cls.DOUBLE
        raise ValueError(f"unknown precision token {token!r}")

    @property
    def char(self) -> str:
        return self.value

    def __lt__(self, other: "Precision") -> bool:
        # SINGLE < DOUBLE in the precision lattice.
        order = {Precision.SINGLE: 0, Precision.DOUBLE: 1}
        return order[self] < order[other]

    def __le__(self, other: "Precision") -> bool:
        return self == other or self < other


_REAL = {Precision.SINGLE: np.dtype(np.float32), Precision.DOUBLE: np.dtype(np.float64)}
_COMPLEX = {Precision.SINGLE: np.dtype(np.complex64), Precision.DOUBLE: np.dtype(np.complex128)}
_EPS = {
    Precision.SINGLE: float(np.finfo(np.float32).eps),
    Precision.DOUBLE: float(np.finfo(np.float64).eps),
}


def real_dtype(prec: Precision) -> np.dtype:
    """Real NumPy dtype for a precision (float32 or float64)."""
    return _REAL[Precision.parse(prec)]


def complex_dtype(prec: Precision) -> np.dtype:
    """Complex NumPy dtype for a precision (complex64 or complex128)."""
    return _COMPLEX[Precision.parse(prec)]


def machine_eps(prec: Precision) -> float:
    """Unit roundoff for the precision (~1.19e-7 single, ~2.22e-16 double)."""
    return _EPS[Precision.parse(prec)]


def lowest(a: Precision, b: Precision) -> Precision:
    """Lower of two precisions (memory ops run at the lower neighbour)."""
    a, b = Precision.parse(a), Precision.parse(b)
    return a if a <= b else b


def highest(a: Precision, b: Precision) -> Precision:
    """Higher of two precisions (accumulations run at the higher one)."""
    a, b = Precision.parse(a), Precision.parse(b)
    return b if a <= b else a


def precision_of(dtype) -> Precision:
    """Precision enum for a NumPy dtype (real or complex)."""
    dt = np.dtype(dtype)
    if dt in (np.dtype(np.float32), np.dtype(np.complex64)):
        return Precision.SINGLE
    if dt in (np.dtype(np.float64), np.dtype(np.complex128)):
        return Precision.DOUBLE
    raise ValueError(f"dtype {dt} has no single/double precision classification")


def dtype_itemsize(dtype) -> int:
    """Bytes per element of a dtype."""
    return int(np.dtype(dtype).itemsize)


def cast_to(arr: np.ndarray, prec: Precision) -> np.ndarray:
    """Cast an array to the given precision, preserving real/complexness.

    Returns the input unchanged (no copy) when already at the target
    precision, matching the engine's behaviour of skipping no-op casts.
    """
    prec = Precision.parse(prec)
    target = complex_dtype(prec) if np.iscomplexobj(arr) else real_dtype(prec)
    if arr.dtype == target:
        return arr
    return arr.astype(target)


def fill_low_mantissa(arr: np.ndarray) -> np.ndarray:
    """Make float64 values maximally unrepresentable in float32 (a copy).

    This reproduces the paper's initialization trick (Section 4.2.1): the
    resulting doubles are *not* exactly representable in float32, so any
    phase computed in single precision incurs genuine rounding error.
    Without it, phases that only move memory (broadcast, padding) would
    show zero error in single precision and bias the Pareto analysis.

    Bits 29..51 of the mantissa (the ones float32 retains) are left
    as-is; the discarded low field is set to exactly half a float32 ulp.
    Zeros, subnormals, infs and NaNs are left untouched to keep the
    value's magnitude.
    """
    a = np.ascontiguousarray(arr, dtype=np.float64).copy()
    bits = a.view(np.uint64)
    # Only normal numbers: for subnormals the low mantissa bits ARE the
    # value and filling them would change it arbitrarily.
    normal = np.isfinite(a) & (np.abs(a) >= np.finfo(np.float64).tiny)
    # float64 mantissa occupies bits 0..51; float32 keeps the top 23 of
    # those (bits 29..51).  Set the discarded field to exactly half a
    # float32 ulp (bit 28 set, bits below cleared): the value then sits
    # maximally far (2^-24 relative) from every float32, so any phase
    # that rounds to single precision commits a full half-ulp error.
    # (Setting *all* low bits to one would leave the value only one
    # double-ulp below a representable float32 — nearly free to round.)
    low_mask = np.uint64((1 << 29) - 1)
    half_ulp32 = np.uint64(1 << 28)
    bits[normal] = (bits[normal] & ~low_mask) | half_ulp32
    return bits.view(np.float64)
