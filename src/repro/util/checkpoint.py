"""Versioned, fingerprint-keyed snapshots of solver state.

The ROADMAP's production setting — thousands of GPUs, 24-hour SLURM
walls — makes rank loss and wall-time eviction the common case, and the
iterative consumers (block CG, randomized posterior eig,
``measure_rebalance_loop``) otherwise lose everything on one failure.
This module is the serialization half of the fault-tolerance story:

* :class:`CheckpointStore` — a store of :class:`Snapshot` objects keyed
  by ``(key, step)``.  In-memory by default, directory-backed (atomic
  ``.npz`` files) when given a ``root`` path, so a restarted process can
  resume from what an evicted one saved.
* Every snapshot carries a **schema version** and an **operator
  fingerprint** (e.g. :func:`repro.serve.cache.operator_fingerprint` of
  the Toeplitz kernel, or :func:`state_fingerprint` of whatever the
  caller's state derives from).  Loading validates both *before*
  returning any arrays: a mismatch raises a typed error naming the
  offending fingerprint — resuming block CG against a different operator
  would silently converge to a wrong answer, so silence is never an
  option.
* Arrays are copied on save and on load.  Resume paths rely on the
  snapshot being the exact bits of the solver state at the boundary;
  aliasing a live buffer that the solver keeps mutating would break the
  bitwise-resume guarantee.

Snapshot steps are monotonically increasing per key (``save`` without an
explicit ``step`` appends); ``load`` returns the latest step by default,
which is what a wall-time-evicted job wants on restart.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.util.validation import ReproError

__all__ = [
    "SCHEMA_VERSION",
    "CheckpointError",
    "CheckpointNotFoundError",
    "CheckpointFingerprintError",
    "CheckpointSchemaError",
    "Snapshot",
    "CheckpointStore",
    "state_fingerprint",
]

#: Current snapshot schema version.  Bump when the on-disk layout of
#: snapshots changes incompatibly; loads of other versions raise
#: :class:`CheckpointSchemaError` rather than guessing.
SCHEMA_VERSION = 1

_KEY_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]*")
_META_ENTRY = "__checkpoint_meta__"


class CheckpointError(ReproError):
    """Base class for checkpoint store errors."""


class CheckpointNotFoundError(CheckpointError):
    """No snapshot exists for the requested key/step."""


class CheckpointFingerprintError(CheckpointError):
    """Snapshot fingerprint does not match the operator being resumed.

    Carries both sides so callers (and test asserts) can see exactly
    which fingerprint was offending: ``expected`` is what the caller's
    live operator hashes to, ``found`` is what the snapshot was saved
    under.
    """

    def __init__(self, key: str, expected: str, found: str) -> None:
        self.key = key
        self.expected = expected
        self.found = found
        super().__init__(
            f"checkpoint {key!r} was saved for operator fingerprint "
            f"{found!r} but the caller is resuming fingerprint "
            f"{expected!r}; refusing to resume against a different operator"
        )


class CheckpointSchemaError(CheckpointError):
    """Snapshot schema version does not match :data:`SCHEMA_VERSION`."""

    def __init__(self, key: str, found_version: int, fingerprint: str) -> None:
        self.key = key
        self.found_version = int(found_version)
        self.expected_version = SCHEMA_VERSION
        self.fingerprint = fingerprint
        super().__init__(
            f"checkpoint {key!r} (fingerprint {fingerprint!r}) has schema "
            f"version {found_version}, this build reads version "
            f"{SCHEMA_VERSION}; refusing to resume"
        )


def state_fingerprint(*parts) -> str:
    """Stable 16-hex digest of arbitrary state parts.

    Accepts arrays (hashed by shape + bytes), strings, and anything with
    a stable ``repr``.  The checkpoint-side counterpart of
    :func:`repro.serve.cache.operator_fingerprint` for state that is not
    a Toeplitz kernel (e.g. a rebalance loop's problem geometry).
    """
    import hashlib

    h = hashlib.sha1()
    for part in parts:
        if isinstance(part, np.ndarray):
            a = np.ascontiguousarray(part)
            h.update(repr((a.shape, str(a.dtype))).encode())
            h.update(a.tobytes())
        elif isinstance(part, (bytes, bytearray)):
            h.update(bytes(part))
        else:
            h.update(repr(part).encode())
    return h.hexdigest()[:16]


@dataclass(frozen=True)
class Snapshot:
    """One saved solver state: arrays plus identifying metadata."""

    key: str
    step: int
    fingerprint: str
    schema_version: int
    meta: Dict[str, object] = field(default_factory=dict)
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)


def _check_key(key: str) -> str:
    if not isinstance(key, str) or not _KEY_RE.fullmatch(key):
        raise CheckpointError(
            f"checkpoint key must match {_KEY_RE.pattern!r}, got {key!r}"
        )
    return key


class CheckpointStore:
    """Store of versioned, fingerprint-keyed solver snapshots.

    Parameters
    ----------
    root:
        Directory to persist snapshots under (created on first save).
        ``None`` keeps everything in memory — same semantics, no disk;
        the chaos tests use this mode, the SLURM-restart story uses a
        path on the parallel filesystem.
    """

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = None if root is None else str(root)
        # key -> {step -> Snapshot}; for directory stores this is a
        # write-through cache of what save() produced this process.
        self._mem: Dict[str, Dict[int, Snapshot]] = {}

    # -- save -----------------------------------------------------------------
    def save(
        self,
        key: str,
        arrays: Dict[str, np.ndarray],
        *,
        fingerprint: str,
        step: Optional[int] = None,
        meta: Optional[Dict[str, object]] = None,
    ) -> Snapshot:
        """Persist one snapshot; returns the stored :class:`Snapshot`.

        ``step=None`` appends after the latest existing step (starting
        at 0).  Arrays are copied — the caller's live buffers may keep
        mutating.  ``meta`` must be JSON-serializable.
        """
        _check_key(key)
        if not isinstance(fingerprint, str) or not fingerprint:
            raise CheckpointError(
                f"fingerprint must be a non-empty string, got {fingerprint!r}"
            )
        if step is None:
            latest = self.latest_step(key)
            step = 0 if latest is None else latest + 1
        step = int(step)
        if step < 0:
            raise CheckpointError(f"step must be >= 0, got {step}")
        copied = {}
        for name, arr in arrays.items():
            if name == _META_ENTRY:
                raise CheckpointError(f"array name {name!r} is reserved")
            # np.array(copy=True), not ascontiguousarray: the latter
            # aliases an already-contiguous input, and the caller's live
            # buffer keeps mutating after this save returns.
            copied[str(name)] = np.array(arr, order="C", copy=True)
        snap = Snapshot(
            key=key,
            step=step,
            fingerprint=fingerprint,
            schema_version=SCHEMA_VERSION,
            meta=dict(meta or {}),
            arrays=copied,
        )
        if self.root is not None:
            self._write_file(snap)
        self._mem.setdefault(key, {})[step] = snap
        return snap

    def _path(self, key: str, step: int) -> str:
        return os.path.join(self.root, key, f"step-{step:08d}.npz")

    def _write_file(self, snap: Snapshot) -> None:
        header = json.dumps(
            {
                "schema_version": snap.schema_version,
                "fingerprint": snap.fingerprint,
                "key": snap.key,
                "step": snap.step,
                "meta": snap.meta,
            }
        )
        payload = dict(snap.arrays)
        payload[_META_ENTRY] = np.frombuffer(header.encode("utf-8"), dtype=np.uint8)
        path = self._path(snap.key, snap.step)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        # Write-then-rename: a job killed mid-save must never leave a
        # truncated snapshot where load() would find it.
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(fh, **payload)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    # -- load -----------------------------------------------------------------
    def load(
        self,
        key: str,
        *,
        expect_fingerprint: Optional[str] = None,
        step: Optional[int] = None,
    ) -> Snapshot:
        """Return a snapshot, validating schema version and fingerprint.

        ``step=None`` loads the latest.  Raises
        :class:`CheckpointSchemaError` on a schema-version mismatch and
        :class:`CheckpointFingerprintError` when ``expect_fingerprint``
        is given and differs from the stored one — both *before* any
        state reaches the caller, so a resume can never silently run
        against the wrong operator or layout.
        """
        _check_key(key)
        if step is None:
            step = self.latest_step(key)
            if step is None:
                raise CheckpointNotFoundError(f"no snapshots for key {key!r}")
        step = int(step)
        snap = self._mem.get(key, {}).get(step)
        if snap is None and self.root is not None:
            snap = self._read_file(key, step)
        if snap is None:
            raise CheckpointNotFoundError(
                f"no snapshot for key {key!r} at step {step}"
            )
        if snap.schema_version != SCHEMA_VERSION:
            raise CheckpointSchemaError(key, snap.schema_version, snap.fingerprint)
        if expect_fingerprint is not None and snap.fingerprint != expect_fingerprint:
            raise CheckpointFingerprintError(key, expect_fingerprint, snap.fingerprint)
        # Hand out copies: resume mutates these arrays in place and must
        # not corrupt the stored snapshot for a later retry.
        return Snapshot(
            key=snap.key,
            step=snap.step,
            fingerprint=snap.fingerprint,
            schema_version=snap.schema_version,
            meta=dict(snap.meta),
            arrays={name: arr.copy() for name, arr in snap.arrays.items()},
        )

    def _read_file(self, key: str, step: int) -> Optional[Snapshot]:
        path = self._path(key, step)
        if not os.path.exists(path):
            return None
        with np.load(path, allow_pickle=False) as data:
            raw = {name: data[name] for name in data.files}
        header_arr = raw.pop(_META_ENTRY, None)
        if header_arr is None:
            raise CheckpointError(f"snapshot file {path} has no metadata entry")
        header = json.loads(bytes(header_arr.tobytes()).decode("utf-8"))
        return Snapshot(
            key=key,
            step=step,
            fingerprint=str(header.get("fingerprint", "")),
            schema_version=int(header.get("schema_version", -1)),
            meta=dict(header.get("meta", {})),
            arrays=raw,
        )

    # -- enumeration / deletion ----------------------------------------------
    def steps(self, key: str) -> Tuple[int, ...]:
        """All stored steps for ``key``, ascending (empty when none)."""
        _check_key(key)
        found = set(self._mem.get(key, {}))
        if self.root is not None:
            keydir = os.path.join(self.root, key)
            if os.path.isdir(keydir):
                for name in os.listdir(keydir):
                    m = re.fullmatch(r"step-(\d{8})\.npz", name)
                    if m:
                        found.add(int(m.group(1)))
        return tuple(sorted(found))

    def latest_step(self, key: str) -> Optional[int]:
        """Highest stored step for ``key``, or None when absent."""
        steps = self.steps(key)
        return steps[-1] if steps else None

    def keys(self) -> Tuple[str, ...]:
        """All keys with at least one snapshot, sorted."""
        found = {k for k, steps in self._mem.items() if steps}
        if self.root is not None and os.path.isdir(self.root):
            for name in os.listdir(self.root):
                if os.path.isdir(os.path.join(self.root, name)) and _KEY_RE.fullmatch(
                    name
                ):
                    if self.steps(name):
                        found.add(name)
        return tuple(sorted(found))

    def delete(self, key: str, step: Optional[int] = None) -> None:
        """Drop one step (or every step when ``step=None``) of ``key``."""
        _check_key(key)
        targets: Iterable[int] = self.steps(key) if step is None else (int(step),)
        for s in targets:
            self._mem.get(key, {}).pop(s, None)
            if self.root is not None:
                path = self._path(key, s)
                if os.path.exists(path):
                    os.unlink(path)

    def __contains__(self, key: str) -> bool:
        return bool(self.steps(key))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = self.root or "memory"
        return f"CheckpointStore({where!r}, keys={len(self.keys())})"
