"""Workspace arena: allocation-free hot paths for the matvec engines.

The paper's production code runs the pad → FFT → SBGEMM → IFFT → unpad
pipeline out of *persistent* device buffers — nothing is ``cudaMalloc``'d
per apply.  This module is the reproduction's counterpart: a
:class:`Workspace` is a per-engine arena of reusable NumPy buffers keyed
by ``(tag, shape, dtype)``, so iterative consumers (block-CG, randomized
posterior eig/sampling, the OED greedy loop — thousands of applies)
stop paying Python/NumPy allocation churn on every phase of every apply.

Two handout disciplines, both backed by the same keyed pools:

* :meth:`Workspace.checkout` — *per-apply* slots.  The n-th checkout of
  a key since the last :meth:`~Workspace.reset` returns the n-th buffer
  of that key's pool (grown on demand).  An engine calls ``reset()`` at
  the top of each apply, so every pipeline call site gets the same
  buffer apply after apply, while a site that legitimately needs two
  live buffers of one key (ping-pong) just checks the key out twice.
* :meth:`Workspace.buffer` — *persistent* identity.  The same key always
  returns the same buffer, across resets.  The grid engine's chunk loop
  uses this with parity tags (``pay[i % 2]``) so chunk ``i + 1``'s
  prefetched broadcast payload never collides with chunk ``i``'s live
  one, while chunk ``i + 2`` reuses chunk ``i``'s buffers.

Buffers are handed out **uninitialized** (``np.empty``); callers own the
fill.  The arena only ever *grows*: a steady-state workload stops
growing after its first (warm-up) apply, which is what
``alloc_count`` measures and the allocation-regression tests assert.

When constructed with a :class:`~repro.gpu.memory.DeviceAllocator`
(e.g. ``device.allocator``), every arena buffer is registered as a live
device allocation, so the allocator's ``peak`` reflects the modeled
device footprint of the persistent workspace — a first-class report
field for capacity planning.  :meth:`Workspace.release` frees the
registrations (and drops the buffers), letting leak checks pass.

The checkout discipline assumes **one apply at a time**: two pipelines
interleaving checkouts on a shared arena would silently hand the same
buffer to both (the slot cursor cannot tell the callers apart).  The
engines therefore bracket every apply with :meth:`Workspace.begin_apply`
/ :meth:`Workspace.end_apply`, which raise :class:`ReproError` on
re-entrant use instead of corrupting results — the serving layer relies
on this plus per-engine arenas to keep concurrent tenants safe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.backend import Backend, NumpyBackend
from repro.gpu.memory import Allocation, DeviceAllocator
from repro.util.validation import ReproError

__all__ = ["Workspace", "WorkspaceStats"]

_Key = Tuple[str, Tuple[int, ...], np.dtype]

# Leaf-module default: the numpy singleton.  Engines resolve the
# env/auto chain and pass their backend down explicitly.
_NUMPY = NumpyBackend()


@dataclass(frozen=True)
class WorkspaceStats:
    """Point-in-time arena counters (see :meth:`Workspace.stats`)."""

    buffers: int  # distinct live buffers
    nbytes: int  # sum of buffer sizes (exact, unaligned)
    registered_bytes: int  # sum of allocator-registered sizes (aligned)
    alloc_count: int  # buffers ever allocated (growth events)
    checkout_count: int  # total handouts (hits + growth)
    resets: int  # apply boundaries seen


class Workspace:
    """A keyed arena of reusable buffers with a checkout/reset discipline.

    Parameters
    ----------
    allocator:
        Optional :class:`DeviceAllocator` to register arena buffers
        with, so the modeled device peak includes the arena footprint.
    name:
        Label used in allocator tags and reprs.
    backend:
        Array backend that allocates the buffers (default numpy).  Keys
        stay numpy-dtype-based regardless of backend; only the buffer
        objects change type.
    """

    def __init__(
        self,
        allocator: Optional[DeviceAllocator] = None,
        name: str = "workspace",
        backend: Optional[Backend] = None,
    ) -> None:
        self.allocator = allocator
        self.name = name
        self.backend = backend if backend is not None else _NUMPY
        self._pools: Dict[_Key, List[Any]] = {}
        self._cursors: Dict[_Key, int] = {}
        self._registered: List[Allocation] = []
        self._registered_bytes = 0
        self.alloc_count = 0
        self.checkout_count = 0
        self.resets = 0
        self.apply_epoch = 0
        self._in_use = False
        self._released = False

    # -- keying / growth -----------------------------------------------------
    @staticmethod
    def _key(tag: str, shape, dtype) -> _Key:
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        return (str(tag), tuple(int(s) for s in shape), np.dtype(dtype))

    def _grow(self, key: _Key) -> Any:
        tag, shape, dtype = key
        buf = self.backend.empty(shape, dtype)
        self.alloc_count += 1
        if self.allocator is not None:
            alloc = self.allocator.malloc(
                self.backend.nbytes(buf), tag=f"{self.name}/{tag}"
            )
            self._registered.append(alloc)
            self._registered_bytes += alloc.nbytes
        return buf

    def _handout(self, tag: str, shape, dtype, slot: int) -> Tuple[Any, bool]:
        if self._released:
            raise ReproError(f"workspace {self.name!r} has been released")
        key = self._key(tag, shape, dtype)
        pool = self._pools.setdefault(key, [])
        fresh = slot >= len(pool)
        while slot >= len(pool):
            pool.append(self._grow(key))
        self.checkout_count += 1
        return pool[slot], fresh

    # -- handout APIs --------------------------------------------------------
    def checkout(self, tag: str, shape, dtype) -> Any:
        """Per-apply slot: the n-th checkout of a key since ``reset()``
        returns the n-th buffer of that key's pool (uninitialized)."""
        return self.checkout_fresh(tag, shape, dtype)[0]

    def checkout_fresh(self, tag: str, shape, dtype) -> Tuple[Any, bool]:
        """Like :meth:`checkout`, also reporting whether the buffer was
        just allocated.  A site that is the key's *only writer* can use
        the flag to skip re-establishing an invariant it already wrote
        (e.g. the pad kernel's zero padding half survives across
        applies because nothing else touches that buffer).
        """
        key = self._key(tag, shape, dtype)
        slot = self._cursors.get(key, 0)
        self._cursors[key] = slot + 1
        return self._handout(tag, shape, dtype, slot)

    def buffer(self, tag: str, shape, dtype) -> Any:
        """Persistent identity: the same key always returns the same
        buffer, across resets (uninitialized on first handout)."""
        return self._handout(tag, shape, dtype, 0)[0]

    def reset(self) -> None:
        """Mark an apply boundary: all checkout cursors return to 0.

        Buffer contents are untouched — only the handout order restarts,
        so every call site re-acquires the same buffer next apply.
        """
        if self._cursors:
            self._cursors.clear()
        self.resets += 1

    # -- apply-scope guard ----------------------------------------------------
    @property
    def in_use(self) -> bool:
        """True while an apply bracketed by :meth:`begin_apply` is live."""
        return self._in_use

    def begin_apply(self) -> int:
        """Open an apply scope: reset cursors, refuse re-entrant use.

        Raises :class:`ReproError` if a previous :meth:`begin_apply` has
        not been closed by :meth:`end_apply` — two interleaved applies on
        one arena would alias each other's checkout slots and corrupt
        results silently, so the engines fail loudly instead.  Returns
        the new ``apply_epoch`` (a monotone counter of apply scopes).
        """
        if self._released:
            raise ReproError(f"workspace {self.name!r} has been released")
        if self._in_use:
            raise ReproError(
                f"workspace {self.name!r} is already mid-apply "
                f"(epoch {self.apply_epoch}): concurrent applies sharing one "
                "arena would alias checkout slots — serialize applies or give "
                "each engine its own workspace"
            )
        self._in_use = True
        self.apply_epoch += 1
        self.reset()
        return self.apply_epoch

    def end_apply(self) -> None:
        """Close the apply scope opened by :meth:`begin_apply`."""
        self._in_use = False

    # -- introspection -------------------------------------------------------
    @property
    def buffer_count(self) -> int:
        return sum(len(pool) for pool in self._pools.values())

    @property
    def nbytes(self) -> int:
        """Exact bytes held by arena buffers (unaligned)."""
        return sum(
            self.backend.nbytes(b) for pool in self._pools.values() for b in pool
        )

    @property
    def registered_bytes(self) -> int:
        """Bytes registered with the device allocator (alignment-rounded)."""
        return self._registered_bytes

    def stats(self) -> WorkspaceStats:
        """Snapshot of the arena counters (sizes, growth, handouts)."""
        return WorkspaceStats(
            buffers=self.buffer_count,
            nbytes=self.nbytes,
            registered_bytes=self._registered_bytes,
            alloc_count=self.alloc_count,
            checkout_count=self.checkout_count,
            resets=self.resets,
        )

    # -- lifetime ------------------------------------------------------------
    def release(self) -> None:
        """Drop all buffers and free their allocator registrations.

        Idempotent; a released workspace refuses further handouts (the
        engine owning it is being torn down).
        """
        if self._released:
            return
        for alloc in self._registered:
            self.allocator.free(alloc)  # type: ignore[union-attr]
        self._registered.clear()
        self._registered_bytes = 0
        self._pools.clear()
        self._cursors.clear()
        self._in_use = False
        self._released = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Workspace({self.name!r}, buffers={self.buffer_count}, "
            f"nbytes={self.nbytes}, allocs={self.alloc_count})"
        )
