"""Simulated clock and timing reports.

All FFTMatvec "runtimes" in this reproduction come from a simulated device
clock: kernels and collectives *advance* the clock by their modeled cost
(bytes moved / achieved bandwidth + launch overhead), exactly as described
in DESIGN.md.  The clock deliberately has no relation to Python wall time.

:class:`TimingReport` mirrors the output of the original ``fft_matvec``
executable, which prints per-phase timings (pad, FFT, SBGEMV, IFFT, unpad)
plus setup/total/cleanup lines, averaged over repetitions.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

__all__ = ["SimClock", "PhaseTimer", "TimingReport"]


class SimClock:
    """A monotonically advancing simulated clock (seconds).

    The clock supports named *phase accounting*: while a phase is active,
    all advances are attributed to it.  Nested phases attribute time to the
    innermost phase only, matching how a profiler attributes GPU kernel
    time to the enclosing region.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._phase_stack: List[str] = []
        self._phase_totals: Dict[str, float] = {}

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> None:
        """Advance the clock; attributes time to the innermost open phase."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time {seconds}")
        self._now += seconds
        if self._phase_stack:
            name = self._phase_stack[-1]
            self._phase_totals[name] = self._phase_totals.get(name, 0.0) + seconds

    @contextlib.contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute all clock advances inside the block to ``name``."""
        self._phase_stack.append(name)
        try:
            yield
        finally:
            self._phase_stack.pop()

    def phase_total(self, name: str) -> float:
        """Accumulated seconds attributed to a phase (0.0 if never seen)."""
        return self._phase_totals.get(name, 0.0)

    def phase_totals(self) -> Dict[str, float]:
        """Copy of all per-phase accumulated times."""
        return dict(self._phase_totals)

    def reset_phases(self) -> None:
        """Clear phase accounting without resetting absolute time."""
        self._phase_totals.clear()

    def reset(self) -> None:
        """Reset absolute time and phase accounting."""
        self._now = 0.0
        self._phase_totals.clear()


@dataclass
class PhaseTimer:
    """Records the duration of a single named region on a :class:`SimClock`."""

    clock: SimClock
    name: str
    start: float = 0.0
    elapsed: Optional[float] = None

    def __enter__(self) -> "PhaseTimer":
        self.start = self.clock.now
        self._cm = self.clock.phase(self.name)
        self._cm.__enter__()
        return self

    def __exit__(self, *exc) -> None:
        self._cm.__exit__(*exc)
        self.elapsed = self.clock.now - self.start


# Canonical phase order used by the matvec engine and all figures.
PHASE_ORDER = ("pad", "fft", "sbgemv", "ifft", "unpad")


@dataclass
class TimingReport:
    """Per-phase timing breakdown of one (or averaged) matvec call(s).

    Attributes
    ----------
    phases:
        Mapping from phase name (``pad``, ``fft``, ``sbgemv``, ``ifft``,
        ``unpad``, and optionally ``comm``) to seconds.
    setup, cleanup:
        One-time costs outside the performance-critical loop.
    reps:
        Number of repetitions averaged into ``phases``.
    """

    phases: Dict[str, float] = field(default_factory=dict)
    setup: float = 0.0
    cleanup: float = 0.0
    reps: int = 1
    label: str = ""

    @property
    def total(self) -> float:
        """Sum of all per-phase times (one matvec)."""
        return float(sum(self.phases.values()))

    def phase(self, name: str) -> float:
        """Seconds attributed to one phase (0.0 if absent)."""
        return self.phases.get(name, 0.0)

    def fraction(self, name: str) -> float:
        """Fraction of total time spent in a phase."""
        t = self.total
        return self.phases.get(name, 0.0) / t if t > 0 else 0.0

    def scaled(self, factor: float) -> "TimingReport":
        """A report with every time multiplied by ``factor``."""
        return TimingReport(
            phases={k: v * factor for k, v in self.phases.items()},
            setup=self.setup * factor,
            cleanup=self.cleanup * factor,
            reps=self.reps,
            label=self.label,
        )

    def merged(self, other: "TimingReport") -> "TimingReport":
        """Phase-wise sum of two reports (used to accumulate repetitions)."""
        phases = dict(self.phases)
        for k, v in other.phases.items():
            phases[k] = phases.get(k, 0.0) + v
        return TimingReport(
            phases=phases,
            setup=self.setup + other.setup,
            cleanup=self.cleanup + other.cleanup,
            reps=self.reps + other.reps,
            label=self.label or other.label,
        )

    def averaged(self) -> "TimingReport":
        """Average the accumulated repetitions down to one matvec."""
        n = max(self.reps, 1)
        return TimingReport(
            phases={k: v / n for k, v in self.phases.items()},
            setup=self.setup,
            cleanup=self.cleanup,
            reps=1,
            label=self.label,
        )

    def lines(self, raw: bool = False) -> List[str]:
        """Render in the style of the original executable's timing output.

        With ``raw=True`` the output is machine-parseable CSV-ish lines,
        mirroring the original ``-raw`` flag.
        """
        ordered = [p for p in PHASE_ORDER if p in self.phases]
        ordered += [p for p in sorted(self.phases) if p not in PHASE_ORDER]
        out: List[str] = []
        if raw:
            out.append("setup," + repr(self.setup))
            out.append("total," + repr(self.total))
            out.append("cleanup," + repr(self.cleanup))
            for p in ordered:
                out.append(f"{p},{self.phases[p]!r}")
        else:
            head = f" Timing ({self.label})" if self.label else " Timing"
            out.append(head)
            out.append(f"   setup   : {self.setup * 1e3:10.4f} ms")
            out.append(f"   total   : {self.total * 1e3:10.4f} ms")
            out.append(f"   cleanup : {self.cleanup * 1e3:10.4f} ms")
            for p in ordered:
                out.append(f"   {p:<8}: {self.phases[p] * 1e3:10.4f} ms")
        return out
