"""Simulated clock, event timeline, and timing reports.

All FFTMatvec "runtimes" in this reproduction come from a simulated device
clock: kernels and collectives *advance* the clock by their modeled cost
(bytes moved / achieved bandwidth + launch overhead), exactly as described
in DESIGN.md.  The clock deliberately has no relation to Python wall time.

:class:`SimClock` is the serial substrate: one monotone timeline, every
charge advances it.  :class:`Timeline` layers a stream/event model on top
for schedules that overlap work — communication prefetch against compute,
host routines against the device.  Work is charged onto independent
:class:`Stream` cursors; :class:`Event` markers recorded on one stream can
be waited on from another (``record``/``wait``, CUDA/HIP-style); and wall
time is the *max* over stream cursors, realized on the underlying clock at
:meth:`Timeline.sync` points.  Phase accounting stays on the shared clock
(a stream charge attributes its phase immediately), so per-phase
breakdowns report work done while wall time reports the critical path —
for an overlapped schedule the phase sum deliberately exceeds the wall.

:class:`TimingReport` mirrors the output of the original ``fft_matvec``
executable, which prints per-phase timings (pad, FFT, SBGEMV, IFFT, unpad)
plus setup/total/cleanup lines, averaged over repetitions.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.util.validation import ReproError

__all__ = [
    "SimClock",
    "Timeline",
    "Stream",
    "Event",
    "HostModel",
    "PhaseTimer",
    "TimingReport",
]


@dataclass(frozen=True)
class HostModel:
    """Host-side costs per vector (seconds).

    ``gen_time`` covers producing the next input (RNG / reading a unit
    vector / disk read); ``save_time`` covers writing the result.  Both
    the single-device :class:`~repro.core.pipeline.OverlappedMatvecRunner`
    and the grid engine's fused three-stream schedule
    (``ParallelFFTMatvec(host=...)``) charge these onto a dedicated host
    stream, so generate/save overlap device compute *and* collectives.
    """

    gen_time: float = 50e-6
    save_time: float = 100e-6

    def __post_init__(self) -> None:
        if self.gen_time < 0 or self.save_time < 0:
            raise ReproError("host times must be non-negative")

    @property
    def per_vector(self) -> float:
        return self.gen_time + self.save_time


class SimClock:
    """A monotonically advancing simulated clock (seconds).

    The clock supports named *phase accounting*: while a phase is active,
    all advances are attributed to it.  Nested phases attribute time to the
    innermost phase only, matching how a profiler attributes GPU kernel
    time to the enclosing region.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._phase_stack: List[str] = []
        self._phase_totals: Dict[str, float] = {}

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> None:
        """Advance the clock; attributes time to the innermost open phase."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time {seconds}")
        self._now += seconds
        self.attribute(seconds)

    def attribute(self, seconds: float, phase: Optional[str] = None) -> None:
        """Attribute seconds to phase accounting *without* advancing time.

        Streams use this: work charged onto a stream is phase-attributed
        when charged, while wall time advances only at timeline sync
        points.  ``phase=None`` attributes to the innermost open phase
        (no-op when none is open).
        """
        if seconds < 0:
            raise ValueError(f"cannot attribute negative time {seconds}")
        name = phase if phase is not None else (
            self._phase_stack[-1] if self._phase_stack else None
        )
        if name is not None:
            self._phase_totals[name] = self._phase_totals.get(name, 0.0) + seconds

    def advance_to(self, when: float) -> None:
        """Move the clock forward to an absolute time (no phase attribution).

        Used by :meth:`Timeline.sync`: the jump to the maximum stream
        cursor is elapsed wall time, not attributable work.  Backward
        moves are ignored (the clock is monotone).
        """
        if when > self._now:
            self._now = when

    @contextlib.contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute all clock advances inside the block to ``name``."""
        self._phase_stack.append(name)
        try:
            yield
        finally:
            self._phase_stack.pop()

    def phase_total(self, name: str) -> float:
        """Accumulated seconds attributed to a phase (0.0 if never seen)."""
        return self._phase_totals.get(name, 0.0)

    def phase_totals(self) -> Dict[str, float]:
        """Copy of all per-phase accumulated times."""
        return dict(self._phase_totals)

    def reset_phases(self) -> None:
        """Clear phase accounting without resetting absolute time."""
        self._phase_totals.clear()

    def reset(self) -> None:
        """Reset absolute time and phase accounting."""
        self._now = 0.0
        self._phase_totals.clear()


@dataclass(frozen=True)
class Event:
    """A point on a stream's timeline (cursor value at :meth:`Stream.record`).

    Events are immutable once recorded; waiting on one from another
    stream models a cross-stream dependency (the waiter cannot proceed
    before the recorded work completes).
    """

    time: float
    stream: str = ""
    label: str = ""


class Stream:
    """An in-order work queue with its own completion cursor.

    Work charged onto a stream completes at ``cursor`` (absolute
    simulated seconds); charges are serialized in call order, mirroring
    a HIP/CUDA stream.  The cursor starts at the shared clock's current
    time when the stream is created — a fresh stream is idle "now",
    independent of work other streams already have in flight (create
    streams before charging, or ``wait`` on an event, to order against
    them).
    """

    def __init__(self, timeline: "Timeline", name: str) -> None:
        self.timeline = timeline
        self.name = name
        self.cursor = timeline.clock.now

    def charge(self, seconds: float, phase: Optional[str] = None) -> float:
        """Enqueue ``seconds`` of work; returns the new cursor.

        The phase is attributed on the shared clock immediately (work
        accounting); wall time advances only at :meth:`Timeline.sync`.
        """
        if seconds < 0:
            raise ValueError(f"cannot charge negative time {seconds}")
        self.cursor += seconds
        self.timeline.clock.attribute(seconds, phase)
        return self.cursor

    def record(self, label: str = "") -> Event:
        """Mark the completion point of all work charged so far."""
        ev = Event(time=self.cursor, stream=self.name, label=label)
        self.timeline.events.append(ev)
        return ev

    def wait(self, event: Event) -> float:
        """Stall this stream until ``event`` completes; returns the cursor."""
        if event.time > self.cursor:
            self.cursor = event.time
        return self.cursor

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Stream({self.name!r}, t={self.cursor:.6f}s)"


class Timeline:
    """A set of concurrent streams over one shared :class:`SimClock`.

    The timeline realizes the overlap semantics of the paper's Sec.
    4.2.2 schedules: independent streams accumulate work concurrently,
    cross-stream ``record``/``wait`` edges express dependencies, and the
    wall time observed on the clock at a :meth:`sync` point is the
    maximum stream cursor — the critical path through the schedule, not
    the sum of the work.
    """

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.streams: Dict[str, Stream] = {}
        self.events: List[Event] = []

    def stream(self, name: str) -> Stream:
        """Get or create the named stream (cursor starts at clock.now)."""
        if name not in self.streams:
            self.streams[name] = Stream(self, name)
        return self.streams[name]

    @property
    def frontier(self) -> float:
        """Latest completion time across all streams (>= clock.now)."""
        cursors = [s.cursor for s in self.streams.values()]
        return max([self.clock.now] + cursors)

    def sync(self) -> float:
        """Join every stream: advance the clock to the frontier.

        All stream cursors are pulled up to the synchronized time (a
        barrier), so work charged afterwards starts from a common
        origin.  Returns the synchronized wall time.
        """
        now = self.frontier
        self.clock.advance_to(now)
        for s in self.streams.values():
            s.cursor = now
        return now

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        names = ", ".join(self.streams) or "no streams"
        return f"Timeline({names}; t={self.frontier:.6f}s)"


@dataclass
class PhaseTimer:
    """Records the duration of a single named region on a :class:`SimClock`."""

    clock: SimClock
    name: str
    start: float = 0.0
    elapsed: Optional[float] = None

    def __enter__(self) -> "PhaseTimer":
        self.start = self.clock.now
        self._cm = self.clock.phase(self.name)
        self._cm.__enter__()
        return self

    def __exit__(self, *exc) -> None:
        self._cm.__exit__(*exc)
        self.elapsed = self.clock.now - self.start


# Canonical phase order used by the matvec engine and all figures.
PHASE_ORDER = ("pad", "fft", "sbgemv", "ifft", "unpad")


@dataclass
class TimingReport:
    """Per-phase timing breakdown of one (or averaged) matvec call(s).

    Attributes
    ----------
    phases:
        Mapping from phase name (``pad``, ``fft``, ``sbgemv``, ``ifft``,
        ``unpad``, and optionally ``comm``) to seconds.
    setup, cleanup:
        One-time costs outside the performance-critical loop.
    reps:
        Number of repetitions averaged into ``phases``.
    wall:
        Elapsed wall time of the call, when it differs from the phase
        sum: an overlapped schedule hides communication behind compute,
        so ``wall < total`` while ``phases`` still reports every second
        of work charged.  ``None`` for serial schedules (wall == total).
    """

    phases: Dict[str, float] = field(default_factory=dict)
    setup: float = 0.0
    cleanup: float = 0.0
    reps: int = 1
    label: str = ""
    wall: Optional[float] = None

    @property
    def total(self) -> float:
        """Sum of all per-phase times (one matvec)."""
        return float(sum(self.phases.values()))

    @property
    def elapsed(self) -> float:
        """Wall time of the call: ``wall`` when set, else the phase sum."""
        return self.wall if self.wall is not None else self.total

    def phase(self, name: str) -> float:
        """Seconds attributed to one phase (0.0 if absent)."""
        return self.phases.get(name, 0.0)

    def fraction(self, name: str) -> float:
        """Fraction of total time spent in a phase."""
        t = self.total
        return self.phases.get(name, 0.0) / t if t > 0 else 0.0

    def scaled(self, factor: float) -> "TimingReport":
        """A report with every time multiplied by ``factor``."""
        return TimingReport(
            phases={k: v * factor for k, v in self.phases.items()},
            setup=self.setup * factor,
            cleanup=self.cleanup * factor,
            reps=self.reps,
            label=self.label,
            wall=self.wall * factor if self.wall is not None else None,
        )

    def merged(self, other: "TimingReport") -> "TimingReport":
        """Phase-wise sum of two reports (used to accumulate repetitions)."""
        phases = dict(self.phases)
        for k, v in other.phases.items():
            phases[k] = phases.get(k, 0.0) + v
        # A report without an explicit wall contributes its phase sum
        # (wall == total for serial schedules), so mixing serial and
        # overlapped reports keeps the combined wall honest.
        any_wall = self.wall is not None or other.wall is not None
        return TimingReport(
            phases=phases,
            setup=self.setup + other.setup,
            cleanup=self.cleanup + other.cleanup,
            reps=self.reps + other.reps,
            label=self.label or other.label,
            wall=self.elapsed + other.elapsed if any_wall else None,
        )

    def averaged(self) -> "TimingReport":
        """Average the accumulated repetitions down to one matvec."""
        n = max(self.reps, 1)
        return TimingReport(
            phases={k: v / n for k, v in self.phases.items()},
            setup=self.setup,
            cleanup=self.cleanup,
            reps=1,
            label=self.label,
            wall=self.wall / n if self.wall is not None else None,
        )

    def lines(self, raw: bool = False) -> List[str]:
        """Render in the style of the original executable's timing output.

        With ``raw=True`` the output is machine-parseable CSV-ish lines,
        mirroring the original ``-raw`` flag.
        """
        ordered = [p for p in PHASE_ORDER if p in self.phases]
        ordered += [p for p in sorted(self.phases) if p not in PHASE_ORDER]
        out: List[str] = []
        if raw:
            out.append("setup," + repr(self.setup))
            out.append("total," + repr(self.total))
            out.append("cleanup," + repr(self.cleanup))
            for p in ordered:
                out.append(f"{p},{self.phases[p]!r}")
        else:
            head = f" Timing ({self.label})" if self.label else " Timing"
            out.append(head)
            out.append(f"   setup   : {self.setup * 1e3:10.4f} ms")
            out.append(f"   total   : {self.total * 1e3:10.4f} ms")
            out.append(f"   cleanup : {self.cleanup * 1e3:10.4f} ms")
            for p in ordered:
                out.append(f"   {p:<8}: {self.phases[p] * 1e3:10.4f} ms")
        return out
