"""rocblas-bench work-alike.

The paper's Figure 1 is produced by running ``rocblas-bench`` with a YAML
file of problem configurations on two rocBLAS builds (with and without
the optimized kernel) and comparing the reported ``rocblas-GB/s``.  This
module reproduces that workflow:

* :func:`parse_bench_yaml` — a parser for the flow-mapping YAML subset
  rocblas-bench configs use (``- {M: 128, N: 4096, transA: T, ...}``),
  so the artifact's actual config format round-trips (no PyYAML offline).
* :class:`RocblasBench` — runs each configuration against a chosen kernel
  ("build"), timing on the simulated device over ``iters`` repetitions
  after ``cold_iters`` warmups, and reports GB/s and % of peak.

The same workflow covers the blocked multi-RHS path: GEMM entries
(``rocblas_?gemm_strided_batched`` with a ``K`` column count) run the
SBGEMM kernel pair, so a Figure-1-style comparison — and the measured
transition-point calibration in :mod:`repro.blas.calibrate` — can be
produced for the blocked Phase 3 exactly as for the SBGEMV one.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

import numpy as np

from repro.blas.gemm_kernels import OptimizedSBGEMM, RocblasSBGEMM, SBGEMMKernel
from repro.blas.gemv_kernels import OptimizedSBGEMV, RocblasSBGEMV, SBGEMVKernel
from repro.blas.types import BlasDatatype, GemmProblem, GemvProblem, Operation
from repro.gpu.specs import GPUSpec, MI300X
from repro.util.tables import render_table
from repro.util.validation import ReproError

__all__ = [
    "parse_bench_yaml",
    "BenchResult",
    "RocblasBench",
    "make_gemm_bench_yaml",
    "gemm_problem_from_config",
]

_FUNC_RE = re.compile(r"rocblas_([sdcz])gemv_strided_batched")
_GEMM_FUNC_RE = re.compile(r"rocblas_([sdcz])gemm_strided_batched")


def _parse_scalar(token: str) -> Union[int, float, str]:
    t = token.strip()
    if re.fullmatch(r"[+-]?\d+", t):
        return int(t)
    if re.fullmatch(r"[+-]?(\d+\.\d*|\.\d+|\d+)([eE][+-]?\d+)?", t) and (
        "." in t or "e" in t.lower()
    ):
        return float(t)
    return t.strip("'\"")


def parse_bench_yaml(text: str) -> List[Dict[str, Union[int, float, str]]]:
    """Parse a rocblas-bench YAML config (list of flow mappings).

    Supports the subset the artifact uses: a sequence of ``- { k: v, ... }``
    entries, possibly spanning multiple lines, with ``#`` comments.
    """
    # Strip comments, join continuation lines of each flow mapping.
    body = "\n".join(
        line.split("#", 1)[0].rstrip() for line in text.splitlines()
    )
    entries: List[Dict[str, Union[int, float, str]]] = []
    # Find each "- { ... }" block (braces never nest in this format).
    for m in re.finditer(r"-\s*\{([^}]*)\}", body, flags=re.DOTALL):
        inner = m.group(1).replace("\n", " ")
        entry: Dict[str, Union[int, float, str]] = {}
        for pair in inner.split(","):
            pair = pair.strip()
            if not pair:
                continue
            if ":" not in pair:
                raise ReproError(f"malformed yaml pair {pair!r}")
            key, val = pair.split(":", 1)
            entry[key.strip()] = _parse_scalar(val)
        if entry:
            entries.append(entry)
    return entries


def problem_from_config(cfg: Dict) -> GemvProblem:
    """Build a GemvProblem from one rocblas-bench config entry."""
    func = str(cfg.get("rocblas_function", ""))
    m = _FUNC_RE.fullmatch(func)
    if not m:
        raise ReproError(f"unsupported rocblas_function {func!r}")
    datatype = BlasDatatype.parse(m.group(1))
    op = Operation.parse(cfg.get("transA", "N"))
    if op is Operation.C and not datatype.is_complex:
        op = Operation.T
    return GemvProblem(
        m=int(cfg["M"]),
        n=int(cfg["N"]),
        batch=int(cfg.get("batch_count", 1)),
        datatype=datatype,
        operation=op,
    )


def gemm_problem_from_config(cfg: Dict) -> GemmProblem:
    """Build a GemmProblem from one rocblas-bench GEMM config entry.

    ``K`` is the RHS-panel width of the blocked path (``B_i`` is
    ``in_rows x K``), following the same conventions as the GEMV
    entries: ``transA`` applies to ``A``, strides are implied.
    """
    func = str(cfg.get("rocblas_function", ""))
    m = _GEMM_FUNC_RE.fullmatch(func)
    if not m:
        raise ReproError(f"unsupported rocblas_function {func!r}")
    datatype = BlasDatatype.parse(m.group(1))
    op = Operation.parse(cfg.get("transA", "N"))
    if op is Operation.C and not datatype.is_complex:
        op = Operation.T
    return GemmProblem(
        m=int(cfg["M"]),
        n=int(cfg["N"]),
        k=int(cfg.get("K", 1)),
        batch=int(cfg.get("batch_count", 1)),
        datatype=datatype,
        operation=op,
    )


def make_gemm_bench_yaml(sizes, datatypes, ks) -> str:
    """Generate a Figure-1-style rocblas-bench YAML config for SBGEMM.

    Mirrors :func:`make_fig1_yaml`'s conventions (``transA`` T/H per
    datatype, batch 100) with one entry per (datatype, shape, RHS width
    ``K``) — the sweep the measured SBGEMM calibration fits transition
    points from.
    """
    lines = []
    for dt in datatypes:
        dt = BlasDatatype.parse(dt)
        trans = "H" if dt.is_complex else "T"
        func = f"rocblas_{dt.value}gemm_strided_batched"
        for (m, n) in sizes:
            for k in ks:
                lines.append(
                    "- {"
                    + f"M: {m}, N: {n}, K: {k}, alpha: 1.0, batch_count: 100, "
                    + f"beta: 0.0, cold_iters: 2, iters: 10, lda: {m}, "
                    + f"ldb: {m}, ldc: {n}, rocblas_function: {func}, "
                    + f"stride_a: {m * n}, stride_b: {m * k}, "
                    + f"stride_c: {n * k}, transA: {trans}"
                    + "}"
                )
    return "\n".join(lines) + "\n"


def make_fig1_yaml(sizes, datatypes) -> str:
    """Generate a Figure-1-style rocblas-bench YAML config.

    Follows the AE appendix conventions: ``M = lda = stride_y``,
    ``N = stride_x``, ``stride_a = M*N``, ``transA`` is ``T`` for real
    datatypes and ``H`` for complex.
    """
    lines = []
    for dt in datatypes:
        dt = BlasDatatype.parse(dt)
        trans = "H" if dt.is_complex else "T"
        for (m, n) in sizes:
            lines.append(
                "- {"
                + f"M: {m}, N: {n}, alpha: 1.0, batch_count: 100, beta: 0.0, "
                + f"cold_iters: 2, incx: 1, incy: 1, iters: 10, lda: {m}, "
                + f"rocblas_function: {dt.function_name}, "
                + f"stride_a: {m * n}, stride_x: {n}, stride_y: {m}, "
                + f"transA: {trans}"
                + "}"
            )
    return "\n".join(lines) + "\n"


@dataclass
class BenchResult:
    """One rocblas-bench output row (GEMV or GEMM problem)."""

    problem: Union[GemvProblem, GemmProblem]
    kernel: str
    seconds: float
    gbytes_per_s: float
    pct_of_peak: float

    def _size(self) -> str:
        k = getattr(self.problem, "k", None)
        base = f"{self.problem.m}x{self.problem.n}"
        return base if k is None else f"{base} k={k}"

    def row(self) -> List[str]:
        """Cells of this result as one bench-output table row."""
        return [
            self._size(),
            self.problem.datatype.value,
            self.problem.operation.value,
            self.kernel,
            f"{self.gbytes_per_s:.1f}",
            f"{self.pct_of_peak * 100:.1f}%",
        ]


class RocblasBench:
    """Benchmark driver over the simulated kernels.

    ``build`` selects which rocBLAS version to mimic: ``"rocblas"`` (the
    June-2025 tree without the kernel) or ``"optimized"`` (commit dd7ea70
    with the optimized transpose SBGEMV).
    """

    def __init__(self, spec: GPUSpec = MI300X, build: str = "optimized") -> None:
        if build not in ("rocblas", "optimized"):
            raise ReproError(f"build must be 'rocblas' or 'optimized', got {build!r}")
        self.spec = spec
        self.build = build

    def _kernel_for(self, problem: GemvProblem) -> SBGEMVKernel:
        if self.build == "optimized" and problem.operation.is_transposed:
            return OptimizedSBGEMV()
        return RocblasSBGEMV()

    def _gemm_kernel_for(self, problem: GemmProblem) -> SBGEMMKernel:
        if self.build == "optimized" and problem.operation.is_transposed:
            return OptimizedSBGEMM()
        return RocblasSBGEMM()

    def run_problem(self, problem: GemvProblem, iters: int = 10) -> BenchResult:
        """Model-run one configuration; returns the averaged result."""
        kernel = self._kernel_for(problem)
        # The model is deterministic; iters kept for interface fidelity.
        t = kernel.modeled_time(problem, self.spec)
        bw = problem.total_bytes / t
        return BenchResult(
            problem=problem,
            kernel=kernel.name,
            seconds=t,
            gbytes_per_s=bw / 1e9,
            pct_of_peak=bw / self.spec.peak_bandwidth,
        )

    def run_gemm_problem(self, problem: GemmProblem, iters: int = 10) -> BenchResult:
        """Model-run one blocked (multi-RHS) configuration."""
        kernel = self._gemm_kernel_for(problem)
        t = kernel.modeled_time(problem, self.spec)
        bw = problem.total_bytes / t
        return BenchResult(
            problem=problem,
            kernel=kernel.name,
            seconds=t,
            gbytes_per_s=bw / 1e9,
            pct_of_peak=bw / self.spec.peak_bandwidth,
        )

    def run_yaml(self, text: str) -> List[BenchResult]:
        """Run every configuration in a YAML config string.

        GEMV and GEMM entries may be mixed; each dispatches to the
        matching kernel pair by its ``rocblas_function``.
        """
        out: List[BenchResult] = []
        for cfg in parse_bench_yaml(text):
            func = str(cfg.get("rocblas_function", ""))
            iters = int(cfg.get("iters", 10))
            if _GEMM_FUNC_RE.fullmatch(func):
                out.append(self.run_gemm_problem(gemm_problem_from_config(cfg), iters=iters))
            else:
                out.append(self.run_problem(problem_from_config(cfg), iters=iters))
        return out

    @staticmethod
    def comparison_table(
        baseline: List[BenchResult], optimized: List[BenchResult]
    ) -> str:
        """Figure-1-style side-by-side table of two builds."""
        if len(baseline) != len(optimized):
            raise ReproError("result lists must have equal length")
        rows = []
        for old, new in zip(baseline, optimized):
            if old.problem != new.problem:
                raise ReproError("mismatched problems between builds")
            rows.append(
                [
                    old._size(),
                    old.problem.datatype.value,
                    old.problem.operation.value,
                    f"{old.gbytes_per_s:.1f}",
                    f"{old.pct_of_peak * 100:.1f}%",
                    f"{new.gbytes_per_s:.1f}",
                    f"{new.pct_of_peak * 100:.1f}%",
                    f"{new.gbytes_per_s / old.gbytes_per_s:.2f}x",
                ]
            )
        return render_table(
            ["size", "dtype", "op", "rocBLAS GB/s", "% peak", "optimized GB/s", "% peak", "speedup"],
            rows,
            title="(Conjugate) Transpose SBGEMV Performance Comparison",
        )
