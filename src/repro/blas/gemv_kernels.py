"""SBGEMV kernel implementations: original rocBLAS vs the paper's kernel.

Both kernels compute the *same numbers* (a strided-batched GEMV evaluated
with vectorized NumPy in the problem's precision); they differ in launch
geometry and in the achieved-bandwidth model, which is what Figure 1
measures:

* **RocblasSBGEMV** (original): in (conjugate) transpose mode it launches
  grid ``(n, 1, batch)`` — one gridblock per output element — and each
  block computes a single dot product of length ``m``.  For short-wide
  matrices (``m << n``) the per-block work ``m * itemsize`` is tiny, so
  launch overhead dominates and achieved bandwidth collapses; in
  non-transpose mode the grid is ``(ceil(m/64), 1, batch)`` and each
  block performs several length-``n`` dot products, which is efficient.
* **OptimizedSBGEMV** (the paper's contribution): gridblocks *tile the
  columns*; each block is a 2-D set of threads computing a chunk of the
  output with vectorized loads (up to 16 B per instruction: ``float4``,
  ``double2``), read/compute/write pipelining, and wavefront shuffles for
  the dot-product reductions.

Efficiency model: a physically-motivated work-per-block curve
(:func:`repro.gpu.bandwidth.grid_efficiency`), *anchored* to the
%-of-peak annotations of Figure 1 via per-datatype calibration tables
(measured on MI300X; other architectures rescale by their
``sbgemv_peak_fraction`` relative to MI300X's).  DESIGN.md documents this
substitution.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.backend import Backend, NumpyBackend
from repro.blas.types import BlasDatatype, GemvProblem, Operation
from repro.gpu.bandwidth import grid_efficiency, stream_efficiency
from repro.gpu.device import SimulatedDevice
from repro.gpu.kernel import Dim3, KernelLaunch
from repro.gpu.specs import GPUSpec, MI300X
from repro.util.dtypes import Precision
from repro.util.validation import ReproError

__all__ = [
    "SBGEMVKernel",
    "RocblasSBGEMV",
    "OptimizedSBGEMV",
    "gemv_strided_batched_reference",
]

_NUMPY = NumpyBackend()


def gemv_strided_batched_reference(
    A: Any,
    x: Any,
    operation: Operation,
    out: Optional[Any] = None,
    x_conj: Optional[Any] = None,
    backend: Optional[Backend] = None,
) -> Any:
    """Numerical strided-batched GEMV: ``y_i = op(A_i) @ x_i``.

    ``A`` has shape (batch, m, n); ``x`` has shape (batch, in_len).
    Computation stays in the input dtype (complex64 math is single
    precision), so mixed-precision SBGEMV error is measured, not modeled.
    ``out`` (shape ``(batch, out_len)``, the problem dtype) receives the
    result without a fresh allocation — ``np.matmul`` writes it
    directly, producing the same bits as the allocating path.
    ``x_conj`` supplies a precomputed ``np.conj(x)`` for op C callers
    (the engine conjugates into an arena buffer); it must hold exactly
    the bytes ``np.conj(x)`` would produce.
    """
    be = backend if backend is not None else _NUMPY
    A = be.asarray(A)
    x = be.asarray(x)
    if A.ndim != 3:
        raise ReproError(f"A must be (batch, m, n), got shape {tuple(A.shape)}")
    op = Operation.parse(operation)
    out_len = A.shape[1] if op is Operation.N else A.shape[2]
    if out is not None and (
        tuple(out.shape) != (A.shape[0], out_len)
        or be.dtype_of(out) != be.dtype_of(A)
    ):
        raise ReproError(
            f"out must be {(A.shape[0], out_len)} {be.dtype_of(A)}, "
            f"got {tuple(out.shape)} {be.dtype_of(out)}"
        )
    if op is Operation.N:
        if tuple(x.shape) != (A.shape[0], A.shape[2]):
            raise ReproError(
                f"x must be {(A.shape[0], A.shape[2])}, got {tuple(x.shape)}"
            )
        if out is None:
            return be.matmul(A, x[:, :, None])[:, :, 0]
        be.matmul(A, x[:, :, None], out=out[:, :, None])
        return out
    if tuple(x.shape) != (A.shape[0], A.shape[1]):
        raise ReproError(f"x must be {(A.shape[0], A.shape[1])}, got {tuple(x.shape)}")
    if op is Operation.C:
        # y[n] = sum_m conj(A[m,n]) x[m] = conj( (conj(x)^T A)[n] )
        if x_conj is None:
            x_conj = be.conjugate(x)
        elif tuple(x_conj.shape) != tuple(x.shape) or be.dtype_of(x_conj) != be.dtype_of(x):
            raise ReproError(
                f"x_conj must be {tuple(x.shape)} {be.dtype_of(x)}, "
                f"got {tuple(x_conj.shape)} {be.dtype_of(x_conj)}"
            )
        if out is None:
            return be.conjugate(be.matmul(x_conj[:, None, :], A))[:, 0, :]
        be.matmul(x_conj[:, None, :], A, out=out[:, None, :])
        be.conjugate(out, out=out)
        return out
    if out is None:
        return be.matmul(x[:, None, :], A)[:, 0, :]
    be.matmul(x[:, None, :], A, out=out[:, None, :])
    return out


# ---------------------------------------------------------------------------
# Calibration: Figure 1 %-of-peak annotations (MI300X, batch 100,
# (conjugate) transpose, short-and-wide and square shapes).
# Entries: datatype -> list of (m, n, efficiency). Values are the bar
# annotations divided by 100.
# ---------------------------------------------------------------------------
_FIG1_ROCBLAS_T: Dict[BlasDatatype, List[Tuple[int, int, float]]] = {
    BlasDatatype.S: [
        (128, 4096, 0.150),
        (256, 256, 0.217),
        (256, 8192, 0.248),
        (512, 512, 0.448),
        (1024, 1024, 0.584),
        (2048, 2048, 0.633),
    ],
    BlasDatatype.D: [
        (128, 4096, 0.255),
        (256, 256, 0.417),
        (256, 8192, 0.425),
        (512, 512, 0.764),
    ],
    BlasDatatype.C: [
        (128, 4096, 0.250),
        (256, 256, 0.407),
        (256, 8192, 0.404),
        (512, 512, 0.758),
    ],
    BlasDatatype.Z: [
        (128, 4096, 0.420),
        (256, 256, 0.662),
        (256, 8192, 0.619),
    ],
}

_FIG1_OPTIMIZED_T: Dict[BlasDatatype, List[Tuple[int, int, float]]] = {
    BlasDatatype.S: [
        (128, 4096, 0.835),
        (256, 256, 0.586),
        (256, 8192, 0.727),
        (512, 512, 0.767),
        (1024, 1024, 0.647),
        (2048, 2048, 0.678),
    ],
    BlasDatatype.D: [
        (128, 4096, 0.732),
        (256, 256, 0.627),
        (256, 8192, 0.708),
        (512, 512, 0.764),
    ],
    BlasDatatype.C: [
        (128, 4096, 0.711),
        (256, 256, 0.576),
        (256, 8192, 0.703),
        (512, 512, 0.762),
    ],
    BlasDatatype.Z: [
        (128, 4096, 0.727),
        (256, 256, 0.712),
        (256, 8192, 0.695),
    ],
}

# Architecture rescaling is relative to MI300X (the GPU Figure 1 was
# measured on), per precision.
_MI300X_REFERENCE_FRACTION = {
    Precision.DOUBLE: MI300X.peak_fraction(Precision.DOUBLE),
    Precision.SINGLE: MI300X.peak_fraction(Precision.SINGLE),
}


def _interp_calibration(
    points: List[Tuple[int, int, float]], m: int, n: int
) -> Optional[float]:
    """Interpolate an efficiency from calibration points.

    Points are split into "skewed" (n > 2m) and "square-ish" classes; we
    interpolate log-linearly in ``m`` within the class that matches the
    query, falling back to the other class when one is empty.  Returns
    None when the table has no points at all.
    """
    if not points:
        return None
    want_skewed = n > 2 * m
    cls = [(pm, pe) for pm, pn, pe in points if (pn > 2 * pm) == want_skewed]
    if not cls:
        cls = [(pm, pe) for pm, pn, pe in points]
    cls.sort()
    ms = [p[0] for p in cls]
    es = [p[1] for p in cls]
    if m <= ms[0]:
        return es[0]
    if m >= ms[-1]:
        return es[-1]
    x = math.log2(m)
    xs = [math.log2(v) for v in ms]
    for i in range(len(xs) - 1):
        if xs[i] <= x <= xs[i + 1]:
            t = (x - xs[i]) / (xs[i + 1] - xs[i])
            return es[i] * (1 - t) + es[i + 1] * t
    return es[-1]  # pragma: no cover - unreachable


def _arch_scale(spec: GPUSpec, prec: Precision) -> float:
    """Rescale MI300X-calibrated efficiencies to another architecture."""
    return spec.peak_fraction(prec) / _MI300X_REFERENCE_FRACTION[prec]


class SBGEMVKernel:
    """Base class: numerics + launch accounting shared by both kernels."""

    name = "sbgemv_base"

    def launch_geometry(self, problem: GemvProblem, spec: GPUSpec) -> Tuple[Dim3, Dim3]:
        """(grid, block) dimensions this kernel launches with."""
        raise NotImplementedError

    def efficiency(self, problem: GemvProblem, spec: GPUSpec) -> float:
        """Achieved fraction of peak bandwidth for this problem."""
        raise NotImplementedError

    def supports(self, problem: GemvProblem) -> bool:
        """Whether this kernel handles the problem at all."""
        return True

    # -- execution ----------------------------------------------------------
    def run(
        self,
        A: Any,
        x: Any,
        problem: GemvProblem,
        device: Optional[SimulatedDevice] = None,
        phase: str = "sbgemv",
        out: Optional[Any] = None,
        x_conj: Optional[Any] = None,
        backend: Optional[Backend] = None,
    ) -> Any:
        """Compute the batched GEMV and charge simulated time.

        ``A``/``x`` dtypes must match the problem datatype; this is where a
        precision-config bug would silently change the numerics, so it is
        checked strictly.  ``out`` / ``x_conj`` forward to the reference
        kernel so a workspace-backed caller pays no output (or op-C
        conjugate staging) allocation.
        """
        be = backend if backend is not None else _NUMPY
        if be.dtype_of(A) != problem.datatype.dtype:
            raise ReproError(
                f"A dtype {be.dtype_of(A)} != problem datatype {problem.datatype.dtype}"
            )
        if be.dtype_of(x) != problem.datatype.dtype:
            raise ReproError(
                f"x dtype {be.dtype_of(x)} != problem datatype {problem.datatype.dtype}"
            )
        if not self.supports(problem):
            raise ReproError(f"{self.name} does not support {problem.describe()}")
        y = gemv_strided_batched_reference(
            A, x, problem.operation, out=out, x_conj=x_conj, backend=be
        )
        if device is not None:
            grid, block = self.launch_geometry(problem, device.spec)
            eff = self.efficiency(problem, device.spec)
            kernel = KernelLaunch(
                name=f"{self.name}_{problem.datatype.value}{problem.operation.value.lower()}",
                grid=grid,
                block=block,
                bytes_read=float(problem.matrix_bytes + problem.vector_bytes / 2),
                bytes_written=float(problem.vector_bytes / 2),
                flops=2.0 * problem.m * problem.n * problem.batch,
                efficiency_hint=eff,
            )
            device.launch(kernel, phase=phase)
        return y

    # -- modeled performance ---------------------------------------------------
    def modeled_time(self, problem: GemvProblem, spec: GPUSpec) -> float:
        """Simulated seconds for one execution (no numerics).

        The calibrated efficiencies are *end-to-end* fractions of peak
        (they come from rocblas-bench's achieved-bandwidth metric, which
        folds launch overhead in), so no separate overhead is added.
        """
        eff = self.efficiency(problem, spec)
        bw = eff * spec.peak_bandwidth
        return problem.total_bytes / bw

    def modeled_bandwidth(self, problem: GemvProblem, spec: GPUSpec) -> float:
        """rocblas-bench's metric: problem bytes / measured time (B/s)."""
        return problem.total_bytes / self.modeled_time(problem, spec)


class RocblasSBGEMV(SBGEMVKernel):
    """The original rocBLAS strided-batched GEMV kernel (pre-optimization)."""

    name = "rocblas_sbgemv"

    _BLOCK = 64  # rows per block in non-transpose mode

    def launch_geometry(self, problem: GemvProblem, spec: GPUSpec) -> Tuple[Dim3, Dim3]:
        if problem.operation.is_transposed:
            # One gridblock per matrix column; batching in grid.z
            # (Section 3.1.1: "grid dimensions of Nm x 1 x (Nt+1)").
            return Dim3(x=problem.n, y=1, z=problem.batch), Dim3(x=256)
        return (
            Dim3(x=max(1, math.ceil(problem.m / self._BLOCK)), y=1, z=problem.batch),
            Dim3(x=256),
        )

    def efficiency(self, problem: GemvProblem, spec: GPUSpec) -> float:
        scale = _arch_scale(spec, problem.datatype.precision)
        if problem.operation.is_transposed:
            cal = _interp_calibration(
                _FIG1_ROCBLAS_T[problem.datatype], problem.m, problem.n
            )
            if cal is not None:
                return min(0.95, cal * scale)
            # fall back to the physical model (never reached for the four
            # standard datatypes, kept for robustness)
            grid, _ = self.launch_geometry(problem, spec)
            per_block = problem.m * problem.datatype.itemsize
            return grid_efficiency(problem.total_bytes, grid.total, per_block, spec) * scale
        # Non-transpose: blocks stream whole rows — efficient; saturates
        # at the architecture's tuned non-transpose fraction (~70% on
        # CDNA2, ~77% on CDNA3 where this kernel is exceptionally tuned).
        from repro.gpu.bandwidth import STREAM_FRACTION

        saturation = stream_efficiency(problem.total_bytes, spec) / STREAM_FRACTION
        return min(0.95, spec.gemv_n_fraction(problem.datatype.precision) * saturation)


class OptimizedSBGEMV(SBGEMVKernel):
    """The paper's tiled, vectorized, pipelined (conjugate) transpose kernel.

    Only dispatched for transpose/conjugate-transpose problems with
    ``m < n`` shapes in the real library; our ``supports`` mirrors the
    kernel's applicability (any transposed problem).
    """

    name = "optimized_sbgemv"

    _TILE_COLS = 64  # columns tiled per gridblock
    _THREADS = (64, 4)  # 2-D threadblock

    def supports(self, problem: GemvProblem) -> bool:
        return problem.operation.is_transposed

    def vector_width(self, datatype: BlasDatatype) -> int:
        """Elements fetched per 16-byte vectorized load (float4/double2...)."""
        return max(1, 16 // datatype.itemsize)

    def launch_geometry(self, problem: GemvProblem, spec: GPUSpec) -> Tuple[Dim3, Dim3]:
        blocks_x = max(1, math.ceil(problem.n / self._TILE_COLS))
        tx, ty = self._THREADS
        return Dim3(x=blocks_x, y=1, z=problem.batch), Dim3(x=tx, y=ty)

    def efficiency(self, problem: GemvProblem, spec: GPUSpec) -> float:
        if not problem.operation.is_transposed:
            raise ReproError(f"{self.name} only implements transposed SBGEMV")
        scale = _arch_scale(spec, problem.datatype.precision)
        cal = _interp_calibration(
            _FIG1_OPTIMIZED_T[problem.datatype], problem.m, problem.n
        )
        if cal is not None:
            return min(0.95, cal * scale)
        grid, _ = self.launch_geometry(problem, spec)  # pragma: no cover
        per_block = problem.m * self._TILE_COLS * problem.datatype.itemsize
        return grid_efficiency(problem.total_bytes, grid.total, per_block, spec) * scale
