"""Custom 3-D permutation kernel (the cuTENSOR replacement).

Paper Section 3.1: cuTENSOR v2's complex-double permutation has no
hipTensor counterpart, so FFTMatvec replaces it with a custom GPU kernel
— "a modification of the one developed in [Jodra et al. 2015] to avoid
overflowing the maximum number of grid blocks that can be launched in
the y and z dimensions".  It runs once in the setup phase (reordering
the Toeplitz kernel blocks into the frequency-major layout the batched
SBGEMV wants) and is not performance-critical.

This module reproduces both halves of that story:

* :func:`permute3d` — the numeric permutation (vectorized NumPy) with a
  launch-geometry model;
* :func:`naive_launch_geometry` — the textbook Jodra-style launch that
  maps tensor extents directly onto grid (x, y, z) and therefore
  *overflows* the 65535 y/z limits for FFTMatvec-scale tensors;
* :func:`tiled_launch_geometry` — the paper's fix: fold the large
  extents into grid.x tiles so y/z stay bounded.

Tests verify that the naive geometry really is rejected by the device at
paper scale while the tiled geometry passes, which is precisely why the
custom kernel exists.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.gpu.bandwidth import stream_efficiency
from repro.gpu.device import SimulatedDevice
from repro.gpu.kernel import Dim3, KernelLaunch
from repro.gpu.specs import GPUSpec
from repro.util.validation import ReproError, check_array

__all__ = [
    "permute3d",
    "naive_launch_geometry",
    "tiled_launch_geometry",
    "PERMUTE_KERNEL_NAME",
]

PERMUTE_KERNEL_NAME = "fftmatvec_permute_kernel"

_TILE = 256  # elements per gridblock along the folded dimension


def _check_perm(perm: Sequence[int]) -> Tuple[int, int, int]:
    p = tuple(int(i) for i in perm)
    if sorted(p) != [0, 1, 2]:
        raise ReproError(f"perm must be a permutation of (0,1,2), got {perm}")
    return p  # type: ignore[return-value]


def naive_launch_geometry(shape: Sequence[int]) -> Dim3:
    """Jodra-style direct mapping: one block axis per tensor axis.

    Overflows grid.y / grid.z (max 65535) when the middle or outer
    extent is large — e.g. FFTMatvec's (Nt+1, Nd, Nm) kernel tensor with
    Nm beyond 65535 on large multi-GPU runs.
    """
    a, b, c = (int(s) for s in shape)
    return Dim3(
        x=max(1, math.ceil(c / _TILE)),
        y=max(1, b),
        z=max(1, a),
    )


def tiled_launch_geometry(shape: Sequence[int], spec: GPUSpec) -> Dim3:
    """The paper's modified launch: fold oversized extents into grid.x.

    grid.y and grid.z are clamped to the device limits and the residual
    factor is multiplied into grid.x (each block recovers its logical
    coordinates from the flattened index).
    """
    a, b, c = (int(s) for s in shape)
    max_y, max_z = spec.max_grid[1], spec.max_grid[2]
    y = min(max(1, b), max_y)
    z = min(max(1, a), max_z)
    fold = math.ceil(b / y) * math.ceil(a / z)
    x = max(1, math.ceil(c / _TILE)) * fold
    return Dim3(x=x, y=y, z=z)


def permute3d(
    tensor: np.ndarray,
    perm: Sequence[int],
    device: Optional[SimulatedDevice] = None,
    phase: str = "setup",
) -> np.ndarray:
    """Permute a rank-3 tensor's axes with the custom kernel.

    Numerically a contiguous transpose; on a simulated device it charges
    one tiled-geometry kernel launch (validated against the device's
    grid limits — the naive geometry would be rejected at scale).
    """
    t = check_array(tensor, "tensor", ndim=3)
    p = _check_perm(perm)
    out = np.ascontiguousarray(np.transpose(t, p))
    if device is not None:
        geometry = tiled_launch_geometry(t.shape, device.spec)
        traffic = float(t.nbytes + out.nbytes)
        kernel = KernelLaunch(
            name=PERMUTE_KERNEL_NAME,
            grid=geometry,
            block=Dim3(x=256),
            bytes_read=float(t.nbytes),
            bytes_written=float(out.nbytes),
            # permutations are strided on one side: ~0.7 of streaming
            efficiency_hint=stream_efficiency(traffic, device.spec) * 0.7,
        )
        device.launch(kernel, phase=phase)
    return out
