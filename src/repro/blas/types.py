"""BLAS-level enums and problem descriptors (rocBLAS naming)."""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.util.dtypes import Precision
from repro.util.validation import ReproError, check_positive_int

__all__ = ["Operation", "BlasDatatype", "GemvProblem", "GemmProblem"]


class Operation(enum.Enum):
    """Matrix operation: none / transpose / conjugate transpose."""

    N = "N"
    T = "T"
    C = "C"  # conjugate transpose ("H" in rocblas-bench yaml)

    @classmethod
    def parse(cls, token) -> "Operation":
        if isinstance(token, Operation):
            return token
        t = str(token).strip().upper()
        if t in ("N", "NONE"):
            return cls.N
        if t == "T":
            return cls.T
        if t in ("C", "H"):  # rocblas-bench yaml uses H for conjugate transpose
            return cls.C
        raise ReproError(f"unknown operation {token!r}")

    @property
    def is_transposed(self) -> bool:
        return self is not Operation.N


class BlasDatatype(enum.Enum):
    """The four GEMV datatypes, named by their rocBLAS function letter."""

    S = "s"  # real single
    D = "d"  # real double
    C = "c"  # complex single
    Z = "z"  # complex double

    @classmethod
    def parse(cls, token) -> "BlasDatatype":
        if isinstance(token, BlasDatatype):
            return token
        t = str(token).strip().lower()
        for member in cls:
            if t == member.value:
                return member
        names = {
            "float32": cls.S,
            "float64": cls.D,
            "complex64": cls.C,
            "complex128": cls.Z,
            "real single": cls.S,
            "real double": cls.D,
            "complex single": cls.C,
            "complex double": cls.Z,
        }
        if t in names:
            return names[t]
        raise ReproError(f"unknown BLAS datatype {token!r}")

    @classmethod
    def from_dtype(cls, dtype) -> "BlasDatatype":
        dt = np.dtype(dtype)
        table = {
            np.dtype(np.float32): cls.S,
            np.dtype(np.float64): cls.D,
            np.dtype(np.complex64): cls.C,
            np.dtype(np.complex128): cls.Z,
        }
        if dt not in table:
            raise ReproError(f"no BLAS datatype for {dt}")
        return table[dt]

    @property
    def dtype(self) -> np.dtype:
        return {
            BlasDatatype.S: np.dtype(np.float32),
            BlasDatatype.D: np.dtype(np.float64),
            BlasDatatype.C: np.dtype(np.complex64),
            BlasDatatype.Z: np.dtype(np.complex128),
        }[self]

    @property
    def itemsize(self) -> int:
        return self.dtype.itemsize

    @property
    def is_complex(self) -> bool:
        return self in (BlasDatatype.C, BlasDatatype.Z)

    @property
    def precision(self) -> Precision:
        return (
            Precision.SINGLE
            if self in (BlasDatatype.S, BlasDatatype.C)
            else Precision.DOUBLE
        )

    @property
    def function_name(self) -> str:
        """rocBLAS function name, e.g. ``rocblas_zgemv_strided_batched``."""
        return f"rocblas_{self.value}gemv_strided_batched"


@dataclass(frozen=True)
class GemvProblem:
    """One strided-batched GEMV problem: ``y_i = op(A_i) @ x_i``.

    ``m``/``n`` are the dimensions of each (untransposed) matrix ``A_i``;
    FFTMatvec's Phase 3 uses ``m = Nd``, ``n = local Nm``, batch
    ``Nt + 1`` and complex datatypes.
    """

    m: int
    n: int
    batch: int
    datatype: BlasDatatype
    operation: Operation

    def __post_init__(self) -> None:
        check_positive_int(self.m, "m")
        check_positive_int(self.n, "n")
        check_positive_int(self.batch, "batch")
        if self.operation is Operation.C and not self.datatype.is_complex:
            # rocblas-bench benchmarks T for real and H (==C) for complex.
            raise ReproError(
                "conjugate transpose is only meaningful for complex datatypes;"
                " use Operation.T for real"
            )

    @property
    def out_len(self) -> int:
        """Length of each output vector y_i."""
        return self.n if self.operation.is_transposed else self.m

    @property
    def in_len(self) -> int:
        """Length of each input vector x_i."""
        return self.m if self.operation.is_transposed else self.n

    @property
    def matrix_bytes(self) -> int:
        """Bytes of all batched matrices (the dominant traffic)."""
        return self.m * self.n * self.batch * self.datatype.itemsize

    @property
    def vector_bytes(self) -> int:
        """Bytes of all input+output vectors."""
        return (self.in_len + self.out_len) * self.batch * self.datatype.itemsize

    @property
    def total_bytes(self) -> int:
        """Total HBM traffic of one well-behaved execution."""
        return self.matrix_bytes + self.vector_bytes

    @property
    def is_short_wide(self) -> bool:
        """True when each matrix is short and wide (m < n)."""
        return self.m < self.n

    def describe(self) -> str:
        """Human-readable problem summary for error messages and logs."""
        return (
            f"{self.datatype.function_name}[{self.operation.value}] "
            f"{self.m}x{self.n} batch={self.batch}"
        )


@dataclass(frozen=True)
class GemmProblem:
    """One strided-batched multi-RHS GEMM problem: ``C_i = op(A_i) @ B_i``.

    ``m``/``n`` are the dimensions of each (untransposed) matrix ``A_i``
    and ``k`` is the number of right-hand-side columns; FFTMatvec's
    blocked Phase 3 uses ``m = Nd``, ``n = local Nm``, ``k`` = block
    width and batch ``Nt + 1``.  With ``k = 1`` this degenerates to the
    :class:`GemvProblem` the SBGEMV kernels handle.
    """

    m: int
    n: int
    k: int
    batch: int
    datatype: BlasDatatype
    operation: Operation

    def __post_init__(self) -> None:
        check_positive_int(self.m, "m")
        check_positive_int(self.n, "n")
        check_positive_int(self.k, "k")
        check_positive_int(self.batch, "batch")
        if self.operation is Operation.C and not self.datatype.is_complex:
            raise ReproError(
                "conjugate transpose is only meaningful for complex datatypes;"
                " use Operation.T for real"
            )

    @property
    def out_rows(self) -> int:
        """Rows of each output panel C_i (= rows of op(A_i))."""
        return self.n if self.operation.is_transposed else self.m

    @property
    def in_rows(self) -> int:
        """Rows of each input panel B_i (= cols of op(A_i))."""
        return self.m if self.operation.is_transposed else self.n

    @property
    def matrix_bytes(self) -> int:
        """Bytes of all batched matrices — read once, not once per RHS."""
        return self.m * self.n * self.batch * self.datatype.itemsize

    @property
    def panel_bytes(self) -> int:
        """Bytes of all input+output RHS panels."""
        return (self.in_rows + self.out_rows) * self.k * self.batch * self.datatype.itemsize

    @property
    def total_bytes(self) -> int:
        """Total HBM traffic of one well-behaved execution."""
        return self.matrix_bytes + self.panel_bytes

    @property
    def looped_gemv_bytes(self) -> int:
        """Traffic ``k`` separate GEMV calls would generate (matrix re-read
        per RHS) — the quantity the blocked path saves."""
        return self.k * self.as_gemv().total_bytes

    @property
    def is_short_wide(self) -> bool:
        """True when each matrix is short and wide (m < n)."""
        return self.m < self.n

    def as_gemv(self) -> GemvProblem:
        """The single-RHS GEMV problem with the same matrix and operation."""
        return GemvProblem(
            m=self.m,
            n=self.n,
            batch=self.batch,
            datatype=self.datatype,
            operation=self.operation,
        )

    def describe(self) -> str:
        """Human-readable problem summary for error messages and logs."""
        return (
            f"rocblas_{self.datatype.value}gemm_strided_batched"
            f"[{self.operation.value}] {self.m}x{self.n} k={self.k} "
            f"batch={self.batch}"
        )
