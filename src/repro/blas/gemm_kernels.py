"""SBGEMM kernel implementations for the blocked multi-RHS matvec path.

Both kernels compute the *same numbers* (a strided-batched multi-RHS GEMM
evaluated with vectorized NumPy in the problem's precision); they differ
in launch geometry and in the achieved-bandwidth model, mirroring the
SBGEMV pair in :mod:`repro.blas.gemv_kernels`:

* **RocblasSBGEMM** (vendor GEMM): macro-tiles the output panel ``C``
  with a fixed 32x32 tile.  Excellent when both ``C`` dimensions fill the
  tile, but FFTMatvec's blocked Phase 3 produces *skinny* panels —
  ``out_rows x k`` with small ``k`` — so most tile lanes idle and the
  achieved fraction of peak drops with the tile fill.
* **OptimizedSBGEMM** (the paper's SBGEMV design, extended to multiple
  right-hand sides): gridblocks tile the *columns of op(A)* exactly like
  the optimized SBGEMV; the ``k`` RHS vectors live in a register panel so
  the streamed A-panel is reused ``k`` times per load, keeping the
  vectorized-load / pipelined / wavefront-shuffle structure intact.
  Register pressure bounds the panel, so reuse saturates at
  ``_RHS_PANEL`` columns and very wide blocks lose a little efficiency.

Unlike the SBGEMV pair there is no Figure-1 calibration table for GEMM;
both models are the physically-motivated work-per-block curve
(:func:`repro.gpu.bandwidth.grid_efficiency`) rescaled per architecture,
which is all the dispatcher needs to place transition points.

The headline saving of the blocked path is independent of these details:
a GEMM moves ``matrix + k * vectors`` bytes where ``k`` looped GEMVs move
``k * (matrix + vectors)`` — the matrix, the dominant traffic, is read
once instead of ``k`` times.
"""

from __future__ import annotations

import math
from typing import Any, Optional, Tuple

import numpy as np

from repro.backend import Backend, NumpyBackend
from repro.blas.types import BlasDatatype, GemmProblem, Operation
from repro.gpu.bandwidth import grid_efficiency, stream_efficiency
from repro.gpu.device import SimulatedDevice
from repro.gpu.kernel import Dim3, KernelLaunch
from repro.gpu.specs import GPUSpec, MI300X
from repro.util import checksum as _checksum
from repro.util.dtypes import Precision
from repro.util.pairwise import canonical_segments, fold_pairwise
from repro.util.validation import ReproError

__all__ = [
    "SBGEMMKernel",
    "RocblasSBGEMM",
    "OptimizedSBGEMM",
    "PairwiseSBGEMM",
    "gemm_strided_batched_reference",
    "pairwise_gemm_strided_batched_reference",
    "pairwise_segment_values",
    "gemm_checksum_verify",
]

_NUMPY = NumpyBackend()


def gemm_strided_batched_reference(
    A: Any,
    B: Any,
    operation: Operation,
    out: Optional[Any] = None,
    a_conj: Optional[Any] = None,
    backend: Optional[Backend] = None,
) -> Any:
    """Numerical strided-batched GEMM: ``C_i = op(A_i) @ B_i``.

    ``A`` has shape (batch, m, n); ``B`` has shape (batch, in_rows, k)
    where ``in_rows`` is ``n`` for op N and ``m`` for op T/C.  Computation
    stays in the input dtype, so mixed-precision SBGEMM error is
    measured, not modeled — same contract as the GEMV reference.

    ``out`` (shape ``(batch, out_rows, k)``) receives the panel without a
    fresh allocation.  ``a_conj`` supplies a precomputed ``np.conj(A)``
    for op C callers that apply the same spectrum every iteration (the
    matvec engine caches it); it must hold exactly the bytes
    ``np.conj(A)`` would produce, so the result is bitwise-unchanged.
    """
    be = backend if backend is not None else _NUMPY
    A = be.asarray(A)
    B = be.asarray(B)
    if A.ndim != 3:
        raise ReproError(f"A must be (batch, m, n), got shape {tuple(A.shape)}")
    if B.ndim != 3:
        raise ReproError(f"B must be (batch, in_rows, k), got shape {tuple(B.shape)}")
    op = Operation.parse(operation)
    in_rows = A.shape[2] if op is Operation.N else A.shape[1]
    if tuple(B.shape[:2]) != (A.shape[0], in_rows):
        raise ReproError(
            f"B must be ({A.shape[0]}, {in_rows}, k), got {tuple(B.shape)}"
        )
    out_rows = A.shape[1] if op is Operation.N else A.shape[2]
    if out is not None and (
        tuple(out.shape) != (A.shape[0], out_rows, B.shape[2])
        or be.dtype_of(out) != be.dtype_of(A)
    ):
        raise ReproError(
            f"out must be {(A.shape[0], out_rows, B.shape[2])} {be.dtype_of(A)}, "
            f"got {tuple(out.shape)} {be.dtype_of(out)}"
        )
    if op is Operation.N:
        return be.matmul(A, B, out=out)
    if op is Operation.C:
        if a_conj is None:
            a_conj = be.conjugate(A)
        elif tuple(a_conj.shape) != tuple(A.shape) or be.dtype_of(a_conj) != be.dtype_of(A):
            raise ReproError(
                f"a_conj must be {tuple(A.shape)} {be.dtype_of(A)}, "
                f"got {tuple(a_conj.shape)} {be.dtype_of(a_conj)}"
            )
        return be.matmul(be.transpose(a_conj, (0, 2, 1)), B, out=out)
    return be.matmul(be.transpose(A, (0, 2, 1)), B, out=out)


def _pairwise_leaves(
    A: Any,
    B: Any,
    op: Operation,
    a_conj: Optional[Any],
    be: Backend,
) -> Tuple[Any, int]:
    """Elementwise leaf products of a GEMM contraction, plus the fold axis.

    For op N (contraction over A's columns) the leaf tensor is
    ``A[b, i, j] * B[b, j, r]`` with shape (batch, m, n, k) and fold
    axis 2; for op T/C (contraction over A's rows) it is
    ``op(A)[b, j, i] * B[b, i, r]`` with shape (batch, m, n, k) and fold
    axis 1.  Each product is a separate elementwise multiply — never a
    ``matmul`` — so no fused multiply-add can regroup the sum the fixed
    tree is about to pin down.
    """
    if op is Operation.C:
        A = a_conj if a_conj is not None else be.conjugate(A)
    if op is Operation.N:
        # leaves[b, i, j, r] = A[b, i, j] * B[b, j, r]; contract axis 2.
        return be.multiply(A[:, :, :, None], B[:, None, :, :]), 2
    # leaves[b, i, j, r] = A[b, i, j] * B[b, i, r]; contract axis 1.
    return be.multiply(A[:, :, :, None], B[:, :, None, :]), 1


def pairwise_gemm_strided_batched_reference(
    A: Any,
    B: Any,
    operation: Operation,
    out: Optional[Any] = None,
    a_conj: Optional[Any] = None,
    backend: Optional[Backend] = None,
) -> Any:
    """Strided-batched GEMM with fixed-order pairwise accumulation.

    Same shapes and contract as :func:`gemm_strided_batched_reference`,
    but every output element is the :func:`~repro.util.pairwise.fold_pairwise`
    tree sum of its elementwise leaf products rather than whatever
    grouping the vendor GEMM's tiling produces.  Because the tree is per
    output element and independent of ``k``, blocked and looped applies
    agree bitwise at any block width — and restricting the contraction
    range to a sub-partition and merging segment values reproduces the
    same bits (see :func:`pairwise_segment_values`).
    """
    be = backend if backend is not None else _NUMPY
    A = be.asarray(A)
    B = be.asarray(B)
    if A.ndim != 3:
        raise ReproError(f"A must be (batch, m, n), got shape {tuple(A.shape)}")
    if B.ndim != 3:
        raise ReproError(f"B must be (batch, in_rows, k), got shape {tuple(B.shape)}")
    op = Operation.parse(operation)
    in_rows = A.shape[2] if op is Operation.N else A.shape[1]
    if tuple(B.shape[:2]) != (A.shape[0], in_rows):
        raise ReproError(
            f"B must be ({A.shape[0]}, {in_rows}, k), got {tuple(B.shape)}"
        )
    out_rows = A.shape[1] if op is Operation.N else A.shape[2]
    if out is not None and (
        tuple(out.shape) != (A.shape[0], out_rows, B.shape[2])
        or be.dtype_of(out) != be.dtype_of(A)
    ):
        raise ReproError(
            f"out must be {(A.shape[0], out_rows, B.shape[2])} {be.dtype_of(A)}, "
            f"got {tuple(out.shape)} {be.dtype_of(out)}"
        )
    leaves, axis = _pairwise_leaves(A, B, op, a_conj, be)
    C = fold_pairwise(leaves, axis=axis, backend=be)
    if out is not None:
        out[...] = C
        return out
    return C


def pairwise_segment_values(
    A: Any,
    B: Any,
    operation: Operation,
    start: int,
    n_global: int,
    a_conj: Optional[Any] = None,
    backend: Optional[Backend] = None,
) -> dict:
    """Canonical-segment partial panels for a *local slice* of a GEMM.

    ``A``/``B`` hold the contraction range ``[start, start + local)`` of
    a global contraction axis of length ``n_global`` (a rank's column or
    row block).  Returns ``{(s, e): value}`` mapping the range's
    :func:`~repro.util.pairwise.canonical_segments` (virtual extents) to
    their folded partial panels of shape (batch, out_rows, k).  Feeding
    every rank's segments to
    :func:`~repro.util.pairwise.fixed_tree_merge` (or the collective
    wrapper :func:`repro.comm.collectives.fixed_tree_reduce_segments`)
    yields the full panel bitwise-identical to
    :func:`pairwise_gemm_strided_batched_reference` on the undivided
    operands — for *any* partition, including width-1 parts.
    """
    be = backend if backend is not None else _NUMPY
    A = be.asarray(A)
    B = be.asarray(B)
    op = Operation.parse(operation)
    leaves, axis = _pairwise_leaves(A, B, op, a_conj, be)
    local = int(leaves.shape[axis])
    values = {}
    for s, e in canonical_segments(start, start + local, n_global):
        lo, hi = s - start, min(e, n_global) - start
        sl = (slice(None),) * axis + (slice(lo, hi),)
        values[(s, e)] = fold_pairwise(leaves[sl], axis=axis, backend=be)
    return values


def gemm_checksum_verify(
    A: Any,
    B: Any,
    operation: Operation,
    C: Any,
    a_conj: Optional[Any] = None,
    backend: Optional[Backend] = None,
    phase: str = "sbgemv",
    rank: Optional[int] = None,
    context: str = "",
    rtol: Optional[float] = None,
) -> None:
    """Huang–Abraham column-checksum verification of a computed panel.

    The checksum identity: for ``C = op(A) @ B`` the column sums of the
    output must satisfy ``e^T C == (e^T op(A)) @ B`` — the right-hand
    side is one extra GEMM row (the checksum row carried alongside the
    panel), so the check costs ``1/out_rows`` of the GEMM plus one read
    of ``C``.  A single corrupted element of ``A``, ``B`` or ``C``
    perturbs at least one column sum by the magnitude of the corruption,
    which a bit-62 flip makes enormous; rounding noise stays inside a
    tolerance scaled by ``(e^T |op(A)|) |B|``.  Raises
    :class:`~repro.util.checksum.SilentCorruption` on mismatch.
    """
    be = backend if backend is not None else _NUMPY
    A = be.asarray(A)
    B = be.asarray(B)
    C = be.asarray(C)
    op = Operation.parse(operation)
    if op is Operation.N:
        opA = A
    elif op is Operation.C:
        opA = be.transpose(a_conj if a_conj is not None else be.conjugate(A), (0, 2, 1))
    else:
        opA = be.transpose(A, (0, 2, 1))
    out_rows = int(opA.shape[1])
    ones = be.asarray(np.ones((1, out_rows), dtype=be.dtype_of(A)))
    # A corrupted panel may hold Inf/NaN; the checksum contractions then
    # propagate non-finite sums (which the verifier treats as a
    # detection) without numpy warning noise.
    with np.errstate(over="ignore", invalid="ignore"):
        expected = be.matmul(be.matmul(ones, opA), B)
        got = be.matmul(ones, C)
    _checksum.verify_gemm_checksums(
        be.from_device(expected),
        be.from_device(got),
        _checksum.gemm_checksum_scale(be.from_device(opA), be.from_device(B)),
        length=out_rows + int(opA.shape[2]),
        phase=phase,
        rank=rank,
        context=context,
        rtol=rtol,
    )


# Architecture rescaling is relative to MI300X, matching the SBGEMV
# kernels' convention so transition points move coherently across archs.
_MI300X_REFERENCE_FRACTION = {
    Precision.DOUBLE: MI300X.peak_fraction(Precision.DOUBLE),
    Precision.SINGLE: MI300X.peak_fraction(Precision.SINGLE),
}


def _arch_scale(spec: GPUSpec, prec: Precision) -> float:
    return spec.peak_fraction(prec) / _MI300X_REFERENCE_FRACTION[prec]


class SBGEMMKernel:
    """Base class: numerics + launch accounting shared by both kernels."""

    name = "sbgemm_base"

    def launch_geometry(self, problem: GemmProblem, spec: GPUSpec) -> Tuple[Dim3, Dim3]:
        """(grid, block) dimensions this kernel launches with."""
        raise NotImplementedError

    def efficiency(self, problem: GemmProblem, spec: GPUSpec) -> float:
        """Achieved fraction of peak bandwidth for this problem."""
        raise NotImplementedError

    def supports(self, problem: GemmProblem) -> bool:
        """Whether this kernel handles the problem at all."""
        return True

    # -- execution ----------------------------------------------------------
    def run(
        self,
        A: Any,
        B: Any,
        problem: GemmProblem,
        device: Optional[SimulatedDevice] = None,
        phase: str = "sbgemv",
        out: Optional[Any] = None,
        a_conj: Optional[Any] = None,
        backend: Optional[Backend] = None,
    ) -> Any:
        """Compute the batched GEMM and charge simulated time.

        Dtypes must match the problem datatype — same strict check as the
        SBGEMV path, for the same reason: a precision-config bug here
        would silently change the numerics.  ``out`` / ``a_conj`` forward
        to the reference kernel (no output allocation, cached conjugate
        spectrum).
        """
        be = backend if backend is not None else _NUMPY
        if be.dtype_of(A) != problem.datatype.dtype:
            raise ReproError(
                f"A dtype {be.dtype_of(A)} != problem datatype {problem.datatype.dtype}"
            )
        if be.dtype_of(B) != problem.datatype.dtype:
            raise ReproError(
                f"B dtype {be.dtype_of(B)} != problem datatype {problem.datatype.dtype}"
            )
        if not self.supports(problem):
            raise ReproError(f"{self.name} does not support {problem.describe()}")
        C = self._compute(A, B, problem, out=out, a_conj=a_conj, backend=be)
        if device is not None:
            self.charge_launch(problem, device, phase=phase)
        return C

    def _compute(
        self,
        A: Any,
        B: Any,
        problem: GemmProblem,
        out: Optional[Any] = None,
        a_conj: Optional[Any] = None,
        backend: Optional[Backend] = None,
    ) -> Any:
        """Numerics hook — the vendor-order reference by default."""
        return gemm_strided_batched_reference(
            A, B, problem.operation, out=out, a_conj=a_conj, backend=backend
        )

    def charge_launch(
        self,
        problem: GemmProblem,
        device: SimulatedDevice,
        phase: str = "sbgemv",
    ) -> None:
        """Charge the simulated launch for one execution (no numerics).

        Exposed separately so callers that compute through a different
        numerical entry point (the grid engine's per-segment pairwise
        path) can still book the kernel's modeled cost.
        """
        grid, block = self.launch_geometry(problem, device.spec)
        eff = self.efficiency(problem, device.spec)
        out_b = problem.out_rows * problem.k * problem.batch * problem.datatype.itemsize
        kernel = KernelLaunch(
            name=f"{self.name}_{problem.datatype.value}{problem.operation.value.lower()}",
            grid=grid,
            block=block,
            bytes_read=float(problem.total_bytes - out_b),
            bytes_written=float(out_b),
            flops=2.0 * problem.m * problem.n * problem.k * problem.batch,
            efficiency_hint=eff,
        )
        device.launch(kernel, phase=phase)

    # -- modeled performance -------------------------------------------------
    def modeled_time(self, problem: GemmProblem, spec: GPUSpec) -> float:
        """Simulated seconds for one execution (no numerics)."""
        eff = self.efficiency(problem, spec)
        bw = eff * spec.peak_bandwidth
        return problem.total_bytes / bw

    def modeled_bandwidth(self, problem: GemmProblem, spec: GPUSpec) -> float:
        """rocblas-bench's metric: problem bytes / measured time (B/s)."""
        return problem.total_bytes / self.modeled_time(problem, spec)


class RocblasSBGEMM(SBGEMMKernel):
    """The vendor strided-batched GEMM, macro-tiled over the output panel."""

    name = "rocblas_sbgemm"

    _TILE = 32  # square macro-tile of C (out_rows x k)

    def launch_geometry(self, problem: GemmProblem, spec: GPUSpec) -> Tuple[Dim3, Dim3]:
        return (
            Dim3(
                x=max(1, math.ceil(problem.out_rows / self._TILE)),
                y=max(1, math.ceil(problem.k / self._TILE)),
                z=problem.batch,
            ),
            Dim3(x=16, y=16),
        )

    def efficiency(self, problem: GemmProblem, spec: GPUSpec) -> float:
        scale = _arch_scale(spec, problem.datatype.precision)
        grid, _ = self.launch_geometry(problem, spec)
        # Per-block traffic: one A-panel slab plus one B-panel slab.
        red = problem.in_rows
        per_block = (
            red
            * (min(problem.out_rows, self._TILE) + min(problem.k, self._TILE))
            * problem.datatype.itemsize
        )
        base = grid_efficiency(problem.total_bytes, grid.total, per_block, spec)
        # Skinny C panels underfill the fixed macro-tile; idle lanes cost
        # throughput even though the traffic model already shrank.
        fill = min(problem.k, self._TILE) / self._TILE
        return min(0.95, base * max(math.sqrt(fill), 0.25) * scale)


class OptimizedSBGEMM(SBGEMMKernel):
    """The paper's SBGEMV kernel design extended to a register RHS panel.

    Gridblocks tile the columns of op(A) (64 per block), stream the
    A-panel once with 16-byte vectorized loads, and hold up to
    ``_RHS_PANEL`` right-hand sides in registers so every loaded A element
    is used ``min(k, _RHS_PANEL)`` times.  Like its GEMV parent it only
    implements the (conjugate) transpose operation — the short-wide
    shapes of FFTMatvec's Phase 3.
    """

    name = "optimized_sbgemm"

    _TILE_COLS = 64
    _THREADS = (64, 4)
    _RHS_PANEL = 8  # RHS columns held in registers per thread tile

    def supports(self, problem: GemmProblem) -> bool:
        return problem.operation.is_transposed

    def launch_geometry(self, problem: GemmProblem, spec: GPUSpec) -> Tuple[Dim3, Dim3]:
        blocks_x = max(1, math.ceil(problem.n / self._TILE_COLS))
        tx, ty = self._THREADS
        return Dim3(x=blocks_x, y=1, z=problem.batch), Dim3(x=tx, y=ty)

    def efficiency(self, problem: GemmProblem, spec: GPUSpec) -> float:
        if not problem.operation.is_transposed:
            raise ReproError(f"{self.name} only implements transposed SBGEMM")
        scale = _arch_scale(spec, problem.datatype.precision)
        grid, _ = self.launch_geometry(problem, spec)
        # The A-panel per block is the same as the GEMV kernel's, but the
        # register RHS panel multiplies the useful work per loaded byte.
        reuse = min(problem.k, self._RHS_PANEL)
        per_block = problem.m * self._TILE_COLS * problem.datatype.itemsize * reuse
        base = grid_efficiency(problem.total_bytes, grid.total, per_block, spec)
        # Beyond the register panel the kernel loops over RHS chunks,
        # re-streaming A; a mild penalty models the lost locality.
        spill = (self._RHS_PANEL / problem.k) ** 0.15 if problem.k > self._RHS_PANEL else 1.0
        return min(0.95, base * spill * scale)


class PairwiseSBGEMM(SBGEMMKernel):
    """Deterministic SBGEMM: the fixed binary-tree accumulation order.

    Wraps one of the fast kernels and keeps its launch geometry and
    traffic model — a register-resident pairwise tree reads the same
    bytes — but charges a flat ``DETERMINISM_TAX`` on achieved
    bandwidth: pinning the add order costs the scheduler its freedom to
    drain partial sums as tiles complete, and the tree's cross-lane
    shuffles add latency the free-order kernel hides.  Numerics come
    from :func:`pairwise_gemm_strided_batched_reference`, so every
    output element is the canonical tree sum of its leaf products:
    bitwise-identical across RHS block widths, looped vs blocked calls,
    and any contraction-axis partition.

    Unlike the fast path, ``k == 1`` panels go through this kernel too
    (the dispatcher skips its GEMV degeneration in pairwise mode) — a
    single column must round exactly like the same column inside a
    block, or "blocked == looped" would only hold to rounding.
    """

    name = "pairwise_sbgemm"

    DETERMINISM_TAX = 0.9  # fraction of the wrapped kernel's bandwidth

    def __init__(self, inner: SBGEMMKernel) -> None:
        self.inner = inner

    def supports(self, problem: GemmProblem) -> bool:
        return self.inner.supports(problem)

    def launch_geometry(self, problem: GemmProblem, spec: GPUSpec) -> Tuple[Dim3, Dim3]:
        return self.inner.launch_geometry(problem, spec)

    def efficiency(self, problem: GemmProblem, spec: GPUSpec) -> float:
        return self.inner.efficiency(problem, spec) * self.DETERMINISM_TAX

    def _compute(
        self,
        A: Any,
        B: Any,
        problem: GemmProblem,
        out: Optional[Any] = None,
        a_conj: Optional[Any] = None,
        backend: Optional[Backend] = None,
    ) -> Any:
        return pairwise_gemm_strided_batched_reference(
            A, B, problem.operation, out=out, a_conj=a_conj, backend=backend
        )
