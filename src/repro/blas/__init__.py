"""Simulated rocBLAS: strided-batched GEMV kernels + dispatcher + bench.

Reproduces the paper's contribution C2 (the optimized (conjugate)
transpose SBGEMV kernel merged into rocBLAS) as a pair of kernel
implementations with identical numerics but distinct performance models:

* :class:`~repro.blas.gemv_kernels.RocblasSBGEMV` — the original rocBLAS
  kernel.  In (conjugate) transpose mode it launches one gridblock per
  matrix column, each computing a single length-``m`` dot product; for
  short-and-wide matrices (``m << n``) the blocks have almost no work and
  achieved bandwidth collapses (Section 3.1.1).
* :class:`~repro.blas.gemv_kernels.OptimizedSBGEMV` — the paper's kernel:
  gridblocks tile the columns, 2D threadblocks compute chunks of the
  output, vectorized loads (float4/double2) and read/compute/write
  pipelining raise the achieved bandwidth.

Efficiency curves are calibrated against the %-of-peak annotations of
Figure 1 (MI300X) and rescaled to other architectures via their
``sbgemv_peak_fraction``.  :mod:`repro.blas.dispatch` reproduces the host
dispatcher whose kernel transition points were "set using the
benchmarking results", and :mod:`repro.blas.bench` is the
``rocblas-bench`` work-alike driven by the same YAML-style configs as
the paper's artifact.
"""

from repro.blas.types import Operation, BlasDatatype, GemvProblem, GemmProblem
from repro.blas.gemv_kernels import (
    RocblasSBGEMV,
    OptimizedSBGEMV,
    SBGEMVKernel,
    gemv_strided_batched_reference,
)
from repro.blas.gemm_kernels import (
    RocblasSBGEMM,
    OptimizedSBGEMM,
    SBGEMMKernel,
    gemm_strided_batched_reference,
)
from repro.blas.dispatch import SBGEMVDispatcher
from repro.blas.bench import RocblasBench, BenchResult, parse_bench_yaml

__all__ = [
    "Operation",
    "BlasDatatype",
    "GemvProblem",
    "GemmProblem",
    "RocblasSBGEMV",
    "OptimizedSBGEMV",
    "SBGEMVKernel",
    "gemv_strided_batched_reference",
    "RocblasSBGEMM",
    "OptimizedSBGEMM",
    "SBGEMMKernel",
    "gemm_strided_batched_reference",
    "SBGEMVDispatcher",
    "RocblasBench",
    "BenchResult",
    "parse_bench_yaml",
]
