"""Measured SBGEMM calibration: transition points fit from timings.

The paper sets the SBGEMV host-dispatch transition points from the
Figure-1 *benchmark results*, not from a performance model ("the
benchmarking results were also used to set the kernel transition points
in the host launcher", Section 4.1.1).  The SBGEMM dispatcher shipped
with modeled transition points — the physically-motivated efficiency
curves compared analytically.  This module closes the gap for the
blocked path:

* :func:`measure_gemm_points` runs both SBGEMM kernels over a Figure-1
  style (shape, RHS-width) sweep and records *measured* timings — by
  default from the simulated device clock around real kernel
  executions (which includes launch overhead the pure model ignores),
  or from any caller-supplied timer (e.g. wall-clock around a real
  BLAS call on actual hardware).
* :func:`fit_transition_points` turns those measurements into the
  per-(datatype, operation, RHS-bucket) row-count thresholds ``m*``
  the dispatcher keys on — the largest probed ``m`` where the
  optimized kernel still wins.
* :func:`calibrate_dispatcher` installs a fitted table into a live
  :class:`~repro.blas.dispatch.SBGEMVDispatcher`, replacing its
  model-derived GEMM transition points with measured ones.
* :func:`calibration_table` renders the sweep as a Figure-1-style
  table; :func:`calibration_series` returns per-build (m, GB/s) series
  ready for a bar/line plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.backend import NumpyBackend
from repro.blas.dispatch import SBGEMVDispatcher
from repro.blas.gemm_kernels import OptimizedSBGEMM, RocblasSBGEMM
from repro.blas.types import BlasDatatype, GemmProblem, Operation
from repro.gpu.device import SimulatedDevice
from repro.gpu.specs import GPUSpec, MI300X
from repro.util.tables import render_table
from repro.util.validation import ReproError

_NUMPY = NumpyBackend()

__all__ = [
    "GemmCalibrationPoint",
    "measure_gemm_points",
    "fit_transition_points",
    "fit_transition_points_from_bench",
    "calibrate_dispatcher",
    "calibration_table",
    "calibration_series",
]

# Default sweep: the dispatcher's probe rows at Figure-1's short-wide
# skew, across the RHS widths the blocked pipeline actually uses.
# Unlike the dispatcher's model-only probe (which goes to 4096 rows for
# free), the measured sweep materializes real operands — batch * m *
# 8m * 16 bytes per matrix — so the default stops at 1024 rows (~270 MB
# per timing at batch 2); pass larger ``rows`` explicitly if you have
# the memory.
DEFAULT_ROWS = (64, 128, 256, 512, 1024)
DEFAULT_KS = (2, 4, 8, 16)
DEFAULT_SKEW = 8
# Measurement batch: small enough that the in-process numerics stay
# cheap; the simulated-clock timing scales with the problem, so the
# crossover row count is unchanged.
_MEASURE_BATCH = 2


@dataclass(frozen=True)
class GemmCalibrationPoint:
    """Both kernels' measured timings at one swept problem."""

    problem: GemmProblem
    t_rocblas: float
    t_optimized: float

    @property
    def optimized_wins(self) -> bool:
        return self.t_optimized < self.t_rocblas

    @property
    def speedup(self) -> float:
        return self.t_rocblas / self.t_optimized

    def bandwidths(self) -> Tuple[float, float]:
        """(rocblas, optimized) achieved GB/s — rocblas-bench's metric."""
        return (
            self.problem.total_bytes / self.t_rocblas / 1e9,
            self.problem.total_bytes / self.t_optimized / 1e9,
        )


def _device_timer(spec: GPUSpec) -> Callable[[object, GemmProblem], float]:
    """Time one kernel execution on a fresh simulated device clock.

    Runs the kernel's real numerics + launch accounting and reads the
    clock delta — the simulated analogue of rocblas-bench's
    device-event timing, including launch overhead.
    """

    def fill(rng, shape, problem: GemmProblem) -> np.ndarray:
        # Allocate in the target dtype and fill through real/imag views
        # so the peak is one operand plus one float temporary, not the
        # 2-3x that stacking float arrays and casting would cost.
        out = _NUMPY.empty(shape, problem.datatype.dtype)
        if problem.datatype.is_complex:
            out.real = rng.standard_normal(shape)
            out.imag = rng.standard_normal(shape)
        else:
            out[...] = rng.standard_normal(shape)
        return out

    def timer(kernel, problem: GemmProblem) -> float:
        rng = np.random.default_rng(problem.m * 31 + problem.k)
        A = fill(rng, (problem.batch, problem.m, problem.n), problem)
        B = fill(rng, (problem.batch, problem.in_rows, problem.k), problem)
        device = SimulatedDevice(spec)
        t0 = device.clock.now
        kernel.run(A, B, problem, device=device)
        return device.clock.now - t0

    return timer


def measure_gemm_points(
    spec: GPUSpec = MI300X,
    datatypes: Sequence[Union[str, BlasDatatype]] = ("z", "c"),
    ks: Sequence[int] = DEFAULT_KS,
    rows: Sequence[int] = DEFAULT_ROWS,
    skew: int = DEFAULT_SKEW,
    batch: int = _MEASURE_BATCH,
    timer: Optional[Callable] = None,
) -> List[GemmCalibrationPoint]:
    """Measure both SBGEMM kernels over a (datatype, m, k) sweep.

    ``timer(kernel, problem) -> seconds`` defaults to simulated-device
    timing (:func:`_device_timer`); pass your own to calibrate from
    real-hardware wall-clock measurements instead.  Operations follow
    Figure 1's convention: conjugate-transpose for complex datatypes,
    transpose for real — the shapes FFTMatvec's blocked Phase 3 emits.
    """
    if timer is None:
        timer = _device_timer(spec)
    rocblas, optimized = RocblasSBGEMM(), OptimizedSBGEMM()
    points: List[GemmCalibrationPoint] = []
    for dt in datatypes:
        dt = BlasDatatype.parse(dt)
        op = Operation.C if dt.is_complex else Operation.T
        for k in ks:
            for m in rows:
                problem = GemmProblem(
                    m=m, n=m * skew, k=k, batch=batch, datatype=dt, operation=op
                )
                points.append(
                    GemmCalibrationPoint(
                        problem=problem,
                        t_rocblas=float(timer(rocblas, problem)),
                        t_optimized=float(timer(optimized, problem)),
                    )
                )
    return points


# The dispatcher's bucketing is the single source of truth — fitted keys
# must land exactly where set_gemm_transition_points installs them.
_rhs_bucket = SBGEMVDispatcher._rhs_bucket


def fit_transition_points(
    points: Sequence[GemmCalibrationPoint],
) -> Dict[Tuple[BlasDatatype, Operation, int], int]:
    """Fit per-(datatype, operation, RHS-bucket) thresholds ``m*``.

    ``m*`` is the largest measured row count at which the optimized
    kernel beat the vendor kernel (0 if it never did) — exactly the
    quantity the dispatcher's model-derived probe computes, but from
    measurements.
    """
    if len(points) == 0:
        raise ReproError("cannot fit transition points from zero measurements")
    table: Dict[Tuple[BlasDatatype, Operation, int], int] = {}
    for p in points:
        key = (p.problem.datatype, p.problem.operation, _rhs_bucket(p.problem.k))
        table.setdefault(key, 0)
        if p.optimized_wins:
            table[key] = max(table[key], p.problem.m)
    return table


def fit_transition_points_from_bench(
    baseline, optimized
) -> Dict[Tuple[BlasDatatype, Operation, int], int]:
    """Fit thresholds from two :class:`~repro.blas.bench.RocblasBench`
    result lists (the two "builds" of the Figure-1 workflow)."""
    if len(baseline) != len(optimized):
        raise ReproError("result lists must have equal length")
    points = []
    for old, new in zip(baseline, optimized):
        if old.problem != new.problem:
            raise ReproError("mismatched problems between builds")
        if not isinstance(old.problem, GemmProblem):
            raise ReproError(
                f"expected GEMM bench results, got {type(old.problem).__name__}"
            )
        points.append(
            GemmCalibrationPoint(
                problem=old.problem,
                t_rocblas=old.seconds,
                t_optimized=new.seconds,
            )
        )
    return fit_transition_points(points)


def calibrate_dispatcher(dispatcher, points: Sequence[GemmCalibrationPoint]):
    """Install measured GEMM transition points into a dispatcher.

    After this, :meth:`SBGEMVDispatcher.select_gemm` keys on the
    measured thresholds instead of probing the efficiency model.
    Returns the fitted table.
    """
    table = fit_transition_points(points)
    dispatcher.set_gemm_transition_points(table)
    return table


def calibration_table(
    points: Sequence[GemmCalibrationPoint],
    fitted: Optional[Dict[Tuple[BlasDatatype, Operation, int], int]] = None,
) -> str:
    """Figure-1-style table of the calibration sweep.

    Marks each row's winner and, when ``fitted`` is given, the row that
    sets each bucket's transition point.
    """
    if fitted is None:
        fitted = fit_transition_points(points)
    rows = []
    for p in points:
        bw_old, bw_new = p.bandwidths()
        key = (p.problem.datatype, p.problem.operation, _rhs_bucket(p.problem.k))
        marker = "  <- m*" if fitted.get(key) == p.problem.m else ""
        rows.append(
            [
                p.problem.datatype.value,
                p.problem.operation.value,
                str(p.problem.k),
                f"{p.problem.m}x{p.problem.n}",
                f"{bw_old:.1f}",
                f"{bw_new:.1f}",
                f"{p.speedup:.2f}x",
                ("optimized" if p.optimized_wins else "rocblas") + marker,
            ]
        )
    return render_table(
        ["dtype", "op", "k", "size", "rocBLAS GB/s", "optimized GB/s",
         "speedup", "winner"],
        rows,
        title="Measured SBGEMM calibration (transition points marked m*)",
    )


def calibration_series(
    points: Sequence[GemmCalibrationPoint],
) -> Dict[Tuple[str, str, int], Dict[str, List[float]]]:
    """Plot-ready series: (dtype, op, k) -> {m, rocblas_gbs, optimized_gbs}.

    The figure hook: each key is one panel (a Figure-1-style group),
    each value holds aligned x (row count) and y (achieved GB/s per
    build) arrays.
    """
    series: Dict[Tuple[str, str, int], Dict[str, List[float]]] = {}
    for p in points:
        key = (p.problem.datatype.value, p.problem.operation.value, p.problem.k)
        entry = series.setdefault(
            key, {"m": [], "rocblas_gbs": [], "optimized_gbs": []}
        )
        bw_old, bw_new = p.bandwidths()
        entry["m"].append(float(p.problem.m))
        entry["rocblas_gbs"].append(bw_old)
        entry["optimized_gbs"].append(bw_new)
    return series
