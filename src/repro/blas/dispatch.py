"""Host-side SBGEMV/SBGEMM dispatcher with benchmark-derived transition points.

The paper integrates the optimized kernel into rocBLAS's host dispatcher
so "the application code is completely unchanged"; the benchmarking
results of Figure 1 "were also used to set the kernel transition points
in the host launcher" (Section 4.1.1).  This module reproduces that: for
each (datatype, operation) the dispatcher precomputes, per architecture,
the row-count threshold ``m*`` below which the optimized kernel wins, by
comparing the two kernels' modeled efficiencies — i.e. by running the
benchmark, exactly as the authors did.

The blocked multi-RHS path reuses the same machinery: GEMM transition
points are derived per (datatype, operation, RHS-width bucket) by
probing the same row counts against the two SBGEMM kernels' modeled
times, and :meth:`SBGEMVDispatcher.gemm_strided_batched` is the host
entry point FFTMatvec's ``matmat`` calls.  Model-derived GEMM points
are a default, not a commitment: :meth:`set_gemm_transition_points`
installs thresholds fit from *measured* timings
(:mod:`repro.blas.calibrate` — the Figure-1 workflow applied to the
SBGEMM pair), after which dispatch keys on the measurements.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.backend import Backend, NumpyBackend
from repro.blas.gemm_kernels import (
    OptimizedSBGEMM,
    PairwiseSBGEMM,
    RocblasSBGEMM,
    SBGEMMKernel,
)
from repro.blas.gemv_kernels import OptimizedSBGEMV, RocblasSBGEMV, SBGEMVKernel
from repro.blas.types import BlasDatatype, GemmProblem, GemvProblem, Operation
from repro.gpu.device import SimulatedDevice
from repro.gpu.specs import GPUSpec
from repro.util.validation import ReproError

__all__ = ["SBGEMVDispatcher"]

_NUMPY = NumpyBackend()

# Row counts probed when deriving transition points (powers of two spanning
# the shapes rocblas-bench covers in Figure 1).
_PROBE_ROWS = (64, 128, 256, 512, 1024, 2048, 4096)
_PROBE_SKEW = 8  # n = skew * m when probing short-and-wide behaviour


class SBGEMVDispatcher:
    """Selects between the original and optimized SBGEMV kernels.

    Parameters
    ----------
    spec:
        Target architecture (transition points are per-architecture, the
        way rocBLAS tunes per gfx arch).
    """

    def __init__(self, spec: GPUSpec) -> None:
        self.spec = spec
        self.rocblas = RocblasSBGEMV()
        self.optimized = OptimizedSBGEMV()
        self.rocblas_gemm = RocblasSBGEMM()
        self.optimized_gemm = OptimizedSBGEMM()
        self._transition: Dict[Tuple[BlasDatatype, Operation], int] = {}
        self._gemm_transition: Dict[Tuple[BlasDatatype, Operation, int], int] = {}
        self.dispatch_counts: Dict[str, int] = {
            self.rocblas.name: 0,
            self.optimized.name: 0,
            self.rocblas_gemm.name: 0,
            self.optimized_gemm.name: 0,
            PairwiseSBGEMM.name: 0,
        }

    # -- transition points ---------------------------------------------------
    def transition_point(self, datatype: BlasDatatype, operation: Operation) -> int:
        """Largest probed ``m`` for which the optimized kernel still wins.

        Returns 0 when the optimized kernel never wins (e.g. non-transpose
        problems, where it isn't even applicable).
        """
        datatype = BlasDatatype.parse(datatype)
        operation = Operation.parse(operation)
        key = (datatype, operation)
        if key in self._transition:
            return self._transition[key]
        if not operation.is_transposed:
            self._transition[key] = 0
            return 0
        best = 0
        for m in _PROBE_ROWS:
            prob = GemvProblem(
                m=m, n=m * _PROBE_SKEW, batch=100, datatype=datatype, operation=operation
            )
            t_old = self.rocblas.modeled_time(prob, self.spec)
            t_new = self.optimized.modeled_time(prob, self.spec)
            if t_new < t_old:
                best = m
        self._transition[key] = best
        return best

    # -- dispatch ---------------------------------------------------------------
    def select(self, problem: GemvProblem) -> SBGEMVKernel:
        """Pick the kernel for a problem (the host launcher's decision)."""
        if not problem.operation.is_transposed:
            return self.rocblas
        # One table lookup per dispatch (the launcher runs per batched
        # call, so this sits on the hot path).
        transition = self.transition_point(problem.datatype, problem.operation)
        if not problem.is_short_wide and problem.m > transition:
            return self.rocblas
        if problem.m <= transition:
            return self.optimized
        # Above the probed transition: compare directly (cheap, model-only).
        t_old = self.rocblas.modeled_time(problem, self.spec)
        t_new = self.optimized.modeled_time(problem, self.spec)
        return self.optimized if t_new < t_old else self.rocblas

    def gemv_strided_batched(
        self,
        A: Any,
        x: Any,
        operation: Operation,
        device: Optional[SimulatedDevice] = None,
        phase: str = "sbgemv",
        out: Optional[Any] = None,
        x_conj: Optional[Any] = None,
        backend: Optional[Backend] = None,
    ) -> Any:
        """rocBLAS entry point: dispatch and run.

        ``A`` is (batch, m, n), ``x`` is (batch, in_len); dtype determines
        the datatype, as the templated host dispatch function does.
        ``out`` (shape (batch, out_len)) receives the result in place;
        ``x_conj`` is a precomputed conjugate of ``x`` for op C callers.
        """
        be = backend if backend is not None else _NUMPY
        A = be.asarray(A)
        problem = GemvProblem(
            m=A.shape[1],
            n=A.shape[2],
            batch=A.shape[0],
            datatype=BlasDatatype.from_dtype(be.dtype_of(A)),
            operation=Operation.parse(operation),
        )
        kernel = self.select(problem)
        self.dispatch_counts[kernel.name] += 1
        return kernel.run(
            A, x, problem, device=device, phase=phase, out=out, x_conj=x_conj,
            backend=be,
        )

    # -- blocked multi-RHS (SBGEMM) path -------------------------------------
    @staticmethod
    def _rhs_bucket(k: int) -> int:
        """Power-of-two bucket for the RHS width, so transition points are
        probed per regime rather than per exact k."""
        b = 1
        while b < k:
            b *= 2
        return b

    def gemm_transition_point(
        self, datatype: BlasDatatype, operation: Operation, k: int
    ) -> int:
        """Largest probed ``m`` for which the optimized SBGEMM still wins
        at RHS width ``k`` (0 when it never wins, e.g. op N)."""
        datatype = BlasDatatype.parse(datatype)
        operation = Operation.parse(operation)
        key = (datatype, operation, self._rhs_bucket(k))
        if key in self._gemm_transition:
            return self._gemm_transition[key]
        if not operation.is_transposed:
            self._gemm_transition[key] = 0
            return 0
        best = 0
        for m in _PROBE_ROWS:
            prob = GemmProblem(
                m=m,
                n=m * _PROBE_SKEW,
                k=self._rhs_bucket(k),
                batch=100,
                datatype=datatype,
                operation=operation,
            )
            t_old = self.rocblas_gemm.modeled_time(prob, self.spec)
            t_new = self.optimized_gemm.modeled_time(prob, self.spec)
            if t_new < t_old:
                best = m
        self._gemm_transition[key] = best
        return best

    def set_gemm_transition_points(
        self, table: Dict[Tuple[BlasDatatype, Operation, int], int]
    ) -> None:
        """Install measured GEMM transition points (calibration hook).

        ``table`` maps ``(datatype, operation, k)`` to the threshold
        row count ``m*``; k values are normalized to the dispatcher's
        power-of-two RHS buckets.  Installed entries take precedence
        over (and suppress) the model-derived probe for their bucket —
        this is how a Figure-1-style measured calibration replaces the
        physical efficiency curve.
        """
        # Validate/normalize the whole table before mutating, so an
        # invalid entry cannot leave the dispatcher half-calibrated.
        staged: Dict[Tuple[BlasDatatype, Operation, int], int] = {}
        for (datatype, operation, k), m_star in table.items():
            datatype = BlasDatatype.parse(datatype)
            operation = Operation.parse(operation)
            if int(m_star) < 0:
                raise ReproError(
                    f"transition point must be >= 0, got {m_star}"
                )
            key = (datatype, operation, self._rhs_bucket(int(k)))
            staged[key] = int(m_star)
        self._gemm_transition.update(staged)

    def select_gemm(
        self, problem: GemmProblem, reduction: str = "fast"
    ) -> SBGEMMKernel:
        """Pick the SBGEMM kernel for a blocked multi-RHS problem.

        ``reduction="pairwise"`` wraps the selected kernel in
        :class:`~repro.blas.gemm_kernels.PairwiseSBGEMM` — same launch
        geometry and dispatch decision, fixed-tree accumulation order,
        and the wrapper's flat bandwidth tax.
        """
        if reduction not in ("fast", "pairwise"):
            raise ReproError(f"reduction must be 'fast' or 'pairwise', got {reduction!r}")
        if not problem.operation.is_transposed:
            kernel: SBGEMMKernel = self.rocblas_gemm
        else:
            transition = self.gemm_transition_point(
                problem.datatype, problem.operation, problem.k
            )
            if not problem.is_short_wide and problem.m > transition:
                kernel = self.rocblas_gemm
            elif problem.m <= transition:
                kernel = self.optimized_gemm
            else:
                t_old = self.rocblas_gemm.modeled_time(problem, self.spec)
                t_new = self.optimized_gemm.modeled_time(problem, self.spec)
                kernel = self.optimized_gemm if t_new < t_old else self.rocblas_gemm
        if reduction == "pairwise":
            return PairwiseSBGEMM(kernel)
        return kernel

    def gemm_strided_batched(
        self,
        A: Any,
        B: Any,
        operation: Operation,
        device: Optional[SimulatedDevice] = None,
        phase: str = "sbgemv",
        out: Optional[Any] = None,
        a_conj: Optional[Any] = None,
        backend: Optional[Backend] = None,
        reduction: str = "fast",
    ) -> Any:
        """rocBLAS entry point for the blocked path: dispatch and run.

        ``A`` is (batch, m, n); ``B`` is (batch, in_rows, k).  With
        ``k == 1`` the call degenerates to (and dispatches like) the
        single-RHS GEMV entry point, keeping the two paths numerically
        interchangeable.  ``out`` (shape (batch, out_rows, k)) receives
        the panel in place; ``a_conj`` is a cached conjugate of ``A`` for
        op C callers.

        ``reduction="pairwise"`` selects the fixed-tree accumulation
        order (:class:`~repro.blas.gemm_kernels.PairwiseSBGEMM`).  The
        ``k == 1`` GEMV degeneration is *skipped* in that mode: a lone
        column must accumulate through the identical tree it would see
        inside a wide panel, which is what makes blocked == looped exact
        rather than to-rounding.
        """
        be = backend if backend is not None else _NUMPY
        A = be.asarray(A)
        B = be.asarray(B)
        op = Operation.parse(operation)
        if B.ndim != 3:
            raise ReproError(f"B must be (batch, in_rows, k), got shape {tuple(B.shape)}")
        if B.shape[2] == 1 and reduction == "fast":
            y = self.gemv_strided_batched(
                A,
                B[:, :, 0],
                op,
                device=device,
                phase=phase,
                out=None if out is None else out[:, :, 0],
                backend=be,
            )
            return y[:, :, None]
        problem = GemmProblem(
            m=A.shape[1],
            n=A.shape[2],
            k=B.shape[2],
            batch=A.shape[0],
            datatype=BlasDatatype.from_dtype(be.dtype_of(A)),
            operation=op,
        )
        kernel = self.select_gemm(problem, reduction=reduction)
        self.dispatch_counts[kernel.name] += 1
        return kernel.run(
            A, B, problem, device=device, phase=phase, out=out, a_conj=a_conj,
            backend=be,
        )
