"""FFT rounding-error bounds (Van Loan 1992), used by the Eq. (6) model.

The paper's error analysis (Section 3.2.1) uses the standard result that
a length-``n`` FFT computed with unit roundoff ``eps`` satisfies::

    || fl(FFT(v)) - FFT(v) || <= c * eps * log2(n) * ||FFT(v)||

and that the FFT operator's 2-norm is ``sqrt(n)`` (inverse ``1/sqrt(n)``
for the normalized inverse).  These helpers package those facts so the
error model and the tests share one definition.
"""

from __future__ import annotations

import math

from repro.util.dtypes import Precision, machine_eps

__all__ = ["fft_operator_norm", "ifft_operator_norm", "fft_error_bound"]

# Algorithm-dependent O(1) constant; Van Loan gives small constants (~4-8
# depending on the variant). We keep one conservative value shared by the
# model and the tests.
DEFAULT_FFT_CONSTANT = 8.0


def fft_operator_norm(n: int) -> float:
    """2-norm of the unnormalized DFT operator of length n: sqrt(n)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return math.sqrt(float(n))


def ifft_operator_norm(n: int) -> float:
    """2-norm of the normalized inverse DFT operator: 1/sqrt(n)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return 1.0 / math.sqrt(float(n))


def fft_error_bound(
    n: int,
    precision: Precision,
    constant: float = DEFAULT_FFT_CONSTANT,
) -> float:
    """Relative error bound ``c * eps * log2(n)`` of a length-n FFT."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if n == 1:
        return 0.0
    return constant * machine_eps(precision) * math.log2(float(n))
