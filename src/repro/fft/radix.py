"""From-scratch FFT implementations: iterative radix-2 and Bluestein.

These serve as an independent reference for the pocketfft-backed plans
(tests cross-check all three against each other and against the DFT
matrix) and as an instrument for studying per-precision rounding: all
arithmetic is carried out in the requested precision, including twiddle
factors, so the observed error growth follows the Van Loan
``O(eps * log2 n)`` bound that the paper's Eq. (6) uses.

The implementations are vectorized over a batch axis: inputs are
``(batch, n)`` arrays and all butterflies are NumPy slice operations (no
Python loop over the batch or over butterflies within a stage).
"""

from __future__ import annotations

import math

import numpy as np

from repro.util.dtypes import Precision, complex_dtype
from repro.util.validation import ReproError

__all__ = ["fft_radix2", "ifft_radix2", "fft_bluestein", "fft_auto", "bit_reverse_permutation"]


def _is_pow2(n: int) -> bool:
    return n >= 1 and (n & (n - 1)) == 0


def bit_reverse_permutation(n: int) -> np.ndarray:
    """Index permutation that bit-reverses ``log2(n)``-bit indices."""
    if not _is_pow2(n):
        raise ReproError(f"bit reversal needs a power-of-two length, got {n}")
    bits = n.bit_length() - 1
    idx = np.arange(n, dtype=np.int64)
    rev = np.zeros_like(idx)
    for b in range(bits):
        rev |= ((idx >> b) & 1) << (bits - 1 - b)
    return rev


def _as_batch(x: np.ndarray, cdt: np.dtype):
    a = np.asarray(x)
    squeeze = a.ndim == 1
    if squeeze:
        a = a[None, :]
    if a.ndim != 2:
        raise ReproError(f"expected 1-D or 2-D input, got ndim={a.ndim}")
    return np.ascontiguousarray(a, dtype=cdt), squeeze


def fft_radix2(
    x: np.ndarray,
    precision: Precision = Precision.DOUBLE,
    inverse: bool = False,
) -> np.ndarray:
    """Iterative decimation-in-time radix-2 FFT in the given precision.

    Unnormalized in both directions (inverse returns ``n`` times the
    mathematical inverse), matching the cuFFT convention used throughout
    this library.
    """
    cdt = complex_dtype(precision)
    a, squeeze = _as_batch(x, cdt)
    n = a.shape[1]
    if not _is_pow2(n):
        raise ReproError(f"radix-2 FFT needs a power-of-two length, got {n}")

    out = a[:, bit_reverse_permutation(n)].copy()
    sign = 1.0 if inverse else -1.0
    length = 2
    while length <= n:
        half = length // 2
        # Twiddles computed in the working precision — this is what makes
        # the single-precision error model realistic.
        k = np.arange(half)
        tw = np.exp(sign * 2j * np.pi * k / length).astype(cdt)
        view = out.reshape(out.shape[0], n // length, length)
        even = view[:, :, :half]
        odd = view[:, :, half:] * tw  # broadcast over batch and groups
        upper = even + odd
        lower = even - odd
        view[:, :, :half] = upper
        view[:, :, half:] = lower
        length *= 2
    return out[0] if squeeze else out


def ifft_radix2(x: np.ndarray, precision: Precision = Precision.DOUBLE) -> np.ndarray:
    """Unnormalized inverse radix-2 FFT (``n`` times the true inverse)."""
    return fft_radix2(x, precision=precision, inverse=True)


def fft_bluestein(
    x: np.ndarray,
    precision: Precision = Precision.DOUBLE,
    inverse: bool = False,
) -> np.ndarray:
    """Bluestein's chirp-z FFT for arbitrary lengths.

    Re-expresses a length-``n`` DFT as a circular convolution of length
    ``m >= 2n-1`` (next power of two), evaluated with the radix-2 FFT in
    the same precision.  Unnormalized like :func:`fft_radix2`.
    """
    cdt = complex_dtype(precision)
    a, squeeze = _as_batch(x, cdt)
    n = a.shape[1]
    if n == 1:
        return a[0].copy() if squeeze else a.copy()

    sign = 1.0 if inverse else -1.0
    k = np.arange(n, dtype=np.float64)
    # chirp_j = exp(sign * i*pi * j^2 / n), computed in double with the
    # j^2 mod 2n reduction for accuracy, then rounded once to working
    # precision.  X_k = chirp_k * sum_j (x_j chirp_j) conj(chirp)_{k-j}.
    chirp = np.exp(sign * 1j * np.pi * (k * k % (2 * n)) / n).astype(cdt)

    m = 1 << (2 * n - 1).bit_length()
    A = np.zeros((a.shape[0], m), dtype=cdt)
    A[:, :n] = a * chirp

    B = np.zeros(m, dtype=cdt)
    B[:n] = np.conj(chirp)
    B[m - n + 1 :] = np.conj(chirp[1:][::-1])

    fa = fft_radix2(A, precision=precision)
    fb = fft_radix2(B, precision=precision)
    conv = ifft_radix2(fa * fb, precision=precision)
    scale = np.asarray(1.0 / m, dtype=cdt)
    out = (conv[:, :n] * scale) * chirp
    return out[0] if squeeze else out


def fft_auto(
    x: np.ndarray,
    precision: Precision = Precision.DOUBLE,
    inverse: bool = False,
) -> np.ndarray:
    """Dispatch to radix-2 for power-of-two lengths, Bluestein otherwise."""
    n = np.asarray(x).shape[-1]
    if _is_pow2(n):
        return fft_radix2(x, precision=precision, inverse=inverse)
    return fft_bluestein(x, precision=precision, inverse=inverse)
