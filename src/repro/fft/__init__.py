"""Batched FFT substrate (cuFFT/hipFFT work-alike).

FFTMatvec's Phases 2 and 4 are batched 1-D FFTs/IFFTs over the zero-padded
block vectors.  This package provides:

* :mod:`repro.fft.plan` — :class:`FFTPlan`, a plan-based batched strided
  API mirroring ``cufftPlanMany``/``hipfftPlanMany``, executing through
  NumPy's pocketfft at the plan's precision (complex64 computations are
  genuinely single precision, so mixed-precision FFT *error* is real) and
  charging simulated time on an attached device.
* :mod:`repro.fft.radix` — a from-scratch iterative radix-2 Cooley-Tukey
  FFT plus Bluestein's algorithm for arbitrary lengths; used as an
  independent reference in tests and for the per-precision rounding
  behaviour studies.
* :mod:`repro.fft.error` — Van Loan-style FFT rounding-error bounds used
  by the Eq. (6) error model.
"""

from repro.fft.plan import FFTPlan, FFTType, plan_many
from repro.fft.radix import fft_radix2, ifft_radix2, fft_bluestein, fft_auto
from repro.fft.error import fft_error_bound, fft_operator_norm

__all__ = [
    "FFTPlan",
    "FFTType",
    "plan_many",
    "fft_radix2",
    "ifft_radix2",
    "fft_bluestein",
    "fft_auto",
    "fft_error_bound",
    "fft_operator_norm",
]
