"""Plan-based batched FFT API mirroring cufftPlanMany / hipfftPlanMany.

A plan fixes the transform length, batch count, type (D2Z/Z2D/Z2Z and the
single-precision variants R2C/C2R/C2C) and precision.  Executing a plan:

* computes the transform with NumPy's pocketfft **at the plan's
  precision** — complex64 input stays in single precision end to end, so
  the numerical error of a single-precision FFT phase is measured, not
  modeled;
* optionally charges simulated time on an attached
  :class:`~repro.gpu.device.SimulatedDevice`.  FFT cost model: a radix
  FFT of length n moves ~``2 * ceil(log2 n) / unroll`` passes over the
  data; modern GPU FFTs fuse multiple radix stages per pass, so we charge
  ``passes = max(2, ceil(log2(n) / stages_per_pass))`` sweeps of
  read+write traffic.

FFTMatvec uses D2Z forward (real input, half-spectrum output) and Z2D
inverse, exactly like the original code's cuFFT calls.

Input staging is allocation-aware: when the input already has the
plan's dtype and is contiguous, staging is an explicit no-op (counted
in ``stage_noops``); otherwise the plan copies into a persistent
workspace buffer when a :class:`~repro.util.workspace.Workspace` is
supplied (counted in ``stage_copies``) instead of allocating a fresh
``ascontiguousarray`` per execution.  The inverse transform's
unnormalization is applied in place on the transform output — one less
temporary, bitwise-identical scaling.
"""

from __future__ import annotations

import enum
import math
from typing import Any, Optional

import numpy as np

from repro.backend import Backend, NumpyBackend
from repro.gpu.bandwidth import stream_efficiency
from repro.gpu.device import SimulatedDevice
from repro.gpu.kernel import Dim3, KernelLaunch
from repro.util import checksum as _chk
from repro.util.dtypes import Precision, complex_dtype, real_dtype
from repro.util.validation import ReproError, check_positive_int
from repro.util.workspace import Workspace

__all__ = ["FFTType", "FFTPlan", "plan_many"]

_NUMPY = NumpyBackend()


class FFTType(enum.Enum):
    """Transform kinds, named after the cuFFT enums."""

    D2Z = "D2Z"  # double real -> double complex (forward)
    Z2D = "Z2D"  # double complex -> double real (inverse)
    Z2Z = "Z2Z"  # double complex <-> double complex
    R2C = "R2C"  # single real -> single complex (forward)
    C2R = "C2R"  # single complex -> single real (inverse)
    C2C = "C2C"  # single complex <-> single complex

    @property
    def precision(self) -> Precision:
        return Precision.DOUBLE if self.value in ("D2Z", "Z2D", "Z2Z") else Precision.SINGLE

    @property
    def is_real_forward(self) -> bool:
        return self.value in ("D2Z", "R2C")

    @property
    def is_real_inverse(self) -> bool:
        return self.value in ("Z2D", "C2R")

    @classmethod
    def real_forward(cls, prec: Precision) -> "FFTType":
        return cls.D2Z if Precision.parse(prec) is Precision.DOUBLE else cls.R2C

    @classmethod
    def real_inverse(cls, prec: Precision) -> "FFTType":
        return cls.Z2D if Precision.parse(prec) is Precision.DOUBLE else cls.C2R

    @classmethod
    def complex_complex(cls, prec: Precision) -> "FFTType":
        return cls.Z2Z if Precision.parse(prec) is Precision.DOUBLE else cls.C2C


# GPU FFT kernels fuse ~4 radix stages per global-memory pass.
_STAGES_PER_PASS = 4


class FFTPlan:
    """A batched 1-D FFT plan.

    Parameters
    ----------
    n:
        Transform length (the padded block length ``2*Nt`` in FFTMatvec).
    batch:
        Number of independent transforms.
    fft_type:
        One of :class:`FFTType`.
    device:
        Optional simulated device to charge execution time on.

    Notes
    -----
    Layout is contiguous batched (stride 1, distance n), the layout
    FFTMatvec uses after its reorder phase; the plan validates input
    shapes accordingly.
    """

    def __init__(
        self,
        n: int,
        batch: int,
        fft_type: FFTType,
        device: Optional[SimulatedDevice] = None,
        backend: Optional[Backend] = None,
    ) -> None:
        self.n = check_positive_int(n, "n")
        self.batch = check_positive_int(batch, "batch")
        self.fft_type = fft_type
        self.device = device
        self.backend = backend if backend is not None else _NUMPY
        self.precision = fft_type.precision
        self._rdt = real_dtype(self.precision)
        self._cdt = complex_dtype(self.precision)
        self.executions = 0
        self.stage_noops = 0  # inputs that needed no staging copy
        self.stage_copies = 0  # inputs staged into a workspace buffer

    # -- cost model ----------------------------------------------------------
    @property
    def half_len(self) -> int:
        """Half-spectrum length for real transforms (n//2 + 1)."""
        return self.n // 2 + 1

    def _traffic_bytes(self) -> float:
        """Read+write HBM traffic of one batched execution."""
        if self.fft_type.is_real_forward:
            in_b = self.n * self._rdt.itemsize
            out_b = self.half_len * self._cdt.itemsize
        elif self.fft_type.is_real_inverse:
            in_b = self.half_len * self._cdt.itemsize
            out_b = self.n * self._rdt.itemsize
        else:
            in_b = out_b = self.n * self._cdt.itemsize
        passes = max(2, math.ceil(math.log2(max(self.n, 2)) / _STAGES_PER_PASS))
        return float(self.batch) * (in_b + out_b) * passes / 2.0

    def _charge(self, phase: str) -> float:
        if self.device is None:
            return 0.0
        traffic = self._traffic_bytes()
        eff = stream_efficiency(traffic, self.device.spec)
        kernel = KernelLaunch(
            name=f"fft_{self.fft_type.value.lower()}_n{self.n}",
            grid=Dim3(x=max(1, self.batch)),
            block=Dim3(x=256),
            bytes_read=traffic / 2,
            bytes_written=traffic / 2,
            flops=5.0 * self.n * math.log2(max(self.n, 2)) * self.batch,
            efficiency_hint=eff,
        )
        return self.device.launch(kernel, phase=phase)

    # -- execution -------------------------------------------------------------
    def _check_batch_shape(self, a: Any, length: int, what: str) -> Any:
        arr = self.backend.asarray(a)
        if arr.ndim == 1:
            if self.batch != 1:
                raise ReproError(
                    f"{what}: 1-D input but plan batch={self.batch}"
                )
            arr = arr[None, :]
        if arr.ndim != 2 or tuple(arr.shape) != (self.batch, length):
            raise ReproError(
                f"{what}: expected shape ({self.batch}, {length}), got {tuple(arr.shape)}"
            )
        return arr

    def _stage(
        self,
        arr: Any,
        dtype: np.dtype,
        workspace: Optional[Workspace],
        tag: str,
    ) -> Any:
        """Present the input contiguously at the plan dtype.

        Matching dtype + layout is an explicit (counted) no-op; with a
        workspace a mismatch is a copy-into the persistent staging
        buffer, not a fresh allocation.
        """
        be = self.backend
        if be.dtype_of(arr) == dtype and be.is_contiguous(arr):
            self.stage_noops += 1
            return arr
        if workspace is None:
            return be.ascontiguous(arr, dtype=dtype)
        buf = workspace.checkout(tag, tuple(arr.shape), dtype)
        be.copyto(buf, arr)
        self.stage_copies += 1
        return buf

    def execute(
        self,
        x: np.ndarray,
        phase: str = "fft",
        workspace: Optional[Workspace] = None,
    ) -> np.ndarray:
        """Forward transform (D2Z/R2C real-to-complex, or Z2Z/C2C forward).

        Real transforms return the half spectrum (``n//2+1`` bins), like
        cufftExecD2Z.
        """
        if self.fft_type.is_real_inverse:
            raise ReproError(
                f"plan type {self.fft_type.value} is inverse-only; use inverse()"
            )
        be = self.backend
        if self.fft_type.is_real_forward:
            arr = self._check_batch_shape(x, self.n, "execute")
            arr = self._stage(arr, self._rdt, workspace, "fft_stage_fwd")
            out = be.astype(be.fft.rfft(arr, axis=1), self._cdt, copy=False)
        else:
            arr = self._check_batch_shape(x, self.n, "execute")
            arr = self._stage(arr, self._cdt, workspace, "fft_stage_fwd")
            out = be.astype(be.fft.fft(arr, axis=1), self._cdt, copy=False)
        self.executions += 1
        self._charge(phase)
        return out

    def inverse(
        self,
        x: np.ndarray,
        phase: str = "ifft",
        workspace: Optional[Workspace] = None,
    ) -> np.ndarray:
        """Inverse transform.

        Follows the cuFFT convention of **unnormalized** transforms: like
        cufftExecZ2D, the result is ``n`` times the mathematical inverse,
        and callers scale by ``1/n`` themselves (FFTMatvec folds the scale
        into the precomputed ``F_hat``).
        """
        if self.fft_type.is_real_forward and self.fft_type in (FFTType.D2Z, FFTType.R2C):
            raise ReproError(
                f"plan type {self.fft_type.value} is forward-only; use execute()"
            )
        be = self.backend
        scale = np.asarray(self.n, dtype=self._rdt)
        if self.fft_type.is_real_inverse:
            arr = self._check_batch_shape(x, self.half_len, "inverse")
            arr = self._stage(arr, self._cdt, workspace, "fft_stage_inv")
            out = be.astype(be.fft.irfft(arr, n=self.n, axis=1), self._rdt, copy=False)
        else:
            arr = self._check_batch_shape(x, self.n, "inverse")
            arr = self._stage(arr, self._cdt, workspace, "fft_stage_inv")
            out = be.astype(be.fft.ifft(arr, axis=1), self._cdt, copy=False)
        # Unnormalize in place: the transform output is freshly owned, so
        # the scaling needs no temporary (bitwise-identical multiply).
        be.multiply(out, scale, out=out)
        self.executions += 1
        self._charge(phase)
        return out

    # -- energy verification ---------------------------------------------------
    def verify_forward_energy(
        self,
        x: Any,
        X: Any,
        phase: str = "fft",
        rank: Optional[int] = None,
        context: str = "",
    ) -> None:
        """Parseval check of a real forward transform this plan computed.

        ``sum(x^2)`` must equal the Hermitian-weighted half-spectrum
        power over ``n``; raises
        :class:`~repro.util.checksum.SilentCorruption` on mismatch.
        Called *after* the engines' corruption-injection sites so an
        injected flip in either buffer is detected, not masked.
        """
        _chk.verify_forward_energy(
            self.backend.from_device(x),
            self.backend.from_device(X),
            self.n,
            phase=phase,
            rank=rank,
            context=context,
        )

    def verify_inverse_energy(
        self,
        X: Any,
        out: Any,
        phase: str = "ifft",
        rank: Optional[int] = None,
        context: str = "",
    ) -> None:
        """Parseval check of an *unnormalized* real inverse transform.

        This plan returns ``n`` times the mathematical inverse, so the
        identity is ``sum(out^2) == n * weighted(|X|^2)``.
        """
        _chk.verify_inverse_energy(
            self.backend.from_device(X),
            self.backend.from_device(out),
            self.n,
            phase=phase,
            rank=rank,
            context=context,
        )


def plan_many(
    n: int,
    batch: int,
    *,
    precision: Precision = Precision.DOUBLE,
    real: bool = True,
    forward: bool = True,
    device: Optional[SimulatedDevice] = None,
    backend: Optional[Backend] = None,
) -> FFTPlan:
    """Convenience constructor in the style of ``cufftPlanMany``."""
    if real:
        t = FFTType.real_forward(precision) if forward else FFTType.real_inverse(precision)
    else:
        t = FFTType.complex_complex(precision)
    return FFTPlan(n=n, batch=batch, fft_type=t, device=device, backend=backend)
