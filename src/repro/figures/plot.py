"""Terminal plotting for the figure harnesses.

The benches run in a terminal, so each figure's *curves* (Figure 4's
speedup/error series, Figure 1's bar pairs) render as ASCII charts next
to the tables — enough to eyeball the reproduced shapes against the
paper's plots.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.util.validation import ReproError

__all__ = ["line_chart", "bar_chart"]


def _scale(values: Sequence[float], lo: float, hi: float, height: int) -> List[int]:
    if hi <= lo:
        return [0 for _ in values]
    return [
        min(height - 1, max(0, int(round((v - lo) / (hi - lo) * (height - 1)))))
        for v in values
    ]


def line_chart(
    xs: Sequence,
    ys: Sequence[float],
    *,
    title: str = "",
    height: int = 10,
    logy: bool = False,
    marker: str = "o",
) -> str:
    """Render one series as an ASCII chart, one column per point."""
    if len(xs) != len(ys):
        raise ReproError("xs and ys must have equal length")
    if len(ys) == 0:
        raise ReproError("nothing to plot")
    vals = [math.log10(y) if logy else float(y) for y in ys]
    lo, hi = min(vals), max(vals)
    rows = _scale(vals, lo, hi, height)

    width = len(ys)
    grid = [[" "] * width for _ in range(height)]
    for col, row in enumerate(rows):
        grid[height - 1 - row][col] = marker

    def fmt_axis(v: float) -> str:
        real = 10**v if logy else v
        return f"{real:9.3g}"

    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        axis = fmt_axis(hi) if i == 0 else (fmt_axis(lo) if i == height - 1 else " " * 9)
        lines.append(f"{axis} |" + "".join(row) + "|")
    labels = [str(x) for x in xs]
    lines.append(" " * 10 + "^" * width)
    lines.append(" " * 10 + f"x: {labels[0]} .. {labels[-1]} ({width} points)")
    return "\n".join(lines)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    title: str = "",
    width: int = 40,
    reference: Optional[Sequence[float]] = None,
    unit: str = "",
) -> str:
    """Horizontal bars; optional reference values shown as '+' marks."""
    if len(labels) != len(values):
        raise ReproError("labels and values must have equal length")
    if len(values) == 0:
        raise ReproError("nothing to plot")
    hi = max(list(values) + list(reference or []) or [1.0])
    if hi <= 0:
        hi = 1.0
    lines = []
    if title:
        lines.append(title)
    label_w = max(len(str(l)) for l in labels)
    for i, (label, v) in enumerate(zip(labels, values)):
        n = int(round(v / hi * width))
        bar = list("#" * n + " " * (width - n))
        if reference is not None:
            r = min(width - 1, int(round(reference[i] / hi * width)))
            bar[r] = "+"
        lines.append(
            f"{str(label):>{label_w}} |{''.join(bar)}| {v:.3g} {unit}".rstrip()
        )
    if reference is not None:
        lines.append(f"{'':>{label_w}}  ('+' marks the paper's value)")
    return "\n".join(lines)
