"""Figure-regeneration harnesses.

One module per paper figure; each produces the figure's rows as plain
text (paper values alongside model/measured values where applicable) and
returns structured data for benches and tests:

* :mod:`repro.figures.fig1` — SBGEMV bandwidth, rocBLAS vs optimized.
* :mod:`repro.figures.fig2` — single-GPU matvec runtime breakdowns.
* :mod:`repro.figures.fig3` — double vs optimal mixed-precision.
* :mod:`repro.figures.fig4` — multi-GPU scaling speedups + errors.
"""

from repro.figures.fig1 import figure1, FIG1_SIZES, FIG1_DATATYPES
from repro.figures.fig2 import figure2
from repro.figures.fig3 import figure3
from repro.figures.fig4 import figure4

__all__ = [
    "figure1",
    "FIG1_SIZES",
    "FIG1_DATATYPES",
    "figure2",
    "figure3",
    "figure4",
]
