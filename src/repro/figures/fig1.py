"""Figure 1: (conjugate) transpose SBGEMV, rocBLAS vs optimized kernel.

Reproduces the rocblas-bench comparison on MI300X: batch 100, transpose
for real datatypes and conjugate transpose for complex, over the paper's
matrix shapes.  Prints % of peak bandwidth for both builds next to the
paper's bar annotations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.blas.bench import RocblasBench, make_fig1_yaml
from repro.blas.types import BlasDatatype
from repro.gpu.specs import GPUSpec, MI300X
from repro.util.tables import render_table

__all__ = ["figure1", "FIG1_SIZES", "FIG1_DATATYPES", "Fig1Row"]

# The shapes each datatype is benchmarked at in the paper's figure.
FIG1_SIZES: Dict[str, List[Tuple[int, int]]] = {
    "s": [(128, 4096), (256, 256), (256, 8192), (512, 512), (1024, 1024), (2048, 2048)],
    "d": [(128, 4096), (256, 256), (256, 8192), (512, 512)],
    "c": [(128, 4096), (256, 256), (256, 8192), (512, 512)],
    "z": [(128, 4096), (256, 256), (256, 8192)],
}
FIG1_DATATYPES = ("s", "d", "c", "z")

# Bar annotations from the paper (fraction of peak): (rocBLAS, optimized).
PAPER_FIG1: Dict[Tuple[str, int, int], Tuple[float, float]] = {
    ("s", 128, 4096): (0.150, 0.835),
    ("s", 256, 256): (0.217, 0.586),
    ("s", 256, 8192): (0.248, 0.727),
    ("s", 512, 512): (0.448, 0.767),
    ("s", 1024, 1024): (0.584, 0.647),
    ("s", 2048, 2048): (0.633, 0.678),
    ("d", 128, 4096): (0.255, 0.732),
    ("d", 256, 256): (0.417, 0.627),
    ("d", 256, 8192): (0.425, 0.708),
    ("d", 512, 512): (0.764, 0.764),
    ("c", 128, 4096): (0.250, 0.711),
    ("c", 256, 256): (0.407, 0.576),
    ("c", 256, 8192): (0.404, 0.703),
    ("c", 512, 512): (0.758, 0.762),
    ("z", 128, 4096): (0.420, 0.727),
    ("z", 256, 256): (0.662, 0.712),
    ("z", 256, 8192): (0.619, 0.695),
}


@dataclass(frozen=True)
class Fig1Row:
    """One (datatype, shape) comparison."""

    datatype: str
    m: int
    n: int
    rocblas_pct: float
    optimized_pct: float
    rocblas_gbs: float
    optimized_gbs: float
    paper_rocblas_pct: Optional[float]
    paper_optimized_pct: Optional[float]

    @property
    def speedup(self) -> float:
        return self.optimized_gbs / self.rocblas_gbs


def figure1(spec: GPUSpec = MI300X) -> Tuple[List[Fig1Row], str]:
    """Run both builds through rocblas-bench; returns (rows, table text)."""
    rows: List[Fig1Row] = []
    for dt in FIG1_DATATYPES:
        yaml_text = make_fig1_yaml(FIG1_SIZES[dt], [dt])
        base = RocblasBench(spec, build="rocblas").run_yaml(yaml_text)
        opt = RocblasBench(spec, build="optimized").run_yaml(yaml_text)
        for old, new in zip(base, opt):
            key = (dt, old.problem.m, old.problem.n)
            paper = PAPER_FIG1.get(key)
            rows.append(
                Fig1Row(
                    datatype=dt,
                    m=old.problem.m,
                    n=old.problem.n,
                    rocblas_pct=old.pct_of_peak,
                    optimized_pct=new.pct_of_peak,
                    rocblas_gbs=old.gbytes_per_s,
                    optimized_gbs=new.gbytes_per_s,
                    paper_rocblas_pct=paper[0] if paper else None,
                    paper_optimized_pct=paper[1] if paper else None,
                )
            )

    table_rows = []
    for r in rows:
        table_rows.append(
            [
                BlasDatatype.parse(r.datatype).function_name.split("_")[1][0],
                f"{r.m}x{r.n}",
                f"{r.rocblas_pct * 100:.1f}%",
                f"{r.paper_rocblas_pct * 100:.1f}%" if r.paper_rocblas_pct else "-",
                f"{r.optimized_pct * 100:.1f}%",
                f"{r.paper_optimized_pct * 100:.1f}%" if r.paper_optimized_pct else "-",
                f"{r.speedup:.2f}x",
            ]
        )
    text = render_table(
        [
            "dtype",
            "size",
            "rocBLAS (model)",
            "rocBLAS (paper)",
            "optimized (model)",
            "optimized (paper)",
            "speedup",
        ],
        table_rows,
        title=f"Figure 1: (conjugate) transpose SBGEMV % of peak on {spec.name}, batch 100",
    )
    return rows, text
