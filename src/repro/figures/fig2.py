"""Figure 2: single-GPU matvec runtime breakdown across architectures.

Nm=5000, Nd=100, Nt=1000, all-double precision, F and F* matvecs on
MI250X (single GCD), MI300X and MI355X.  Paper facts this regenerates:
SBGEMV dominates (~92%+ of the runtime), total time trends with peak
memory bandwidth, and F* matches F once the optimized transpose kernel
is in place (with F* slightly slower on MI300X).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.gpu.specs import GPUSpec, MI250X_GCD, MI300X, MI355X
from repro.perf.phase_model import modeled_timing
from repro.util.tables import render_table
from repro.util.timing import TimingReport

__all__ = ["figure2", "Fig2Entry", "FIG2_GPUS", "FIG2_PROBLEM"]

FIG2_GPUS: Tuple[GPUSpec, ...] = (MI250X_GCD, MI300X, MI355X)
FIG2_PROBLEM = dict(nm=5000, nd=100, nt=1000)


@dataclass(frozen=True)
class Fig2Entry:
    """One bar of the figure: a GPU x direction runtime breakdown."""

    gpu: str
    direction: str  # "F" or "F*"
    report: TimingReport

    @property
    def total_ms(self) -> float:
        return self.report.total * 1e3

    @property
    def sbgemv_fraction(self) -> float:
        return self.report.fraction("sbgemv")


def figure2(
    nm: int = FIG2_PROBLEM["nm"],
    nd: int = FIG2_PROBLEM["nd"],
    nt: int = FIG2_PROBLEM["nt"],
    gpus: Tuple[GPUSpec, ...] = FIG2_GPUS,
) -> Tuple[List[Fig2Entry], str]:
    """Model the breakdowns; returns (entries, table text)."""
    entries: List[Fig2Entry] = []
    for spec in gpus:
        for adjoint in (False, True):
            rep = modeled_timing(nm, nd, nt, "ddddd", spec, adjoint=adjoint)
            entries.append(
                Fig2Entry(
                    gpu=spec.name,
                    direction="F*" if adjoint else "F",
                    report=rep,
                )
            )

    rows = []
    for e in entries:
        r = e.report
        rows.append(
            [
                e.gpu,
                e.direction,
                f"{r.phase('pad') * 1e3:.3f}",
                f"{r.phase('fft') * 1e3:.3f}",
                f"{r.phase('sbgemv') * 1e3:.3f}",
                f"{r.phase('ifft') * 1e3:.3f}",
                f"{r.phase('unpad') * 1e3:.3f}",
                f"{e.total_ms:.3f}",
                f"{e.sbgemv_fraction * 100:.0f}%",
            ]
        )
    text = render_table(
        ["GPU", "dir", "pad", "FFT", "SBGEMV", "IFFT", "unpad", "total (ms)", "SBGEMV %"],
        rows,
        title=(
            f"Figure 2: runtime breakdown (Nm={nm}, Nd={nd}, Nt={nt}, "
            "double precision; modeled times)"
        ),
    )
    return entries, text
