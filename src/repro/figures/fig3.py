"""Figure 3: double vs optimal mixed-precision runtime (Pareto optimum).

Two halves, as in the paper's workflow:

* **Times at paper scale** (Nm=5000, Nd=100, Nt=1000) come from the
  phase model: baseline ``ddddd`` vs the tolerance-1e-7 optimum
  (``dssdd`` for F; SBGEMV+IFFT single for F*) per architecture.
* **Errors and the Pareto selection** come from a *real* numeric sweep
  of all 32 configurations on a reduced-size engine (the error is a
  property of the configuration and the conditioning, not of the
  problem scale — the bench asserts the scaled-down optimum matches the
  published one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.matvec import FFTMatvec
from repro.core.pareto import ParetoPoint, optimal_config, pareto_front, sweep_configs
from repro.core.toeplitz import BlockTriangularToeplitz
from repro.gpu.device import SimulatedDevice
from repro.gpu.specs import GPUSpec, MI250X_GCD, MI300X, MI355X
from repro.perf.phase_model import modeled_timing
from repro.util.tables import render_table

__all__ = ["figure3", "Fig3Entry", "PAPER_OPTIMAL_F", "PAPER_OPTIMAL_ADJ"]

# Paper Section 4.2.1 / artifact appendix.
PAPER_OPTIMAL_F = "dssdd"
PAPER_OPTIMAL_ADJ = "ddssd"
TOLERANCE = 1e-7


@dataclass(frozen=True)
class Fig3Entry:
    gpu: str
    direction: str
    baseline_ms: float
    mixed_ms: float
    config: str
    measured_error: float

    @property
    def speedup(self) -> float:
        return self.baseline_ms / self.mixed_ms


def measured_sweep(
    nt: int = 48,
    nd: int = 6,
    nm: int = 64,
    adjoint: bool = False,
    seed: int = 0,
    spec: GPUSpec = MI300X,
    paper_scale_times: bool = True,
) -> List[ParetoPoint]:
    """Numeric 32-config sweep on a reduced-size engine.

    With ``paper_scale_times`` (default) each point's time comes from the
    phase model at Nm=5000, Nd=100, Nt=1000 — the configuration selection
    then reflects the paper's phase weights while errors stay measured.
    """
    rng = np.random.default_rng(seed)
    matrix = BlockTriangularToeplitz.random(nt, nd, nm, rng=rng, decay=0.08)
    engine = FFTMatvec(matrix, device=SimulatedDevice(spec))
    time_model = None
    if paper_scale_times:
        time_model = lambda cfg: modeled_timing(  # noqa: E731
            5000, 100, 1000, cfg, spec, adjoint=adjoint
        ).total
    return sweep_configs(engine, adjoint=adjoint, rng=rng, time_model=time_model)


def figure3(
    nm: int = 5000,
    nd: int = 100,
    nt: int = 1000,
    gpus: Tuple[GPUSpec, ...] = (MI250X_GCD, MI300X, MI355X),
    tolerance: float = TOLERANCE,
) -> Tuple[List[Fig3Entry], str]:
    """Returns (entries, table text) for both matvec directions."""
    entries: List[Fig3Entry] = []
    # One numeric sweep per direction for the measured error of the
    # published optimum (error is architecture-independent).
    errors = {}
    for adjoint, cfg in ((False, PAPER_OPTIMAL_F), (True, PAPER_OPTIMAL_ADJ)):
        points = measured_sweep(adjoint=adjoint)
        by_cfg = {str(p.config): p for p in points}
        errors[adjoint] = by_cfg[cfg].error

    for spec in gpus:
        for adjoint, cfg in ((False, PAPER_OPTIMAL_F), (True, PAPER_OPTIMAL_ADJ)):
            base = modeled_timing(nm, nd, nt, "ddddd", spec, adjoint=adjoint)
            mixed = modeled_timing(nm, nd, nt, cfg, spec, adjoint=adjoint)
            entries.append(
                Fig3Entry(
                    gpu=spec.name,
                    direction="F*" if adjoint else "F",
                    baseline_ms=base.total * 1e3,
                    mixed_ms=mixed.total * 1e3,
                    config=cfg,
                    measured_error=errors[adjoint],
                )
            )

    rows = [
        [
            e.gpu,
            e.direction,
            e.config,
            f"{e.baseline_ms:.3f}",
            f"{e.mixed_ms:.3f}",
            f"{(e.speedup - 1) * 100:.0f}%",
            f"{e.measured_error:.2e}",
        ]
        for e in entries
    ]
    text = render_table(
        ["GPU", "dir", "config", "double (ms)", "mixed (ms)", "speedup", "rel err (measured)"],
        rows,
        title=(
            f"Figure 3: optimal mixed-precision configuration at tolerance "
            f"{tolerance:g} (times modeled at Nm={nm}, Nd={nd}, Nt={nt}; "
            "errors measured numerically at reduced size)"
        ),
    )
    return entries, text
